// Continuous tracking demo: a warehouse dock door watches a churning
// tag population with repeated BFCE rounds, fusing them with the
// Kalman tracker (docs/TRACKING.md).
//
// Part 1 drives a TrackingSession directly and prints the round-by-
// round table: ground truth, the raw BFCE estimate, the fused estimate
// and the filter diagnostics. Part 2 submits the same work as tracking
// jobs to an EstimationService — one logical reader per dock door —
// and prints the per-reader tracker rows from the service metrics.

#include <cstdio>

#include "core/planner.hpp"
#include "service/service.hpp"
#include "tracking/session.hpp"

using namespace bfce;

int main() {
  // ---- Part 1: one session, step by step ---------------------------
  core::PersistencePlanner planner;
  tracking::SessionConfig cfg;
  cfg.initial_population = 10000;
  cfg.params.planner = &planner;
  cfg.req = {0.05, 0.05};
  cfg.seed = 7;

  // Steady churn, then a burst of arrivals, then steady at the new
  // level: a delivery truck unloading at the dock.
  const tracking::ChurnSchedule schedule =
      tracking::step_scenario(30, 0.02, 10000.0, 1.5);

  std::printf("round |  true n | raw BFCE | tracked | gain | innovation\n");
  std::printf("------+---------+----------+---------+------+-----------\n");
  tracking::TrackingSession session(cfg);
  for (const tracking::ChurnPhase& phase : schedule) {
    for (std::size_t r = 0; r < phase.rounds; ++r) {
      const tracking::TrackPoint p = session.step(phase.model);
      std::printf("%5zu | %7zu | %8.0f | %7.0f | %.2f | %+9.0f\n", p.round,
                  p.true_n, p.raw_n_hat, p.tracked_n, p.gain, p.innovation);
    }
  }
  const tracking::TrackSummary s = session.summary();
  std::printf(
      "\nraw RMSE %.1f -> tracked RMSE %.1f (%.2fx better), "
      "%.2f s simulated airtime over %zu rounds\n\n",
      s.raw_rmse, s.tracked_rmse, s.improvement(), s.airtime_s, s.rounds);

  // ---- Part 2: tracking jobs through the service -------------------
  service::ServiceConfig svc_cfg;
  svc_cfg.workers = 4;
  svc_cfg.planner = &planner;
  service::EstimationService svc(svc_cfg);

  std::vector<service::JobId> ids;
  for (std::uint64_t door = 0; door < 3; ++door) {
    service::JobSpec spec;
    spec.req = {0.05, 0.05};
    spec.seed = 100 + door;
    service::TrackingJobSpec track;
    track.reader_id = door;
    track.initial_population = 8000 + 2000 * door;
    track.schedule = tracking::steady_scenario(
        15, 0.03, static_cast<double>(track.initial_population));
    spec.tracking = track;
    ids.push_back(svc.submit(spec));
  }
  for (const service::JobId id : ids) {
    const service::JobResult r = svc.wait(id);
    std::printf("door %llu: n^ = %.0f  [%.0f, %.0f]  (%u rounds, %s)\n",
                static_cast<unsigned long long>(r.tracking->reader_id),
                r.outcome.n_hat, r.outcome.ci_low, r.outcome.ci_high,
                r.outcome.rounds, service::to_cstring(r.status));
  }
  std::printf("\n%s", render_service_metrics(svc.metrics()).c_str());
  return 0;
}
