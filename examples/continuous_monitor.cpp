// Continuous monitoring with CUSUM change detection.
//
//   $ continuous_monitor [--periods=40]
//
// A distribution centre runs one BFCE round per period. The naive
// alternative — compare each reading against a fixed trusted baseline —
// needs that baseline to exist and fires on any single 5% noise
// excursion; the CardinalityMonitor works from the estimates alone,
// accumulating standardised innovations (CUSUM) so that sustained
// drift is distinguished from one noisy reading.

#include <cstdio>

#include "core/bfce.hpp"
#include "core/monitor.hpp"
#include "rfid/reader.hpp"
#include "util/cli.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"periods"});
  const int periods = static_cast<int>(cli.get_int("periods", 40));

  core::BfceEstimator bfce;
  core::CardinalityMonitor monitor;

  double truth = 100000.0;
  std::printf("period  actual  estimate  level    cusum-   cusum+  "
              "naive>5%%  monitor\n");
  std::printf("------------------------------------------------------"
              "-----------------\n");
  for (int t = 1; t <= periods; ++t) {
    // Phase 1 (periods 1-15): stable. Phase 2 (16+): 1% trickle loss
    // per period — each step is well under the 5% estimation band.
    if (t > 15) truth *= 0.99;

    const auto pop = rfid::make_population(
        static_cast<std::size_t>(truth),
        rfid::TagIdDistribution::kT1Uniform,
        cli.seed() + static_cast<std::uint64_t>(t));
    rfid::ReaderContext ctx(pop,
                            cli.seed() ^ (static_cast<std::uint64_t>(t)
                                          << 24),
                            rfid::FrameMode::kSampled);
    const core::MonitorReading r = monitor.update(bfce, ctx);

    const bool naive = t > 1 && std::fabs(r.n_hat - 100000.0) > 5000.0;
    std::printf("%5d  %7.0f  %8.0f  %7.0f  %6.2f  %6.2f  %-8s  %s\n", t,
                truth, r.n_hat, r.level, r.cusum_low, r.cusum_high,
                naive ? "ALARM" : "-",
                r.loss_alarm   ? "LOSS ALARM"
                : r.gain_alarm ? "GAIN ALARM"
                               : "-");
    if (r.loss_alarm) {
      std::printf("       -> drift detected after %.1f%% cumulative loss; "
                  "books re-anchored at %.0f\n",
                  100.0 * (1.0 - truth / 100000.0), r.level);
    }
  }
  std::printf("\nthe fixed-baseline threshold needs a trusted baseline "
              "and trips on any single 5%% excursion; the CUSUM needs "
              "neither — it accumulates evidence across readings and "
              "re-anchors itself after each confirmed change.\n");
  return 0;
}
