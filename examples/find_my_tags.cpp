// Tag searching — "which of MY pallets are in this warehouse?"
// (the paper's ref [4] scenario).
//
//   $ find_my_tags [--wanted=1500] [--present=900] [--bystanders=30000]
//
// The searcher holds a list of wanted IDs; the hall is full of other
// companies' tags. A downlink Bloom filter silences the bystanders,
// then batch verification confirms exactly which wanted tags answered.

#include <cstdio>

#include "core/search.hpp"
#include "rfid/population.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"wanted", "present", "bystanders"});
  const auto n_wanted =
      static_cast<std::size_t>(cli.get_int("wanted", 1500));
  const auto n_present =
      static_cast<std::size_t>(cli.get_int("present", 900));
  const auto n_bystanders =
      static_cast<std::size_t>(cli.get_int("bystanders", 30000));

  const auto wanted = rfid::make_population(
      n_wanted, rfid::TagIdDistribution::kT1Uniform, cli.seed());
  const auto bystanders = rfid::make_population(
      n_bystanders, rfid::TagIdDistribution::kT3Normal, cli.seed() + 1);
  std::vector<rfid::Tag> field_tags(
      wanted.tags().begin(),
      wanted.tags().begin() + static_cast<long>(n_present));
  for (const rfid::Tag& t : bystanders.tags()) field_tags.push_back(t);
  const rfid::TagPopulation field{std::move(field_tags)};

  std::printf("searching for %zu wanted tags; %zu are actually here, "
              "among %zu unrelated tags\n\n",
              n_wanted, n_present, n_bystanders);

  util::Xoshiro256ss rng(cli.seed() + 2);
  const core::SearchConfig cfg;
  const auto out =
      core::search_tags(wanted, field, cfg, rfid::Channel{}, rng);

  const rfid::TimingModel tm;
  std::printf("downlink filter : %u bits/item x %zu items, %u hashes\n",
              cfg.bits_per_item, n_wanted, core::search_filter_hashes(cfg));
  std::printf("stragglers      : %zu bystanders slipped through the "
              "filter\n",
              out.filter_false_positives);
  std::printf("found           : %zu   (actual %zu)\n", out.found_count,
              n_present);
  std::printf("missing         : %zu   (actual %zu)\n", out.missing_count,
              n_wanted - n_present);
  std::printf("unverified      : %zu   (never sampled; re-run to cover)\n",
              out.unverified_count);
  std::printf("airtime         : %.2f s   (polling each wanted ID: "
              "%.2f s)\n",
              out.airtime.total_seconds(tm),
              core::polling_cost(n_wanted).total_seconds(tm));
  return 0;
}
