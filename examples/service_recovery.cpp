// Crash-safe estimation: snapshot a service mid-workload, "crash" it,
// restore from the file in a fresh process image, and verify the
// recovered run finishes with estimates bit-identical to a run that was
// never interrupted. Then serves the restored service over the wire
// front door to show the two halves compose.
//
//   $ service_recovery [--jobs=24] [--workers=0] [--seed=...]

#include <cstdio>
#include <vector>

#include "core/planner.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/wire.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace bfce;

namespace {

/// The workload is pure value data (no pointers), so it can ride in a
/// snapshot: job i is a pure function of (seed, i).
std::vector<service::PortableJobSpec> build_jobs(std::size_t jobs,
                                                 std::uint64_t seed) {
  std::vector<service::PortableJobSpec> specs;
  specs.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    service::PortableJobSpec spec;
    spec.estimator = (i % 6 == 5) ? "ZOE" : "BFCE";
    spec.req = (i % 2 == 0) ? estimators::Requirement{0.05, 0.05}
                            : estimators::Requirement{0.1, 0.1};
    spec.seed = util::SeedMixer(seed).absorb(std::uint64_t{i}).value();
    spec.max_attempts = 2;
    if (i % 3 == 2) {
      // Tracking jobs are slow to run but instant to submit, so the
      // snapshot below reliably catches some of them still pending.
      spec.population.kind = service::PortablePopulation::Kind::kNone;
      service::PortableTrackingSpec tracking;
      tracking.reader_id = i;
      tracking.initial_population = 60000;
      tracking.schedule.push_back({8, 0.05, 120.0});
      spec.tracking = tracking;
    } else {
      spec.population.kind = service::PortablePopulation::Kind::kSynthetic;
      spec.population.size = 20000 + 5000 * (i % 4);
      spec.population.seed = seed + i;
    }
    specs.push_back(spec);
  }
  return specs;
}

bool same_estimate(const service::JobResult& a, const service::JobResult& b) {
  return a.status == b.status && a.outcome.n_hat == b.outcome.n_hat &&
         a.outcome.ci_low == b.outcome.ci_low &&
         a.outcome.ci_high == b.outcome.ci_high &&
         a.airtime_s == b.airtime_s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"jobs", "workers", "seed"});
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 24));
  const auto workers = static_cast<unsigned>(cli.get_int("workers", 0));
  const auto specs = build_jobs(jobs, cli.seed());
  const std::string path = "/tmp/bfce_service_recovery.snapshot";

  // Reference: the same workload, never interrupted.
  std::vector<service::JobResult> reference;
  {
    core::PersistencePlanner planner;
    service::EstimationService svc(
        {.workers = workers, .planner = &planner});
    std::vector<service::JobId> ids;
    for (const auto& spec : specs) ids.push_back(svc.submit_portable(spec));
    svc.drain();
    for (const auto id : ids) reference.push_back(svc.wait(id));
  }

  // The "victim": submit everything, cut a snapshot while the second
  // half is still queued or running, and tear the process state down
  // without draining — as a crash would.
  core::PersistencePlanner victim_planner;
  std::uint64_t completed_at_cut = 0;
  {
    service::EstimationService svc(
        {.workers = workers, .planner = &victim_planner});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      svc.submit_portable(specs[i]);
      if (i == specs.size() / 2) svc.drain();  // make some work terminal
    }
    const service::ServiceSnapshot snap = svc.snapshot();
    completed_at_cut = snap.completed.size();
    const auto err = service::save_snapshot(snap, path);
    if (err != service::SnapshotError::kNone) {
      std::fprintf(stderr, "save failed: %s\n", service::to_cstring(err));
      return 1;
    }
    std::printf(
        "snapshot cut: %zu jobs terminal, %zu pending -> %s (crash now)\n",
        snap.completed.size(), snap.pending.size(), path.c_str());
  }  // <- the crash: destructor runs, in-flight progress is gone

  // Recovery: load the file (typed errors, never UB on a bad file),
  // restore into a fresh service, and let the pending jobs re-run from
  // their seeds.
  service::ServiceSnapshot snap;
  if (const auto err = service::load_snapshot(path, snap);
      err != service::SnapshotError::kNone) {
    std::fprintf(stderr, "load failed: %s\n", service::to_cstring(err));
    return 1;
  }
  core::PersistencePlanner restored_planner;
  service::EstimationService svc(
      {.workers = workers, .planner = &restored_planner});
  if (const auto err = svc.restore(snap);
      err != service::SnapshotError::kNone) {
    std::fprintf(stderr, "restore failed: %s\n", service::to_cstring(err));
    return 1;
  }
  svc.drain();

  std::size_t matched = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const auto recovered = svc.poll(reference[i].id);
    if (recovered && same_estimate(*recovered, reference[i])) ++matched;
  }
  std::printf(
      "recovered run: %zu/%zu estimates bit-identical to the "
      "uninterrupted run (%llu were replayed from their seeds)\n",
      matched, reference.size(),
      static_cast<unsigned long long>(reference.size() - completed_at_cut));
  if (matched != reference.size()) {
    std::fprintf(stderr, "FAIL: recovery diverged\n");
    return 1;
  }

  // The restored service is a full citizen: put the wire front door on
  // it and serve one out-of-process-style request.
  const std::string sock = "/tmp/bfce_service_recovery.sock";
  service::WireServer server(svc, {.socket_path = sock});
  if (server.running()) {
    if (auto client = service::WireClient::connect(sock)) {
      const auto remote = client->submit(specs[0]);
      if (remote) {
        std::printf(
            "wire submit on the restored service: n_hat=%.0f [%s]\n",
            remote->outcome.n_hat, to_cstring(remote->status));
      }
    }
    server.stop();
  }

  std::printf("\n-- metrics after recovery ------------------------\n");
  std::printf("%s", render_service_metrics(svc.metrics()).c_str());
  return 0;
}
