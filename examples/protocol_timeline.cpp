// Where does the airtime go? Frame-log timelines for BFCE, SRC and ZOE
// on the same population — Fig 1's "design space" argument, made
// visible frame by frame.
//
//   $ protocol_timeline [--n=50000]

#include <cstdio>
#include <iostream>

#include "core/bfce.hpp"
#include "estimators/src_protocol.hpp"
#include "estimators/zoe.hpp"
#include "rfid/reader.hpp"
#include "util/cli.hpp"

using namespace bfce;

namespace {

template <typename Estimator>
void show(const char* title, Estimator& estimator,
          const rfid::TagPopulation& pop, std::uint64_t seed) {
  rfid::ReaderContext ctx(pop, seed, rfid::FrameMode::kSampled);
  rfid::FrameLog log;
  ctx.attach_log(&log);
  const auto out = estimator.estimate(ctx, {0.05, 0.05});
  std::printf("%s  ->  n_hat = %.0f, total %.3f s over %zu frames\n",
              title, out.n_hat, out.airtime.total_seconds(ctx.timing()),
              log.size());
  log.render_timeline(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 50000));
  const auto pop = rfid::make_population(
      n, rfid::TagIdDistribution::kT2ApproxNormal, cli.seed());
  std::printf("population: %zu tags; requirement (0.05, 0.05)\n\n", n);

  core::BfceEstimator bfce;
  show("BFCE", bfce, pop, cli.seed() + 1);
  estimators::SrcEstimator src;
  show("SRC ", src, pop, cli.seed() + 2);
  estimators::ZoeEstimator zoe;
  show("ZOE ", zoe, pop, cli.seed() + 3);

  std::printf("ZOE's wall of single-slot frames is almost entirely seed "
              "broadcasts (32 reader bits per 1 tag bit) — the overhead "
              "BFCE's two-broadcast design eliminates.\n");
  return 0;
}
