// Estimation as a service: spin up the worker pool, submit a burst of
// concurrent jobs with mixed (ε, δ) requirements and deadlines, and
// read the metrics snapshot — the serving-path counterpart of
// quickstart's single blocking estimate.
//
//   $ estimation_service [--jobs=64] [--workers=0] [--seed=...]

#include <cstdio>
#include <vector>

#include "core/planner.hpp"
#include "rfid/population.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"jobs", "workers", "seed"});
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 64));

  // Two floors of a warehouse, very different tag counts.
  const auto floor_a = rfid::make_population(
      40000, rfid::TagIdDistribution::kT1Uniform, cli.seed());
  const auto floor_b = rfid::make_population(
      600000, rfid::TagIdDistribution::kT2ApproxNormal, cli.seed() + 1);

  // One shared Theorem-4 planner: every BFCE job reuses earlier p_o
  // searches (the per-job n̂_low values repeat — watch the hit rate).
  core::PersistencePlanner planner;
  service::ServiceConfig cfg;
  cfg.workers = static_cast<unsigned>(cli.get_int("workers", 0));
  cfg.queue_capacity = 128;
  cfg.planner = &planner;
  service::EstimationService svc(cfg);

  std::printf("submitting a burst of %zu jobs...\n\n", jobs);
  const estimators::Requirement reqs[] = {{0.05, 0.05}, {0.1, 0.1},
                                          {0.02, 0.05}};
  std::vector<service::JobId> ids;
  ids.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    service::JobSpec spec;
    spec.population = (i % 2 == 0) ? &floor_a : &floor_b;
    spec.estimator = "BFCE";
    spec.req = reqs[i % 3];
    spec.seed = util::SeedMixer(cli.seed()).absorb(std::uint64_t{i}).value();
    spec.max_attempts = 2;       // one retry on a design-point miss
    spec.deadline_s = 30.0;      // drop anything stuck in the queue
    ids.push_back(svc.submit(spec));
  }
  svc.drain();

  std::printf("first few results:\n");
  for (std::size_t i = 0; i < ids.size() && i < 6; ++i) {
    const service::JobResult r = svc.wait(ids[i]);
    std::printf(
        "  job %2llu [%s] n_hat=%9.0f eps=%.2f attempts=%u airtime=%.3fs "
        "latency=%.1fms\n",
        static_cast<unsigned long long>(r.id), to_cstring(r.status),
        r.outcome.n_hat, reqs[i % 3].epsilon, r.attempts, r.airtime_s,
        r.latency_s * 1e3);
  }

  std::printf("\n-- metrics snapshot ------------------------------\n");
  std::printf("%s", render_service_metrics(svc.metrics()).c_str());
  return 0;
}
