// Multi-reader deployment — §III-A's system model in action.
//
//   $ multi_reader_floor [--n=60000] [--readers=9] [--radius=0.35]
//
// Drops tags on a warehouse floor, covers it with a grid of readers,
// and contrasts the back-end's coordinated (logical-reader) BFCE
// estimate with the naive sum of independent per-reader estimates —
// the double-counting pitfall the related work warns about.

#include <cstdio>
#include <vector>

#include "core/bfce.hpp"
#include "core/multiset.hpp"
#include "rfid/multireader.hpp"
#include "rfid/reader.hpp"
#include "util/cli.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n", "readers", "radius"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 60000));
  const auto reader_count =
      static_cast<std::size_t>(cli.get_int("readers", 9));
  const double radius = cli.get_double("radius", 0.35);

  const auto pop =
      rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform,
                            cli.seed());
  const rfid::MultiReaderSystem sys(
      pop, rfid::MultiReaderSystem::grid(reader_count, radius));

  std::printf("floor: %zu tags, %zu readers (radius %.2f)\n", n,
              sys.reader_count(), radius);
  std::printf("coverage: union=%zu, overlap(>=2 readers)=%zu, "
              "blind=%zu\n\n",
              sys.union_population().size(), sys.overlap_count(),
              sys.uncovered_count());

  core::BfceEstimator bfce;

  // Coordinated: the back-end synchronises all readers into one logical
  // reader over the union population (the paper's model).
  rfid::ReaderContext union_ctx(sys.union_population(), cli.seed() + 1,
                                rfid::FrameMode::kSampled);
  const auto coordinated = bfce.estimate(union_ctx, {0.05, 0.05});

  // Naive: every reader estimates its own disc independently and the
  // server adds the numbers up.
  double naive_sum = 0.0;
  for (std::size_t r = 0; r < sys.reader_count(); ++r) {
    if (sys.reader_population(r).size() == 0) continue;
    rfid::ReaderContext ctx(sys.reader_population(r),
                            cli.seed() + 10 + r, rfid::FrameMode::kSampled);
    naive_sum += bfce.estimate(ctx, {0.05, 0.05}).n_hat;
  }

  // Distributed: each reader takes one aligned Bloom snapshot of its own
  // disc; the back-end ORs the bitmaps — no tag-level data ever moves —
  // and inverts the merged snapshot (the multiple-set machinery).
  core::DifferentialConfig snap_cfg;
  snap_cfg.tune_for(static_cast<double>(n));
  const rfid::Channel channel;
  util::Xoshiro256ss snap_rng(cli.seed() + 99);
  std::vector<util::BitVector> snapshots;
  for (std::size_t r = 0; r < sys.reader_count(); ++r) {
    snapshots.push_back(core::take_snapshot(sys.reader_population(r),
                                            snap_cfg, channel, snap_rng));
  }
  std::vector<const util::BitVector*> ptrs;
  for (const auto& s : snapshots) ptrs.push_back(&s);
  const double distributed = core::estimate_snapshot(
      core::merge_snapshots(ptrs, snap_cfg), snap_cfg);

  const double union_n =
      static_cast<double>(sys.union_population().size());
  std::printf("coordinated (logical reader) : %8.0f   (true union %zu, "
              "error %.3f)\n",
              coordinated.n_hat, sys.union_population().size(),
              coordinated.relative_error(union_n));
  std::printf("distributed (OR of snapshots): %8.0f   (error %.3f, no "
              "tag-level merging)\n",
              distributed,
              std::fabs(distributed - union_n) / union_n);
  std::printf("naive per-reader sum         : %8.0f   (overcounts by "
              "%.0f%%)\n",
              naive_sum, 100.0 * (naive_sum - union_n) / union_n);

  // Reader-to-reader interference: overlapping readers cannot
  // interrogate at once, so the floor runs in coloured rounds.
  std::printf("\ninterference schedule: %u rounds for %zu readers -> "
              "whole-floor snapshot sweep ~ %.2f s of airtime\n",
              sys.schedule_rounds(), sys.reader_count(),
              static_cast<double>(sys.schedule_rounds()) * 0.16);
  std::printf("coordination is what makes multiple readers 'logically "
              "one reader' (paper SS III-A); without it, overlap regions "
              "are double-counted.\n");
  return 0;
}
