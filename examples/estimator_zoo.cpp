// Run every estimator in the library against the same population and
// compare accuracy and execution time — a hands-on tour of the public
// API and the design space of Fig 1.
//
//   $ estimator_zoo [--n=100000] [--dist=T2] [--eps=0.05] [--delta=0.05]

#include <cstdio>
#include <iostream>
#include <string>

#include "estimators/registry.hpp"
#include "rfid/reader.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace bfce;

namespace {

rfid::TagIdDistribution parse_dist(const std::string& s) {
  if (s == "T1") return rfid::TagIdDistribution::kT1Uniform;
  if (s == "T3") return rfid::TagIdDistribution::kT3Normal;
  return rfid::TagIdDistribution::kT2ApproxNormal;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n", "dist", "eps", "delta", "exact"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 100000));
  const auto dist = parse_dist(cli.get("dist", "T2"));
  const estimators::Requirement req{cli.get_double("eps", 0.05),
                                    cli.get_double("delta", 0.05)};
  const auto mode = cli.has("exact") ? rfid::FrameMode::kExact
                                     : rfid::FrameMode::kSampled;

  std::printf("population: n=%zu, distribution %s, requirement "
              "(eps=%.2f, delta=%.2f)\n\n",
              n, rfid::to_string(dist).c_str(), req.epsilon, req.delta);
  const rfid::TagPopulation pop = rfid::make_population(n, dist, cli.seed());

  util::Table table({"protocol", "estimate", "rel_error", "time_s",
                     "rounds", "note"});
  for (const std::string& name : estimators::estimator_names()) {
    const auto est = estimators::make_estimator(name);
    rfid::ReaderContext ctx(pop, cli.seed() + 17, mode);
    const auto out = est->estimate(ctx, req);
    table.add_row({name, util::Table::num(out.n_hat, 0),
                   util::Table::num(
                       out.relative_error(static_cast<double>(n)), 4),
                   util::Table::num(out.airtime.total_seconds(ctx.timing()),
                                    4),
                   util::Table::num(static_cast<std::uint64_t>(out.rounds)),
                   out.note.empty() ? "-" : out.note});
  }
  table.print(std::cout);
  std::printf("\nLOF/PET are magnitude estimators (no (eps,delta) "
              "contract); everything else targets the requirement.\n");
  return 0;
}
