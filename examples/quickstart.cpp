// Quickstart: estimate the cardinality of a tag population with BFCE.
//
//   $ quickstart [--n=500000] [--eps=0.05] [--delta=0.05] [--seed=...]
//
// Walks through the full §IV protocol and prints the per-phase trace so
// you can see the probe, the rough lower bound, the Theorem-4 choice of
// p_o and the final estimate.

#include <cstdio>

#include "core/bfce.hpp"
#include "rfid/reader.hpp"
#include "util/cli.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n", "eps", "delta"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 500000));
  const estimators::Requirement req{cli.get_double("eps", 0.05),
                                    cli.get_double("delta", 0.05)};

  // 1. A population of tags in the reader's range (T1: uniform tagIDs).
  std::printf("deploying %zu tags...\n", n);
  const rfid::TagPopulation pop = rfid::make_population(
      n, rfid::TagIdDistribution::kT1Uniform, cli.seed());

  // 2. A reader context: channel, C1G2 timing, RNG stream.
  rfid::ReaderContext ctx(pop, cli.seed() + 1);

  // 3. Run BFCE with the paper's default parameters (w=8192, k=3, c=0.5).
  core::BfceEstimator bfce;
  core::BfceTrace trace;
  const estimators::EstimateOutcome out =
      bfce.estimate_traced(ctx, req, trace);

  // 4. Results.
  std::printf("\n-- protocol trace --------------------------------\n");
  std::printf("probe iterations     : %u (settled on p_s = %u/1024)\n",
              trace.probe_iterations, trace.p_s_numerator);
  std::printf("rough phase          : rho=%.4f over %u slots -> n_r=%.0f\n",
              trace.rho_rough, trace.rough_slots_observed, trace.n_rough);
  std::printf("lower bound (c=%.1f)  : n_low=%.0f\n", bfce.params().c,
              trace.n_low);
  std::printf("Theorem-4 choice     : p_o = %u/1024 (margin %.3f, %s)\n",
              trace.p_choice.p_n, trace.p_choice.margin,
              trace.p_choice.satisfies ? "satisfies Theorem 3"
                                       : "best-effort fallback");
  std::printf("accurate phase       : rho=%.4f over %u slots\n",
              trace.rho_accurate, bfce.params().w);
  std::printf("\n-- result ----------------------------------------\n");
  std::printf("true cardinality     : %zu\n", n);
  std::printf("estimated            : %.0f  (relative error %.4f, "
              "requirement eps=%.2f)\n",
              out.n_hat, out.relative_error(static_cast<double>(n)),
              req.epsilon);
  std::printf("execution time       : %.4f s  (reader bits=%llu, tag "
              "bit-slots=%llu, gaps=%llu)\n",
              out.airtime.total_seconds(ctx.timing()),
              static_cast<unsigned long long>(out.airtime.reader_bits),
              static_cast<unsigned long long>(out.airtime.tag_bits),
              static_cast<unsigned long long>(out.airtime.intervals));
  std::printf("constant-time claim  : < 0.19 s two-phase budget + probe "
              "cost, independent of n\n");
  return 0;
}
