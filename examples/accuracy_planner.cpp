// Protocol planner: explore BFCE's Theorem 3/4 machinery without running
// a simulation. Given a rough idea of the population size and an (ε, δ)
// target, prints the persistence probability BFCE would select, the
// resulting slot load, the expected bitmap composition, and the fixed
// airtime budget.
//
//   $ accuracy_planner [--n_low=250000] [--eps=0.05] [--delta=0.05]

#include <cmath>
#include <cstdio>

#include "core/analysis.hpp"
#include "math/erf.hpp"
#include "rfid/timing.hpp"
#include "util/cli.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n_low", "eps", "delta", "w", "k"});
  const double n_low = cli.get_double("n_low", 250000.0);
  const double eps = cli.get_double("eps", 0.05);
  const double delta = cli.get_double("delta", 0.05);
  const auto w = static_cast<std::uint32_t>(cli.get_int("w", 8192));
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 3));

  const double d = math::confidence_d(delta);
  std::printf("requirement: Pr{|n_hat - n| <= %.2f n} >= %.2f  "
              "(z-score d = %.4f)\n\n",
              eps, 1.0 - delta, d);

  const core::PersistenceChoice choice =
      core::find_persistence(n_low, w, k, eps, delta);
  if (choice.satisfies) {
    std::printf("selected p_o = %u/1024 = %.6f (minimal satisfying "
                "Theorem 3 at n_low=%.0f)\n",
                choice.p_n, choice.p, n_low);
  } else {
    std::printf("NO grid p satisfies Theorem 3 at n_low=%.0f; "
                "best-effort p = %u/1024 (margin %.3f)\n",
                n_low, choice.p_n, choice.margin);
    std::printf("(the paper restricts BFCE to n > 1000 for this reason)\n");
  }

  // What the accurate phase will look like if n is up to 1/c times n_low.
  std::printf("\n%-12s %-10s %-12s %-12s %-8s %-8s\n", "assumed n",
              "lambda", "E[idle] (1s)", "E[busy] (0s)", "f1", "f2");
  for (const double mult : {1.0, 1.5, 2.0, 3.0}) {
    const double n = n_low * mult;
    const double lambda = core::slot_load(n, w, k, choice.p);
    const double idle = std::exp(-lambda) * w;
    std::printf("%-12.0f %-10.4f %-12.1f %-12.1f %-8.2f %-8.2f\n", n,
                lambda, idle, w - idle, core::f1(n, w, k, choice.p, eps),
                core::f2(n, w, k, choice.p, eps));
  }

  // Scalability envelope and the fixed time budget.
  const core::GammaBounds b = core::gamma_bounds(k);
  std::printf("\nscalability: %.6f*w <= n_hat <= %.1f*w  "
              "(max cardinality %.1f million for w=%u)\n",
              b.min, b.max, b.max_cardinality(w) / 1e6, w);

  rfid::Airtime budget;
  budget.reader_bits = 2 * (k * 32 + 32);
  budget.intervals = 3;
  budget.tag_bits = 1024 + w;
  std::printf("fixed two-phase airtime (excl. probes): %.4f s  "
              "(paper bound: < 0.19 s at w=8192)\n",
              budget.total_seconds(rfid::TimingModel{}));
  return 0;
}
