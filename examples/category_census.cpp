// Per-category census with C1G2 Select + BFCE.
//
//   $ category_census [--prefix_bits=4]
//
// A warehouse stores four product lines whose EPCs share category
// prefixes. The reader broadcasts one Select per category to scope the
// round, then runs BFCE — counting each line in ~0.2 s without reading
// a single full EPC.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/bfce.hpp"
#include "rfid/reader.hpp"
#include "rfid/select.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"prefix_bits"});
  const auto prefix_bits =
      static_cast<std::uint32_t>(cli.get_int("prefix_bits", 4));

  const std::vector<std::size_t> truth = {12000, 45000, 8000, 70000};
  const char* names[] = {"beverages", "apparel", "electronics", "grocery"};
  const auto pop =
      rfid::make_categorized_population(truth, prefix_bits, cli.seed());
  std::printf("warehouse: %zu tags across %zu categories "
              "(%u-bit EPC prefix)\n\n",
              pop.size(), truth.size(), prefix_bits);

  core::BfceEstimator bfce;
  util::Table table({"category", "actual", "estimate", "ci_95", "error",
                     "airtime_s"});
  double grand_total = 0.0;
  for (std::uint64_t c = 0; c < truth.size(); ++c) {
    rfid::SelectMask mask;
    mask.prefix = c;
    mask.prefix_bits = prefix_bits;
    const auto sub = rfid::select_population(pop, mask);

    rfid::ReaderContext ctx(sub, cli.seed() + 100 + c,
                            rfid::FrameMode::kSampled);
    auto out = bfce.estimate(ctx, {0.05, 0.05});
    out.airtime += mask.airtime_cost();  // the Select broadcast itself
    grand_total += out.n_hat;

    table.add_row(
        {names[c], util::Table::num(static_cast<std::uint64_t>(truth[c])),
         util::Table::num(out.n_hat, 0),
         // Built incrementally: operator+ chains trip GCC 12's
         // -Wrestrict false positive under -Werror.
         [&] {
           std::string ci = "[";
           ci += util::Table::num(out.ci_low, 0);
           ci += ", ";
           ci += util::Table::num(out.ci_high, 0);
           ci += "]";
           return ci;
         }(),
         util::Table::num(
             out.relative_error(static_cast<double>(truth[c])), 4),
         util::Table::num(out.airtime.total_seconds(ctx.timing()), 3)});
  }
  table.print(std::cout);
  std::printf("\nsum of category estimates: %.0f (actual %zu)\n",
              grand_total, pop.size());
  std::printf("four Select+BFCE rounds ~ 0.8 s of airtime total; an EPC "
              "inventory of this stock would take minutes per category.\n");
  return 0;
}
