// Warehouse inventory monitoring — the inventory-management scenario the
// paper's introduction motivates.
//
//   $ warehouse_inventory [--days=14] [--stock=120000] [--seed=...]
//
// A warehouse starts with `stock` tagged items. Every day goods ship out
// (and occasionally "shrink" — theft/misplacement). The reader runs one
// BFCE round per day (≈0.2 s of airtime instead of minutes of full
// inventory) and raises an alarm when the estimated stock deviates from
// the books by more than the estimation error can explain.

#include <cstdio>
#include <vector>

#include "core/bfce.hpp"
#include "rfid/reader.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"days", "stock", "eps"});
  const int days = static_cast<int>(cli.get_int("days", 14));
  const auto stock0 = static_cast<std::size_t>(cli.get_int("stock", 120000));
  const double eps = cli.get_double("eps", 0.05);

  util::Xoshiro256ss world(cli.seed());
  core::BfceEstimator bfce;

  // The books: what the warehouse management system believes.
  double booked = static_cast<double>(stock0);
  std::size_t actual = stock0;

  std::printf("day  booked    actual    estimate  deviation  airtime  "
              "status\n");
  std::printf("---------------------------------------------------------"
              "------\n");
  for (int day = 1; day <= days; ++day) {
    // Legitimate shipments: 2-5% of stock, recorded in the books.
    const auto shipped = static_cast<std::size_t>(
        static_cast<double>(actual) * (0.02 + 0.03 * world.uniform()));
    actual -= shipped;
    booked -= static_cast<double>(shipped);

    // Shrinkage: on two days of the window, 3% of stock walks out
    // unrecorded — this is what the estimator should catch.
    const bool theft_day = (day == 6 || day == 11);
    if (theft_day) {
      const auto stolen =
          static_cast<std::size_t>(static_cast<double>(actual) * 0.03);
      actual -= stolen;
    }

    // One BFCE round against the tags actually present.
    const rfid::TagPopulation pop = rfid::make_population(
        actual, rfid::TagIdDistribution::kT1Uniform,
        cli.seed() + static_cast<std::uint64_t>(day) * 1000);
    rfid::ReaderContext ctx(pop,
                            cli.seed() ^ (static_cast<std::uint64_t>(day)
                                          << 32),
                            rfid::FrameMode::kSampled);
    const auto out = bfce.estimate(ctx, {eps, 0.05});

    // Alarm rule: deviation beyond what an (ε, δ) estimate can explain.
    const double deviation = (booked - out.n_hat) / booked;
    const bool alarm = deviation > eps;
    std::printf("%3d  %8.0f  %8zu  %8.0f  %8.2f%%  %.3fs  %s\n", day,
                booked, actual, out.n_hat, 100.0 * deviation,
                out.airtime.total_seconds(ctx.timing()),
                alarm ? "ALARM: shrinkage suspected"
                      : (theft_day ? "(theft today)" : "ok"));
    if (alarm) {
      // After a physical recount the books are corrected.
      booked = static_cast<double>(actual);
      std::printf("     -> full inventory ordered; books corrected to %zu\n",
                  actual);
    }
  }
  std::printf("\nEach daily check cost ~0.2 s of airtime; a full C1G2 "
              "inventory of this stock would take minutes.\n");
  return 0;
}
