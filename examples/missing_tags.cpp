// Missing-tag (churn) detection with differential Bloom snapshots — the
// library's extension of BFCE beyond one-shot cardinality (DESIGN.md §6).
//
//   $ missing_tags [--n=20000] [--departed=1500] [--arrived=500]
//
// Takes a reference snapshot of the warehouse, applies churn, takes a
// second snapshot with the SAME seeds, and estimates how many tags left
// and arrived — from two 8192-bit bitmaps, no inventory.

#include <cstdio>
#include <vector>

#include "core/differential.hpp"
#include "rfid/population.hpp"
#include "rfid/timing.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n", "departed", "arrived"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20000));
  const auto departed =
      static_cast<std::size_t>(cli.get_int("departed", 1500));
  const auto arrived = static_cast<std::size_t>(cli.get_int("arrived", 500));

  // World state: n tags now, of which `departed` will leave; `arrived`
  // new ones will show up.
  const auto everything = rfid::make_population(
      n + arrived, rfid::TagIdDistribution::kT1Uniform, cli.seed());
  std::vector<rfid::Tag> before(everything.tags().begin(),
                                everything.tags().begin() +
                                    static_cast<long>(n));
  std::vector<rfid::Tag> after(everything.tags().begin() +
                                   static_cast<long>(departed),
                               everything.tags().end());
  const rfid::TagPopulation pop_before{std::move(before)};
  const rfid::TagPopulation pop_after{std::move(after)};

  core::DifferentialConfig cfg;
  cfg.tune_for(static_cast<double>(n));
  std::printf("differential config: w=%u, k=%u, deterministic sample "
              "p=%.4f\n\n",
              cfg.w, cfg.k, cfg.p);

  const rfid::Channel channel;
  util::Xoshiro256ss rng(cli.seed() + 1);
  const auto snap_ref = core::take_snapshot(pop_before, cfg, channel, rng);
  std::printf("day 0: reference snapshot taken (%zu busy slots of %u)\n",
              snap_ref.count_ones(), cfg.w);
  const auto snap_now = core::take_snapshot(pop_after, cfg, channel, rng);
  std::printf("day 1: current snapshot taken  (%zu busy slots of %u)\n\n",
              snap_now.count_ones(), cfg.w);

  const core::ChurnEstimate churn =
      core::compare_snapshots(snap_ref, snap_now, cfg);
  std::printf("            estimated   actual\n");
  std::printf("departed    %8.0f    %zu\n", churn.departed, departed);
  std::printf("arrived     %8.0f    %zu\n", churn.arrived, arrived);
  std::printf("stayed      %8.0f    %zu\n", churn.stayed, n - departed);
  if (churn.degenerate) {
    std::printf("\nWARNING: a snapshot was saturated — retune p "
                "(cfg.tune_for) for this population size.\n");
  }

  rfid::Airtime per_snapshot;
  per_snapshot.add_reader_broadcast(3 * 32 + 32);
  per_snapshot.add_tag_slots(cfg.w);
  std::printf("\neach snapshot costs %.4f s of airtime; a full inventory "
              "diff would need two complete C1G2 reads.\n",
              per_snapshot.total_seconds(rfid::TimingModel{}));
  return 0;
}
