// Batch access control — the application the paper's introduction
// opens with (its refs [1][2]).
//
//   $ access_control [--enrolled=20000] [--missing=600] [--intruders=150]
//
// A secured area holds `enrolled` tagged assets. The reader verifies the
// whole batch from a few dozen Bloom rounds: which enrolled assets are
// missing, and is anything transmitting that shouldn't be? It also asks
// the cheaper SPRT question first: "are we even near the expected
// count?"

#include <cstdio>
#include <vector>

#include "core/authenticate.hpp"
#include "core/threshold.hpp"
#include "rfid/reader.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace bfce;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"enrolled", "missing", "intruders"});
  const auto n = static_cast<std::size_t>(cli.get_int("enrolled", 20000));
  const auto missing =
      static_cast<std::size_t>(cli.get_int("missing", 600));
  const auto intruders =
      static_cast<std::size_t>(cli.get_int("intruders", 150));

  const auto enrolled = rfid::make_population(
      n, rfid::TagIdDistribution::kT1Uniform, cli.seed());
  const auto foreign = rfid::make_population(
      intruders, rfid::TagIdDistribution::kT3Normal, cli.seed() + 1);
  std::vector<rfid::Tag> field_tags(
      enrolled.tags().begin(),
      enrolled.tags().end() - static_cast<long>(missing));
  for (const rfid::Tag& t : foreign.tags()) field_tags.push_back(t);
  const rfid::TagPopulation field{std::move(field_tags)};

  std::printf("secured area: %zu enrolled assets; tonight %zu are gone "
              "and %zu foreign tags slipped in\n\n",
              n, missing, intruders);

  // Stage 1: the cheap question — has the count collapsed (bulk theft)?
  // A decisive "still above 90%" costs a few dozen slots; the per-asset
  // details are stage 2's job.
  rfid::ReaderContext ctx(field, cli.seed() + 2, rfid::FrameMode::kSampled);
  core::ThresholdQuery tq;
  tq.threshold = static_cast<double>(n) * 0.90;
  tq.gamma = 1.05;
  tq.max_slots = 3000;
  const auto tans = core::threshold_query(ctx, tq);
  std::printf("stage 1 (SPRT, %u slots, %.3f s): population %s %.0f%s\n",
              tans.slots, tans.time_us / 1e6,
              tans.above ? "still above" : "BELOW", tq.threshold,
              tans.decisive ? "" : " (indecisive: near the line)");

  // Stage 2: full batch verification.
  core::AuthConfig cfg;
  util::Xoshiro256ss rng(cli.seed() + 3);
  const auto out =
      core::verify_batch(enrolled, field, cfg, rfid::Channel{}, rng);
  std::printf("stage 2 (batch verify, %u rounds, %.2f s of airtime):\n",
              out.rounds_used,
              out.airtime.total_seconds(rfid::TimingModel{}));
  std::printf("  present    : %zu\n", out.present_count);
  std::printf("  MISSING    : %zu   (actual %zu; residual false-presence "
              "%.4f)\n",
              out.absent_count, missing, out.false_presence_mean);
  std::printf("  unverified : %zu   (never sampled; re-run to cover)\n",
              out.unverified_count);
  std::printf("  intruder evidence: %llu busy slots no enrolled asset "
              "explains (%s)\n",
              static_cast<unsigned long long>(out.unexplained_busy_slots),
              out.unexplained_busy_slots > 10 ? "ALARM" : "clean");

  // Name a few missing assets — the verdicts are per-tag.
  std::printf("\nfirst few missing asset IDs:");
  int shown = 0;
  for (std::size_t t = 0; t < enrolled.size() && shown < 5; ++t) {
    if (out.verdicts[t] == core::AuthVerdict::kAbsent) {
      std::printf(" %llu", static_cast<unsigned long long>(enrolled[t].id));
      ++shown;
    }
  }
  std::printf("\n\nan EPC inventory of this room would take minutes; the "
              "two stages above used a few seconds of airtime.\n");
  return 0;
}
