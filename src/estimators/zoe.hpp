#pragma once
// ZOE — Zero-One Estimator (Zheng & Li, INFOCOM 2013), as the paper runs
// it in §V-C.
//
// ZOE observes a sequence of independent single-slot frames. Before each
// frame the reader broadcasts a fresh 32-bit seed; every tag hashes its
// ID with that seed and participates with probability q, tuned so that
// the per-frame idle probability e^{−λ} sits at the variance-optimal
// load λ* ≈ 1.594. The idle fraction ρ̄ over m frames yields
// n̂ = −ln(ρ̄)/q.
//
// The slot count quoted by our paper:
//     m = ⌈ d·σ_max / (e^{−λ}(1 − e^{−ελ})) ⌉²,  σ_max = 0.5
// with d = √2·erfinv(1−δ). Because q is derived from a rough estimate
// (LOF × 10 rounds, per §V-C), a bad rough estimate drives the actual
// load λ̂ off λ*, and the bound must be re-evaluated at λ̂ — the reader
// keeps adding frames until it holds (capped at 8× the plan). This is
// §V-C's "an estimation that fairly deviates from the actual
// cardinality will lead to a sharp growth of the required time slots",
// the source of ZOE's multi-second worst cases in Fig 10. If the idle
// ratio ends up outside the usable band entirely, the protocol redoes
// both phases.
//
// The dominant cost is the per-frame seed broadcast (m × 32 bits at
// 37.76 µs/bit), which is exactly the inefficiency BFCE attacks.

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"
#include "estimators/lof.hpp"

namespace bfce::estimators {

struct ZoeParams {
  double lambda_star = 1.594;   ///< variance-optimal per-frame load
  double sigma_max = 0.5;       ///< σ(X) bound used in the m formula
  std::uint32_t seed_bits = 32; ///< per-frame seed broadcast width
  LofParams rough;              ///< LOF × 10 rounds (paper's grafted phase)
  /// Usable band for the observed idle ratio; outside it the estimate is
  /// statistically worthless and ZOE restarts both phases.
  double usable_rho_min = 0.04;
  double usable_rho_max = 0.80;
  std::uint32_t max_restarts = 2;
};

class ZoeEstimator final : public CardinalityEstimator {
 public:
  ZoeEstimator() = default;
  explicit ZoeEstimator(ZoeParams params) : params_(params) {}

  std::string name() const override { return "ZOE"; }
  [[nodiscard]] const ZoeParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

  /// The m formula above — exposed for tests and the time model.
  static std::uint64_t required_frames(double epsilon, double delta,
                                       double lambda_star, double sigma_max);

 private:
  ZoeParams params_;
};

}  // namespace bfce::estimators
