#include "estimators/mle.hpp"

#include <algorithm>
#include <cmath>

#include "estimators/lof.hpp"
#include "math/erf.hpp"

namespace bfce::estimators {

namespace {

double log_likelihood(const std::vector<MleEstimator::FrameEvidence>& frames,
                      std::uint32_t f, double n) {
  const double f_d = static_cast<double>(f);
  double ll = 0.0;
  for (const auto& fr : frames) {
    const double q = std::exp(-fr.p * n / f_d);
    // Clamp away from {0,1} so saturated frames contribute finitely.
    const double qc = std::clamp(q, 1e-12, 1.0 - 1e-12);
    const double e = static_cast<double>(fr.empties);
    ll += e * std::log(qc) + (f_d - e) * std::log1p(-qc);
  }
  return ll;
}

}  // namespace

double MleEstimator::maximize_likelihood(
    const std::vector<FrameEvidence>& frames, std::uint32_t frame_size,
    double n_max) {
  // Golden-section search on ln n; L is unimodal in n for this family.
  constexpr double kInvPhi = 0.6180339887498949;
  double lo = 0.0;  // ln 1
  double hi = std::log(n_max);
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  double f1 = log_likelihood(frames, frame_size, std::exp(x1));
  double f2 = log_likelihood(frames, frame_size, std::exp(x2));
  for (int it = 0; it < 200 && hi - lo > 1e-10; ++it) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      f2 = log_likelihood(frames, frame_size, std::exp(x2));
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      f1 = log_likelihood(frames, frame_size, std::exp(x1));
    }
  }
  return std::exp(0.5 * (lo + hi));
}

EstimateOutcome MleEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;

  LofEstimator pilot(LofParams{32, 2, params_.seed_bits});
  const EstimateOutcome pilot_out = pilot.estimate(ctx, req);
  out.airtime += pilot_out.airtime;
  double n_hat = std::max(1.0, pilot_out.n_hat);

  const double f_d = static_cast<double>(params_.frame_size);
  const double d = math::confidence_d(req.delta);
  std::vector<FrameEvidence> evidence;
  evidence.reserve(params_.max_rounds);

  for (std::uint32_t r = 0; r < params_.max_rounds; ++r) {
    const double p = std::min(1.0, params_.lambda_target * f_d / n_hat);
    const std::uint64_t seed = ctx.next_seed();
    const auto states =
        ctx.mode() == rfid::FrameMode::kExact
            ? rfid::run_aloha_frame(ctx.tags(), params_.frame_size, p, seed,
                                    ctx.channel(), ctx.rng(), &out.airtime.tag_tx_bits)
            : rfid::sampled_aloha_frame(ctx.tags().size(),
                                        params_.frame_size, p, ctx.channel(),
                                        ctx.rng(), &out.airtime.tag_tx_bits);
    out.airtime.add_reader_broadcast(params_.seed_bits + params_.size_bits);
    out.airtime.add_tag_slots(params_.frame_size);
    ++out.rounds;

    std::uint32_t empties = 0;
    for (const rfid::SlotState s : states) {
      if (!rfid::is_busy(s)) ++empties;
    }
    evidence.push_back(FrameEvidence{p, empties});
    n_hat = maximize_likelihood(evidence, params_.frame_size,
                                params_.n_search_max);

    // Fisher-information stop: at load λ per frame, each frame pins n to
    // a relative sd of √((e^λ−1))/(λ√f); r frames shrink it by √r.
    const double lam = std::min(params_.lambda_target, p * n_hat / f_d);
    if (lam > 1e-9) {
      const double rel_sd_one =
          std::sqrt(std::exp(lam) - 1.0) / (lam * std::sqrt(f_d));
      const double rel_sd =
          rel_sd_one / std::sqrt(static_cast<double>(r + 1));
      if (d * rel_sd <= req.epsilon) break;
    }
  }

  out.n_hat = n_hat;
  if (out.rounds >= params_.max_rounds) {
    out.met_by_design = false;
    out.note = "round cap reached before the Fisher bound";
  }
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
