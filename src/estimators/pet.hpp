#pragma once
// PET — Probabilistic Estimating Tree (Zheng & Li, TMC 2012), in its
// O(log log n) binary-search formulation.
//
// Tags hash to a geometric level (level l with probability 2^-(l+1)).
// A query at level l asks "any tag with level ≥ l?" and costs a single
// bit-slot. The highest responding level L concentrates around log2(n),
// so a binary search over levels finds L in O(log log n) slots, and
//     n̂ = 1.2897 · 2^(L̄)
// after averaging L over rounds (the same Flajolet–Martin correction as
// LOF, but paid for with exponentially fewer slots per round).

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct PetParams {
  std::uint32_t max_level = 40;  ///< supports n up to ~2^40
  std::uint32_t rounds = 16;
  std::uint32_t seed_bits = 32;
  std::uint32_t level_bits = 6;  ///< level announcement width
};

class PetEstimator final : public CardinalityEstimator {
 public:
  PetEstimator() = default;
  explicit PetEstimator(PetParams params) : params_(params) {}

  std::string name() const override { return "PET"; }
  [[nodiscard]] const PetParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

 private:
  PetParams params_;
};

}  // namespace bfce::estimators
