#pragma once
// EZB — Enhanced Zero-Based estimator (Kodialam, Nandagopal & Lau,
// INFOCOM 2007).
//
// Repeated slotted bit-frames of fixed size f with persistence p; the
// average number of empty slots across rounds is inverted through the
// e^{−λ} law. EZB predates load tuning: p is set once from a coarse
// first-frame guess, and accuracy is bought purely with repetition. The
// number of rounds for an (ε, δ) target follows the same CLT bound as
// Theorem 3 with w replaced by r·f (r rounds of f slots).

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct EzbParams {
  std::uint32_t frame_size = 512;  ///< bit-slots per frame
  double lambda_target = 1.594;    ///< load the persistence aims for
  std::uint32_t seed_bits = 32;
  std::uint32_t size_bits = 16;
  std::uint32_t max_rounds = 512;  ///< hard cap on repetition
};

class EzbEstimator final : public CardinalityEstimator {
 public:
  EzbEstimator() = default;
  explicit EzbEstimator(EzbParams params) : params_(params) {}

  std::string name() const override { return "EZB"; }
  [[nodiscard]] const EzbParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

  /// Rounds of f slots needed for (ε, δ) at load λ.
  static std::uint32_t required_rounds(double epsilon, double delta,
                                       double lambda, std::uint32_t f);

 private:
  EzbParams params_;
};

}  // namespace bfce::estimators
