#pragma once
// ART — Average-Run-based Tag estimation (Shahzad & Liu, MobiCom 2012).
//
// ART reads the same persistence-p ALOHA bit-frames as EZB but extracts a
// different statistic: the average length of runs of busy slots. For a
// frame whose slots are busy i.i.d. with probability b, the expected run
// length is 1/(1−b), so
//     r̄ observed  ⇒  b̂ = 1 − 1/r̄  ⇒  λ̂ = −ln(1−b̂)  ⇒  n̂ = λ̂·f/p.
// The run statistic has lower variance than the raw busy count at equal
// frame size (the original paper's contribution); we exploit it with a
// sequential stopping rule: keep adding frames until the CLT interval of
// the per-frame estimates meets (ε, δ).

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct ArtParams {
  std::uint32_t frame_size = 512;
  double lambda_target = 1.0;  ///< moderate load keeps runs informative
  std::uint32_t seed_bits = 32;
  std::uint32_t size_bits = 16;
  std::uint32_t min_rounds = 8;
  std::uint32_t max_rounds = 4096;
};

class ArtEstimator final : public CardinalityEstimator {
 public:
  ArtEstimator() = default;
  explicit ArtEstimator(ArtParams params) : params_(params) {}

  std::string name() const override { return "ART"; }
  [[nodiscard]] const ArtParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

  /// Average busy-run length of a slot-state sequence; 0 if no busy slot.
  static double average_busy_run(const std::vector<rfid::SlotState>& states);

 private:
  ArtParams params_;
};

}  // namespace bfce::estimators
