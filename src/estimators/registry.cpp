#include "estimators/registry.hpp"

#include "core/bfce.hpp"
#include "estimators/a3.hpp"
#include "estimators/art.hpp"
#include "estimators/ezb.hpp"
#include "estimators/fneb.hpp"
#include "estimators/lof.hpp"
#include "estimators/mle.hpp"
#include "estimators/pet.hpp"
#include "estimators/src_protocol.hpp"
#include "estimators/upe.hpp"
#include "estimators/zoe.hpp"

namespace bfce::estimators {

std::vector<std::string> estimator_names() {
  return {"BFCE", "BFCE-avg", "ZOE", "SRC", "A3",  "LOF",
          "UPE",  "EZB",      "FNEB", "ART", "MLE", "PET"};
}

std::unique_ptr<CardinalityEstimator> make_estimator(
    const std::string& name) {
  if (name == "BFCE") return std::make_unique<core::BfceEstimator>();
  if (name == "BFCE-avg") {
    return std::make_unique<core::AveragedBfceEstimator>();
  }
  if (name == "ZOE") return std::make_unique<ZoeEstimator>();
  if (name == "SRC") return std::make_unique<SrcEstimator>();
  if (name == "A3") return std::make_unique<A3Estimator>();
  if (name == "LOF") return std::make_unique<LofEstimator>();
  if (name == "UPE") return std::make_unique<UpeEstimator>();
  if (name == "EZB") return std::make_unique<EzbEstimator>();
  if (name == "FNEB") return std::make_unique<FnebEstimator>();
  if (name == "ART") return std::make_unique<ArtEstimator>();
  if (name == "MLE") return std::make_unique<MleEstimator>();
  if (name == "PET") return std::make_unique<PetEstimator>();
  return nullptr;
}

}  // namespace bfce::estimators
