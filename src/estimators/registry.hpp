#pragma once
// Name-based construction of every estimator in the library.

#include <memory>
#include <string>
#include <vector>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

/// Names accepted by make_estimator, in a stable presentation order.
/// "BFCE" is included (constructed with its default paper parameters).
std::vector<std::string> estimator_names();

/// Constructs an estimator by name with default parameters; returns
/// nullptr for an unknown name. Accepted: BFCE, BFCE-avg, ZOE, SRC, A3,
/// LOF, UPE, EZB, FNEB, ART, MLE, PET.
std::unique_ptr<CardinalityEstimator> make_estimator(const std::string& name);

}  // namespace bfce::estimators
