#include "estimators/pet.hpp"

#include <cmath>

namespace bfce::estimators {

namespace {
constexpr double kFmCorrection = 1.2897;  // same correction as LOF
}

EstimateOutcome PetEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& /*req*/) {
  EstimateOutcome out;
  out.rounds = 0;
  double level_sum = 0.0;

  for (std::uint32_t r = 0; r < params_.rounds; ++r) {
    const std::uint64_t seed = ctx.next_seed();
    // Query at level l: a tag responds iff its geometric level ≥ l,
    // which happens with probability 2^-l — a single-slot frame with
    // q = 2^-l against the per-round seed.
    auto level_busy = [&](std::uint32_t l) {
      const double q = std::ldexp(1.0, -static_cast<int>(l));
      const rfid::SlotState s =
          ctx.mode() == rfid::FrameMode::kExact
              ? rfid::run_single_slot(ctx.tags(), q, seed, ctx.channel(),
                                      ctx.rng(), &out.airtime.tag_tx_bits)
              : rfid::sampled_single_slot(ctx.tags().size(), q,
                                          ctx.channel(), ctx.rng(),
                                          &out.airtime.tag_tx_bits);
      out.airtime.add_reader_broadcast(params_.seed_bits +
                                       params_.level_bits);
      out.airtime.add_tag_slots(1);
      return rfid::is_busy(s);
    };

    // Binary search for the highest busy level. Invariant: lo is busy
    // (level 0 is busy whenever any tag exists), hi is idle.
    if (!level_busy(0)) {
      // No tag responded at level 0 — empty (or near-empty) system.
      continue;
    }
    std::uint32_t lo = 0;
    std::uint32_t hi = params_.max_level;
    if (level_busy(hi)) {
      level_sum += static_cast<double>(hi);
      ++out.rounds;
      continue;
    }
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (level_busy(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    level_sum += static_cast<double>(lo);
    ++out.rounds;
  }

  out.n_hat = out.rounds == 0
                  ? 0.0
                  : kFmCorrection *
                        std::exp2(level_sum / static_cast<double>(out.rounds));
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
