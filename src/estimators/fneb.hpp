#pragma once
// FNEB — First-Non-Empty-slot-Based estimator (Han et al., INFOCOM 2010).
//
// The reader announces a very large virtual frame; every tag picks a
// uniform slot. The frame is terminated as soon as the first busy slot
// is heard; with U the first busy slot index (0-based),
//     E[U] ≈ f/(n+1),
// so repeating R rounds and averaging gives n̂ = f/Ū − 1. U is nearly
// exponentially distributed (coefficient of variation ≈ 1), so R =
// ⌈(d/ε)²⌉ rounds deliver an (ε, δ) mean — and each round costs only
// ~f/n slots thanks to early termination.

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct FnebParams {
  std::uint32_t frame_size = 1u << 20;  ///< virtual frame (announced, never run)
  std::uint32_t seed_bits = 32;
  std::uint32_t size_bits = 32;         ///< the large frame needs a wide field
  std::uint32_t max_rounds = 4096;
};

class FnebEstimator final : public CardinalityEstimator {
 public:
  FnebEstimator() = default;
  explicit FnebEstimator(FnebParams params) : params_(params) {}

  std::string name() const override { return "FNEB"; }
  [[nodiscard]] const FnebParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

 private:
  FnebParams params_;
};

}  // namespace bfce::estimators
