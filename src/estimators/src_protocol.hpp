#pragma once
// SRC — the enhanced two-phase counting protocol of Chen, Zhou & Yu,
// "Understanding RFID counting protocols" (MobiCom 2013), as the paper
// runs it in §V-C.
//
// Phase 1 (rough): a couple of lottery frames give a constant-factor
// estimate n̂_r of n.
//
// Phase 2 (refined): a slotted ALOHA frame of f = Θ(1/ε²) bit-slots in
// which each tag replies in one hashed slot with persistence
// p = λ*·f/n̂_r, so the per-slot load sits near the variance-optimal
// λ* ≈ 1.594. Inverting the idle fraction gives an (ε, 0.2) estimate.
// To reach error probability δ < 0.2 the paper repeats phase 2 for m
// rounds and takes the median, with m the smallest (odd) integer
// satisfying Σ_{i=(m+1)/2}^{m} C(m,i)·0.8^i·0.2^{m−i} ≥ 1 − δ — the
// exact rule quoted in §V-C (math::src_round_count).
//
// The phase-2 frame size is
//     f = ⌈ calibration · (d₀.₂·σ(X)/(e^{−λ*}(1 − e^{−ελ*})))² ⌉,
// the CLT bound for a single (ε, 0.2) frame times a calibration constant.
// The constant absorbs the protocol overheads Chen et al. account for
// that our slot-level model does not (their Θ(1/ε²) bound carries a
// sizeable constant); it is fixed once (EXPERIMENTS.md) so that the
// SRC/BFCE average time ratio lands near the ~2× the paper reports.

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"
#include "estimators/lof.hpp"

namespace bfce::estimators {

struct SrcParams {
  double lambda_star = 1.594;     ///< target per-slot load in phase 2
  double per_round_delta = 0.2;   ///< per-round error probability
  double calibration = 2.75;      ///< frame-size constant (see header note)
  std::uint32_t seed_bits = 32;   ///< per-round seed broadcast width
  std::uint32_t size_bits = 16;   ///< frame-size announcement width
  LofParams rough{32, 2, 32};     ///< phase 1: two lottery frames
};

class SrcEstimator final : public CardinalityEstimator {
 public:
  SrcEstimator() = default;
  explicit SrcEstimator(SrcParams params) : params_(params) {}

  std::string name() const override { return "SRC"; }
  [[nodiscard]] const SrcParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

  /// Phase-2 frame size for a single (ε, per_round_delta) round.
  static std::uint32_t frame_size(double epsilon, double per_round_delta,
                                  double lambda_star, double calibration);

 private:
  SrcParams params_;
};

}  // namespace bfce::estimators
