#include "estimators/art.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "estimators/lof.hpp"
#include "math/erf.hpp"
#include "math/stats.hpp"

namespace bfce::estimators {

double ArtEstimator::average_busy_run(
    const std::vector<rfid::SlotState>& states) {
  std::size_t runs = 0;
  std::size_t busy = 0;
  bool in_run = false;
  for (const rfid::SlotState s : states) {
    if (rfid::is_busy(s)) {
      ++busy;
      if (!in_run) {
        ++runs;
        in_run = true;
      }
    } else {
      in_run = false;
    }
  }
  return runs == 0 ? 0.0
                   : static_cast<double>(busy) / static_cast<double>(runs);
}

EstimateOutcome ArtEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;

  LofEstimator pilot(LofParams{32, 2, params_.seed_bits});
  const EstimateOutcome pilot_out = pilot.estimate(ctx, req);
  out.airtime += pilot_out.airtime;
  const double n_pilot = std::max(1.0, pilot_out.n_hat);
  const double f_d = static_cast<double>(params_.frame_size);
  const double p = std::min(1.0, params_.lambda_target * f_d / n_pilot);

  const double d = math::confidence_d(req.delta);
  math::RunningStats per_round;
  for (std::uint32_t r = 0; r < params_.max_rounds; ++r) {
    const std::uint64_t seed = ctx.next_seed();
    const auto states =
        ctx.mode() == rfid::FrameMode::kExact
            ? rfid::run_aloha_frame(ctx.tags(), params_.frame_size, p, seed,
                                    ctx.channel(), ctx.rng(), &out.airtime.tag_tx_bits)
            : rfid::sampled_aloha_frame(ctx.tags().size(),
                                        params_.frame_size, p, ctx.channel(),
                                        ctx.rng(), &out.airtime.tag_tx_bits);
    out.airtime.add_reader_broadcast(params_.seed_bits + params_.size_bits);
    out.airtime.add_tag_slots(params_.frame_size);
    ++out.rounds;

    const double run = average_busy_run(states);
    if (run > 1e-12) {
      // b̂ from the run statistic; clamp into (0,1) before the logs.
      const double b = std::clamp(1.0 - 1.0 / run, 1.0 / (2.0 * f_d),
                                  1.0 - 1.0 / (2.0 * f_d));
      const double lambda_hat = -std::log1p(-b);
      per_round.add(lambda_hat * f_d / p);
    } else {
      per_round.add(0.0);  // an all-idle frame is evidence of few tags
    }

    // Sequential stop: CLT half-width of the running mean vs ε·mean.
    if (per_round.count() >= params_.min_rounds && per_round.mean() > 0.0) {
      const double half_width =
          d * per_round.stddev() /
          std::sqrt(static_cast<double>(per_round.count()));
      if (half_width <= req.epsilon * per_round.mean()) break;
    }
  }

  out.n_hat = per_round.mean();
  if (out.rounds >= params_.max_rounds) {
    out.met_by_design = false;
    out.note = "round cap reached before the sequential rule converged";
  }
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
