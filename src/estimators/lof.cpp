#include "estimators/lof.hpp"

#include <cmath>
#include <vector>

#include "util/bitvector.hpp"

namespace bfce::estimators {

namespace {
/// Flajolet–Martin bias correction: E[2^R] ≈ n/0.7735 ⇒ n̂ = 1.2897·2^R̄.
constexpr double kFmCorrection = 1.2897;
}  // namespace

EstimateOutcome LofEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& /*req*/) {
  EstimateOutcome out;
  double index_sum = 0.0;
  // All rounds submitted as one batch: a sharded engine runs them
  // through one plan/render/reduce walk (or one batched-sampler pass);
  // a sequential engine executes them per frame in the same order, so
  // results are unchanged there.
  std::vector<rfid::FrameRequest> requests;
  requests.reserve(params_.rounds);
  for (std::uint32_t r = 0; r < params_.rounds; ++r) {
    requests.push_back(
        rfid::FrameRequest::lottery(params_.frame_size, ctx.next_seed()));
  }
  for (const rfid::FrameResult& frame : ctx.run_batch(requests)) {
    out.airtime.tag_tx_bits += frame.tx;
    const util::BitVector& busy = frame.busy;
    out.airtime.add_reader_broadcast(params_.seed_bits);
    out.airtime.add_tag_slots(params_.frame_size);
    ctx.log_frame(rfid::FrameKind::kLottery, params_.frame_size, 1.0,
                  static_cast<std::uint32_t>(busy.count_ones()),
                  static_cast<double>(params_.seed_bits) *
                          ctx.timing().reader_bit_us +
                      params_.frame_size * ctx.timing().tag_bit_us +
                      2.0 * ctx.timing().interval_us);
    index_sum += static_cast<double>(busy.first_zero());
  }
  const double mean_index = index_sum / static_cast<double>(params_.rounds);
  out.n_hat = kFmCorrection * std::exp2(mean_index);
  out.rounds = params_.rounds;
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
