#pragma once
// MLE — maximum-likelihood estimation over multiple frames, in the
// spirit of Li, Wu, Chen & Yang's energy-efficient estimator
// (INFOCOM 2010).
//
// The reader runs a schedule of persistence-p_i ALOHA bit-frames; after
// each frame it maximises the joint likelihood of every observed empty
// count:
//     e_i ~ Binomial(f, q_i(n)),   q_i(n) = e^{−p_i·n/f}
//     L(n) = Σ_i [ e_i·ln q_i(n) + (f − e_i)·ln(1 − q_i(n)) ]
// and then re-tunes p_{i+1} toward the variance-optimal load for the
// current MLE. The likelihood is unimodal in n; we maximise by golden-
// section search on ln n.

#include <cstdint>
#include <string>
#include <vector>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct MleParams {
  std::uint32_t frame_size = 512;
  double lambda_target = 1.594;
  std::uint32_t seed_bits = 32;
  std::uint32_t size_bits = 16;
  std::uint32_t max_rounds = 256;
  double n_search_max = 5e8;  ///< upper bound of the likelihood search
};

class MleEstimator final : public CardinalityEstimator {
 public:
  MleEstimator() = default;
  explicit MleEstimator(MleParams params) : params_(params) {}

  std::string name() const override { return "MLE"; }
  [[nodiscard]] const MleParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

  /// One frame's evidence: persistence used and empty slots observed.
  struct FrameEvidence {
    double p = 0.0;
    std::uint32_t empties = 0;
  };

  /// Maximises the joint log-likelihood over n ∈ [1, n_max].
  static double maximize_likelihood(const std::vector<FrameEvidence>& frames,
                                    std::uint32_t frame_size, double n_max);

 private:
  MleParams params_;
};

}  // namespace bfce::estimators
