#include "estimators/upe.hpp"

#include <algorithm>
#include <cmath>

#include "estimators/lof.hpp"
#include "math/erf.hpp"

namespace bfce::estimators {

double UpeEstimator::invert_collision_ratio(double c) {
  // g(λ) = 1 − (1+λ)e^{−λ} is strictly increasing from 0 to 1; bisect.
  double lo = 1e-9;
  double hi = 64.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double g = 1.0 - (1.0 + mid) * std::exp(-mid);
    if (g < c) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

EstimateOutcome UpeEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;

  // Magnitude pilot (two lottery frames), as for the other fixed-frame
  // estimators.
  LofEstimator pilot(LofParams{32, 2, params_.seed_bits});
  const EstimateOutcome pilot_out = pilot.estimate(ctx, req);
  out.airtime += pilot_out.airtime;
  const double n_pilot = std::max(1.0, pilot_out.n_hat);

  // Frame size from the CLT bound on the collision-count estimator; the
  // collision ratio has per-slot variance ≤ 1/4, and the sensitivity
  // dc/dλ = λe^{−λ}, so relative accuracy ε at load λ* needs
  //   f ≥ (d/(2·ε·λ*²·e^{−λ*}))² · λ*² … folded into the expression below.
  const double d = math::confidence_d(req.delta);
  const double lam = params_.lambda_target;
  const double sensitivity = lam * std::exp(-lam);  // d c / d ln λ at λ*
  const double f_needed = std::pow(d * 0.5 / (req.epsilon * sensitivity), 2);
  const std::uint32_t f = static_cast<std::uint32_t>(std::clamp(
      std::ceil(f_needed), 64.0, static_cast<double>(params_.max_frame)));

  const double p =
      std::min(1.0, lam * static_cast<double>(f) / n_pilot);

  const std::uint64_t seed = ctx.next_seed();
  const rfid::FrameResult frame =
      ctx.run_frame(rfid::FrameRequest::aloha(f, p, seed));
  out.airtime.tag_tx_bits += frame.tx;
  const std::vector<rfid::SlotState>& states = frame.states;
  out.airtime.add_reader_broadcast(params_.seed_bits + params_.size_bits);
  // UPE slots carry enough bits to tell singletons from collisions.
  out.airtime.add_tag_slots(static_cast<std::uint64_t>(f) *
                            params_.slot_bits);
  out.rounds = 1;

  std::size_t collisions = 0;
  for (const rfid::SlotState s : states) {
    if (s == rfid::SlotState::kCollision) ++collisions;
  }
  const double f_d = static_cast<double>(f);
  const double ratio =
      std::clamp(static_cast<double>(collisions) / f_d, 1.0 / (2.0 * f_d),
                 1.0 - 1.0 / (2.0 * f_d));
  const double lambda_hat = invert_collision_ratio(ratio);
  out.n_hat = lambda_hat * f_d / p;
  if (f_needed > static_cast<double>(params_.max_frame)) {
    out.met_by_design = false;
    out.note = "frame cap reached before the (eps, delta) bound";
  }
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
