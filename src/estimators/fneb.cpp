#include "estimators/fneb.hpp"

#include <algorithm>
#include <cmath>

#include "hash/slot_hash.hpp"
#include "math/erf.hpp"

namespace bfce::estimators {

namespace {

/// First busy slot of a uniform frame, exact agent walk.
std::uint32_t exact_first_busy(const rfid::TagPopulation& tags,
                               std::uint32_t f, std::uint64_t seed) {
  const hash::IdealSlotHash h(seed);
  std::uint32_t first = f;  // f ⇒ frame entirely idle
  for (const rfid::Tag& tag : tags.tags()) {
    first = std::min(first, h.slot(tag.id, f));
    if (first == 0) break;
  }
  return first;
}

/// First busy slot via the law of the minimum of n uniforms:
/// min/f ~ Beta(1, n), sampled by inverse transform.
std::uint32_t sampled_first_busy(std::size_t n, std::uint32_t f,
                                 util::Xoshiro256ss& rng) {
  if (n == 0) return f;
  const double u = rng.uniform();
  const double minimum =
      1.0 - std::exp(std::log1p(-u) / static_cast<double>(n));
  const auto slot = static_cast<std::uint32_t>(minimum *
                                               static_cast<double>(f));
  return slot >= f ? f - 1 : slot;
}

}  // namespace

EstimateOutcome FnebEstimator::estimate(rfid::ReaderContext& ctx,
                                        const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;
  const double d = math::confidence_d(req.delta);
  const auto rounds = static_cast<std::uint32_t>(std::clamp(
      std::ceil((d / req.epsilon) * (d / req.epsilon)), 1.0,
      static_cast<double>(params_.max_rounds)));

  double index_sum = 0.0;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const std::uint64_t seed = ctx.next_seed();
    const std::uint32_t u =
        ctx.mode() == rfid::FrameMode::kExact
            ? exact_first_busy(ctx.tags(), params_.frame_size, seed)
            : sampled_first_busy(ctx.tags().size(), params_.frame_size,
                                 ctx.rng());
    out.airtime.add_reader_broadcast(params_.seed_bits + params_.size_bits);
    // Early termination: the reader listens to u idle slots plus the
    // busy one, then kills the frame.
    out.airtime.add_tag_slots(std::min(u, params_.frame_size - 1) + 1ULL);
    // Only the first-slot winner ever transmits (later slots never come);
    // ties at the minimum are negligible for f >> n.
    out.airtime.tag_tx_bits += 1;
    index_sum += static_cast<double>(u);
    ++out.rounds;
  }

  const double mean_u = index_sum / static_cast<double>(rounds);
  // +0.5 undoes the floor-discretisation bias of the slot index; the max
  // guards the n ≳ f regime where the announced frame was too small.
  const double denom = std::max(mean_u + 0.5, 1e-3);
  out.n_hat =
      std::max(0.0, static_cast<double>(params_.frame_size) / denom - 1.0);
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
