#include "estimators/ezb.hpp"

#include <algorithm>
#include <cmath>

#include "core/analysis.hpp"
#include "estimators/lof.hpp"
#include "math/erf.hpp"

namespace bfce::estimators {

std::uint32_t EzbEstimator::required_rounds(double epsilon, double delta,
                                            double lambda, std::uint32_t f) {
  // (ε, δ) needs total slot count W with ε·√(W·λ-ish) ≥ d; reuse the
  // Theorem-3 edge with w = W: the binding condition is
  //   (e^{−λ} − e^{−λ(1+ε)})·√W / σ(X) ≥ d.
  const double d = math::confidence_d(delta);
  const double idle = std::exp(-lambda);
  const double sigma = std::sqrt(idle * (1.0 - idle));
  const double gap = idle * (1.0 - std::exp(-epsilon * lambda));
  const double w_needed = (d * sigma / gap) * (d * sigma / gap);
  return static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(w_needed / static_cast<double>(f))));
}

EstimateOutcome EzbEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;

  // Magnitude pilot: EZB's original anonymous-tracking setting assumed a
  // known universe size. For the single-set problem we bootstrap the
  // persistence from two cheap lottery frames (the standard adaptation —
  // the same trick SRC's rough phase uses).
  LofEstimator pilot(LofParams{32, 2, params_.seed_bits});
  const EstimateOutcome pilot_out = pilot.estimate(ctx, req);
  out.airtime += pilot_out.airtime;
  const double n_pilot = std::max(1.0, pilot_out.n_hat);
  const double f_d = static_cast<double>(params_.frame_size);

  const double p = std::min(1.0, params_.lambda_target * f_d / n_pilot);
  const double lambda_actual = p * n_pilot / f_d;  // ≈ target unless p hit 1
  const std::uint32_t rounds = std::min(
      params_.max_rounds,
      required_rounds(req.epsilon, req.delta, lambda_actual,
                      params_.frame_size));

  std::uint64_t idle_total = 0;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const std::uint64_t seed = ctx.next_seed();
    const auto states =
        ctx.mode() == rfid::FrameMode::kExact
            ? rfid::run_aloha_frame(ctx.tags(), params_.frame_size, p, seed,
                                    ctx.channel(), ctx.rng(), &out.airtime.tag_tx_bits)
            : rfid::sampled_aloha_frame(ctx.tags().size(),
                                        params_.frame_size, p, ctx.channel(),
                                        ctx.rng(), &out.airtime.tag_tx_bits);
    out.airtime.add_reader_broadcast(params_.seed_bits + params_.size_bits);
    out.airtime.add_tag_slots(params_.frame_size);
    ++out.rounds;
    for (const rfid::SlotState s : states) {
      if (!rfid::is_busy(s)) ++idle_total;
    }
  }

  const double total_slots = f_d * static_cast<double>(rounds);
  const double rho =
      std::clamp(static_cast<double>(idle_total) / total_slots,
                 1.0 / (2.0 * total_slots), 1.0 - 1.0 / (2.0 * total_slots));
  out.n_hat = core::estimate_from_rho(rho, params_.frame_size, 1, p);
  if (rounds >= params_.max_rounds) {
    out.met_by_design = false;
    out.note = "round cap reached before the (eps, delta) bound";
  }
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
