#include "estimators/a3.hpp"

#include <algorithm>
#include <cmath>

#include "core/analysis.hpp"
#include "math/erf.hpp"

namespace bfce::estimators {

EstimateOutcome A3Estimator::estimate(rfid::ReaderContext& ctx,
                                      const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;

  // ---- Stage 1: pivot search. Probe persistence 2^-j until the
  // majority of the level's slots fall silent; E[responders] = n·2^-j,
  // so the quiet level j* has n ≈ 2^j*.
  std::uint32_t quiet_level = params_.max_levels;
  for (std::uint32_t j = 0; j <= params_.max_levels; ++j) {
    const double q = std::ldexp(1.0, -static_cast<int>(j));
    std::uint32_t busy = 0;
    for (std::uint32_t r = 0; r < params_.pivot_slots_per_level; ++r) {
      const std::uint64_t seed = ctx.next_seed();
      const rfid::SlotState s =
          ctx.mode() == rfid::FrameMode::kExact
              ? rfid::run_single_slot(ctx.tags(), q, seed, ctx.channel(),
                                      ctx.rng(), &out.airtime.tag_tx_bits)
              : rfid::sampled_single_slot(ctx.tags().size(), q,
                                          ctx.channel(), ctx.rng(),
                                          &out.airtime.tag_tx_bits);
      if (rfid::is_busy(s)) ++busy;
      out.airtime.add_reader_broadcast(params_.seed_bits);
      out.airtime.add_tag_slots(1);
    }
    if (2 * busy < params_.pivot_slots_per_level) {
      quiet_level = j;
      break;
    }
  }
  // At the quiet level Pr{busy} = 1 − e^{−n·2^-j} < 1/2 ⇒ n ≲ ln2·2^j.
  double n_pivot =
      std::max(1.0, 0.693 * std::ldexp(1.0, static_cast<int>(quiet_level)));

  // ---- Stage 2: Fisher-weighted refinement frames.
  const double d = math::confidence_d(req.delta);
  const double f_d = static_cast<double>(params_.frame_size);
  double info = 0.0;        // accumulated Fisher information about n
  double weighted = 0.0;    // information-weighted estimate accumulator
  double n_hat = n_pivot;
  for (std::uint32_t r = 0; r < params_.max_rounds; ++r) {
    const double p =
        std::min(1.0, params_.lambda_target * f_d / std::max(1.0, n_hat));
    const std::uint64_t seed = ctx.next_seed();
    const auto states =
        ctx.mode() == rfid::FrameMode::kExact
            ? rfid::run_aloha_frame(ctx.tags(), params_.frame_size, p, seed,
                                    ctx.channel(), ctx.rng(), &out.airtime.tag_tx_bits)
            : rfid::sampled_aloha_frame(ctx.tags().size(),
                                        params_.frame_size, p, ctx.channel(),
                                        ctx.rng(), &out.airtime.tag_tx_bits);
    out.airtime.add_reader_broadcast(params_.seed_bits + params_.size_bits);
    out.airtime.add_tag_slots(params_.frame_size);
    ++out.rounds;

    std::size_t idle = 0;
    for (const rfid::SlotState s : states) {
      if (!rfid::is_busy(s)) ++idle;
    }
    const double rho = std::clamp(
        static_cast<double>(idle) / f_d, 1.0 / (2.0 * f_d),
        1.0 - 1.0 / (2.0 * f_d));
    const double est = core::estimate_from_rho(rho, params_.frame_size, 1, p);

    // Fisher information of one frame about n at load λ: the relative
    // variance of the inversion is (e^λ − 1)/(λ²·f), so the information
    // is its reciprocal (per unit n²).
    const double lambda = p * std::max(1.0, est) / f_d;
    if (lambda > 1e-9) {
      const double rel_var =
          (std::exp(lambda) - 1.0) / (lambda * lambda * f_d);
      const double w = 1.0 / rel_var;
      weighted += w * est;
      info += w;
      n_hat = weighted / info;
      // Stop once the accumulated information pins n to ε at confidence d:
      // combined relative sd = 1/√info ≤ ε/d.
      if (std::sqrt(1.0 / info) * d <= req.epsilon) break;
    }
  }

  out.n_hat = n_hat;
  if (out.rounds >= params_.max_rounds) {
    out.met_by_design = false;
    out.note = "round cap reached before the information target";
  }
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
