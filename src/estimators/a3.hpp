#pragma once
// A³ — Arbitrarily Accurate Approximation (Gong et al., INFOCOM 2014),
// the fourth state-of-the-art scheme the paper cites alongside PET, ZOE
// and SRC.
//
// Two stages, following the published mechanism:
//
//  1. *Pivot search*: single bit-slots with geometrically halving
//     persistence 1, 1/2, 1/4, … locate the scale 2^j at which the
//     channel turns quiet — a constant-factor estimate in O(log n)
//     slots, without any frame.
//  2. *Refinement*: repeated bit-frames at the variance-optimal load
//     seeded by the pivot; per-round estimates are combined by
//     inverse-variance (Fisher) weighting, and rounds continue until
//     the accumulated information meets the (ε, δ) target — this is
//     what makes the accuracy "arbitrarily" tunable.

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct A3Params {
  std::uint32_t frame_size = 1024;
  double lambda_target = 1.594;
  std::uint32_t seed_bits = 32;
  std::uint32_t size_bits = 16;
  std::uint32_t pivot_slots_per_level = 4;  ///< repeats per probe level
  std::uint32_t max_levels = 40;
  std::uint32_t max_rounds = 1024;
};

class A3Estimator final : public CardinalityEstimator {
 public:
  A3Estimator() = default;
  explicit A3Estimator(A3Params params) : params_(params) {}

  std::string name() const override { return "A3"; }
  [[nodiscard]] const A3Params& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

 private:
  A3Params params_;
};

}  // namespace bfce::estimators
