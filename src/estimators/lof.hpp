#pragma once
// LOF — Lottery-Frame estimator (Qian et al., TPDS 2011).
//
// Each tag replies in a geometrically distributed slot (slot j with
// probability 2^-(j+1)), so the index of the first idle slot grows like
// log2(n). Averaging that index over rounds and applying the
// Flajolet–Martin-style bias correction gives the estimate
//
//     n̂ = 1.2897 · 2^(R̄)
//
// where R̄ is the mean first-idle-slot index. LOF is cheap and coarse; the
// paper uses "LOF run for 10 rounds" as ZOE's rough-estimation input
// (§V-C), which is exactly how ZoeEstimator consumes this class.

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct LofParams {
  std::uint32_t frame_size = 32;  ///< slots per lottery frame
  std::uint32_t rounds = 10;      ///< frames averaged (paper's choice for ZOE)
  std::uint32_t seed_bits = 32;   ///< per-frame seed broadcast width
};

class LofEstimator final : public CardinalityEstimator {
 public:
  LofEstimator() = default;
  explicit LofEstimator(LofParams params) : params_(params) {}

  std::string name() const override { return "LOF"; }
  [[nodiscard]] const LofParams& params() const noexcept { return params_; }

  /// LOF ignores (ε, δ): its accuracy is fixed by `rounds`.
  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

 private:
  LofParams params_;
};

}  // namespace bfce::estimators
