#pragma once
// Common interface for all cardinality-estimation protocols.

#include <cmath>
#include <cstdint>
#include <string>

#include "rfid/reader.hpp"
#include "rfid/timing.hpp"

namespace bfce::estimators {

/// The (ε, δ) accuracy requirement of §III-B:
/// Pr{ |n̂ − n| ≤ ε·n } ≥ 1 − δ.
struct Requirement {
  double epsilon = 0.05;  ///< confidence interval (relative error bound)
  double delta = 0.05;    ///< error probability
};

/// Result of one complete run of a protocol.
struct EstimateOutcome {
  double n_hat = 0.0;       ///< estimated cardinality
  /// Two-sided (1−δ) confidence interval around n_hat, when the
  /// protocol can derive one from its final observation (BFCE does, via
  /// the CLT on the accurate-phase idle ratio). Both zero if unset.
  double ci_low = 0.0;
  double ci_high = 0.0;
  rfid::Airtime airtime;    ///< full communication ledger
  double time_us = 0.0;     ///< airtime under the context's timing model
  std::uint32_t rounds = 1; ///< protocol-level rounds (frames vary by protocol)
  /// False when the protocol had to fall back from its design point
  /// (e.g. BFCE found no p satisfying Theorem 3 for tiny populations).
  bool met_by_design = true;
  std::string note;  ///< human-readable diagnostic, empty when unremarkable

  /// |n̂ − n| / n — the paper's accuracy metric (§V-A).
  double relative_error(double n) const {
    return n <= 0.0 ? std::fabs(n_hat) : std::fabs(n_hat - n) / n;
  }
};

/// A cardinality-estimation protocol. Implementations are stateless
/// between calls except for their configuration; all randomness and
/// population access go through the ReaderContext.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Protocol name as used in the paper's figures ("BFCE", "ZOE", ...).
  virtual std::string name() const = 0;

  /// Runs one complete estimation against `ctx` for requirement `req`.
  virtual EstimateOutcome estimate(rfid::ReaderContext& ctx,
                                   const Requirement& req) = 0;
};

}  // namespace bfce::estimators
