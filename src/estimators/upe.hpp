#pragma once
// UPE — Unified Probabilistic Estimator (Kodialam & Nandagopal,
// MobiCom 2006).
//
// The first framed-slotted-ALOHA estimator: the reader distinguishes
// empty, singleton and collision slots (which needs ~10-bit slots rather
// than 1-bit bit-slots) and inverts the expected collision count
//
//     E[collisions] = f·(1 − (1+λ)·e^{−λ}),   λ = n·p/f
//
// numerically. A magnitude pilot picks p so the load sits near the
// design point; the frame size carries the (ε, δ) burden.

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"

namespace bfce::estimators {

struct UpeParams {
  double lambda_target = 1.594;  ///< design load for the measurement frame
  std::uint32_t slot_bits = 10;  ///< slot width: type detection needs >1 bit
  std::uint32_t seed_bits = 32;
  std::uint32_t size_bits = 16;
  std::uint32_t max_frame = 1u << 16;  ///< cap on the measurement frame
};

class UpeEstimator final : public CardinalityEstimator {
 public:
  UpeEstimator() = default;
  explicit UpeEstimator(UpeParams params) : params_(params) {}

  std::string name() const override { return "UPE"; }
  [[nodiscard]] const UpeParams& params() const noexcept { return params_; }

  EstimateOutcome estimate(rfid::ReaderContext& ctx,
                           const Requirement& req) override;

  /// Inverts c = 1 − (1+λ)e^{−λ} for λ ∈ (0, ∞); c in (0, 1).
  static double invert_collision_ratio(double c);

 private:
  UpeParams params_;
};

}  // namespace bfce::estimators
