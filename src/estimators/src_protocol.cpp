#include "estimators/src_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/analysis.hpp"
#include "math/erf.hpp"
#include "math/hypothesis.hpp"
#include "math/stats.hpp"

namespace bfce::estimators {

std::uint32_t SrcEstimator::frame_size(double epsilon, double per_round_delta,
                                       double lambda_star,
                                       double calibration) {
  const double d = math::confidence_d(per_round_delta);
  const double idle = std::exp(-lambda_star);
  const double sigma = std::sqrt(idle * (1.0 - idle));
  const double denom = idle * (1.0 - std::exp(-epsilon * lambda_star));
  const double base = d * sigma / denom;
  return static_cast<std::uint32_t>(
      std::ceil(calibration * base * base));
}

EstimateOutcome SrcEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;

  // Phase 1: constant-factor rough estimate from lottery frames.
  LofEstimator lof(params_.rough);
  const EstimateOutcome rough = lof.estimate(ctx, req);
  out.airtime += rough.airtime;
  const double n_rough = std::max(1.0, rough.n_hat);

  // Phase 2: m independent (ε, 0.2) frames, median-aggregated.
  const std::uint32_t f = frame_size(req.epsilon, params_.per_round_delta,
                                     params_.lambda_star,
                                     params_.calibration);
  const std::size_t m = math::src_round_count(req.delta,
                                              1.0 - params_.per_round_delta);
  const double p =
      std::min(1.0, params_.lambda_star * static_cast<double>(f) / n_rough);

  std::vector<double> round_estimates;
  round_estimates.reserve(m);
  for (std::size_t r = 0; r < m; ++r) {
    const std::uint64_t seed = ctx.next_seed();
    const rfid::FrameResult frame =
        ctx.run_frame(rfid::FrameRequest::aloha(f, p, seed));
    out.airtime.tag_tx_bits += frame.tx;
    const std::vector<rfid::SlotState>& states = frame.states;
    out.airtime.add_reader_broadcast(params_.seed_bits + params_.size_bits);
    out.airtime.add_tag_slots(f);
    ++out.rounds;

    std::size_t idle = 0;
    for (const rfid::SlotState s : states) {
      if (!rfid::is_busy(s)) ++idle;
    }
    ctx.log_frame(rfid::FrameKind::kAloha, f, p,
                  static_cast<std::uint32_t>(f - idle),
                  static_cast<double>(params_.seed_bits +
                                      params_.size_bits) *
                          ctx.timing().reader_bit_us +
                      static_cast<double>(f) * ctx.timing().tag_bit_us +
                      2.0 * ctx.timing().interval_us);
    // Clamp degenerate frames (rough estimate far off) to the finest
    // resolvable ratio — these are the runs behind SRC's accuracy
    // exceptions in Fig 9.
    const double rho = std::clamp(
        static_cast<double>(idle) / static_cast<double>(f),
        1.0 / static_cast<double>(2 * f),
        1.0 - 1.0 / static_cast<double>(2 * f));
    round_estimates.push_back(core::estimate_from_rho(rho, f, 1, p));
  }

  out.n_hat = math::median(round_estimates);
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
