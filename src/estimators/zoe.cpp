#include "estimators/zoe.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/erf.hpp"

namespace bfce::estimators {

std::uint64_t ZoeEstimator::required_frames(double epsilon, double delta,
                                            double lambda_star,
                                            double sigma_max) {
  const double d = math::confidence_d(delta);
  const double denom =
      std::exp(-lambda_star) * (1.0 - std::exp(-epsilon * lambda_star));
  const double root = std::ceil(d * sigma_max / denom);
  return static_cast<std::uint64_t>(root * root);
}

EstimateOutcome ZoeEstimator::estimate(rfid::ReaderContext& ctx,
                                       const Requirement& req) {
  EstimateOutcome out;
  out.rounds = 0;
  LofEstimator lof(params_.rough);
  const std::uint64_t m = required_frames(req.epsilon, req.delta,
                                          params_.lambda_star,
                                          params_.sigma_max);

  for (std::uint32_t attempt = 0; attempt <= params_.max_restarts;
       ++attempt) {
    // Rough phase: LOF × 10 rounds, its airtime charged to this run.
    const EstimateOutcome rough = lof.estimate(ctx, req);
    out.airtime += rough.airtime;
    const double n_rough = std::max(1.0, rough.n_hat);
    const double q = std::min(1.0, params_.lambda_star / n_rough);

    // Measurement phase: single-slot frames, one seed broadcast each.
    // The slot count is adaptive: the formula's m assumes the load sits
    // at λ*, but the achieved load is λ* · n/n̂_rough. After the planned
    // frames the reader re-evaluates the bound at the achieved load
    // λ̂ = −ln ρ̄ and keeps going until it is met — this is exactly why
    // "an estimation that fairly deviates from the actual cardinality
    // will lead to a sharp growth of the required time slots" (§V-C),
    // ZOE's multi-second worst cases.
    std::uint64_t idle = 0;
    std::uint64_t done = 0;
    std::uint64_t target = m;
    const std::uint64_t cap = 8 * m;  // give up past 8× the plan
    // Frames are submitted in bounded batches so a sharded engine can
    // run each chunk through one batched-sampler pass / sharded walk
    // instead of thousands of single-frame dispatches. The chunk never
    // overruns the current target, so the adaptive re-plan below fires
    // at exactly the frame index it would have fired at frame-by-frame.
    constexpr std::uint64_t kChunkFrames = 4096;
    std::vector<rfid::FrameRequest> requests;
    while (done < target) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(kChunkFrames, target - done);
      requests.clear();
      requests.reserve(static_cast<std::size_t>(chunk));
      for (std::uint64_t i = 0; i < chunk; ++i) {
        requests.push_back(
            rfid::FrameRequest::single_slot(q, ctx.next_seed()));
      }
      for (const rfid::FrameResult& frame : ctx.run_batch(requests)) {
        out.airtime.tag_tx_bits += frame.tx;
        const rfid::SlotState s = frame.single;
        if (!rfid::is_busy(s)) ++idle;
        out.airtime.add_reader_broadcast(params_.seed_bits);
        out.airtime.add_tag_slots(1);
        ctx.log_frame(rfid::FrameKind::kSingleSlot, 1, q,
                      rfid::is_busy(s) ? 1 : 0,
                      static_cast<double>(params_.seed_bits) *
                              ctx.timing().reader_bit_us +
                          ctx.timing().tag_bit_us +
                          2.0 * ctx.timing().interval_us);
        ++done;
        if (done == target && target < cap) {
          const double rho_so_far = std::clamp(
              static_cast<double>(idle) / static_cast<double>(done),
              1.0 / static_cast<double>(2 * done),
              1.0 - 1.0 / static_cast<double>(2 * done));
          const double lambda_hat = -std::log(rho_so_far);
          target = std::min<std::uint64_t>(
              cap, std::max<std::uint64_t>(
                       m, required_frames(req.epsilon, req.delta, lambda_hat,
                                          params_.sigma_max)));
        }
      }
    }
    out.rounds += static_cast<std::uint32_t>(done);

    const double rho =
        static_cast<double>(idle) / static_cast<double>(done);
    const bool usable = rho >= params_.usable_rho_min &&
                        rho <= params_.usable_rho_max;
    if (usable || attempt == params_.max_restarts) {
      // Invert; clamp a degenerate ρ̄ to the finest resolvable value so
      // the final fallback still returns a number.
      const double clamped = std::clamp(
          rho, 1.0 / static_cast<double>(2 * done),
          1.0 - 1.0 / static_cast<double>(2 * done));
      out.n_hat = -std::log(clamped) / q;
      if (!usable) {
        out.met_by_design = false;
        out.note = "idle ratio left the usable band even after restarts";
      }
      break;
    }
    out.note = "restarted: rough estimate drove the load off its design point";
  }

  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::estimators
