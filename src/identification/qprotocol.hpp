#pragma once
// The C1G2 Q algorithm (dynamic framed slotted ALOHA, standard §6.3.2.9).
//
// The reader announces a frame of 2^Q slots; every unidentified tag
// draws a slot. Singleton slots complete the RN16/ACK/EPC exchange and
// retire the tag; after each frame the floating-point shadow Qfp moves
// up on collisions and down on empties (step C), tracking the optimum
// Q ≈ log2(remaining). Rounds repeat until every tag is read.

#include "identification/identification.hpp"

namespace bfce::identification {

struct QProtocolParams {
  std::uint32_t q_initial = 4;
  double c_step = 0.3;        ///< Qfp adjustment step (standard: 0.1-0.5)
  std::uint32_t q_max = 15;
  InventoryCosts costs{};
  std::uint32_t max_frames = 100000;  ///< safety valve
};

class QProtocol final : public IdentificationProtocol {
 public:
  QProtocol() = default;
  explicit QProtocol(QProtocolParams params) : params_(params) {}

  std::string name() const override { return "C1G2-Q"; }
  [[nodiscard]] const QProtocolParams& params() const noexcept { return params_; }

  IdentificationOutcome identify(rfid::ReaderContext& ctx) override;

 private:
  QProtocolParams params_;
};

}  // namespace bfce::identification
