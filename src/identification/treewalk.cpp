#include "identification/treewalk.hpp"

#include <algorithm>
#include <vector>

namespace bfce::identification {

namespace {

/// Iterative DFS over the ID trie using a sorted ID array: a node is a
/// (depth, [lo, hi)) range of IDs sharing a prefix. Identical in queries
/// and costs to the over-the-air walk, but O(n log n) to simulate.
struct Node {
  std::uint32_t depth;
  std::size_t lo;
  std::size_t hi;
};

}  // namespace

IdentificationOutcome TreeWalk::identify(rfid::ReaderContext& ctx) {
  IdentificationOutcome out;
  const InventoryCosts& cost = params_.costs;

  std::vector<std::uint64_t> ids;
  ids.reserve(ctx.tags().size());
  for (const rfid::Tag& t : ctx.tags().tags()) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());

  std::vector<Node> stack;
  stack.push_back(Node{0, 0, ids.size()});
  while (!stack.empty()) {
    const Node node = stack.back();
    stack.pop_back();
    const std::size_t count = node.hi - node.lo;

    // One query: command overhead + the prefix bits walked so far.
    out.airtime.add_reader_broadcast(cost.query_bits + node.depth);
    ++out.total_slots;

    if (count == 0) {
      ++out.empty_slots;
      out.airtime.intervals += 1;  // silence timeout
      continue;
    }
    if (count == 1 || node.depth >= params_.id_bits) {
      // Singleton (or exhausted prefix): read the EPC.
      ++out.singleton_slots;
      out.airtime.add_tag_slots(cost.epc_bits);
      out.identified += count;
      continue;
    }
    ++out.collision_slots;
    out.airtime.add_tag_slots(cost.rn16_bits);  // colliding burst

    // Split the range by the next prefix bit (IDs are sorted, so the
    // boundary is a binary search on that bit).
    const std::uint32_t bit_index = params_.id_bits - 1 - node.depth;
    const std::uint64_t bit_mask = 1ULL << bit_index;
    const auto mid = std::partition_point(
        ids.begin() + static_cast<long>(node.lo),
        ids.begin() + static_cast<long>(node.hi),
        [bit_mask](std::uint64_t id) { return (id & bit_mask) == 0; });
    const auto mid_index =
        static_cast<std::size_t>(mid - ids.begin());
    // Push right child first so the left (0) branch is walked first,
    // matching the over-the-air order.
    stack.push_back(Node{node.depth + 1, mid_index, node.hi});
    stack.push_back(Node{node.depth + 1, node.lo, mid_index});
  }

  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::identification
