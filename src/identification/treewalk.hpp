#pragma once
// Binary tree walking — the deterministic identification family.
//
// The reader queries an ID prefix; tags whose ID starts with it
// backscatter. Collisions split the prefix into its two children;
// singleton responses read the tag; silence prunes the subtree. Every
// tag is identified after visiting the trie of its IDs — ~2.9 queries
// per tag on random IDs, each query carrying the (growing) prefix.

#include "identification/identification.hpp"

namespace bfce::identification {

struct TreeWalkParams {
  std::uint32_t id_bits = 50;  ///< 10^15 < 2^50: the paper's ID space
  InventoryCosts costs{};
};

class TreeWalk final : public IdentificationProtocol {
 public:
  TreeWalk() = default;
  explicit TreeWalk(TreeWalkParams params) : params_(params) {}

  std::string name() const override { return "TreeWalk"; }
  [[nodiscard]] const TreeWalkParams& params() const noexcept { return params_; }

  IdentificationOutcome identify(rfid::ReaderContext& ctx) override;

 private:
  TreeWalkParams params_;
};

}  // namespace bfce::identification
