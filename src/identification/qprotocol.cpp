#include "identification/qprotocol.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace bfce::identification {

IdentificationOutcome QProtocol::identify(rfid::ReaderContext& ctx) {
  IdentificationOutcome out;
  std::uint64_t remaining = ctx.tags().size();
  double q_fp = static_cast<double>(params_.q_initial);
  auto& rng = ctx.rng();
  const InventoryCosts& cost = params_.costs;
  const rfid::TimingModel& tm = ctx.timing();

  // Slot-count simulation: tags are anonymous for counting purposes, so
  // each frame only needs the multinomial occupancy of 2^Q slots by the
  // remaining tags (identical in law to an agent walk — the tags hash
  // fresh randomness every Query).
  std::vector<std::uint32_t> occupancy;
  for (std::uint32_t frame = 0;
       frame < params_.max_frames && remaining > 0; ++frame) {
    const auto q = static_cast<std::uint32_t>(std::lround(
        std::clamp(q_fp, 0.0, static_cast<double>(params_.q_max))));
    const std::uint64_t slots = 1ULL << q;

    // Sequential-binomial multinomial throw of `remaining` tags.
    occupancy.assign(slots, 0);
    std::uint64_t left = remaining;
    for (std::uint64_t s = 0; s + 1 < slots && left > 0; ++s) {
      const double p_slot =
          1.0 / static_cast<double>(slots - s);  // conditional uniform
      // util::draw_binomial: bit-identical draws, minus the signgam race
      // of constructing std::binomial_distribution on this thread.
      const std::uint64_t c = util::draw_binomial(left, p_slot, rng);
      occupancy[s] = static_cast<std::uint32_t>(c);
      left -= c;
    }
    occupancy[slots - 1] = static_cast<std::uint32_t>(left);

    // Frame-opening Query command.
    out.airtime.add_reader_broadcast(cost.query_bits);
    std::uint64_t identified_this_frame = 0;
    std::uint64_t empties = 0;
    std::uint64_t singles = 0;
    std::uint64_t collisions = 0;
    for (std::uint64_t s = 0; s < slots; ++s) {
      if (s != 0) {
        // QueryRep advances the slot counter.
        out.airtime.add_reader_broadcast(cost.query_rep_bits);
      }
      const std::uint32_t k = occupancy[s];
      if (k == 0) {
        ++empties;
        // The reader times out on silence: charge one turnaround.
        out.airtime.intervals += 1;
      } else if (k == 1) {
        ++singles;
        // RN16 → ACK → EPC completes the read.
        out.airtime.add_tag_slots(cost.rn16_bits);
        out.airtime.add_reader_broadcast(cost.ack_bits);
        out.airtime.add_tag_slots(cost.epc_bits);
        ++identified_this_frame;
      } else {
        ++collisions;
        // Colliding RN16s burn the slot.
        out.airtime.add_tag_slots(cost.rn16_bits);
      }
    }
    out.total_slots += slots;
    out.empty_slots += empties;
    out.singleton_slots += singles;
    out.collision_slots += collisions;
    out.identified += identified_this_frame;
    remaining -= identified_this_frame;

    // Q adaptation: per-frame aggregate version of the per-slot rule.
    const double pressure =
        static_cast<double>(collisions) - static_cast<double>(empties);
    q_fp += params_.c_step *
            std::clamp(pressure / std::max(1.0, static_cast<double>(slots) *
                                                    0.25),
                       -1.0, 1.0);
    // Track the optimum when the frame badly mismatches the population.
    if (remaining > 0) {
      const double ideal = std::log2(static_cast<double>(remaining));
      q_fp = std::clamp(q_fp, ideal - 2.0, ideal + 2.0);
      q_fp = std::clamp(q_fp, 0.0, static_cast<double>(params_.q_max));
    }
  }

  out.time_us = out.airtime.total_us(tm);
  return out;
}

}  // namespace bfce::identification
