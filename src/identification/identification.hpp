#pragma once
// Exact identification protocols.
//
// §III-A of the paper: "it is easy and fast to get the exact number of
// tags by using traditional identification protocols when the
// cardinality is small" — and prohibitively slow when it is not. This
// module implements the two classic families (framed-slotted-ALOHA with
// C1G2's Q algorithm, and binary tree walking) so the library can
// quantify exactly how much airtime estimation saves (the motivation
// behind Fig 1 and the warehouse example).

#include <cstdint>
#include <string>

#include "rfid/reader.hpp"
#include "rfid/timing.hpp"

namespace bfce::identification {

/// Result of a full inventory run.
struct IdentificationOutcome {
  std::uint64_t identified = 0;   ///< tags read (== n on a perfect channel)
  std::uint64_t total_slots = 0;  ///< slots consumed (ALOHA) / queries (tree)
  std::uint64_t empty_slots = 0;
  std::uint64_t singleton_slots = 0;
  std::uint64_t collision_slots = 0;
  rfid::Airtime airtime;
  double time_us = 0.0;

  double total_seconds(const rfid::TimingModel& m) const {
    return airtime.total_seconds(m);
  }
};

/// A protocol that reads every tag.
class IdentificationProtocol {
 public:
  virtual ~IdentificationProtocol() = default;
  virtual std::string name() const = 0;
  virtual IdentificationOutcome identify(rfid::ReaderContext& ctx) = 0;
};

/// Bit costs of the C1G2 inventory exchanges, shared by both protocols.
struct InventoryCosts {
  std::uint32_t query_bits = 22;     ///< Query command (Q, session, ...)
  std::uint32_t query_rep_bits = 4;  ///< QueryRep/QueryAdjust per slot
  std::uint32_t rn16_bits = 16;      ///< tag's slot-winning handle
  std::uint32_t ack_bits = 18;       ///< reader ACK carrying the RN16
  std::uint32_t epc_bits = 128;      ///< PC + EPC-96 + CRC backscatter
};

}  // namespace bfce::identification
