#pragma once
// Bitmap aggregation tree for reader fleets.
//
// Per-reader busy maps travel up a configurable-fanout tree to the
// back-end coordinator; every internal node ORs its children word by
// word (util::BitVector::or_word, the same primitive the sharded frame
// walk merges shard planes with). OR is associative and commutative over
// a fixed leaf order, so the merged bitmap is bit-identical for every
// fanout — the tree shape only changes how much intermediate traffic a
// real deployment would carry, which MergeStats records.

#include <cstdint>
#include <vector>

#include "util/bitvector.hpp"

namespace bfce::federation {

/// Work accounting of one tree merge.
struct MergeStats {
  std::uint64_t merges = 0;    ///< child-into-parent bitmap ORs
  std::uint64_t word_ors = 0;  ///< 64-bit word ORs performed
  std::uint32_t levels = 0;    ///< tree height above the leaves

  MergeStats& operator+=(const MergeStats& o) noexcept {
    merges += o.merges;
    word_ors += o.word_ors;
    levels += o.levels;
    return *this;
  }
};

/// Merges `leaves` (all the same size) bottom-up with the given fanout
/// and returns the root bitmap. The result is the plain OR of every
/// leaf regardless of fanout (asserted by tests/federation_test.cpp); a
/// fanout below 2 is clamped to 2 when more than one leaf needs
/// merging. An empty leaf list returns an empty bitmap.
util::BitVector merge_tree(std::vector<util::BitVector> leaves,
                           std::uint32_t fanout, MergeStats* stats = nullptr);

}  // namespace bfce::federation
