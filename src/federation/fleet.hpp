#pragma once
// A reader fleet: deployment geometry + the per-reader populations.
//
// Fleet pairs the rfid::MultiReaderSystem tag partition (which tags each
// reader actually covers, the union the back-end wants to count) with
// the CoverageProfile the coordinator legitimately knows (reader
// placements are deployment configuration; tag positions are not). The
// federated estimator consumes both: populations to run per-reader
// frames, the profile to correct the merged bitmap for overlap.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "federation/geometry.hpp"
#include "rfid/multireader.hpp"
#include "rfid/population.hpp"

namespace bfce::federation {

class Fleet {
 public:
  /// Partitions `tags` across `readers` and profiles the coverage
  /// geometry on a `coverage_grid`² midpoint lattice. The population is
  /// not owned and must outlive the fleet.
  Fleet(const rfid::TagPopulation& tags,
        std::vector<rfid::ReaderPlacement> readers,
        std::uint32_t coverage_grid = 1024)
      : system_(tags, std::move(readers)),
        profile_(coverage_profile(system_.readers(), coverage_grid)),
        schedule_rounds_(system_.schedule_rounds()) {}

  [[nodiscard]] const rfid::MultiReaderSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] const CoverageProfile& profile() const noexcept {
    return profile_;
  }

  [[nodiscard]] std::size_t reader_count() const noexcept {
    return system_.reader_count();
  }
  /// Interference-schedule rounds, computed once at construction (the
  /// greedy colouring is pure in the placements; estimators read it per
  /// job).
  [[nodiscard]] std::uint32_t schedule_rounds() const noexcept {
    return schedule_rounds_;
  }
  /// Ground-truth union cardinality — what the federated estimate is
  /// judged against in benches and the conformance tier.
  [[nodiscard]] std::size_t union_size() const noexcept {
    return system_.union_population().size();
  }

 private:
  rfid::MultiReaderSystem system_;
  CoverageProfile profile_;
  std::uint32_t schedule_rounds_ = 0;
};

}  // namespace bfce::federation
