#include "federation/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace bfce::federation {

double CoverageProfile::saturating_persistence(double p) const noexcept {
  if (covered_area <= 0.0) return 0.0;
  const double q = 1.0 - p;
  double mass = 0.0;
  double q_pow = 1.0;  // q^c, advanced with c
  for (std::size_t c = 1; c < area_by_multiplicity.size(); ++c) {
    q_pow *= q;
    mass += area_by_multiplicity[c] * (1.0 - q_pow);
  }
  return mass / covered_area;
}

CoverageProfile coverage_profile(
    const std::vector<rfid::ReaderPlacement>& readers, std::uint32_t grid) {
  grid = std::max<std::uint32_t>(grid, 8);
  const std::size_t side = grid;
  const double cell = 1.0 / static_cast<double>(side);
  std::vector<std::uint32_t> counts(side * side, 0);

  // Rasterise each disc over the cells its bounding box touches; a cell
  // belongs to the disc when its midpoint does.
  for (const rfid::ReaderPlacement& r : readers) {
    if (r.radius <= 0.0) continue;
    const double r2 = r.radius * r.radius;
    const auto clamp_idx = [&](double v) {
      return static_cast<std::size_t>(std::clamp(
          v, 0.0, static_cast<double>(side - 1)));
    };
    const std::size_t x0 = clamp_idx(std::floor((r.x - r.radius) / cell));
    const std::size_t x1 = clamp_idx(std::ceil((r.x + r.radius) / cell));
    const std::size_t y0 = clamp_idx(std::floor((r.y - r.radius) / cell));
    const std::size_t y1 = clamp_idx(std::ceil((r.y + r.radius) / cell));
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      const double my = (static_cast<double>(cy) + 0.5) * cell;
      const double dy = r.y - my;
      for (std::size_t cx = x0; cx <= x1; ++cx) {
        const double mx = (static_cast<double>(cx) + 0.5) * cell;
        const double dx = r.x - mx;
        if (dx * dx + dy * dy <= r2) ++counts[cy * side + cx];
      }
    }
  }

  std::uint32_t max_mult = 0;
  for (const std::uint32_t c : counts) max_mult = std::max(max_mult, c);

  CoverageProfile profile;
  profile.area_by_multiplicity.assign(static_cast<std::size_t>(max_mult) + 1,
                                      0.0);
  const double cell_area = cell * cell;
  for (const std::uint32_t c : counts) {
    profile.area_by_multiplicity[c] += cell_area;
  }
  for (std::size_t c = 1; c < profile.area_by_multiplicity.size(); ++c) {
    const double a = profile.area_by_multiplicity[c];
    const double dc = static_cast<double>(c);
    profile.covered_area += a;
    profile.coverage_mass += dc * a;
    profile.pair_mass += dc * (dc - 1.0) / 2.0 * a;
    if (c >= 2) profile.multiple_area += a;
  }
  return profile;
}

namespace {

/// Lens (intersection) area of two radius-r discs whose centres are d
/// apart (0 for d ≥ 2r).
double lens_area(double r, double d) {
  if (d >= 2.0 * r) return 0.0;
  if (d <= 0.0) return 3.14159265358979323846 * r * r;
  const double half = d / 2.0;
  return 2.0 * r * r * std::acos(half / r) -
         half * std::sqrt(4.0 * r * r - d * d);
}

}  // namespace

std::vector<rfid::ReaderPlacement> overlapping_pair(double radius,
                                                    double frac) {
  const double disc = 3.14159265358979323846 * radius * radius;
  double d = 2.0 * radius;  // tangent: exactly disjoint
  if (frac > 0.0) {
    // overlap_fraction(d) = lens / (2·disc − lens), monotonically
    // decreasing in d; bisect the centre distance.
    double lo = 0.0;
    double hi = 2.0 * radius;
    for (int iter = 0; iter < 64; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double lens = lens_area(radius, mid);
      const double fraction = lens / (2.0 * disc - lens);
      if (fraction > frac) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    d = 0.5 * (lo + hi);
  }
  return {rfid::ReaderPlacement{0.5 - d / 2.0, 0.5, radius},
          rfid::ReaderPlacement{0.5 + d / 2.0, 0.5, radius}};
}

double grid_radius_for_overlap(std::size_t count, double frac,
                               std::uint32_t grid_cells) {
  const auto side = static_cast<double>(static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(count, 1))))));
  const double disjoint = 0.45 / side;
  if (frac <= 0.0 || count < 2) return disjoint;
  double lo = 0.5 / side;
  double hi = 1.25 / side;
  for (int iter = 0; iter < 32; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const CoverageProfile profile =
        coverage_profile(rfid::MultiReaderSystem::grid(count, mid),
                         grid_cells);
    if (profile.overlap_fraction() < frac) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace bfce::federation
