#pragma once
// Fleet-federated BFCE: one coordinated estimate over many readers.
//
// §III-A of the paper assumes a back-end that synchronises its readers
// so they act as "one logical reader". This module is that back-end's
// estimation path made concrete:
//
//   * the coordinator broadcasts one BFCE frame configuration (hash
//     seeds, persistence numerator) to every reader;
//   * each reader runs the frame against the tags *it* covers through
//     its own FrameEngine (sharded/batched per rfid::ExecutionPolicy);
//   * per-reader busy maps merge up an aggregation tree of word-wide
//     ORs (federation/aggregation.hpp);
//   * the merged bitmap is inverted with an overlap-corrected effective
//     persistence g(p): a tag covered by c readers sets its slots more
//     often than a singly-covered one, so the fleet's per-slot load is
//     λ = k·g(p)·n_union/w instead of k·p·n/w. Theorem 2's inversion,
//     Theorem 3's variance and the Theorem-4 plan all go through with
//     p → g(p); the g law depends on how per-reader sessions correlate
//     (SessionCorrelation below + CoverageProfile's histogram).
//
// Determinism contract (the PR 5/6 discipline): a FederatedOutcome is a
// pure function of (FederationConfig, Fleet, Requirement) — bit-identical
// across service worker counts and aggregation-tree fanouts. Reader 0's
// context is seeded exactly like a plain service job's context and the
// coordinator consumes its RNG stream in exactly the order
// core::BfceEstimator::estimate_traced does, so a 1-reader fleet is
// bit-identical to a plain BFCE job — estimate, airtime, planner-cache
// key and RNG stream position included (rng_fingerprint exposes the
// position for tests).

#include <cstddef>
#include <cstdint>

#include "core/analysis.hpp"
#include "core/bfce.hpp"
#include "estimators/estimator.hpp"
#include "federation/aggregation.hpp"
#include "federation/fleet.hpp"
#include "rfid/channel.hpp"
#include "rfid/frame.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/timing.hpp"

namespace bfce::federation {

/// How per-reader tag decisions relate across readers covering the same
/// tag — this picks the overlap-correction law.
enum class SessionCorrelation : std::uint8_t {
  /// Every reader session draws its own randomness: a tag covered by c
  /// readers responds through c independent channels. This is the truth
  /// for sampled-mode frames (independent per-reader binomials) and for
  /// exact-mode kIdealBernoulli/kSharedDraw persistence. Needs the g(p)
  /// correction.
  kIndependent = 0,
  /// Tag decisions are a pure function of (RN, slot, broadcast seed,
  /// p_n) — exact mode with hash::PersistenceMode::kRnBits. A tag makes
  /// the *same* decision at every reader that covers it, so the merged
  /// bitmap IS the logical-union reader's bitmap and no correction is
  /// needed (g = p).
  kCoherent = 1,
};

/// Short lowercase label ("independent" / "coherent").
const char* to_cstring(SessionCorrelation correlation) noexcept;

/// The effective persistence g(p) of the OR-merged fleet bitmap:
///   coherent or disjoint coverage → p (exactly; no FP detour through
///     the area quadrature, so the degenerate cases share the plain
///     planner's cache keys);
///   independent + exact mode      → CoverageProfile::saturating_persistence
///     (E_c[1 − (1−p)^c], all inclusion–exclusion orders);
///   independent + sampled mode    → CoverageProfile::linear_persistence
///     (p·A₁/A_cov: per-reader binomial loads add).
double effective_persistence(const CoverageProfile& profile,
                             SessionCorrelation correlation,
                             rfid::FrameMode mode, double p) noexcept;

/// Theorem-4 search with the fleet correction: the minimal p = p_n/1024
/// whose CLT edge functions satisfy Theorem 3 at n_low *under the
/// effective persistence* — mirrors core::PersistencePlanner::search
/// with f1/f2 evaluated at g(p) instead of p. When the correction is
/// trivial (g = p) callers should use the shared planner instead so the
/// memo cache behaves identically to plain BFCE jobs.
core::PersistenceChoice federated_persistence_search(
    const CoverageProfile& profile, SessionCorrelation correlation,
    rfid::FrameMode mode, double n_low, std::uint32_t w, std::uint32_t k,
    double eps, double delta);

/// Everything a federated estimate depends on. Mirrors the service's
/// per-job substrate (mode/channel/timing/policy) plus the federation
/// knobs.
struct FederationConfig {
  core::BfceParams params;  ///< protocol constants + optional shared planner
  SessionCorrelation correlation = SessionCorrelation::kIndependent;
  /// Aggregation-tree fanout. Any value produces the same bitmap (OR is
  /// associative); it only shapes MergeStats.
  std::uint32_t fanout = 8;
  rfid::FrameMode mode = rfid::FrameMode::kSampled;
  rfid::ChannelModel channel{};
  rfid::TimingModel timing{};
  rfid::ExecutionPolicy policy{};
  /// Seed of the whole fleet estimate. Reader 0 is seeded with exactly
  /// this value (the degenerate-case guarantee); reader r ≥ 1 derives
  /// SeedMixer(seed)·"federation/reader"·r.
  std::uint64_t seed = 0;
};

/// One fleet estimate, fully accounted.
struct FederatedOutcome {
  /// The union estimate. `outcome.airtime`/`time_us` are ONE
  /// interference round's ledger (every reader runs the same slot
  /// schedule; colliding readers serialise into rounds — see
  /// fleet_airtime_s). tag_tx_bits sums over every reader.
  estimators::EstimateOutcome outcome;
  core::BfceTrace trace;  ///< per-phase diagnostics, as in plain BFCE

  std::size_t readers = 0;
  /// Interference colouring of the deployment: readers whose discs
  /// overlap cannot interrogate simultaneously, so the fleet needs this
  /// many sequential rounds (rfid::MultiReaderSystem::schedule_rounds).
  std::uint32_t schedule_rounds = 0;
  /// schedule_rounds × one round's airtime — the floor's wall-clock
  /// estimation time.
  double fleet_airtime_s = 0.0;

  double correction_g = 0.0;      ///< g(p_o) applied in the accurate phase
  double overlap_fraction = 0.0;  ///< the fleet profile's realised overlap
  MergeStats merge;               ///< aggregation-tree work, all phases
  rfid::EngineCounters counters;  ///< frame-engine counters, all readers

  /// The next draw of reader 0's RNG stream after the protocol ended —
  /// equal to ctx.next_seed() after a plain BFCE run with the same seed
  /// when the fleet is degenerate (stream-position assertion hook).
  std::uint64_t rng_fingerprint = 0;
};

/// The federated estimator. Stateless between calls except for its
/// configuration, like every estimator in the repository.
class FederatedBfceEstimator {
 public:
  FederatedBfceEstimator() = default;
  explicit FederatedBfceEstimator(FederationConfig config)
      : config_(config) {}

  [[nodiscard]] const FederationConfig& config() const noexcept {
    return config_;
  }

  /// Runs the full two-phase protocol across the fleet.
  FederatedOutcome estimate(const Fleet& fleet,
                            const estimators::Requirement& req) const;

 private:
  FederationConfig config_;
};

}  // namespace bfce::federation
