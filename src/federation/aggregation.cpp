#include "federation/aggregation.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bfce::federation {

util::BitVector merge_tree(std::vector<util::BitVector> leaves,
                           std::uint32_t fanout, MergeStats* stats) {
  if (leaves.empty()) return util::BitVector{};
  const std::uint32_t arity = std::max<std::uint32_t>(fanout, 2);
  MergeStats local;
  while (leaves.size() > 1) {
    ++local.levels;
    std::vector<util::BitVector> parents;
    parents.reserve((leaves.size() + arity - 1) / arity);
    for (std::size_t group = 0; group < leaves.size(); group += arity) {
      util::BitVector acc = std::move(leaves[group]);
      const std::size_t end = std::min(leaves.size(),
                                       group + static_cast<std::size_t>(arity));
      for (std::size_t child = group + 1; child < end; ++child) {
        const util::BitVector& map = leaves[child];
        assert(map.size() == acc.size());
        const std::size_t words = acc.word_count();
        for (std::size_t wi = 0; wi < words; ++wi) {
          acc.or_word(wi, map.word(wi));
        }
        ++local.merges;
        local.word_ors += words;
      }
      parents.push_back(std::move(acc));
    }
    leaves = std::move(parents);
  }
  if (stats != nullptr) *stats += local;
  return std::move(leaves.front());
}

}  // namespace bfce::federation
