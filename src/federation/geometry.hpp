#pragma once
// Coverage geometry for reader fleets.
//
// The federated union estimator needs to know how much of the covered
// floor is seen by one reader, how much by two, three, ... — the
// multiplicity histogram of the coverage map. A tag in a c-fold region
// responds to c independent reader sessions, so the OR-merged fleet
// bitmap behaves like a single Bloom frame whose *effective* persistence
// is larger than the broadcast p; CoverageProfile carries exactly the
// areas needed to compute that correction (federation/federated_bfce.hpp
// turns them into the g(p) laws).
//
// Everything here is deterministic, closed-form or midpoint-lattice
// quadrature — no RNG, so the same placements always produce the same
// profile on every host (the determinism lint covers this directory).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rfid/multireader.hpp"

namespace bfce::federation {

/// Area of the unit floor by coverage multiplicity, from a midpoint
/// lattice quadrature of the reader discs (grid² cells; a cell counts as
/// multiplicity c when its midpoint lies inside exactly c discs).
struct CoverageProfile {
  /// area_by_multiplicity[c] = a_c, the floor area covered by exactly c
  /// readers. Index 0 is the uncovered area; the vector always has at
  /// least one entry and sums to 1.
  std::vector<double> area_by_multiplicity{1.0};

  double covered_area = 0.0;   ///< A_cov = Σ_{c≥1} a_c
  double multiple_area = 0.0;  ///< Σ_{c≥2} a_c (the overlap mass)
  double coverage_mass = 0.0;  ///< A₁ = Σ c·a_c (what naive summing integrates)
  double pair_mass = 0.0;      ///< A₂ = Σ C(c,2)·a_c (pairwise intersections)

  [[nodiscard]] bool has_overlap() const noexcept { return multiple_area > 0.0; }

  /// A₁/A_cov: how many readers cover a uniformly placed *covered* tag
  /// on average (1 exactly when there is no overlap).
  [[nodiscard]] double mean_multiplicity() const noexcept {
    return covered_area > 0.0 ? coverage_mass / covered_area : 0.0;
  }

  /// (A₁ − A_cov)/A_cov: the double-counting excess of naive per-reader
  /// summation relative to the union (0 when coverage is disjoint).
  [[nodiscard]] double overlap_fraction() const noexcept {
    return covered_area > 0.0 ? (coverage_mass - covered_area) / covered_area
                              : 0.0;
  }

  /// Saturating correction: E_c[1 − (1−p)^c] over a covered tag's
  /// multiplicity law — the per-slot response probability when each of
  /// the c covering readers draws its persistence *independently per
  /// tag* (exact agent-level sessions). The pairwise inclusion–exclusion
  /// truncation of this series is (p·A₁ − p²·A₂)/A_cov; the histogram
  /// simply keeps every order.
  [[nodiscard]] double saturating_persistence(double p) const noexcept;

  /// Linear correction: p·A₁/A_cov — per-reader sessions whose *loads*
  /// add (sampled aggregate-law frames, where each reader draws its own
  /// binomial response counts with no per-tag coupling across readers).
  [[nodiscard]] double linear_persistence(double p) const noexcept {
    return p * mean_multiplicity();
  }

  /// Pairwise inclusion–exclusion truncation (p·A₁ − p²·A₂)/A_cov —
  /// documented/tested as the 2nd-order approximation of the saturating
  /// law; the estimator itself uses the full histogram.
  [[nodiscard]] double pairwise_persistence(double p) const noexcept {
    return covered_area > 0.0
               ? (p * coverage_mass - p * p * pair_mass) / covered_area
               : 0.0;
  }
};

/// Rasterises every disc over a grid×grid midpoint lattice of the unit
/// floor and histograms the per-cell multiplicities. Work is
/// O(Σ bounding-box cells), not O(grid² × readers), so dense 10k-reader
/// fleets profile in milliseconds.
CoverageProfile coverage_profile(
    const std::vector<rfid::ReaderPlacement>& readers,
    std::uint32_t grid = 1024);

/// Two radius-r readers placed symmetrically about the floor centre so
/// that their lens-shaped intersection is `frac` of their union
/// (closed-form lens area, bisection on the centre distance; frac ≤ 0
/// returns the tangent pair, i.e. exactly disjoint discs). Keep
/// radius ≤ 0.25 so both discs stay inside the unit floor at every
/// separation the bisection can choose.
std::vector<rfid::ReaderPlacement> overlapping_pair(double radius,
                                                    double frac);

/// Radius for MultiReaderSystem::grid(count, ·) such that the grid's
/// realised overlap_fraction() (per coverage_profile at `grid_cells`)
/// hits `frac`: bisection between the disjoint radius 0.45/side and a
/// heavily overlapped 1.25/side. frac ≤ 0 returns 0.45/side (neighbour
/// centres are 1/side apart, so 2·0.45/side keeps the discs disjoint).
double grid_radius_for_overlap(std::size_t count, double frac,
                               std::uint32_t grid_cells = 2048);

}  // namespace bfce::federation
