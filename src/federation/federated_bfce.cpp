#include "federation/federated_bfce.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "math/erf.hpp"
#include "rfid/reader.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace bfce::federation {

const char* to_cstring(SessionCorrelation correlation) noexcept {
  switch (correlation) {
    case SessionCorrelation::kIndependent:
      return "independent";
    case SessionCorrelation::kCoherent:
      return "coherent";
  }
  return "?";
}

double effective_persistence(const CoverageProfile& profile,
                             SessionCorrelation correlation,
                             rfid::FrameMode mode, double p) noexcept {
  // Trivial corrections return p itself — bit-identical to the plain
  // protocol's arithmetic, not merely close to it.
  if (correlation == SessionCorrelation::kCoherent || !profile.has_overlap()) {
    return p;
  }
  // Independent sessions: a tag under c readers answers through c
  // channels. Exact-mode frames keep per-tag slot identity, so the
  // c chances at the *same* k slots saturate (1 − (1−p)^c per tag);
  // sampled-mode frames draw independent per-reader binomials whose
  // loads simply add (p · mean multiplicity).
  return mode == rfid::FrameMode::kExact ? profile.saturating_persistence(p)
                                         : profile.linear_persistence(p);
}

core::PersistenceChoice federated_persistence_search(
    const CoverageProfile& profile, SessionCorrelation correlation,
    rfid::FrameMode mode, double n_low, std::uint32_t w, std::uint32_t k,
    double eps, double delta) {
  // core::PersistencePlanner::search with Theorem 3's edge functions
  // evaluated at the effective persistence: the fleet's per-slot load is
  // λ = k·g(p)·n/w, so f1/f2 see g(p) while the broadcast grid stays
  // p = p_n/1024.
  const double d = math::confidence_d(delta);
  core::PersistenceChoice best;  // margin-maximising fallback
  bool have_best = false;
  for (std::uint32_t p_n = 1; p_n <= 1023; ++p_n) {
    const double p = static_cast<double>(p_n) / 1024.0;
    const double g = effective_persistence(profile, correlation, mode, p);
    const double lo = core::f1(n_low, w, k, g, eps);
    const double hi = core::f2(n_low, w, k, g, eps);
    const double margin = std::fmin(-lo, hi) - d;
    if (margin >= 0.0) {
      return core::PersistenceChoice{p_n, p, true, margin};
    }
    if (!have_best || margin > best.margin) {
      best = core::PersistenceChoice{p_n, p, false, margin};
      have_best = true;
    }
  }
  return best;
}

FederatedOutcome FederatedBfceEstimator::estimate(
    const Fleet& fleet, const estimators::Requirement& req) const {
  const FederationConfig& cfg = config_;
  const core::BfceParams& prm = cfg.params;
  const CoverageProfile& profile = fleet.profile();

  FederatedOutcome fed;
  fed.readers = fleet.reader_count();
  fed.schedule_rounds = fleet.schedule_rounds();
  fed.overlap_fraction = profile.overlap_fraction();
  if (fed.readers == 0) {
    fed.outcome.met_by_design = false;
    fed.outcome.note = "federation over an empty fleet";
    return fed;
  }

  // Per-reader sessions. Reader 0 carries the coordinator's RNG stream
  // and is seeded with exactly the job seed — a 1-reader fleet therefore
  // consumes the same stream as a plain BFCE job. Readers r ≥ 1 get
  // independent derived streams, so no result can depend on how many
  // service workers (or merge fanouts) the back-end happens to run.
  std::vector<std::unique_ptr<rfid::ReaderContext>> sessions;
  sessions.reserve(fed.readers);
  for (std::size_t r = 0; r < fed.readers; ++r) {
    const std::uint64_t seed =
        r == 0 ? cfg.seed
               : util::SeedMixer(cfg.seed)
                     .absorb(std::string_view{"federation/reader"})
                     .absorb(static_cast<std::uint64_t>(r))
                     .value();
    sessions.push_back(std::make_unique<rfid::ReaderContext>(
        fleet.system().reader_population(r), seed, cfg.mode, cfg.channel,
        cfg.timing, cfg.policy));
  }
  rfid::ReaderContext& ctx0 = *sessions.front();

  estimators::EstimateOutcome& out = fed.outcome;
  core::BfceTrace& trace = fed.trace;
  const std::uint64_t seed_broadcast_bits =
      static_cast<std::uint64_t>(prm.k) * prm.seed_bits;

  // Coordinator-broadcast frame configuration: the seeds are drawn from
  // reader 0's stream in exactly the order core's make_config draws them.
  const auto make_config = [&](std::uint32_t p_n) {
    rfid::BloomFrameConfig frame;
    frame.w = prm.w;
    frame.k = prm.k;
    frame.hash = prm.hash;
    frame.persistence = prm.persistence;
    frame.set_p_numerator(p_n);
    for (std::uint32_t j = 0; j < prm.k; ++j) frame.seeds[j] = ctx0.next_seed();
    return frame;
  };

  // One fleet frame: every reader runs the same broadcast configuration
  // against its own coverage, the busy maps merge up the aggregation
  // tree. Airtime is charged once (the readers run in lockstep; colliding
  // readers serialise into rounds, accounted by fleet_airtime_s).
  const auto fleet_frame = [&](const rfid::BloomFrameConfig& frame) {
    std::vector<util::BitVector> leaves;
    leaves.reserve(sessions.size());
    for (const auto& session : sessions) {
      rfid::FrameResult res =
          session->run_frame(rfid::FrameRequest::bloom(frame));
      out.airtime.tag_tx_bits += res.tx;
      leaves.push_back(std::move(res.busy));
    }
    return merge_tree(std::move(leaves), cfg.fanout, &fed.merge);
  };

  const auto g_of = [&](double p) {
    return effective_persistence(profile, cfg.correlation, cfg.mode, p);
  };
  const auto idle_ratio = [](const util::BitVector& busy, std::size_t prefix) {
    const std::size_t busy_count = busy.count_ones_prefix(prefix);
    return 1.0 -
           static_cast<double>(busy_count) / static_cast<double>(prefix);
  };

  // ---- Persistence probe (§IV-C, fleet-wide) -------------------------
  // Identical control flow to core::BfceEstimator: the probe window is
  // the *merged* bitmap, so p_s settles where the union load is workable.
  std::uint32_t p_s_n = prm.probe_start_pn;
  for (std::uint32_t iter = 0; iter < prm.max_probe_iters; ++iter) {
    ++trace.probe_iterations;
    const auto frame = make_config(p_s_n);
    const double t_before = out.airtime.total_us(ctx0.timing());
    const util::BitVector busy = fleet_frame(frame);
    out.airtime.add_reader_broadcast(seed_broadcast_bits + prm.p_bits);
    out.airtime.add_tag_slots(prm.probe_slots);

    const std::size_t busy_count = busy.count_ones_prefix(prm.probe_slots);
    ctx0.log_frame(rfid::FrameKind::kProbe, prm.probe_slots, frame.p,
                   static_cast<std::uint32_t>(busy_count),
                   out.airtime.total_us(ctx0.timing()) - t_before);
    if (busy_count == 0) {
      if (p_s_n >= 1023) break;
      p_s_n = std::min<std::uint32_t>(1023, p_s_n + prm.probe_up_step);
    } else if (busy_count == prm.probe_slots) {
      if (p_s_n <= 1) break;
      p_s_n = std::max<std::uint32_t>(1, p_s_n - prm.probe_down_step);
    } else {
      break;
    }
  }
  trace.p_s_numerator = p_s_n;

  // ---- Phase 1: rough lower bound over the merged bitmap -------------
  const auto rough_cfg = make_config(p_s_n);
  const double t_rough_before = out.airtime.total_us(ctx0.timing());
  const util::BitVector rough_busy = fleet_frame(rough_cfg);
  std::uint32_t observed = prm.rough_prefix;
  double rho = idle_ratio(rough_busy, observed);
  while ((rho <= 0.0 || rho >= 1.0) && observed < prm.w) {
    observed = std::min(prm.w, observed * 2);
    rho = idle_ratio(rough_busy, observed);
  }
  out.airtime.add_reader_broadcast(seed_broadcast_bits + prm.p_bits);
  out.airtime.tag_bits += observed;
  ctx0.log_frame(rfid::FrameKind::kBloomRough, observed, rough_cfg.p,
                 static_cast<std::uint32_t>(
                     rough_busy.count_ones_prefix(observed)),
                 out.airtime.total_us(ctx0.timing()) - t_rough_before);

  trace.rho_rough = rho;
  trace.rough_slots_observed = observed;

  // Inversion under the effective persistence: the merged bitmap's load
  // is k·g(p_s)·n_union/w (g ≡ p when the correction is trivial).
  double n_rough;
  if (rho >= 1.0) {
    n_rough = 1.0;
    out.met_by_design = false;
    out.note = "rough phase saw an all-idle bitmap";
  } else if (rho <= 0.0) {
    n_rough = core::estimate_from_rho(1.0 / static_cast<double>(prm.w), prm.w,
                                      prm.k, g_of(rough_cfg.p));
    out.met_by_design = false;
    out.note = "rough phase saw an all-busy bitmap";
  } else {
    n_rough = core::estimate_from_rho(rho, prm.w, prm.k, g_of(rough_cfg.p));
  }
  trace.n_rough = n_rough;
  const double n_low = std::max(1.0, prm.c * n_rough);
  trace.n_low = n_low;

  // ---- Phase 2: fleet-level Theorem-4 plan + accurate frame ----------
  // Trivial corrections (coherent sessions, disjoint coverage, single
  // reader) delegate to the shared planner with the plain arguments —
  // same cache keys, same hit/miss behaviour as an ordinary BFCE job.
  // Otherwise run the g(p)-corrected grid search.
  const bool trivial_correction =
      cfg.correlation == SessionCorrelation::kCoherent || !profile.has_overlap();
  const core::PersistenceChoice choice =
      trivial_correction
          ? (prm.planner != nullptr
                 ? prm.planner->choose(n_low, prm.w, prm.k, req.epsilon,
                                       req.delta)
                 : core::PersistencePlanner::search(n_low, prm.w, prm.k,
                                                    req.epsilon, req.delta))
          : federated_persistence_search(profile, cfg.correlation, cfg.mode,
                                         n_low, prm.w, prm.k, req.epsilon,
                                         req.delta);
  trace.p_choice = choice;
  if (!choice.satisfies) {
    out.met_by_design = false;
    if (out.note.empty()) {
      out.note = "no p on the 1/1024 grid satisfies Theorem 3 at n_low";
    }
  }

  const auto acc_cfg = make_config(choice.p_n);
  const double t_acc_before = out.airtime.total_us(ctx0.timing());
  const util::BitVector acc_busy = fleet_frame(acc_cfg);
  out.airtime.intervals += 1;  // gap between phase-1 replies and broadcast
  out.airtime.add_reader_broadcast(seed_broadcast_bits + prm.p_bits);
  out.airtime.tag_bits += prm.w;
  ctx0.log_frame(rfid::FrameKind::kBloomAccurate, prm.w, acc_cfg.p,
                 static_cast<std::uint32_t>(acc_busy.count_ones()),
                 out.airtime.total_us(ctx0.timing()) - t_acc_before);

  double rho_acc = idle_ratio(acc_busy, prm.w);
  if (rho_acc <= 0.0) {
    rho_acc = 1.0 / static_cast<double>(prm.w);
    trace.rho_clamped = true;
  } else if (rho_acc >= 1.0) {
    rho_acc = 1.0 - 1.0 / static_cast<double>(prm.w);
    trace.rho_clamped = true;
  }
  trace.rho_accurate = rho_acc;

  const double g_o = g_of(acc_cfg.p);
  fed.correction_g = g_o;
  out.n_hat = core::estimate_from_rho(rho_acc, prm.w, prm.k, g_o);
  const core::ConfidenceInterval ci =
      core::interval_from_rho(rho_acc, prm.w, prm.k, g_o, req.delta);
  out.ci_low = ci.lo;
  out.ci_high = ci.hi;
  out.rounds = 1;
  out.time_us = out.airtime.total_us(ctx0.timing());

  for (const auto& session : sessions) {
    fed.counters += session->engine().counters();
  }
  fed.fleet_airtime_s = static_cast<double>(fed.schedule_rounds) *
                        out.airtime.total_seconds(ctx0.timing());
  // The stream-position witness: bit-equal to ctx.next_seed() after a
  // plain estimate when the fleet is degenerate.
  fed.rng_fingerprint = ctx0.next_seed();
  return fed;
}

}  // namespace bfce::federation
