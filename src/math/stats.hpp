#pragma once
// Streaming and batch statistics used across the experiment harness.

#include <cstddef>
#include <utility>
#include <vector>

namespace bfce::math {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// samples. Numerically stable for the long Monte-Carlo sweeps.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel reduction step).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes the batch summary (copies and sorts internally).
Summary summarize(std::vector<double> samples);

/// Linear-interpolation quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Empirical CDF evaluated at the sample points: returns (x_i, i/n) pairs
/// for the sorted sample — exactly what Fig 8 plots.
std::vector<std::pair<double, double>> empirical_cdf(
    std::vector<double> samples);

/// Median of a sample (used by SRC's majority-vote aggregation).
double median(std::vector<double> samples);

}  // namespace bfce::math
