#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

namespace bfce::math {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = samples.size();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.p25 = quantile_sorted(samples, 0.25);
  s.median = quantile_sorted(samples, 0.50);
  s.p75 = quantile_sorted(samples, 0.75);
  s.p95 = quantile_sorted(samples, 0.95);
  return s;
}

std::vector<std::pair<double, double>> empirical_cdf(
    std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(samples.size());
  const auto n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    cdf.emplace_back(samples[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<long>(mid),
                   samples.end());
  double hi = samples[mid];
  if (samples.size() % 2 == 1) return hi;
  const auto lo =
      *std::max_element(samples.begin(), samples.begin() + static_cast<long>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace bfce::math
