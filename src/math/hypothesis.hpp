#pragma once
// Goodness-of-fit helpers used by tests (hash uniformity, frame-mode
// equivalence) and by the SRC protocol's round-count rule.

#include <cstddef>
#include <vector>

namespace bfce::math {

/// Pearson chi-square statistic for observed counts against a uniform
/// expectation. Precondition: total observed > 0, bins non-empty.
double chi_square_uniform(const std::vector<std::size_t>& observed);

/// Upper-tail p-value of the chi-square distribution via the Wilson–
/// Hilferty normal approximation — accurate enough for pass/fail testing
/// at the sample sizes we use (k ≥ 30 bins).
double chi_square_pvalue(double statistic, std::size_t dof);

/// Two-sample Kolmogorov–Smirnov statistic (max CDF distance).
double ks_statistic(std::vector<double> a, std::vector<double> b);

/// Asymptotic two-sample KS p-value (Kolmogorov distribution tail).
double ks_pvalue(double statistic, std::size_t na, std::size_t nb);

/// One-sample KS test of normality: standardises by the sample mean/sd
/// and compares against Φ. Parameters are estimated from the data, so
/// the returned p-value is conservative (Lilliefors effect) — fine for
/// the "is the CLT kicking in" assertions the tests make.
double ks_normality_pvalue(std::vector<double> samples);

/// Binomial tail Pr{X ≥ k} for X ~ Binomial(m, p); computed in log space.
double binomial_upper_tail(std::size_t m, std::size_t k, double p);

/// SRC's repetition rule (quoted verbatim in the paper's §V-C): the
/// smallest odd m such that the majority of m rounds — each independently
/// correct with probability `per_round_success` (0.8 in the paper) — is
/// correct with probability ≥ 1 − δ.
std::size_t src_round_count(double delta, double per_round_success = 0.8);

/// Wilson score interval for a binomial proportion.
///
/// The experiment summaries report empirical violation rates from a few
/// dozen trials; the Wilson interval is what makes "0 violations in 25
/// trials" honestly comparable against δ (it stays inside [0, 1] and
/// does not collapse to a zero-width interval at p̂ ∈ {0, 1}).
struct ProportionInterval {
  double lo = 0.0;
  double hi = 1.0;
};
ProportionInterval wilson_interval(std::size_t successes,
                                   std::size_t trials,
                                   double confidence = 0.95);

/// Clopper–Pearson exact binomial interval.
///
/// The conformance tier needs a bound with *guaranteed* (not asymptotic)
/// coverage: "k misses in m trials is consistent with true rate δ" must
/// hold with at least the stated confidence even at m = 200 and δ near
/// the boundary, where Wilson's normal approximation under-covers. The
/// endpoints invert binomial_upper_tail by bisection, so they are exact
/// to ~1e-12 at any (k, m).
ProportionInterval clopper_pearson_interval(std::size_t successes,
                                            std::size_t trials,
                                            double confidence = 0.95);

}  // namespace bfce::math
