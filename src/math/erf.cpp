#include "math/erf.hpp"

#include <cmath>
#include <limits>
#include <numbers>

namespace bfce::math {

namespace {

/// Giles (2012)-style rational approximation to erfinv: good to ~1e-6,
/// used only to seed Newton.
double erfinv_initial(double x) {
  double w = -std::log((1.0 - x) * (1.0 + x));
  if (w < 6.25) {
    w -= 3.125;
    double p = -3.6444120640178196996e-21;
    p = -1.685059138182016589e-19 + p * w;
    p = 1.2858480715256400167e-18 + p * w;
    p = 1.115787767802518096e-17 + p * w;
    p = -1.333171662854620906e-16 + p * w;
    p = 2.0972767875968561637e-17 + p * w;
    p = 6.6376381343583238325e-15 + p * w;
    p = -4.0545662729752068639e-14 + p * w;
    p = -8.1519341976054721522e-14 + p * w;
    p = 2.6335093153082322977e-12 + p * w;
    p = -1.2975133253453532498e-11 + p * w;
    p = -5.4154120542946279317e-11 + p * w;
    p = 1.051212273321532285e-09 + p * w;
    p = -4.1126339803469836976e-09 + p * w;
    p = -2.9070369957882005086e-08 + p * w;
    p = 4.2347877827932403518e-07 + p * w;
    p = -1.3654692000834678645e-06 + p * w;
    p = -1.3882523362786468719e-05 + p * w;
    p = 0.0001867342080340571352 + p * w;
    p = -0.00074070253416626697512 + p * w;
    p = -0.0060336708714301490533 + p * w;
    p = 0.24015818242558961693 + p * w;
    p = 1.6536545626831027356 + p * w;
    return p * x;
  }
  if (w < 16.0) {
    w = std::sqrt(w) - 3.25;
    double p = 2.2137376921775787049e-09;
    p = 9.0756561938885390979e-08 + p * w;
    p = -2.7517406297064545428e-07 + p * w;
    p = 1.8239629214389227755e-08 + p * w;
    p = 1.5027403968909827627e-06 + p * w;
    p = -4.013867526981545969e-06 + p * w;
    p = 2.9234449089955446044e-06 + p * w;
    p = 1.2475304481671778723e-05 + p * w;
    p = -4.7318229009055733981e-05 + p * w;
    p = 6.8284851459573175448e-05 + p * w;
    p = 2.4031110387097893999e-05 + p * w;
    p = -0.0003550375203628474796 + p * w;
    p = 0.00095328937973738049703 + p * w;
    p = -0.0016882755560235047313 + p * w;
    p = 0.0024914420961078508066 + p * w;
    p = -0.0037512085075692412107 + p * w;
    p = 0.005370914553590063617 + p * w;
    p = 1.0052589676941592334 + p * w;
    p = 3.0838856104922207635 + p * w;
    return p * x;
  }
  w = std::sqrt(w) - 5.0;
  double p = -2.7109920616438573243e-11;
  p = -2.5556418169965252055e-10 + p * w;
  p = 1.5076572693500548083e-09 + p * w;
  p = -3.7894654401267369937e-09 + p * w;
  p = 7.6157012080783393804e-09 + p * w;
  p = -1.4960026627149240478e-08 + p * w;
  p = 2.9147953450901080826e-08 + p * w;
  p = -6.7711997758452339498e-08 + p * w;
  p = 2.2900482228026654717e-07 + p * w;
  p = -9.9298272942317002539e-07 + p * w;
  p = 4.5260625972231537039e-06 + p * w;
  p = -1.9681778105531670567e-05 + p * w;
  p = 7.5995277030017761139e-05 + p * w;
  p = -0.00021503011930044477347 + p * w;
  p = -0.00013871931833623122026 + p * w;
  p = 1.0103004648645343977 + p * w;
  p = 4.8499064014085844221 + p * w;
  return p * x;
}

}  // namespace

double erfinv(double x) {
  if (std::isnan(x) || x < -1.0 || x > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 1.0) return std::numeric_limits<double>::infinity();
  if (x == -1.0) return -std::numeric_limits<double>::infinity();
  if (x == 0.0) return 0.0;

  double y = erfinv_initial(x);
  // Newton iterations on f(y) = erf(y) − x; f'(y) = 2/√π · exp(−y²).
  constexpr double two_over_sqrt_pi = 2.0 * std::numbers::inv_sqrtpi;
  for (int it = 0; it < 2; ++it) {
    const double err = std::erf(y) - x;
    y -= err / (two_over_sqrt_pi * std::exp(-y * y));
  }
  return y;
}

double confidence_d(double delta) {
  return std::numbers::sqrt2 * erfinv(1.0 - delta);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

}  // namespace bfce::math
