#pragma once
// Inverse error function and the confidence constant d(δ) from Theorem 3.
//
// The standard library provides erf but not erfinv; BFCE needs
// d = √2 · erfinv(1 − δ) to translate an error probability δ into a CLT
// z-score (Pr{−d ≤ Y ≤ d} = 1 − δ for standard normal Y).

namespace bfce::math {

/// Inverse of std::erf on (−1, 1).
///
/// Implementation: Mike Giles' single-precision-style rational initial
/// guess extended with two Newton iterations against std::erf, giving
/// ~1e-15 relative accuracy across the domain. Returns ±infinity at ±1 and
/// NaN outside [−1, 1].
double erfinv(double x);

/// The constant d of Theorem 3: d = √2 · erfinv(1 − δ).
///
/// δ is the allowed error probability; e.g. δ = 0.05 → d ≈ 1.95996.
/// Precondition: 0 < δ < 1.
double confidence_d(double delta);

/// Standard normal CDF Φ(x); used by tests to validate confidence_d and by
/// the KS helper.
double normal_cdf(double x);

}  // namespace bfce::math
