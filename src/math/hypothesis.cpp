#include "math/hypothesis.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "math/erf.hpp"

namespace bfce::math {

double chi_square_uniform(const std::vector<std::size_t>& observed) {
  assert(!observed.empty());
  std::size_t total = 0;
  for (const std::size_t c : observed) total += c;
  assert(total > 0);
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  double stat = 0.0;
  for (const std::size_t c : observed) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double chi_square_pvalue(double statistic, std::size_t dof) {
  if (dof == 0) return 1.0;
  const double k = static_cast<double>(dof);
  // Wilson–Hilferty: (X/k)^(1/3) is approximately normal with mean
  // 1 − 2/(9k) and variance 2/(9k).
  const double z = (std::cbrt(statistic / k) - (1.0 - 2.0 / (9.0 * k))) /
                   std::sqrt(2.0 / (9.0 * k));
  return 1.0 - normal_cdf(z);
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  assert(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  return d;
}

double ks_pvalue(double statistic, std::size_t na, std::size_t nb) {
  const double n_eff = static_cast<double>(na) * static_cast<double>(nb) /
                       static_cast<double>(na + nb);
  const double lambda =
      (std::sqrt(n_eff) + 0.12 + 0.11 / std::sqrt(n_eff)) * statistic;
  // Kolmogorov tail series; converges in a handful of terms.
  double p = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * lambda * lambda * j * j);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * p, 0.0, 1.0);
}

double ks_normality_pvalue(std::vector<double> samples) {
  assert(samples.size() >= 8);
  std::sort(samples.begin(), samples.end());
  double mean = 0.0;
  for (const double x : samples) mean += x;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (const double x : samples) var += (x - mean) * (x - mean);
  var /= static_cast<double>(samples.size() - 1);
  const double sd = std::sqrt(var);
  if (sd <= 0.0) return 0.0;  // constant data is certainly not normal

  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double cdf = normal_cdf((samples[i] - mean) / sd);
    const double above = static_cast<double>(i + 1) / n - cdf;
    const double below = cdf - static_cast<double>(i) / n;
    d = std::max(d, std::max(above, below));
  }
  // One-sample Kolmogorov tail (same series as the two-sample case with
  // n_eff = n).
  const double lambda = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
  double p = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * lambda * lambda * j * j);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * p, 0.0, 1.0);
}

namespace {

/// ln Γ(x) without glibc lgamma()'s write to the global `signgam` — the
/// estimator paths call this concurrently from service workers, and the
/// global write is a data race under ThreadSanitizer. lgamma_r returns
/// bit-identical values; the sign output is discarded (x > 0 here).
double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double binomial_upper_tail(std::size_t m, std::size_t k, double p) {
  if (k == 0) return 1.0;
  if (k > m) return 0.0;
  const double logp = std::log(p);
  const double logq = std::log1p(-p);
  double tail = 0.0;
  for (std::size_t i = k; i <= m; ++i) {
    const double log_choose = log_gamma(static_cast<double>(m) + 1.0) -
                              log_gamma(static_cast<double>(i) + 1.0) -
                              log_gamma(static_cast<double>(m - i) + 1.0);
    tail += std::exp(log_choose + static_cast<double>(i) * logp +
                     static_cast<double>(m - i) * logq);
  }
  return std::min(tail, 1.0);
}

ProportionInterval wilson_interval(std::size_t successes,
                                   std::size_t trials, double confidence) {
  if (trials == 0) return ProportionInterval{};
  const double z = confidence_d(1.0 - confidence);
  const double n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p_hat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom;
  ProportionInterval ci;
  // Snap the exact boundary cases (p̂ ∈ {0,1}) to their closed ends —
  // the algebra otherwise leaves ±1e-17 residue.
  ci.lo = successes == 0 ? 0.0 : std::max(0.0, centre - half);
  ci.hi = successes == trials ? 1.0 : std::min(1.0, centre + half);
  return ci;
}

namespace {

/// Solves f(p) = target for monotone f on the open interval (0, 1).
/// `increasing` states f's direction; 100 halvings bound the error by
/// 2^-100, far below the double-precision noise floor of the tail sums.
template <typename F>
double bisect_unit(F f, double target, bool increasing) {
  double lo = 0.0;
  double hi = 1.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    const bool go_right = increasing ? f(mid) < target : f(mid) > target;
    (go_right ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

ProportionInterval clopper_pearson_interval(std::size_t successes,
                                            std::size_t trials,
                                            double confidence) {
  ProportionInterval ci;
  if (trials == 0) return ci;
  const double alpha = 1.0 - confidence;
  // Lower endpoint: the p with Pr{X ≥ k | p} = α/2 (degenerate at k=0).
  // Pr{X ≥ k | p} increases in p, so bisection aims right when below.
  if (successes > 0) {
    ci.lo = bisect_unit(
        [&](double p) { return binomial_upper_tail(trials, successes, p); },
        alpha / 2.0, /*increasing=*/true);
  }
  // Upper endpoint: the p with Pr{X ≤ k | p} = α/2, i.e.
  // Pr{X ≥ k+1 | p} = 1 − α/2 (degenerate at k=m).
  if (successes < trials) {
    ci.hi = bisect_unit(
        [&](double p) {
          return binomial_upper_tail(trials, successes + 1, p);
        },
        1.0 - alpha / 2.0, /*increasing=*/true);
  }
  return ci;
}

std::size_t src_round_count(double delta, double per_round_success) {
  // Odd m only: the median of an odd number of rounds is well defined, and
  // the paper's formula sums from (m+1)/2 which presumes odd m.
  for (std::size_t m = 1; m <= 201; m += 2) {
    const double ok = binomial_upper_tail(m, (m + 1) / 2, per_round_success);
    if (ok >= 1.0 - delta) return m;
  }
  return 201;  // δ so tiny the paper's rule was never meant for it
}

}  // namespace bfce::math
