#pragma once
// Differential cardinality estimation — an extension of BFCE's Bloom
// machinery beyond the paper (DESIGN.md §6).
//
// Monitoring applications (the paper's inventory-management motivation)
// rarely want one number; they want *churn*: how many tags left and how
// many arrived since the last check. Two Bloom snapshots taken with the
// SAME seeds and a DETERMINISTIC persistence sample make that a closed-
// form computation.
//
// Determinism is the key trick: a tag participates iff
// hash(id, sample_seed) < p·2^64, so the responding subpopulation is
// identical across snapshots. Writing s, d, a for the sampled counts of
// stayers, departed and arrived tags, and ρ_ref / ρ_now / ρ_both for the
// idle ratios of the reference bitmap, the new bitmap, and their
// intersection-of-idles (bit idle in both), Theorem 1 gives
//
//   ρ_ref  = e^{−k(s+d)/w},  ρ_now = e^{−k(s+a)/w},
//   ρ_both = e^{−k(s+d+a)/w}
//
// which inverts exactly:
//
//   d̂ = (w/k)·ln(ρ_now/ρ_both) / p,   â = (w/k)·ln(ρ_ref/ρ_both) / p,
//   ŝ = −(w/k)·ln(ρ_ref·ρ_now/ρ_both) / p.

#include <cstdint>

#include "rfid/population.hpp"
#include "rfid/channel.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace bfce::core {

/// Fixed protocol parameters shared by both snapshots. The seeds MUST be
/// identical across the snapshots being compared — that is what aligns
/// the bitmaps bit-for-bit.
struct DifferentialConfig {
  std::uint32_t w = 8192;
  std::uint32_t k = 3;
  /// Deterministic sampling probability. Pick so the sampled load
  /// k·p·n/w stays near 1: p ≈ w/(k·n_expected), clamped to (0, 1].
  double p = 1.0;
  std::uint64_t sample_seed = 0x5A4D91E5;
  std::uint64_t slot_seeds[3] = {0xA5A5A5A5, 0x5A5A5A5A, 0x0F0F0F0F};

  /// Convenience: tunes p for an expected population size.
  void tune_for(double n_expected, double lambda_target = 1.0) noexcept;
};

/// One over-the-air snapshot: the busy bitmap of a deterministic Bloom
/// frame over `tags`. Costs w bit-slots plus the parameter broadcast
/// (same ledger shape as one BFCE phase).
util::BitVector take_snapshot(const rfid::TagPopulation& tags,
                              const DifferentialConfig& cfg,
                              const rfid::Channel& channel,
                              util::Xoshiro256ss& rng);

/// Churn estimate between two aligned snapshots.
struct ChurnEstimate {
  double stayed = 0.0;
  double departed = 0.0;
  double arrived = 0.0;
  bool degenerate = false;  ///< a bitmap was saturated; values clamped
};

/// Inverts the three-idle-ratio system above.
ChurnEstimate compare_snapshots(const util::BitVector& reference,
                                const util::BitVector& current,
                                const DifferentialConfig& cfg);

}  // namespace bfce::core
