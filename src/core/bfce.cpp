#include "core/bfce.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "math/erf.hpp"
#include "math/stats.hpp"
#include "util/bitvector.hpp"

namespace bfce::core {

namespace {

/// Runs one Bloom frame through the context's engine (which dispatches
/// on the execution mode), accumulating individual tag transmissions
/// into `tx` for the energy model.
util::BitVector execute_frame(rfid::ReaderContext& ctx,
                              const rfid::BloomFrameConfig& cfg,
                              std::uint64_t* tx) {
  rfid::FrameResult res = ctx.run_frame(rfid::FrameRequest::bloom(cfg));
  if (tx != nullptr) *tx += res.tx;
  return std::move(res.busy);
}

/// Fresh per-phase frame configuration with newly broadcast seeds.
rfid::BloomFrameConfig make_config(rfid::ReaderContext& ctx,
                                   const BfceParams& params,
                                   std::uint32_t p_n) {
  rfid::BloomFrameConfig cfg;
  cfg.w = params.w;
  cfg.k = params.k;
  cfg.hash = params.hash;
  cfg.persistence = params.persistence;
  cfg.set_p_numerator(p_n);
  for (std::uint32_t j = 0; j < params.k; ++j) cfg.seeds[j] = ctx.next_seed();
  return cfg;
}

/// Idle ratio over the first `prefix` slots of a busy bitmap.
double idle_ratio(const util::BitVector& busy, std::size_t prefix) {
  const std::size_t busy_count = busy.count_ones_prefix(prefix);
  return 1.0 - static_cast<double>(busy_count) / static_cast<double>(prefix);
}

}  // namespace

estimators::EstimateOutcome BfceEstimator::estimate(
    rfid::ReaderContext& ctx, const estimators::Requirement& req) {
  BfceTrace trace;
  return estimate_traced(ctx, req, trace);
}

estimators::EstimateOutcome BfceEstimator::estimate_traced(
    rfid::ReaderContext& ctx, const estimators::Requirement& req,
    BfceTrace& trace) {
  estimators::EstimateOutcome out;
  trace = BfceTrace{};
  const auto& prm = params_;
  const std::uint64_t seed_broadcast_bits =
      static_cast<std::uint64_t>(prm.k) * prm.seed_bits;

  // ---- Persistence probe (§IV-C) -------------------------------------
  // Find a p_s whose 32-slot window shows both idle and busy slots.
  // Every attempt costs a parameter broadcast plus the probe window.
  std::uint32_t p_s_n = prm.probe_start_pn;
  for (std::uint32_t iter = 0; iter < prm.max_probe_iters; ++iter) {
    ++trace.probe_iterations;
    const auto cfg = make_config(ctx, prm, p_s_n);
    const double t_before = out.airtime.total_us(ctx.timing());
    const util::BitVector busy =
        execute_frame(ctx, cfg, &out.airtime.tag_tx_bits);
    out.airtime.add_reader_broadcast(seed_broadcast_bits + prm.p_bits);
    out.airtime.add_tag_slots(prm.probe_slots);

    const std::size_t busy_count = busy.count_ones_prefix(prm.probe_slots);
    ctx.log_frame(rfid::FrameKind::kProbe, prm.probe_slots, cfg.p,
                  static_cast<std::uint32_t>(busy_count),
                  out.airtime.total_us(ctx.timing()) - t_before);
    if (busy_count == 0) {
      if (p_s_n >= 1023) break;  // p at ceiling and still silent: tiny n
      p_s_n = std::min<std::uint32_t>(1023, p_s_n + prm.probe_up_step);
    } else if (busy_count == prm.probe_slots) {
      if (p_s_n <= 1) break;  // p at floor and still saturated: huge n
      p_s_n = std::max<std::uint32_t>(1, p_s_n - prm.probe_down_step);
    } else {
      break;  // mixed window: p_s is workable
    }
  }
  trace.p_s_numerator = p_s_n;

  // ---- Phase 1: rough lower bound (§IV-C) ----------------------------
  // One Bloom frame with p_s, truncated after `rough_prefix` slots. If
  // the observed prefix is degenerate (all idle / all busy) the reader
  // simply keeps listening — the frame is already on the air — doubling
  // the window up to the full w.
  const auto rough_cfg = make_config(ctx, prm, p_s_n);
  const double t_rough_before = out.airtime.total_us(ctx.timing());
  const util::BitVector rough_busy =
      execute_frame(ctx, rough_cfg, &out.airtime.tag_tx_bits);
  std::uint32_t observed = prm.rough_prefix;
  double rho = idle_ratio(rough_busy, observed);
  while ((rho <= 0.0 || rho >= 1.0) && observed < prm.w) {
    observed = std::min(prm.w, observed * 2);
    rho = idle_ratio(rough_busy, observed);
  }
  out.airtime.add_reader_broadcast(seed_broadcast_bits + prm.p_bits);
  // The ledger mirrors §IV-E.1: the interval preceding the reply window
  // is already charged by add_reader_broadcast; the slots follow without
  // a trailing gap (the next broadcast charges its own).
  out.airtime.tag_bits += observed;
  ctx.log_frame(rfid::FrameKind::kBloomRough, observed, rough_cfg.p,
                static_cast<std::uint32_t>(
                    rough_busy.count_ones_prefix(observed)),
                out.airtime.total_us(ctx.timing()) - t_rough_before);

  trace.rho_rough = rho;
  trace.rough_slots_observed = observed;

  double n_rough;
  if (rho >= 1.0) {
    // Even the full bitmap is all idle: fewer tags than the estimator can
    // see at the ceiling probability. Report the smallest resolvable n.
    n_rough = 1.0;
    out.met_by_design = false;
    out.note = "rough phase saw an all-idle bitmap";
  } else if (rho <= 0.0) {
    // Saturated even at the floor probability: clamp at the scalability
    // envelope (γ_max · w, the >19M bound of §IV-B).
    n_rough = estimate_from_rho(1.0 / static_cast<double>(prm.w), prm.w,
                                prm.k, rough_cfg.p);
    out.met_by_design = false;
    out.note = "rough phase saw an all-busy bitmap";
  } else {
    n_rough = estimate_from_rho(rho, prm.w, prm.k, rough_cfg.p);
  }
  trace.n_rough = n_rough;
  const double n_low = std::max(1.0, prm.c * n_rough);
  trace.n_low = n_low;

  // ---- Phase 2: accurate estimation (§IV-D) --------------------------
  const PersistenceChoice choice =
      prm.planner != nullptr
          ? prm.planner->choose(n_low, prm.w, prm.k, req.epsilon, req.delta)
          : PersistencePlanner::search(n_low, prm.w, prm.k, req.epsilon,
                                       req.delta);
  trace.p_choice = choice;
  if (!choice.satisfies) {
    out.met_by_design = false;
    if (out.note.empty()) {
      out.note = "no p on the 1/1024 grid satisfies Theorem 3 at n_low";
    }
  }

  const auto acc_cfg = make_config(ctx, prm, choice.p_n);
  const double t_acc_before = out.airtime.total_us(ctx.timing());
  const util::BitVector acc_busy =
      execute_frame(ctx, acc_cfg, &out.airtime.tag_tx_bits);
  out.airtime.intervals += 1;  // gap between phase-1 replies and broadcast
  out.airtime.add_reader_broadcast(seed_broadcast_bits + prm.p_bits);
  out.airtime.tag_bits += prm.w;
  ctx.log_frame(rfid::FrameKind::kBloomAccurate, prm.w, acc_cfg.p,
                static_cast<std::uint32_t>(acc_busy.count_ones()),
                out.airtime.total_us(ctx.timing()) - t_acc_before);

  double rho_acc = idle_ratio(acc_busy, prm.w);
  if (rho_acc <= 0.0) {
    rho_acc = 1.0 / static_cast<double>(prm.w);
    trace.rho_clamped = true;
  } else if (rho_acc >= 1.0) {
    rho_acc = 1.0 - 1.0 / static_cast<double>(prm.w);
    trace.rho_clamped = true;
  }
  trace.rho_accurate = rho_acc;

  out.n_hat = estimate_from_rho(rho_acc, prm.w, prm.k, acc_cfg.p);
  const ConfidenceInterval ci =
      interval_from_rho(rho_acc, prm.w, prm.k, acc_cfg.p, req.delta);
  out.ci_low = ci.lo;
  out.ci_high = ci.hi;
  out.rounds = 1;  // the whole protocol is a single two-phase round
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

estimators::EstimateOutcome AveragedBfceEstimator::estimate(
    rfid::ReaderContext& ctx, const estimators::Requirement& req) {
  estimators::EstimateOutcome out;
  out.rounds = 0;
  math::RunningStats estimates;
  for (std::uint32_t r = 0; r < rounds_; ++r) {
    const estimators::EstimateOutcome one = inner_.estimate(ctx, req);
    estimates.add(one.n_hat);
    out.airtime += one.airtime;
    ++out.rounds;
    out.met_by_design = out.met_by_design && one.met_by_design;
    if (!one.note.empty() && out.note.empty()) out.note = one.note;
  }
  out.n_hat = estimates.mean();
  if (estimates.count() >= 2) {
    const double half = math::confidence_d(req.delta) * estimates.stddev() /
                        std::sqrt(static_cast<double>(estimates.count()));
    out.ci_low = out.n_hat - half;
    out.ci_high = out.n_hat + half;
  }
  out.time_us = out.airtime.total_us(ctx.timing());
  return out;
}

}  // namespace bfce::core
