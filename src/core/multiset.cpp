#include "core/multiset.hpp"

#include <algorithm>
#include <cassert>

#include "core/analysis.hpp"

namespace bfce::core {

util::BitVector merge_snapshots(
    const std::vector<const util::BitVector*>& snapshots,
    const DifferentialConfig& cfg) {
  util::BitVector merged(cfg.w);
  for (const util::BitVector* snap : snapshots) {
    assert(snap != nullptr && snap->size() == cfg.w);
    for (std::uint32_t i = 0; i < cfg.w; ++i) {
      if (snap->get(i)) merged.set(i);
    }
  }
  return merged;
}

double estimate_snapshot(const util::BitVector& snapshot,
                         const DifferentialConfig& cfg) {
  assert(snapshot.size() == cfg.w);
  const double w = static_cast<double>(cfg.w);
  const double floor_rho = 1.0 / (2.0 * w);
  const double rho = std::clamp(
      1.0 - static_cast<double>(snapshot.count_ones()) / w, floor_rho,
      1.0 - floor_rho);
  // Inversion over the deterministic sample, scaled back by 1/p.
  return estimate_from_rho(rho, cfg.w, cfg.k, 1.0) / cfg.p;
}

double estimate_union(const util::BitVector& a, const util::BitVector& b,
                      const DifferentialConfig& cfg) {
  return estimate_snapshot(merge_snapshots({&a, &b}, cfg), cfg);
}

double estimate_intersection(const util::BitVector& a,
                             const util::BitVector& b,
                             const DifferentialConfig& cfg) {
  const double na = estimate_snapshot(a, cfg);
  const double nb = estimate_snapshot(b, cfg);
  const double n_union = estimate_union(a, b, cfg);
  return std::max(0.0, na + nb - n_union);
}

double estimate_jaccard(const util::BitVector& a, const util::BitVector& b,
                        const DifferentialConfig& cfg) {
  const double n_union = estimate_union(a, b, cfg);
  if (n_union <= 0.0) return 0.0;
  return std::min(1.0, estimate_intersection(a, b, cfg) / n_union);
}

}  // namespace bfce::core
