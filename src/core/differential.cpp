#include "core/differential.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hash/mix.hpp"
#include "hash/slot_hash.hpp"

namespace bfce::core {

void DifferentialConfig::tune_for(double n_expected,
                                  double lambda_target) noexcept {
  if (n_expected <= 0.0) {
    p = 1.0;
    return;
  }
  p = std::clamp(lambda_target * static_cast<double>(w) /
                     (static_cast<double>(k) * n_expected),
                 1.0 / 1024.0, 1.0);
}

util::BitVector take_snapshot(const rfid::TagPopulation& tags,
                              const DifferentialConfig& cfg,
                              const rfid::Channel& channel,
                              util::Xoshiro256ss& rng) {
  assert(cfg.k >= 1 && cfg.k <= 3);
  const auto threshold =
      cfg.p >= 1.0 ? ~0ULL
                   : static_cast<std::uint64_t>(
                         cfg.p * 18446744073709551616.0 /* 2^64 */);
  std::vector<std::uint32_t> counts(cfg.w, 0);
  for (const rfid::Tag& tag : tags.tags()) {
    // Deterministic persistence: the same tag participates in every
    // snapshot (or in none), so set differences are bit-aligned.
    if (hash::mix_with_seed(tag.id, cfg.sample_seed) >= threshold) continue;
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      ++counts[hash::IdealSlotHash(cfg.slot_seeds[j]).slot(tag.id, cfg.w)];
    }
  }
  util::BitVector busy(cfg.w);
  for (std::uint32_t i = 0; i < cfg.w; ++i) {
    if (rfid::is_busy(channel.observe(counts[i], rng))) busy.set(i);
  }
  return busy;
}

ChurnEstimate compare_snapshots(const util::BitVector& reference,
                                const util::BitVector& current,
                                const DifferentialConfig& cfg) {
  assert(reference.size() == cfg.w && current.size() == cfg.w);
  const double w = static_cast<double>(cfg.w);

  std::size_t busy_ref = 0;
  std::size_t busy_now = 0;
  std::size_t busy_either = 0;
  for (std::uint32_t i = 0; i < cfg.w; ++i) {
    const bool r = reference.get(i);
    const bool c = current.get(i);
    busy_ref += r;
    busy_now += c;
    busy_either += (r || c);
  }
  const double floor_rho = 1.0 / (2.0 * w);
  auto clamp_rho = [&](std::size_t busy) {
    return std::clamp(1.0 - static_cast<double>(busy) / w, floor_rho,
                      1.0 - floor_rho);
  };
  ChurnEstimate out;
  const double rho_ref_raw = 1.0 - static_cast<double>(busy_ref) / w;
  const double rho_now_raw = 1.0 - static_cast<double>(busy_now) / w;
  const double rho_both_raw = 1.0 - static_cast<double>(busy_either) / w;
  out.degenerate = rho_ref_raw <= 0.0 || rho_now_raw <= 0.0 ||
                   rho_both_raw <= 0.0 || rho_ref_raw >= 1.0 ||
                   rho_now_raw >= 1.0;
  const double rho_ref = clamp_rho(busy_ref);
  const double rho_now = clamp_rho(busy_now);
  const double rho_both = clamp_rho(busy_either);

  const double scale = w / (static_cast<double>(cfg.k) * cfg.p);
  // ρ_both ≤ min(ρ_ref, ρ_now) by construction, so the logs below are
  // non-negative up to the clamping.
  out.departed = std::max(0.0, scale * std::log(rho_now / rho_both));
  out.arrived = std::max(0.0, scale * std::log(rho_ref / rho_both));
  out.stayed =
      std::max(0.0, -scale * std::log(rho_ref * rho_now / rho_both));
  return out;
}

}  // namespace bfce::core
