#pragma once
// Multi-set cardinality estimation over aligned Bloom snapshots.
//
// The SRC baseline paper (Chen, Zhou & Yu, MobiCom 2013) frames two
// problems: single-set counting (what BFCE solves) and the
// *multiple-set* problem — the cardinality of a union of tag sets seen
// by different readers/warehouses, without shipping tag-level data
// around. Aligned Bloom snapshots solve it by construction: snapshots
// taken with the same seeds and the same deterministic sample OR
// together bit-wise into exactly the snapshot the union population
// would have produced, so Theorem 2 inverts the merged bitmap directly.
//
// From unions, inclusion–exclusion yields pairwise intersections — the
// "how much stock is double-stored" question — at zero extra airtime.

#include <vector>

#include "core/differential.hpp"
#include "util/bitvector.hpp"

namespace bfce::core {

/// Bit-wise OR of aligned snapshots (what the union population's
/// snapshot would have been). All snapshots must share the config's w.
util::BitVector merge_snapshots(
    const std::vector<const util::BitVector*>& snapshots,
    const DifferentialConfig& cfg);

/// Cardinality estimate from one (possibly merged) snapshot.
/// Degenerate bitmaps are clamped to the finest resolvable ratio.
double estimate_snapshot(const util::BitVector& snapshot,
                         const DifferentialConfig& cfg);

/// |A ∪ B| from two aligned snapshots.
double estimate_union(const util::BitVector& a, const util::BitVector& b,
                      const DifferentialConfig& cfg);

/// |A ∩ B| via inclusion–exclusion on aligned snapshots. Clamped at 0
/// (estimation noise can push small intersections negative).
double estimate_intersection(const util::BitVector& a,
                             const util::BitVector& b,
                             const DifferentialConfig& cfg);

/// Jaccard similarity |A∩B| / |A∪B| of two aligned snapshots (0 when
/// the union estimate is 0).
double estimate_jaccard(const util::BitVector& a, const util::BitVector& b,
                        const DifferentialConfig& cfg);

}  // namespace bfce::core
