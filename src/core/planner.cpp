#include "core/planner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <mutex>
#include <tuple>

#include "math/erf.hpp"
#include "util/rng.hpp"

namespace bfce::core {

PersistencePlanner::PersistencePlanner(Options options) : options_(options) {}

PersistenceChoice PersistencePlanner::search(double n_low, std::uint32_t w,
                                             std::uint32_t k, double eps,
                                             double delta) {
  const double d = math::confidence_d(delta);
  PersistenceChoice best;  // margin-maximising fallback
  bool have_best = false;
  for (std::uint32_t p_n = 1; p_n <= 1023; ++p_n) {
    const double p = static_cast<double>(p_n) / 1024.0;
    const double lo = f1(n_low, w, k, p, eps);
    const double hi = f2(n_low, w, k, p, eps);
    const double margin = std::fmin(-lo, hi) - d;
    if (margin >= 0.0) {
      // Minimal satisfying p: the paper takes the first hit (p_o small).
      return PersistenceChoice{p_n, p, true, margin};
    }
    if (!have_best || margin > best.margin) {
      best = PersistenceChoice{p_n, p, false, margin};
      have_best = true;
    }
  }
  return best;
}

double PersistencePlanner::bucket(double n_low) const noexcept {
  const std::uint32_t bits = options_.n_low_mantissa_bits;
  if (bits >= 52 || !std::isfinite(n_low)) return n_low;
  const std::uint64_t mask = ~((std::uint64_t{1} << (52 - bits)) - 1);
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(n_low) & mask);
}

PersistenceChoice PersistencePlanner::choose(double n_low, std::uint32_t w,
                                             std::uint32_t k, double eps,
                                             double delta) {
  const double snapped = bucket(n_low);
  if (!options_.cache) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return search(snapped, w, k, eps, delta);
  }

  const Key key{std::bit_cast<std::uint64_t>(snapped), w, k,
                std::bit_cast<std::uint64_t>(eps),
                std::bit_cast<std::uint64_t>(delta)};
  {
    std::shared_lock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  const PersistenceChoice choice = search(snapped, w, k, eps, delta);
  {
    std::unique_lock lock(mutex_);
    if (cache_.size() < options_.max_entries) cache_.emplace(key, choice);
  }
  return choice;
}

PlannerCacheStats PersistencePlanner::stats() const {
  PlannerCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  std::shared_lock lock(mutex_);
  s.entries = cache_.size();
  return s;
}

std::vector<PlannerEntry> PersistencePlanner::export_entries() const {
  std::vector<PlannerEntry> entries;
  {
    std::shared_lock lock(mutex_);
    entries.reserve(cache_.size());
    for (const auto& [key, choice] : cache_) {
      entries.push_back(PlannerEntry{key.n_low_bits, key.w, key.k,
                                     key.eps_bits, key.delta_bits, choice});
    }
  }
  // unordered_map iteration order is not deterministic; snapshots must
  // be byte-stable, so sort by the full key tuple.
  std::sort(entries.begin(), entries.end(),
            [](const PlannerEntry& a, const PlannerEntry& b) {
              return std::tie(a.n_low_bits, a.w, a.k, a.eps_bits,
                              a.delta_bits) <
                     std::tie(b.n_low_bits, b.w, b.k, b.eps_bits,
                              b.delta_bits);
            });
  return entries;
}

std::size_t PersistencePlanner::import_entries(
    const std::vector<PlannerEntry>& entries) {
  std::size_t inserted = 0;
  std::unique_lock lock(mutex_);
  for (const PlannerEntry& e : entries) {
    if (cache_.size() >= options_.max_entries) break;
    const Key key{e.n_low_bits, e.w, e.k, e.eps_bits, e.delta_bits};
    if (cache_.emplace(key, e.choice).second) ++inserted;
  }
  return inserted;
}

void PersistencePlanner::clear() {
  std::unique_lock lock(mutex_);
  cache_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

std::size_t PersistencePlanner::KeyHash::operator()(
    const Key& key) const noexcept {
  return static_cast<std::size_t>(util::SeedMixer(0x706C616E6E657200ULL)
                                      .absorb(key.n_low_bits)
                                      .absorb(std::uint64_t{key.w})
                                      .absorb(std::uint64_t{key.k})
                                      .absorb(key.eps_bits)
                                      .absorb(key.delta_bits)
                                      .value());
}

}  // namespace bfce::core
