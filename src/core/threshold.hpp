#pragma once
// Threshold queries: "are there more than T tags?" answered cheaper
// than a full estimate.
//
// Monitoring applications often need only a yes/no (fire an alarm when
// stock drops below T), and a sequential probability ratio test (SPRT)
// over single bit-slots answers it with a number of slots that *adapts
// to how far n is from T* — far away: a handful of slots; near the
// boundary: more. Each slot is the familiar Bernoulli observation: with
// per-tag participation q = λ*/T the slot is busy w.p. 1 − e^{−qn}, so
// the log-likelihood ratio between H1: n ≥ T·γ and H0: n ≤ T/γ moves a
// fixed amount per observation.

#include <cstdint>

#include "estimators/estimator.hpp"
#include "rfid/reader.hpp"

namespace bfce::core {

struct ThresholdQuery {
  double threshold = 0.0;  ///< T
  /// Indifference band: the test separates n ≤ T/γ from n ≥ T·γ; inside
  /// the band either answer is acceptable.
  double gamma = 1.5;
  double alpha = 0.05;  ///< Pr{say "above" | n ≤ T/γ}
  double beta = 0.05;   ///< Pr{say "below" | n ≥ T·γ}
  std::uint32_t seed_bits = 32;
  std::uint32_t max_slots = 100000;  ///< hard cap (indifference-band edge)
};

struct ThresholdAnswer {
  bool above = false;        ///< the verdict
  bool decisive = true;      ///< false if the cap was hit (n ≈ T)
  std::uint32_t slots = 0;   ///< single-slot frames consumed
  double llr = 0.0;          ///< final log-likelihood ratio
  rfid::Airtime airtime;
  double time_us = 0.0;
};

/// Runs the SPRT against the context's population.
ThresholdAnswer threshold_query(rfid::ReaderContext& ctx,
                                const ThresholdQuery& query);

}  // namespace bfce::core
