#pragma once
// BFCE — the paper's primary contribution (§IV).

#include <cstdint>
#include <string>

#include "core/analysis.hpp"
#include "core/planner.hpp"
#include "estimators/estimator.hpp"
#include "hash/persistence.hpp"
#include "rfid/frame.hpp"
#include "rfid/reader.hpp"

namespace bfce::core {

/// Tunable parameters of BFCE. Defaults are the paper's published
/// settings; anything else is for the ablation benches.
struct BfceParams {
  std::uint32_t w = 8192;  ///< Bloom vector length (§IV-B)
  std::uint32_t k = 3;     ///< hash functions per tag (§IV-B)
  double c = 0.5;          ///< rough lower-bound coefficient (§IV-C)

  /// Slots observed before truncating the rough-phase frame (§IV-C).
  std::uint32_t rough_prefix = 1024;
  /// Probe window: slots observed per persistence-probe attempt (§IV-C).
  std::uint32_t probe_slots = 32;
  /// Probe start/step numerators over 1024: p_s = 8/1024 initially,
  /// +2/1024 after an all-idle window, −1/1024 after an all-busy one.
  std::uint32_t probe_start_pn = 8;
  std::uint32_t probe_up_step = 2;
  std::uint32_t probe_down_step = 1;
  /// Safety valve on the probe loop (the paper expects "several tests").
  std::uint32_t max_probe_iters = 64;

  /// Tag-side realisation knobs (ablations; paper analysis = ideal).
  rfid::HashScheme hash = rfid::HashScheme::kIdeal;
  hash::PersistenceMode persistence =
      hash::PersistenceMode::kIdealBernoulli;

  /// Broadcast field widths for the airtime ledger (§IV-E.1 uses 32+32).
  std::uint32_t seed_bits = 32;
  std::uint32_t p_bits = 32;

  /// Optional Theorem-4 planner (non-owning; must outlive the
  /// estimator). When set, the p_o selection goes through it — the
  /// estimation service points every BFCE job at one shared memoizing
  /// planner. When null, each estimate runs the plain search.
  PersistencePlanner* planner = nullptr;
};

/// Step-by-step diagnostics of one BFCE run; surfaced by examples and
/// asserted on by tests.
struct BfceTrace {
  std::uint32_t probe_iterations = 0;
  std::uint32_t p_s_numerator = 0;   ///< probe result, p_s = p_s_n/1024
  double rho_rough = 0.0;            ///< idle ratio observed in phase 1
  std::uint32_t rough_slots_observed = 0;  ///< 1024, or extended if degenerate
  double n_rough = 0.0;              ///< n̂_r
  double n_low = 0.0;                ///< c · n̂_r
  PersistenceChoice p_choice;        ///< Theorem 4 search outcome
  double rho_accurate = 0.0;         ///< idle ratio observed in phase 2
  bool rho_clamped = false;          ///< phase-2 bitmap was degenerate
};

/// The Bloom Filter based Cardinality Estimator.
///
/// One call to estimate() runs the full §IV protocol: persistence probe,
/// rough lower-bound phase (1024 bit-slots), Theorem-4 selection of p_o,
/// and the accurate phase (8192 bit-slots), charging every broadcast and
/// bit-slot to the airtime ledger.
class BfceEstimator final : public estimators::CardinalityEstimator {
 public:
  BfceEstimator() = default;
  explicit BfceEstimator(BfceParams params) : params_(params) {}

  std::string name() const override { return "BFCE"; }
  [[nodiscard]] const BfceParams& params() const noexcept { return params_; }

  estimators::EstimateOutcome estimate(
      rfid::ReaderContext& ctx, const estimators::Requirement& req) override;

  /// Like estimate() but also exposes the per-phase trace.
  estimators::EstimateOutcome estimate_traced(
      rfid::ReaderContext& ctx, const estimators::Requirement& req,
      BfceTrace& trace);

 private:
  BfceParams params_;
};

/// Multi-round BFCE: runs the two-phase protocol `rounds` times and
/// averages — the paper's Fig 8 observation that BFCE "offers more
/// accurate estimation after multiple runs" turned into an estimator.
/// Error shrinks ~1/√rounds; airtime grows linearly (each round is the
/// constant ~0.19 s), so this trades the constant-time headline for
/// precision beyond what a single 8192-slot frame can deliver. The
/// reported confidence interval is the empirical CLT interval over the
/// round estimates (for rounds ≥ 2).
class AveragedBfceEstimator final : public estimators::CardinalityEstimator {
 public:
  explicit AveragedBfceEstimator(std::uint32_t rounds = 10,
                                 BfceParams params = {})
      : inner_(params), rounds_(rounds) {}

  std::string name() const override { return "BFCE-avg"; }
  [[nodiscard]] std::uint32_t rounds() const noexcept { return rounds_; }

  estimators::EstimateOutcome estimate(
      rfid::ReaderContext& ctx, const estimators::Requirement& req) override;

 private:
  BfceEstimator inner_;
  std::uint32_t rounds_;
};

}  // namespace bfce::core
