#include "core/authenticate.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hash/mix.hpp"
#include "hash/slot_hash.hpp"
#include "util/bitvector.hpp"

namespace bfce::core {

double AuthConfig::sample_p(double n_expected) const noexcept {
  if (n_expected <= 0.0) return 1.0;
  return std::clamp(target_lambda * static_cast<double>(w) /
                        (static_cast<double>(k) * n_expected),
                    1.0 / 1024.0, 1.0);
}

std::uint32_t AuthConfig::rounds(double n_expected) const noexcept {
  const double p = sample_p(n_expected);
  if (p >= 1.0) return std::min<std::uint32_t>(3, max_rounds);
  const double needed = std::log(coverage_miss) / std::log1p(-p);
  return static_cast<std::uint32_t>(std::clamp(
      std::ceil(needed), 1.0, static_cast<double>(max_rounds)));
}

namespace {

/// Deterministic per-round sampling decision.
bool sampled(std::uint64_t id, std::uint64_t round_seed, double p) {
  if (p >= 1.0) return true;
  const auto threshold = static_cast<std::uint64_t>(
      p * 18446744073709551616.0 /* 2^64 */);
  return hash::mix_with_seed(id, round_seed ^ 0x5A3B1E) < threshold;
}

/// The k slots a tag energises in a round.
void tag_slots(std::uint64_t id, const AuthConfig& cfg,
               std::uint64_t round_seed, std::uint32_t* out) {
  for (std::uint32_t j = 0; j < cfg.k; ++j) {
    out[j] = hash::IdealSlotHash(round_seed * 1315423911ULL + j)
                 .slot(id, cfg.w);
  }
}

}  // namespace

AuthOutcome verify_batch(const rfid::TagPopulation& enrolled,
                         const rfid::TagPopulation& field,
                         const AuthConfig& cfg, const rfid::Channel& channel,
                         util::Xoshiro256ss& rng) {
  assert(cfg.k >= 1 && cfg.k <= 8);
  AuthOutcome out;
  const double n_expected = static_cast<double>(enrolled.size());
  const double p = cfg.sample_p(n_expected);
  out.rounds_used = cfg.rounds(n_expected);

  // Per-tag state: still presumed present, ever sampled, and the
  // accumulated log false-presence probability of its sampled rounds.
  std::vector<bool> alive(enrolled.size(), true);
  std::vector<bool> ever_sampled(enrolled.size(), false);
  std::vector<double> log_fp(enrolled.size(), 0.0);

  std::uint32_t slots[8];
  for (std::uint32_t round = 0; round < out.rounds_used; ++round) {
    const std::uint64_t round_seed = util::derive_seed(cfg.seed, round);

    // Field side: sampled in-range tags answer in all their slots.
    std::vector<std::uint32_t> counts(cfg.w, 0);
    for (const rfid::Tag& tag : field.tags()) {
      if (!sampled(tag.id, round_seed, p)) continue;
      tag_slots(tag.id, cfg, round_seed, slots);
      for (std::uint32_t j = 0; j < cfg.k; ++j) ++counts[slots[j]];
    }
    util::BitVector busy(cfg.w);
    for (std::uint32_t i = 0; i < cfg.w; ++i) {
      if (rfid::is_busy(channel.observe(counts[i], rng))) busy.set(i);
    }
    out.airtime.add_reader_broadcast(static_cast<std::uint64_t>(cfg.k) *
                                         32 +
                                     32 /* sample seed */);
    out.airtime.add_tag_slots(cfg.w);
    const double busy_ratio = static_cast<double>(busy.count_ones()) /
                              static_cast<double>(cfg.w);

    // Back-end side: check the sampled enrolled tags, then find busy
    // slots no presumed-present sampled tag explains.
    util::BitVector explained(cfg.w);
    for (std::size_t t = 0; t < enrolled.size(); ++t) {
      if (!sampled(enrolled[t].id, round_seed, p)) continue;
      ever_sampled[t] = true;
      if (!alive[t]) continue;
      tag_slots(enrolled[t].id, cfg, round_seed, slots);
      bool all_busy = true;
      for (std::uint32_t j = 0; j < cfg.k; ++j) {
        if (!busy.get(slots[j])) {
          all_busy = false;
          break;
        }
      }
      if (!all_busy) {
        alive[t] = false;
      } else {
        log_fp[t] += static_cast<double>(cfg.k) *
                     std::log(std::max(1e-12, busy_ratio));
        for (std::uint32_t j = 0; j < cfg.k; ++j) explained.set(slots[j]);
      }
    }
    for (std::uint32_t i = 0; i < cfg.w; ++i) {
      if (busy.get(i) && !explained.get(i)) ++out.unexplained_busy_slots;
    }
  }

  out.verdicts.resize(enrolled.size());
  double fp_sum = 0.0;
  for (std::size_t t = 0; t < enrolled.size(); ++t) {
    if (!ever_sampled[t]) {
      out.verdicts[t] = AuthVerdict::kUnverified;
      ++out.unverified_count;
    } else if (alive[t]) {
      out.verdicts[t] = AuthVerdict::kPresent;
      ++out.present_count;
      fp_sum += std::exp(log_fp[t]);
    } else {
      out.verdicts[t] = AuthVerdict::kAbsent;
      ++out.absent_count;
    }
  }
  out.false_presence_mean =
      out.present_count == 0
          ? 0.0
          : fp_sum / static_cast<double>(out.present_count);
  return out;
}

}  // namespace bfce::core
