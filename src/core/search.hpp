#pragma once
// Tag searching: which members of a *wanted set* W are present in a
// field full of unrelated tags? (The paper's ref [4], Zheng & Li's
// "fast tag searching", solves exactly this with two-directional Bloom
// filtering — reproduced here on the same substrate.)
//
// Naively the reader polls each wanted ID (a Query/ACK/EPC exchange per
// item). The Bloom approach inverts the flow:
//
//  1. *Downlink filter*: the reader broadcasts a Bloom filter of W
//     (w1 = bits_per_item·|W| bits, k1 hashes). Every field tag tests
//     its own ID; non-members fall silent except for the filter's
//     ~2^-k1 false-positive stragglers.
//  2. *Uplink verification*: the surviving tags answer batch
//     verification rounds (core/authenticate) against the wanted list —
//     absent wanted tags are detected, present ones confirmed, and the
//     straggler non-members show up as unexplained busy slots.
//
// Cost: one w1-bit broadcast + a few 8192-slot rounds, versus
// |W| round-trip exchanges for polling — the searching tests quantify
// the crossover.

#include <cstdint>
#include <vector>

#include "core/authenticate.hpp"
#include "rfid/channel.hpp"
#include "rfid/population.hpp"
#include "util/rng.hpp"

namespace bfce::core {

struct SearchConfig {
  /// Downlink Bloom filter density: w1 = bits_per_item·|W|. 16 bits/item
  /// with the optimal hash count gives ~0.05% false positives.
  std::uint32_t bits_per_item = 16;
  /// Downlink hash count; 0 ⇒ the optimal ⌊bits_per_item·ln 2⌋.
  std::uint32_t filter_hashes = 0;
  std::uint64_t filter_seed = 0x5EA2C4ULL;
  /// Uplink verification parameters (rounds/sampling auto-tuned to |W|).
  AuthConfig verify{};
};

struct SearchOutcome {
  /// Aligned with the wanted list (same semantics as batch verification).
  std::vector<AuthVerdict> verdicts;
  std::size_t found_count = 0;
  std::size_t missing_count = 0;
  std::size_t unverified_count = 0;
  /// Field non-members that slipped through the downlink filter.
  std::size_t filter_false_positives = 0;
  /// Unexplained busy slots in the uplink rounds (the stragglers'
  /// fingerprint).
  std::uint64_t unexplained_busy_slots = 0;
  rfid::Airtime airtime;  ///< downlink broadcast + uplink rounds
};

/// Number of downlink hashes actually used for a config.
std::uint32_t search_filter_hashes(const SearchConfig& cfg) noexcept;

/// True iff `id` passes the downlink Bloom filter built over `w1` bits.
/// Exposed for tests; tags evaluate exactly this on air.
bool passes_search_filter(std::uint64_t id,
                          const std::vector<std::uint64_t>& wanted_ids,
                          const SearchConfig& cfg);

/// Runs the two-stage search. `wanted` is the reader's search list;
/// `field` is everything in range.
SearchOutcome search_tags(const rfid::TagPopulation& wanted,
                          const rfid::TagPopulation& field,
                          const SearchConfig& cfg,
                          const rfid::Channel& channel,
                          util::Xoshiro256ss& rng);

/// Airtime of naively polling each wanted ID (Query + RN16 + ACK + EPC
/// per item) — the baseline the Bloom search beats.
rfid::Airtime polling_cost(std::size_t wanted_count);

}  // namespace bfce::core
