#pragma once
// Batch presence verification (access control / anti-counterfeiting).
//
// The paper's introduction motivates cardinality estimation with access
// control and batch authentication (its refs [1][2], Gong et al.'s
// "informative/wise counting"). The underlying primitive is implemented
// here on the same Bloom machinery: the back-end *knows the enrolled ID
// list*, so the reader can predict exactly which slots each enrolled tag
// would energise and verify the whole batch from busy/idle bitmaps.
//
// Density control is the crux: if every tag answered every round the
// bitmap would saturate (busy ratio → 1) and absent tags would hide
// under collision cover. Each round therefore *deterministically
// samples* a fraction p of the ID space (hash(id, round) < p), tuned so
// the per-round load k·p·n/w sits near 1; the round count is chosen so
// that an enrolled tag is sampled at least once with probability
// ≥ 1 − coverage_miss.
//
//  * a sampled tag with an idle slot is **absent** — zero error on a
//    perfect channel (a present sampled tag energises all its slots);
//  * a tag whose slots were all busy in every sampled round is
//    **present**, with false-presence probability ≈ Π busy_r^k over its
//    sampled rounds (reported as `false_presence_mean`);
//  * a tag never sampled is **unverified** (probability ≤ coverage_miss);
//  * busy slots no present enrolled tag explains are **intruder
//    evidence**.
//
// Cost: rounds × w bit-slots ≈ O(k·n/λ) one-bit slots — still 50–100×
// cheaper than an EPC inventory of the batch (see authenticate tests).

#include <cstdint>
#include <vector>

#include "rfid/channel.hpp"
#include "rfid/population.hpp"
#include "rfid/timing.hpp"
#include "util/rng.hpp"

namespace bfce::core {

struct AuthConfig {
  std::uint32_t w = 8192;
  std::uint32_t k = 3;
  double target_lambda = 1.1;   ///< per-round load the sampling aims for
  double coverage_miss = 0.01;  ///< Pr{an enrolled tag is never sampled}
  std::uint32_t max_rounds = 256;
  std::uint64_t seed = 0xA07E47ULL;  ///< round seeds derive from this

  /// Per-round sampling probability and round count for an expected
  /// batch size (clamped to [1/1024, 1] and [1, max_rounds]).
  double sample_p(double n_expected) const noexcept;
  std::uint32_t rounds(double n_expected) const noexcept;
};

/// Per-tag verdict.
enum class AuthVerdict : std::uint8_t {
  kPresent,
  kAbsent,
  kUnverified,  ///< never sampled (probability ≤ coverage_miss)
};

/// Verdict for the whole batch.
struct AuthOutcome {
  std::vector<AuthVerdict> verdicts;  ///< aligned with the enrolled list
  std::size_t present_count = 0;
  std::size_t absent_count = 0;
  std::size_t unverified_count = 0;
  /// Busy slots (summed over rounds) that no presumed-present enrolled
  /// tag explains — nonzero indicates foreign/counterfeit transmitters.
  std::uint64_t unexplained_busy_slots = 0;
  /// Mean over verified tags of Π busy_r^k (their residual probability
  /// of being a false "present").
  double false_presence_mean = 0.0;
  std::uint32_t rounds_used = 0;
  rfid::Airtime airtime;
};

/// Runs batch verification: `enrolled` is the back-end's ID list;
/// `field` is who is actually in range (may contain intruders that are
/// not enrolled). Sampling/rounds are tuned from the enrolled size.
/// Deterministic given cfg.seed; `rng` only drives the channel errors.
AuthOutcome verify_batch(const rfid::TagPopulation& enrolled,
                         const rfid::TagPopulation& field,
                         const AuthConfig& cfg, const rfid::Channel& channel,
                         util::Xoshiro256ss& rng);

}  // namespace bfce::core
