#include "core/threshold.hpp"

#include <algorithm>
#include <cmath>

namespace bfce::core {

ThresholdAnswer threshold_query(rfid::ReaderContext& ctx,
                                const ThresholdQuery& query) {
  ThresholdAnswer ans;
  const double t = std::max(1.0, query.threshold);
  const double q = std::min(1.0, 1.594 / t);

  // Busy probabilities under the two hypotheses.
  const double p_low =
      1.0 - std::exp(-q * t / query.gamma);  // n = T/γ
  const double p_high =
      1.0 - std::exp(-q * t * query.gamma);  // n = T·γ
  const double llr_busy = std::log(p_high / p_low);
  const double llr_idle = std::log((1.0 - p_high) / (1.0 - p_low));

  // Wald's boundaries.
  const double upper = std::log((1.0 - query.beta) / query.alpha);
  const double lower = std::log(query.beta / (1.0 - query.alpha));

  double llr = 0.0;
  while (ans.slots < query.max_slots) {
    const std::uint64_t seed = ctx.next_seed();
    const rfid::SlotState s =
        ctx.mode() == rfid::FrameMode::kExact
            ? rfid::run_single_slot(ctx.tags(), q, seed, ctx.channel(),
                                    ctx.rng(), &ans.airtime.tag_tx_bits)
            : rfid::sampled_single_slot(ctx.tags().size(), q,
                                        ctx.channel(), ctx.rng(),
                                        &ans.airtime.tag_tx_bits);
    ans.airtime.add_reader_broadcast(query.seed_bits);
    ans.airtime.add_tag_slots(1);
    ++ans.slots;
    llr += rfid::is_busy(s) ? llr_busy : llr_idle;
    if (llr >= upper) {
      ans.above = true;
      break;
    }
    if (llr <= lower) {
      ans.above = false;
      break;
    }
  }
  if (llr < upper && llr > lower) {
    // Cap hit: n is inside the indifference band; report the lean.
    ans.decisive = false;
    ans.above = llr > 0.0;
  }
  ans.llr = llr;
  ans.time_us = ans.airtime.total_us(ctx.timing());
  return ans;
}

}  // namespace bfce::core
