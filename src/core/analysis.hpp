#pragma once
// The closed-form machinery behind BFCE (Theorems 1-4 of the paper).
//
// All functions here are pure: they let the reader choose parameters and
// invert observations without touching the simulator, and they are what
// the analytical benches (Fig 4, Fig 5) evaluate directly.

#include <cstdint>
#include <optional>

namespace bfce::core {

/// λ = k·p·n / w — the per-slot load of Theorem 1.
double slot_load(double n, std::uint32_t w, std::uint32_t k, double p);

/// Pr{B(i) = 1} = e^{−λ}: probability a slot stays idle (Theorem 1).
double idle_probability(double lambda);

/// σ(X) = √(e^{−λ}(1 − e^{−λ})): per-slot Bernoulli deviation.
double sigma_x(double lambda);

/// Theorem 2's inversion: n̂ = −w·ln(ρ̄)/(k·p).
/// Precondition: 0 < rho < 1 (callers must handle the degenerate all-0 /
/// all-1 bitmaps before inverting).
double estimate_from_rho(double rho, std::uint32_t w, std::uint32_t k,
                         double p);

/// f1 of Theorem 3: standardised distance of the lower accuracy edge.
/// f1 = (e^{−λ(1+ε)} − e^{−λ}) / (σ(X)/√w); decreasing in n for small p.
double f1(double n, std::uint32_t w, std::uint32_t k, double p, double eps);

/// f2 of Theorem 3: standardised distance of the upper accuracy edge.
/// f2 = (e^{−λ(1−ε)} − e^{−λ}) / (σ(X)/√w); increasing in n for small p.
double f2(double n, std::uint32_t w, std::uint32_t k, double p, double eps);

/// Outcome of the Theorem 4 persistence-probability search.
struct PersistenceChoice {
  std::uint32_t p_n = 0;   ///< numerator: p = p_n / 1024
  double p = 0.0;          ///< the probability itself
  bool satisfies = false;  ///< true iff f1 ≤ −d and f2 ≥ d at n_low
  double margin = 0.0;     ///< min(−f1, f2) − d (≥ 0 iff satisfies)

  /// Exact (bit-pattern) equality; makes PlannerEntry comparable for
  /// snapshot round-trip checks.
  bool operator==(const PersistenceChoice&) const = default;
};

/// Finds the minimal p = p_n/1024 (p_n ∈ [1, 1023]) satisfying Theorem 4's
/// conditions at the rough lower bound `n_low`. When no grid point
/// satisfies them (tiny populations), returns the margin-maximising p with
/// `satisfies == false` so the caller can proceed on a best-effort basis.
/// (Thin wrapper over PersistencePlanner::search — see core/planner.hpp
/// for the memoizing front end a service shares across workers.)
PersistenceChoice find_persistence(double n_low, std::uint32_t w,
                                   std::uint32_t k, double eps, double delta);

/// γ = −ln(ρ̄)/(k·p) scalability envelope of §IV-B / Fig 4, evaluated on
/// the paper's {1/1024, …, 1023/1024} grid for both p and ρ̄.
struct GammaBounds {
  double min = 0.0;  ///< paper: 0.000326 for k = 3
  double max = 0.0;  ///< paper: 2365.9 for k = 3
  double p_at_min = 0.0, rho_at_min = 0.0;
  double p_at_max = 0.0, rho_at_max = 0.0;

  /// Maximum estimable cardinality, max·w (paper: > 19 million).
  double max_cardinality(std::uint32_t w) const {
    return max * static_cast<double>(w);
  }
};

/// Scans the grid and returns the γ envelope for `k` hash functions.
GammaBounds gamma_bounds(std::uint32_t k, std::uint32_t grid = 1024);

/// CLT prediction for the relative standard deviation of n̂ at true
/// cardinality n: delta-method through Theorem 2's inversion gives
///     sd(n̂)/n = σ(X) / (√w · λ · e^{−λ}),   λ = k·p·n/w.
/// This is what the accurate phase's p_o search implicitly bounds; the
/// variance-validation bench compares it against measurement.
double predicted_relative_sd(double n, std::uint32_t w, std::uint32_t k,
                             double p);

/// Two-sided confidence interval for n from one observed idle ratio.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Inverts ρ̄ ± d·√(ρ̄(1−ρ̄)/w) through Theorem 2 (ρ̄ is decreasing in n,
/// so the upper ρ edge gives the lower n edge). `delta` is the error
/// probability; preconditions as for estimate_from_rho.
ConfidenceInterval interval_from_rho(double rho, std::uint32_t w,
                                     std::uint32_t k, double p,
                                     double delta);

}  // namespace bfce::core
