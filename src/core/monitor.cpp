#include "core/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "math/erf.hpp"

namespace bfce::core {

std::string render_engine_counters(const rfid::EngineCounters& counters) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-8s %14s %16s %16s %12s\n", "shape",
                "frames", "slots", "tag_tx", "wall_ms");
  out += line;
  const auto row = [&](const char* label, const rfid::ShapeCounters& c) {
    std::snprintf(line, sizeof(line),
                  "%-8s %14llu %16llu %16llu %12.2f\n", label,
                  static_cast<unsigned long long>(c.frames),
                  static_cast<unsigned long long>(c.slots),
                  static_cast<unsigned long long>(c.tag_tx),
                  c.wall_us / 1000.0);
    out += line;
  };
  for (std::size_t i = 0; i < rfid::kFrameShapeCount; ++i) {
    const auto shape = static_cast<rfid::FrameShape>(i);
    const rfid::ShapeCounters& c = counters.of(shape);
    if (c.frames == 0) continue;  // don't print shapes that never ran
    row(rfid::to_cstring(shape), c);
  }
  row("total", counters.total());
  std::snprintf(line, sizeof(line),
                "batches: %llu (%llu via the blocked population walk, "
                "%llu sharded walks)\n",
                static_cast<unsigned long long>(counters.batches),
                static_cast<unsigned long long>(counters.blocked_batches),
                static_cast<unsigned long long>(counters.sharded_walks));
  out += line;
  return out;
}

MonitorReading CardinalityMonitor::update(
    estimators::CardinalityEstimator& estimator, rfid::ReaderContext& ctx) {
  const estimators::EstimateOutcome out =
      estimator.estimate(ctx, params_.req);
  return ingest(out.n_hat, out.airtime.total_seconds(ctx.timing()));
}

MonitorReading CardinalityMonitor::ingest(double n_hat, double time_s) {
  MonitorReading r;
  r.n_hat = n_hat;
  r.time_s = time_s;

  if (!primed_) {
    primed_ = true;
    level_ = n_hat;
    r.level = level_;
    return r;  // first reading only establishes the baseline
  }

  // One (ε, δ) estimate has sd ≈ ε·n/d: the contract bounds the
  // d-sigma half-width by ε·n, so ε·n/d is the per-reading noise unit.
  const double d = math::confidence_d(params_.req.delta);
  const double sd =
      std::max(1.0, params_.req.epsilon * std::max(level_, 1.0) / d);
  const double z = (n_hat - level_) / sd;
  r.innovation_sd = sd;

  cusum_high_ = std::max(0.0, cusum_high_ + z - params_.cusum_k);
  cusum_low_ = std::max(0.0, cusum_low_ - z - params_.cusum_k);
  r.cusum_high = cusum_high_;
  r.cusum_low = cusum_low_;
  r.gain_alarm = cusum_high_ > params_.cusum_h;
  r.loss_alarm = cusum_low_ > params_.cusum_h;

  if (r.gain_alarm || r.loss_alarm) {
    // Re-anchor on the new level; accumulators restart.
    level_ = n_hat;
    cusum_high_ = 0.0;
    cusum_low_ = 0.0;
  } else {
    level_ += params_.alpha * (n_hat - level_);
  }
  r.level = level_;
  return r;
}

void CardinalityMonitor::reset() noexcept {
  primed_ = false;
  level_ = 0.0;
  cusum_low_ = 0.0;
  cusum_high_ = 0.0;
}

}  // namespace bfce::core
