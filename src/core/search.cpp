#include "core/search.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hash/slot_hash.hpp"
#include "util/bitvector.hpp"

namespace bfce::core {

namespace {

std::uint32_t filter_width(const SearchConfig& cfg,
                           std::size_t wanted_count) {
  return std::max<std::uint32_t>(
      64, cfg.bits_per_item *
              static_cast<std::uint32_t>(std::max<std::size_t>(
                  1, wanted_count)));
}

util::BitVector build_filter(const std::vector<std::uint64_t>& wanted_ids,
                             const SearchConfig& cfg) {
  const std::uint32_t w1 = filter_width(cfg, wanted_ids.size());
  const std::uint32_t k1 = search_filter_hashes(cfg);
  util::BitVector filter(w1);
  for (const std::uint64_t id : wanted_ids) {
    for (std::uint32_t j = 0; j < k1; ++j) {
      filter.set(
          hash::IdealSlotHash(cfg.filter_seed + j).slot(id, w1));
    }
  }
  return filter;
}

bool test_filter(std::uint64_t id, const util::BitVector& filter,
                 const SearchConfig& cfg) {
  const auto w1 = static_cast<std::uint32_t>(filter.size());
  const std::uint32_t k1 = search_filter_hashes(cfg);
  for (std::uint32_t j = 0; j < k1; ++j) {
    if (!filter.get(
            hash::IdealSlotHash(cfg.filter_seed + j).slot(id, w1))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::uint32_t search_filter_hashes(const SearchConfig& cfg) noexcept {
  if (cfg.filter_hashes != 0) return cfg.filter_hashes;
  const auto optimal = static_cast<std::uint32_t>(
      static_cast<double>(cfg.bits_per_item) * 0.6931471805599453);
  return std::clamp<std::uint32_t>(optimal, 1, 16);
}

bool passes_search_filter(std::uint64_t id,
                          const std::vector<std::uint64_t>& wanted_ids,
                          const SearchConfig& cfg) {
  return test_filter(id, build_filter(wanted_ids, cfg), cfg);
}

SearchOutcome search_tags(const rfid::TagPopulation& wanted,
                          const rfid::TagPopulation& field,
                          const SearchConfig& cfg,
                          const rfid::Channel& channel,
                          util::Xoshiro256ss& rng) {
  SearchOutcome out;

  // Stage 1: downlink filter broadcast + on-tag membership test.
  std::vector<std::uint64_t> wanted_ids;
  wanted_ids.reserve(wanted.size());
  for (const rfid::Tag& t : wanted.tags()) wanted_ids.push_back(t.id);
  const util::BitVector filter = build_filter(wanted_ids, cfg);
  out.airtime.add_reader_broadcast(filter.size());

  std::vector<rfid::Tag> survivors;
  for (const rfid::Tag& tag : field.tags()) {
    if (!test_filter(tag.id, filter, cfg)) continue;
    survivors.push_back(tag);
    if (std::find(wanted_ids.begin(), wanted_ids.end(), tag.id) ==
        wanted_ids.end()) {
      ++out.filter_false_positives;
    }
  }
  const rfid::TagPopulation reduced{std::move(survivors)};

  // Stage 2: uplink batch verification of the wanted list against the
  // surviving responders.
  AuthConfig verify_cfg = cfg.verify;
  const AuthOutcome verified =
      verify_batch(wanted, reduced, verify_cfg, channel, rng);
  out.verdicts = verified.verdicts;
  out.found_count = verified.present_count;
  out.missing_count = verified.absent_count;
  out.unverified_count = verified.unverified_count;
  out.unexplained_busy_slots = verified.unexplained_busy_slots;
  out.airtime += verified.airtime;
  return out;
}

rfid::Airtime polling_cost(std::size_t wanted_count) {
  // Per wanted ID: a targeted Query carrying the 50-bit ID (+ command
  // overhead), the tag's RN16, the ACK and the EPC backscatter — the
  // same exchange costs as the identification module.
  rfid::Airtime a;
  for (std::size_t i = 0; i < wanted_count; ++i) {
    a.add_reader_broadcast(22 + 50);  // Query + ID mask
    a.add_tag_slots(16);              // RN16
    a.add_reader_broadcast(18);       // ACK
    a.add_tag_slots(128);             // PC + EPC + CRC
  }
  return a;
}

}  // namespace bfce::core
