#pragma once
// Theorem-4 persistence planning as a standalone, shareable component.
//
// BFCE's accurate phase needs the minimal persistence probability
// p_o = p_n/1024 whose CLT edge functions satisfy Theorem 3 at the rough
// lower bound n̂_low. The search scans up to 1023 grid candidates with
// erfinv-based bounds per candidate — cheap for one estimate, but a
// fleet serving millions of requests repeats the *same* search over and
// over: n̂_low is a discrete function of (busy count, p_s) and the
// (ε, δ, w, k) mix of a deployment is small. PersistencePlanner keeps
// the search as a pure static function (bit-identical to the historical
// in-estimator loop) and layers a thread-safe memo cache on top, keyed
// on (bucketed n̂_low, ε, δ, w, k).
//
// Contract: choose() returns exactly search(bucket(n_low), w, k, ε, δ),
// whether the answer came from the cache or from a fresh scan — the
// bucketing happens *before* the search in both paths, so caching can
// never change an estimate. With the default exact bucketing,
// bucket(n_low) == n_low and choose() is bit-identical to the legacy
// find_persistence().

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/analysis.hpp"

namespace bfce::core {

/// One memoized Theorem-4 search result, in exportable form: the key's
/// raw bit patterns plus the cached choice. The service snapshot
/// (service/snapshot.hpp) persists these so a restored service starts
/// with the same warm cache — and therefore the same hit pattern — as
/// the service it replaces.
struct PlannerEntry {
  std::uint64_t n_low_bits = 0;  ///< bucketed n̂_low, by bit pattern
  std::uint32_t w = 0;
  std::uint32_t k = 0;
  std::uint64_t eps_bits = 0;    ///< ε by bit pattern
  std::uint64_t delta_bits = 0;  ///< δ by bit pattern
  PersistenceChoice choice;

  bool operator==(const PlannerEntry&) const = default;
};

/// Snapshot of the planner cache's effectiveness counters.
struct PlannerCacheStats {
  std::uint64_t hits = 0;    ///< lookups answered from the cache
  std::uint64_t misses = 0;  ///< lookups that ran the full search
  std::size_t entries = 0;   ///< distinct keys currently stored

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Memoizing front end to the Theorem-4 p_o search. Thread-safe: one
/// instance may be shared by every worker of an estimation service
/// (lookups take a shared lock; only a miss takes the exclusive one).
class PersistencePlanner {
 public:
  struct Options {
    /// false ⇒ every choose() runs the search (still counted as a miss);
    /// useful for cache-on/off equivalence checks.
    bool cache = true;
    /// Mantissa bits of n̂_low kept when forming the bucket. 52 (the
    /// full double mantissa) means exact keys; smaller values coarsen
    /// the key grid — the searched value is coarsened identically, so
    /// results remain a pure function of the key.
    std::uint32_t n_low_mantissa_bits = 52;
    /// Insertion stops once the table holds this many entries (lookups
    /// and correctness are unaffected; further misses just stay cold).
    std::size_t max_entries = std::size_t{1} << 20;
  };

  PersistencePlanner() = default;
  explicit PersistencePlanner(Options options);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The raw Theorem-4 search over p_n ∈ [1, 1023] — the single
  /// implementation behind the free find_persistence(), bit-identical
  /// to the loop that used to live inside BfceEstimator.
  static PersistenceChoice search(double n_low, std::uint32_t w,
                                  std::uint32_t k, double eps, double delta);

  /// n̂_low with its low mantissa bits cleared per the options (identity
  /// at the default 52 bits).
  double bucket(double n_low) const noexcept;

  /// Memoized search: exactly search(bucket(n_low), w, k, eps, delta).
  PersistenceChoice choose(double n_low, std::uint32_t w, std::uint32_t k,
                           double eps, double delta);

  PlannerCacheStats stats() const;

  /// Drops every cached entry and zeroes the hit/miss counters.
  void clear();

  /// The cache contents in a deterministic order (sorted by key), for
  /// snapshotting. Hit/miss counters are telemetry, not state, and are
  /// deliberately not exported.
  std::vector<PlannerEntry> export_entries() const;

  /// Seeds the cache with `entries` (existing keys win; insertion stops
  /// at max_entries, exactly like a miss). Returns the number actually
  /// inserted. Imported entries are served as ordinary hits; because
  /// choose() is a pure function of the key, a snapshot taken from any
  /// planner seeds bit-identical answers.
  std::size_t import_entries(const std::vector<PlannerEntry>& entries);

 private:
  struct Key {
    std::uint64_t n_low_bits = 0;
    std::uint32_t w = 0;
    std::uint32_t k = 0;
    std::uint64_t eps_bits = 0;
    std::uint64_t delta_bits = 0;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  // ---- Locking discipline (hammered by tests/race_stress_test.cpp
  // under the tsan preset) ---------------------------------------------
  //
  //  * mutex_ is a strict leaf: no other lock is ever acquired while it
  //    is held, and choose()/stats()/clear() never call out under it —
  //    the search runs before the exclusive lock is taken.
  //  * A miss is double-checked by design: two threads may both run the
  //    search for the same key and race to insert; the loser's value is
  //    dropped. Benign because search() is a pure function of the key,
  //    so both values are bit-identical.
  //  * hits_/misses_ are atomics so the read path can count under the
  //    shared lock; they are monotone telemetry, not invariants.
  Options options_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<Key, PersistenceChoice, KeyHash> cache_;
  // Atomic so hits can be counted under the shared (reader) lock.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace bfce::core
