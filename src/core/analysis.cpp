#include "core/analysis.hpp"

#include <cassert>
#include <cmath>

#include "core/planner.hpp"
#include "math/erf.hpp"

namespace bfce::core {

double slot_load(double n, std::uint32_t w, std::uint32_t k, double p) {
  assert(w > 0 && k > 0);
  return static_cast<double>(k) * p * n / static_cast<double>(w);
}

double idle_probability(double lambda) { return std::exp(-lambda); }

double sigma_x(double lambda) {
  const double e = std::exp(-lambda);
  return std::sqrt(e * (1.0 - e));
}

double estimate_from_rho(double rho, std::uint32_t w, std::uint32_t k,
                         double p) {
  assert(rho > 0.0 && rho < 1.0);
  assert(p > 0.0);
  return -static_cast<double>(w) * std::log(rho) /
         (static_cast<double>(k) * p);
}

namespace {

/// Shared kernel of f1/f2: (e^{−λ(1+s·ε)} − e^{−λ}) · √w / σ(X).
double f_edge(double n, std::uint32_t w, std::uint32_t k, double p,
              double eps, double sign) {
  const double lambda = slot_load(n, w, k, p);
  const double sigma = sigma_x(lambda);
  if (sigma == 0.0) {
    // λ = 0 (empty system) or λ = ∞ (saturated): the CLT edge degenerates.
    return 0.0;
  }
  return (std::exp(-lambda * (1.0 + sign * eps)) - std::exp(-lambda)) *
         std::sqrt(static_cast<double>(w)) / sigma;
}

}  // namespace

double f1(double n, std::uint32_t w, std::uint32_t k, double p, double eps) {
  return f_edge(n, w, k, p, eps, +1.0);
}

double f2(double n, std::uint32_t w, std::uint32_t k, double p, double eps) {
  return f_edge(n, w, k, p, eps, -1.0);
}

PersistenceChoice find_persistence(double n_low, std::uint32_t w,
                                   std::uint32_t k, double eps, double delta) {
  return PersistencePlanner::search(n_low, w, k, eps, delta);
}

double predicted_relative_sd(double n, std::uint32_t w, std::uint32_t k,
                             double p) {
  const double lambda = slot_load(n, w, k, p);
  if (lambda <= 0.0) return 0.0;
  return sigma_x(lambda) /
         (std::sqrt(static_cast<double>(w)) * lambda * std::exp(-lambda));
}

ConfidenceInterval interval_from_rho(double rho, std::uint32_t w,
                                     std::uint32_t k, double p,
                                     double delta) {
  assert(rho > 0.0 && rho < 1.0);
  const double d = math::confidence_d(delta);
  const double half_width =
      d * std::sqrt(rho * (1.0 - rho) / static_cast<double>(w));
  const double floor_rho = 1.0 / (2.0 * static_cast<double>(w));
  const double rho_hi =
      std::fmin(rho + half_width, 1.0 - floor_rho);  // → n lower edge
  const double rho_lo = std::fmax(rho - half_width, floor_rho);  // → upper
  ConfidenceInterval ci;
  ci.lo = estimate_from_rho(rho_hi, w, k, p);
  ci.hi = estimate_from_rho(rho_lo, w, k, p);
  return ci;
}

GammaBounds gamma_bounds(std::uint32_t k, std::uint32_t grid) {
  assert(k > 0 && grid > 1);
  GammaBounds b;
  bool first = true;
  for (std::uint32_t i = 1; i < grid; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(grid);
    for (std::uint32_t j = 1; j < grid; ++j) {
      const double rho = static_cast<double>(j) / static_cast<double>(grid);
      const double gamma = -std::log(rho) / (static_cast<double>(k) * p);
      if (first || gamma < b.min) {
        b.min = gamma;
        b.p_at_min = p;
        b.rho_at_min = rho;
      }
      if (first || gamma > b.max) {
        b.max = gamma;
        b.p_at_max = p;
        b.rho_at_max = rho;
      }
      first = false;
    }
  }
  return b;
}

}  // namespace bfce::core
