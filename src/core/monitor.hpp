#pragma once
// Continuous cardinality monitoring — the applied layer on top of BFCE
// that the paper's inventory-management motivation implies but never
// spells out.
//
// A monitor wraps repeated (ε, δ) estimates into a time series and
// answers the operational question: *did the population actually
// change, or is this estimation noise?* Noise is quantified by the
// estimator's own contract (one (ε, δ) estimate has sd ≈ ε·n/d), so the
// monitor can run a two-sided CUSUM on standardised innovations —
// catching both sudden steps (a pallet walked out) and slow drifts
// (trickle shrinkage) that per-reading thresholds miss.

#include <cstdint>
#include <string>

#include "estimators/estimator.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/reader.hpp"

namespace bfce::core {

/// Renders FrameEngine execution counters as an aligned, human-readable
/// table: one row per frame shape (frames executed, slots simulated, tag
/// transmissions, host wall-clock), a totals row, and the batch
/// statistics. Benches print this after their sweeps so "what did the
/// simulator actually do?" ships with every figure.
std::string render_engine_counters(const rfid::EngineCounters& counters);

struct MonitorParams {
  estimators::Requirement req{0.05, 0.05};
  /// EWMA smoothing factor for the baseline level (0 < alpha ≤ 1).
  double alpha = 0.3;
  /// CUSUM reference value (drift allowance) in sd units; changes
  /// smaller than k·sd per reading accumulate slowly.
  double cusum_k = 0.5;
  /// CUSUM decision threshold in sd units; ~5 gives a low false-alarm
  /// rate at the cost of detecting a 1-sd step in ~10 readings.
  double cusum_h = 5.0;
};

/// One monitoring step's output.
struct MonitorReading {
  double n_hat = 0.0;       ///< raw estimate of this round
  double level = 0.0;       ///< EWMA-smoothed population level
  double innovation_sd = 0.0;  ///< the sd unit used for standardisation
  double cusum_low = 0.0;   ///< downward (loss) accumulator, ≥ 0
  double cusum_high = 0.0;  ///< upward (gain) accumulator, ≥ 0
  bool loss_alarm = false;  ///< population dropped beyond noise
  bool gain_alarm = false;  ///< population grew beyond noise
  double time_s = 0.0;      ///< airtime of this round
};

/// Sequential change detector over repeated estimates.
///
/// Feed it one estimate per monitoring period via update(); it keeps the
/// EWMA level and the two CUSUM accumulators, resetting them after an
/// alarm (the caller is expected to reconcile the books, as the
/// warehouse example does).
class CardinalityMonitor {
 public:
  explicit CardinalityMonitor(MonitorParams params = {})
      : params_(params) {}

  [[nodiscard]] const MonitorParams& params() const noexcept { return params_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }
  [[nodiscard]] double level() const noexcept { return level_; }

  /// Runs one estimation against `ctx` with `estimator` and folds it
  /// into the change statistics.
  MonitorReading update(estimators::CardinalityEstimator& estimator,
                        rfid::ReaderContext& ctx);

  /// Folds an externally produced estimate (useful for tests and for
  /// replaying logged readings).
  MonitorReading ingest(double n_hat, double time_s = 0.0);

  /// Clears level and accumulators (e.g. after a physical recount).
  void reset() noexcept;

 private:
  MonitorParams params_;
  bool primed_ = false;
  double level_ = 0.0;
  double cusum_low_ = 0.0;
  double cusum_high_ = 0.0;
};

}  // namespace bfce::core
