#pragma once
// Monte-Carlo experiment harness: runs an estimator repeatedly against a
// population and aggregates the paper's metrics.
//
// Determinism contract: trial t uses the RNG stream derived from
// (config.seed, t), so results are bit-identical for any thread count.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "estimators/estimator.hpp"
#include "math/stats.hpp"
#include "rfid/channel.hpp"
#include "rfid/frame.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/population.hpp"
#include "rfid/timing.hpp"

namespace bfce::sim {

/// Everything that parameterises a batch of trials.
struct ExperimentConfig {
  std::size_t trials = 20;
  estimators::Requirement req{};
  rfid::FrameMode mode = rfid::FrameMode::kExact;
  rfid::ChannelModel channel{};
  rfid::TimingModel timing{};
  std::uint64_t seed = 20150701;  ///< master seed; trial t uses stream t
  unsigned threads = 0;           ///< 0 ⇒ util::default_thread_count()
  /// Per-trial FrameEngine policy. The sharded pipeline — the exact
  /// plan/render/reduce walk and the sampled batched sampler alike — is
  /// bit-identical for any shard count, so this composes with
  /// trial-level parallelism without weakening the determinism contract
  /// above.
  rfid::ExecutionPolicy engine_policy{};
};

/// One trial's outcome, reduced to the metrics the figures report.
struct TrialRecord {
  double n_hat = 0.0;
  double accuracy = 0.0;  ///< |n̂ − n|/n, the paper's §V-A metric
  double time_s = 0.0;    ///< protocol execution time under the C1G2 model
  std::uint32_t rounds = 0;
  bool met_by_design = true;
  /// This trial's FrameEngine counters (frames executed, slots
  /// simulated, tag transmissions, host wall-clock) — pure
  /// instrumentation, never part of the estimate.
  rfid::EngineCounters counters;
};

/// Aggregate over a batch of trials.
struct ExperimentSummary {
  math::Summary accuracy;
  math::Summary time_s;
  /// Fraction of trials whose relative error exceeded ε — the empirical
  /// δ. The requirement holds iff this is ≤ δ (up to sampling noise).
  double violation_rate = 0.0;
  /// 95% Wilson interval around violation_rate; the requirement is
  /// statistically rejected only when violation_ci_lo > δ.
  double violation_ci_lo = 0.0;
  double violation_ci_hi = 1.0;
  std::size_t trials = 0;
  /// Engine counters summed over all trials (what was actually simulated
  /// to produce this summary); benches print them via core/monitor.
  rfid::EngineCounters counters;
};

/// Builds a fresh estimator per trial (estimators are cheap to construct;
/// a fresh instance per trial keeps the parallel runner trivially safe).
using EstimatorFactory =
    std::function<std::unique_ptr<estimators::CardinalityEstimator>()>;

/// Runs `config.trials` independent estimations of `population`.
std::vector<TrialRecord> run_experiment(const rfid::TagPopulation& population,
                                        const EstimatorFactory& factory,
                                        const ExperimentConfig& config);

/// Aggregates records against the true cardinality and ε.
ExperimentSummary summarize_records(const std::vector<TrialRecord>& records,
                                    double epsilon);

}  // namespace bfce::sim
