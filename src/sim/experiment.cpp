#include "sim/experiment.hpp"

#include "math/hypothesis.hpp"
#include "rfid/reader.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bfce::sim {

std::vector<TrialRecord> run_experiment(const rfid::TagPopulation& population,
                                        const EstimatorFactory& factory,
                                        const ExperimentConfig& config) {
  std::vector<TrialRecord> records(config.trials);
  const auto true_n = static_cast<double>(population.size());

  util::parallel_for(
      0, config.trials,
      [&](std::size_t t) {
        rfid::ReaderContext ctx(population,
                                util::derive_seed(config.seed, t),
                                config.mode, config.channel, config.timing,
                                config.engine_policy);
        const auto estimator = factory();
        const estimators::EstimateOutcome outcome =
            estimator->estimate(ctx, config.req);
        TrialRecord rec;
        rec.n_hat = outcome.n_hat;
        rec.accuracy = outcome.relative_error(true_n);
        rec.time_s = outcome.airtime.total_seconds(config.timing);
        rec.rounds = outcome.rounds;
        rec.met_by_design = outcome.met_by_design;
        rec.counters = ctx.engine().counters();
        records[t] = rec;
      },
      config.threads);
  return records;
}

ExperimentSummary summarize_records(const std::vector<TrialRecord>& records,
                                    double epsilon) {
  ExperimentSummary s;
  s.trials = records.size();
  std::vector<double> accuracy;
  std::vector<double> time_s;
  accuracy.reserve(records.size());
  time_s.reserve(records.size());
  std::size_t violations = 0;
  for (const TrialRecord& r : records) {
    accuracy.push_back(r.accuracy);
    time_s.push_back(r.time_s);
    if (r.accuracy > epsilon) ++violations;
    s.counters += r.counters;
  }
  s.accuracy = math::summarize(std::move(accuracy));
  s.time_s = math::summarize(std::move(time_s));
  s.violation_rate = records.empty()
                         ? 0.0
                         : static_cast<double>(violations) /
                               static_cast<double>(records.size());
  const math::ProportionInterval ci =
      math::wilson_interval(violations, records.size());
  s.violation_ci_lo = ci.lo;
  s.violation_ci_hi = ci.hi;
  return s;
}

}  // namespace bfce::sim
