#include "sim/churn.hpp"

#include <cmath>
#include <vector>

#include "hash/mix.hpp"

namespace bfce::sim {

PopulationTimeline::PopulationTimeline(std::size_t initial,
                                       std::uint64_t seed)
    : rng_(util::derive_seed(seed, 0xC4A2117EULL)) {
  std::vector<rfid::Tag> tags;
  tags.reserve(initial);
  for (std::size_t i = 0; i < initial; ++i) tags.push_back(fresh_tag());
  current_ = rfid::TagPopulation(std::move(tags));
}

rfid::Tag PopulationTimeline::fresh_tag() {
  // IDs are minted from a counter mixed into the [1, 10^15] range;
  // collisions with earlier mints are impossible because the salt is
  // strictly increasing and the mix is injective per salt... the mixed
  // value is folded, so clip-and-retry keeps uniqueness practically
  // certain (collision odds ≈ minted²/10^15).
  rfid::Tag tag;
  tag.id = 1 + hash::mix_with_seed(++next_id_salt_, 0xF4E50517ULL) %
                   1000000000000000ULL;
  tag.rn = static_cast<std::uint32_t>(rng_());
  return tag;
}

ChurnStep PopulationTimeline::step(const ChurnModel& model) {
  ChurnStep result;
  std::vector<rfid::Tag> next;
  next.reserve(current_.size());
  for (const rfid::Tag& tag : current_.tags()) {
    if (model.departure_prob > 0.0 && rng_.bernoulli(model.departure_prob)) {
      ++result.departed;
    } else {
      next.push_back(tag);
    }
  }
  // Poisson arrivals via Knuth's product method. The method compares a
  // product of uniforms against exp(-λ), which underflows to zero for
  // λ ≳ 708 and silently capped large batches at ~700 tags (found by
  // the tracking bench: burst scenarios fed the tracker a nominal
  // arrival mean the timeline never delivered). Split λ into chunks the
  // method can represent — Poisson(λ₁)+Poisson(λ₂) = Poisson(λ₁+λ₂),
  // and a single chunk reproduces the historical draw sequence exactly
  // for λ ≤ 64.
  std::size_t arrivals = 0;
  double remaining = model.arrival_mean;
  constexpr double kMaxChunk = 64.0;
  while (remaining > 0.0) {
    const double lambda = std::min(remaining, kMaxChunk);
    remaining -= lambda;
    const double l = std::exp(-lambda);
    double product = rng_.uniform();
    while (product > l) {
      ++arrivals;
      product *= rng_.uniform();
    }
  }
  for (std::size_t a = 0; a < arrivals; ++a) next.push_back(fresh_tag());
  result.arrived = arrivals;
  current_ = rfid::TagPopulation(std::move(next));
  result.population = current_.size();
  return result;
}

}  // namespace bfce::sim
