#pragma once
// Dynamic tag populations: arrival/departure processes over monitoring
// periods. Drives realistic tests and examples for the differential
// estimator and the CUSUM monitor (a warehouse is never static).

#include <cstdint>

#include "rfid/population.hpp"
#include "util/rng.hpp"

namespace bfce::sim {

/// Per-period churn process: each present tag departs independently
/// with `departure_prob`; a Poisson(`arrival_mean`) batch of brand-new
/// tags arrives.
struct ChurnModel {
  double departure_prob = 0.0;
  double arrival_mean = 0.0;
};

/// What one period did to the population.
struct ChurnStep {
  std::size_t departed = 0;
  std::size_t arrived = 0;
  std::size_t population = 0;  ///< size after the step
};

/// A tag population evolving over discrete periods with persistent tag
/// identities (the same Tag object survives across periods until it
/// departs — which is what makes differential snapshots meaningful).
class PopulationTimeline {
 public:
  /// Starts with `initial` tags drawn uniformly; deterministic in seed.
  PopulationTimeline(std::size_t initial, std::uint64_t seed);

  [[nodiscard]] const rfid::TagPopulation& current() const noexcept { return current_; }
  [[nodiscard]] std::size_t size() const noexcept { return current_.size(); }

  /// Advances one period under `model`.
  ChurnStep step(const ChurnModel& model);

 private:
  rfid::Tag fresh_tag();

  util::Xoshiro256ss rng_;
  std::uint64_t next_id_salt_ = 0;
  rfid::TagPopulation current_;
};

}  // namespace bfce::sim
