#include "rfid/c1g2.hpp"

namespace bfce::rfid {

C1g2Link paper_link() noexcept {
  // The defaults of C1g2Link are the paper's parameters.
  return C1g2Link{};
}

}  // namespace bfce::rfid
