#pragma once
// Frame execution: one reader query followed by slotted tag replies.
//
// Every estimation protocol in this repository reduces to a handful of
// frame shapes:
//
//   * Bloom frame      — each tag picks k slots by hashing and answers in
//                        each with persistence p (BFCE).
//   * ALOHA frame      — each tag picks 1 slot and answers with
//                        persistence p (UPE, EZB, SRC, ART).
//   * Single-slot frame— each tag answers in the sole slot with
//                        probability q (ZOE).
//   * Lottery frame    — each tag picks a geometrically distributed slot
//                        (LOF, FNEB's run analysis, PET-style schemes).
//
// Each shape has two executors. `kExact` walks every tag and is the
// ground-truth agent-level simulation. `kSampled` draws aggregate
// participation counts from the exact Binomial/multinomial laws, which is
// statistically equivalent under ideal hashing and makes protocols that
// need thousands of frames over millions of tags tractable. Tests verify
// the equivalence (KS test over observed statistics).
//
// The free functions below are compatibility wrappers: the scalar loops
// live in rfid/frame_engine.hpp's FrameEngine, which additionally offers
// scratch reuse, batched execution and per-shape counters. New code
// should submit FrameRequests through a ReaderContext / FrameEngine.

#include <array>
#include <cstdint>
#include <vector>

#include "hash/persistence.hpp"
#include "rfid/channel.hpp"
#include "rfid/population.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace bfce::rfid {

/// Agent-level (`kExact`) vs aggregate-law (`kSampled`) execution.
enum class FrameMode { kExact, kSampled };

/// Which slot-selection hash the tags use in Bloom frames.
enum class HashScheme {
  kIdeal,        ///< full-avalanche seeded hash of the tagID
  kLightweight,  ///< the paper's RN ⊕ RS bitget hash (§IV-E.2)
};

/// Maximum k supported by the fixed-size seed array (the paper uses 3).
inline constexpr std::uint32_t kMaxHashes = 8;

/// Parameters of one Bloom frame.
struct BloomFrameConfig {
  std::uint32_t w = 8192;  ///< number of bit-slots (power of 2 for kLightweight)
  std::uint32_t k = 3;     ///< hash functions per tag
  double p = 1.0;          ///< persistence probability
  /// Numerator of p = p_n/1024 for PersistenceMode::kRnBits; ignored by
  /// the other persistence modes.
  std::uint32_t p_n = 1024;
  HashScheme hash = HashScheme::kIdeal;
  hash::PersistenceMode persistence = hash::PersistenceMode::kIdealBernoulli;
  std::array<std::uint64_t, kMaxHashes> seeds{};

  /// Sets p (and the matching p_n) from a numerator over 1024.
  void set_p_numerator(std::uint32_t numerator) noexcept {
    p_n = numerator;
    p = static_cast<double>(numerator) / 1024.0;
  }
};

/// Runs a Bloom frame tag-by-tag; returns the busy bitmap
/// (bit i set ⇔ the reader sensed energy in slot i).
///
/// Note the polarity: the paper's B has B(i)=1 for *idle*; estimators
/// convert. Keeping the executor in "busy" polarity avoids double
/// negation everywhere else.
/// Every executor optionally reports the number of individual tag
/// transmissions it generated through `tx_count` (added, not assigned) —
/// the input to the tag-side energy model.
util::BitVector run_bloom_frame(const TagPopulation& tags,
                                const BloomFrameConfig& cfg,
                                const Channel& channel,
                                util::Xoshiro256ss& rng,
                                std::uint64_t* tx_count = nullptr);

/// Aggregate-law Bloom frame: throws Binomial-distributed response counts
/// into slots. Valid for ideal hashing (any persistence mode's marginal
/// law); `n` is the tag count.
util::BitVector sampled_bloom_frame(std::size_t n, const BloomFrameConfig& cfg,
                                    const Channel& channel,
                                    util::Xoshiro256ss& rng,
                                    std::uint64_t* tx_count = nullptr);

/// Runs a slotted-ALOHA frame: each tag hashes to one of `f` slots
/// (seeded by `seed`) and replies with persistence `p`. Returns per-slot
/// states (idle / single / collision).
std::vector<SlotState> run_aloha_frame(const TagPopulation& tags,
                                       std::uint32_t f, double p,
                                       std::uint64_t seed,
                                       const Channel& channel,
                                       util::Xoshiro256ss& rng,
                                       std::uint64_t* tx_count = nullptr);

/// Aggregate-law ALOHA frame over `n` tags.
std::vector<SlotState> sampled_aloha_frame(std::size_t n, std::uint32_t f,
                                           double p, const Channel& channel,
                                           util::Xoshiro256ss& rng,
                                           std::uint64_t* tx_count = nullptr);

/// ZOE's frame: a single slot in which each tag participates with
/// probability `q` (decided by hashing its ID with `seed`).
SlotState run_single_slot(const TagPopulation& tags, double q,
                          std::uint64_t seed, const Channel& channel,
                          util::Xoshiro256ss& rng,
                          std::uint64_t* tx_count = nullptr);

/// Aggregate-law single slot over `n` tags.
SlotState sampled_single_slot(std::size_t n, double q, const Channel& channel,
                              util::Xoshiro256ss& rng,
                              std::uint64_t* tx_count = nullptr);

/// Lottery frame: tag t replies in slot Geom(1/2)(t) of `f` slots (slot j
/// with probability 2^-(j+1), overflow clamped to the last slot). Returns
/// the busy bitmap.
util::BitVector run_lottery_frame(const TagPopulation& tags, std::uint32_t f,
                                  std::uint64_t seed, const Channel& channel,
                                  util::Xoshiro256ss& rng,
                                  std::uint64_t* tx_count = nullptr);

/// Aggregate-law lottery frame over `n` tags (sequential multinomial).
util::BitVector sampled_lottery_frame(std::size_t n, std::uint32_t f,
                                      const Channel& channel,
                                      util::Xoshiro256ss& rng,
                                      std::uint64_t* tx_count = nullptr);

}  // namespace bfce::rfid
