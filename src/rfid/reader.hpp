#pragma once
// The reader-side execution context handed to estimation protocols.

#include <cstdint>
#include <vector>

#include "rfid/channel.hpp"
#include "rfid/frame.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/framelog.hpp"
#include "rfid/population.hpp"
#include "rfid/timing.hpp"
#include "util/rng.hpp"

namespace bfce::rfid {

/// Everything a protocol needs to run against one tag population:
/// the tags, the channel, the timing model, the frame-execution mode and
/// a deterministic RNG stream (used both for protocol randomness — seed
/// generation — and for the channel/persistence draws).
///
/// Frames are executed by the context's FrameEngine: protocols build a
/// FrameRequest and submit it via run_frame / run_batch; the engine
/// dispatches on (shape, mode), reuses its scratch buffers across the
/// run and keeps per-shape execution counters.
///
/// Multiple physical readers synchronised by a back-end server behave as
/// one logical reader (§III-A, following ZOE); this context *is* that
/// logical reader.
class ReaderContext {
 public:
  ReaderContext(const TagPopulation& tags, std::uint64_t seed,
                FrameMode mode = FrameMode::kExact,
                ChannelModel channel_model = {},
                TimingModel timing_model = {},
                ExecutionPolicy engine_policy = {})
      : tags_(&tags),
        timing_(timing_model),
        engine_(tags, Channel(channel_model), mode, engine_policy),
        rng_(util::derive_seed(seed, 0x5EEDED5EEDED5EEDULL)) {}

  [[nodiscard]] const TagPopulation& tags() const noexcept { return *tags_; }
  [[nodiscard]] std::size_t true_cardinality() const noexcept { return tags_->size(); }
  [[nodiscard]] const Channel& channel() const noexcept { return engine_.channel(); }
  [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }
  [[nodiscard]] FrameMode mode() const noexcept { return engine_.mode(); }
  util::Xoshiro256ss& rng() noexcept { return rng_; }

  /// The context's frame executor (counters, batch submission).
  FrameEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const FrameEngine& engine() const noexcept { return engine_; }

  /// Executes one frame in the context's mode through the engine.
  FrameResult run_frame(const FrameRequest& request) {
    return engine_.execute(request, rng_);
  }

  /// Executes a batch of frames through the engine (blocked population
  /// walk for all-Bloom exact batches).
  std::vector<FrameResult> run_batch(const std::vector<FrameRequest>& batch) {
    return engine_.execute_batch(batch, rng_);
  }

  /// Fresh 64-bit random seed for a reader broadcast (hash seeds etc.).
  std::uint64_t next_seed() noexcept { return rng_(); }

  /// Attaches a frame log; protocols append one record per frame while
  /// it is attached. The log must outlive the estimation calls.
  void attach_log(FrameLog* log) noexcept { log_ = log; }
  [[nodiscard]] FrameLog* log() const noexcept { return log_; }

  /// Protocol-side helper: records a frame if a log is attached.
  void log_frame(FrameKind kind, std::uint32_t slots_observed, double p,
                 std::uint32_t busy, double duration_us) {
    if (log_ == nullptr) return;
    log_->append(FrameRecord{kind, slots_observed, p, busy, duration_us});
  }

 private:
  const TagPopulation* tags_;
  TimingModel timing_;
  FrameEngine engine_;
  util::Xoshiro256ss rng_;
  FrameLog* log_ = nullptr;
};

}  // namespace bfce::rfid
