#pragma once
// Internal: the counter-addressed kernels of the sharded execution
// pipeline (ExecutionPolicy in frame_engine.hpp).
//
// bloom_decide_tile answers, for every (tag t, hash j) pair of one
// tile, "does the pair respond?" — where decision j of tag t is the
// j-th 16-bit slice of util::splitmix_at(base, t) compared against a
// Bernoulli threshold on the 1/65536 grid. sampled_scatter_tile maps
// one batched-sampler response draw r to its uniform slot — the high
// 32 bits of util::splitmix_at(base, r) reduced by multiply-shift.
// Because each decision is a pure function of (base, counter), it can
// be evaluated in any order, on any shard, by any instruction set: the
// AVX-512 paths (8 counters per vector; responders packed densely with
// vpcompressw in the decide kernel) and the scalar paths emit the
// exact same outputs in the exact same order, so results never depend
// on the host ISA.
//
// Responders come out as dense 16-bit lane ids instead of a per-group
// bitmask on purpose: at the paper's p ≈ 1/16 a mask-and-ctz drain
// mispredicts its way through mostly-empty groups, while a dense list
// gives the slot-hash/bitmap stage one well-predicted loop (measured
// ~3x on the drain alone).

#include <cstddef>
#include <cstdint>

namespace bfce::rfid::detail {

/// Tile granularity of the sharded walk: small enough that one frame's
/// shard-local bitmap plus the lane buffer stay cache-resident while a
/// tile is walked, large enough to amortise per-(tile, frame) setup.
inline constexpr std::size_t kShardTile = 4096;

/// A tile emits at most 4 responder records per tag; lane ids are
/// ((t - t0) << 2) | j with j < 4, so they fit 16 bits by construction.
inline constexpr std::size_t kShardLaneCapacity = kShardTile * 4;

/// Decision-slice mask for k hashes: bits j < k set in every tag nibble
/// (k = 3 → 0x77777777, the paper's configuration).
constexpr std::uint32_t lane_mask_for(std::uint32_t k) noexcept {
  return 0x11111111U * ((1U << k) - 1U);
}

/// True when the AVX-512 kernel is compiled in and the CPU reports the
/// required extensions (F, BW, DQ, VBMI2).
bool simd_supported() noexcept;

/// Writes one lane id ((t - t0) << 2 | j, ascending) per responding
/// (tag, hash) pair for global tag indices [t0, t1) and returns the
/// count. A pair responds when the j-th 16-bit slice of
/// splitmix_at(base, t) is < threshold16 and bit j of lane_mask is set
/// (threshold16 == 65536 means p = 1: every masked lane responds).
///
/// Preconditions: t1 - t0 <= kShardTile, threshold16 <= 65536,
/// `out` holds kShardLaneCapacity entries. `allow_simd = false` forces
/// the scalar path; output is bit-identical either way.
std::size_t bloom_decide_tile(std::uint64_t base, std::size_t t0,
                              std::size_t t1, std::uint32_t threshold16,
                              std::uint32_t lane_mask, bool allow_simd,
                              std::uint16_t* out) noexcept;

/// Tile granularity of the batched sampler's slot scatter: one tile of
/// slot ids (16 KiB) per shard stays cache-resident next to the shard's
/// count plane.
inline constexpr std::size_t kScatterTile = 4096;

/// Writes the slot index of every response draw r in [r0, r1): slot(r)
/// is the high 32 bits of splitmix_at(base, r) reduced to [0, w) by
/// multiply-shift ((hi32 · w) >> 32 — an exact uniform map up to a
/// ≤ 2⁻³² bias, far below anything a KS test resolves, and expressible
/// with the vpmullq/shift pair AVX-512 actually has).
///
/// Preconditions: r1 - r0 <= kScatterTile, w >= 1, `out` holds
/// kScatterTile entries. `allow_simd = false` forces the scalar path;
/// output is bit-identical either way.
void sampled_scatter_tile(std::uint64_t base, std::uint64_t r0,
                          std::uint64_t r1, std::uint32_t w, bool allow_simd,
                          std::uint32_t* out) noexcept;

}  // namespace bfce::rfid::detail
