#pragma once
// Internal: the counter-addressed kernels of the sharded execution
// pipeline (ExecutionPolicy in frame_engine.hpp).
//
// bloom_decide_tile answers, for every (tag t, hash j) pair of one
// tile, "does the pair respond?" — where decision j of tag t is the
// j-th 16-bit slice of util::splitmix_at(base, t) compared against a
// Bernoulli threshold on the 1/65536 grid. sampled_scatter_tile maps
// one batched-sampler response draw r to its uniform slot — the high
// 32 bits of util::splitmix_at(base, r) reduced by multiply-shift.
// Because each decision is a pure function of (base, counter), it can
// be evaluated in any order, on any shard, by any instruction set: the
// AVX-512 paths (8 counters per vector; responders packed densely with
// vpcompressw in the decide kernel) and the scalar paths emit the
// exact same outputs in the exact same order, so results never depend
// on the host ISA.
//
// Responders come out as dense 16-bit lane ids instead of a per-group
// bitmask on purpose: at the paper's p ≈ 1/16 a mask-and-ctz drain
// mispredicts its way through mostly-empty groups, while a dense list
// gives the slot-hash/bitmap stage one well-predicted loop (measured
// ~3x on the drain alone).

#include <cstddef>
#include <cstdint>

namespace bfce::rfid {

struct Tag;

namespace detail {

/// Tile granularity of the sharded walk: small enough that one frame's
/// shard-local bitmap plus the lane buffer stay cache-resident while a
/// tile is walked, large enough to amortise per-(tile, frame) setup.
inline constexpr std::size_t kShardTile = 4096;

/// A tile emits at most 4 responder records per tag; lane ids are
/// ((t - t0) << 2) | j with j < 4, so they fit 16 bits by construction.
inline constexpr std::size_t kShardLaneCapacity = kShardTile * 4;

/// Decision-slice mask for k hashes: bits j < k set in every tag nibble
/// (k = 3 → 0x77777777, the paper's configuration).
constexpr std::uint32_t lane_mask_for(std::uint32_t k) noexcept {
  return 0x11111111U * ((1U << k) - 1U);
}

/// True when the AVX-512 kernel is compiled in and the CPU reports the
/// required extensions (F, BW, DQ, VBMI2).
bool simd_supported() noexcept;

/// Writes one lane id ((t - t0) << 2 | j, ascending) per responding
/// (tag, hash) pair for global tag indices [t0, t1) and returns the
/// count. A pair responds when the j-th 16-bit slice of
/// splitmix_at(base, t) is < threshold16 and bit j of lane_mask is set
/// (threshold16 == 65536 means p = 1: every masked lane responds).
///
/// Preconditions: t1 - t0 <= kShardTile, threshold16 <= 65536,
/// `out` holds kShardLaneCapacity entries. `allow_simd = false` forces
/// the scalar path; output is bit-identical either way.
std::size_t bloom_decide_tile(std::uint64_t base, std::size_t t0,
                              std::size_t t1, std::uint32_t threshold16,
                              std::uint32_t lane_mask, bool allow_simd,
                              std::uint16_t* out) noexcept;

/// Renders the ALOHA responses of global tag indices [t0, t1) into one
/// frame's occupancy pair (`one` = "≥ 1 responder", `two` = "≥ 2
/// responders", word-packed over f slots) and returns the responder
/// count. The slot of tag t is IdealSlotHash's multiply-shift: the high
/// 64 bits of fmix64(id ^ premixed) · f. When `stochastic`, tag t
/// participates iff the unit double built from splitmix_at(base, t)
/// falls below p — the counter-addressed decision of the sharded walk,
/// so the output is a pure function of the plan for any shard count.
///
/// The AVX-512 body hashes 8 tags per iteration; participation comes
/// out as a compare mask whose set bits drive the plane drain (the
/// two-plane update `two |= one & bit; one |= bit` commutes across
/// distinct tags, so drain order cannot matter). The 128-bit
/// multiply-shift is decomposed into two 32×32 partial products —
/// slot = (hi32(h)·f + (lo32(h)·f >> 32)) >> 32, exact for f < 2^32 —
/// and the participation compare happens on integers:
/// (z >> 11) < ceil(p·2^53) is exactly the scalar unit-double test,
/// because v·2⁻⁵³ is exact for v < 2^53.
///
/// `allow_simd = false` forces the scalar span; planes and responder
/// count are bit-identical either way.
std::uint64_t aloha_render_tile(const Tag* tags, std::size_t t0,
                                std::size_t t1, std::uint64_t premixed,
                                std::uint32_t f, bool stochastic,
                                std::uint64_t base, double p, bool allow_simd,
                                std::uint64_t* one,
                                std::uint64_t* two) noexcept;

/// Tile granularity of the batched sampler's slot scatter: one tile of
/// slot ids (16 KiB) per shard stays cache-resident next to the shard's
/// count plane.
inline constexpr std::size_t kScatterTile = 4096;

/// Writes the slot index of every response draw r in [r0, r1): slot(r)
/// is the high 32 bits of splitmix_at(base, r) reduced to [0, w) by
/// multiply-shift ((hi32 · w) >> 32 — an exact uniform map up to a
/// ≤ 2⁻³² bias, far below anything a KS test resolves, and expressible
/// with the vpmullq/shift pair AVX-512 actually has).
///
/// Preconditions: r1 - r0 <= kScatterTile, w >= 1, `out` holds
/// kScatterTile entries. `allow_simd = false` forces the scalar path;
/// output is bit-identical either way.
void sampled_scatter_tile(std::uint64_t base, std::uint64_t r0,
                          std::uint64_t r1, std::uint32_t w, bool allow_simd,
                          std::uint32_t* out) noexcept;

}  // namespace detail
}  // namespace bfce::rfid
