#pragma once
// The physical channel as the reader perceives it.

#include <cstdint>

#include "util/rng.hpp"

namespace bfce::rfid {

/// What the reader senses in one slot.
///
/// Bit-slot protocols (BFCE, ZOE, EZB, LOF, FNEB) only distinguish
/// idle/busy; slotted-ALOHA estimators (UPE) additionally resolve
/// single-reply slots from collisions.
enum class SlotState : std::uint8_t {
  kIdle = 0,
  kSingle = 1,
  kCollision = 2,
};

/// True if the reader senses energy in the slot.
constexpr bool is_busy(SlotState s) noexcept { return s != SlotState::kIdle; }

/// Channel error model.
///
/// The paper assumes a perfect channel; the error rates are an extension
/// (DESIGN.md §6) used by robustness tests and the ablation bench.
/// `false_busy_rate` is the probability that an idle slot is sensed busy
/// (ambient interference); `false_idle_rate` is the probability that a
/// busy slot is sensed idle (deep fade of every replier).
struct ChannelModel {
  double false_busy_rate = 0.0;
  double false_idle_rate = 0.0;

  constexpr bool perfect() const noexcept {
    return false_busy_rate == 0.0 && false_idle_rate == 0.0;
  }
};

/// Maps the number of simultaneous repliers in a slot to what the reader
/// senses, applying the error model.
class Channel {
 public:
  Channel() = default;
  explicit Channel(ChannelModel model) noexcept : model_(model) {}

  [[nodiscard]] const ChannelModel& model() const noexcept { return model_; }

  /// Observes a slot with `repliers` simultaneous 1-bit transmissions.
  SlotState observe(std::uint32_t repliers,
                    util::Xoshiro256ss& rng) const noexcept {
    SlotState truth = repliers == 0   ? SlotState::kIdle
                      : repliers == 1 ? SlotState::kSingle
                                      : SlotState::kCollision;
    if (model_.perfect()) return truth;
    if (truth == SlotState::kIdle) {
      if (model_.false_busy_rate > 0.0 &&
          rng.bernoulli(model_.false_busy_rate)) {
        // Interference is indistinguishable from a collision burst.
        return SlotState::kCollision;
      }
      return SlotState::kIdle;
    }
    if (model_.false_idle_rate > 0.0 &&
        rng.bernoulli(model_.false_idle_rate)) {
      return SlotState::kIdle;
    }
    return truth;
  }

 private:
  ChannelModel model_;
};

}  // namespace bfce::rfid
