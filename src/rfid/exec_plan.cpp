#include "rfid/exec_plan.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace bfce::rfid::exec {

namespace {

/// Bitmap words for a w-slot frame, cache-line padded — the same
/// layout formula the sharded walk allocates with (frame_engine.cpp),
/// so the plane term prices the words that are actually zeroed and
/// merged.
std::size_t padded_words(std::uint32_t w) noexcept {
  return ((static_cast<std::size_t>(w) + 63) / 64 + 7) & ~std::size_t{7};
}

/// Resolves a "row.column" override key to the coefficient it names,
/// nullptr when unknown.
double* field_of(CostModel& m, const std::string& key) noexcept {
  struct Row {
    const char* name;
    PathCost* cost;
  };
  const Row rows[] = {
      {"bloom_packed", &m.bloom_packed}, {"bloom_plain", &m.bloom_plain},
      {"bloom_rn", &m.bloom_rn},         {"aloha", &m.aloha},
      {"single", &m.single},             {"lottery", &m.lottery},
      {"sampled_draw", &m.sampled_draw},
  };
  const std::size_t dot = key.find('.');
  if (dot != std::string::npos) {
    const std::string row = key.substr(0, dot);
    const std::string col = key.substr(dot + 1);
    for (const Row& r : rows) {
      if (row != r.name) continue;
      if (col == "seq") return &r.cost->seq;
      if (col == "par") return &r.cost->par;
      if (col == "par_simd") return &r.cost->par_simd;
      return nullptr;
    }
    return nullptr;
  }
  if (key == "slot_ns") return &m.slot_ns;
  if (key == "plane_word_ns") return &m.plane_word_ns;
  if (key == "walk_fixed_ns") return &m.walk_fixed_ns;
  if (key == "shard_fixed_ns") return &m.shard_fixed_ns;
  return nullptr;
}

/// Applies a BFCE_COST_MODEL file ("key value" per line, '#' comments)
/// on top of the committed table. Unknown keys and unparsable lines
/// warn on stderr rather than abort — a stale override file should
/// degrade to the committed defaults, not kill the simulation.
void apply_override_file(CostModel& m, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr,
                 "bfce: BFCE_COST_MODEL=%s is unreadable; "
                 "using the committed cost table\n",
                 path);
    return;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string key;
    double value = 0.0;
    if (!(fields >> key)) continue;  // blank / comment-only line
    if (!(fields >> value) || !(value >= 0.0) || !std::isfinite(value)) {
      std::fprintf(stderr,
                   "bfce: BFCE_COST_MODEL: ignoring malformed line '%s'\n",
                   line.c_str());
      continue;
    }
    double* slot = field_of(m, key);
    if (slot == nullptr) {
      std::fprintf(stderr,
                   "bfce: BFCE_COST_MODEL: unknown coefficient '%s'\n",
                   key.c_str());
      continue;
    }
    *slot = value;
  }
}

}  // namespace

std::uint32_t packed16_threshold(double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return 65536;
  const double scaled = p * 65536.0;
  if (scaled != std::floor(scaled)) return kNoPack16;
  return static_cast<std::uint32_t>(scaled);
}

CostModel CostModel::committed_defaults() noexcept {
  // Calibrated with `bench/micro_frame --calibrate` (see docs/TOOLING.md
  // for the harness). The par columns are deliberately priced ~10% above
  // their measured medians: the planner's guarantee is "kAuto is never
  // slower than sequential", so mispricing must err toward keeping
  // batches on the sequential walk (routing a batch sequentially when
  // sharding would have won costs speedup; the reverse costs the
  // guarantee).
  CostModel m;
  m.bloom_packed = {1.98, 1.69, 0.45};
  m.bloom_plain = {5.73, 7.93, 7.57};
  m.bloom_rn = {3.90, 4.10, 4.07};
  m.aloha = {1.72, 2.77, 2.77};
  m.single = {1.62, 1.33, 1.33};
  m.lottery = {12.52, 12.85, 12.85};
  m.sampled_draw = {2.65, 1.96, 1.48};
  m.slot_ns = 1.35;
  m.plane_word_ns = 0.58;
  m.walk_fixed_ns = 1572.0;
  m.shard_fixed_ns = 180.0;
  return m;
}

const CostModel& CostModel::active() noexcept {
  static const CostModel model = [] {
    CostModel m = committed_defaults();
    if (const char* path = std::getenv("BFCE_COST_MODEL")) {
      if (path[0] != '\0') apply_override_file(m, path);
    }
    return m;
  }();
  return model;
}

bool batch_is_stream_preserving(const FrameRequest* const* requests,
                                std::size_t count, FrameMode mode) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    const FrameRequest& r = *requests[i];
    switch (r.shape()) {
      case FrameShape::kBloom: {
        if (mode == FrameMode::kSampled) return false;  // scatter
        const auto& cfg = std::get<BloomFrameConfig>(r.config);
        if (cfg.persistence != hash::PersistenceMode::kRnBits) return false;
        break;
      }
      case FrameShape::kAloha: {
        if (mode == FrameMode::kSampled) return false;  // scatter
        const auto& cfg = std::get<AlohaFrameConfig>(r.config);
        if (cfg.p < 1.0) return false;
        break;
      }
      case FrameShape::kSingleSlot:
      case FrameShape::kLottery:
        // Deterministic tag decisions in exact mode; in sampled mode
        // the batched sampler draws these on the caller's stream in
        // request order — the exact sequence the legacy executors use.
        break;
    }
  }
  return true;
}

bool plan_prefers_sharded(const CostModel& model,
                          const FrameRequest* const* requests,
                          std::size_t count, std::size_t n, FrameMode mode,
                          std::uint32_t shard_hint, bool simd) noexcept {
  if (count == 0 || n == 0) return false;
  if (!batch_is_stream_preserving(requests, count, mode)) {
    // Law-divergent: the pure floor (see exec_plan.hpp). Any host that
    // would route this batch differently would compute different bits.
    shard_hint = 1;
    simd = false;
  }
  if (shard_hint < 1) shard_hint = 1;
  const double items = static_cast<double>(n);
  const double inv_shards = 1.0 / static_cast<double>(shard_hint);
  // Plane words are zeroed once per shard slice and merged/observed
  // once, hence the (shards + 1) factor.
  const double words_factor =
      static_cast<double>(shard_hint + 1) * model.plane_word_ns;

  double seq = 0.0;
  double par = model.walk_fixed_ns +
               static_cast<double>(shard_hint) * model.shard_fixed_ns;
  for (std::size_t i = 0; i < count; ++i) {
    const FrameRequest& r = *requests[i];
    switch (r.shape()) {
      case FrameShape::kBloom: {
        const auto& cfg = std::get<BloomFrameConfig>(r.config);
        const double words =
            static_cast<double>(padded_words(cfg.w)) * words_factor;
        if (mode == FrameMode::kSampled) {
          // The binomial responder count is drawn AFTER this decision,
          // so price the expectation n·k·p.
          const double draws = items * cfg.k * cfg.p;
          seq += draws * model.sampled_draw.seq +
                 static_cast<double>(cfg.w) * model.slot_ns;
          par += draws * model.sampled_draw.par_cost(simd) * inv_shards +
                 words;
          break;
        }
        const bool stochastic =
            cfg.persistence == hash::PersistenceMode::kIdealBernoulli ||
            cfg.persistence == hash::PersistenceMode::kSharedDraw;
        const bool packed =
            stochastic && packed16_threshold(cfg.p) != kNoPack16 &&
            (cfg.persistence == hash::PersistenceMode::kSharedDraw ||
             cfg.k <= 4);
        const PathCost& col = !stochastic ? model.bloom_rn
                              : packed    ? model.bloom_packed
                                          : model.bloom_plain;
        const double pairs = items * cfg.k;
        seq += pairs * col.seq + static_cast<double>(cfg.w) * model.slot_ns;
        par += pairs * col.par_cost(simd) * inv_shards + words;
        break;
      }
      case FrameShape::kAloha: {
        const auto& cfg = std::get<AlohaFrameConfig>(r.config);
        const double words = 2.0 *
                             static_cast<double>(padded_words(cfg.f)) *
                             words_factor;
        if (mode == FrameMode::kSampled) {
          const double draws = items * cfg.p;
          // No slot term on either side: both walks observe the f
          // idle/single/collision categories slot-by-slot.
          seq += draws * model.sampled_draw.seq;
          par += draws * model.sampled_draw.par_cost(simd) * inv_shards +
                 words;
          break;
        }
        seq += items * model.aloha.seq;
        par += items * model.aloha.par_cost(simd) * inv_shards + words;
        break;
      }
      case FrameShape::kSingleSlot:
        // Sampled: one binomial on both walks — free either way. Exact:
        // the same hash-and-compare tag loop, minus planes entirely.
        if (mode == FrameMode::kExact) {
          seq += items * model.single.seq;
          par += items * model.single.par_cost(simd) * inv_shards;
        }
        break;
      case FrameShape::kLottery: {
        // Sampled: the dependent multinomial is drawn identically on
        // both walks (request order, caller stream) — free either way.
        if (mode == FrameMode::kExact) {
          const auto& cfg = std::get<LotteryFrameConfig>(r.config);
          seq += items * model.lottery.seq +
                 static_cast<double>(cfg.f) * model.slot_ns;
          par += items * model.lottery.par_cost(simd) * inv_shards +
                 static_cast<double>(padded_words(cfg.f)) * words_factor;
        }
        break;
      }
    }
  }
  return par < seq;
}

}  // namespace bfce::rfid::exec
