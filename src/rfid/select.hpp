#pragma once
// C1G2 Select filtering.
//
// The C1G2 standard's Select command (§6.3.2.11) lets the reader scope
// an inventory round to tags whose EPC matches a (pointer, length, mask)
// pattern. Combined with a cardinality estimator this turns "how many
// tags?" into "how many tags *of this kind*?" — per-category censuses
// without reading anyone's full EPC.
//
// We model EPCs whose leading bits encode a category (the usual
// GS1-style layout) and provide the population filtering plus the
// airtime cost of broadcasting the Select command itself.

#include <cstdint>
#include <vector>

#include "rfid/population.hpp"
#include "rfid/timing.hpp"

namespace bfce::rfid {

/// A Select pattern over the leading `prefix_bits` of the ID space.
///
/// `id_bits` is the width of the modelled EPC field (the library's
/// populations draw IDs below 10^15 < 2^50).
struct SelectMask {
  std::uint64_t prefix = 0;      ///< expected value of the leading bits
  std::uint32_t prefix_bits = 0; ///< how many leading bits to match
  std::uint32_t id_bits = 50;

  /// True iff the tag's leading bits equal the pattern.
  bool matches(std::uint64_t id) const noexcept {
    if (prefix_bits == 0) return true;
    return (id >> (id_bits - prefix_bits)) == prefix;
  }

  /// Airtime of broadcasting this Select: command overhead plus the
  /// pointer/length/mask fields (§6.3.2.11's layout, rounded to the
  /// fields we model).
  Airtime airtime_cost() const noexcept {
    Airtime a;
    a.add_reader_broadcast(20 /* cmd+target+action+pointer+length */ +
                           prefix_bits);
    return a;
  }
};

/// The sub-population a Select leaves energised. (Tags that fail the
/// match stay silent for the rest of the round, exactly as on air.)
TagPopulation select_population(const TagPopulation& tags,
                                const SelectMask& mask);

/// Builds a population whose IDs carry explicit category prefixes:
/// `counts[c]` tags get category `c` in the top `prefix_bits` bits and
/// uniform random lower bits (unique IDs). Deterministic in `seed`.
TagPopulation make_categorized_population(
    const std::vector<std::size_t>& counts, std::uint32_t prefix_bits,
    std::uint64_t seed, std::uint32_t id_bits = 50);

}  // namespace bfce::rfid
