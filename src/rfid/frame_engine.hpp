#pragma once
// FrameEngine — the unified dispatch point for frame execution.
//
// Every protocol in this repository reduces to the four frame shapes of
// frame.hpp (Bloom, ALOHA, single-slot, lottery), each with an exact
// (agent-level) and a sampled (aggregate-law) executor. The engine puts
// all 4 × 2 behind one `FrameRequest` → `FrameResult` seam and adds what
// the free functions cannot offer:
//
//  * reused scratch buffers — no per-frame slot-count allocation;
//  * hashers premixed once per frame, outside the tag loop;
//  * `execute_batch`: a blocked exact-mode path that walks the
//    population ONCE per batch, computing all k slots of every queued
//    Bloom frame per tag — the many-frames-over-one-population workload
//    of the Fig 9/10 sweeps pays the population walk once per batch
//    instead of once per frame;
//  * per-shape execution counters (frames, slots simulated, tag
//    transmissions, host wall-clock), the instrumentation the benches
//    print via core/monitor.
//
// Determinism contract:
//  * `execute` consumes the caller's RNG in exactly the order the legacy
//    `run_*` / `sampled_*` executors did — results are bit-identical, so
//    `sim::run_experiment` stays a pure function of (master seed, trial
//    index) across the refactor.
//  * `execute_batch` is equally deterministic (a pure function of the
//    engine state, the request list and the RNG state), but the blocked
//    path draws its persistence decisions from a stream derived from one
//    draw of the caller's generator, so it is bit-identical to sequential
//    execution only when the tag-side responses draw no RNG
//    (PersistenceMode::kRnBits). For the stochastic persistence modes it
//    realises the same law (tests verify by two-sample KS).
//  * The opt-in sharded pipeline (ExecutionPolicy) extends the same
//    contract to intra-frame parallelism for EVERY shape × mode through
//    one plan/render/reduce decomposition: each frame is hoisted into a
//    small plan (slot geometry + a per-tag or per-draw decision rule),
//    the render stage walks the population (exact) or the response
//    draws (sampled) across shards with counter-addressed randomness —
//    util::splitmix_at over a per-frame SeedMixer base, exactly one
//    caller-RNG draw per stochastic frame — and the reduce stage merges
//    shard-private planes and observes through the channel in request
//    order. Results are bit-identical for ANY shard count; frames whose
//    tag-side decisions draw no RNG (kRnBits Bloom, p = 1 ALOHA,
//    single-slot, lottery) are bit-identical to the sequential walk
//    too, and sampled mode additionally batches all binomial responder
//    draws through one pass (the batched sampler).
//
// The legacy free functions in frame.hpp survive as thin wrappers over a
// transient engine, so untouched estimators keep working unchanged.

#include <array>
#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "rfid/channel.hpp"
#include "rfid/frame.hpp"
#include "rfid/population.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace bfce::rfid {

/// The four frame shapes. Values index EngineCounters::by_shape.
enum class FrameShape : std::uint8_t {
  kBloom = 0,
  kAloha = 1,
  kSingleSlot = 2,
  kLottery = 3,
};

inline constexpr std::size_t kFrameShapeCount = 4;

/// Short lowercase label ("bloom", "aloha", ...).
const char* to_cstring(FrameShape shape) noexcept;

/// Parameters of one slotted-ALOHA frame (1 hashed slot, persistence p).
struct AlohaFrameConfig {
  std::uint32_t f = 128;   ///< frame size in slots
  double p = 1.0;          ///< persistence probability
  std::uint64_t seed = 0;  ///< broadcast slot-hash seed
};

/// Parameters of one ZOE-style single-slot frame.
struct SingleSlotConfig {
  double q = 1.0;          ///< participation probability
  std::uint64_t seed = 0;  ///< broadcast participation-hash seed
};

/// Parameters of one geometric lottery frame.
struct LotteryFrameConfig {
  std::uint32_t f = 32;    ///< frame size in slots
  std::uint64_t seed = 0;  ///< broadcast geometric-hash seed
};

/// One frame to execute. The active alternative selects the shape; the
/// exact/sampled decision belongs to the engine's FrameMode.
struct FrameRequest {
  std::variant<BloomFrameConfig, AlohaFrameConfig, SingleSlotConfig,
               LotteryFrameConfig>
      config;

  FrameShape shape() const noexcept {
    return static_cast<FrameShape>(config.index());
  }

  static FrameRequest bloom(const BloomFrameConfig& cfg) {
    return FrameRequest{cfg};
  }
  static FrameRequest aloha(std::uint32_t f, double p, std::uint64_t seed) {
    return FrameRequest{AlohaFrameConfig{f, p, seed}};
  }
  static FrameRequest single_slot(double q, std::uint64_t seed) {
    return FrameRequest{SingleSlotConfig{q, seed}};
  }
  static FrameRequest lottery(std::uint32_t f, std::uint64_t seed) {
    return FrameRequest{LotteryFrameConfig{f, seed}};
  }
};

/// What one frame produced. Only the member matching the request's shape
/// is populated (`busy` for Bloom/lottery, `states` for ALOHA, `single`
/// for single-slot); `tx` always holds the number of individual tag
/// transmissions — the input to the tag-side energy model.
struct FrameResult {
  FrameShape shape = FrameShape::kBloom;
  util::BitVector busy;
  std::vector<SlotState> states;
  SlotState single = SlotState::kIdle;
  std::uint64_t tx = 0;
};

/// Opt-in intra-frame parallelism for every frame shape × mode.
///
/// Exact mode: the sharded walk splits the population into contiguous
/// tag ranges, one per shard; each shard decides and hashes its own
/// tags into private per-frame planes (word-packed bitmaps for
/// Bloom/lottery, a two-plane ≥1/≥2 bitmap for ALOHA, responder tallies
/// for single-slot; all cache-line padded) and the shards merge with
/// word-wide ORs / sums. Per-tag stochastic decisions are
/// counter-addressed — util::splitmix_at(frame base, tag index), the
/// base derived via util::SeedMixer from one caller-RNG draw and the
/// frame's broadcast parameters — so the result is a pure function of
/// the seed and bit-identical for ANY shard count (tests assert 1/4/8,
/// and tools/lint_determinism.py keeps the walk free of ambient
/// entropy).
///
/// Sampled mode: the batched sampler draws every frame's binomial
/// responder count on the caller's stream in request order (phase 1),
/// scatters all response draws into shard-private count planes with
/// counter-addressed slots (phase 2, the only parallel stage), then
/// sums the planes and observes through the channel in request order
/// (phase 3) — equally shard-count invariant.
///
/// Contract relative to the sequential paths: frames whose tag-side
/// decisions draw no RNG (kRnBits Bloom, p = 1 ALOHA, single-slot,
/// lottery) are bit-identical to sequential execution, RNG position
/// included; stochastic persistence and the sampled scatter realise the
/// same law with different bits (tests verify by two-sample KS).
/// Channel observation stays slot-major on the caller's stream in every
/// case.
struct ExecutionPolicy {
  /// Walk selection. kSequential preserves the legacy RNG-stream
  /// contract; kSharded trades it for intra-frame parallelism plus the
  /// vectorised decision/scatter kernels; kAuto prices each frame /
  /// batch with the committed cost model (rfid/exec_plan.hpp) and picks
  /// whichever walk is cheaper — never slower than kSequential, and for
  /// law-divergent batches the choice is a pure function of the request
  /// list, the population size and the committed table (not the host),
  /// so kAuto results stay reproducible across machines.
  enum class Walk : std::uint8_t { kSequential = 0, kSharded = 1, kAuto = 2 };

  Walk walk = Walk::kSequential;
  /// Worker shards; 0 ⇒ util::default_thread_count() (BFCE_THREADS).
  std::uint32_t shards = 0;
  /// Work items (tags in exact mode, response draws in sampled mode)
  /// below shards·min_tags_per_shard run on fewer shards — purely a
  /// scheduling decision, results do not change.
  std::size_t min_tags_per_shard = 4096;
  /// Gate for the AVX-512 decision/scatter kernels. Results are
  /// bit-identical with it on or off (tests flip this to compare SIMD
  /// vs scalar).
  bool allow_simd = true;

  [[nodiscard]] constexpr bool is_sharded() const noexcept {
    return walk == Walk::kSharded;
  }
  [[nodiscard]] constexpr bool is_auto() const noexcept {
    return walk == Walk::kAuto;
  }

  static constexpr ExecutionPolicy sequential() noexcept { return {}; }
  static constexpr ExecutionPolicy sharded(std::uint32_t count = 0) noexcept {
    ExecutionPolicy policy;
    policy.walk = Walk::kSharded;
    policy.shards = count;
    return policy;
  }
  /// Adaptive policy: the engine routes each frame / batch through
  /// whichever walk the cost model prices cheaper. `count` caps the
  /// shard hint like sharded()'s argument does (0 ⇒ BFCE_THREADS /
  /// hardware count).
  static constexpr ExecutionPolicy automatic(std::uint32_t count = 0) noexcept {
    ExecutionPolicy policy;
    policy.walk = Walk::kAuto;
    policy.shards = count;
    return policy;
  }
};

/// Execution counters for one frame shape.
struct ShapeCounters {
  std::uint64_t frames = 0;   ///< frames executed
  std::uint64_t slots = 0;    ///< slots simulated (w, f or 1 per frame)
  std::uint64_t tag_tx = 0;   ///< individual tag transmissions generated
  double wall_us = 0.0;       ///< host wall-clock spent executing

  ShapeCounters& operator+=(const ShapeCounters& o) noexcept {
    frames += o.frames;
    slots += o.slots;
    tag_tx += o.tag_tx;
    wall_us += o.wall_us;
    return *this;
  }
};

/// Per-shape counters plus batch statistics. Summable across engines
/// (sim::summarize_records aggregates them over trials).
struct EngineCounters {
  std::array<ShapeCounters, kFrameShapeCount> by_shape{};
  std::uint64_t batches = 0;          ///< execute_batch calls
  std::uint64_t blocked_batches = 0;  ///< batches taken by the blocked path
  std::uint64_t sharded_walks = 0;    ///< sharded walks / batched-sampler runs
  std::uint64_t sampled_batches = 0;  ///< batched-sampler runs (subset)
  std::uint64_t auto_sharded = 0;     ///< kAuto decisions routed sharded
  std::uint64_t auto_sequential = 0;  ///< kAuto decisions routed sequential

  ShapeCounters& of(FrameShape s) noexcept {
    return by_shape[static_cast<std::size_t>(s)];
  }
  const ShapeCounters& of(FrameShape s) const noexcept {
    return by_shape[static_cast<std::size_t>(s)];
  }

  /// Sum over all shapes.
  ShapeCounters total() const noexcept {
    ShapeCounters t;
    for (const ShapeCounters& s : by_shape) t += s;
    return t;
  }

  EngineCounters& operator+=(const EngineCounters& o) noexcept {
    for (std::size_t i = 0; i < kFrameShapeCount; ++i) {
      by_shape[i] += o.by_shape[i];
    }
    batches += o.batches;
    blocked_batches += o.blocked_batches;
    sharded_walks += o.sharded_walks;
    sampled_batches += o.sampled_batches;
    auto_sharded += o.auto_sharded;
    auto_sequential += o.auto_sequential;
    return *this;
  }
};

/// Batched frame executor over one tag population (or, in sampled mode,
/// over an abstract cardinality). Not thread-safe; one engine per reader
/// context / per worker, exactly like the RNG streams it consumes.
class FrameEngine {
 public:
  /// Engine over a concrete population; serves both modes.
  FrameEngine(const TagPopulation& tags, Channel channel, FrameMode mode,
              ExecutionPolicy policy = {})
      : tags_(&tags),
        n_(tags.size()),
        channel_(channel),
        mode_(mode),
        policy_(policy) {}

  /// Sampled-only engine over an abstract cardinality `n` (no per-tag
  /// state exists, so kExact requests are invalid).
  FrameEngine(std::size_t n, Channel channel)
      : tags_(nullptr), n_(n), channel_(channel), mode_(FrameMode::kSampled) {}

  [[nodiscard]] FrameMode mode() const noexcept { return mode_; }
  [[nodiscard]] const Channel& channel() const noexcept { return channel_; }
  [[nodiscard]] std::size_t population_size() const noexcept { return n_; }

  /// The intra-frame parallelism policy (see ExecutionPolicy).
  [[nodiscard]] const ExecutionPolicy& policy() const noexcept { return policy_; }
  void set_policy(ExecutionPolicy policy) noexcept { policy_ = policy; }

  /// Executes one frame in the engine's mode. Under a sequential policy
  /// it consumes `rng` exactly as the legacy executor for (shape, mode)
  /// did — bit-identical results; a sharded policy routes through the
  /// plan/render/reduce walk (exact) or the batched sampler (sampled),
  /// see the ExecutionPolicy contract. A kAuto policy picks per frame
  /// with the cost model (use_sharded_path).
  FrameResult execute(const FrameRequest& request, util::Xoshiro256ss& rng);

  /// Executes a batch of frames. A sharded policy runs the whole batch
  /// (any shape mix) through one plan/render/reduce walk (exact) or one
  /// batched-sampler pass (sampled); a kAuto policy does the same only
  /// when the cost model prices the walk cheaper than the sequential
  /// dispatch below, pinning the decision to the committed scalar floor
  /// whenever the two walks diverge in bits. Sequential policies keep the
  /// legacy dispatch: all-Bloom exact-mode batches of ≥ 2 frames take
  /// the blocked path (one population walk for the whole batch);
  /// everything else runs the frames sequentially through execute().
  /// See the determinism contract above.
  std::vector<FrameResult> execute_batch(
      const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng);

  [[nodiscard]] const EngineCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = EngineCounters{}; }

 private:
  // Scalar per-frame paths, bit-identical to the legacy executors.
  void exact_bloom(const BloomFrameConfig& cfg, util::Xoshiro256ss& rng,
                   FrameResult& out);
  void sampled_bloom(const BloomFrameConfig& cfg, util::Xoshiro256ss& rng,
                     FrameResult& out);
  void exact_aloha(const AlohaFrameConfig& cfg, util::Xoshiro256ss& rng,
                   FrameResult& out);
  void sampled_aloha(const AlohaFrameConfig& cfg, util::Xoshiro256ss& rng,
                     FrameResult& out);
  void exact_single(const SingleSlotConfig& cfg, util::Xoshiro256ss& rng,
                    FrameResult& out);
  void sampled_single(const SingleSlotConfig& cfg, util::Xoshiro256ss& rng,
                      FrameResult& out);
  void exact_lottery(const LotteryFrameConfig& cfg, util::Xoshiro256ss& rng,
                     FrameResult& out);
  void sampled_lottery(const LotteryFrameConfig& cfg, util::Xoshiro256ss& rng,
                       FrameResult& out);

  /// Blocked exact-mode Bloom batch: one population walk for all frames.
  std::vector<FrameResult> execute_bloom_batch_blocked(
      const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng);

  /// Universal sharded exact-mode frame / batch (any shape mix): the
  /// plan/render/reduce walk with counter-addressed decisions,
  /// shard-private planes and word-wide merge.
  void exact_sharded(const FrameRequest& request, util::Xoshiro256ss& rng,
                     FrameResult& out);
  std::vector<FrameResult> execute_batch_sharded(
      const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng);

  /// Batched sampler: all sampled-mode frames of a batch planned in one
  /// pass (binomials on the caller's stream, request order), response
  /// draws scattered across shards, planes summed and observed in
  /// request order. Used whenever the policy is sharded.
  std::vector<FrameResult> execute_sampled_batch(
      const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng);

  /// Shard count the policy resolves to for `work` items (tags in exact
  /// mode, response draws in sampled mode).
  [[nodiscard]] std::uint32_t effective_shards(std::size_t work) const noexcept;

  /// The kAuto routing decision for one frame / batch: prices both
  /// walks with the committed cost model (rfid/exec_plan.hpp) and bumps
  /// the auto_sharded / auto_sequential counter for the winner.
  bool use_sharded_path(const FrameRequest* const* requests,
                        std::size_t count);

  /// counts_[0..w) → busy bitmap through the channel (frame-major RNG).
  util::BitVector counts_to_busy(const std::uint32_t* counts, std::size_t w,
                                 util::Xoshiro256ss& rng) const;

  const TagPopulation* tags_;
  std::size_t n_;
  Channel channel_;
  FrameMode mode_;
  ExecutionPolicy policy_;
  EngineCounters counters_;
  std::vector<std::uint32_t> counts_;        ///< per-frame scratch
  std::vector<std::uint32_t> batch_counts_;  ///< blocked/sampler slot counts
  std::vector<std::uint64_t> shard_bits_;    ///< walk + sampler word planes
  std::vector<std::uint64_t> shard_tx_;      ///< sharded-path tx tallies
  std::vector<std::uint16_t> lane_scratch_;  ///< sharded-path lane ids
  std::vector<std::uint32_t> slot_scratch_;  ///< sampler scatter slot ids
};

}  // namespace bfce::rfid
