#pragma once
// EPCglobal C1G2 timing model and airtime accounting.
//
// The paper computes execution time from three constants (§IV-E.1, §V-A):
//   reader → tag : 37.76 µs per bit  (26.5 kb/s)
//   tag → reader : 18.88 µs per bit  (53 kb/s)
//   gap between consecutive transmissions: 302 µs
// Every protocol in this repository charges its communication to an
// Airtime ledger; wall-clock numbers in the figures are derived purely
// from this model, exactly as in the paper.

#include <cstdint>

namespace bfce::rfid {

/// The three C1G2 constants (microseconds). Mutable so sensitivity
/// studies can model faster/slower links.
struct TimingModel {
  double reader_bit_us = 37.76;
  double tag_bit_us = 18.88;
  double interval_us = 302.0;
};

/// Communication ledger: everything a protocol put on the air.
struct Airtime {
  std::uint64_t reader_bits = 0;  ///< bits broadcast reader → tags
  std::uint64_t tag_bits = 0;     ///< bit-slots tags → reader (1 bit each)
  std::uint64_t intervals = 0;    ///< inter-transmission gaps
  /// Individual tag transmissions summed over tags (collisions count
  /// every replier). Not part of the wall-clock total — colliding
  /// replies overlap — but the basis of the tag-side energy model.
  std::uint64_t tag_tx_bits = 0;

  /// Charges a reader broadcast of `bits` bits followed by one gap.
  void add_reader_broadcast(std::uint64_t bits) noexcept {
    reader_bits += bits;
    intervals += 1;
  }

  /// Charges `slots` tag→reader bit-slots followed by one gap.
  void add_tag_slots(std::uint64_t slots) noexcept {
    tag_bits += slots;
    intervals += 1;
  }

  Airtime& operator+=(const Airtime& other) noexcept {
    reader_bits += other.reader_bits;
    tag_bits += other.tag_bits;
    intervals += other.intervals;
    tag_tx_bits += other.tag_tx_bits;
    return *this;
  }

  /// Total microseconds under `model`.
  double total_us(const TimingModel& model) const noexcept {
    return static_cast<double>(reader_bits) * model.reader_bit_us +
           static_cast<double>(tag_bits) * model.tag_bit_us +
           static_cast<double>(intervals) * model.interval_us;
  }

  double total_seconds(const TimingModel& model) const noexcept {
    return total_us(model) / 1e6;
  }
};

}  // namespace bfce::rfid
