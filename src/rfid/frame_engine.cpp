#include "rfid/frame_engine.hpp"

#include <cassert>
#include <chrono>
#include <cmath>

#include "hash/persistence.hpp"
#include "hash/slot_hash.hpp"

namespace bfce::rfid {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Binomial draws go through util::draw_binomial, which serialises the
// lgamma-calling construction of std::binomial_distribution (glibc
// signgam data race under concurrent workers) while keeping draws
// bit-identical to the historical in-line use.
using util::draw_binomial;

std::uint64_t sum_counts(const std::uint32_t* counts, std::size_t w) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < w; ++i) total += counts[i];
  return total;
}

/// Exact 16-bit threshold for Bernoulli(p) decisions packed four to a
/// 64-bit draw, or kNoPack16 when p is not on the 1/65536 grid (the
/// 1/1024 persistence grid of §IV-E.3 always is). A uniform 16-bit slice
/// compared against p·65536 realises Bernoulli(p) exactly.
constexpr std::uint32_t kNoPack16 = 0xFFFFFFFFU;

std::uint32_t packed16_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return 65536;
  const double scaled = p * 65536.0;
  if (scaled != std::floor(scaled)) return kNoPack16;
  return static_cast<std::uint32_t>(scaled);
}

/// The slot choices of one Bloom frame, premixed once per frame.
struct HoistedBloomHashes {
  bool lightweight = false;
  std::array<hash::IdealSlotHash, kMaxHashes> ideal{
      hash::IdealSlotHash(0), hash::IdealSlotHash(0), hash::IdealSlotHash(0),
      hash::IdealSlotHash(0), hash::IdealSlotHash(0), hash::IdealSlotHash(0),
      hash::IdealSlotHash(0), hash::IdealSlotHash(0)};
  std::array<std::uint32_t, kMaxHashes> lw{};

  explicit HoistedBloomHashes(const BloomFrameConfig& cfg) {
    lightweight = cfg.hash == HashScheme::kLightweight;
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      if (lightweight) {
        lw[j] = static_cast<std::uint32_t>(cfg.seeds[j]);
      } else {
        ideal[j] = hash::IdealSlotHash(cfg.seeds[j]);
      }
    }
  }

  std::uint32_t slot(const Tag& tag, std::uint32_t j,
                     std::uint32_t w) const noexcept {
    return lightweight ? hash::LightweightSlotHash(lw[j]).slot(tag.rn, w)
                       : ideal[j].slot(tag.id, w);
  }
};

}  // namespace

const char* to_cstring(FrameShape shape) noexcept {
  switch (shape) {
    case FrameShape::kBloom:
      return "bloom";
    case FrameShape::kAloha:
      return "aloha";
    case FrameShape::kSingleSlot:
      return "single";
    case FrameShape::kLottery:
      return "lottery";
  }
  return "?";
}

util::BitVector FrameEngine::counts_to_busy(const std::uint32_t* counts,
                                            std::size_t w,
                                            util::Xoshiro256ss& rng) const {
  util::BitVector busy(w);
  for (std::size_t i = 0; i < w; ++i) {
    if (is_busy(channel_.observe(counts[i], rng))) busy.set(i);
  }
  return busy;
}

FrameResult FrameEngine::execute(const FrameRequest& request,
                                 util::Xoshiro256ss& rng) {
  const auto start = Clock::now();
  FrameResult out;
  out.shape = request.shape();
  std::uint64_t slots = 0;
  switch (out.shape) {
    case FrameShape::kBloom: {
      const auto& cfg = std::get<BloomFrameConfig>(request.config);
      slots = cfg.w;
      if (mode_ == FrameMode::kExact) {
        exact_bloom(cfg, rng, out);
      } else {
        sampled_bloom(cfg, rng, out);
      }
      break;
    }
    case FrameShape::kAloha: {
      const auto& cfg = std::get<AlohaFrameConfig>(request.config);
      slots = cfg.f;
      if (mode_ == FrameMode::kExact) {
        exact_aloha(cfg, rng, out);
      } else {
        sampled_aloha(cfg, rng, out);
      }
      break;
    }
    case FrameShape::kSingleSlot: {
      const auto& cfg = std::get<SingleSlotConfig>(request.config);
      slots = 1;
      if (mode_ == FrameMode::kExact) {
        exact_single(cfg, rng, out);
      } else {
        sampled_single(cfg, rng, out);
      }
      break;
    }
    case FrameShape::kLottery: {
      const auto& cfg = std::get<LotteryFrameConfig>(request.config);
      slots = cfg.f;
      if (mode_ == FrameMode::kExact) {
        exact_lottery(cfg, rng, out);
      } else {
        sampled_lottery(cfg, rng, out);
      }
      break;
    }
  }
  ShapeCounters& c = counters_.of(out.shape);
  c.frames += 1;
  c.slots += slots;
  c.tag_tx += out.tx;
  c.wall_us += elapsed_us(start);
  return out;
}

std::vector<FrameResult> FrameEngine::execute_batch(
    const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng) {
  ++counters_.batches;
  bool all_bloom = !requests.empty();
  for (const FrameRequest& r : requests) {
    if (r.shape() != FrameShape::kBloom) {
      all_bloom = false;
      break;
    }
  }
  if (all_bloom && requests.size() >= 2 && mode_ == FrameMode::kExact &&
      tags_ != nullptr) {
    return execute_bloom_batch_blocked(requests, rng);
  }
  std::vector<FrameResult> results;
  results.reserve(requests.size());
  for (const FrameRequest& r : requests) results.push_back(execute(r, rng));
  return results;
}

// ---- scalar paths (bit-identical to the legacy free executors) --------

void FrameEngine::exact_bloom(const BloomFrameConfig& cfg,
                              util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
  assert(cfg.hash != HashScheme::kLightweight ||
         (cfg.w & (cfg.w - 1)) == 0);  // lightweight bitget needs 2^b slots
  counts_.assign(cfg.w, 0);
  const HoistedBloomHashes hashes(cfg);

  for (const Tag& tag : tags_->tags()) {
    // A tag that uses one shared persistence draw decides once per frame.
    bool shared_respond = true;
    if (cfg.persistence == hash::PersistenceMode::kSharedDraw) {
      shared_respond = rng.bernoulli(cfg.p);
      if (!shared_respond) continue;
    }
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      const std::uint32_t slot = hashes.slot(tag, j, cfg.w);
      bool respond;
      switch (cfg.persistence) {
        case hash::PersistenceMode::kIdealBernoulli:
          respond = rng.bernoulli(cfg.p);
          break;
        case hash::PersistenceMode::kSharedDraw:
          respond = shared_respond;
          break;
        case hash::PersistenceMode::kRnBits:
          respond = hash::rn_bits_respond(
              tag.rn, slot, static_cast<std::uint32_t>(cfg.seeds[j]), cfg.p_n);
          break;
        default:
          respond = false;
      }
      if (respond) ++counts_[slot];
    }
  }
  out.tx = sum_counts(counts_.data(), cfg.w);
  out.busy = counts_to_busy(counts_.data(), cfg.w, rng);
}

void FrameEngine::sampled_bloom(const BloomFrameConfig& cfg,
                                util::Xoshiro256ss& rng, FrameResult& out) {
  assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
  // Every (tag, hash) pair responds with probability p, independently
  // under the marginal law; the total response count is Binomial(k·n, p)
  // and each response lands in a uniform slot. (Within-tag slot
  // distinctness is a O(k²/w) correction, negligible for k=3, w=8192;
  // tests compare the two executors.)
  const std::uint64_t responses =
      draw_binomial(static_cast<std::uint64_t>(n_) * cfg.k, cfg.p, rng);
  counts_.assign(cfg.w, 0);
  for (std::uint64_t r = 0; r < responses; ++r) {
    ++counts_[rng.below(cfg.w)];
  }
  out.tx = responses;
  out.busy = counts_to_busy(counts_.data(), cfg.w, rng);
}

void FrameEngine::exact_aloha(const AlohaFrameConfig& cfg,
                              util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  counts_.assign(cfg.f, 0);
  const hash::IdealSlotHash slot_hash(cfg.seed);
  for (const Tag& tag : tags_->tags()) {
    if (cfg.p < 1.0 && !rng.bernoulli(cfg.p)) continue;
    ++counts_[slot_hash.slot(tag.id, cfg.f)];
  }
  out.tx = sum_counts(counts_.data(), cfg.f);
  out.states.resize(cfg.f);
  for (std::uint32_t i = 0; i < cfg.f; ++i) {
    out.states[i] = channel_.observe(counts_[i], rng);
  }
}

void FrameEngine::sampled_aloha(const AlohaFrameConfig& cfg,
                                util::Xoshiro256ss& rng, FrameResult& out) {
  const std::uint64_t responders = draw_binomial(n_, cfg.p, rng);
  out.tx = responders;
  counts_.assign(cfg.f, 0);
  for (std::uint64_t r = 0; r < responders; ++r) {
    ++counts_[rng.below(cfg.f)];
  }
  out.states.resize(cfg.f);
  for (std::uint32_t i = 0; i < cfg.f; ++i) {
    out.states[i] = channel_.observe(counts_[i], rng);
  }
}

void FrameEngine::exact_single(const SingleSlotConfig& cfg,
                               util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  // ZOE's participation rule: hash the tagID with the per-frame seed and
  // compare against q — no tag-side RNG required.
  const std::uint64_t threshold =
      cfg.q >= 1.0 ? ~0ULL
                   : static_cast<std::uint64_t>(
                         cfg.q * 18446744073709551616.0 /* 2^64 */);
  const std::uint64_t premixed = hash::premix_seed(cfg.seed);
  std::uint32_t responders = 0;
  for (const Tag& tag : tags_->tags()) {
    if (hash::fmix64(tag.id ^ premixed) < threshold) ++responders;
  }
  out.tx = responders;
  out.single = channel_.observe(responders, rng);
}

void FrameEngine::sampled_single(const SingleSlotConfig& cfg,
                                 util::Xoshiro256ss& rng, FrameResult& out) {
  const std::uint64_t responders = draw_binomial(n_, cfg.q, rng);
  out.tx = responders;
  out.single = channel_.observe(
      static_cast<std::uint32_t>(
          responders > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : responders),
      rng);
}

void FrameEngine::exact_lottery(const LotteryFrameConfig& cfg,
                                util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  counts_.assign(cfg.f, 0);
  const hash::GeometricSlotHash geo(cfg.seed);
  for (const Tag& tag : tags_->tags()) {
    ++counts_[geo.slot(tag.id, cfg.f)];
  }
  out.tx = tags_->size();
  out.busy = counts_to_busy(counts_.data(), cfg.f, rng);
}

void FrameEngine::sampled_lottery(const LotteryFrameConfig& cfg,
                                  util::Xoshiro256ss& rng, FrameResult& out) {
  // Sequential multinomial: slot j holds Binomial(n_remaining,
  // p_j / p_remaining) tags, with p_j = 2^-(j+1) and the tail mass
  // clamped into the last slot.
  counts_.assign(cfg.f, 0);
  std::uint64_t remaining = n_;
  double mass_remaining = 1.0;
  for (std::uint32_t j = 0; j + 1 < cfg.f && remaining > 0; ++j) {
    const double pj = std::ldexp(1.0, -static_cast<int>(j) - 1);
    const double cond = pj / mass_remaining;
    const std::uint64_t c =
        draw_binomial(remaining, cond > 1.0 ? 1.0 : cond, rng);
    counts_[j] =
        static_cast<std::uint32_t>(c > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : c);
    remaining -= c;
    mass_remaining -= pj;
    if (mass_remaining <= 0.0) break;
  }
  counts_[cfg.f - 1] += static_cast<std::uint32_t>(
      remaining > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : remaining);
  out.tx = n_;
  out.busy = counts_to_busy(counts_.data(), cfg.f, rng);
}

// ---- blocked batch path ----------------------------------------------

std::vector<FrameResult> FrameEngine::execute_bloom_batch_blocked(
    const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng) {
  const auto start = Clock::now();
  ++counters_.blocked_batches;
  const std::size_t m = requests.size();

  // Hoist everything the walk reads out of the configs into one flat
  // struct. The walk writes slot counts through a uint32_t*, so reads of
  // uint32_t config fields through pointers would have to be reloaded
  // after every increment (they may alias); the copies below are pulled
  // into locals inside the loop, which cannot.
  struct Hoisted {
    HoistedBloomHashes hashes;
    std::size_t offset;         // into batch_counts_
    double p = 1.0;
    std::uint32_t k = 0;
    std::uint32_t w = 0;
    std::uint32_t p_n = 0;
    std::uint32_t threshold16 = 0;  // packed threshold or kNoPack16
    std::array<std::uint32_t, kMaxHashes> seeds32{};
    hash::PersistenceMode persistence = hash::PersistenceMode::kRnBits;
  };
  std::vector<Hoisted> hoisted;
  hoisted.reserve(m);
  std::size_t total_slots = 0;
  for (const FrameRequest& r : requests) {
    const auto& cfg = std::get<BloomFrameConfig>(r.config);
    assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
    assert(cfg.hash != HashScheme::kLightweight ||
           (cfg.w & (cfg.w - 1)) == 0);
    Hoisted h{HoistedBloomHashes(cfg), total_slots, cfg.p,     cfg.k,
              cfg.w,                   cfg.p_n,     {},        {},
              cfg.persistence};
    h.threshold16 = packed16_threshold(cfg.p);
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      h.seeds32[j] = static_cast<std::uint32_t>(cfg.seeds[j]);
    }
    hoisted.push_back(h);
    total_slots += cfg.w;
  }
  batch_counts_.assign(total_slots, 0);
  std::uint32_t* const counts = batch_counts_.data();

  // Packed persistence decisions come from a SplitMix64 stream derived
  // from ONE draw of the caller's generator: splitmix has no loop-carried
  // work beyond a counter increment, so consecutive decisions pipeline
  // where xoshiro's state chain would serialise them. 16-bit slices of
  // its output compared against p·65536 realise Bernoulli(p) exactly.
  // A batch whose frames are all kRnBits never touches it (and so stays
  // bit-identical to sequential execution).
  bool any_packed = false;
  bool any_stochastic = false;
  for (const Hoisted& h : hoisted) {
    if (h.persistence == hash::PersistenceMode::kIdealBernoulli ||
        h.persistence == hash::PersistenceMode::kSharedDraw) {
      any_stochastic = true;
      if (h.threshold16 != kNoPack16) any_packed = true;
    }
  }
  util::SplitMix64 persist((any_stochastic && any_packed) ? rng() : 0);

  // One streaming pass over the population for the whole batch, tiled so
  // each frame's slot counts stay cache-resident while a tile is walked.
  // Persistence is decided before hashing, so silent (tag, slot) pairs
  // never pay for a slot computation — with the paper's p_s ≈ 1/16 that
  // removes ~94% of the hash work the per-frame executors do.
  const auto& all_tags = tags_->tags();
  const std::size_t n_tags = all_tags.size();
  constexpr std::size_t kTile = 2048;
  for (std::size_t t0 = 0; t0 < n_tags; t0 += kTile) {
    const std::size_t t1 = n_tags < t0 + kTile ? n_tags : t0 + kTile;
    for (const Hoisted& h : hoisted) {
      const std::uint32_t k = h.k;
      const std::uint32_t w = h.w;
      std::uint32_t* const frame_counts = counts + h.offset;
      switch (h.persistence) {
        case hash::PersistenceMode::kIdealBernoulli: {
          const std::uint32_t thr = h.threshold16;
          if (thr != kNoPack16 && k == 3) {
            // The paper's k: fully unrolled, no mask loop.
            for (std::size_t t = t0; t < t1; ++t) {
              const std::uint64_t bits = persist();
              const bool h0 = (bits & 0xFFFFU) < thr;
              const bool h1 = ((bits >> 16) & 0xFFFFU) < thr;
              const bool h2 = ((bits >> 32) & 0xFFFFU) < thr;
              if (h0 | h1 | h2) {
                const Tag& tag = all_tags[t];
                if (h0) ++frame_counts[h.hashes.slot(tag, 0, w)];
                if (h1) ++frame_counts[h.hashes.slot(tag, 1, w)];
                if (h2) ++frame_counts[h.hashes.slot(tag, 2, w)];
              }
            }
          } else if (thr != kNoPack16 && k <= 4) {
            for (std::size_t t = t0; t < t1; ++t) {
              // All k decisions from one draw, as a branchless hit mask;
              // most tags decide all-silent and skip the hash loop.
              std::uint64_t bits = persist();
              std::uint32_t mask = 0;
              for (std::uint32_t j = 0; j < k; ++j) {
                mask |= static_cast<std::uint32_t>((bits & 0xFFFFU) < thr)
                        << j;
                bits >>= 16;
              }
              if (mask != 0) {
                const Tag& tag = all_tags[t];
                for (std::uint32_t j = 0; j < k; ++j) {
                  if ((mask >> j) & 1U) {
                    ++frame_counts[h.hashes.slot(tag, j, w)];
                  }
                }
              }
            }
          } else {
            for (std::size_t t = t0; t < t1; ++t) {
              const Tag& tag = all_tags[t];
              for (std::uint32_t j = 0; j < k; ++j) {
                if (rng.bernoulli(h.p)) {
                  ++frame_counts[h.hashes.slot(tag, j, w)];
                }
              }
            }
          }
          break;
        }
        case hash::PersistenceMode::kSharedDraw: {
          const std::uint32_t thr = h.threshold16;
          for (std::size_t t = t0; t < t1; ++t) {
            const bool respond = thr != kNoPack16
                                     ? (persist() & 0xFFFFU) < thr
                                     : rng.bernoulli(h.p);
            if (respond) {
              const Tag& tag = all_tags[t];
              for (std::uint32_t j = 0; j < k; ++j) {
                ++frame_counts[h.hashes.slot(tag, j, w)];
              }
            }
          }
          break;
        }
        case hash::PersistenceMode::kRnBits: {
          const std::uint32_t p_n = h.p_n;
          for (std::size_t t = t0; t < t1; ++t) {
            const Tag& tag = all_tags[t];
            for (std::uint32_t j = 0; j < k; ++j) {
              const std::uint32_t slot = h.hashes.slot(tag, j, w);
              if (hash::rn_bits_respond(tag.rn, slot, h.seeds32[j], p_n)) {
                ++frame_counts[slot];
              }
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // Channel observation per frame, in request order — the same
  // frame-major RNG order sequential execution uses.
  std::vector<FrameResult> results;
  results.reserve(m);
  for (const Hoisted& h : hoisted) {
    FrameResult res;
    res.shape = FrameShape::kBloom;
    res.tx = sum_counts(counts + h.offset, h.w);
    res.busy = counts_to_busy(counts + h.offset, h.w, rng);
    ShapeCounters& c = counters_.of(FrameShape::kBloom);
    c.frames += 1;
    c.slots += h.w;
    c.tag_tx += res.tx;
    results.push_back(std::move(res));
  }
  counters_.of(FrameShape::kBloom).wall_us += elapsed_us(start);
  return results;
}

}  // namespace bfce::rfid
