#include "rfid/frame_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "hash/persistence.hpp"
#include "hash/slot_hash.hpp"
#include "rfid/exec_plan.hpp"
#include "rfid/frame_engine_simd.hpp"
#include "util/parallel.hpp"

namespace bfce::rfid {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Binomial draws go through util::draw_binomial, which serialises the
// lgamma-calling construction of std::binomial_distribution (glibc
// signgam data race under concurrent workers) while keeping draws
// bit-identical to the historical in-line use.
using util::draw_binomial;

std::uint64_t sum_counts(const std::uint32_t* counts, std::size_t w) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < w; ++i) total += counts[i];
  return total;
}

// Packed-persistence threshold and its off-grid sentinel now live in
// rfid/exec_plan.hpp: the planner must mirror the packed-kernel
// detection exactly, so there is one definition for both.
using exec::kNoPack16;
using exec::packed16_threshold;

/// The slot choices of one Bloom frame, premixed once per frame.
struct HoistedBloomHashes {
  HoistedBloomHashes() = default;

  bool lightweight = false;
  std::array<hash::IdealSlotHash, kMaxHashes> ideal{
      hash::IdealSlotHash(0), hash::IdealSlotHash(0), hash::IdealSlotHash(0),
      hash::IdealSlotHash(0), hash::IdealSlotHash(0), hash::IdealSlotHash(0),
      hash::IdealSlotHash(0), hash::IdealSlotHash(0)};
  std::array<std::uint32_t, kMaxHashes> lw{};

  explicit HoistedBloomHashes(const BloomFrameConfig& cfg) {
    lightweight = cfg.hash == HashScheme::kLightweight;
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      if (lightweight) {
        lw[j] = static_cast<std::uint32_t>(cfg.seeds[j]);
      } else {
        ideal[j] = hash::IdealSlotHash(cfg.seeds[j]);
      }
    }
  }

  std::uint32_t slot(const Tag& tag, std::uint32_t j,
                     std::uint32_t w) const noexcept {
    return lightweight ? hash::LightweightSlotHash(lw[j]).slot(tag.rn, w)
                       : ideal[j].slot(tag.id, w);
  }
};

// ---- sharded plan/render/reduce pipeline (ExecutionPolicy::kSharded) --
//
// Every exact-mode frame shape is hoisted into one FramePlan: the slot
// geometry plus a per-tag decision rule. The render stage walks the
// population once per shard, writing shard-private word-packed planes
// (no atomics, no false sharing); the reduce stage merges the planes
// and observes through the channel on the caller's stream in request
// order. Stochastic decisions are counter-addressed by the global tag
// index, so the output is a pure function of the hoisted plan — i.e.
// bit-identical for any shard count.

/// Bitmap words for a w-slot frame, padded to a 64-byte multiple so
/// adjacent shard slices never share a cache line (the parallel walk
/// stays false-sharing-free without atomics).
std::size_t padded_words(std::uint32_t w) noexcept {
  return ((static_cast<std::size_t>(w) + 63) / 64 + 7) & ~std::size_t{7};
}

/// One frame hoisted for the sharded walk: geometry + decision rule.
/// Planes per shape — Bloom/lottery: one busy bitmap at word_offset;
/// ALOHA: an occupancy pair (plane one = "≥ 1 responder", plane two =
/// "≥ 2 responders") at word_offset/word_offset2, enough to reproduce
/// the channel's idle/single/collision categories exactly; single-slot:
/// no plane at all, the per-shard responder tally carries the state.
struct FramePlan {
  FrameShape shape = FrameShape::kBloom;
  HoistedBloomHashes hashes;            ///< Bloom slot choices
  std::size_t word_offset = 0;          ///< plane one, into a shard slice
  std::size_t word_offset2 = 0;         ///< plane two (ALOHA only)
  std::uint64_t base = 0;               ///< counter base (stochastic only)
  double p = 1.0;
  bool stochastic = false;              ///< counter-addressed decisions?
  std::uint32_t k = 0;
  std::uint32_t w = 0;                  ///< slot count (w / f / 1)
  std::uint32_t p_n = 0;
  std::uint32_t threshold16 = 0;
  std::uint32_t lane_mask = 0;          ///< nonzero ⇔ packed kernel applies
  std::array<std::uint32_t, kMaxHashes> seeds32{};
  hash::PersistenceMode persistence = hash::PersistenceMode::kRnBits;
  hash::GeometricSlotHash geo_hash{0};  ///< lottery slot choice
  std::uint64_t premixed = 0;           ///< ALOHA slot / single-slot hash seed
  std::uint64_t threshold64 = 0;        ///< single-slot participation bar
};

/// Plane words this plan needs per shard slice.
std::size_t plan_words(const FramePlan& fr) noexcept {
  switch (fr.shape) {
    case FrameShape::kAloha:
      return 2 * padded_words(fr.w);
    case FrameShape::kSingleSlot:
      return 0;
    default:
      return padded_words(fr.w);
  }
}

FramePlan hoist_plan(const FrameRequest& request, std::size_t word_offset,
                     util::Xoshiro256ss& rng) {
  FramePlan fr;
  fr.shape = request.shape();
  fr.word_offset = word_offset;
  switch (fr.shape) {
    case FrameShape::kBloom: {
      const auto& cfg = std::get<BloomFrameConfig>(request.config);
      assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
      assert(cfg.hash != HashScheme::kLightweight ||
             (cfg.w & (cfg.w - 1)) == 0);
      fr.hashes = HoistedBloomHashes(cfg);
      fr.p = cfg.p;
      fr.k = cfg.k;
      fr.w = cfg.w;
      fr.p_n = cfg.p_n;
      fr.threshold16 = packed16_threshold(cfg.p);
      fr.persistence = cfg.persistence;
      for (std::uint32_t j = 0; j < cfg.k; ++j) {
        fr.seeds32[j] = static_cast<std::uint32_t>(cfg.seeds[j]);
      }
      if (cfg.persistence == hash::PersistenceMode::kIdealBernoulli ||
          cfg.persistence == hash::PersistenceMode::kSharedDraw) {
        // One draw of the caller's stream, mixed with the frame's
        // broadcast parameters: the walk itself is then RNG-free (which
        // is what makes it shard-count invariant), repeated identical
        // configs still get independent decision streams, and everything
        // remains a pure function of the context seed.
        fr.stochastic = true;
        util::SeedMixer mix(rng());
        mix.absorb(static_cast<std::uint64_t>(cfg.w));
        mix.absorb(static_cast<std::uint64_t>(cfg.k));
        for (std::uint32_t j = 0; j < cfg.k; ++j) mix.absorb(cfg.seeds[j]);
        fr.base = mix.value();
        if (fr.threshold16 != kNoPack16) {
          if (cfg.persistence == hash::PersistenceMode::kSharedDraw) {
            fr.lane_mask = detail::lane_mask_for(1);  // one decision per tag
          } else if (cfg.k <= 4) {
            fr.lane_mask = detail::lane_mask_for(cfg.k);
          }
        }
      }
      break;
    }
    case FrameShape::kAloha: {
      const auto& cfg = std::get<AlohaFrameConfig>(request.config);
      fr.w = cfg.f;
      fr.p = cfg.p;
      // The tile kernel re-derives IdealSlotHash's multiply-shift from
      // the premixed seed (it needs the raw 64-bit hash for its vector
      // reduction), so hoist the premix rather than the hasher object.
      fr.premixed = hash::premix_seed(cfg.seed);
      fr.word_offset2 = word_offset + padded_words(cfg.f);
      if (cfg.p < 1.0) {
        // Same one-draw discipline as stochastic Bloom persistence: the
        // per-tag participation draws come from a counter-addressed
        // stream, not the caller's generator.
        fr.stochastic = true;
        util::SeedMixer mix(rng());
        mix.absorb(static_cast<std::uint64_t>(cfg.f));
        mix.absorb(cfg.p);
        mix.absorb(cfg.seed);
        fr.base = mix.value();
      }
      break;
    }
    case FrameShape::kSingleSlot: {
      const auto& cfg = std::get<SingleSlotConfig>(request.config);
      fr.w = 1;
      fr.threshold64 =
          cfg.q >= 1.0 ? ~0ULL
                       : static_cast<std::uint64_t>(
                             cfg.q * 18446744073709551616.0 /* 2^64 */);
      fr.premixed = hash::premix_seed(cfg.seed);
      break;
    }
    case FrameShape::kLottery: {
      const auto& cfg = std::get<LotteryFrameConfig>(request.config);
      fr.w = cfg.f;
      fr.geo_hash = hash::GeometricSlotHash(cfg.seed);
      break;
    }
  }
  return fr;
}

/// Merged shard bitmap → busy map through the channel. The merged
/// bitmap IS the busy map under a perfect channel (it senses exactly
/// what was transmitted and draws nothing). An imperfect channel is
/// replayed slot-major on the caller's stream — the same draw order the
/// sequential path uses; observe() branches only on busy-vs-idle
/// (single and collision behave identically), so presenting the bitmap
/// as 0/2 repliers is draw-for-draw equivalent to the counts.
util::BitVector bitmap_to_busy(const Channel& channel,
                               const std::uint64_t* words, std::size_t w,
                               util::Xoshiro256ss& rng) {
  util::BitVector busy(w);
  if (channel.model().perfect()) {
    for (std::size_t wi = 0; wi < busy.word_count(); ++wi) {
      busy.set_word(wi, words[wi]);
    }
    return busy;
  }
  for (std::size_t wi = 0; wi < busy.word_count(); ++wi) {
    const std::size_t begin = wi << 6;
    const std::size_t end = std::min(w, begin + 64);
    const std::uint64_t in = words[wi];
    std::uint64_t packed = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t repliers =
          ((in >> (i - begin)) & 1ULL) != 0 ? 2U : 0U;
      if (is_busy(channel.observe(repliers, rng))) {
        packed |= 1ULL << (i - begin);
      }
    }
    busy.set_word(wi, packed);
  }
  return busy;
}

/// The sharded population walk — the render + reduce stages over
/// hoisted FramePlans of any shape mix: shard s owns the contiguous tag
/// range [s·chunk, (s+1)·chunk) and renders every frame's decisions for
/// its tags into private word-packed planes; shards then merge with
/// word-wide ORs (plus the cross-shard ≥2 term for ALOHA and responder
/// sums for single-slot). Every decision is a pure function of (frame
/// base, global tag index), so the output is bit-identical for any
/// shard count and any ISA. Returns the per-frame results in request
/// order (channel observation consumes the caller's stream frame-major,
/// exactly like the sequential paths).
std::vector<FrameResult> run_sharded_frames(
    const TagPopulation& tags, const Channel& channel,
    const std::vector<const FrameRequest*>& reqs,
    std::uint32_t shard_count, bool allow_simd, util::Xoshiro256ss& rng,
    std::vector<std::uint64_t>& shard_bits,
    std::vector<std::uint64_t>& shard_tx,
    std::vector<std::uint16_t>& lane_scratch) {
  const std::size_t m = reqs.size();
  std::vector<FramePlan> frames;
  frames.reserve(m);
  std::size_t words_stride = 0;
  for (const FrameRequest* req : reqs) {
    frames.push_back(hoist_plan(*req, words_stride, rng));
    words_stride += plan_words(frames.back());
  }

  const auto& all_tags = tags.tags();
  const std::size_t n_tags = all_tags.size();
  if (shard_count < 1) shard_count = 1;
  const std::size_t chunk = (n_tags + shard_count - 1) / shard_count;

  // Plane storage is sized but NOT zeroed here: each shard zero-fills
  // its own slice inside the parallel region, so the first touch of a
  // cold page — and with it its NUMA placement — lands on the worker
  // that owns the shard's tag range. The executor hands shard s to the
  // same initial lane on every dispatch, so warm re-dispatches keep the
  // affinity.
  const std::size_t total_words =
      static_cast<std::size_t>(shard_count) * words_stride;
  if (shard_bits.size() < total_words) shard_bits.resize(total_words);
  shard_tx.assign(static_cast<std::size_t>(shard_count) * m, 0);
  lane_scratch.resize(static_cast<std::size_t>(shard_count) *
                      detail::kShardLaneCapacity);

  util::parallel_for(
      0, shard_count,
      [&](std::size_t s) {
        const std::size_t s_begin = s * chunk;
        const std::size_t s_end = std::min(n_tags, s_begin + chunk);
        std::uint64_t* const bits = shard_bits.data() + s * words_stride;
        std::fill(bits, bits + words_stride, std::uint64_t{0});
        std::uint16_t* const lane =
            lane_scratch.data() + s * detail::kShardLaneCapacity;
        std::vector<std::uint64_t> tx(m, 0);
        for (std::size_t t0 = s_begin; t0 < s_end;
             t0 += detail::kShardTile) {
          const std::size_t t1 = std::min(s_end, t0 + detail::kShardTile);
          for (std::size_t f = 0; f < m; ++f) {
            const FramePlan& fr = frames[f];
            std::uint64_t* const fb = bits + fr.word_offset;
            const std::uint32_t k = fr.k;
            const std::uint32_t w = fr.w;
            if (fr.shape == FrameShape::kAloha) {
              // Occupancy pair: the second-or-later responder of a slot
              // raises its ≥2 bit. Participation (p < 1) is decided by
              // the counter-addressed stream, one decision per global
              // tag index; the two-plane tile kernel (AVX-512 or its
              // bit-identical scalar span) does the rendering.
              tx[f] += detail::aloha_render_tile(
                  all_tags.data(), t0, t1, fr.premixed, w, fr.stochastic,
                  fr.base, fr.p, allow_simd, fb, bits + fr.word_offset2);
            } else if (fr.shape == FrameShape::kSingleSlot) {
              // No plane: the shard's responder tally IS the state.
              const std::uint64_t bar = fr.threshold64;
              const std::uint64_t premixed = fr.premixed;
              std::uint64_t responders = 0;
              for (std::size_t t = t0; t < t1; ++t) {
                if (hash::fmix64(all_tags[t].id ^ premixed) < bar) {
                  ++responders;
                }
              }
              tx[f] += responders;
            } else if (fr.shape == FrameShape::kLottery) {
              for (std::size_t t = t0; t < t1; ++t) {
                const std::uint32_t slot =
                    fr.geo_hash.slot(all_tags[t].id, w);
                fb[slot >> 6] |= 1ULL << (slot & 63U);
              }
              tx[f] += t1 - t0;  // every tag transmits in a lottery frame
            } else if (fr.lane_mask != 0) {
              // Packed kernel: dense responder lane ids, one
              // well-predicted drain loop.
              const std::size_t nresp = detail::bloom_decide_tile(
                  fr.base, t0, t1, fr.threshold16, fr.lane_mask, allow_simd,
                  lane);
              if (fr.persistence == hash::PersistenceMode::kSharedDraw) {
                for (std::size_t i = 0; i < nresp; ++i) {
                  const Tag& tag = all_tags[t0 + (lane[i] >> 2)];
                  for (std::uint32_t j = 0; j < k; ++j) {
                    const std::uint32_t slot = fr.hashes.slot(tag, j, w);
                    fb[slot >> 6] |= 1ULL << (slot & 63U);
                  }
                }
                tx[f] += nresp * k;
              } else {
                for (std::size_t i = 0; i < nresp; ++i) {
                  const std::uint32_t id = lane[i];
                  const Tag& tag = all_tags[t0 + (id >> 2)];
                  const std::uint32_t slot =
                      fr.hashes.slot(tag, id & 3U, w);
                  fb[slot >> 6] |= 1ULL << (slot & 63U);
                }
                tx[f] += nresp;
              }
            } else {
              switch (fr.persistence) {
                case hash::PersistenceMode::kIdealBernoulli:
                  // Off the 1/65536 grid (or k > 4): one
                  // counter-addressed unit double per (tag, hash).
                  for (std::size_t t = t0; t < t1; ++t) {
                    const Tag& tag = all_tags[t];
                    for (std::uint32_t j = 0; j < k; ++j) {
                      const std::uint64_t z = util::splitmix_at(
                          fr.base,
                          t * static_cast<std::uint64_t>(k) + j);
                      if (static_cast<double>(z >> 11) * 0x1.0p-53 <
                          fr.p) {
                        const std::uint32_t slot =
                            fr.hashes.slot(tag, j, w);
                        fb[slot >> 6] |= 1ULL << (slot & 63U);
                        ++tx[f];
                      }
                    }
                  }
                  break;
                case hash::PersistenceMode::kSharedDraw:
                  for (std::size_t t = t0; t < t1; ++t) {
                    const std::uint64_t z = util::splitmix_at(fr.base, t);
                    if (static_cast<double>(z >> 11) * 0x1.0p-53 < fr.p) {
                      const Tag& tag = all_tags[t];
                      for (std::uint32_t j = 0; j < k; ++j) {
                        const std::uint32_t slot =
                            fr.hashes.slot(tag, j, w);
                        fb[slot >> 6] |= 1ULL << (slot & 63U);
                      }
                      tx[f] += k;
                    }
                  }
                  break;
                case hash::PersistenceMode::kRnBits:
                  // Deterministic tag-side decisions: no RNG on any
                  // walk, so this stays bit-identical to the
                  // sequential executor as well.
                  for (std::size_t t = t0; t < t1; ++t) {
                    const Tag& tag = all_tags[t];
                    for (std::uint32_t j = 0; j < k; ++j) {
                      const std::uint32_t slot = fr.hashes.slot(tag, j, w);
                      if (hash::rn_bits_respond(tag.rn, slot,
                                                fr.seeds32[j], fr.p_n)) {
                        fb[slot >> 6] |= 1ULL << (slot & 63U);
                        ++tx[f];
                      }
                    }
                  }
                  break;
                default:
                  break;
              }
            }
          }
        }
        for (std::size_t f = 0; f < m; ++f) shard_tx[s * m + f] = tx[f];
      },
      shard_count);

  // Reduce: merge shard planes into shard 0's slice, then observe each
  // frame through the channel in request order.
  std::vector<FrameResult> results;
  results.reserve(m);
  for (std::size_t f = 0; f < m; ++f) {
    const FramePlan& fr = frames[f];
    const std::size_t words = (static_cast<std::size_t>(fr.w) + 63) / 64;
    std::uint64_t tx = 0;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      tx += shard_tx[s * m + f];
    }
    FrameResult res;
    res.shape = fr.shape;
    res.tx = tx;
    switch (fr.shape) {
      case FrameShape::kSingleSlot: {
        // The summed responder tally is the whole frame state.
        res.single = channel.observe(
            static_cast<std::uint32_t>(
                tx > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : tx),
            rng);
        break;
      }
      case FrameShape::kAloha: {
        std::uint64_t* const one = shard_bits.data() + fr.word_offset;
        std::uint64_t* const two = shard_bits.data() + fr.word_offset2;
        for (std::uint32_t s = 1; s < shard_count; ++s) {
          const std::uint64_t* const one_s =
              shard_bits.data() + s * words_stride + fr.word_offset;
          const std::uint64_t* const two_s =
              shard_bits.data() + s * words_stride + fr.word_offset2;
          for (std::size_t i = 0; i < words; ++i) {
            // A slot collides if any shard saw ≥ 2 responders, or two
            // different shards each saw ≥ 1.
            const std::uint64_t os = one_s[i];
            two[i] |= two_s[i] | (one[i] & os);
            one[i] |= os;
          }
        }
        // Slot-major observation with the exact occupancy category
        // (0 / 1 / ≥2) — draw-for-draw identical to observing the true
        // per-slot counts.
        res.states.resize(fr.w);
        for (std::uint32_t i = 0; i < fr.w; ++i) {
          const std::uint32_t category =
              ((two[i >> 6] >> (i & 63U)) & 1ULL) != 0
                  ? 2U
                  : static_cast<std::uint32_t>(
                        (one[i >> 6] >> (i & 63U)) & 1ULL);
          res.states[i] = channel.observe(category, rng);
        }
        break;
      }
      default: {  // Bloom and lottery share the one-bitmap reduce.
        std::uint64_t* const merged = shard_bits.data() + fr.word_offset;
        for (std::uint32_t s = 1; s < shard_count; ++s) {
          const std::uint64_t* const src =
              shard_bits.data() + s * words_stride + fr.word_offset;
          for (std::size_t i = 0; i < words; ++i) merged[i] |= src[i];
        }
        res.busy = bitmap_to_busy(channel, merged, fr.w, rng);
        break;
      }
    }
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace

const char* to_cstring(FrameShape shape) noexcept {
  switch (shape) {
    case FrameShape::kBloom:
      return "bloom";
    case FrameShape::kAloha:
      return "aloha";
    case FrameShape::kSingleSlot:
      return "single";
    case FrameShape::kLottery:
      return "lottery";
  }
  return "?";
}

util::BitVector FrameEngine::counts_to_busy(const std::uint32_t* counts,
                                            std::size_t w,
                                            util::Xoshiro256ss& rng) const {
  // Word-at-a-time packing: 64 slot observations accumulate in a
  // register, one store per word, instead of 64 read-modify-write
  // BitVector::set calls. The slot-major observation order (and with it
  // the channel's RNG stream) is unchanged.
  util::BitVector busy(w);
  const bool perfect = channel_.model().perfect();
  for (std::size_t wi = 0; wi < busy.word_count(); ++wi) {
    const std::size_t begin = wi << 6;
    const std::size_t end = std::min(w, begin + 64);
    std::uint64_t packed = 0;
    if (perfect) {
      // Perfect channel: busy ⇔ any replier, no RNG — branchless.
      for (std::size_t i = begin; i < end; ++i) {
        packed |= static_cast<std::uint64_t>(counts[i] != 0) << (i - begin);
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        if (is_busy(channel_.observe(counts[i], rng))) {
          packed |= 1ULL << (i - begin);
        }
      }
    }
    busy.set_word(wi, packed);
  }
  return busy;
}

FrameResult FrameEngine::execute(const FrameRequest& request,
                                 util::Xoshiro256ss& rng) {
  const FrameRequest* const req_ptr = &request;
  const bool walk_sharded =
      policy_.is_sharded() ||
      (policy_.is_auto() && use_sharded_path(&req_ptr, 1));
  if (mode_ == FrameMode::kSampled && walk_sharded) {
    // Sharded sampled engines route every frame through the batched
    // sampler (which does its own counter accounting). A one-frame
    // batch draws the caller's stream exactly like the legacy executor
    // for the non-scatter shapes (single-slot, lottery).
    std::vector<FrameRequest> one{request};
    std::vector<FrameResult> res = execute_sampled_batch(one, rng);
    return std::move(res.front());
  }
  const auto start = Clock::now();
  FrameResult out;
  out.shape = request.shape();
  const bool sharded_exact =
      mode_ == FrameMode::kExact && walk_sharded && tags_ != nullptr;
  std::uint64_t slots = 0;
  switch (out.shape) {
    case FrameShape::kBloom: {
      const auto& cfg = std::get<BloomFrameConfig>(request.config);
      slots = cfg.w;
      if (mode_ == FrameMode::kExact) {
        if (sharded_exact) {
          exact_sharded(request, rng, out);
        } else {
          exact_bloom(cfg, rng, out);
        }
      } else {
        sampled_bloom(cfg, rng, out);
      }
      break;
    }
    case FrameShape::kAloha: {
      const auto& cfg = std::get<AlohaFrameConfig>(request.config);
      slots = cfg.f;
      if (mode_ == FrameMode::kExact) {
        if (sharded_exact) {
          exact_sharded(request, rng, out);
        } else {
          exact_aloha(cfg, rng, out);
        }
      } else {
        sampled_aloha(cfg, rng, out);
      }
      break;
    }
    case FrameShape::kSingleSlot: {
      const auto& cfg = std::get<SingleSlotConfig>(request.config);
      slots = 1;
      if (mode_ == FrameMode::kExact) {
        if (sharded_exact) {
          exact_sharded(request, rng, out);
        } else {
          exact_single(cfg, rng, out);
        }
      } else {
        sampled_single(cfg, rng, out);
      }
      break;
    }
    case FrameShape::kLottery: {
      const auto& cfg = std::get<LotteryFrameConfig>(request.config);
      slots = cfg.f;
      if (mode_ == FrameMode::kExact) {
        if (sharded_exact) {
          exact_sharded(request, rng, out);
        } else {
          exact_lottery(cfg, rng, out);
        }
      } else {
        sampled_lottery(cfg, rng, out);
      }
      break;
    }
  }
  ShapeCounters& c = counters_.of(out.shape);
  c.frames += 1;
  c.slots += slots;
  c.tag_tx += out.tx;
  c.wall_us += elapsed_us(start);
  return out;
}

std::vector<FrameResult> FrameEngine::execute_batch(
    const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng) {
  ++counters_.batches;
  if ((policy_.is_sharded() || policy_.is_auto()) && !requests.empty()) {
    bool walk_sharded = policy_.is_sharded();
    if (!walk_sharded) {
      std::vector<const FrameRequest*> reqs;
      reqs.reserve(requests.size());
      for (const FrameRequest& r : requests) reqs.push_back(&r);
      walk_sharded = use_sharded_path(reqs.data(), reqs.size());
    }
    if (walk_sharded) {
      // One unified pipeline per mode, any shape mix.
      if (mode_ == FrameMode::kExact && tags_ != nullptr) {
        return execute_batch_sharded(requests, rng);
      }
      if (mode_ == FrameMode::kSampled) {
        return execute_sampled_batch(requests, rng);
      }
    }
  }
  bool all_bloom = !requests.empty();
  for (const FrameRequest& r : requests) {
    if (r.shape() != FrameShape::kBloom) {
      all_bloom = false;
      break;
    }
  }
  if (all_bloom && mode_ == FrameMode::kExact && tags_ != nullptr &&
      requests.size() >= 2) {
    return execute_bloom_batch_blocked(requests, rng);
  }
  std::vector<FrameResult> results;
  results.reserve(requests.size());
  for (const FrameRequest& r : requests) results.push_back(execute(r, rng));
  return results;
}

// ---- scalar paths (bit-identical to the legacy free executors) --------
//
// These are the sequential-policy executors and the law reference the
// equivalence suite tests the sharded pipeline against. Under a sharded
// policy the exact_* bodies are bypassed by the plan/render/reduce walk
// and the sampled_* bodies by the batched sampler; they remain the
// binding definition of the caller-RNG stream contract.

void FrameEngine::exact_bloom(const BloomFrameConfig& cfg,
                              util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
  assert(cfg.hash != HashScheme::kLightweight ||
         (cfg.w & (cfg.w - 1)) == 0);  // lightweight bitget needs 2^b slots
  counts_.assign(cfg.w, 0);
  const HoistedBloomHashes hashes(cfg);

  for (const Tag& tag : tags_->tags()) {
    // A tag that uses one shared persistence draw decides once per frame.
    bool shared_respond = true;
    if (cfg.persistence == hash::PersistenceMode::kSharedDraw) {
      shared_respond = rng.bernoulli(cfg.p);
      if (!shared_respond) continue;
    }
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      const std::uint32_t slot = hashes.slot(tag, j, cfg.w);
      bool respond;
      switch (cfg.persistence) {
        case hash::PersistenceMode::kIdealBernoulli:
          respond = rng.bernoulli(cfg.p);
          break;
        case hash::PersistenceMode::kSharedDraw:
          respond = shared_respond;
          break;
        case hash::PersistenceMode::kRnBits:
          respond = hash::rn_bits_respond(
              tag.rn, slot, static_cast<std::uint32_t>(cfg.seeds[j]), cfg.p_n);
          break;
        default:
          respond = false;
      }
      if (respond) ++counts_[slot];
    }
  }
  out.tx = sum_counts(counts_.data(), cfg.w);
  out.busy = counts_to_busy(counts_.data(), cfg.w, rng);
}

void FrameEngine::sampled_bloom(const BloomFrameConfig& cfg,
                                util::Xoshiro256ss& rng, FrameResult& out) {
  assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
  // Every (tag, hash) pair responds with probability p, independently
  // under the marginal law; the total response count is Binomial(k·n, p)
  // and each response lands in a uniform slot. (Within-tag slot
  // distinctness is a O(k²/w) correction, negligible for k=3, w=8192;
  // tests compare the two executors.)
  const std::uint64_t responses =
      draw_binomial(static_cast<std::uint64_t>(n_) * cfg.k, cfg.p, rng);
  counts_.assign(cfg.w, 0);
  for (std::uint64_t r = 0; r < responses; ++r) {
    ++counts_[rng.below(cfg.w)];
  }
  out.tx = responses;
  out.busy = counts_to_busy(counts_.data(), cfg.w, rng);
}

void FrameEngine::exact_aloha(const AlohaFrameConfig& cfg,
                              util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  counts_.assign(cfg.f, 0);
  const hash::IdealSlotHash slot_hash(cfg.seed);
  for (const Tag& tag : tags_->tags()) {
    if (cfg.p < 1.0 && !rng.bernoulli(cfg.p)) continue;
    ++counts_[slot_hash.slot(tag.id, cfg.f)];
  }
  out.tx = sum_counts(counts_.data(), cfg.f);
  out.states.resize(cfg.f);
  for (std::uint32_t i = 0; i < cfg.f; ++i) {
    out.states[i] = channel_.observe(counts_[i], rng);
  }
}

void FrameEngine::sampled_aloha(const AlohaFrameConfig& cfg,
                                util::Xoshiro256ss& rng, FrameResult& out) {
  const std::uint64_t responders = draw_binomial(n_, cfg.p, rng);
  out.tx = responders;
  counts_.assign(cfg.f, 0);
  for (std::uint64_t r = 0; r < responders; ++r) {
    ++counts_[rng.below(cfg.f)];
  }
  out.states.resize(cfg.f);
  for (std::uint32_t i = 0; i < cfg.f; ++i) {
    out.states[i] = channel_.observe(counts_[i], rng);
  }
}

void FrameEngine::exact_single(const SingleSlotConfig& cfg,
                               util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  // ZOE's participation rule: hash the tagID with the per-frame seed and
  // compare against q — no tag-side RNG required.
  const std::uint64_t threshold =
      cfg.q >= 1.0 ? ~0ULL
                   : static_cast<std::uint64_t>(
                         cfg.q * 18446744073709551616.0 /* 2^64 */);
  const std::uint64_t premixed = hash::premix_seed(cfg.seed);
  std::uint32_t responders = 0;
  for (const Tag& tag : tags_->tags()) {
    if (hash::fmix64(tag.id ^ premixed) < threshold) ++responders;
  }
  out.tx = responders;
  out.single = channel_.observe(responders, rng);
}

void FrameEngine::sampled_single(const SingleSlotConfig& cfg,
                                 util::Xoshiro256ss& rng, FrameResult& out) {
  const std::uint64_t responders = draw_binomial(n_, cfg.q, rng);
  out.tx = responders;
  out.single = channel_.observe(
      static_cast<std::uint32_t>(
          responders > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : responders),
      rng);
}

void FrameEngine::exact_lottery(const LotteryFrameConfig& cfg,
                                util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  counts_.assign(cfg.f, 0);
  const hash::GeometricSlotHash geo(cfg.seed);
  for (const Tag& tag : tags_->tags()) {
    ++counts_[geo.slot(tag.id, cfg.f)];
  }
  out.tx = tags_->size();
  out.busy = counts_to_busy(counts_.data(), cfg.f, rng);
}

void FrameEngine::sampled_lottery(const LotteryFrameConfig& cfg,
                                  util::Xoshiro256ss& rng, FrameResult& out) {
  // Sequential multinomial: slot j holds Binomial(n_remaining,
  // p_j / p_remaining) tags, with p_j = 2^-(j+1) and the tail mass
  // clamped into the last slot.
  counts_.assign(cfg.f, 0);
  std::uint64_t remaining = n_;
  double mass_remaining = 1.0;
  for (std::uint32_t j = 0; j + 1 < cfg.f && remaining > 0; ++j) {
    const double pj = std::ldexp(1.0, -static_cast<int>(j) - 1);
    const double cond = pj / mass_remaining;
    const std::uint64_t c =
        draw_binomial(remaining, cond > 1.0 ? 1.0 : cond, rng);
    counts_[j] =
        static_cast<std::uint32_t>(c > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : c);
    remaining -= c;
    mass_remaining -= pj;
    if (mass_remaining <= 0.0) break;
  }
  counts_[cfg.f - 1] += static_cast<std::uint32_t>(
      remaining > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : remaining);
  out.tx = n_;
  out.busy = counts_to_busy(counts_.data(), cfg.f, rng);
}

// ---- blocked batch path ----------------------------------------------

std::vector<FrameResult> FrameEngine::execute_bloom_batch_blocked(
    const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng) {
  const auto start = Clock::now();
  ++counters_.blocked_batches;
  const std::size_t m = requests.size();

  // Hoist everything the walk reads out of the configs into one flat
  // struct. The walk writes slot counts through a uint32_t*, so reads of
  // uint32_t config fields through pointers would have to be reloaded
  // after every increment (they may alias); the copies below are pulled
  // into locals inside the loop, which cannot.
  struct Hoisted {
    HoistedBloomHashes hashes;
    std::size_t offset;         // into batch_counts_
    double p = 1.0;
    std::uint32_t k = 0;
    std::uint32_t w = 0;
    std::uint32_t p_n = 0;
    std::uint32_t threshold16 = 0;  // packed threshold or kNoPack16
    std::array<std::uint32_t, kMaxHashes> seeds32{};
    hash::PersistenceMode persistence = hash::PersistenceMode::kRnBits;
  };
  std::vector<Hoisted> hoisted;
  hoisted.reserve(m);
  std::size_t total_slots = 0;
  for (const FrameRequest& r : requests) {
    const auto& cfg = std::get<BloomFrameConfig>(r.config);
    assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
    assert(cfg.hash != HashScheme::kLightweight ||
           (cfg.w & (cfg.w - 1)) == 0);
    Hoisted h{HoistedBloomHashes(cfg), total_slots, cfg.p,     cfg.k,
              cfg.w,                   cfg.p_n,     {},        {},
              cfg.persistence};
    h.threshold16 = packed16_threshold(cfg.p);
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      h.seeds32[j] = static_cast<std::uint32_t>(cfg.seeds[j]);
    }
    hoisted.push_back(h);
    total_slots += cfg.w;
  }
  batch_counts_.assign(total_slots, 0);
  std::uint32_t* const counts = batch_counts_.data();

  // Packed persistence decisions come from a SplitMix64 stream derived
  // from ONE draw of the caller's generator: splitmix has no loop-carried
  // work beyond a counter increment, so consecutive decisions pipeline
  // where xoshiro's state chain would serialise them. 16-bit slices of
  // its output compared against p·65536 realise Bernoulli(p) exactly.
  // A batch whose frames are all kRnBits never touches it (and so stays
  // bit-identical to sequential execution).
  bool any_packed = false;
  bool any_stochastic = false;
  for (const Hoisted& h : hoisted) {
    if (h.persistence == hash::PersistenceMode::kIdealBernoulli ||
        h.persistence == hash::PersistenceMode::kSharedDraw) {
      any_stochastic = true;
      if (h.threshold16 != kNoPack16) any_packed = true;
    }
  }
  util::SplitMix64 persist((any_stochastic && any_packed) ? rng() : 0);

  // One streaming pass over the population for the whole batch, tiled so
  // each frame's slot counts stay cache-resident while a tile is walked.
  // Persistence is decided before hashing, so silent (tag, slot) pairs
  // never pay for a slot computation — with the paper's p_s ≈ 1/16 that
  // removes ~94% of the hash work the per-frame executors do.
  const auto& all_tags = tags_->tags();
  const std::size_t n_tags = all_tags.size();
  constexpr std::size_t kTile = 2048;
  for (std::size_t t0 = 0; t0 < n_tags; t0 += kTile) {
    const std::size_t t1 = n_tags < t0 + kTile ? n_tags : t0 + kTile;
    for (const Hoisted& h : hoisted) {
      const std::uint32_t k = h.k;
      const std::uint32_t w = h.w;
      std::uint32_t* const frame_counts = counts + h.offset;
      switch (h.persistence) {
        case hash::PersistenceMode::kIdealBernoulli: {
          const std::uint32_t thr = h.threshold16;
          if (thr != kNoPack16 && k == 3) {
            // The paper's k: fully unrolled, no mask loop.
            for (std::size_t t = t0; t < t1; ++t) {
              const std::uint64_t bits = persist();
              const bool h0 = (bits & 0xFFFFU) < thr;
              const bool h1 = ((bits >> 16) & 0xFFFFU) < thr;
              const bool h2 = ((bits >> 32) & 0xFFFFU) < thr;
              if (h0 | h1 | h2) {
                const Tag& tag = all_tags[t];
                if (h0) ++frame_counts[h.hashes.slot(tag, 0, w)];
                if (h1) ++frame_counts[h.hashes.slot(tag, 1, w)];
                if (h2) ++frame_counts[h.hashes.slot(tag, 2, w)];
              }
            }
          } else if (thr != kNoPack16 && k <= 4) {
            for (std::size_t t = t0; t < t1; ++t) {
              // All k decisions from one draw, as a branchless hit mask;
              // most tags decide all-silent and skip the hash loop.
              std::uint64_t bits = persist();
              std::uint32_t mask = 0;
              for (std::uint32_t j = 0; j < k; ++j) {
                mask |= static_cast<std::uint32_t>((bits & 0xFFFFU) < thr)
                        << j;
                bits >>= 16;
              }
              if (mask != 0) {
                const Tag& tag = all_tags[t];
                for (std::uint32_t j = 0; j < k; ++j) {
                  if ((mask >> j) & 1U) {
                    ++frame_counts[h.hashes.slot(tag, j, w)];
                  }
                }
              }
            }
          } else {
            for (std::size_t t = t0; t < t1; ++t) {
              const Tag& tag = all_tags[t];
              for (std::uint32_t j = 0; j < k; ++j) {
                if (rng.bernoulli(h.p)) {
                  ++frame_counts[h.hashes.slot(tag, j, w)];
                }
              }
            }
          }
          break;
        }
        case hash::PersistenceMode::kSharedDraw: {
          const std::uint32_t thr = h.threshold16;
          for (std::size_t t = t0; t < t1; ++t) {
            const bool respond = thr != kNoPack16
                                     ? (persist() & 0xFFFFU) < thr
                                     : rng.bernoulli(h.p);
            if (respond) {
              const Tag& tag = all_tags[t];
              for (std::uint32_t j = 0; j < k; ++j) {
                ++frame_counts[h.hashes.slot(tag, j, w)];
              }
            }
          }
          break;
        }
        case hash::PersistenceMode::kRnBits: {
          const std::uint32_t p_n = h.p_n;
          for (std::size_t t = t0; t < t1; ++t) {
            const Tag& tag = all_tags[t];
            for (std::uint32_t j = 0; j < k; ++j) {
              const std::uint32_t slot = h.hashes.slot(tag, j, w);
              if (hash::rn_bits_respond(tag.rn, slot, h.seeds32[j], p_n)) {
                ++frame_counts[slot];
              }
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // Channel observation per frame, in request order — the same
  // frame-major RNG order sequential execution uses.
  std::vector<FrameResult> results;
  results.reserve(m);
  for (const Hoisted& h : hoisted) {
    FrameResult res;
    res.shape = FrameShape::kBloom;
    res.tx = sum_counts(counts + h.offset, h.w);
    res.busy = counts_to_busy(counts + h.offset, h.w, rng);
    ShapeCounters& c = counters_.of(FrameShape::kBloom);
    c.frames += 1;
    c.slots += h.w;
    c.tag_tx += res.tx;
    results.push_back(std::move(res));
  }
  counters_.of(FrameShape::kBloom).wall_us += elapsed_us(start);
  return results;
}

// ---- sharded exact path ----------------------------------------------

bool FrameEngine::use_sharded_path(const FrameRequest* const* requests,
                                   std::size_t count) {
  std::uint32_t hint =
      policy_.shards != 0 ? policy_.shards : util::default_thread_count();
  if (hint < 1) hint = 1;
  const bool simd = policy_.allow_simd && detail::simd_supported();
  const bool sharded = exec::plan_prefers_sharded(
      exec::CostModel::active(), requests, count, n_, mode_, hint, simd);
  if (sharded) {
    ++counters_.auto_sharded;
  } else {
    ++counters_.auto_sequential;
  }
  return sharded;
}

std::uint32_t FrameEngine::effective_shards(std::size_t work) const noexcept {
  std::uint32_t count =
      policy_.shards != 0 ? policy_.shards : util::default_thread_count();
  if (count < 1) count = 1;
  const std::size_t per_shard =
      policy_.min_tags_per_shard > 0 ? policy_.min_tags_per_shard : 1;
  const std::size_t justified = work / per_shard;
  if (justified < count) {
    count = static_cast<std::uint32_t>(justified < 1 ? 1 : justified);
  }
  return count;
}

void FrameEngine::exact_sharded(const FrameRequest& request,
                                util::Xoshiro256ss& rng, FrameResult& out) {
  assert(tags_ != nullptr);
  ++counters_.sharded_walks;
  std::vector<FrameResult> results = run_sharded_frames(
      *tags_, channel_, {&request}, effective_shards(n_), policy_.allow_simd,
      rng, shard_bits_, shard_tx_, lane_scratch_);
  out = std::move(results.front());
}

std::vector<FrameResult> FrameEngine::execute_batch_sharded(
    const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng) {
  const auto start = Clock::now();
  ++counters_.sharded_walks;
  std::vector<const FrameRequest*> reqs;
  reqs.reserve(requests.size());
  for (const FrameRequest& r : requests) reqs.push_back(&r);
  std::vector<FrameResult> results = run_sharded_frames(
      *tags_, channel_, reqs, effective_shards(n_), policy_.allow_simd, rng,
      shard_bits_, shard_tx_, lane_scratch_);
  for (std::size_t f = 0; f < results.size(); ++f) {
    ShapeCounters& c = counters_.of(results[f].shape);
    c.frames += 1;
    c.slots += results[f].shape == FrameShape::kSingleSlot
                   ? 1
                   : results[f].shape == FrameShape::kAloha
                         ? static_cast<std::uint64_t>(results[f].states.size())
                         : static_cast<std::uint64_t>(results[f].busy.size());
    c.tag_tx += results[f].tx;
  }
  // Wall time is attributed to the first request's shape — the walk is
  // one fused pass, there is no per-shape split to measure.
  counters_.of(requests.front().shape()).wall_us += elapsed_us(start);
  return results;
}

// ---- batched sampler (sampled mode under a sharded policy) ------------

std::vector<FrameResult> FrameEngine::execute_sampled_batch(
    const std::vector<FrameRequest>& requests, util::Xoshiro256ss& rng) {
  const auto start = Clock::now();
  ++counters_.sharded_walks;
  ++counters_.sampled_batches;
  const std::size_t m = requests.size();

  /// One sampled frame's plan. Bloom and ALOHA scatter `draws` uniform
  /// responses into word-packed shard planes (a busy bitmap for Bloom —
  /// the channel branches only on busy-vs-idle, so "≥ 1 response" is
  /// draw-for-draw equivalent to the counts — and the ≥1/≥2 occupancy
  /// pair for ALOHA, whose idle/single/collision categories the channel
  /// observes exactly); single-slot needs only its responder count;
  /// lottery's dependent multinomial is drawn straight into the merged
  /// counts in phase 1 (its draws must stay on the caller's stream in
  /// request order — they cannot be counter-addressed without changing
  /// the law).
  struct SampledPlan {
    FrameShape shape = FrameShape::kBloom;
    std::uint32_t w = 1;                ///< slot count (w / f / 1)
    std::size_t offset = 0;             ///< lottery counts, into batch_counts_
    std::size_t word_offset = 0;        ///< plane one, into a shard slice
    std::size_t word_offset2 = 0;       ///< plane two (ALOHA only)
    std::uint64_t draws = 0;            ///< uniform slot-scatter draws
    std::uint64_t base = 0;             ///< counter base for the scatter
    std::uint64_t responders = 0;       ///< single-slot responder count
  };

  // Layout pass (no RNG): merged slot counts for the lottery frames,
  // cache-line-padded word-packed planes for the scatter shapes (same
  // padding rationale as padded_words — adjacent shard slices never
  // share a cache line).
  std::vector<SampledPlan> plans(m);
  std::size_t total_slots = 0;
  std::size_t words_stride = 0;
  for (std::size_t f = 0; f < m; ++f) {
    SampledPlan& pl = plans[f];
    pl.shape = requests[f].shape();
    switch (pl.shape) {
      case FrameShape::kBloom:
        pl.w = std::get<BloomFrameConfig>(requests[f].config).w;
        pl.word_offset = words_stride;
        words_stride += padded_words(pl.w);
        break;
      case FrameShape::kAloha:
        pl.w = std::get<AlohaFrameConfig>(requests[f].config).f;
        pl.word_offset = words_stride;
        pl.word_offset2 = words_stride + padded_words(pl.w);
        words_stride += 2 * padded_words(pl.w);
        break;
      case FrameShape::kSingleSlot:
        pl.w = 1;
        break;
      case FrameShape::kLottery:
        pl.w = std::get<LotteryFrameConfig>(requests[f].config).f;
        pl.offset = total_slots;
        total_slots += pl.w;
        break;
    }
  }
  batch_counts_.assign(total_slots, 0);

  // Phase 1 — plan: every binomial on the caller's stream, in request
  // order (util::draw_binomial keeps the serialised construction that
  // makes this safe under concurrent workers). Scatter shapes also
  // derive their counter base from exactly one caller draw, so the
  // stream position after the batch depends only on the request list.
  std::uint64_t total_draws = 0;
  for (std::size_t f = 0; f < m; ++f) {
    SampledPlan& pl = plans[f];
    switch (pl.shape) {
      case FrameShape::kBloom: {
        const auto& cfg = std::get<BloomFrameConfig>(requests[f].config);
        assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
        pl.draws = draw_binomial(
            static_cast<std::uint64_t>(n_) * cfg.k, cfg.p, rng);
        break;
      }
      case FrameShape::kAloha: {
        const auto& cfg = std::get<AlohaFrameConfig>(requests[f].config);
        pl.draws = draw_binomial(n_, cfg.p, rng);
        break;
      }
      case FrameShape::kSingleSlot: {
        const auto& cfg = std::get<SingleSlotConfig>(requests[f].config);
        pl.responders = draw_binomial(n_, cfg.q, rng);
        break;
      }
      case FrameShape::kLottery: {
        // Sequential multinomial, exactly the legacy sampled_lottery
        // draws, written straight into the merged counts.
        std::uint32_t* const counts = batch_counts_.data() + pl.offset;
        std::uint64_t remaining = n_;
        double mass_remaining = 1.0;
        for (std::uint32_t j = 0; j + 1 < pl.w && remaining > 0; ++j) {
          const double pj = std::ldexp(1.0, -static_cast<int>(j) - 1);
          const double cond = pj / mass_remaining;
          const std::uint64_t c =
              draw_binomial(remaining, cond > 1.0 ? 1.0 : cond, rng);
          counts[j] = static_cast<std::uint32_t>(
              c > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : c);
          remaining -= c;
          mass_remaining -= pj;
          if (mass_remaining <= 0.0) break;
        }
        counts[pl.w - 1] += static_cast<std::uint32_t>(
            remaining > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : remaining);
        break;
      }
    }
    if (pl.shape == FrameShape::kBloom || pl.shape == FrameShape::kAloha) {
      util::SeedMixer mix(rng());
      mix.absorb(static_cast<std::uint64_t>(pl.w));
      pl.base = mix.value();
      total_draws += pl.draws;
    }
  }

  // Phase 2 — render: scatter all response draws. Shard s owns the
  // contiguous draw range [s·chunk, (s+1)·chunk) of EVERY frame and
  // renders into private word-packed planes; slot r of a frame is
  // counter-addressed (splitmix_at(base, r) reduced by multiply-shift),
  // and both plane forms merge order-independently (busy bits with OR,
  // the ALOHA pair with the cross-shard ≥2 term), so the merged result
  // is bit-identical for any shard count.
  const std::uint32_t shard_count =
      total_draws > 0
          ? effective_shards(static_cast<std::size_t>(std::min<std::uint64_t>(
                total_draws, static_cast<std::uint64_t>(~std::size_t{0}))))
          : 1;
  if (words_stride > 0) {
    // Sized but not zeroed here: each shard zero-fills its own slice in
    // the parallel region, so cold pages first-touch on the worker that
    // scatters into them (the same NUMA discipline as the exact walk).
    const std::size_t total_words =
        static_cast<std::size_t>(shard_count) * words_stride;
    if (shard_bits_.size() < total_words) shard_bits_.resize(total_words);
    slot_scratch_.resize(static_cast<std::size_t>(shard_count) *
                         detail::kScatterTile);
    const bool allow_simd = policy_.allow_simd;
    util::parallel_for(
        0, shard_count,
        [&](std::size_t s) {
          std::uint64_t* const plane = shard_bits_.data() + s * words_stride;
          std::fill(plane, plane + words_stride, std::uint64_t{0});
          std::uint32_t* const slots =
              slot_scratch_.data() + s * detail::kScatterTile;
          for (const SampledPlan& pl : plans) {
            if ((pl.shape != FrameShape::kBloom &&
                 pl.shape != FrameShape::kAloha) ||
                pl.draws == 0) {
              continue;
            }
            const std::uint64_t chunk =
                (pl.draws + shard_count - 1) / shard_count;
            const std::uint64_t r0 = std::min<std::uint64_t>(
                pl.draws, static_cast<std::uint64_t>(s) * chunk);
            const std::uint64_t r1 = std::min<std::uint64_t>(
                pl.draws, r0 + chunk);
            std::uint64_t* const one = plane + pl.word_offset;
            std::uint64_t* const two = plane + pl.word_offset2;
            for (std::uint64_t t0 = r0; t0 < r1;
                 t0 += detail::kScatterTile) {
              const std::uint64_t t1 =
                  std::min<std::uint64_t>(r1, t0 + detail::kScatterTile);
              detail::sampled_scatter_tile(pl.base, t0, t1, pl.w,
                                           allow_simd, slots);
              const std::size_t count = static_cast<std::size_t>(t1 - t0);
              if (pl.shape == FrameShape::kBloom) {
                for (std::size_t i = 0; i < count; ++i) {
                  const std::uint32_t slot = slots[i];
                  one[slot >> 6] |= 1ULL << (slot & 63U);
                }
              } else {
                for (std::size_t i = 0; i < count; ++i) {
                  const std::uint32_t slot = slots[i];
                  const std::uint64_t bit = 1ULL << (slot & 63U);
                  two[slot >> 6] |= one[slot >> 6] & bit;
                  one[slot >> 6] |= bit;
                }
              }
            }
          }
        },
        shard_count);
    // Merge the shard planes into shard 0's slice.
    for (const SampledPlan& pl : plans) {
      if ((pl.shape != FrameShape::kBloom &&
           pl.shape != FrameShape::kAloha) ||
          pl.draws == 0) {
        continue;
      }
      const std::size_t words = (static_cast<std::size_t>(pl.w) + 63) / 64;
      std::uint64_t* const one = shard_bits_.data() + pl.word_offset;
      std::uint64_t* const two = shard_bits_.data() + pl.word_offset2;
      for (std::uint32_t s = 1; s < shard_count; ++s) {
        const std::uint64_t* const one_s =
            shard_bits_.data() + s * words_stride + pl.word_offset;
        if (pl.shape == FrameShape::kBloom) {
          for (std::size_t i = 0; i < words; ++i) one[i] |= one_s[i];
        } else {
          const std::uint64_t* const two_s =
              shard_bits_.data() + s * words_stride + pl.word_offset2;
          for (std::size_t i = 0; i < words; ++i) {
            // A slot collides if any shard saw ≥ 2 draws, or two
            // different shards each saw ≥ 1.
            const std::uint64_t os = one_s[i];
            two[i] |= two_s[i] | (one[i] & os);
            one[i] |= os;
          }
        }
      }
    }
  }

  // Phase 3 — reduce: channel observation per frame, in request order,
  // on the caller's stream — the same frame-major order every other
  // path uses.
  std::vector<FrameResult> results;
  results.reserve(m);
  for (const SampledPlan& pl : plans) {
    FrameResult res;
    res.shape = pl.shape;
    switch (pl.shape) {
      case FrameShape::kBloom:
        res.tx = pl.draws;
        res.busy = bitmap_to_busy(
            channel_, shard_bits_.data() + pl.word_offset, pl.w, rng);
        break;
      case FrameShape::kAloha: {
        // Slot-major observation with the exact occupancy category
        // (0 / 1 / ≥2) — draw-for-draw identical to observing the true
        // per-slot draw counts.
        const std::uint64_t* const one = shard_bits_.data() + pl.word_offset;
        const std::uint64_t* const two = shard_bits_.data() + pl.word_offset2;
        res.tx = pl.draws;
        res.states.resize(pl.w);
        for (std::uint32_t i = 0; i < pl.w; ++i) {
          const std::uint32_t category =
              ((two[i >> 6] >> (i & 63U)) & 1ULL) != 0
                  ? 2U
                  : static_cast<std::uint32_t>(
                        (one[i >> 6] >> (i & 63U)) & 1ULL);
          res.states[i] = channel_.observe(category, rng);
        }
        break;
      }
      case FrameShape::kSingleSlot:
        res.tx = pl.responders;
        res.single = channel_.observe(
            static_cast<std::uint32_t>(pl.responders > 0xFFFFFFFFULL
                                           ? 0xFFFFFFFFULL
                                           : pl.responders),
            rng);
        break;
      case FrameShape::kLottery:
        res.tx = n_;
        res.busy = counts_to_busy(batch_counts_.data() + pl.offset, pl.w, rng);
        break;
    }
    ShapeCounters& c = counters_.of(pl.shape);
    c.frames += 1;
    c.slots += pl.shape == FrameShape::kSingleSlot ? 1 : pl.w;
    c.tag_tx += res.tx;
    results.push_back(std::move(res));
  }
  // Same attribution rule as the sharded exact batch: one fused pass,
  // charged to the first request's shape.
  counters_.of(plans.front().shape).wall_us += elapsed_us(start);
  return results;
}

}  // namespace bfce::rfid
