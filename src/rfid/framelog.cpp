#include "rfid/framelog.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

namespace bfce::rfid {

std::string to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kProbe:
      return "probe";
    case FrameKind::kBloomRough:
      return "bloom-rough";
    case FrameKind::kBloomAccurate:
      return "bloom-accurate";
    case FrameKind::kSingleSlot:
      return "single-slot";
    case FrameKind::kAloha:
      return "aloha";
    case FrameKind::kLottery:
      return "lottery";
    case FrameKind::kOther:
      break;
  }
  return "other";
}

std::size_t FrameLog::count(FrameKind kind) const noexcept {
  std::size_t total = 0;
  for (const FrameRecord& r : records_) {
    if (r.kind == kind) ++total;
  }
  return total;
}

double FrameLog::total_duration_us() const noexcept {
  double total = 0.0;
  for (const FrameRecord& r : records_) total += r.duration_us;
  return total;
}

void FrameLog::render_timeline(std::ostream& os, std::uint32_t width) const {
  const double total = total_duration_us();
  if (total <= 0.0 || records_.empty()) {
    os << "(empty frame log)\n";
    return;
  }
  // Aggregate per kind, preserving first-appearance order.
  struct Row {
    FrameKind kind;
    std::size_t frames = 0;
    double us = 0.0;
  };
  std::vector<Row> rows;
  for (const FrameRecord& r : records_) {
    auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& row) {
      return row.kind == r.kind;
    });
    if (it == rows.end()) {
      rows.push_back(Row{r.kind, 0, 0.0});
      it = rows.end() - 1;
    }
    ++it->frames;
    it->us += r.duration_us;
  }
  for (const Row& row : rows) {
    const double share = row.us / total;
    const auto bar =
        static_cast<std::uint32_t>(share * width + 0.5);
    char line[256];
    std::snprintf(line, sizeof line, "%-14s %6zu frames %9.1f ms  |",
                  to_string(row.kind).c_str(), row.frames, row.us / 1e3);
    os << line;
    for (std::uint32_t i = 0; i < bar; ++i) os << '#';
    std::snprintf(line, sizeof line, "| %4.1f%%\n", share * 100.0);
    os << line;
  }
}

}  // namespace bfce::rfid
