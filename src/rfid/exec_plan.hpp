#pragma once
// Adaptive execution planning for FrameEngine (ExecutionPolicy's kAuto
// walk): a calibrated cost model decides, per frame / per batch,
// whether the sequential executors or the sharded plan/render/reduce
// pipeline is cheaper — so opting into `automatic()` is never a
// pessimization relative to the sequential policy.
//
// The decision has to respect the determinism contract of
// frame_engine.hpp, which splits batches into two classes:
//
//  * STREAM-PRESERVING batches (kRnBits Bloom, p = 1 ALOHA,
//    single-slot, lottery; sampled single-slot/lottery) produce
//    bit-identical results — caller-RNG stream position included — on
//    both walks. For these the planner may consult anything it likes
//    (the live shard hint, runtime SIMD support): whatever it picks,
//    the simulation output cannot change.
//
//  * LAW-DIVERGENT batches (stochastic-persistence Bloom, p < 1 ALOHA,
//    sampled Bloom/ALOHA) realise the same law with different bits on
//    the two walks, so the routing decision IS part of the result. For
//    these the planner must stay a pure function of the request list,
//    the population size and the committed cost table: it pins the
//    shard hint to 1 and prices the scalar kernels (the floor every
//    host can deliver), never the host's core count or ISA. A batch
//    routed to the sharded walk under that floor is cheaper on every
//    host — more shards and wider vectors only help — and every host
//    makes the same choice, so `sim::run_experiment` stays a pure
//    function of (master seed, trial index) under kAuto.
//
// Costs are nanoseconds per work item from the committed calibration
// table below (regenerate with `bench/micro_frame --calibrate`; see
// docs/TOOLING.md). A host can override individual coefficients via
// BFCE_COST_MODEL — but note the override moves the law-divergent
// routing split with it, exactly like choosing a different explicit
// policy would.

#include <cstddef>
#include <cstdint>

#include "rfid/frame_engine.hpp"

namespace bfce::rfid::exec {

/// Sentinel of packed16_threshold: p is off the 1/65536 grid, the
/// packed persistence kernels do not apply.
inline constexpr std::uint32_t kNoPack16 = 0xFFFFFFFFU;

/// Exact 16-bit threshold for Bernoulli(p) decisions packed four to a
/// 64-bit draw, or kNoPack16 when p is not on the 1/65536 grid (the
/// 1/1024 persistence grid of §IV-E.3 always is). A uniform 16-bit
/// slice compared against p·65536 realises Bernoulli(p) exactly.
std::uint32_t packed16_threshold(double p) noexcept;

/// Per-item cost of one work class on the three execution paths, in
/// nanoseconds: the sequential executor, the sharded walk's scalar
/// kernels, and the sharded walk's AVX-512 kernels. Work classes with
/// no vector kernel (RN-bits Bloom, lottery, single-slot) commit
/// par_simd == par.
struct PathCost {
  double seq = 0.0;
  double par = 0.0;
  double par_simd = 0.0;

  [[nodiscard]] double par_cost(bool simd) const noexcept {
    return simd ? par_simd : par;
  }
};

/// The calibrated coefficients the planner prices batches with.
///
/// Per-item columns (what "item" means per row):
///   bloom_packed — one (tag, hash) decision, stochastic persistence on
///                  the 1/65536 grid (the packed decide kernels);
///   bloom_plain  — one (tag, hash) decision, off-grid stochastic
///                  persistence (unit-double compare per pair);
///   bloom_rn     — one (tag, hash) decision, deterministic RN-bits;
///   aloha        — one tag of an ALOHA frame (participation + slot);
///   single       — one tag of a single-slot frame (hash + compare);
///   lottery      — one tag of a lottery frame (geometric slot);
///   sampled_draw — one response draw of the sampled Bloom/ALOHA
///                  scatter.
///
/// Structural terms:
///   slot_ns       — sequential per-slot result cost for frames whose
///                   sharded reduce is word-packed instead (Bloom and
///                   lottery busy maps: the sequential path touches w
///                   slot counts where the sharded path touches w/64
///                   words — at the paper's w = 8192 this term, not the
///                   per-tag work, decides small-n batches);
///   plane_word_ns — per plane word per shard slice on the sharded
///                   side (zero-fill + merge + word-packed observe);
///   walk_fixed_ns — one sharded dispatch (plan hoist, scratch sizing);
///   shard_fixed_ns— per shard (executor wake/join handshake).
struct CostModel {
  PathCost bloom_packed;
  PathCost bloom_plain;
  PathCost bloom_rn;
  PathCost aloha;
  PathCost single;
  PathCost lottery;
  PathCost sampled_draw;
  double slot_ns = 0.0;
  double plane_word_ns = 0.0;
  double walk_fixed_ns = 0.0;
  double shard_fixed_ns = 0.0;

  /// The committed calibration table, with BFCE_COST_MODEL overrides
  /// applied once per process (a file of "key value" lines, e.g.
  /// "aloha.par_simd 3.9"; unknown keys warn on stderr). The object is
  /// immutable after first use — the planner's purity depends on it.
  static const CostModel& active() noexcept;

  /// The table as compiled in, no overrides (calibration tooling and
  /// tests).
  static CostModel committed_defaults() noexcept;
};

/// True when every frame of the batch is stream-preserving: both walks
/// produce bit-identical results including the caller-RNG stream
/// position (kRnBits Bloom, p ≥ 1 ALOHA, single-slot and lottery in
/// exact mode; single-slot and lottery in sampled mode). Law-divergent
/// batches — anything stochastic in exact mode, any sampled
/// Bloom/ALOHA scatter — return false and pin the planner to its pure
/// floor.
bool batch_is_stream_preserving(const FrameRequest* const* requests,
                                std::size_t count, FrameMode mode) noexcept;

/// The planning decision: true when the sharded walk prices cheaper
/// than the sequential executors for this batch over a population (or
/// sampled cardinality) of n. `shard_hint` is the shard count the
/// policy would resolve to and `simd` whether the vector kernels are
/// live — both are honoured only for stream-preserving batches;
/// law-divergent batches are priced at the scalar single-shard floor
/// (see the header comment). Ties go sequential.
bool plan_prefers_sharded(const CostModel& model,
                          const FrameRequest* const* requests,
                          std::size_t count, std::size_t n, FrameMode mode,
                          std::uint32_t shard_hint, bool simd) noexcept;

}  // namespace bfce::rfid::exec
