#pragma once
// The simulated RFID tag.

#include <cstdint>

namespace bfce::rfid {

/// A passive tag as BFCE sees it.
///
/// `id` is the EPC tagID (the paper draws IDs from [1, 10^15], which fits
/// a 64-bit integer). `rn` is the 32-bit random number prestored on the
/// tag at manufacture time (§IV-E.2); the lightweight hash and the RN-bits
/// persistence scheme operate on `rn`, never on `id`.
struct Tag {
  std::uint64_t id = 0;
  std::uint32_t rn = 0;
};

}  // namespace bfce::rfid
