#pragma once
// Frame-level protocol log.
//
// When a ReaderContext carries a FrameLog, protocols append one record
// per over-the-air frame: what kind of frame, its parameters, what came
// back, and what it cost. The log serves three purposes:
//
//  * tests assert protocol *structure* (BFCE = probes → one truncated
//    rough frame → one full accurate frame, in that order);
//  * the `protocol_timeline` example renders the log as an ASCII
//    timeline, making "where does ZOE's time go?" visible;
//  * users get a machine-readable transcript of any estimation run.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rfid/timing.hpp"

namespace bfce::rfid {

enum class FrameKind : std::uint8_t {
  kProbe,        ///< BFCE persistence-probe window
  kBloomRough,   ///< BFCE phase-1 (truncated) Bloom frame
  kBloomAccurate,///< BFCE phase-2 full Bloom frame
  kSingleSlot,   ///< ZOE/PET/A³ one-slot frame
  kAloha,        ///< slotted ALOHA frame (SRC, EZB, UPE, ART, MLE, A³)
  kLottery,      ///< geometric lottery frame (LOF, rough phases)
  kOther,
};

std::string to_string(FrameKind kind);

/// One over-the-air frame as the log sees it.
struct FrameRecord {
  FrameKind kind = FrameKind::kOther;
  std::uint32_t slots_observed = 0;  ///< bit-slots the reader listened to
  double p = 0.0;                    ///< persistence/sampling probability
  std::uint32_t busy = 0;            ///< busy slots observed
  /// Airtime of this frame including its parameter broadcast (µs under
  /// the context's timing model).
  double duration_us = 0.0;
};

/// Append-only per-run frame transcript.
class FrameLog {
 public:
  void append(FrameRecord record) { records_.push_back(record); }
  void clear() noexcept { records_.clear(); }

  const std::vector<FrameRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Number of records of one kind.
  std::size_t count(FrameKind kind) const noexcept;

  /// Total logged duration (µs).
  double total_duration_us() const noexcept;

  /// Renders an ASCII timeline: one bar per frame kind, width
  /// proportional to its share of the total duration, with counts.
  void render_timeline(std::ostream& os, std::uint32_t width = 60) const;

 private:
  std::vector<FrameRecord> records_;
};

}  // namespace bfce::rfid
