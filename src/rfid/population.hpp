#pragma once
// Tag population generation — the paper's T1/T2/T3 tagID sets (Fig 6).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rfid/tag.hpp"

namespace bfce::rfid {

/// The three tagID distributions of the paper's evaluation (§V-A, Fig 6).
enum class TagIdDistribution {
  kT1Uniform,       ///< uniform on [1, 10^15]
  kT2ApproxNormal,  ///< approximate normal (Irwin–Hall sum of uniforms)
  kT3Normal,        ///< normal, clipped to [1, 10^15]
};

/// Human-readable name ("T1", "T2", "T3").
std::string to_string(TagIdDistribution dist);

/// All three distributions, in paper order — convenient for sweeps.
inline constexpr TagIdDistribution kAllDistributions[] = {
    TagIdDistribution::kT1Uniform,
    TagIdDistribution::kT2ApproxNormal,
    TagIdDistribution::kT3Normal,
};

/// An immutable set of tags within one reader's range.
class TagPopulation {
 public:
  TagPopulation() = default;
  explicit TagPopulation(std::vector<Tag> tags) : tags_(std::move(tags)) {}

  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }
  [[nodiscard]] const std::vector<Tag>& tags() const noexcept { return tags_; }
  const Tag& operator[](std::size_t i) const noexcept { return tags_[i]; }

 private:
  std::vector<Tag> tags_;
};

/// Generates `n` tags with unique IDs drawn from `dist` and independent
/// manufacture-time RN32 values. Deterministic in `seed`.
///
/// ID range is [1, 10^15] as in the paper; duplicate draws are rejected
/// and redrawn, so all IDs are distinct.
TagPopulation make_population(std::size_t n, TagIdDistribution dist,
                              std::uint64_t seed);

}  // namespace bfce::rfid
