#pragma once
// Tag-side energy model.
//
// The MLE line of work (Li et al., INFOCOM 2010 — one of the paper's
// baselines) optimises estimation for *energy* rather than time: active
// tags spend battery both transmitting replies and listening to reader
// broadcasts. This model prices a protocol's Airtime ledger for a
// population of n active tags:
//
//   listen   — every tag hears every reader broadcast:
//              n · reader_bits · rx_per_bit
//   transmit — each individual reply costs its sender:
//              tag_tx_bits · tx_per_bit   (collisions count every sender)
//
// Passive (battery-free) tags have zero battery cost by definition; the
// model is meaningful for active/semi-active deployments, which is
// exactly the setting the MLE paper targets.

#include <cstdint>

#include "rfid/timing.hpp"

namespace bfce::rfid {

/// Per-bit energy prices in microjoules. Defaults are representative of
/// low-power active tags (~mW-scale radios at C1G2 bit times).
struct EnergyModel {
  double tag_tx_uj_per_bit = 0.66;  ///< ~35 mW × 18.88 µs
  double tag_rx_uj_per_bit = 0.38;  ///< ~10 mW × 37.76 µs

  /// Total tag-side energy (µJ) spent by a population of `n` active tags
  /// executing a protocol with ledger `a`.
  double population_uj(const Airtime& a, std::uint64_t n) const noexcept {
    return static_cast<double>(n) * static_cast<double>(a.reader_bits) *
               tag_rx_uj_per_bit +
           static_cast<double>(a.tag_tx_bits) * tag_tx_uj_per_bit;
  }

  /// Average per-tag energy (µJ).
  double per_tag_uj(const Airtime& a, std::uint64_t n) const noexcept {
    return n == 0 ? 0.0
                  : population_uj(a, n) / static_cast<double>(n);
  }
};

}  // namespace bfce::rfid
