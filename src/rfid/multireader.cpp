#include "rfid/multireader.hpp"

#include <algorithm>
#include <cmath>

#include "hash/mix.hpp"

namespace bfce::rfid {

TagPosition tag_position(const Tag& tag) noexcept {
  // Two decorrelated mixes of the tagID give the coordinates; positions
  // are a pure function of the ID so every subsystem agrees on them.
  const std::uint64_t hx = hash::mix_with_seed(tag.id, 0xA11CE);
  const std::uint64_t hy = hash::mix_with_seed(tag.id, 0xB0B5);
  return TagPosition{
      static_cast<double>(hx >> 11) * 0x1.0p-53,
      static_cast<double>(hy >> 11) * 0x1.0p-53,
  };
}

namespace {

bool covers(const ReaderPlacement& r, const TagPosition& p) noexcept {
  const double dx = r.x - p.x;
  const double dy = r.y - p.y;
  return dx * dx + dy * dy <= r.radius * r.radius;
}

/// Uniform cell grid over reader centres (CSR layout), built so that any
/// two points within `min_cell_width` of each other land in the same or
/// adjacent cells. Centres are clamped into the unit square for
/// bucketing only: projection onto a convex set is non-expansive, so
/// clamping never moves two nearby points into non-adjacent cells, and
/// tag positions already live in [0,1)². Turns the O(tags × readers)
/// partition walk and the O(readers²) interference colouring into
/// 3×3-neighbourhood scans — the difference between minutes and
/// milliseconds for the 10k-reader fleets the federation bench sweeps.
class ReaderBuckets {
 public:
  ReaderBuckets(const std::vector<ReaderPlacement>& readers,
                double min_cell_width) {
    const double width = std::max(min_cell_width, 1.0 / 1024.0);
    side_ = width >= 1.0
                ? 1
                : std::min<std::size_t>(
                      static_cast<std::size_t>(std::floor(1.0 / width)), 1024);
    starts_.assign(side_ * side_ + 1, 0);
    for (const ReaderPlacement& r : readers) ++starts_[cell_of(r.x, r.y) + 1];
    for (std::size_t c = 1; c < starts_.size(); ++c) starts_[c] += starts_[c - 1];
    entries_.resize(readers.size());
    std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
    for (std::size_t r = 0; r < readers.size(); ++r) {
      entries_[cursor[cell_of(readers[r].x, readers[r].y)]++] =
          static_cast<std::uint32_t>(r);
    }
  }

  /// Calls `fn(reader index)` for every reader whose (clamped) centre
  /// lies in the 3×3 cell neighbourhood of (x, y).
  template <typename Fn>
  void for_each_near(double x, double y, Fn&& fn) const {
    const std::size_t cx = axis_cell(x);
    const std::size_t cy = axis_cell(y);
    const std::size_t gx0 = cx > 0 ? cx - 1 : 0;
    const std::size_t gx1 = std::min(cx + 1, side_ - 1);
    const std::size_t gy0 = cy > 0 ? cy - 1 : 0;
    const std::size_t gy1 = std::min(cy + 1, side_ - 1);
    for (std::size_t gy = gy0; gy <= gy1; ++gy) {
      for (std::size_t gx = gx0; gx <= gx1; ++gx) {
        const std::size_t cell = gy * side_ + gx;
        for (std::uint32_t e = starts_[cell]; e < starts_[cell + 1]; ++e) {
          fn(entries_[e]);
        }
      }
    }
  }

 private:
  std::size_t axis_cell(double v) const noexcept {
    const double clamped = std::clamp(v, 0.0, 1.0);
    return std::min(static_cast<std::size_t>(clamped *
                                             static_cast<double>(side_)),
                    side_ - 1);
  }
  std::size_t cell_of(double x, double y) const noexcept {
    return axis_cell(y) * side_ + axis_cell(x);
  }

  std::size_t side_ = 1;
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> entries_;
};

double max_radius_of(const std::vector<ReaderPlacement>& readers) noexcept {
  double max_radius = 0.0;
  for (const ReaderPlacement& r : readers) {
    max_radius = std::max(max_radius, r.radius);
  }
  return max_radius;
}

}  // namespace

MultiReaderSystem::MultiReaderSystem(const TagPopulation& tags,
                                     std::vector<ReaderPlacement> readers)
    : readers_(std::move(readers)) {
  // A disc covering a tag has its centre within max radius of it, i.e.
  // inside the tag's 3×3 cell neighbourhood.
  const ReaderBuckets buckets(readers_, max_radius_of(readers_));
  std::vector<std::vector<Tag>> per_reader(readers_.size());
  std::vector<Tag> covered_union;
  for (const Tag& tag : tags.tags()) {
    const TagPosition pos = tag_position(tag);
    std::size_t hits = 0;
    buckets.for_each_near(pos.x, pos.y, [&](std::uint32_t r) {
      if (covers(readers_[r], pos)) {
        per_reader[r].push_back(tag);
        ++hits;
      }
    });
    if (hits == 0) {
      ++uncovered_;
    } else {
      covered_union.push_back(tag);
      if (hits >= 2) ++overlap_;
    }
  }
  per_reader_.reserve(per_reader.size());
  for (auto& v : per_reader) per_reader_.emplace_back(std::move(v));
  union_ = TagPopulation(std::move(covered_union));
}

std::size_t MultiReaderSystem::naive_sum() const noexcept {
  std::size_t total = 0;
  for (const TagPopulation& p : per_reader_) total += p.size();
  return total;
}

std::vector<std::uint32_t> MultiReaderSystem::interference_schedule() const {
  const std::size_t r = readers_.size();
  std::vector<std::uint32_t> colour(r, 0);
  if (r == 0) return colour;
  // Greedy colouring in index order: small, and optimal on interval-like
  // grid layouts. Conflict = discs overlap (centres closer than the sum
  // of radii, which is at most twice the max radius — the bucket width).
  const ReaderBuckets buckets(readers_, 2.0 * max_radius_of(readers_));
  std::vector<char> used(r + 1, 0);
  std::vector<std::uint32_t> touched;
  for (std::size_t i = 0; i < r; ++i) {
    touched.clear();
    buckets.for_each_near(readers_[i].x, readers_[i].y, [&](std::uint32_t j) {
      if (j >= i) return;
      const double dx = readers_[i].x - readers_[j].x;
      const double dy = readers_[i].y - readers_[j].y;
      const double reach = readers_[i].radius + readers_[j].radius;
      if (dx * dx + dy * dy < reach * reach && used[colour[j]] == 0) {
        used[colour[j]] = 1;
        touched.push_back(colour[j]);
      }
    });
    std::uint32_t c = 0;
    while (used[c] != 0) ++c;
    colour[i] = c;
    for (const std::uint32_t t : touched) used[t] = 0;
  }
  return colour;
}

std::uint32_t MultiReaderSystem::schedule_rounds() const {
  const auto colours = interference_schedule();
  std::uint32_t max_colour = 0;
  for (const std::uint32_t c : colours) max_colour = std::max(max_colour, c);
  return colours.empty() ? 0 : max_colour + 1;
}

std::vector<ReaderPlacement> MultiReaderSystem::grid(std::size_t count,
                                                     double radius) {
  std::vector<ReaderPlacement> placements;
  placements.reserve(count);
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row = i / side;
    const std::size_t col = i % side;
    placements.push_back(ReaderPlacement{
        (static_cast<double>(col) + 0.5) / static_cast<double>(side),
        (static_cast<double>(row) + 0.5) / static_cast<double>(side),
        radius});
  }
  return placements;
}

}  // namespace bfce::rfid
