#include "rfid/multireader.hpp"

#include <algorithm>
#include <cmath>

#include "hash/mix.hpp"

namespace bfce::rfid {

TagPosition tag_position(const Tag& tag) noexcept {
  // Two decorrelated mixes of the tagID give the coordinates; positions
  // are a pure function of the ID so every subsystem agrees on them.
  const std::uint64_t hx = hash::mix_with_seed(tag.id, 0xA11CE);
  const std::uint64_t hy = hash::mix_with_seed(tag.id, 0xB0B5);
  return TagPosition{
      static_cast<double>(hx >> 11) * 0x1.0p-53,
      static_cast<double>(hy >> 11) * 0x1.0p-53,
  };
}

namespace {

bool covers(const ReaderPlacement& r, const TagPosition& p) noexcept {
  const double dx = r.x - p.x;
  const double dy = r.y - p.y;
  return dx * dx + dy * dy <= r.radius * r.radius;
}

}  // namespace

MultiReaderSystem::MultiReaderSystem(const TagPopulation& tags,
                                     std::vector<ReaderPlacement> readers)
    : readers_(std::move(readers)) {
  std::vector<std::vector<Tag>> per_reader(readers_.size());
  std::vector<Tag> covered_union;
  for (const Tag& tag : tags.tags()) {
    const TagPosition pos = tag_position(tag);
    std::size_t hits = 0;
    for (std::size_t r = 0; r < readers_.size(); ++r) {
      if (covers(readers_[r], pos)) {
        per_reader[r].push_back(tag);
        ++hits;
      }
    }
    if (hits == 0) {
      ++uncovered_;
    } else {
      covered_union.push_back(tag);
      if (hits >= 2) ++overlap_;
    }
  }
  per_reader_.reserve(per_reader.size());
  for (auto& v : per_reader) per_reader_.emplace_back(std::move(v));
  union_ = TagPopulation(std::move(covered_union));
}

std::size_t MultiReaderSystem::naive_sum() const noexcept {
  std::size_t total = 0;
  for (const TagPopulation& p : per_reader_) total += p.size();
  return total;
}

std::vector<std::uint32_t> MultiReaderSystem::interference_schedule() const {
  const std::size_t r = readers_.size();
  std::vector<std::uint32_t> colour(r, 0);
  // Greedy colouring in index order: small, and optimal on interval-like
  // grid layouts. Conflict = discs overlap (centres closer than the sum
  // of radii).
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<bool> used(r, false);
    for (std::size_t j = 0; j < i; ++j) {
      const double dx = readers_[i].x - readers_[j].x;
      const double dy = readers_[i].y - readers_[j].y;
      const double reach = readers_[i].radius + readers_[j].radius;
      if (dx * dx + dy * dy < reach * reach) used[colour[j]] = true;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    colour[i] = c;
  }
  return colour;
}

std::uint32_t MultiReaderSystem::schedule_rounds() const {
  const auto colours = interference_schedule();
  std::uint32_t max_colour = 0;
  for (const std::uint32_t c : colours) max_colour = std::max(max_colour, c);
  return colours.empty() ? 0 : max_colour + 1;
}

std::vector<ReaderPlacement> MultiReaderSystem::grid(std::size_t count,
                                                     double radius) {
  std::vector<ReaderPlacement> placements;
  placements.reserve(count);
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row = i / side;
    const std::size_t col = i % side;
    placements.push_back(ReaderPlacement{
        (static_cast<double>(col) + 0.5) / static_cast<double>(side),
        (static_cast<double>(row) + 0.5) / static_cast<double>(side),
        radius});
  }
  return placements;
}

}  // namespace bfce::rfid
