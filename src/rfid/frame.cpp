#include "rfid/frame.hpp"

#include <utility>

#include "rfid/frame_engine.hpp"

namespace bfce::rfid {

// The free executors are compatibility wrappers over a transient
// FrameEngine: one engine, one frame, same RNG consumption as the
// original scalar loops (which now live in frame_engine.cpp). Protocols
// that want scratch reuse, batching or counters submit FrameRequests to
// a long-lived engine instead — see ReaderContext::run_frame.

namespace {

void add_tx(std::uint64_t tx, std::uint64_t* tx_count) {
  if (tx_count != nullptr) *tx_count += tx;
}

}  // namespace

util::BitVector run_bloom_frame(const TagPopulation& tags,
                                const BloomFrameConfig& cfg,
                                const Channel& channel,
                                util::Xoshiro256ss& rng,
                                std::uint64_t* tx_count) {
  FrameEngine engine(tags, channel, FrameMode::kExact);
  FrameResult res = engine.execute(FrameRequest::bloom(cfg), rng);
  add_tx(res.tx, tx_count);
  return std::move(res.busy);
}

util::BitVector sampled_bloom_frame(std::size_t n, const BloomFrameConfig& cfg,
                                    const Channel& channel,
                                    util::Xoshiro256ss& rng,
                                    std::uint64_t* tx_count) {
  FrameEngine engine(n, channel);
  FrameResult res = engine.execute(FrameRequest::bloom(cfg), rng);
  add_tx(res.tx, tx_count);
  return std::move(res.busy);
}

std::vector<SlotState> run_aloha_frame(const TagPopulation& tags,
                                       std::uint32_t f, double p,
                                       std::uint64_t seed,
                                       const Channel& channel,
                                       util::Xoshiro256ss& rng,
                                       std::uint64_t* tx_count) {
  FrameEngine engine(tags, channel, FrameMode::kExact);
  FrameResult res = engine.execute(FrameRequest::aloha(f, p, seed), rng);
  add_tx(res.tx, tx_count);
  return std::move(res.states);
}

std::vector<SlotState> sampled_aloha_frame(std::size_t n, std::uint32_t f,
                                           double p, const Channel& channel,
                                           util::Xoshiro256ss& rng,
                                           std::uint64_t* tx_count) {
  FrameEngine engine(n, channel);
  FrameResult res = engine.execute(FrameRequest::aloha(f, p, 0), rng);
  add_tx(res.tx, tx_count);
  return std::move(res.states);
}

SlotState run_single_slot(const TagPopulation& tags, double q,
                          std::uint64_t seed, const Channel& channel,
                          util::Xoshiro256ss& rng, std::uint64_t* tx_count) {
  FrameEngine engine(tags, channel, FrameMode::kExact);
  const FrameResult res =
      engine.execute(FrameRequest::single_slot(q, seed), rng);
  add_tx(res.tx, tx_count);
  return res.single;
}

SlotState sampled_single_slot(std::size_t n, double q, const Channel& channel,
                              util::Xoshiro256ss& rng,
                              std::uint64_t* tx_count) {
  FrameEngine engine(n, channel);
  const FrameResult res = engine.execute(FrameRequest::single_slot(q, 0), rng);
  add_tx(res.tx, tx_count);
  return res.single;
}

util::BitVector run_lottery_frame(const TagPopulation& tags, std::uint32_t f,
                                  std::uint64_t seed, const Channel& channel,
                                  util::Xoshiro256ss& rng,
                                  std::uint64_t* tx_count) {
  FrameEngine engine(tags, channel, FrameMode::kExact);
  FrameResult res = engine.execute(FrameRequest::lottery(f, seed), rng);
  add_tx(res.tx, tx_count);
  return std::move(res.busy);
}

util::BitVector sampled_lottery_frame(std::size_t n, std::uint32_t f,
                                      const Channel& channel,
                                      util::Xoshiro256ss& rng,
                                      std::uint64_t* tx_count) {
  FrameEngine engine(n, channel);
  FrameResult res = engine.execute(FrameRequest::lottery(f, 0), rng);
  add_tx(res.tx, tx_count);
  return std::move(res.busy);
}

}  // namespace bfce::rfid
