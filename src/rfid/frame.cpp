#include "rfid/frame.hpp"

#include <cassert>
#include <random>

#include "hash/slot_hash.hpp"

namespace bfce::rfid {

namespace {

/// Converts per-slot responder counts to the busy bitmap via the channel.
util::BitVector counts_to_busy(const std::vector<std::uint32_t>& counts,
                               const Channel& channel,
                               util::Xoshiro256ss& rng) {
  util::BitVector busy(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (is_busy(channel.observe(counts[i], rng))) busy.set(i);
  }
  return busy;
}

std::uint64_t draw_binomial(std::uint64_t trials, double p,
                            util::Xoshiro256ss& rng) {
  if (trials == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return trials;
  std::binomial_distribution<std::uint64_t> dist(trials, p);
  return dist(rng);
}

}  // namespace

namespace {

/// Adds the total responder count of a counts vector to *tx (if set).
void accumulate_tx(const std::vector<std::uint32_t>& counts,
                   std::uint64_t* tx) {
  if (tx == nullptr) return;
  std::uint64_t total = 0;
  for (const std::uint32_t c : counts) total += c;
  *tx += total;
}

}  // namespace

util::BitVector run_bloom_frame(const TagPopulation& tags,
                                const BloomFrameConfig& cfg,
                                const Channel& channel,
                                util::Xoshiro256ss& rng,
                                std::uint64_t* tx_count) {
  assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
  assert(cfg.hash != HashScheme::kLightweight ||
         (cfg.w & (cfg.w - 1)) == 0);  // lightweight bitget needs 2^b slots
  std::vector<std::uint32_t> counts(cfg.w, 0);

  for (const Tag& tag : tags.tags()) {
    // A tag that uses one shared persistence draw decides once per frame.
    bool shared_respond = true;
    if (cfg.persistence == hash::PersistenceMode::kSharedDraw) {
      shared_respond = rng.bernoulli(cfg.p);
      if (!shared_respond) continue;
    }
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      std::uint32_t slot;
      if (cfg.hash == HashScheme::kIdeal) {
        slot = hash::IdealSlotHash(cfg.seeds[j]).slot(tag.id, cfg.w);
      } else {
        slot = hash::LightweightSlotHash(
                   static_cast<std::uint32_t>(cfg.seeds[j]))
                   .slot(tag.rn, cfg.w);
      }
      bool respond;
      switch (cfg.persistence) {
        case hash::PersistenceMode::kIdealBernoulli:
          respond = rng.bernoulli(cfg.p);
          break;
        case hash::PersistenceMode::kSharedDraw:
          respond = shared_respond;
          break;
        case hash::PersistenceMode::kRnBits:
          respond = hash::rn_bits_respond(
              tag.rn, slot, static_cast<std::uint32_t>(cfg.seeds[j]),
              cfg.p_n);
          break;
        default:
          respond = false;
      }
      if (respond) ++counts[slot];
    }
  }
  accumulate_tx(counts, tx_count);
  return counts_to_busy(counts, channel, rng);
}

util::BitVector sampled_bloom_frame(std::size_t n, const BloomFrameConfig& cfg,
                                    const Channel& channel,
                                    util::Xoshiro256ss& rng,
                                    std::uint64_t* tx_count) {
  assert(cfg.k >= 1 && cfg.k <= kMaxHashes);
  // Every (tag, hash) pair responds with probability p, independently
  // under the marginal law; the total response count is Binomial(k·n, p)
  // and each response lands in a uniform slot. (Within-tag slot
  // distinctness is a O(k²/w) correction, negligible for k=3, w=8192;
  // tests compare the two executors.)
  const std::uint64_t responses =
      draw_binomial(static_cast<std::uint64_t>(n) * cfg.k, cfg.p, rng);
  std::vector<std::uint32_t> counts(cfg.w, 0);
  for (std::uint64_t r = 0; r < responses; ++r) {
    ++counts[rng.below(cfg.w)];
  }
  if (tx_count != nullptr) *tx_count += responses;
  return counts_to_busy(counts, channel, rng);
}

std::vector<SlotState> run_aloha_frame(const TagPopulation& tags,
                                       std::uint32_t f, double p,
                                       std::uint64_t seed,
                                       const Channel& channel,
                                       util::Xoshiro256ss& rng,
                                       std::uint64_t* tx_count) {
  std::vector<std::uint32_t> counts(f, 0);
  const hash::IdealSlotHash slot_hash(seed);
  for (const Tag& tag : tags.tags()) {
    if (p < 1.0 && !rng.bernoulli(p)) continue;
    ++counts[slot_hash.slot(tag.id, f)];
  }
  accumulate_tx(counts, tx_count);
  std::vector<SlotState> states(f);
  for (std::uint32_t i = 0; i < f; ++i) {
    states[i] = channel.observe(counts[i], rng);
  }
  return states;
}

std::vector<SlotState> sampled_aloha_frame(std::size_t n, std::uint32_t f,
                                           double p, const Channel& channel,
                                           util::Xoshiro256ss& rng,
                                           std::uint64_t* tx_count) {
  const std::uint64_t responders = draw_binomial(n, p, rng);
  if (tx_count != nullptr) *tx_count += responders;
  std::vector<std::uint32_t> counts(f, 0);
  for (std::uint64_t r = 0; r < responders; ++r) {
    ++counts[rng.below(f)];
  }
  std::vector<SlotState> states(f);
  for (std::uint32_t i = 0; i < f; ++i) {
    states[i] = channel.observe(counts[i], rng);
  }
  return states;
}

SlotState run_single_slot(const TagPopulation& tags, double q,
                          std::uint64_t seed, const Channel& channel,
                          util::Xoshiro256ss& rng,
                          std::uint64_t* tx_count) {
  // ZOE's participation rule: hash the tagID with the per-frame seed and
  // compare against q — no tag-side RNG required.
  const std::uint64_t threshold =
      q >= 1.0 ? ~0ULL
               : static_cast<std::uint64_t>(
                     q * 18446744073709551616.0 /* 2^64 */);
  std::uint32_t responders = 0;
  for (const Tag& tag : tags.tags()) {
    if (hash::mix_with_seed(tag.id, seed) < threshold) ++responders;
  }
  if (tx_count != nullptr) *tx_count += responders;
  return channel.observe(responders, rng);
}

SlotState sampled_single_slot(std::size_t n, double q, const Channel& channel,
                              util::Xoshiro256ss& rng,
                              std::uint64_t* tx_count) {
  const std::uint64_t responders = draw_binomial(n, q, rng);
  if (tx_count != nullptr) *tx_count += responders;
  return channel.observe(static_cast<std::uint32_t>(
                             responders > 0xFFFFFFFFULL ? 0xFFFFFFFFULL
                                                        : responders),
                         rng);
}

util::BitVector run_lottery_frame(const TagPopulation& tags, std::uint32_t f,
                                  std::uint64_t seed, const Channel& channel,
                                  util::Xoshiro256ss& rng,
                                  std::uint64_t* tx_count) {
  std::vector<std::uint32_t> counts(f, 0);
  const hash::GeometricSlotHash geo(seed);
  for (const Tag& tag : tags.tags()) {
    ++counts[geo.slot(tag.id, f)];
  }
  if (tx_count != nullptr) *tx_count += tags.size();
  return counts_to_busy(counts, channel, rng);
}

util::BitVector sampled_lottery_frame(std::size_t n, std::uint32_t f,
                                      const Channel& channel,
                                      util::Xoshiro256ss& rng,
                                      std::uint64_t* tx_count) {
  // Sequential multinomial: slot j holds Binomial(n_remaining,
  // p_j / p_remaining) tags, with p_j = 2^-(j+1) and the tail mass
  // clamped into the last slot.
  std::vector<std::uint32_t> counts(f, 0);
  std::uint64_t remaining = n;
  double mass_remaining = 1.0;
  for (std::uint32_t j = 0; j + 1 < f && remaining > 0; ++j) {
    const double pj = std::ldexp(1.0, -static_cast<int>(j) - 1);
    const double cond = pj / mass_remaining;
    const std::uint64_t c =
        draw_binomial(remaining, cond > 1.0 ? 1.0 : cond, rng);
    counts[j] = static_cast<std::uint32_t>(c > 0xFFFFFFFFULL ? 0xFFFFFFFFULL
                                                             : c);
    remaining -= c;
    mass_remaining -= pj;
    if (mass_remaining <= 0.0) break;
  }
  counts[f - 1] += static_cast<std::uint32_t>(
      remaining > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : remaining);
  if (tx_count != nullptr) *tx_count += n;
  return counts_to_busy(counts, channel, rng);
}

}  // namespace bfce::rfid
