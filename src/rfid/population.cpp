#include "rfid/population.hpp"

#include <cmath>
#include <unordered_set>

#include "util/rng.hpp"

namespace bfce::rfid {

namespace {

constexpr std::uint64_t kIdMin = 1;
constexpr std::uint64_t kIdMax = 1000000000000000ULL;  // 10^15

std::uint64_t draw_id(TagIdDistribution dist, util::Xoshiro256ss& rng) {
  const auto span = static_cast<double>(kIdMax - kIdMin);
  switch (dist) {
    case TagIdDistribution::kT1Uniform:
      return rng.between(kIdMin, kIdMax);
    case TagIdDistribution::kT2ApproxNormal: {
      // Irwin–Hall with 3 addends: bell-shaped but visibly non-Gaussian
      // in the tails — the paper's "approximate normal distribution".
      const double u = (rng.uniform() + rng.uniform() + rng.uniform()) / 3.0;
      return kIdMin + static_cast<std::uint64_t>(u * span);
    }
    case TagIdDistribution::kT3Normal: {
      // Box–Muller; mean mid-range, σ = range/8, clipped into range.
      const double u1 = rng.uniform();
      const double u2 = rng.uniform();
      const double z = std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
                       std::cos(6.283185307179586 * u2);
      double v = 0.5 * span + z * (span / 8.0);
      if (v < 0.0) v = 0.0;
      if (v > span) v = span;
      return kIdMin + static_cast<std::uint64_t>(v);
    }
  }
  return kIdMin;
}

}  // namespace

std::string to_string(TagIdDistribution dist) {
  switch (dist) {
    case TagIdDistribution::kT1Uniform:
      return "T1";
    case TagIdDistribution::kT2ApproxNormal:
      return "T2";
    case TagIdDistribution::kT3Normal:
      return "T3";
  }
  return "?";
}

TagPopulation make_population(std::size_t n, TagIdDistribution dist,
                              std::uint64_t seed) {
  util::Xoshiro256ss rng(util::derive_seed(seed, 0xBADC0FFEE0DDF00DULL));
  std::vector<Tag> tags;
  tags.reserve(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(n * 2);
  while (tags.size() < n) {
    const std::uint64_t id = draw_id(dist, rng);
    if (!used.insert(id).second) continue;  // duplicate tagID — redraw
    Tag tag;
    tag.id = id;
    tag.rn = static_cast<std::uint32_t>(rng());  // manufacture-time RN32
    tags.push_back(tag);
  }
  return TagPopulation(std::move(tags));
}

}  // namespace bfce::rfid
