#include "rfid/frame_engine_simd.hpp"

#include <cmath>

#include "hash/mix.hpp"
#include "rfid/tag.hpp"
#include "util/rng.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define BFCE_HAVE_AVX512_KERNEL 1
#include <immintrin.h>
// GCC's AVX-512 intrinsic headers model "undefined" source operands as
// self-initialised locals (_mm512_undefined_epi32), which trips
// -Wmaybe-uninitialized when inlined under -O2. Silence only that
// diagnostic for this translation unit; the kernel reads no
// uninitialised data of its own.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#else
#define BFCE_HAVE_AVX512_KERNEL 0
#endif

namespace bfce::rfid::detail {

namespace {

/// Scalar decision span: tags [first, first + count) emitting lane ids
/// ((local0 + i) << 2) | j. Shared by the pure-scalar path and the
/// AVX-512 path's sub-8-tag tail, which both must produce the ids the
/// vector body would have.
std::size_t decide_span_scalar(std::uint64_t base, std::size_t first,
                               std::size_t count, std::size_t local0,
                               std::uint32_t threshold16,
                               std::uint32_t lane_mask,
                               std::uint16_t* out) noexcept {
  std::uint16_t* cursor = out;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t z = util::splitmix_at(base, first + i);
    const std::uint32_t local = static_cast<std::uint32_t>((local0 + i) << 2);
    for (std::uint32_t j = 0; j < 4; ++j) {
      if (((lane_mask >> j) & 1U) == 0U) continue;
      if (static_cast<std::uint32_t>((z >> (16U * j)) & 0xFFFFU) <
          threshold16) {
        *cursor++ = static_cast<std::uint16_t>(local | j);
      }
    }
  }
  return static_cast<std::size_t>(cursor - out);
}

#if BFCE_HAVE_AVX512_KERNEL

constexpr std::uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ULL;

/// 8 tags per iteration: each 64-bit lane holds splitmix_at(base, t) for
/// one tag (the splitmix finaliser is three xor-shift-multiply steps —
/// fully data-parallel once the state is counter-addressed); the 32
/// 16-bit slices are the tags' decision bits, compared against the
/// broadcast threshold in one instruction and compressed to dense lane
/// ids with vpcompressw.
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vbmi2"))) std::size_t
decide_tile_avx512(std::uint64_t base, std::size_t t0, std::size_t t1,
                   std::uint32_t threshold16, std::uint32_t lane_mask,
                   std::uint16_t* out) noexcept {
  const __m512i gamma8 =
      _mm512_set1_epi64(static_cast<long long>(8 * kGoldenGamma));
  const __m512i mul1 =
      _mm512_set1_epi64(static_cast<long long>(0xBF58476D1CE4E5B9ULL));
  const __m512i mul2 =
      _mm512_set1_epi64(static_cast<long long>(0x94D049BB133111EBULL));
  const __m512i thr = _mm512_set1_epi16(
      static_cast<short>(static_cast<std::uint16_t>(threshold16)));
  const __m512i lane_step = _mm512_set1_epi16(32);
  const __m512i lane_iota =
      _mm512_set_epi16(31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18,
                       17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2,
                       1, 0);
  // State lanes: base + (t + 1 .. t + 8)·γ for t = t0; wrap-around mod
  // 2^64 matches splitmix_at exactly.
  __m512i state = _mm512_add_epi64(
      _mm512_set1_epi64(static_cast<long long>(base + t0 * kGoldenGamma)),
      _mm512_mullo_epi64(_mm512_set_epi64(8, 7, 6, 5, 4, 3, 2, 1),
                         _mm512_set1_epi64(static_cast<long long>(
                             kGoldenGamma))));
  __m512i lanes = lane_iota;
  std::uint16_t* cursor = out;
  std::size_t t = t0;
  for (; t + 8 <= t1; t += 8) {
    __m512i z = state;
    z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 30));
    z = _mm512_mullo_epi64(z, mul1);
    z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 27));
    z = _mm512_mullo_epi64(z, mul2);
    z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 31));
    const __mmask32 hit = _mm512_cmplt_epu16_mask(z, thr) &
                          static_cast<__mmask32>(lane_mask);
    _mm512_mask_compressstoreu_epi16(cursor, hit, lanes);
    cursor += __builtin_popcount(static_cast<std::uint32_t>(hit));
    state = _mm512_add_epi64(state, gamma8);
    lanes = _mm512_add_epi16(lanes, lane_step);
  }
  cursor += decide_span_scalar(base, t, t1 - t, t - t0, threshold16,
                               lane_mask, cursor);
  return static_cast<std::size_t>(cursor - out);
}

#endif  // BFCE_HAVE_AVX512_KERNEL

/// Scalar scatter span: draws [first, first + count) emitting one slot
/// index each. Shared by the pure-scalar path and the AVX-512 path's
/// sub-8-draw tail.
void scatter_span_scalar(std::uint64_t base, std::uint64_t first,
                         std::uint64_t count, std::uint32_t w,
                         std::uint32_t* out) noexcept {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t z = util::splitmix_at(base, first + i);
    out[i] = static_cast<std::uint32_t>(((z >> 32) * w) >> 32);
  }
}

#if BFCE_HAVE_AVX512_KERNEL

/// 8 draws per iteration: each 64-bit lane holds splitmix_at(base, r)
/// for one draw; the slot is ((z >> 32) · w) >> 32 — shifts and a
/// 64-bit low multiply only, because no 64×64 high-multiply exists in
/// AVX-512 — then the 8 lanes truncate to 32 bits and store as one
/// 256-bit write.
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vbmi2"))) void
scatter_tile_avx512(std::uint64_t base, std::uint64_t r0, std::uint64_t r1,
                    std::uint32_t w, std::uint32_t* out) noexcept {
  const __m512i gamma8 =
      _mm512_set1_epi64(static_cast<long long>(8 * kGoldenGamma));
  const __m512i mul1 =
      _mm512_set1_epi64(static_cast<long long>(0xBF58476D1CE4E5B9ULL));
  const __m512i mul2 =
      _mm512_set1_epi64(static_cast<long long>(0x94D049BB133111EBULL));
  const __m512i w8 = _mm512_set1_epi64(static_cast<long long>(w));
  __m512i state = _mm512_add_epi64(
      _mm512_set1_epi64(static_cast<long long>(base + r0 * kGoldenGamma)),
      _mm512_mullo_epi64(_mm512_set_epi64(8, 7, 6, 5, 4, 3, 2, 1),
                         _mm512_set1_epi64(static_cast<long long>(
                             kGoldenGamma))));
  std::uint64_t r = r0;
  std::uint32_t* cursor = out;
  for (; r + 8 <= r1; r += 8, cursor += 8) {
    __m512i z = state;
    z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 30));
    z = _mm512_mullo_epi64(z, mul1);
    z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 27));
    z = _mm512_mullo_epi64(z, mul2);
    z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 31));
    const __m512i slot = _mm512_srli_epi64(
        _mm512_mullo_epi64(_mm512_srli_epi64(z, 32), w8), 32);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cursor),
                        _mm512_cvtepi64_epi32(slot));
    state = _mm512_add_epi64(state, gamma8);
  }
  scatter_span_scalar(base, r, r1 - r, w, cursor);
}

#endif  // BFCE_HAVE_AVX512_KERNEL

/// Scalar ALOHA span over tags [first, first + count): the binding
/// definition of the tile's output, shared by the pure-scalar path and
/// the AVX-512 path's sub-8-tag tail.
std::uint64_t aloha_span_scalar(const Tag* tags, std::size_t first,
                                std::size_t count, std::uint64_t premixed,
                                std::uint32_t f, bool stochastic,
                                std::uint64_t base, double p,
                                std::uint64_t* one,
                                std::uint64_t* two) noexcept {
  std::uint64_t responders = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t t = first + i;
    if (stochastic) {
      const std::uint64_t z = util::splitmix_at(base, t);
      if (static_cast<double>(z >> 11) * 0x1.0p-53 >= p) continue;
    }
    const std::uint64_t h = hash::fmix64(tags[t].id ^ premixed);
    const std::uint32_t slot = static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(h) * f) >> 64);
    const std::uint64_t bit = 1ULL << (slot & 63U);
    two[slot >> 6] |= one[slot >> 6] & bit;
    one[slot >> 6] |= bit;
    ++responders;
  }
  return responders;
}

#if BFCE_HAVE_AVX512_KERNEL

/// Occupancy byte states a tile accumulates before draining into the
/// planes: min(2, responders) per slot, held in a stack array so the
/// per-tag store is one independent byte RMW instead of the two
/// dependent plane-word RMWs of the direct update. Frames wider than
/// this fall back to the direct drain (the scan would stop amortising).
constexpr std::uint32_t kAlohaByteSlots = 1U << 16;

/// 8 tags per iteration: gather the ids (Tag is a 16-byte struct, id at
/// offset 0), run the fmix64 finaliser vectorised, and reduce to slots
/// with the exact two-partial-product multiply-shift. Slots accumulate
/// as saturating byte states (state += state < 2, branchless), and one
/// movemask drain per 64 slots folds the tile into the planes:
/// m1/m2 = "byte ≥ 1/2" compare masks ARE the plane words, combined
/// with the same cross term the shard merge uses (categories form a
/// commutative semilattice, so any tile split yields identical planes).
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vbmi2"))) std::uint64_t
aloha_tile_avx512(const Tag* tags, std::size_t t0, std::size_t t1,
                  std::uint64_t premixed, std::uint32_t f, bool stochastic,
                  std::uint64_t base, double p, std::uint64_t* one,
                  std::uint64_t* two) noexcept {
  static_assert(sizeof(Tag) == 16 && offsetof(Tag, id) == 0,
                "the id gather assumes a 16-byte Tag with id first");
  const __m512i gamma8 =
      _mm512_set1_epi64(static_cast<long long>(8 * kGoldenGamma));
  const __m512i smul1 =
      _mm512_set1_epi64(static_cast<long long>(0xBF58476D1CE4E5B9ULL));
  const __m512i smul2 =
      _mm512_set1_epi64(static_cast<long long>(0x94D049BB133111EBULL));
  const __m512i fmul1 =
      _mm512_set1_epi64(static_cast<long long>(0xFF51AFD7ED558CCDULL));
  const __m512i fmul2 =
      _mm512_set1_epi64(static_cast<long long>(0xC4CEB9FE1A85EC53ULL));
  const __m512i prem8 = _mm512_set1_epi64(static_cast<long long>(premixed));
  const __m512i f8 = _mm512_set1_epi64(static_cast<long long>(f));
  const __m512i idx = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
  // ceil(p·2^53) — exact: scaling a double by 2^53 only moves its
  // exponent. p ≥ 1 yields 2^53, above every 53-bit draw: all live.
  const std::uint64_t bar = p >= 1.0
                                ? (1ULL << 53)
                                : static_cast<std::uint64_t>(
                                      std::ceil(std::ldexp(p, 53)));
  const __m512i bar8 = _mm512_set1_epi64(static_cast<long long>(bar));
  __m512i state = _mm512_add_epi64(
      _mm512_set1_epi64(static_cast<long long>(base + t0 * kGoldenGamma)),
      _mm512_mullo_epi64(_mm512_set_epi64(8, 7, 6, 5, 4, 3, 2, 1),
                         _mm512_set1_epi64(static_cast<long long>(
                             kGoldenGamma))));
  // Occupancy byte states, zeroed to the next 64-byte group so the
  // drain can read whole groups without masking the last one.
  const bool use_bytes = f <= kAlohaByteSlots;
  alignas(64) std::uint8_t occ[kAlohaByteSlots];
  if (use_bytes) {
    __builtin_memset(occ, 0, (static_cast<std::size_t>(f) + 63) & ~std::size_t{63});
  }
  std::uint64_t responders = 0;
  alignas(32) std::uint32_t slots[8];
  std::size_t t = t0;
  for (; t + 8 <= t1; t += 8) {
    __mmask8 live = static_cast<__mmask8>(0xFF);
    if (stochastic) {
      __m512i z = state;
      z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 30));
      z = _mm512_mullo_epi64(z, smul1);
      z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 27));
      z = _mm512_mullo_epi64(z, smul2);
      z = _mm512_xor_epi64(z, _mm512_srli_epi64(z, 31));
      live = _mm512_cmplt_epu64_mask(_mm512_srli_epi64(z, 11), bar8);
      state = _mm512_add_epi64(state, gamma8);
    }
    if (live != 0) {
      __m512i h = _mm512_xor_epi64(
          _mm512_i64gather_epi64(idx, &tags[t].id, 8), prem8);
      h = _mm512_xor_epi64(h, _mm512_srli_epi64(h, 33));
      h = _mm512_mullo_epi64(h, fmul1);
      h = _mm512_xor_epi64(h, _mm512_srli_epi64(h, 33));
      h = _mm512_mullo_epi64(h, fmul2);
      h = _mm512_xor_epi64(h, _mm512_srli_epi64(h, 33));
      // slot = (h·f) >> 64 with h split into 32-bit halves:
      // (hi·f + ((lo·f) >> 32)) >> 32 — no 64×64 high multiply needed,
      // and exact (the discarded sub-2^32 remainders cannot carry).
      const __m512i lo = _mm512_srli_epi64(_mm512_mul_epu32(h, f8), 32);
      const __m512i hi = _mm512_mul_epu32(_mm512_srli_epi64(h, 32), f8);
      const __m512i slot8 = _mm512_srli_epi64(_mm512_add_epi64(hi, lo), 32);
      _mm256_store_si256(reinterpret_cast<__m256i*>(slots),
                         _mm512_cvtepi64_epi32(slot8));
      responders += static_cast<std::uint64_t>(
          __builtin_popcount(static_cast<unsigned>(live)));
      if (use_bytes) {
        if (live == 0xFF) {
          for (int j = 0; j < 8; ++j) {
            const std::uint8_t c = occ[slots[j]];
            occ[slots[j]] = static_cast<std::uint8_t>(c + (c < 2));
          }
        } else {
          for (std::uint32_t mask = live; mask != 0; mask &= mask - 1) {
            const std::uint32_t s = slots[__builtin_ctz(mask)];
            const std::uint8_t c = occ[s];
            occ[s] = static_cast<std::uint8_t>(c + (c < 2));
          }
        }
      } else {
        for (std::uint32_t mask = live; mask != 0; mask &= mask - 1) {
          const std::uint32_t s = slots[__builtin_ctz(mask)];
          const std::uint64_t bit = 1ULL << (s & 63U);
          two[s >> 6] |= one[s >> 6] & bit;
          one[s >> 6] |= bit;
        }
      }
    }
  }
  if (!use_bytes) {
    return responders + aloha_span_scalar(tags, t, t1 - t, premixed, f,
                                          stochastic, base, p, one, two);
  }
  // Scalar tail accumulates into the same byte states (identical
  // participation decisions — the integer compare IS the double one).
  for (; t < t1; ++t) {
    if (stochastic &&
        (util::splitmix_at(base, t) >> 11) >= bar) {
      continue;
    }
    const std::uint64_t h = hash::fmix64(tags[t].id ^ premixed);
    const std::uint32_t s = static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(h) * f) >> 64);
    const std::uint8_t c = occ[s];
    occ[s] = static_cast<std::uint8_t>(c + (c < 2));
    ++responders;
  }
  // Movemask drain: one 64-byte compare per plane word.
  const std::size_t groups = (static_cast<std::size_t>(f) + 63) / 64;
  const __m512i one8 = _mm512_set1_epi8(1);
  const __m512i two8 = _mm512_set1_epi8(2);
  for (std::size_t g = 0; g < groups; ++g) {
    const __m512i v = _mm512_load_si512(occ + g * 64);
    const std::uint64_t m1 =
        static_cast<std::uint64_t>(_mm512_cmpge_epu8_mask(v, one8));
    const std::uint64_t m2 =
        static_cast<std::uint64_t>(_mm512_cmpge_epu8_mask(v, two8));
    two[g] |= m2 | (one[g] & m1);
    one[g] |= m1;
  }
  return responders;
}

#endif  // BFCE_HAVE_AVX512_KERNEL

}  // namespace

bool simd_supported() noexcept {
#if BFCE_HAVE_AVX512_KERNEL
  static const bool supported =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vbmi2");
  return supported;
#else
  return false;
#endif
}

std::size_t bloom_decide_tile(std::uint64_t base, std::size_t t0,
                              std::size_t t1, std::uint32_t threshold16,
                              std::uint32_t lane_mask, bool allow_simd,
                              std::uint16_t* out) noexcept {
  if (threshold16 == 0 || lane_mask == 0 || t1 <= t0) return 0;
  if (threshold16 >= 65536) {
    // p = 1: every masked lane responds; no comparison needed.
    std::uint16_t* cursor = out;
    for (std::size_t t = t0; t < t1; ++t) {
      const std::uint32_t local = static_cast<std::uint32_t>((t - t0) << 2);
      for (std::uint32_t j = 0; j < 4; ++j) {
        if ((lane_mask >> j) & 1U) {
          *cursor++ = static_cast<std::uint16_t>(local | j);
        }
      }
    }
    return static_cast<std::size_t>(cursor - out);
  }
#if BFCE_HAVE_AVX512_KERNEL
  if (allow_simd && simd_supported()) {
    return decide_tile_avx512(base, t0, t1, threshold16, lane_mask, out);
  }
#else
  (void)allow_simd;
#endif
  return decide_span_scalar(base, t0, t1 - t0, 0, threshold16, lane_mask,
                            out);
}

std::uint64_t aloha_render_tile(const Tag* tags, std::size_t t0,
                                std::size_t t1, std::uint64_t premixed,
                                std::uint32_t f, bool stochastic,
                                std::uint64_t base, double p, bool allow_simd,
                                std::uint64_t* one,
                                std::uint64_t* two) noexcept {
  if (t1 <= t0) return 0;
#if BFCE_HAVE_AVX512_KERNEL
  if (allow_simd && simd_supported()) {
    return aloha_tile_avx512(tags, t0, t1, premixed, f, stochastic, base, p,
                             one, two);
  }
#else
  (void)allow_simd;
#endif
  return aloha_span_scalar(tags, t0, t1 - t0, premixed, f, stochastic, base,
                           p, one, two);
}

void sampled_scatter_tile(std::uint64_t base, std::uint64_t r0,
                          std::uint64_t r1, std::uint32_t w, bool allow_simd,
                          std::uint32_t* out) noexcept {
  if (r1 <= r0) return;
#if BFCE_HAVE_AVX512_KERNEL
  if (allow_simd && simd_supported()) {
    scatter_tile_avx512(base, r0, r1, w, out);
    return;
  }
#else
  (void)allow_simd;
#endif
  scatter_span_scalar(base, r0, r1 - r0, w, out);
}

}  // namespace bfce::rfid::detail
