#pragma once
// Multi-reader deployments.
//
// §III-A of the paper: readers are wired to a back-end server that
// coordinates and synchronises them, so multiple readers "can be
// logically considered as one reader" (following ZOE). This module
// makes that concrete: tags live on a unit floor, each reader covers a
// disc, and the back-end materialises the *union* population that the
// logical reader estimates against.
//
// It also exposes the per-reader sub-populations so benches and
// examples can demonstrate the classic multi-reader pitfall (cited in
// the paper's related work, Shah-Mansouri & Wong): summing independent
// per-reader estimates double-counts tags in overlap regions.

#include <cstdint>
#include <vector>

#include "rfid/population.hpp"

namespace bfce::rfid {

/// A reader's position and range on the unit floor [0,1]².
struct ReaderPlacement {
  double x = 0.5;
  double y = 0.5;
  double radius = 0.3;
};

/// Deterministic tag position derived from the tagID (uniform over the
/// floor; the same tag always sits at the same spot).
struct TagPosition {
  double x;
  double y;
};
TagPosition tag_position(const Tag& tag) noexcept;

/// A deployment of synchronised readers over one tag population.
class MultiReaderSystem {
 public:
  MultiReaderSystem(const TagPopulation& tags,
                    std::vector<ReaderPlacement> readers);

  [[nodiscard]] std::size_t reader_count() const noexcept { return readers_.size(); }
  const std::vector<ReaderPlacement>& readers() const noexcept {
    return readers_;
  }

  /// Tags covered by reader `r` alone (what that reader would inventory
  /// if it ran un-coordinated).
  const TagPopulation& reader_population(std::size_t r) const {
    return per_reader_[r];
  }

  /// Tags covered by at least one reader — the back-end's logical-reader
  /// view, i.e. what §III-A's synchronised system estimates.
  [[nodiscard]] const TagPopulation& union_population() const noexcept { return union_; }

  /// Tags covered by two or more readers (the double-counting mass).
  [[nodiscard]] std::size_t overlap_count() const noexcept { return overlap_; }

  /// Tags covered by no reader (blind spots).
  [[nodiscard]] std::size_t uncovered_count() const noexcept { return uncovered_; }

  /// Sum of per-reader coverage sizes: what naive per-reader estimation
  /// would add up to (union + double counting).
  std::size_t naive_sum() const noexcept;

  /// Lays `count` readers on a √count × √count grid with the given
  /// radius — a convenient dense deployment.
  static std::vector<ReaderPlacement> grid(std::size_t count, double radius);

  /// Reader-collision schedule: two readers whose discs overlap cannot
  /// interrogate simultaneously (reader-to-reader interference), so the
  /// back-end activates them in rounds. Returns a greedy colouring of
  /// the interference graph — readers[i] runs in round colours[i] — and
  /// the floor's total estimation time is (max colour + 1) × the
  /// per-reader protocol time.
  std::vector<std::uint32_t> interference_schedule() const;

  /// Number of rounds the schedule needs (max colour + 1; 0 if no
  /// readers).
  std::uint32_t schedule_rounds() const;

 private:
  std::vector<ReaderPlacement> readers_;
  std::vector<TagPopulation> per_reader_;
  TagPopulation union_;
  std::size_t overlap_ = 0;
  std::size_t uncovered_ = 0;
};

}  // namespace bfce::rfid
