#include "rfid/select.hpp"

#include <cassert>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace bfce::rfid {

TagPopulation select_population(const TagPopulation& tags,
                                const SelectMask& mask) {
  std::vector<Tag> selected;
  for (const Tag& tag : tags.tags()) {
    if (mask.matches(tag.id)) selected.push_back(tag);
  }
  return TagPopulation(std::move(selected));
}

TagPopulation make_categorized_population(
    const std::vector<std::size_t>& counts, std::uint32_t prefix_bits,
    std::uint64_t seed, std::uint32_t id_bits) {
  assert(prefix_bits > 0 && prefix_bits < id_bits);
  assert(counts.size() <= (1ULL << prefix_bits));
  util::Xoshiro256ss rng(util::derive_seed(seed, 0xCA7E60D1E5ULL));
  const std::uint32_t low_bits = id_bits - prefix_bits;
  std::vector<Tag> tags;
  std::unordered_set<std::uint64_t> used;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const std::uint64_t prefix = static_cast<std::uint64_t>(c) << low_bits;
    std::size_t made = 0;
    while (made < counts[c]) {
      const std::uint64_t id = prefix | (rng() & ((1ULL << low_bits) - 1));
      if (!used.insert(id).second) continue;
      Tag tag;
      tag.id = id;
      tag.rn = static_cast<std::uint32_t>(rng());
      tags.push_back(tag);
      ++made;
    }
  }
  return TagPopulation(std::move(tags));
}

}  // namespace bfce::rfid
