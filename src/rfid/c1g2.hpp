#pragma once
// EPCglobal Class-1 Generation-2 link timing (v1.2.0, §6.3.1.2-6.3.1.6).
//
// The paper quotes three derived constants — 37.76 µs/bit reader→tag,
// 18.88 µs/bit tag→reader, 302 µs inter-transmission gap — without
// showing where they come from. This module derives them from the
// standard's primitive link parameters so that sensitivity studies can
// turn the real knobs (Tari, BLF, divide ratio, Miller factor) instead
// of scaling opaque per-bit costs.
//
// Reader→tag (R=>T) uses PIE encoding: data-0 takes one Tari, data-1
// takes 1.5-2 Tari. With Tari = 25 µs and data-1 = 1.5·Tari + PW
// amortisation the paper's effective figure is 37.76 µs/bit, i.e. a
// 26.5 kb/s command link.
//
// Tag→reader (T=>R) backscatters at BLF = DR/TRcal. FM0 sends one bit
// per BLF cycle; Miller-M sends one per M cycles. The paper's 18.88
// µs/bit (53 kb/s) corresponds to FM0 at BLF ≈ 53 kHz.
//
// The 302 µs gap is the T1+T2/T4-style turnaround budget between any
// two consecutive transmissions.

#include <cstdint>

#include "rfid/timing.hpp"

namespace bfce::rfid {

/// Tag→reader encodings (§6.3.1.3.2).
enum class TagEncoding : std::uint8_t {
  kFm0 = 1,      ///< 1 cycle/bit
  kMiller2 = 2,  ///< 2 cycles/bit
  kMiller4 = 4,
  kMiller8 = 8,
};

/// Primitive C1G2 link parameters.
struct C1g2Link {
  /// Reference interval of a R=>T data-0, in µs (§6.3.1.2.3: 6.25-25 µs).
  double tari_us = 25.0;
  /// Ratio of a data-1 to Tari (standard: 1.5-2.0).
  double data1_ratio = 1.5;
  /// Fraction of symbols in a typical command stream that are data-1;
  /// 0.5 models the random payloads (seeds) BFCE and ZOE broadcast.
  double data1_fraction = 0.5;
  /// Interrogator-to-tag calibration: BLF = divide_ratio / trcal_us.
  double divide_ratio = 8.0;   ///< DR ∈ {8, 64/3}
  double trcal_us = 151.04;    ///< chosen so BLF ≈ 53 kHz (18.88 µs/bit)
  TagEncoding encoding = TagEncoding::kFm0;
  /// Turnaround budget charged between consecutive transmissions (µs):
  /// T1 (max(RTcal, 10·Tpri)) + T2 (3-20·Tpri) plus settling, ≈ 302 µs
  /// for the parameters above.
  double turnaround_us = 302.0;

  /// Backscatter link frequency in kHz.
  [[nodiscard]] double blf_khz() const noexcept { return divide_ratio / trcal_us * 1e3; }

  /// Effective reader→tag microseconds per bit under PIE.
  double reader_bit_us() const noexcept {
    const double data0 = tari_us;
    const double data1 = data1_ratio * tari_us;
    // PIE symbols end with a PW low pulse already included in the symbol
    // length; averaging over the payload mix gives the effective rate.
    const double mean_symbol =
        (1.0 - data1_fraction) * data0 + data1_fraction * data1;
    // The paper's 37.76 µs/bit at Tari=25 corresponds to mean symbol
    // 31.25 µs plus ~20.8% framing amortisation (preamble/frame-sync
    // spread over a 32-bit payload). Keep that amortisation explicit:
    constexpr double kFramingAmortisation = 1.20832;
    return mean_symbol * kFramingAmortisation;
  }

  /// Effective tag→reader microseconds per bit.
  double tag_bit_us() const noexcept {
    const double cycle_us = 1.0e3 / blf_khz();
    return cycle_us * static_cast<double>(encoding);
  }

  /// Collapses the primitive parameters into the coarse per-bit model
  /// the protocols charge against.
  TimingModel to_timing_model() const noexcept {
    TimingModel m;
    m.reader_bit_us = reader_bit_us();
    m.tag_bit_us = tag_bit_us();
    m.interval_us = turnaround_us;
    return m;
  }
};

/// The paper's link: Tari 25 µs PIE at 26.5 kb/s, FM0 at ~53 kb/s,
/// 302 µs turnaround. to_timing_model() reproduces 37.76/18.88/302 to
/// within rounding.
C1g2Link paper_link() noexcept;

}  // namespace bfce::rfid
