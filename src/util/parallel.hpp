#pragma once
// Minimal deterministic task-parallel infrastructure.
//
// Monte-Carlo sweeps dominate the benchmark harness; they are embarrassingly
// parallel across trials. The contract here is that results are a pure
// function of (master seed, trial index), so the *numbers* are identical for
// any thread count — threads only change wall-clock time.
//
// Since the Executor refactor, parallel_for dispatches onto a process-wide
// persistent worker pool (util::Executor) instead of spawning threads per
// call: workers park between calls, work is dealt as stealable contiguous
// index ranges, and calling parallel_for from inside a dispatched fn is safe
// (the nested call inlines or donates work to the pool — it never deadlocks).

#include <cstddef>
#include <functional>

namespace bfce::util {

/// Number of worker threads to use.
///
/// Honours the BFCE_THREADS environment variable (useful on shared CI
/// machines) when it holds a plain integer in [1, 4096]; any other value —
/// "abc", "0", "8x", empty — is rejected with a one-time warning to stderr
/// and the hardware concurrency fallback is used instead (never less
/// than 1).
unsigned default_thread_count();

/// Runs `fn(i)` for every i in [begin, end) across up to `threads`
/// participants (the calling thread is one of them; `threads == 0` means
/// default_thread_count()).
///
/// Indices are dealt in contiguous chunks; `fn` must be safe to call
/// concurrently for distinct indices and must not depend on execution
/// order. Nested calls from inside `fn` are safe. If `fn` throws, the first
/// exception cancels the remaining indices and is rethrown to the caller
/// once in-flight indices drain.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace bfce::util
