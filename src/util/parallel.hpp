#pragma once
// Minimal deterministic task-parallel infrastructure.
//
// Monte-Carlo sweeps dominate the benchmark harness; they are embarrassingly
// parallel across trials. The contract here is that results are a pure
// function of (master seed, trial index), so the *numbers* are identical for
// any thread count — threads only change wall-clock time.

#include <cstddef>
#include <functional>
#include <thread>

namespace bfce::util {

/// Number of worker threads to use.
///
/// Honours the BFCE_THREADS environment variable (useful on shared CI
/// machines); otherwise uses std::thread::hardware_concurrency(), never
/// less than 1.
unsigned default_thread_count();

/// Runs `fn(i)` for every i in [begin, end) across `threads` workers.
///
/// Indices are dealt in contiguous chunks; `fn` must be safe to call
/// concurrently for distinct indices and must not depend on execution
/// order. Exceptions thrown by `fn` terminate the process (workers are not
/// exception channels — fail loudly instead of corrupting a sweep).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace bfce::util
