#pragma once
// Deterministic random-number infrastructure.
//
// Everything stochastic in this repository flows through these generators so
// that every experiment is reproducible from a single master seed, and so
// that Monte-Carlo trials can be split into independent streams that do not
// depend on thread scheduling.

#include <bit>
#include <cstdint>
#include <limits>
#include <string_view>

namespace bfce::util {

/// SplitMix64 — tiny, statistically solid 64-bit generator.
///
/// Used directly for seed derivation (its stream-splitting property is the
/// point: consecutive outputs seed independent child generators) and as the
/// recommended way to initialise Xoshiro256ss state.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value (Steele, Lea & Flood's splitmix64 finaliser).
  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
///
/// Satisfies UniformRandomBitGenerator, so it plugs into <random>
/// distributions (we use std::binomial_distribution in the sampled frame
/// executor). State is seeded through SplitMix64 as the authors recommend.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Value of the SplitMix64 stream seeded with `base` at zero-based
/// position `index`, computed directly instead of by generating the
/// prefix: `splitmix_at(base, i)` equals the (i+1)-th output of
/// `SplitMix64(base)`.
///
/// This is counter-addressed randomness: because the value depends only
/// on (base, index), it can be evaluated in any order, by any thread,
/// for any partition of the index range — the property the FrameEngine's
/// sharded exact walk builds its shard-count-invariance on (per-tag
/// decisions are indexed by the global tag index, never by a stream
/// position that depends on who walked first).
constexpr std::uint64_t splitmix_at(std::uint64_t base,
                                    std::uint64_t index) noexcept {
  // base + (index+1)*gamma wraps mod 2^64 by design: it is the
  // splitmix64 state after index+1 golden-gamma increments (defined
  // unsigned behaviour; clang's -fsanitize=integer unsigned-wrap
  // checker would flag this intentional site).
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives the seed for child stream `index` from `master`.
///
/// Child streams produced from distinct indices are statistically
/// independent; this is how per-trial / per-tag / per-frame generators are
/// created without coupling them to execution order.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept;

/// Binomial(trials, p) draw — the one sanctioned way to sample a binomial
/// anywhere in src/.
///
/// Wraps std::binomial_distribution (so draws are bit-identical to the
/// historical in-line uses) but serialises the draw behind a global mutex:
/// glibc's lgamma(), which libstdc++ calls both while precomputing the
/// distribution's parameters and inside the BTPE rejection step of large-np
/// draws, writes the process-global `signgam`, so two worker threads
/// drawing concurrently is a genuine data race (found by
/// tests/race_stress_test.cpp under the tsan preset). The rng stream is
/// consumed in exactly the same order as before, and sampled-mode frames
/// make one draw per frame, so the lock is far off the per-slot hot path.
std::uint64_t draw_binomial(std::uint64_t trials, double p, Xoshiro256ss& rng);

/// Splitmix64-based sponge for deriving one seed from several typed
/// components (sweep coordinates, protocol names, ...).
///
/// Each absorb() runs the previous state XOR the component through a full
/// splitmix64 step, so every component avalanches into all 64 bits of the
/// result. This replaces ad-hoc `seed ^ uint(eps*1e4) ^ hash(name)`
/// mixing, where nearby sweep points (n, ε, δ) could collide into
/// correlated streams: doubles are absorbed by bit pattern, not by lossy
/// truncation, and strings via a byte-wise FNV-1a pre-hash.
class SeedMixer {
 public:
  explicit constexpr SeedMixer(std::uint64_t master) noexcept
      : state_(next(0x243F6A8885A308D3ULL ^ master)) {}

  constexpr SeedMixer& absorb(std::uint64_t component) noexcept {
    state_ = next(state_ ^ component);
    return *this;
  }

  /// Absorbs the full bit pattern of a double (no truncation; 0.05 and
  /// 0.050001 land in unrelated regions of the seed space).
  constexpr SeedMixer& absorb(double component) noexcept {
    return absorb(std::bit_cast<std::uint64_t>(component));
  }

  /// Absorbs a string byte-wise (FNV-1a), then mixes.
  constexpr SeedMixer& absorb(std::string_view component) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : component) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
    }
    return absorb(h);
  }

  /// The derived seed for everything absorbed so far.
  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return next(state_); }

 private:
  /// One splitmix64 step: advance by the golden-gamma increment and
  /// finalise (same construction as SplitMix64::operator()).
  static constexpr std::uint64_t next(std::uint64_t x) noexcept {
    std::uint64_t z = x + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_;
};

}  // namespace bfce::util
