#pragma once
// Tiny command-line option parser shared by benches and examples.
//
// Accepts `--key=value` and `--flag` forms only; anything unrecognised is a
// hard error so typos in sweep parameters cannot silently fall back to
// defaults.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bfce::util {

/// Parsed command line.
class Cli {
 public:
  /// Parses argv. `allowed` is the closed set of option names (without the
  /// leading dashes); an unknown option aborts with a usage message listing
  /// the allowed names.
  Cli(int argc, const char* const* argv, std::vector<std::string> allowed);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Common to every bench: emit CSV instead of the aligned table.
  [[nodiscard]] bool csv() const { return has("csv"); }
  /// Common to every bench: master seed for the Monte-Carlo streams.
  [[nodiscard]] std::uint64_t seed() const { return get_u64("seed", 20150701); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace bfce::util
