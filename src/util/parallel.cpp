#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

namespace bfce::util {

unsigned default_thread_count() {
  if (const char* env = std::getenv("BFCE_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (begin >= end) return;
  if (threads == 0) threads = default_thread_count();
  const std::size_t count = end - begin;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (threads > count) threads = static_cast<unsigned>(count);

  // Dynamic chunking via a shared cursor: trials have very uneven cost
  // (ZOE re-runs vs BFCE's constant frames), so static partitioning would
  // leave workers idle.
  std::atomic<std::size_t> next{begin};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
}

}  // namespace bfce::util
