#include "util/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/executor.hpp"

namespace bfce::util {

unsigned default_thread_count() {
  // hardware_concurrency() re-reads /sys/devices/system/cpu on every
  // call (~1 µs) — far too slow for a function the adaptive planner
  // consults per frame. The count cannot change for a running process,
  // so resolve it once; the BFCE_THREADS override below stays dynamic.
  static const unsigned hw = [] {
    const unsigned raw = std::thread::hardware_concurrency();
    return raw == 0 ? 1u : raw;
  }();
  if (const char* env = std::getenv("BFCE_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    const bool clean = end != env && *end == '\0' && errno == 0 &&
                       parsed >= 1 && parsed <= 4096;
    if (clean) return static_cast<unsigned>(parsed);
    // One warning per distinct process, not per call: default_thread_count
    // sits on the dispatch path of every parallel_for.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "bfce: ignoring invalid BFCE_THREADS=\"%s\" (expected an "
                   "integer in [1, 4096]); using hardware concurrency (%u)\n",
                   env, hw);
    }
  }
  return hw;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (begin >= end) return;
  if (threads == 0) threads = default_thread_count();
  Executor::instance().run(begin, end, fn, threads);
}

}  // namespace bfce::util
