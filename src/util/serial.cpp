#include "util/serial.hpp"

#include <array>

namespace bfce::util {

namespace {

/// Bit-reflected CRC-64/ECMA-182 table (poly 0xC96C5795D7870F42, the
/// reflection of 0x42F0E1EBA9EA3693), built once.
const std::array<std::uint64_t, 256>& crc64_table() noexcept {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    constexpr std::uint64_t poly = 0xC96C5795D7870F42ULL;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint64_t crc64(const void* data, std::size_t size) noexcept {
  const auto& table = crc64_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t crc = ~std::uint64_t{0};
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace bfce::util
