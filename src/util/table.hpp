#pragma once
// ASCII table and CSV emission for the benchmark harnesses.
//
// Every bench binary reproduces a figure/table from the paper; the harness
// prints both a human-readable aligned table (stdout) and, when asked,
// machine-readable CSV so series can be re-plotted.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace bfce::util {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic values with `printf`-style precision.
  static std::string num(double v, int precision = 4);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the aligned table with a separator under the header.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bfce::util
