#pragma once
// Packed bit vector used for Bloom-filter frames at the reader side.
//
// std::vector<bool> is avoided deliberately: we need popcount over words,
// stable word access for tests, and no proxy-reference surprises.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bfce::util {

/// Fixed-capacity-after-construction packed bit vector.
class BitVector {
 public:
  BitVector() = default;

  /// Creates `size` bits, all cleared.
  explicit BitVector(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reads bit `i`. Precondition: i < size().
  bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Sets bit `i` to `value`. Precondition: i < size().
  void set(std::size_t i, bool value = true) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Clears all bits; size is unchanged.
  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits over the whole vector.
  std::size_t count_ones() const noexcept;

  /// Number of set bits among the first `prefix` bits.
  /// Used by BFCE's rough phase, which truncates the frame at 1024 slots.
  std::size_t count_ones_prefix(std::size_t prefix) const noexcept;

  /// Fraction of set bits among the first `prefix` bits (ρ̄ in the paper).
  double ones_ratio(std::size_t prefix) const noexcept {
    return prefix == 0
               ? 0.0
               : static_cast<double>(count_ones_prefix(prefix)) /
                     static_cast<double>(prefix);
  }

  /// Index of the first cleared bit, or size() if all bits are set.
  std::size_t first_zero() const noexcept;

  /// Index of the first set bit, or size() if all bits are cleared.
  std::size_t first_one() const noexcept;

  /// Raw word storage (little-endian bit order within each word).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Number of 64-bit storage words ((size + 63) / 64).
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  /// Reads storage word `wi`. Precondition: wi < word_count().
  [[nodiscard]] std::uint64_t word(std::size_t wi) const noexcept {
    return words_[wi];
  }

  /// Overwrites storage word `wi` (64 slots at a time). Bits beyond
  /// size() are masked off, so the final partial word can never hold
  /// ghost ones — count_ones and first_zero depend on that invariant.
  /// Precondition: wi < word_count().
  void set_word(std::size_t wi, std::uint64_t value) noexcept {
    words_[wi] = value & tail_mask(wi);
  }

  /// ORs `value` into storage word `wi` (tail-masked like set_word) —
  /// the word-wide merge primitive for shard-local busy bitmaps.
  /// Precondition: wi < word_count().
  void or_word(std::size_t wi, std::uint64_t value) noexcept {
    words_[wi] |= value & tail_mask(wi);
  }

 private:
  /// All-ones for full words, the partial mask for the final word of a
  /// size that is not a multiple of 64.
  [[nodiscard]] std::uint64_t tail_mask(std::size_t wi) const noexcept {
    const std::size_t rem = size_ & 63;
    return (rem != 0 && wi + 1 == words_.size()) ? (1ULL << rem) - 1
                                                 : ~0ULL;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bfce::util
