#include "util/executor.hpp"

#include <algorithm>
#include <exception>

namespace bfce::util {
namespace {

thread_local bool tl_pool_worker = false;

// Backstop on pool growth under oversubscription; far above any sane
// request, just bounds the damage of parallel_for(…, huge_thread_count).
constexpr unsigned kMaxWorkers = 256;

// A lane is one contiguous index range packed into a single atomic word:
// (lo << 32) | hi, both relative to the job base. Every transition —
// owner pop, thief split, cancel drain — is a CAS on the packed word, so
// there is no ABA and no separate top/bottom race to reason about.
constexpr std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) noexcept {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
constexpr std::uint32_t lo_of(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t hi_of(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r);
}

}  // namespace

struct Executor::Job {
  static constexpr unsigned kMaxLanes = 64;

  struct alignas(64) Lane {
    std::atomic<std::uint64_t> range{0};
  };

  Lane lanes[kMaxLanes];
  unsigned lane_count = 0;
  std::size_t base = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  unsigned max_helpers = 0;                 // pool-side participant budget
  std::atomic<std::uint32_t> next_slot{1};  // slot 0 is the run() caller
  std::atomic<std::uint64_t> remaining{0};  // indices not yet run or drained
  std::atomic<std::uint32_t> helpers{0};    // pool workers inside participate
  std::atomic<bool> cancelled{false};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // guarded by done_mu; first exception wins
  Job* next = nullptr;       // intrusive active list, guarded by Executor::mu_
  Job* prev = nullptr;
  bool listed = false;

  static std::uint64_t drain_lane(Lane& lane);
  void finish_items(std::uint64_t k);
};

/// Empties one lane via CAS and returns how many indices it held.
std::uint64_t Executor::Job::drain_lane(Lane& lane) {
  std::uint64_t r = lane.range.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint32_t lo = lo_of(r);
    const std::uint32_t hi = hi_of(r);
    if (lo >= hi) return 0;
    if (lane.range.compare_exchange_weak(r, pack(hi, hi),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      return hi - lo;
    }
  }
}

/// Credits `k` finished (or cancelled) indices and signals the caller when
/// the job is complete. The acq_rel RMW chain is what publishes every
/// worker's fn side effects to the thread that observes remaining == 0.
void Executor::Job::finish_items(std::uint64_t k) {
  if (remaining.fetch_sub(k, std::memory_order_acq_rel) == k) {
    std::lock_guard<std::mutex> lk(done_mu);
    done_cv.notify_all();
  }
}

void Executor::participate(Job& job, unsigned slot, std::uint64_t* steals) {
  const unsigned lanes = job.lane_count;
  // Unique lane ownership: slots beyond the lane count are pure thieves
  // (they pop single indices but never install a stolen range, so no two
  // participants ever install into the same lane).
  const unsigned own = slot < lanes ? slot : lanes;

  auto run_index = [&](std::uint32_t idx) {
    try {
      (*job.fn)(job.base + idx);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(job.done_mu);
        if (!job.error) job.error = std::current_exception();
      }
      job.cancelled.store(true, std::memory_order_release);
      // Drain every untaken index so `remaining` can reach zero and the
      // caller can rethrow. CAS-based, so concurrent drains never
      // double-count.
      std::uint64_t drained = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        drained += Job::drain_lane(job.lanes[l]);
      }
      if (drained != 0) job.finish_items(drained);
    }
    job.finish_items(1);
  };

  for (;;) {
    if (job.cancelled.load(std::memory_order_acquire)) return;

    // 1. Pop from the owned lane's low end.
    bool got = false;
    std::uint32_t idx = 0;
    if (own < lanes) {
      std::uint64_t r = job.lanes[own].range.load(std::memory_order_relaxed);
      while (lo_of(r) < hi_of(r)) {
        if (job.lanes[own].range.compare_exchange_weak(
                r, pack(lo_of(r) + 1, hi_of(r)), std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          idx = lo_of(r);
          got = true;
          break;
        }
      }
    }

    if (!got) {
      // 2. Steal: find the fullest other lane.
      unsigned victim = lanes;
      std::uint32_t best = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        if (l == own) continue;
        const std::uint64_t r = job.lanes[l].range.load(std::memory_order_relaxed);
        const std::uint32_t lo = lo_of(r);
        const std::uint32_t hi = hi_of(r);
        if (hi > lo && hi - lo > best) {
          best = hi - lo;
          victim = l;
        }
      }
      if (victim == lanes) return;  // every lane drained: job is finishing

      std::uint64_t r = job.lanes[victim].range.load(std::memory_order_relaxed);
      for (;;) {
        const std::uint32_t lo = lo_of(r);
        const std::uint32_t hi = hi_of(r);
        if (lo >= hi) break;  // contended away; rescan
        if (hi - lo == 1 || own >= lanes) {
          // Single index (or no lane to install into): plain pop.
          if (job.lanes[victim].range.compare_exchange_weak(
                  r, pack(lo + 1, hi), std::memory_order_acq_rel,
                  std::memory_order_relaxed)) {
            idx = lo;
            got = true;
            break;
          }
        } else {
          // Split: victim keeps the low half [lo, mid); we run `mid` now
          // and install [mid+1, hi) into our own (empty) lane, where other
          // thieves can steal from it in turn.
          const std::uint32_t mid = lo + (hi - lo + 1) / 2;
          if (job.lanes[victim].range.compare_exchange_weak(
                  r, pack(lo, mid), std::memory_order_acq_rel,
                  std::memory_order_relaxed)) {
            if (mid + 1 < hi) {
              std::uint64_t mine =
                  job.lanes[own].range.load(std::memory_order_relaxed);
              while (!job.lanes[own].range.compare_exchange_weak(
                  mine, pack(mid + 1, hi), std::memory_order_acq_rel,
                  std::memory_order_relaxed)) {
              }
              // A cancel drain may have swept our lane before the install
              // landed; re-drain so the cancelled indices are credited.
              if (job.cancelled.load(std::memory_order_acquire)) {
                const std::uint64_t d = Job::drain_lane(job.lanes[own]);
                if (d != 0) job.finish_items(d);
              }
            }
            idx = mid;
            got = true;
            break;
          }
        }
      }
      if (!got) continue;
      ++*steals;
    }

    run_index(idx);
  }
}

Executor& Executor::instance() {
  static Executor pool;
  return pool;
}

bool Executor::on_worker_thread() noexcept { return tl_pool_worker; }

unsigned Executor::live_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<unsigned>(threads_.size());
}

Executor::Stats Executor::stats() const {
  Stats s;
  s.dispatches = dispatches_.load(std::memory_order_relaxed);
  s.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.spawned = spawned_.load(std::memory_order_relaxed);
  return s;
}

void Executor::ensure_workers(unsigned wanted) {
  wanted = std::min(wanted, kMaxWorkers);
  if (wanted == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (stopping_) return;  // shutdown in flight; the caller runs alone
  while (threads_.size() < wanted) {
    threads_.emplace_back([this] { worker_loop(); });
    spawned_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Executor::worker_loop() {
  tl_pool_worker = true;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] {
        if (stopping_) return true;
        for (Job* j = active_head_; j != nullptr; j = j->next) {
          if (j->cancelled.load(std::memory_order_relaxed)) continue;
          if (j->helpers.load(std::memory_order_relaxed) >= j->max_helpers) {
            continue;
          }
          // Only adopt a job that still has untaken lane work: once every
          // lane is empty no new lane work can appear (splits only move
          // existing ranges), so joining would be a busy no-op.
          bool has_work = false;
          for (unsigned l = 0; l < j->lane_count && !has_work; ++l) {
            const std::uint64_t r =
                j->lanes[l].range.load(std::memory_order_relaxed);
            has_work = lo_of(r) < hi_of(r);
          }
          if (!has_work) continue;
          job = j;
          return true;
        }
        return false;
      });
      if (stopping_) return;
      job->helpers.fetch_add(1, std::memory_order_relaxed);
    }
    const unsigned slot = job->next_slot.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t steals = 0;
    participate(*job, slot, &steals);
    if (steals != 0) steals_.fetch_add(steals, std::memory_order_relaxed);
    if (job->helpers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(job->done_mu);
      job->done_cv.notify_all();
    }
  }
}

void Executor::run_bounded(std::size_t begin, std::size_t count,
                           const std::function<void(std::size_t)>& fn,
                           unsigned threads) {
  Job job;
  const unsigned lanes = static_cast<unsigned>(std::min<std::size_t>(
      std::min<std::size_t>(Job::kMaxLanes, threads), count));
  job.lane_count = lanes;
  job.base = begin;
  job.fn = &fn;
  job.max_helpers = threads - 1;
  job.remaining.store(count, std::memory_order_relaxed);
  // Contiguous initial partition: participant s starts on the s-th slice of
  // the index range, which is what keys first-touch page placement to
  // tag-range ownership in the FrameEngine's sharded walks.
  std::size_t start = 0;
  for (unsigned l = 0; l < lanes; ++l) {
    const std::size_t stop = count * (l + 1) / lanes;
    job.lanes[l].range.store(
        pack(static_cast<std::uint32_t>(start), static_cast<std::uint32_t>(stop)),
        std::memory_order_relaxed);
    start = stop;
  }

  ensure_workers(threads - 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job.next = active_head_;
    if (active_head_ != nullptr) active_head_->prev = &job;
    active_head_ = &job;
    job.listed = true;
  }
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();

  std::uint64_t steals = 0;
  participate(job, /*slot=*/0, &steals);
  if (steals != 0) steals_.fetch_add(steals, std::memory_order_relaxed);

  // Completion protocol: wait for every index to finish, unlink so no new
  // worker can adopt the job, then wait out adopters already inside — only
  // then may the stack-allocated Job die.
  {
    std::unique_lock<std::mutex> lk(job.done_mu);
    job.done_cv.wait(lk, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (job.listed) {
      if (job.prev != nullptr) {
        job.prev->next = job.next;
      } else {
        active_head_ = job.next;
      }
      if (job.next != nullptr) job.next->prev = job.prev;
      job.listed = false;
    }
  }
  {
    std::unique_lock<std::mutex> lk(job.done_mu);
    job.done_cv.wait(lk, [&] {
      return job.helpers.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.error) std::rethrow_exception(job.error);
}

void Executor::run(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   unsigned threads) {
  if (begin >= end) return;
  std::size_t count = end - begin;
  if (threads > count) threads = static_cast<unsigned>(count);
  if (threads <= 1 || count == 1) {
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Lane ranges are packed 32-bit pairs; split astronomically large ranges
  // into bounded sub-jobs (never hit by real workloads).
  constexpr std::size_t kMaxChunk = std::size_t{1} << 31;
  while (count != 0) {
    const std::size_t chunk = std::min(count, kMaxChunk);
    run_bounded(begin, chunk, fn, threads);
    begin += chunk;
    count -= chunk;
  }
}

void Executor::shutdown() {
  std::vector<std::thread> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (threads_.empty()) return;
    stopping_ = true;
    doomed.swap(threads_);
  }
  cv_.notify_all();
  for (auto& t : doomed) t.join();
  std::lock_guard<std::mutex> lk(mu_);
  stopping_ = false;
}

Executor::~Executor() { shutdown(); }

}  // namespace bfce::util
