#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace bfce::util {

Cli::Cli(int argc, const char* const* argv,
         std::vector<std::string> allowed) {
  // Options shared by every binary.
  allowed.emplace_back("csv");
  allowed.emplace_back("seed");
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    const std::string key(arg.substr(0, eq));
    const std::string value(eq == std::string_view::npos
                                ? std::string_view("1")
                                : arg.substr(eq + 1));
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::fprintf(stderr, "unknown option '--%s'; allowed:", key.c_str());
      for (const auto& a : allowed) std::fprintf(stderr, " --%s", a.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    values_[key] = value;
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Cli::get(const std::string& key,
                     const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

std::uint64_t Cli::get_u64(const std::string& key,
                           std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoull(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

}  // namespace bfce::util
