#include "util/bitvector.hpp"

#include <bit>

namespace bfce::util {

std::size_t BitVector::count_ones() const noexcept {
  return count_ones_prefix(size_);
}

std::size_t BitVector::count_ones_prefix(std::size_t prefix) const noexcept {
  if (prefix > size_) prefix = size_;
  std::size_t total = 0;
  const std::size_t full_words = prefix >> 6;
  for (std::size_t w = 0; w < full_words; ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  const std::size_t rem = prefix & 63;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    total += static_cast<std::size_t>(std::popcount(words_[full_words] & mask));
  }
  return total;
}

std::size_t BitVector::first_zero() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t inverted = ~words_[w];
    if (inverted != 0) {
      const std::size_t bit =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(inverted));
      return bit < size_ ? bit : size_;
    }
  }
  return size_;
}

std::size_t BitVector::first_one() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      const std::size_t bit =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
      return bit < size_ ? bit : size_;
    }
  }
  return size_;
}

}  // namespace bfce::util
