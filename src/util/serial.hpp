#pragma once
// Bounds-checked binary serialization primitives.
//
// Shared by the service snapshot codec (service/snapshot.hpp) and the
// wire front door (service/wire.hpp): both speak the same little-endian,
// length-prefixed byte format, so the encode/decode core lives here once.
//
//  * ByteWriter appends fixed-width little-endian scalars (doubles by
//    bit pattern — encoding is bit-exact and deterministic, which the
//    golden-snapshot fixture test depends on).
//  * ByteReader is the safety half: every read is bounds-checked and a
//    failed read latches ok() == false and returns a zero value instead
//    of touching out-of-range memory. Decoders can therefore run over
//    hostile bytes (truncated, bit-flipped, crafted) and report a typed
//    error — never UB. Count fields are guarded with remaining()-based
//    plausibility checks before any reservation, so a flipped length
//    cannot OOM the process either.
//  * crc64() is the ECMA-182 CRC the snapshot trailer uses to reject
//    silent corruption before any field is decoded.
//
// Integers are encoded at fixed width (u8/u16/u32/u64); all multi-byte
// values are little-endian regardless of host order.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitvector.hpp"

namespace bfce::util {

/// CRC-64/ECMA-182 (poly 0x42F0E1EBA9EA3693, bit-reflected form) over
/// `size` bytes. Table-driven; the table is built on first use.
std::uint64_t crc64(const void* data, std::size_t size) noexcept;

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }

  /// Doubles travel by bit pattern: exact round-trip, no locale/format
  /// ambiguity, deterministic bytes for the golden fixture.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// u32 byte length + raw bytes (no terminator).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  /// Bit length + storage words (tail bits beyond size() are zero by
  /// BitVector's invariant, so the encoding is canonical).
  void bitvector(const BitVector& bv) {
    u64(bv.size());
    for (std::size_t w = 0; w < bv.word_count(); ++w) u64(bv.word(w));
  }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian byte source. All reads after a failure
/// return zero values; check ok() once at the end of a decode (or
/// earlier, before trusting a count).
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size) noexcept
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes) noexcept
      : ByteReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  /// True when the reader is ok() and fully consumed — decoders use it
  /// to reject trailing garbage.
  [[nodiscard]] bool exhausted() const noexcept {
    return ok_ && pos_ == size_;
  }

  /// Latches the failure state explicitly (decoders call this when a
  /// semantic check fails, e.g. an enum out of range).
  void fail() noexcept { ok_ = false; }

  std::uint8_t u8() noexcept { return read_le<std::uint8_t>(); }
  std::uint16_t u16() noexcept { return read_le<std::uint16_t>(); }
  std::uint32_t u32() noexcept { return read_le<std::uint32_t>(); }
  std::uint64_t u64() noexcept { return read_le<std::uint64_t>(); }

  double f64() noexcept {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Bounded string read: lengths above `max_bytes` (or the remaining
  /// input) fail instead of allocating.
  std::string str(std::size_t max_bytes = 1 << 16) {
    const std::uint32_t len = u32();
    if (!ok_ || len > max_bytes || len > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  /// Bounded BitVector read; `max_bits` guards the allocation.
  BitVector bitvector(std::uint64_t max_bits = std::uint64_t{1} << 33) {
    const std::uint64_t bits = u64();
    if (!ok_ || bits > max_bits) {
      ok_ = false;
      return {};
    }
    const std::size_t words = (static_cast<std::size_t>(bits) + 63) / 64;
    if (words * sizeof(std::uint64_t) > remaining()) {
      ok_ = false;
      return {};
    }
    BitVector bv(static_cast<std::size_t>(bits));
    for (std::size_t w = 0; w < words; ++w) bv.set_word(w, u64());
    return bv;
  }

  /// True when a forthcoming `count` of `min_element_bytes`-wide records
  /// could plausibly fit in the remaining input. Call before reserving.
  [[nodiscard]] bool fits(std::uint64_t count,
                          std::size_t min_element_bytes) const noexcept {
    return count <= remaining() / (min_element_bytes == 0
                                       ? 1
                                       : min_element_bytes);
  }

 private:
  template <typename T>
  T read_le() noexcept {
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return T{0};
    }
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace bfce::util
