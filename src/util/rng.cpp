#include "util/rng.hpp"

namespace bfce::util {

std::uint64_t Xoshiro256ss::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method: multiply-shift with a rejection
  // step only in the (rare) biased region.
  if (bound == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  // Feed (master, index) through two rounds of splitmix so that adjacent
  // indices land in unrelated regions of the seed space.
  SplitMix64 sm(master ^ (0xA0761D6478BD642FULL * (index + 1)));
  sm();  // discard one output to decorrelate from the raw key
  return sm();
}

}  // namespace bfce::util
