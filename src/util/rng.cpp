#include "util/rng.hpp"

#include <mutex>
#include <random>

namespace bfce::util {

std::uint64_t Xoshiro256ss::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method: multiply-shift with a rejection
  // step only in the (rare) biased region.
  if (bound == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  // Feed (master, index) through two rounds of splitmix so that adjacent
  // indices land in unrelated regions of the seed space.
  SplitMix64 sm(master ^ (0xA0761D6478BD642FULL * (index + 1)));
  sm();  // discard one output to decorrelate from the raw key
  return sm();
}

std::uint64_t draw_binomial(std::uint64_t trials, double p,
                            Xoshiro256ss& rng) {
  if (trials == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return trials;
  // Both construction (param precompute) and the BTPE rejection draw in
  // libstdc++ call glibc lgamma(), which writes the process-global
  // `signgam` — a data race across worker threads. The lock covers the
  // whole draw. Bit-identicality is unaffected: `rng` is consumed in
  // the same order within its owning thread, and each estimation runs
  // against its own stream. Cost: one locked draw per *frame* (not per
  // slot), negligible next to the slot work it gates.
  static std::mutex lgamma_mutex;
  std::lock_guard lock(lgamma_mutex);
  std::binomial_distribution<std::uint64_t> dist(trials, p);
  return dist(rng);
}

}  // namespace bfce::util
