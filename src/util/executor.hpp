#pragma once
// Persistent work-stealing executor — the engine behind util::parallel_for.
//
// The old parallel_for spawned and joined fresh std::threads on every call,
// so every sharded frame walk and every federation merge paid thread-creation
// latency that dwarfs small-n render work. The Executor keeps one process-wide
// pool of parked workers alive across calls:
//
//  * Lazily initialized: no threads exist until the first run() that wants
//    helpers; the pool then grows on demand (oversubscription beyond the
//    hardware thread count is allowed and tested — workers just time-slice).
//  * Work is dealt as per-participant contiguous index ranges ("lanes"),
//    each packed into one atomic word. The owning participant pops single
//    indices from the low end; a participant whose lane runs dry steals the
//    top half of the fullest lane (Chase–Lev-style two-ended discipline,
//    expressed as CAS transitions on the packed range so there is no ABA).
//    Contiguous initial lanes mean participant s renders a contiguous tag
//    range — which is what makes first-touch shard-bitmap placement in the
//    FrameEngine land pages on the node that owns that tag range.
//  * Nesting-safe: a pool worker (or any thread) calling run() from inside a
//    dispatched fn participates in the nested job itself and *donates* it to
//    the active list so idle workers can help. A participant's work loop
//    only exits once every lane of its job is empty, so completion never
//    requires another thread; waits can only point at strictly-younger jobs,
//    so there is no cycle and no deadlock.
//  * Exceptions propagate: the first exception thrown by fn cancels the
//    remaining untaken indices and is rethrown on the run() caller.
//
// Determinism is unaffected by any of this: parallel_for's contract is that
// fn(i) is a pure function of i (counter-addressed RNG upstream), so lane
// shapes, steal order, and pool size change wall-clock only, never bits.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bfce::util {

class Executor {
 public:
  /// Monotonic counters since process start (or last shutdown() for the
  /// worker-lifecycle ones). Cheap relaxed atomics — for benches and tests.
  struct Stats {
    std::uint64_t dispatches = 0;   ///< run() calls that engaged the pool
    std::uint64_t inline_runs = 0;  ///< run() calls executed entirely inline
    std::uint64_t steals = 0;       ///< lane steal-half / adopt operations
    std::uint64_t wakeups = 0;      ///< notify broadcasts to parked workers
    std::uint64_t spawned = 0;      ///< worker threads created over the lifetime
  };

  /// The process-wide pool.
  static Executor& instance();

  /// Runs fn(i) for every i in [begin, end) with up to `threads` concurrent
  /// participants (the calling thread is one of them). Blocks until every
  /// index has completed. threads <= 1 (or a single index) runs inline
  /// without touching the pool. The first exception thrown by fn cancels
  /// all untaken indices and is rethrown here after in-flight calls drain.
  void run(std::size_t begin, std::size_t end,
           const std::function<void(std::size_t)>& fn, unsigned threads);

  /// True when the calling thread is one of this process's pool workers.
  static bool on_worker_thread() noexcept;

  /// Workers currently alive (parked or running).
  unsigned live_workers() const;

  Stats stats() const;

  /// Joins every worker. Safe to call while a run() is in flight on another
  /// thread: workers finish their current index and exit; the run() caller
  /// drains the rest itself and completes normally. The pool respawns
  /// lazily on the next run() that wants helpers. Used by tests and the
  /// pool-cold bench stages.
  void shutdown();

  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

 private:
  struct Job;

  Executor() = default;
  void run_bounded(std::size_t begin, std::size_t count,
                   const std::function<void(std::size_t)>& fn,
                   unsigned threads);
  void ensure_workers(unsigned wanted);
  void worker_loop();
  static void participate(Job& job, unsigned slot, std::uint64_t* steals);

  mutable std::mutex mu_;           // guards pool membership + active list
  std::condition_variable cv_;      // parked workers wait here
  std::vector<std::thread> threads_;
  Job* active_head_ = nullptr;      // intrusive list of jobs wanting helpers
  bool stopping_ = false;
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> inline_runs_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> spawned_{0};
};

}  // namespace bfce::util
