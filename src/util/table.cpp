#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>

namespace bfce::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace bfce::util
