#pragma once
// TrackingSession — continuous BFCE estimation over a churning
// population, fused by the scalar Kalman tracker.
//
// One session owns a sim::PopulationTimeline (the ground truth), and
// per round: advances the churn one period, runs a full BFCE estimate
// against the current population through rfid::FrameEngine (via a
// fresh ReaderContext), and folds the round's estimate into the
// tracker. The tracker's process model is the round's churn model and
// its measurement variance comes from the round's actual Theorem-4
// p_o choice (tracking/tracker.hpp) — nothing is hand-tuned.
//
// Determinism contract (the service's bit-identical-across-worker-
// counts guarantee extends to trajectories): the timeline is seeded
// with derive_seed(seed, kTimelineStream) and round r's ReaderContext
// with derive_seed(seed, r), so the whole trajectory — every TrackPoint
// field — is a pure function of (SessionConfig, schedule), independent
// of threads, queue order or planner-cache state (the shared planner
// memoizes a pure function; see core/planner.hpp).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bfce.hpp"
#include "estimators/estimator.hpp"
#include "rfid/channel.hpp"
#include "rfid/frame.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/timing.hpp"
#include "sim/churn.hpp"
#include "tracking/tracker.hpp"

namespace bfce::tracking {

/// `rounds` churn periods under one churn model; schedules concatenate
/// phases (steady → burst → steady, …).
struct ChurnPhase {
  std::size_t rounds = 0;
  sim::ChurnModel model{};
};
using ChurnSchedule = std::vector<ChurnPhase>;

/// Canonical scenarios used by the bench, the demo and the tests.
/// `steady`: stationary churn around n0 (arrivals balance departures).
/// `ramp`:   arrivals overshoot departures so the population climbs
///           toward `factor`·n0 over the run.
/// `step`:   steady at n0, a short heavy-arrival burst that jumps the
///           population by ~`factor`, then steady at the new level.
ChurnSchedule steady_scenario(std::size_t rounds, double departure_prob,
                              double n0);
ChurnSchedule ramp_scenario(std::size_t rounds, double departure_prob,
                            double n0, double factor);
ChurnSchedule step_scenario(std::size_t rounds, double departure_prob,
                            double n0, double factor);

/// Everything that parameterises a session. Mirrors the split the
/// service uses: protocol knobs (params/req), simulation substrate
/// (mode/channel/timing) and the master seed.
struct SessionConfig {
  std::size_t initial_population = 10000;
  core::BfceParams params{};        ///< (w, k, …); planner may be shared
  estimators::Requirement req{};
  rfid::FrameMode mode = rfid::FrameMode::kSampled;
  rfid::ChannelModel channel{};
  rfid::TimingModel timing{};
  /// FrameEngine policy for every round's ReaderContext. The sharded
  /// pipeline is bit-identical for any shard count, so trajectories
  /// stay a pure function of (SessionConfig, schedule).
  rfid::ExecutionPolicy policy{};
  std::uint64_t seed = 20150701;
};

/// One fused round of a session's trajectory.
struct TrackPoint {
  std::size_t round = 0;
  std::size_t true_n = 0;        ///< timeline ground truth after churn
  double raw_n_hat = 0.0;        ///< this round's BFCE estimate
  double tracked_n = 0.0;        ///< fused state after the update
  double predicted_n = 0.0;      ///< prior mean x⁻ (= raw on round 0)
  double innovation = 0.0;       ///< z − x⁻
  double residual = 0.0;         ///< z − x
  double gain = 0.0;             ///< Kalman gain
  double variance = 0.0;         ///< posterior variance P
  double measurement_sd = 0.0;   ///< √R of this round's observation
  double p_o = 0.0;              ///< accurate-phase persistence used
  bool met_by_design = true;     ///< the round's BFCE design-point flag
  double airtime_s = 0.0;        ///< simulated airtime of the round
};

/// Trajectory-level quality metrics against the timeline ground truth.
struct TrackSummary {
  std::size_t rounds = 0;
  double raw_rmse = 0.0;          ///< RMSE of per-round BFCE estimates
  double tracked_rmse = 0.0;      ///< RMSE of the fused trajectory
  double raw_rel_rmse = 0.0;      ///< relative (|err|/n) RMS versions
  double tracked_rel_rmse = 0.0;
  double innovation_rms = 0.0;
  double residual_rms = 0.0;
  double airtime_s = 0.0;         ///< total simulated airtime
  std::size_t design_misses = 0;  ///< rounds with met_by_design == false

  /// raw/tracked RMSE ratio; > 1 means fusion beat the raw rounds.
  double improvement() const noexcept {
    return tracked_rmse > 0.0 ? raw_rmse / tracked_rmse : 0.0;
  }
};

/// The trajectory plus its summary — what a tracking job returns.
struct TrackResult {
  std::uint64_t reader_id = 0;  ///< logical reader (service job routing)
  std::vector<TrackPoint> trajectory;
  TrackSummary summary;
};

class TrackingSession {
 public:
  explicit TrackingSession(SessionConfig config);

  /// Advances one churn period, estimates, fuses; returns the round's
  /// TrackPoint (also appended to trajectory()).
  TrackPoint step(const sim::ChurnModel& model);

  /// Runs every phase of `schedule` in order.
  void run(const ChurnSchedule& schedule);

  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<TrackPoint>& trajectory() const noexcept {
    return trajectory_;
  }
  [[nodiscard]] const PopulationTracker& tracker() const noexcept {
    return tracker_;
  }
  /// Current ground-truth population size.
  [[nodiscard]] std::size_t true_population() const noexcept {
    return timeline_.size();
  }
  /// FrameEngine counters summed over every round so far.
  [[nodiscard]] const rfid::EngineCounters& counters() const noexcept {
    return counters_;
  }

  TrackSummary summary() const;

 private:
  SessionConfig config_;
  sim::PopulationTimeline timeline_;
  PopulationTracker tracker_;
  std::vector<TrackPoint> trajectory_;
  rfid::EngineCounters counters_;
  std::size_t round_ = 0;
};

/// Summary over any trajectory (exposed for the bench's windowed
/// steady-state analysis).
TrackSummary summarize_trajectory(const std::vector<TrackPoint>& trajectory);

}  // namespace bfce::tracking
