#include "tracking/session.hpp"

#include <algorithm>
#include <cmath>

#include "rfid/reader.hpp"
#include "util/rng.hpp"

namespace bfce::tracking {

namespace {

/// Stream index of the timeline RNG; rounds use streams 0, 1, 2, …
/// (well below this), so the ground-truth churn and the per-round
/// protocol randomness never alias.
constexpr std::uint64_t kTimelineStream = 0x7F2A9D3B5C17E4F0ULL;

}  // namespace

ChurnSchedule steady_scenario(std::size_t rounds, double departure_prob,
                              double n0) {
  // Stationary point of n ← (1−q)n + a is a/q = n0.
  return {{rounds, sim::ChurnModel{departure_prob, departure_prob * n0}}};
}

ChurnSchedule ramp_scenario(std::size_t rounds, double departure_prob,
                            double n0, double factor) {
  // Constant arrivals aimed at factor·n0: the population climbs along
  // the exponential approach to the new stationary point — a ramp over
  // a run short relative to 1/q.
  return {{rounds,
           sim::ChurnModel{departure_prob, departure_prob * factor * n0}}};
}

ChurnSchedule step_scenario(std::size_t rounds, double departure_prob,
                            double n0, double factor) {
  // One third steady, a 3-round arrival burst that lifts the
  // population by ~(factor−1)·n0, then steady at the new level.
  const std::size_t before = rounds / 3;
  const std::size_t burst = std::min<std::size_t>(3, rounds - before);
  const std::size_t after = rounds - before - burst;
  const double n1 = factor * n0;
  ChurnSchedule schedule;
  schedule.push_back({before, sim::ChurnModel{departure_prob,
                                              departure_prob * n0}});
  if (burst > 0) {
    // Per burst round: departures remove q·n, arrivals add the steady
    // share plus an equal slice of the jump.
    const double jump = (n1 - n0) / static_cast<double>(burst);
    schedule.push_back(
        {burst, sim::ChurnModel{departure_prob,
                                departure_prob * n0 + jump}});
  }
  if (after > 0) {
    schedule.push_back({after, sim::ChurnModel{departure_prob,
                                               departure_prob * n1}});
  }
  return schedule;
}

TrackingSession::TrackingSession(SessionConfig config)
    : config_(config),
      timeline_(config.initial_population,
                util::derive_seed(config.seed, kTimelineStream)) {}

TrackPoint TrackingSession::step(const sim::ChurnModel& model) {
  TrackPoint point;
  point.round = round_;
  const sim::ChurnStep churn = timeline_.step(model);
  point.true_n = churn.population;

  // One full BFCE round against the churned population. Round r draws
  // from stream derive_seed(seed, r): reordering or re-running rounds
  // can never change another round's estimate.
  rfid::ReaderContext ctx(timeline_.current(),
                          util::derive_seed(config_.seed, round_),
                          config_.mode, config_.channel, config_.timing,
                          config_.policy);
  core::BfceEstimator estimator(config_.params);
  core::BfceTrace trace;
  const estimators::EstimateOutcome outcome =
      estimator.estimate_traced(ctx, config_.req, trace);
  counters_ += ctx.engine().counters();

  point.raw_n_hat = outcome.n_hat;
  point.p_o = trace.p_choice.p;
  point.met_by_design = outcome.met_by_design;
  point.airtime_s = outcome.airtime.total_seconds(config_.timing);

  const ProcessModel process{model.departure_prob, model.arrival_mean};
  if (!tracker_.initialized()) {
    const double r0 = measurement_variance(outcome.n_hat, config_.params.w,
                                           config_.params.k, point.p_o);
    tracker_.initialize(outcome.n_hat, r0);
    point.predicted_n = outcome.n_hat;
    point.tracked_n = tracker_.state();
    point.variance = tracker_.variance();
    point.measurement_sd = std::sqrt(r0);
  } else {
    tracker_.predict(process);
    // R is evaluated at the prior mean (the EKF linearisation point),
    // not at the noisy observation.
    const double r = measurement_variance(tracker_.state(), config_.params.w,
                                          config_.params.k, point.p_o);
    const FuseStep fused = tracker_.update(outcome.n_hat, r);
    point.predicted_n = fused.predicted;
    point.innovation = fused.innovation;
    point.residual = fused.residual;
    point.gain = fused.gain;
    point.tracked_n = fused.fused;
    point.variance = fused.variance;
    point.measurement_sd = std::sqrt(r);
  }

  trajectory_.push_back(point);
  ++round_;
  return point;
}

void TrackingSession::run(const ChurnSchedule& schedule) {
  for (const ChurnPhase& phase : schedule) {
    for (std::size_t r = 0; r < phase.rounds; ++r) step(phase.model);
  }
}

TrackSummary TrackingSession::summary() const {
  return summarize_trajectory(trajectory_);
}

TrackSummary summarize_trajectory(const std::vector<TrackPoint>& trajectory) {
  TrackSummary s;
  s.rounds = trajectory.size();
  if (trajectory.empty()) return s;
  double raw_sq = 0.0, tracked_sq = 0.0;
  double raw_rel_sq = 0.0, tracked_rel_sq = 0.0;
  double innovation_sq = 0.0, residual_sq = 0.0;
  for (const TrackPoint& p : trajectory) {
    const double n = std::max(1.0, static_cast<double>(p.true_n));
    const double raw_err = p.raw_n_hat - static_cast<double>(p.true_n);
    const double tracked_err = p.tracked_n - static_cast<double>(p.true_n);
    raw_sq += raw_err * raw_err;
    tracked_sq += tracked_err * tracked_err;
    raw_rel_sq += (raw_err / n) * (raw_err / n);
    tracked_rel_sq += (tracked_err / n) * (tracked_err / n);
    innovation_sq += p.innovation * p.innovation;
    residual_sq += p.residual * p.residual;
    s.airtime_s += p.airtime_s;
    if (!p.met_by_design) ++s.design_misses;
  }
  const double m = static_cast<double>(trajectory.size());
  s.raw_rmse = std::sqrt(raw_sq / m);
  s.tracked_rmse = std::sqrt(tracked_sq / m);
  s.raw_rel_rmse = std::sqrt(raw_rel_sq / m);
  s.tracked_rel_rmse = std::sqrt(tracked_rel_sq / m);
  s.innovation_rms = std::sqrt(innovation_sq / m);
  s.residual_rms = std::sqrt(residual_sq / m);
  return s;
}

}  // namespace bfce::tracking
