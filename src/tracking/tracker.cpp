#include "tracking/tracker.hpp"

#include <algorithm>
#include <cmath>

#include "core/analysis.hpp"

namespace bfce::tracking {

namespace {

/// Process noise of one churn round around state `x`: departed tags are
/// Binomial(x, q) (variance x·q·(1−q)), arrivals Poisson(a) (variance
/// a); the two are independent.
double process_variance(double x, const ProcessModel& model) noexcept {
  const double q = std::clamp(model.departure_prob, 0.0, 1.0);
  const double a = std::max(0.0, model.arrival_mean);
  return std::max(0.0, x) * q * (1.0 - q) + a;
}

}  // namespace

void PopulationTracker::initialize(double estimate, double variance) noexcept {
  x_ = std::max(0.0, estimate);
  p_ = std::max(variance, 1e-12);
  initialized_ = true;
  rounds_ = 0;
}

void PopulationTracker::predict(const ProcessModel& model) noexcept {
  if (!initialized_) return;
  const double q = std::clamp(model.departure_prob, 0.0, 1.0);
  const double a = std::max(0.0, model.arrival_mean);
  const double f = 1.0 - q;  // state-transition slope
  x_ = f * x_ + a;
  p_ = f * f * p_ + process_variance(x_, model);
}

FuseStep PopulationTracker::update(double observation,
                                   double observation_variance) noexcept {
  FuseStep step;
  if (!initialized_) {
    initialize(observation, observation_variance);
    step.predicted = step.fused = x_;
    step.variance = p_;
    return step;
  }
  const double r = std::max(observation_variance, 1e-12);
  step.predicted = x_;
  step.innovation = observation - x_;
  const double s = p_ + r;  // innovation variance
  const double k = p_ / s;
  x_ += k * step.innovation;
  p_ *= (1.0 - k);
  x_ = std::max(0.0, x_);
  step.residual = observation - x_;
  step.gain = k;
  step.fused = x_;
  step.variance = p_;
  ++rounds_;
  return step;
}

double measurement_variance(double n, std::uint32_t w, std::uint32_t k,
                            double p_o) {
  const double n_eff = std::max(1.0, n);
  // p_o always lies on the {1/1024, …, 1023/1024} grid when it came from
  // the Theorem-4 search; clamp anyway so a degenerate round inflates R
  // instead of poisoning the filter.
  const double p_eff = std::clamp(p_o, 1.0 / 1024.0, 1.0);
  const double rel = core::predicted_relative_sd(n_eff, w, k, p_eff);
  const double sd = rel * n_eff;
  if (!std::isfinite(sd) || sd <= 0.0) return 1e18;  // ignore the round
  return std::max(sd * sd, 1e-12);
}

}  // namespace bfce::tracking
