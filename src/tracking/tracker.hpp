#pragma once
// Scalar Kalman/EKF fusion of per-round cardinality estimates into a
// tracked population trajectory.
//
// The paper validates BFCE on static populations; real deployments see
// tags arrive and depart between rounds ("From Static to Dynamic Tag
// Population Estimation: An EKF Perspective", Yu & Chen). This tracker
// treats each BFCE round as one noisy observation of a population that
// evolves under the churn birth/death process:
//
//   process      n_{t+1} = Binomial(n_t, 1−q) + Poisson(a)
//   prediction   x⁻ = (1−q)·x + a,  P⁻ = (1−q)²·P + Q(x⁻)
//   proc. noise  Q(x) = x·q·(1−q) + a   (binomial + Poisson variance)
//   observation  z = n̂_BFCE,  R from Theorem 3's σ(X) — see
//                measurement_variance() below, NOT hand-tuned.
//   update       K = P⁻/(P⁻+R),  x = x⁻ + K·(z−x⁻),  P = (1−K)·P⁻
//
// "Extended" in the EKF sense: both Q and R are re-linearised around
// the predicted state every round (Q is state-dependent, R comes from
// the delta-method CLT at x⁻ with the round's chosen p_o).
//
// Pure arithmetic — no RNG, no clocks — so a trajectory is a bit-exact
// function of the observation sequence, which is what lets the service
// keep its results-bit-identical-across-worker-counts contract.

#include <cstdint>

namespace bfce::tracking {

/// Per-round birth/death process the predictor assumes — the same
/// parameters sim::ChurnModel applies to the true population.
struct ProcessModel {
  double departure_prob = 0.0;  ///< q: each tag departs w.p. q per round
  double arrival_mean = 0.0;    ///< a: Poisson(a) arrivals per round
};

/// Diagnostics of one predict/update cycle.
struct FuseStep {
  double predicted = 0.0;   ///< x⁻ (prior mean)
  double innovation = 0.0;  ///< z − x⁻ (pre-fit residual)
  double residual = 0.0;    ///< z − x (post-fit residual)
  double gain = 0.0;        ///< Kalman gain K ∈ [0, 1]
  double fused = 0.0;       ///< x (posterior mean)
  double variance = 0.0;    ///< P (posterior variance)
};

/// Scalar population tracker. initialize() with the first observation,
/// then predict()/update() once per round.
class PopulationTracker {
 public:
  PopulationTracker() = default;

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

  /// Seeds the state from the first observation and its variance.
  void initialize(double estimate, double variance) noexcept;

  /// Propagates mean and variance one round under `model`.
  void predict(const ProcessModel& model) noexcept;

  /// Fuses one observation with variance `observation_variance`;
  /// returns the cycle's diagnostics. Precondition: initialized().
  FuseStep update(double observation, double observation_variance) noexcept;

  [[nodiscard]] double state() const noexcept { return x_; }
  [[nodiscard]] double variance() const noexcept { return p_; }
  /// update() calls folded in so far (the initialize() seed excluded).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  double x_ = 0.0;  ///< state estimate (population)
  double p_ = 0.0;  ///< state variance
  bool initialized_ = false;
  std::uint64_t rounds_ = 0;
};

/// Theorem-3-derived variance of one BFCE estimate at population `n`
/// under the chosen accurate-phase parameters (w, k, p_o):
///
///   sd(n̂)/n = σ(X) / (√w · λ · e^{−λ}),  λ = k·p_o·n/w
///
/// (core::predicted_relative_sd — the delta method through Theorem 2's
/// inversion), so R = (n · sd(n̂)/n)². This is what makes the tracker's
/// measurement noise a function of the protocol configuration instead
/// of a tuning knob. `n` is clamped to ≥ 1 and the result to a small
/// positive floor so degenerate rounds cannot produce R = 0 or NaN.
double measurement_variance(double n, std::uint32_t w, std::uint32_t k,
                            double p_o);

}  // namespace bfce::tracking
