#pragma once
// Slot-selection hash families used by the estimation protocols.
//
// Two families are provided:
//
//  * IdealSlotHash — a full-avalanche seeded hash of the tagID, the
//    "uniform hash function" assumed by every analysis in the paper.
//  * LightweightSlotHash — the paper's §IV-E.2 tag-side scheme:
//    H(id) = bitget(RN ⊕ RS[i], 13:1) where RN is a 32-bit random number
//    prestored on the tag at manufacture time and RS[i] is a broadcast
//    seed. Costs one XOR + mask on the tag, but makes the k slot choices
//    of different tags mutually rigid (H1(t) ⊕ H2(t) is the same for all
//    t) — see DESIGN.md; the ablation bench quantifies the impact.

#include <cstdint>

#include "hash/mix.hpp"

namespace bfce::hash {

/// Uniform seeded hash of a tagID into [0, w).
///
/// `w` need not be a power of two; mapping uses the high-entropy
/// multiply-shift reduction rather than modulo. The seed half of the mix
/// is premixed at construction, so a hasher hoisted out of a tag loop
/// costs one fmix64 + multiply-shift per tag.
class IdealSlotHash {
 public:
  explicit constexpr IdealSlotHash(std::uint64_t seed) noexcept
      : premixed_(premix_seed(seed)) {}

  constexpr std::uint32_t slot(std::uint64_t tag_id,
                               std::uint32_t w) const noexcept {
    const std::uint64_t h = fmix64(tag_id ^ premixed_);
    return static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(h) * w) >> 64);
  }

 private:
  std::uint64_t premixed_;
};

/// The paper's lightweight XOR + bitget hash.
///
/// Operates on the tag's prestored 32-bit random number RN, not on the
/// tagID itself (the tagID only determines which RN was burned into the
/// tag). Requires w to be a power of two ≤ 2^32; the paper uses w = 8192
/// (13 bits).
class LightweightSlotHash {
 public:
  explicit constexpr LightweightSlotHash(std::uint32_t seed) noexcept
      : seed_(seed) {}

  /// bitget(RN ⊕ RS, log2(w) : 1) — the lowest log2(w) bits of the XOR.
  constexpr std::uint32_t slot(std::uint32_t rn,
                               std::uint32_t w_pow2) const noexcept {
    return (rn ^ seed_) & (w_pow2 - 1);
  }

 private:
  std::uint32_t seed_;
};

/// Geometric (leading-zero) hash used by LOF-style lottery frames: slot j
/// is chosen with probability 2^-(j+1), clamped to the last frame slot.
///
/// Implemented as the count of leading zeros of a seeded uniform hash,
/// which is geometrically distributed with p = 1/2.
class GeometricSlotHash {
 public:
  explicit constexpr GeometricSlotHash(std::uint64_t seed) noexcept
      : premixed_(premix_seed(seed)) {}

  constexpr std::uint32_t slot(std::uint64_t tag_id,
                               std::uint32_t frame_size) const noexcept {
    const std::uint64_t h = fmix64(tag_id ^ premixed_);
    std::uint32_t zeros = 0;
    // countl_zero is not constexpr-friendly across all our toolchains for
    // the masked case; a loop over at most 64 bits keeps this constexpr.
    for (std::uint64_t bit = 1ULL << 63; bit != 0 && (h & bit) == 0;
         bit >>= 1) {
      ++zeros;
    }
    return zeros < frame_size - 1 ? zeros : frame_size - 1;
  }

 private:
  std::uint64_t premixed_;
};

}  // namespace bfce::hash
