#pragma once
// 64-bit mixing primitives shared by the hash families.
//
// Every multiply in this file wraps mod 2^64 on purpose — that IS the
// mixing function (MurmurHash3 / splitmix64 finalisers). Unsigned
// wraparound is defined behaviour; the ubsan-integer preset's checks
// (signed overflow, shift UB) stay clean here, and clang's stricter
// -fsanitize=integer unsigned-wrap checker would flag exactly these
// intentional sites.

#include <cstdint>

namespace bfce::hash {

/// MurmurHash3 fmix64 finaliser — full-avalanche 64-bit mixer.
constexpr std::uint64_t fmix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// splitmix64 finaliser — a second independent mixer, used where two
/// decorrelated mixes of the same key are needed.
constexpr std::uint64_t smix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Seed half of mix_with_seed, precomputable once per (frame, hash):
/// mix_with_seed(key, seed) == fmix64(key ^ premix_seed(seed)).
constexpr std::uint64_t premix_seed(std::uint64_t seed) noexcept {
  return smix64(seed ^ 0x9E3779B97F4A7C15ULL);
}

/// Combines a key with a seed into a mixed 64-bit value.
constexpr std::uint64_t mix_with_seed(std::uint64_t key,
                                      std::uint64_t seed) noexcept {
  return fmix64(key ^ premix_seed(seed));
}

}  // namespace bfce::hash
