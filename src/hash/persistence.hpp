#pragma once
// Tag-side realisations of the persistence probability p.
//
// The analysis (Theorem 1) models each tag answering in each selected slot
// as an independent Bernoulli(p) trial. Real C1G2 tags have no RNG, so the
// paper's §IV-E.3 realises p from the tag's prestored random number: the
// reader broadcasts the numerator p_n of p = p_n/1024 and the tag compares
// 10 bits "randomly selected" from RN against p_n − 1.
//
// The paper does not say how the 10-bit selection varies between slots; a
// fixed selection would freeze the responding subpopulation. We concretise
// it as a rotating window over a remixed RN, indexed by (slot, seed), and
// keep the idealised Bernoulli mode as the analysis reference. Tests check
// that both satisfy Theorem 1's marginal statistics.

#include <cstdint>

#include "hash/mix.hpp"

namespace bfce::hash {

/// How tags realise the persistence probability.
enum class PersistenceMode {
  /// Independent Bernoulli(p) per (tag, slot) — the analysis model.
  kIdealBernoulli,
  /// One Bernoulli(p) draw per tag per frame, shared by its k slots
  /// (what a naive "compare RN once" implementation would do).
  kSharedDraw,
  /// The paper's scheme with our rotating-window concretisation: 10 bits
  /// extracted from a remix of RN at an offset derived from (slot, seed),
  /// compared against p_n − 1.
  kRnBits,
};

/// Decision function for PersistenceMode::kRnBits.
///
/// `p_n` is the broadcast numerator of p = p_n/1024 (1 ≤ p_n ≤ 1023).
/// Responds iff the selected 10-bit value < p_n (i.e. value ≤ p_n − 1),
/// which makes the response probability exactly p_n/1024 when the
/// selected bits are uniform.
constexpr bool rn_bits_respond(std::uint32_t rn, std::uint32_t slot,
                               std::uint32_t seed,
                               std::uint32_t p_n) noexcept {
  // Remix RN with the (slot, seed) pair so that consecutive slots read
  // decorrelated 10-bit windows; the tag-side cost is still a couple of
  // shift/xor/multiply steps, in the same spirit as the paper's bitget.
  const std::uint64_t mixed =
      fmix64((static_cast<std::uint64_t>(rn) << 32) ^
             (static_cast<std::uint64_t>(seed) << 10) ^ slot);
  const auto ten_bits = static_cast<std::uint32_t>(mixed & 0x3FFU);
  return ten_bits < p_n;
}

}  // namespace bfce::hash
