#include "service/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "service/metrics.hpp"
#include "service/portable.hpp"
#include "service/snapshot.hpp"
#include "util/serial.hpp"

namespace bfce::service {

namespace {

using Clock = std::chrono::steady_clock;

enum class IoStatus : std::uint8_t {
  kOk,          ///< every byte moved
  kClosed,      ///< peer closed before the first byte (clean end)
  kDisconnect,  ///< peer vanished mid-transfer
  kTimeout,     ///< deadline elapsed
};

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;
  return static_cast<int>(left.count());
}

/// Reads exactly `size` bytes before `deadline`. kClosed only applies
/// when the peer closes before byte one (a clean between-frames close).
IoStatus read_exact(int fd, void* buf, std::size_t size,
                    Clock::time_point deadline) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < size) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ms = remaining_ms(deadline);
    if (ms == 0) return IoStatus::kTimeout;
    const int ready = ::poll(&pfd, 1, ms);
    if (ready == 0) return IoStatus::kTimeout;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kDisconnect;
    }
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n == 0) return got == 0 ? IoStatus::kClosed : IoStatus::kDisconnect;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return IoStatus::kDisconnect;
    }
    got += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus write_exact(int fd, const void* buf, std::size_t size,
                     Clock::time_point deadline) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < size) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ms = remaining_ms(deadline);
    if (ms == 0) return IoStatus::kTimeout;
    const int ready = ::poll(&pfd, 1, ms);
    if (ready == 0) return IoStatus::kTimeout;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kDisconnect;
    }
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return IoStatus::kDisconnect;
    }
    sent += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

Clock::time_point deadline_from_now(double seconds) {
  return Clock::now() +
         std::chrono::microseconds(static_cast<std::int64_t>(seconds * 1e6));
}

std::vector<std::uint8_t> frame_bytes(WireMsg type,
                                      const std::vector<std::uint8_t>& body) {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(body.size() + 1));
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(body.data(), body.size());
  return w.take();
}

// Hand-rolled ByteWriter::str equivalent (u32 LE length + bytes):
// push_back keeps GCC's -Wstringop-overflow heuristics out of the
// inlined memcpy path, which misfires on the ByteWriter version.
std::vector<std::uint8_t> error_body(std::string_view message) {
  std::vector<std::uint8_t> body;
  body.reserve(4 + message.size());
  const std::uint32_t n = static_cast<std::uint32_t>(message.size());
  for (unsigned shift = 0; shift < 32; shift += 8) {
    body.push_back(static_cast<std::uint8_t>((n >> shift) & 0xFF));
  }
  body.insert(body.end(), message.begin(), message.end());
  return body;
}

}  // namespace

// ---------------------------------------------------------------------------
// WireServer

WireServer::WireServer(EstimationService& service, WireConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }

  running_ = true;
  service_.set_wire_stats_source([this] { return stats(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  const unsigned threads = config_.io_threads == 0 ? 1 : config_.io_threads;
  io_pool_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    io_pool_.emplace_back([this] { io_loop(); });
  }
}

WireServer::~WireServer() { stop(); }

WireStats WireServer::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void WireServer::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  conn_ready_.notify_all();
  if (listen_fd_ >= 0) {
    // Shutdown wakes the acceptor out of poll/accept.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : io_pool_) {
    if (t.joinable()) t.join();
  }
  io_pool_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  {
    std::lock_guard lock(mutex_);
    for (const int fd : conn_queue_) ::close(fd);
    conn_queue_.clear();
  }
  running_ = false;
  // Detach the stats sampler: a stopped server no longer belongs in the
  // service's metrics (and the callback must not outlive this object).
  service_.set_wire_stats_source(nullptr);
}

void WireServer::accept_loop() {
  for (;;) {
    struct pollfd pfd {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
    }
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    bool shed = false;
    {
      std::lock_guard lock(mutex_);
      if (stopping_ || conn_queue_.size() >= config_.max_pending_connections) {
        shed = true;
      } else {
        conn_queue_.push_back(fd);
      }
    }
    if (shed) {
      // Load shedding: beyond the bounded connection queue the only
      // safe answer is an immediate close — queueing further would let
      // a flood grow io latency without bound.
      ::close(fd);
      std::lock_guard lock(stats_mutex_);
      ++stats_.connections_shed;
    } else {
      conn_ready_.notify_one();
      std::lock_guard lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
  }
}

void WireServer::io_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(mutex_);
      conn_ready_.wait(lock,
                       [&] { return stopping_ || !conn_queue_.empty(); });
      if (stopping_) return;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void WireServer::serve_connection(int fd) {
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
    }
    // Each frame gets a fresh io deadline; an idle client is timed out
    // rather than holding this io thread hostage.
    const Clock::time_point deadline = deadline_from_now(config_.io_deadline_s);

    std::uint8_t len_bytes[4];
    switch (read_exact(fd, len_bytes, sizeof(len_bytes), deadline)) {
      case IoStatus::kOk: break;
      case IoStatus::kClosed:
        return;  // clean close between frames
      case IoStatus::kDisconnect: {
        std::lock_guard lock(stats_mutex_);
        ++stats_.disconnects;
        return;
      }
      case IoStatus::kTimeout: {
        std::lock_guard lock(stats_mutex_);
        ++stats_.timeouts;
        return;
      }
    }
    util::ByteReader len_reader(len_bytes, sizeof(len_bytes));
    const std::uint32_t length = len_reader.u32();

    if (length > config_.max_frame_bytes) {
      // Includes any "negative" length a signed client might send — as
      // a u32 that is a huge value. The stream position can no longer
      // be trusted, so reply (best effort) and close.
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.oversized;
      }
      send_frame(fd, WireMsg::kError, error_body("frame length exceeds cap"));
      return;
    }
    if (length == 0) {
      // No type byte. Framing is still intact, so the connection lives.
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.malformed;
      }
      if (!send_frame(fd, WireMsg::kError, error_body("empty frame"))) return;
      continue;
    }

    std::vector<std::uint8_t> payload(length);
    switch (read_exact(fd, payload.data(), payload.size(), deadline)) {
      case IoStatus::kOk: break;
      case IoStatus::kClosed:
      case IoStatus::kDisconnect: {
        std::lock_guard lock(stats_mutex_);
        ++stats_.disconnects;
        return;
      }
      case IoStatus::kTimeout: {
        std::lock_guard lock(stats_mutex_);
        ++stats_.timeouts;
        return;
      }
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.frames_in;
      stats_.bytes_in += sizeof(len_bytes) + payload.size();
    }
    if (!handle_frame(fd, payload)) return;
  }
}

bool WireServer::handle_frame(int fd,
                              const std::vector<std::uint8_t>& payload) {
  const auto type = static_cast<WireMsg>(payload[0]);
  util::ByteReader body(payload.data() + 1, payload.size() - 1);

  switch (type) {
    case WireMsg::kPing: {
      std::vector<std::uint8_t> echo(payload.begin() + 1, payload.end());
      return send_frame(fd, WireMsg::kPong, echo);
    }

    case WireMsg::kSubmit: {
      PortableJobSpec spec = decode_portable_job(body);
      const char* problem =
          body.exhausted() ? validate_portable_job(spec) : "undecodable job";
      if (problem != nullptr) {
        {
          std::lock_guard lock(stats_mutex_);
          ++stats_.malformed;
        }
        return send_frame(fd, WireMsg::kError, error_body(problem));
      }
      // Admission control: the service queue bound is the shed point.
      // try_submit_portable never blocks, so BUSY goes out immediately
      // and accepted jobs keep their latency budget under overload.
      const std::optional<JobId> id = service_.try_submit_portable(spec);
      if (!id.has_value()) {
        {
          std::lock_guard lock(stats_mutex_);
          ++stats_.jobs_shed;
        }
        return send_frame(fd, WireMsg::kBusy, {});
      }
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.submits;
      }
      const JobResult result = service_.wait(*id);
      util::ByteWriter w;
      w.u64(*id);
      encode_job_result(w, result);
      return send_frame(fd, WireMsg::kResult, w.take());
    }

    case WireMsg::kMetrics: {
      const std::string json = service_metrics_json(service_.metrics());
      util::ByteWriter w;
      w.str(json);
      return send_frame(fd, WireMsg::kMetricsJson, w.take());
    }

    case WireMsg::kPong:
    case WireMsg::kResult:
    case WireMsg::kError:
    case WireMsg::kBusy:
    case WireMsg::kMetricsJson:
      break;  // response types are not valid requests
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.malformed;
  }
  return send_frame(fd, WireMsg::kError, error_body("unknown message type"));
}

bool WireServer::send_frame(int fd, WireMsg type,
                            const std::vector<std::uint8_t>& body) {
  const std::vector<std::uint8_t> bytes = frame_bytes(type, body);
  const IoStatus io = write_exact(fd, bytes.data(), bytes.size(),
                                  deadline_from_now(config_.io_deadline_s));
  std::lock_guard lock(stats_mutex_);
  if (io != IoStatus::kOk) {
    // A reply that cannot be written within the deadline is a slow (or
    // gone) client; the connection is closed either way.
    if (io == IoStatus::kTimeout) {
      ++stats_.timeouts;
    } else {
      ++stats_.disconnects;
    }
    return false;
  }
  ++stats_.frames_out;
  stats_.bytes_out += bytes.size();
  return true;
}

// ---------------------------------------------------------------------------
// WireClient

WireClient::~WireClient() { close(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_), deadline_s_(other.deadline_s_) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    deadline_s_ = other.deadline_s_;
    other.fd_ = -1;
  }
  return *this;
}

void WireClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<WireClient> WireClient::connect(const std::string& path,
                                              double deadline_s) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return std::nullopt;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  WireClient client;
  client.fd_ = fd;
  client.deadline_s_ = deadline_s;
  return client;
}

bool WireClient::send_raw(const void* data, std::size_t size) {
  if (fd_ < 0) return false;
  return write_exact(fd_, data, size, deadline_from_now(deadline_s_)) ==
         IoStatus::kOk;
}

bool WireClient::send_frame(const std::vector<std::uint8_t>& payload) {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload.data(), payload.size());
  const std::vector<std::uint8_t> bytes = w.take();
  return send_raw(bytes.data(), bytes.size());
}

std::optional<std::vector<std::uint8_t>> WireClient::recv_frame(
    std::size_t max_bytes) {
  if (fd_ < 0) return std::nullopt;
  const Clock::time_point deadline = deadline_from_now(deadline_s_);
  std::uint8_t len_bytes[4];
  if (read_exact(fd_, len_bytes, sizeof(len_bytes), deadline) !=
      IoStatus::kOk) {
    return std::nullopt;
  }
  util::ByteReader r(len_bytes, sizeof(len_bytes));
  const std::uint32_t length = r.u32();
  if (length > max_bytes) return std::nullopt;
  std::vector<std::uint8_t> payload(length);
  if (length > 0 &&
      read_exact(fd_, payload.data(), payload.size(), deadline) !=
          IoStatus::kOk) {
    return std::nullopt;
  }
  return payload;
}

bool WireClient::ping() {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WireMsg::kPing));
  w.u64(0x70696E672D626F64ULL);  // arbitrary echo body
  if (!send_frame(w.bytes())) return false;
  const auto reply = recv_frame();
  if (!reply.has_value() || reply->size() != 9) return false;
  util::ByteReader r(reply->data(), reply->size());
  return r.u8() == static_cast<std::uint8_t>(WireMsg::kPong) &&
         r.u64() == 0x70696E672D626F64ULL;
}

std::optional<JobResult> WireClient::submit(const PortableJobSpec& spec,
                                            bool* busy) {
  if (busy != nullptr) *busy = false;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WireMsg::kSubmit));
  encode_portable_job(w, spec);
  if (!send_frame(w.bytes())) return std::nullopt;
  const auto reply = recv_frame();
  if (!reply.has_value() || reply->empty()) return std::nullopt;
  util::ByteReader r(reply->data(), reply->size());
  const std::uint8_t type = r.u8();
  if (type == static_cast<std::uint8_t>(WireMsg::kBusy)) {
    if (busy != nullptr) *busy = true;
    return std::nullopt;
  }
  if (type != static_cast<std::uint8_t>(WireMsg::kResult)) {
    return std::nullopt;
  }
  JobResult result;
  const JobId id = r.u64();
  decode_job_result(r, result);
  if (!r.exhausted()) return std::nullopt;
  result.id = id;
  return result;
}

std::optional<std::string> WireClient::metrics_json() {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WireMsg::kMetrics));
  if (!send_frame(w.bytes())) return std::nullopt;
  const auto reply = recv_frame();
  if (!reply.has_value() || reply->empty()) return std::nullopt;
  util::ByteReader r(reply->data(), reply->size());
  if (r.u8() != static_cast<std::uint8_t>(WireMsg::kMetricsJson)) {
    return std::nullopt;
  }
  std::string json = r.str(std::size_t{1} << 20);
  if (!r.exhausted()) return std::nullopt;
  return json;
}

}  // namespace bfce::service
