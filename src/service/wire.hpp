#pragma once
// Wire front door: a length-prefixed binary protocol over an AF_UNIX
// stream socket, serving an EstimationService to out-of-process clients.
//
// Frame layout (field-by-field spec in docs/SERVICE.md):
//
//   [0..3]  payload byte length, little-endian u32
//   [4..]   payload; first byte is the message type, the rest is the
//           type-specific body encoded with util/serial.hpp
//
// Requests:  PING (body echoed back), SUBMIT (body = PortableJobSpec),
//            METRICS (empty body).
// Responses: PONG, RESULT (u64 job id + JobResult), ERROR (string),
//            BUSY (empty — the admission path shed the job),
//            METRICS_JSON (string).
//
// Threading: one accept thread feeds a bounded connection queue drained
// by a small pool of io threads; each connection is served to completion
// by one io thread (frames are strictly request/response, in order).
// Overload behaviour is load shedding, not queueing without bound:
//
//  * job admission goes through try_submit_portable — a full service
//    queue answers BUSY immediately instead of blocking the io thread,
//    so the p99 of *accepted* jobs stays bounded under overload;
//  * a full connection queue sheds the new connection (counted, closed
//    immediately);
//  * every read and write of a frame runs under the per-connection io
//    deadline — a slow or stalled client is timed out and closed, never
//    parked indefinitely on an io thread.
//
// Robustness: frames come from outside the process and are treated as
// hostile. The length prefix is capped (oversized ⇒ ERROR + close, since
// the stream can no longer be trusted to resync); bodies are decoded
// with the bounds-checked ByteReader and validated (malformed ⇒ ERROR,
// connection stays open — framing is still intact); a peer vanishing
// mid-frame is counted and closed. The fault-injection suite drives all
// of these paths under ASan/UBSan.

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace bfce::service {

/// Message type — the first payload byte. Requests have the high bit
/// clear, responses set.
enum class WireMsg : std::uint8_t {
  kPing = 1,
  kSubmit = 2,
  kMetrics = 3,
  kPong = 128,
  kResult = 129,
  kError = 130,
  kBusy = 131,
  kMetricsJson = 132,
};

struct WireConfig {
  /// Filesystem path of the AF_UNIX socket; unlinked and rebound on
  /// start, unlinked again on stop.
  std::string socket_path;
  /// Connection-serving threads (the accept thread is extra).
  unsigned io_threads = 2;
  /// Upper bound on one frame's payload; a larger length prefix (which
  /// includes any "negative" 32-bit value) is rejected as oversized.
  std::size_t max_frame_bytes = std::size_t{1} << 20;
  /// Per-read/write deadline within a connection, seconds. A client
  /// that stalls longer is timed out and closed.
  double io_deadline_s = 5.0;
  /// Bound on accepted-but-unserved connections; beyond it new
  /// connections are shed (closed immediately, counted).
  std::size_t max_pending_connections = 64;
  /// listen(2) backlog.
  int listen_backlog = 64;
};

/// The front door. Construction binds the socket and starts the
/// threads; running() reports whether that succeeded. The server
/// registers itself as the service's wire-stats source for the lifetime
/// of the object.
class WireServer {
 public:
  WireServer(EstimationService& service, WireConfig config);
  ~WireServer();  // stop()s (which detaches from the service)

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }

  /// Point-in-time counters; safe to call concurrently with everything.
  WireStats stats() const;

  /// Stops accepting, drains nothing (queued connections are closed),
  /// joins the threads, unlinks the socket and detaches the stats
  /// sampler from the service. Idempotent.
  void stop();

 private:
  void accept_loop();
  void io_loop();
  void serve_connection(int fd);
  /// Handles one decoded frame; returns false when the connection must
  /// close (oversized stream state, write failure).
  bool handle_frame(int fd, const std::vector<std::uint8_t>& payload);
  bool send_frame(int fd, WireMsg type,
                  const std::vector<std::uint8_t>& body);

  EstimationService& service_;
  WireConfig config_;
  bool running_ = false;
  int listen_fd_ = -1;

  // ---- Locking discipline: mutex_ guards the connection queue and the
  // stop flag; stats_mutex_ guards the counters. Both are strict leaf
  // locks — nothing is acquired while either is held, and neither is
  // held across a read, write or service call.
  mutable std::mutex mutex_;
  std::condition_variable conn_ready_;
  std::deque<int> conn_queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mutex_;
  WireStats stats_;

  std::thread acceptor_;
  std::vector<std::thread> io_pool_;
};

/// Minimal blocking client for the wire protocol — used by the tests,
/// the recovery example and the fleet bench. send_raw() exists so
/// robustness tests can write deliberately broken bytes.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient();
  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to `path`; deadline applies to every subsequent io call.
  static std::optional<WireClient> connect(const std::string& path,
                                           double deadline_s = 5.0);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Writes raw bytes (no framing) — for protocol-robustness tests.
  bool send_raw(const void* data, std::size_t size);
  /// Frames and writes `payload` (type byte included by the caller).
  bool send_frame(const std::vector<std::uint8_t>& payload);
  /// Reads one frame payload; nullopt on timeout, close or a length
  /// above `max_bytes`.
  std::optional<std::vector<std::uint8_t>> recv_frame(
      std::size_t max_bytes = std::size_t{1} << 20);

  /// Round-trips a PING; true when the echoed body matches.
  bool ping();
  /// Submits a portable job and waits for the reply. Returns the
  /// result; nullopt on BUSY, ERROR or a transport failure (with the
  /// distinction in `*busy` when the caller passes it).
  std::optional<JobResult> submit(const PortableJobSpec& spec,
                                  bool* busy = nullptr);
  /// Fetches the service metrics JSON document.
  std::optional<std::string> metrics_json();

 private:
  int fd_ = -1;
  double deadline_s_ = 5.0;
};

}  // namespace bfce::service
