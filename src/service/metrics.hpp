#pragma once
// Point-in-time metrics snapshot of an EstimationService.
//
// The snapshot is plain data so it can be taken under the service lock
// and rendered/serialised outside it. Two renderings ship with it: an
// aligned text table in the style of core::render_engine_counters for
// humans, and a stable JSON document for machines (the fleet bench
// writes it to BENCH_service.json; docs/SERVICE.md specifies the
// schema).

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "rfid/frame_engine.hpp"

namespace bfce::service {

/// Exact (not sketched) latency percentiles over one population of wall
/// times; the service keeps every sample, so snapshots are O(n log n)
/// in completed jobs — fine at fleet-bench scale.
struct LatencyProfile {
  std::size_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// One logical reader's tracker, as last updated by a *completed*
/// tracking job carrying that reader_id. This is monitoring state: when
/// several jobs share a reader_id, "last" means completion order, which
/// depends on scheduling — the deterministic artefacts are the
/// JobResults themselves (pure functions of their specs), not this row.
struct ReaderTrackerState {
  std::uint64_t reader_id = 0;
  std::uint64_t jobs = 0;       ///< completed tracking jobs for this reader
  std::uint64_t rounds = 0;     ///< fused rounds across those jobs
  double state = 0.0;           ///< final fused population estimate
  double variance = 0.0;        ///< its posterior variance P
  double innovation_rms = 0.0;  ///< last trajectory's innovation RMS
  double residual_rms = 0.0;    ///< last trajectory's residual RMS
};

/// Fleet-level aggregates over every completed tracking job.
struct TrackingStats {
  std::uint64_t jobs = 0;    ///< completed tracking jobs
  std::uint64_t rounds = 0;  ///< fused rounds across them
  double raw_rmse_mean = 0.0;      ///< mean per-job raw-estimate RMSE
  double tracked_rmse_mean = 0.0;  ///< mean per-job fused RMSE
  double innovation_rms = 0.0;     ///< RMS innovation pooled over all rounds
  double residual_rms = 0.0;       ///< RMS residual pooled over all rounds
};

/// Fleet-level aggregates over every completed federation job.
struct FederationStats {
  std::uint64_t jobs = 0;             ///< completed federation jobs
  std::uint64_t readers = 0;          ///< reader sessions across them
  std::uint64_t schedule_rounds = 0;  ///< interference rounds across them
  std::uint64_t tree_merges = 0;      ///< aggregation-tree bitmap merges
  std::uint64_t word_ors = 0;         ///< 64-bit word ORs in those merges
  double fleet_airtime_s = 0.0;       ///< summed fleet airtime
  double mean_overlap_fraction = 0.0; ///< mean realised coverage overlap
};

/// Counters of the wire front door (service/wire.hpp), sampled from the
/// server when one is attached to the service via
/// EstimationService::set_wire_stats_source().
struct WireStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_shed = 0;  ///< dropped by accept-queue overload
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t submits = 0;           ///< SUBMIT frames admitted as jobs
  std::uint64_t jobs_shed = 0;         ///< SUBMIT frames answered with BUSY
  std::uint64_t malformed = 0;         ///< undecodable or invalid frames
  std::uint64_t oversized = 0;         ///< length prefix beyond the cap
  std::uint64_t timeouts = 0;          ///< connections past their deadline
  std::uint64_t disconnects = 0;       ///< peers gone mid-frame
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

struct ServiceMetrics {
  // Admission.
  std::uint64_t admitted = 0;   ///< jobs accepted into the queue
  std::uint64_t rejected = 0;   ///< try_submit calls bounced off a full queue

  // Terminal outcomes (admitted == completed + queue_depth + running).
  std::uint64_t completed = 0;        ///< reached any terminal status
  std::uint64_t done = 0;             ///< kDone
  std::uint64_t deadline_missed = 0;  ///< kDeadlineMissed
  std::uint64_t expired = 0;          ///< kExpired
  std::uint64_t cancelled = 0;        ///< kCancelled
  std::uint64_t failed = 0;           ///< kFailed
  std::uint64_t retries = 0;          ///< extra attempts beyond the first

  // Instantaneous state.
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t running = 0;
  unsigned workers = 0;
  double elapsed_s = 0.0;  ///< wall time since the service started

  LatencyProfile latency;     ///< submit → terminal, executed jobs
  LatencyProfile queue_wait;  ///< submit → first attempt, executed jobs

  /// Shared Theorem-4 planner cache, all-zero when none is attached.
  bool planner_attached = false;
  core::PlannerCacheStats planner;

  /// FrameEngine counters aggregated over every completed job.
  rfid::EngineCounters engine;

  /// Tracking-job aggregates plus one row per logical reader, sorted by
  /// reader_id. Both all-zero/empty when no tracking job has completed.
  TrackingStats tracking;
  std::vector<ReaderTrackerState> readers;

  /// Federation-job aggregates; all-zero when none has completed.
  FederationStats federation;

  /// Wire front-door counters; all-zero when no server is attached.
  bool wire_attached = false;
  WireStats wire;

  double throughput_jobs_per_s() const noexcept {
    return elapsed_s > 0.0
               ? static_cast<double>(completed) / elapsed_s
               : 0.0;
  }
};

/// Aligned, human-readable rendering (admission/outcome counts, latency
/// percentiles, planner cache line, engine-counter totals).
std::string render_service_metrics(const ServiceMetrics& m);

/// The snapshot as a single JSON object (schema in docs/SERVICE.md).
std::string service_metrics_json(const ServiceMetrics& m);

}  // namespace bfce::service
