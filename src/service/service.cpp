#include "service/service.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "core/bfce.hpp"
#include "estimators/registry.hpp"
#include "math/erf.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"
#include "tracking/session.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bfce::service {

namespace {

/// Resolves a job's estimator. BFCE variants built here (rather than
/// through the registry) so they share the service's planner.
std::unique_ptr<estimators::CardinalityEstimator> make_job_estimator(
    const JobSpec& spec, core::PersistencePlanner* planner) {
  if (spec.factory) return spec.factory();
  if (planner != nullptr) {
    core::BfceParams params;
    params.planner = planner;
    if (spec.estimator == "BFCE") {
      return std::make_unique<core::BfceEstimator>(params);
    }
    if (spec.estimator == "BFCE-avg") {
      return std::make_unique<core::AveragedBfceEstimator>(10, params);
    }
  }
  return estimators::make_estimator(spec.estimator);
}

LatencyProfile profile_of(std::vector<double> samples) {
  LatencyProfile p;
  p.count = samples.size();
  if (samples.empty()) return p;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  p.mean_s = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  p.p50_s = math::quantile_sorted(samples, 0.50);
  p.p95_s = math::quantile_sorted(samples, 0.95);
  p.p99_s = math::quantile_sorted(samples, 0.99);
  p.max_s = samples.back();
  return p;
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* to_cstring(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kDeadlineMissed: return "deadline_missed";
    case JobStatus::kExpired: return "expired";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "unknown";
}

EstimationService::EstimationService(ServiceConfig config)
    : config_(config),
      workers_(config.workers != 0 ? config.workers
                                   : util::default_thread_count()),
      started_(Clock::now()) {
  pool_.reserve(workers_);
  for (unsigned t = 0; t < workers_; ++t) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

EstimationService::~EstimationService() { shutdown(); }

JobId EstimationService::admit_locked(JobSpec&& spec) {
  const JobId id = next_id_++;
  JobState& state = jobs_[id];
  state.spec = std::move(spec);
  state.result.id = id;
  state.result.status = JobStatus::kQueued;
  state.submitted = Clock::now();
  queue_.push_back(id);
  ++admitted_;
  work_ready_.notify_one();
  return id;
}

JobId EstimationService::submit(JobSpec spec) {
  std::unique_lock lock(mutex_);
  queue_space_.wait(lock, [&] {
    return stopping_ || queue_.size() < config_.queue_capacity;
  });
  if (stopping_) return kInvalidJob;
  return admit_locked(std::move(spec));
}

std::optional<JobId> EstimationService::try_submit(JobSpec spec) {
  std::unique_lock lock(mutex_);
  if (stopping_) return std::nullopt;
  if (queue_.size() >= config_.queue_capacity) {
    ++rejected_;
    return std::nullopt;
  }
  return admit_locked(std::move(spec));
}

JobId EstimationService::submit_portable(const PortableJobSpec& spec) {
  // Materialization (population synthesis) happens before the lock:
  // the admission path must never hold mutex_ across real work.
  std::optional<MaterializedJob> job = materialize(spec);
  std::unique_lock lock(mutex_);
  if (!job.has_value()) {
    ++rejected_;
    return kInvalidJob;
  }
  queue_space_.wait(lock, [&] {
    return stopping_ || queue_.size() < config_.queue_capacity;
  });
  if (stopping_) return kInvalidJob;
  const JobId id = admit_locked(std::move(job->spec));
  JobState& state = jobs_.at(id);
  state.owned_population = std::move(job->population);
  state.portable = spec;
  return id;
}

std::optional<JobId> EstimationService::try_submit_portable(
    const PortableJobSpec& spec) {
  std::optional<MaterializedJob> job = materialize(spec);
  std::unique_lock lock(mutex_);
  if (stopping_) return std::nullopt;
  if (!job.has_value() || queue_.size() >= config_.queue_capacity) {
    ++rejected_;
    return std::nullopt;
  }
  const JobId id = admit_locked(std::move(job->spec));
  JobState& state = jobs_.at(id);
  state.owned_population = std::move(job->population);
  state.portable = spec;
  return id;
}

ServiceSnapshot EstimationService::snapshot() const {
  ServiceSnapshot snap;
  snap.substrate_fingerprint =
      substrate_fingerprint(config_.mode, config_.channel, config_.timing);
  {
    std::unique_lock lock(mutex_);
    snap.next_id = next_id_;
    snap.rejected = rejected_;
    snap.non_portable_skipped = non_portable_skipped_;
    for (const auto& [id, state] : jobs_) {
      if (is_terminal(state.result.status)) {
        snap.completed.emplace_back(id, state.result);
      } else if (state.portable.has_value()) {
        snap.pending.emplace_back(id, *state.portable);
      } else {
        ++snap.non_portable_skipped;
      }
    }
  }
  // jobs_ iterates in hash order; the snapshot encoding must be
  // byte-stable, so both sections are sorted by id.
  std::sort(snap.completed.begin(), snap.completed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(snap.pending.begin(), snap.pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Planner export takes the planner's own (leaf) lock — after mutex_ is
  // released, like every other planner call.
  if (config_.planner != nullptr) {
    snap.planner.present = true;
    snap.planner.n_low_mantissa_bits =
        config_.planner->options().n_low_mantissa_bits;
    snap.planner.entries = config_.planner->export_entries();
  }
  return snap;
}

SnapshotError EstimationService::restore(const ServiceSnapshot& snap) {
  if (snap.substrate_fingerprint !=
      substrate_fingerprint(config_.mode, config_.channel, config_.timing)) {
    return SnapshotError::kConfigMismatch;
  }

  // Validate + materialize outside the lock (population synthesis is
  // real work). decode_snapshot already vetted statuses and specs, but
  // restore() also accepts hand-built snapshots, so re-check.
  std::vector<std::pair<JobId, MaterializedJob>> pending;
  pending.reserve(snap.pending.size());
  {
    std::unordered_map<JobId, bool> seen;
    seen.reserve(snap.completed.size() + snap.pending.size());
    for (const auto& [id, result] : snap.completed) {
      if (id == kInvalidJob || !is_terminal(result.status) ||
          !seen.emplace(id, true).second) {
        return SnapshotError::kMalformed;
      }
    }
    for (const auto& [id, spec] : snap.pending) {
      if (id == kInvalidJob || !seen.emplace(id, true).second) {
        return SnapshotError::kMalformed;
      }
      std::optional<MaterializedJob> job = materialize(spec);
      if (!job.has_value()) return SnapshotError::kMalformed;
      pending.emplace_back(id, std::move(*job));
    }
  }

  // Seed the planner before any restored job can run: the planner's
  // shared_mutex is a strict leaf, so this happens outside mutex_.
  if (snap.planner.present && config_.planner != nullptr) {
    config_.planner->import_entries(snap.planner.entries);
  }

  std::unique_lock lock(mutex_);
  if (stopping_) return SnapshotError::kBadState;
  // Only a fresh service may be restored: merging two histories would
  // make id collisions and double-counted aggregates possible.
  if (admitted_ != 0 || rejected_ != 0 || !jobs_.empty()) {
    return SnapshotError::kBadState;
  }

  JobId max_id = 0;
  for (const auto& [id, result] : snap.completed) {
    JobState& state = jobs_[id];
    state.result = result;
    state.result.id = id;
    state.submitted = Clock::now();
    ++admitted_;
    // Re-accounting: every aggregate (outcome counts, latency vectors,
    // engine counters, tracker rows, federation sums) is rebuilt through
    // the one accounting path, so it cannot drift from the results.
    account_terminal(state.result);
    max_id = std::max(max_id, id);
  }
  std::size_t pending_idx = 0;
  for (const auto& [id, spec] : snap.pending) {
    JobState& state = jobs_[id];
    MaterializedJob& job = pending[pending_idx++].second;
    state.spec = std::move(job.spec);
    state.owned_population = std::move(job.population);
    state.portable = spec;
    state.result.id = id;
    state.result.status = JobStatus::kQueued;
    // Wall-clock deadlines restart at restore time (steady_clock does
    // not survive the process; the airtime budget, which is simulated
    // time, carries over exactly).
    state.submitted = Clock::now();
    queue_.push_back(id);
    ++admitted_;
    max_id = std::max(max_id, id);
  }
  next_id_ = std::max(snap.next_id, max_id + 1);
  rejected_ = snap.rejected;
  non_portable_skipped_ = snap.non_portable_skipped;
  work_ready_.notify_all();
  job_done_.notify_all();
  return SnapshotError::kNone;
}

void EstimationService::set_wire_stats_source(
    std::function<WireStats()> source) {
  std::unique_lock lock(mutex_);
  wire_stats_source_ = std::move(source);
}

bool EstimationService::cancel(JobId id) {
  std::unique_lock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  JobState& state = it->second;
  if (state.result.status != JobStatus::kQueued) return false;

  const auto pos = std::find(queue_.begin(), queue_.end(), id);
  if (pos != queue_.end()) queue_.erase(pos);
  state.result.status = JobStatus::kCancelled;
  state.result.latency_s = seconds_between(state.submitted, Clock::now());
  account_terminal(state.result);
  queue_space_.notify_one();
  job_done_.notify_all();
  return true;
}

JobResult EstimationService::wait(JobId id) {
  std::unique_lock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    JobResult unknown;
    unknown.id = id;
    unknown.status = JobStatus::kFailed;
    unknown.outcome.note = "unknown job id";
    return unknown;
  }
  job_done_.wait(lock,
                 [&] { return is_terminal(it->second.result.status); });
  return it->second.result;
}

std::optional<JobResult> EstimationService::poll(JobId id) const {
  std::unique_lock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.result;
}

void EstimationService::drain() {
  std::unique_lock lock(mutex_);
  job_done_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void EstimationService::shutdown() {
  // Exactly one caller may own the join: pool_ is swapped out under the
  // lock, so a second concurrent shutdown() (or the destructor racing an
  // explicit call) sees an empty pool and parks on joined_ instead of
  // iterating a vector the owner is mutating. (Found by the TSan race
  // stress suite: the old code joined pool_ unlocked while a concurrent
  // caller cleared it.)
  std::vector<std::thread> workers;
  {
    std::unique_lock lock(mutex_);
    // Let queued work finish, then stop the pool.
    job_done_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
    stopping_ = true;
    workers.swap(pool_);
    if (workers.empty()) {
      // Another caller owns (or already finished) the join; wait it out
      // so every shutdown() returns only once the workers are gone.
      job_done_.wait(lock, [&] { return joined_; });
      return;
    }
  }
  work_ready_.notify_all();
  queue_space_.notify_all();
  for (std::thread& worker : workers) worker.join();
  {
    std::lock_guard lock(mutex_);
    joined_ = true;
  }
  job_done_.notify_all();
}

std::size_t EstimationService::queue_depth() const {
  std::unique_lock lock(mutex_);
  return queue_.size();
}

ServiceMetrics EstimationService::metrics() const {
  ServiceMetrics m;
  std::vector<double> latency;
  std::vector<double> waits;
  std::function<WireStats()> wire_source;
  {
    std::unique_lock lock(mutex_);
    wire_source = wire_stats_source_;
    m.admitted = admitted_;
    m.rejected = rejected_;
    m.completed = completed_;
    m.done = done_;
    m.deadline_missed = deadline_missed_;
    m.expired = expired_;
    m.cancelled = cancelled_;
    m.failed = failed_;
    m.retries = retries_;
    m.queue_depth = queue_.size();
    m.queue_capacity = config_.queue_capacity;
    m.running = running_;
    m.workers = workers_;
    m.elapsed_s = seconds_between(started_, Clock::now());
    m.engine = engine_;
    latency = latency_s_;
    waits = queue_wait_s_;

    m.tracking.jobs = tracking_jobs_;
    m.tracking.rounds = tracking_rounds_;
    if (tracking_jobs_ > 0) {
      const double jobs = static_cast<double>(tracking_jobs_);
      m.tracking.raw_rmse_mean = tracking_raw_rmse_sum_ / jobs;
      m.tracking.tracked_rmse_mean = tracking_tracked_rmse_sum_ / jobs;
    }
    if (tracking_rounds_ > 0) {
      const double rounds = static_cast<double>(tracking_rounds_);
      m.tracking.innovation_rms = std::sqrt(tracking_innovation_sq_ / rounds);
      m.tracking.residual_rms = std::sqrt(tracking_residual_sq_ / rounds);
    }
    m.readers.reserve(trackers_.size());
    for (const auto& [id, reader] : trackers_) m.readers.push_back(reader);

    m.federation.jobs = federation_jobs_;
    m.federation.readers = federation_readers_;
    m.federation.schedule_rounds = federation_rounds_;
    m.federation.tree_merges = federation_merges_;
    m.federation.word_ors = federation_word_ors_;
    m.federation.fleet_airtime_s = federation_airtime_s_;
    if (federation_jobs_ > 0) {
      m.federation.mean_overlap_fraction =
          federation_overlap_sum_ / static_cast<double>(federation_jobs_);
    }
  }
  std::sort(m.readers.begin(), m.readers.end(),
            [](const ReaderTrackerState& a, const ReaderTrackerState& b) {
              return a.reader_id < b.reader_id;
            });
  m.latency = profile_of(std::move(latency));
  m.queue_wait = profile_of(std::move(waits));
  if (config_.planner != nullptr) {
    m.planner_attached = true;
    m.planner = config_.planner->stats();
  }
  // Sampled with mutex_ released: the wire server's stats lock is a
  // strict leaf, same discipline as the planner.
  if (wire_source) {
    m.wire_attached = true;
    m.wire = wire_source();
  }
  return m;
}

void EstimationService::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained

    const JobId id = queue_.front();
    queue_.pop_front();
    queue_space_.notify_one();
    JobState& state = jobs_.at(id);  // element refs are rehash-stable
    // Only cancel() removes queued entries, and it erases them from
    // queue_ in the same critical section — a dequeued id is kQueued.
    assert(state.result.status == JobStatus::kQueued);
    const double waited = seconds_between(state.submitted, Clock::now());

    if (waited > state.spec.deadline_s) {
      state.result.status = JobStatus::kExpired;
      state.result.queue_wait_s = waited;
      state.result.latency_s = waited;
      account_terminal(state.result);
      job_done_.notify_all();
      continue;
    }

    state.result.status = JobStatus::kRunning;
    state.result.queue_wait_s = waited;
    ++running_;
    const JobSpec spec = state.spec;
    lock.unlock();

    const auto exec_start = Clock::now();
    std::uint64_t retries = 0;
    JobResult executed = execute_job(spec, retries);
    const double exec_s = seconds_between(exec_start, Clock::now());

    lock.lock();
    state.result.status = executed.status;
    state.result.outcome = std::move(executed.outcome);
    state.result.tracking = std::move(executed.tracking);
    state.result.federation = executed.federation;
    state.result.airtime_s = executed.airtime_s;
    state.result.attempts = executed.attempts;
    state.result.counters = executed.counters;
    state.result.exec_s = exec_s;
    state.result.latency_s = seconds_between(state.submitted, Clock::now());
    retries_ += retries;
    --running_;
    account_terminal(state.result);
    job_done_.notify_all();
  }
}

JobResult EstimationService::execute_job(const JobSpec& spec,
                                         std::uint64_t& retries) const {
  if (spec.tracking.has_value()) return execute_tracking(spec, retries);
  if (spec.federation.has_value()) return execute_federation(spec, retries);
  JobResult r;
  if (spec.population == nullptr) {
    r.status = JobStatus::kFailed;
    r.outcome.note = "job has no population";
    return r;
  }
  const std::uint32_t budget = std::max<std::uint32_t>(1, spec.max_attempts);
  for (std::uint32_t attempt = 0; attempt < budget; ++attempt) {
    const auto estimator = make_job_estimator(spec, config_.planner);
    if (estimator == nullptr) {
      r.status = JobStatus::kFailed;
      r.outcome.note = "unknown estimator '" + spec.estimator + "'";
      return r;
    }
    rfid::ReaderContext ctx(*spec.population,
                            util::derive_seed(spec.seed, attempt),
                            config_.mode, config_.channel, config_.timing,
                            config_.engine_policy);
    r.outcome = estimator->estimate(ctx, spec.req);
    r.counters += ctx.engine().counters();
    r.attempts = attempt + 1;
    r.airtime_s = r.outcome.airtime.total_seconds(config_.timing);

    const bool over_budget = r.airtime_s > spec.airtime_budget_s;
    if (r.outcome.met_by_design && !over_budget) {
      r.status = JobStatus::kDone;
      return r;
    }
    if (attempt + 1 < budget) {
      ++retries;
    } else {
      // Out of attempts: an airtime blow-out is a missed deadline; a
      // mere design-point miss still delivers the estimate as kDone
      // (the outcome carries met_by_design = false and the note).
      r.status = over_budget ? JobStatus::kDeadlineMissed : JobStatus::kDone;
    }
  }
  return r;
}

JobResult EstimationService::execute_tracking(const JobSpec& spec,
                                              std::uint64_t& retries) const {
  JobResult r;
  const TrackingJobSpec& track = *spec.tracking;
  const std::uint32_t budget = std::max<std::uint32_t>(1, spec.max_attempts);
  for (std::uint32_t attempt = 0; attempt < budget; ++attempt) {
    tracking::SessionConfig cfg;
    cfg.initial_population = track.initial_population;
    cfg.params.planner = config_.planner;
    cfg.req = spec.req;
    cfg.mode = config_.mode;
    cfg.channel = config_.channel;
    cfg.timing = config_.timing;
    // The service-wide engine policy applies to tracking rounds exactly
    // as it does to single-estimate jobs (it is shard-count invariant,
    // so trajectories stay bit-identical across policies' shard knobs).
    cfg.policy = config_.engine_policy;
    // Same stream contract as single-estimate jobs: attempt a derives
    // its whole session (timeline + every round) from (spec.seed, a).
    cfg.seed = util::derive_seed(spec.seed, attempt);

    tracking::TrackingSession session(cfg);
    session.run(track.schedule);

    tracking::TrackResult tracked;
    tracked.reader_id = track.reader_id;
    tracked.trajectory = session.trajectory();
    tracked.summary = session.summary();

    r.counters += session.counters();
    r.attempts = attempt + 1;
    r.airtime_s = tracked.summary.airtime_s;

    // The job-level outcome is the tracker's final fused state, with a
    // (1−δ) CI from the posterior variance (Gaussian posterior, so the
    // same d = confidence_d(δ) the protocol uses internally).
    r.outcome = estimators::EstimateOutcome{};
    r.outcome.n_hat = session.tracker().state();
    const double half =
        math::confidence_d(spec.req.delta) * std::sqrt(session.tracker().variance());
    r.outcome.ci_low = std::max(0.0, r.outcome.n_hat - half);
    r.outcome.ci_high = r.outcome.n_hat + half;
    r.outcome.rounds = static_cast<std::uint32_t>(tracked.summary.rounds);
    r.outcome.met_by_design = tracked.summary.design_misses == 0;
    if (!r.outcome.met_by_design) {
      r.outcome.note = "tracking: rounds fell back from the design point";
    }
    r.tracking = std::move(tracked);

    const bool over_budget = r.airtime_s > spec.airtime_budget_s;
    if (r.outcome.met_by_design && !over_budget) {
      r.status = JobStatus::kDone;
      return r;
    }
    if (attempt + 1 < budget) {
      ++retries;
    } else {
      r.status = over_budget ? JobStatus::kDeadlineMissed : JobStatus::kDone;
    }
  }
  return r;
}

JobResult EstimationService::execute_federation(const JobSpec& spec,
                                                std::uint64_t& retries) const {
  JobResult r;
  const FederationJobSpec& fedspec = *spec.federation;
  if (fedspec.fleet == nullptr) {
    r.status = JobStatus::kFailed;
    r.outcome.note = "federation job has no fleet";
    return r;
  }
  const std::uint32_t budget = std::max<std::uint32_t>(1, spec.max_attempts);
  for (std::uint32_t attempt = 0; attempt < budget; ++attempt) {
    federation::FederationConfig cfg;
    cfg.params.planner = config_.planner;
    cfg.correlation = fedspec.correlation;
    cfg.fanout = fedspec.fanout;
    cfg.mode = config_.mode;
    cfg.channel = config_.channel;
    cfg.timing = config_.timing;
    cfg.policy = config_.engine_policy;
    // Same stream contract as every other job kind: attempt a seeds the
    // whole fleet (coordinator + derived reader streams) from
    // (spec.seed, a), and reader 0 gets exactly the derived seed a plain
    // job's context would — the degenerate 1-reader fleet is
    // bit-identical to a plain BFCE job.
    cfg.seed = util::derive_seed(spec.seed, attempt);

    const federation::FederatedBfceEstimator estimator(cfg);
    federation::FederatedOutcome fed =
        estimator.estimate(*fedspec.fleet, spec.req);

    r.outcome = std::move(fed.outcome);
    r.counters += fed.counters;
    r.attempts = attempt + 1;
    // The airtime deadline applies to the floor's wall-clock: colliding
    // readers serialise, so every interference round replays the ledger.
    r.airtime_s = fed.fleet_airtime_s;

    FederationResult summary;
    summary.readers = fed.readers;
    summary.schedule_rounds = fed.schedule_rounds;
    summary.fleet_airtime_s = fed.fleet_airtime_s;
    summary.correction_g = fed.correction_g;
    summary.overlap_fraction = fed.overlap_fraction;
    summary.merge = fed.merge;
    summary.rng_fingerprint = fed.rng_fingerprint;
    r.federation = summary;

    const bool over_budget = r.airtime_s > spec.airtime_budget_s;
    if (r.outcome.met_by_design && !over_budget) {
      r.status = JobStatus::kDone;
      return r;
    }
    if (attempt + 1 < budget) {
      ++retries;
    } else {
      r.status = over_budget ? JobStatus::kDeadlineMissed : JobStatus::kDone;
    }
  }
  return r;
}

void EstimationService::account_terminal(const JobResult& result) {
  assert(is_terminal(result.status));
  ++completed_;
  switch (result.status) {
    case JobStatus::kDone: ++done_; break;
    case JobStatus::kDeadlineMissed: ++deadline_missed_; break;
    case JobStatus::kExpired: ++expired_; break;
    case JobStatus::kCancelled: ++cancelled_; break;
    case JobStatus::kFailed: ++failed_; break;
    case JobStatus::kQueued:
    case JobStatus::kRunning: break;  // unreachable for terminal results
  }
  latency_s_.push_back(result.latency_s);
  if (result.attempts > 0) queue_wait_s_.push_back(result.queue_wait_s);
  engine_ += result.counters;

  if (result.tracking.has_value()) {
    const tracking::TrackResult& t = *result.tracking;
    const double rounds = static_cast<double>(t.summary.rounds);
    ++tracking_jobs_;
    tracking_rounds_ += t.summary.rounds;
    tracking_innovation_sq_ +=
        t.summary.innovation_rms * t.summary.innovation_rms * rounds;
    tracking_residual_sq_ +=
        t.summary.residual_rms * t.summary.residual_rms * rounds;
    tracking_raw_rmse_sum_ += t.summary.raw_rmse;
    tracking_tracked_rmse_sum_ += t.summary.tracked_rmse;

    ReaderTrackerState& reader = trackers_[t.reader_id];
    reader.reader_id = t.reader_id;
    ++reader.jobs;
    reader.rounds += t.summary.rounds;
    if (!t.trajectory.empty()) {
      reader.state = t.trajectory.back().tracked_n;
      reader.variance = t.trajectory.back().variance;
    }
    reader.innovation_rms = t.summary.innovation_rms;
    reader.residual_rms = t.summary.residual_rms;
  }

  if (result.federation.has_value()) {
    const FederationResult& f = *result.federation;
    ++federation_jobs_;
    federation_readers_ += f.readers;
    federation_rounds_ += f.schedule_rounds;
    federation_merges_ += f.merge.merges;
    federation_word_ors_ += f.merge.word_ors;
    federation_airtime_s_ += f.fleet_airtime_s;
    federation_overlap_sum_ += f.overlap_fraction;
  }
}

}  // namespace bfce::service
