#pragma once
// Crash-safe service state: versioned, checksummed snapshots.
//
// A snapshot captures everything an EstimationService must carry across
// a process death to behave as if it never died:
//
//  * every terminal JobResult, verbatim (completed work is never
//    re-executed; restored waiters see the recorded bytes);
//  * every queued or running *portable* job (service/portable.hpp) — on
//    restore these are re-admitted under their original JobIds and
//    re-executed from their seeds. Job execution is a pure function of
//    the spec, so the re-run is bit-identical to what the dead process
//    would have produced — including in-flight busy-map BitVectors,
//    which rebuild identically from the same counter-addressed streams;
//  * the PersistencePlanner memo cache (core::PlannerEntry list), so the
//    restored service serves the same Theorem-4 answers from the same
//    warm keys;
//  * per-reader Kalman tracker rows and every other metrics aggregate —
//    not serialized separately but recomputed on restore by re-running
//    the terminal results through the accounting path, which keeps the
//    two representations impossible to desynchronize.
//
// File format (all integers little-endian; doubles by bit pattern;
// field-by-field layout in docs/SERVICE.md):
//
//   [0..3]   magic  "BFSS" (0x53534642 as LE u32)
//   [4..7]   format version (kSnapshotVersion)
//   [8..15]  payload byte count
//   [16..23] CRC-64/ECMA of the payload
//   [24..]   payload (decoded only after the CRC verifies)
//
// Version policy: the version is bumped on ANY payload layout change;
// there are no in-band extension points. load_snapshot rejects other
// versions with kBadVersion — a warm restart across an upgrade falls
// back to a cold start, never to a misparse. The committed golden
// fixture (tests/data/golden_snapshot.bin) pins the byte layout, so
// accidental drift fails a test instead of shipping.
//
// save_snapshot is crash-atomic: bytes go to "<path>.tmp.<pid>", are
// fsync'd, and only then rename(2)'d over the destination (the POSIX
// atomic-replace idiom), followed by an fsync of the directory. A crash
// at any point leaves either the old snapshot or the new one, never a
// torn file.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "rfid/channel.hpp"
#include "rfid/frame.hpp"
#include "rfid/timing.hpp"
#include "service/job.hpp"
#include "service/portable.hpp"

namespace bfce::service {

/// Every way loading a snapshot can fail, as a closed set: the reader
/// never throws and never invokes UB on hostile bytes — fault-injection
/// tests feed it truncated, bit-flipped and version-bumped files under
/// ASan/UBSan and expect exactly these codes.
enum class SnapshotError : std::uint8_t {
  kNone = 0,            ///< success
  kIoError,             ///< open/read/write/rename failed (see errno)
  kTruncated,           ///< file shorter than header + declared payload
  kBadMagic,            ///< first four bytes are not "BFSS"
  kBadVersion,          ///< payload layout from another format version
  kChecksumMismatch,    ///< payload bytes do not match the header CRC
  kMalformed,           ///< CRC passed but a field failed validation
  kConfigMismatch,      ///< snapshot from an incompatible service substrate
  kBadState,            ///< restore() target is not a fresh service
};

/// Short lowercase label ("truncated", "bad_version", ...).
const char* to_cstring(SnapshotError error) noexcept;

inline constexpr std::uint32_t kSnapshotMagic = 0x53534642u;  // "BFSS"
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Refuse to even read files larger than this (a snapshot is state, not
/// bulk data; 1 GiB is far beyond any real service).
inline constexpr std::uint64_t kMaxSnapshotBytes = std::uint64_t{1} << 30;

/// The planner cache section.
struct PlannerSnapshot {
  bool present = false;
  std::uint32_t n_low_mantissa_bits = 52;
  std::vector<core::PlannerEntry> entries;
};

/// In-memory form of one snapshot. Produced by
/// EstimationService::snapshot(), consumed by restore(); the codec
/// below moves it to and from bytes.
struct ServiceSnapshot {
  /// Fingerprint of (mode, channel, timing) — the substrate every job's
  /// results depend on. restore() refuses a mismatch (kConfigMismatch):
  /// replaying a job on a different substrate would silently change its
  /// estimates. The engine policy is deliberately excluded — sharding
  /// is bit-identical by construction, so a snapshot may be restored
  /// under any shard policy.
  std::uint64_t substrate_fingerprint = 0;
  std::uint64_t next_id = 1;
  std::uint64_t rejected = 0;
  /// Queued/running jobs that could NOT be captured (in-process
  /// pointer/factory specs, federation jobs). They are lost on restore;
  /// callers that need crash-safety submit portable jobs.
  std::uint64_t non_portable_skipped = 0;
  PlannerSnapshot planner;
  /// Terminal results, sorted by id (deterministic encoding).
  std::vector<std::pair<JobId, JobResult>> completed;
  /// Queued/running portable jobs, sorted by id.
  std::vector<std::pair<JobId, PortableJobSpec>> pending;
};

/// Fingerprint over the substrate triple (see
/// ServiceSnapshot::substrate_fingerprint).
std::uint64_t substrate_fingerprint(rfid::FrameMode mode,
                                    const rfid::ChannelModel& channel,
                                    const rfid::TimingModel& timing) noexcept;

/// JobResult codec, shared with the wire front door's RESULT frame.
/// Decode failure latches r.fail(); the result is then partial.
void encode_job_result(util::ByteWriter& w, const JobResult& result);
void decode_job_result(util::ByteReader& r, JobResult& result);

/// Full file image (header + payload). Deterministic: equal snapshots
/// encode to equal bytes.
std::vector<std::uint8_t> encode_snapshot(const ServiceSnapshot& snap);

/// Decodes a full file image. On failure `out` is partially filled and
/// must be discarded.
SnapshotError decode_snapshot(const std::uint8_t* data, std::size_t size,
                              ServiceSnapshot& out);
SnapshotError decode_snapshot(const std::vector<std::uint8_t>& bytes,
                              ServiceSnapshot& out);

/// Crash-atomic write (temp + fsync + rename + directory fsync).
SnapshotError save_snapshot(const ServiceSnapshot& snap,
                            const std::string& path);

/// Reads and decodes `path` with the full typed-error contract.
SnapshotError load_snapshot(const std::string& path, ServiceSnapshot& out);

}  // namespace bfce::service
