#include "service/metrics.hpp"

#include <cstdio>

#include "core/monitor.hpp"

namespace bfce::service {

namespace {

void append_latency_row(std::string& out, const char* label,
                        const LatencyProfile& l) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-12s %8zu %10.4f %10.4f %10.4f %10.4f %10.4f\n", label,
                l.count, l.mean_s, l.p50_s, l.p95_s, l.p99_s, l.max_s);
  out += line;
}

void append_latency_json(std::string& out, const char* key,
                         const LatencyProfile& l) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"count\": %zu, \"mean_s\": %.6f, "
                "\"p50_s\": %.6f, \"p95_s\": %.6f, \"p99_s\": %.6f, "
                "\"max_s\": %.6f},\n",
                key, l.count, l.mean_s, l.p50_s, l.p95_s, l.p99_s, l.max_s);
  out += buf;
}

}  // namespace

std::string render_service_metrics(const ServiceMetrics& m) {
  std::string out;
  char line[240];

  std::snprintf(line, sizeof(line),
                "service: %u workers, queue %zu/%zu, %zu running, "
                "%.2f s elapsed\n",
                m.workers, m.queue_depth, m.queue_capacity, m.running,
                m.elapsed_s);
  out += line;
  std::snprintf(
      line, sizeof(line),
      "jobs: admitted=%llu rejected=%llu completed=%llu "
      "(done=%llu deadline_missed=%llu expired=%llu cancelled=%llu "
      "failed=%llu) retries=%llu\n",
      static_cast<unsigned long long>(m.admitted),
      static_cast<unsigned long long>(m.rejected),
      static_cast<unsigned long long>(m.completed),
      static_cast<unsigned long long>(m.done),
      static_cast<unsigned long long>(m.deadline_missed),
      static_cast<unsigned long long>(m.expired),
      static_cast<unsigned long long>(m.cancelled),
      static_cast<unsigned long long>(m.failed),
      static_cast<unsigned long long>(m.retries));
  out += line;
  std::snprintf(line, sizeof(line), "throughput: %.1f jobs/s\n",
                m.throughput_jobs_per_s());
  out += line;

  std::snprintf(line, sizeof(line), "%-12s %8s %10s %10s %10s %10s %10s\n",
                "wall (s)", "count", "mean", "p50", "p95", "p99", "max");
  out += line;
  append_latency_row(out, "latency", m.latency);
  append_latency_row(out, "queue_wait", m.queue_wait);

  if (m.planner_attached) {
    std::snprintf(line, sizeof(line),
                  "planner cache: %llu hits, %llu misses (hit rate %.3f), "
                  "%zu entries\n",
                  static_cast<unsigned long long>(m.planner.hits),
                  static_cast<unsigned long long>(m.planner.misses),
                  m.planner.hit_rate(), m.planner.entries);
    out += line;
  } else {
    out += "planner cache: not attached\n";
  }

  if (m.tracking.jobs > 0) {
    std::snprintf(line, sizeof(line),
                  "tracking: %llu jobs, %llu rounds, raw rmse %.2f, "
                  "tracked rmse %.2f, innovation rms %.2f, residual rms "
                  "%.2f\n",
                  static_cast<unsigned long long>(m.tracking.jobs),
                  static_cast<unsigned long long>(m.tracking.rounds),
                  m.tracking.raw_rmse_mean, m.tracking.tracked_rmse_mean,
                  m.tracking.innovation_rms, m.tracking.residual_rms);
    out += line;
    for (const ReaderTrackerState& r : m.readers) {
      std::snprintf(line, sizeof(line),
                    "  reader %llu: %llu jobs, %llu rounds, state %.1f "
                    "(var %.1f), innovation rms %.2f, residual rms %.2f\n",
                    static_cast<unsigned long long>(r.reader_id),
                    static_cast<unsigned long long>(r.jobs),
                    static_cast<unsigned long long>(r.rounds), r.state,
                    r.variance, r.innovation_rms, r.residual_rms);
      out += line;
    }
  }

  if (m.federation.jobs > 0) {
    std::snprintf(line, sizeof(line),
                  "federation: %llu jobs, %llu readers, %llu schedule "
                  "rounds, %llu tree merges, fleet airtime %.2f s, "
                  "mean overlap %.3f\n",
                  static_cast<unsigned long long>(m.federation.jobs),
                  static_cast<unsigned long long>(m.federation.readers),
                  static_cast<unsigned long long>(m.federation.schedule_rounds),
                  static_cast<unsigned long long>(m.federation.tree_merges),
                  m.federation.fleet_airtime_s,
                  m.federation.mean_overlap_fraction);
    out += line;
  }

  if (m.wire_attached) {
    std::snprintf(line, sizeof(line),
                  "wire: %llu conns (%llu shed), frames in=%llu out=%llu, "
                  "submits=%llu busy=%llu, malformed=%llu oversized=%llu "
                  "timeouts=%llu disconnects=%llu\n",
                  static_cast<unsigned long long>(m.wire.connections_accepted),
                  static_cast<unsigned long long>(m.wire.connections_shed),
                  static_cast<unsigned long long>(m.wire.frames_in),
                  static_cast<unsigned long long>(m.wire.frames_out),
                  static_cast<unsigned long long>(m.wire.submits),
                  static_cast<unsigned long long>(m.wire.jobs_shed),
                  static_cast<unsigned long long>(m.wire.malformed),
                  static_cast<unsigned long long>(m.wire.oversized),
                  static_cast<unsigned long long>(m.wire.timeouts),
                  static_cast<unsigned long long>(m.wire.disconnects));
    out += line;
  }

  out += core::render_engine_counters(m.engine);
  return out;
}

std::string service_metrics_json(const ServiceMetrics& m) {
  std::string out = "{\n";
  char buf[512];

  std::snprintf(
      buf, sizeof(buf),
      "  \"workers\": %u,\n  \"queue_depth\": %zu,\n"
      "  \"queue_capacity\": %zu,\n  \"running\": %zu,\n"
      "  \"elapsed_s\": %.6f,\n  \"admitted\": %llu,\n"
      "  \"rejected\": %llu,\n  \"completed\": %llu,\n  \"done\": %llu,\n"
      "  \"deadline_missed\": %llu,\n  \"expired\": %llu,\n"
      "  \"cancelled\": %llu,\n  \"failed\": %llu,\n  \"retries\": %llu,\n"
      "  \"throughput_jobs_per_s\": %.3f,\n",
      m.workers, m.queue_depth, m.queue_capacity, m.running, m.elapsed_s,
      static_cast<unsigned long long>(m.admitted),
      static_cast<unsigned long long>(m.rejected),
      static_cast<unsigned long long>(m.completed),
      static_cast<unsigned long long>(m.done),
      static_cast<unsigned long long>(m.deadline_missed),
      static_cast<unsigned long long>(m.expired),
      static_cast<unsigned long long>(m.cancelled),
      static_cast<unsigned long long>(m.failed),
      static_cast<unsigned long long>(m.retries),
      m.throughput_jobs_per_s());
  out += buf;

  append_latency_json(out, "latency_s", m.latency);
  append_latency_json(out, "queue_wait_s", m.queue_wait);

  std::snprintf(buf, sizeof(buf),
                "  \"planner_cache\": {\"attached\": %s, \"hits\": %llu, "
                "\"misses\": %llu, \"hit_rate\": %.6f, \"entries\": %zu},\n",
                m.planner_attached ? "true" : "false",
                static_cast<unsigned long long>(m.planner.hits),
                static_cast<unsigned long long>(m.planner.misses),
                m.planner.hit_rate(), m.planner.entries);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  \"tracking\": {\"jobs\": %llu, \"rounds\": %llu, "
                "\"raw_rmse_mean\": %.6f, \"tracked_rmse_mean\": %.6f, "
                "\"innovation_rms\": %.6f, \"residual_rms\": %.6f, "
                "\"readers\": [",
                static_cast<unsigned long long>(m.tracking.jobs),
                static_cast<unsigned long long>(m.tracking.rounds),
                m.tracking.raw_rmse_mean, m.tracking.tracked_rmse_mean,
                m.tracking.innovation_rms, m.tracking.residual_rms);
  out += buf;
  for (std::size_t i = 0; i < m.readers.size(); ++i) {
    const ReaderTrackerState& r = m.readers[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"reader_id\": %llu, \"jobs\": %llu, "
                  "\"rounds\": %llu, \"state\": %.6f, \"variance\": %.6f, "
                  "\"innovation_rms\": %.6f, \"residual_rms\": %.6f}",
                  i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(r.reader_id),
                  static_cast<unsigned long long>(r.jobs),
                  static_cast<unsigned long long>(r.rounds), r.state,
                  r.variance, r.innovation_rms, r.residual_rms);
    out += buf;
  }
  out += "]},\n";

  std::snprintf(buf, sizeof(buf),
                "  \"federation\": {\"jobs\": %llu, \"readers\": %llu, "
                "\"schedule_rounds\": %llu, \"tree_merges\": %llu, "
                "\"word_ors\": %llu, \"fleet_airtime_s\": %.6f, "
                "\"mean_overlap_fraction\": %.6f},\n",
                static_cast<unsigned long long>(m.federation.jobs),
                static_cast<unsigned long long>(m.federation.readers),
                static_cast<unsigned long long>(m.federation.schedule_rounds),
                static_cast<unsigned long long>(m.federation.tree_merges),
                static_cast<unsigned long long>(m.federation.word_ors),
                m.federation.fleet_airtime_s,
                m.federation.mean_overlap_fraction);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  \"wire\": {\"attached\": %s, "
                "\"connections_accepted\": %llu, "
                "\"connections_shed\": %llu, \"frames_in\": %llu, "
                "\"frames_out\": %llu, \"submits\": %llu, "
                "\"jobs_shed\": %llu, \"malformed\": %llu, "
                "\"oversized\": %llu, \"timeouts\": %llu, "
                "\"disconnects\": %llu, \"bytes_in\": %llu, "
                "\"bytes_out\": %llu},\n",
                m.wire_attached ? "true" : "false",
                static_cast<unsigned long long>(m.wire.connections_accepted),
                static_cast<unsigned long long>(m.wire.connections_shed),
                static_cast<unsigned long long>(m.wire.frames_in),
                static_cast<unsigned long long>(m.wire.frames_out),
                static_cast<unsigned long long>(m.wire.submits),
                static_cast<unsigned long long>(m.wire.jobs_shed),
                static_cast<unsigned long long>(m.wire.malformed),
                static_cast<unsigned long long>(m.wire.oversized),
                static_cast<unsigned long long>(m.wire.timeouts),
                static_cast<unsigned long long>(m.wire.disconnects),
                static_cast<unsigned long long>(m.wire.bytes_in),
                static_cast<unsigned long long>(m.wire.bytes_out));
  out += buf;

  const rfid::ShapeCounters total = m.engine.total();
  std::snprintf(buf, sizeof(buf),
                "  \"engine\": {\"frames\": %llu, \"slots\": %llu, "
                "\"tag_tx\": %llu, \"wall_ms\": %.3f, \"batches\": %llu, "
                "\"sharded_walks\": %llu}\n",
                static_cast<unsigned long long>(total.frames),
                static_cast<unsigned long long>(total.slots),
                static_cast<unsigned long long>(total.tag_tx),
                total.wall_us / 1000.0,
                static_cast<unsigned long long>(m.engine.batches),
                static_cast<unsigned long long>(m.engine.sharded_walks));
  out += buf;

  out += "}\n";
  return out;
}

}  // namespace bfce::service
