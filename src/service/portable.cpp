#include "service/portable.hpp"

#include <cmath>
#include <utility>

#include "rfid/tag.hpp"
#include "tracking/session.hpp"
#include "util/rng.hpp"

namespace bfce::service {

namespace {

/// Domain-separation label for membership-population RN derivation.
constexpr std::string_view kMembershipRnLabel = "portable-membership-rn";

bool valid_distribution(rfid::TagIdDistribution d) noexcept {
  switch (d) {
    case rfid::TagIdDistribution::kT1Uniform:
    case rfid::TagIdDistribution::kT2ApproxNormal:
    case rfid::TagIdDistribution::kT3Normal:
      return true;
  }
  return false;
}

}  // namespace

const char* validate_portable_job(const PortableJobSpec& spec) noexcept {
  if (spec.estimator.empty()) return "empty estimator name";
  if (spec.estimator.size() > kMaxEstimatorName) {
    return "estimator name too long";
  }
  if (!(spec.req.epsilon > 0.0) || !(spec.req.epsilon < 1.0)) {
    return "epsilon outside (0, 1)";
  }
  if (!(spec.req.delta > 0.0) || !(spec.req.delta < 1.0)) {
    return "delta outside (0, 1)";
  }
  if (std::isnan(spec.airtime_budget_s) || spec.airtime_budget_s < 0.0) {
    return "airtime budget is negative or NaN";
  }
  if (std::isnan(spec.deadline_s) || spec.deadline_s < 0.0) {
    return "deadline is negative or NaN";
  }

  if (spec.tracking.has_value()) {
    const PortableTrackingSpec& t = *spec.tracking;
    if (t.initial_population > kMaxPortableTags) {
      return "tracking initial population too large";
    }
    if (t.schedule.empty()) return "tracking schedule is empty";
    if (t.schedule.size() > kMaxSchedulePhases) {
      return "tracking schedule has too many phases";
    }
    for (const PortableChurnPhase& phase : t.schedule) {
      if (phase.rounds == 0 || phase.rounds > kMaxPhaseRounds) {
        return "tracking phase rounds outside [1, 2^20]";
      }
      if (!(phase.departure_prob >= 0.0) || !(phase.departure_prob <= 1.0)) {
        return "departure probability outside [0, 1]";
      }
      if (!(phase.arrival_mean >= 0.0) ||
          phase.arrival_mean > static_cast<double>(kMaxPortableTags)) {
        return "arrival mean outside [0, 2^24]";
      }
    }
    return nullptr;  // tracking jobs ignore the population description
  }

  switch (spec.population.kind) {
    case PortablePopulation::Kind::kNone:
      return "non-tracking job has no population";
    case PortablePopulation::Kind::kSynthetic:
      if (spec.population.size > kMaxPortableTags) {
        return "synthetic population too large";
      }
      if (!valid_distribution(spec.population.distribution)) {
        return "unknown tag-id distribution";
      }
      return nullptr;
    case PortablePopulation::Kind::kMembership:
      if (spec.population.membership.size() > kMaxMembershipBits) {
        return "membership bitmap too large";
      }
      return nullptr;
  }
  return "unknown population kind";
}

std::optional<MaterializedJob> materialize(const PortableJobSpec& spec) {
  if (validate_portable_job(spec) != nullptr) return std::nullopt;

  MaterializedJob job;
  job.spec.estimator = spec.estimator;
  job.spec.req = spec.req;
  job.spec.seed = spec.seed;
  job.spec.airtime_budget_s = spec.airtime_budget_s;
  job.spec.deadline_s = spec.deadline_s;
  job.spec.max_attempts = spec.max_attempts;

  if (spec.tracking.has_value()) {
    TrackingJobSpec track;
    track.reader_id = spec.tracking->reader_id;
    track.initial_population =
        static_cast<std::size_t>(spec.tracking->initial_population);
    track.schedule.reserve(spec.tracking->schedule.size());
    for (const PortableChurnPhase& phase : spec.tracking->schedule) {
      tracking::ChurnPhase p;
      p.rounds = static_cast<std::size_t>(phase.rounds);
      p.model.departure_prob = phase.departure_prob;
      p.model.arrival_mean = phase.arrival_mean;
      track.schedule.push_back(p);
    }
    job.spec.tracking = std::move(track);
    return job;
  }

  if (spec.population.kind == PortablePopulation::Kind::kSynthetic) {
    job.population = std::make_shared<const rfid::TagPopulation>(
        rfid::make_population(static_cast<std::size_t>(spec.population.size),
                              spec.population.distribution,
                              spec.population.seed));
  } else {  // kMembership
    // Bit i ⇒ tag id i+1 (ids stay in the paper's [1, 10^15] range for
    // any plausible bitmap). RN32 values are counter-addressed off a
    // label-separated base so the population is a pure function of the
    // (bitmap, seed) pair — independent of construction order.
    const std::uint64_t rn_base = util::SeedMixer(spec.population.seed)
                                      .absorb(kMembershipRnLabel)
                                      .value();
    std::vector<rfid::Tag> tags;
    tags.reserve(spec.population.membership.size() / 64 + 1);
    const util::BitVector& bits = spec.population.membership;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (!bits.get(i)) continue;
      rfid::Tag tag;
      tag.id = static_cast<std::uint64_t>(i) + 1;
      tag.rn = static_cast<std::uint32_t>(
          util::splitmix_at(rn_base, static_cast<std::uint64_t>(i)));
      tags.push_back(tag);
    }
    job.population =
        std::make_shared<const rfid::TagPopulation>(std::move(tags));
  }
  job.spec.population = job.population.get();
  return job;
}

void encode_portable_job(util::ByteWriter& w, const PortableJobSpec& spec) {
  w.str(spec.estimator);
  w.f64(spec.req.epsilon);
  w.f64(spec.req.delta);
  w.u64(spec.seed);
  w.f64(spec.airtime_budget_s);
  w.f64(spec.deadline_s);
  w.u32(spec.max_attempts);

  w.u8(static_cast<std::uint8_t>(spec.population.kind));
  switch (spec.population.kind) {
    case PortablePopulation::Kind::kNone:
      break;
    case PortablePopulation::Kind::kSynthetic:
      w.u64(spec.population.size);
      w.u8(static_cast<std::uint8_t>(spec.population.distribution));
      w.u64(spec.population.seed);
      break;
    case PortablePopulation::Kind::kMembership:
      w.u64(spec.population.seed);
      w.bitvector(spec.population.membership);
      break;
  }

  w.u8(spec.tracking.has_value() ? 1 : 0);
  if (spec.tracking.has_value()) {
    const PortableTrackingSpec& t = *spec.tracking;
    w.u64(t.reader_id);
    w.u64(t.initial_population);
    w.u64(t.schedule.size());
    for (const PortableChurnPhase& phase : t.schedule) {
      w.u64(phase.rounds);
      w.f64(phase.departure_prob);
      w.f64(phase.arrival_mean);
    }
  }
}

PortableJobSpec decode_portable_job(util::ByteReader& r) {
  PortableJobSpec spec;
  spec.estimator = r.str(kMaxEstimatorName);
  spec.req.epsilon = r.f64();
  spec.req.delta = r.f64();
  spec.seed = r.u64();
  spec.airtime_budget_s = r.f64();
  spec.deadline_s = r.f64();
  spec.max_attempts = r.u32();

  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(PortablePopulation::Kind::kMembership)) {
    r.fail();
    return spec;
  }
  spec.population.kind = static_cast<PortablePopulation::Kind>(kind);
  switch (spec.population.kind) {
    case PortablePopulation::Kind::kNone:
      break;
    case PortablePopulation::Kind::kSynthetic: {
      spec.population.size = r.u64();
      const std::uint8_t dist = r.u8();
      if (dist > static_cast<std::uint8_t>(rfid::TagIdDistribution::kT3Normal)) {
        r.fail();
        return spec;
      }
      spec.population.distribution =
          static_cast<rfid::TagIdDistribution>(dist);
      spec.population.seed = r.u64();
      break;
    }
    case PortablePopulation::Kind::kMembership:
      spec.population.seed = r.u64();
      spec.population.membership = r.bitvector(kMaxMembershipBits);
      break;
  }

  const std::uint8_t has_tracking = r.u8();
  if (has_tracking > 1) {
    r.fail();
    return spec;
  }
  if (has_tracking == 1) {
    PortableTrackingSpec t;
    t.reader_id = r.u64();
    t.initial_population = r.u64();
    const std::uint64_t phases = r.u64();
    if (phases > kMaxSchedulePhases || !r.fits(phases, 24)) {
      r.fail();
      return spec;
    }
    t.schedule.reserve(static_cast<std::size_t>(phases));
    for (std::uint64_t i = 0; i < phases; ++i) {
      PortableChurnPhase phase;
      phase.rounds = r.u64();
      phase.departure_prob = r.f64();
      phase.arrival_mean = r.f64();
      t.schedule.push_back(phase);
    }
    spec.tracking = std::move(t);
  }
  return spec;
}

}  // namespace bfce::service
