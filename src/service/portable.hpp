#pragma once
// Self-contained ("portable") job descriptions.
//
// A JobSpec is an in-process object: it points at a caller-owned
// TagPopulation and may carry an arbitrary factory closure. Neither
// survives a process boundary, so two service features need a second
// representation:
//
//  * the wire front door (service/wire.hpp) — a remote client has no
//    way to pass a pointer, so SUBMIT frames carry a PortableJobSpec;
//  * the crash snapshot (service/snapshot.hpp) — jobs still queued or
//    running when the snapshot is cut must be re-admittable in a fresh
//    process, which requires the full job to be value data.
//
// A portable job describes its population instead of pointing at one:
// either synthetically (size, distribution, seed — the service re-runs
// rfid::make_population, which is deterministic) or as an explicit
// membership bitmap over a dense id universe (bit i ⇒ tag id i+1; the
// per-tag RN32 values are derived from the population seed, so the
// materialized population is a pure function of the spec). Because
// materialization is deterministic, a portable job re-admitted after a
// crash produces estimates bit-identical to the uninterrupted run.

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "estimators/estimator.hpp"
#include "rfid/population.hpp"
#include "service/job.hpp"
#include "util/bitvector.hpp"
#include "util/serial.hpp"

namespace bfce::service {

/// Value description of a job's population.
struct PortablePopulation {
  enum class Kind : std::uint8_t {
    kNone = 0,        ///< no population (tracking jobs build their own)
    kSynthetic = 1,   ///< rfid::make_population(size, distribution, seed)
    kMembership = 2,  ///< explicit bitmap: bit i set ⇒ tag id i+1 present
  };

  Kind kind = Kind::kSynthetic;
  std::uint64_t size = 0;  ///< tag count (kSynthetic only)
  rfid::TagIdDistribution distribution = rfid::TagIdDistribution::kT1Uniform;
  /// kSynthetic: the make_population seed. kMembership: the base the
  /// per-tag RN32 values are derived from.
  std::uint64_t seed = 0;
  util::BitVector membership;  ///< kMembership only

  bool operator==(const PortablePopulation& o) const noexcept {
    return kind == o.kind && size == o.size &&
           distribution == o.distribution && seed == o.seed &&
           membership.size() == o.membership.size() &&
           membership.words() == o.membership.words();
  }
};

/// One tracking-schedule phase in value form (mirrors
/// tracking::ChurnPhase without pulling the session header in here).
struct PortableChurnPhase {
  std::uint64_t rounds = 0;
  double departure_prob = 0.0;
  double arrival_mean = 0.0;

  bool operator==(const PortableChurnPhase&) const = default;
};

/// Value form of TrackingJobSpec.
struct PortableTrackingSpec {
  std::uint64_t reader_id = 0;
  std::uint64_t initial_population = 10000;
  std::vector<PortableChurnPhase> schedule;

  bool operator==(const PortableTrackingSpec&) const = default;
};

/// A complete estimation request as value data. Mirrors JobSpec minus
/// the pointer/closure fields (factories cannot cross a process
/// boundary; federation jobs reference a caller-owned Fleet and are
/// therefore not portable either).
struct PortableJobSpec {
  std::string estimator = "BFCE";
  estimators::Requirement req{};
  std::uint64_t seed = 0;
  double airtime_budget_s = std::numeric_limits<double>::infinity();
  double deadline_s = std::numeric_limits<double>::infinity();
  std::uint32_t max_attempts = 1;
  PortablePopulation population;
  std::optional<PortableTrackingSpec> tracking;

  bool operator==(const PortableJobSpec& o) const noexcept {
    return estimator == o.estimator && req.epsilon == o.req.epsilon &&
           req.delta == o.req.delta && seed == o.seed &&
           airtime_budget_s == o.airtime_budget_s &&
           deadline_s == o.deadline_s && max_attempts == o.max_attempts &&
           population == o.population && tracking == o.tracking;
  }
};

/// Caps enforced by validate_portable_job (and therefore by every wire
/// SUBMIT and snapshot decode): a hostile or corrupt spec can never make
/// materialization allocate unboundedly.
inline constexpr std::uint64_t kMaxPortableTags = std::uint64_t{1} << 24;
inline constexpr std::uint64_t kMaxMembershipBits = std::uint64_t{1} << 26;
inline constexpr std::size_t kMaxSchedulePhases = 4096;
inline constexpr std::uint64_t kMaxPhaseRounds = std::uint64_t{1} << 20;
inline constexpr std::size_t kMaxEstimatorName = 64;

/// nullptr when the spec is well-formed; otherwise a static description
/// of the first problem (used verbatim in wire error replies).
const char* validate_portable_job(const PortableJobSpec& spec) noexcept;

/// A materialized portable job: the runnable spec plus the population it
/// owns (null for tracking jobs, which build their own timeline).
struct MaterializedJob {
  JobSpec spec;
  std::shared_ptr<const rfid::TagPopulation> population;
};

/// Builds the runnable job. Returns nullopt exactly when
/// validate_portable_job(spec) != nullptr. Deterministic: the same spec
/// always materializes the same population, tag for tag.
std::optional<MaterializedJob> materialize(const PortableJobSpec& spec);

/// Binary codec (shared by the wire SUBMIT frame and the snapshot's
/// pending-job section; field-by-field layout in docs/SERVICE.md).
void encode_portable_job(util::ByteWriter& w, const PortableJobSpec& spec);
/// Decode failure latches r.fail(); the returned spec is then partial.
PortableJobSpec decode_portable_job(util::ByteReader& r);

}  // namespace bfce::service
