#pragma once
// Job types for the estimation service.
//
// A job is one complete estimation request: which population to count,
// with which protocol, to which (ε, δ) requirement, from which seed.
// Results follow the same determinism contract as sim::run_experiment —
// attempt a of a job executes against a ReaderContext seeded with
// derive_seed(spec.seed, a), so every field of the JobResult outcome is
// a pure function of the spec, regardless of worker count, queue order
// or which other jobs share the service.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "estimators/estimator.hpp"
#include "federation/federated_bfce.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/population.hpp"
#include "tracking/session.hpp"

namespace bfce::service {

/// Service-assigned job handle. 0 is never a valid id; submit() returns
/// it when the service is shutting down.
using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

/// Builds a fresh estimator per attempt (same rationale as the
/// experiment harness: fresh instances keep the worker pool trivially
/// safe). Must be callable concurrently.
using EstimatorFactory =
    std::function<std::unique_ptr<estimators::CardinalityEstimator>()>;

/// Continuous-tracking request payload. When JobSpec::tracking is set
/// the job runs a tracking::TrackingSession instead of a single
/// estimate: the session owns its own churning ground-truth population
/// (seeded from the job seed), runs one BFCE round per churn period and
/// fuses the rounds with the Kalman tracker. The service keeps one
/// tracker state per `reader_id` in its metrics.
struct TrackingJobSpec {
  /// Logical reader this trajectory belongs to; jobs sharing a
  /// reader_id update the same ServiceMetrics tracker row.
  std::uint64_t reader_id = 0;
  std::size_t initial_population = 10000;
  tracking::ChurnSchedule schedule;
};

/// Fleet-federation request payload. When JobSpec::federation is set the
/// job runs one coordinated federation::FederatedBfceEstimator estimate
/// over the fleet instead of a single-reader protocol: per-reader frames
/// on the service substrate (mode/channel/timing/engine policy), busy
/// maps merged up the aggregation tree, the union inverted under the
/// overlap-corrected persistence. `population` and `factory` are
/// ignored; `estimator` is only a label. Attempt a seeds the whole fleet
/// from derive_seed(seed, a), so results keep the bit-identical-across-
/// worker-counts (and merge-fanouts) contract.
struct FederationJobSpec {
  /// The fleet to estimate; not owned, must outlive the job.
  const federation::Fleet* fleet = nullptr;
  federation::SessionCorrelation correlation =
      federation::SessionCorrelation::kIndependent;
  /// Aggregation-tree fanout (cannot change the estimate; see
  /// federation/aggregation.hpp).
  std::uint32_t fanout = 8;
};

/// One estimation request.
struct JobSpec {
  /// The population to estimate; not owned, must outlive the job.
  const rfid::TagPopulation* population = nullptr;

  /// Registry name ("BFCE", "ZOE", ...). BFCE and BFCE-avg jobs share
  /// the service's persistence planner when one is configured.
  std::string estimator = "BFCE";
  /// Optional override: when set, `estimator` is only a label.
  EstimatorFactory factory;

  estimators::Requirement req{};

  /// Seed of this job's RNG streams (attempt a uses derive_seed(seed, a)).
  std::uint64_t seed = 0;

  /// Deterministic deadline on *simulated airtime*: an attempt whose
  /// protocol execution time exceeds this budget fails (and is retried
  /// while attempts remain). Infinity disables the check.
  double airtime_budget_s = std::numeric_limits<double>::infinity();

  /// Wall-clock admission deadline, in seconds from submit(): a job
  /// still queued past it expires without executing. Infinity disables
  /// the check. (Wall-clock, so it depends on load and worker count —
  /// keep it infinite where bit-identical replay matters.)
  double deadline_s = std::numeric_limits<double>::infinity();

  /// Total attempt budget. An attempt fails when the outcome misses its
  /// design point (met_by_design == false) or blows airtime_budget_s;
  /// each retry runs the next derived RNG stream.
  std::uint32_t max_attempts = 1;

  /// When set, this is a tracking job: `population` and `factory` are
  /// ignored (the session builds its own timeline), `estimator` is only
  /// a label, and the outcome carries the final fused state. Attempt a
  /// seeds its session with derive_seed(seed, a), so trajectories keep
  /// the bit-identical-across-worker-counts contract.
  std::optional<TrackingJobSpec> tracking;

  /// When set, this is a federation job (see FederationJobSpec). The
  /// job's airtime_budget_s applies to the *fleet* airtime — the
  /// interference-scheduled wall-clock of the whole floor.
  std::optional<FederationJobSpec> federation;
};

enum class JobStatus : std::uint8_t {
  kQueued = 0,    ///< admitted, waiting for a worker
  kRunning,       ///< executing on a worker
  kDone,          ///< terminal: outcome recorded (inspect met_by_design)
  kDeadlineMissed,///< terminal: every attempt exceeded airtime_budget_s
  kExpired,       ///< terminal: wall deadline passed while queued
  kCancelled,     ///< terminal: cancelled before execution
  kFailed,        ///< terminal: could not run (unknown estimator, ...)
};

/// Short lowercase label ("done", "deadline_missed", ...).
const char* to_cstring(JobStatus status) noexcept;

/// True for every status a job can no longer leave.
constexpr bool is_terminal(JobStatus status) noexcept {
  return status != JobStatus::kQueued && status != JobStatus::kRunning;
}

/// Federation jobs only: fleet-level accounting of the final attempt
/// (the union estimate itself lands in JobResult::outcome).
struct FederationResult {
  std::size_t readers = 0;
  std::uint32_t schedule_rounds = 0;   ///< interference colouring rounds
  double fleet_airtime_s = 0.0;        ///< rounds × per-round airtime
  double correction_g = 0.0;           ///< g(p_o) used in the inversion
  double overlap_fraction = 0.0;       ///< realised coverage overlap
  federation::MergeStats merge;        ///< aggregation-tree work
  std::uint64_t rng_fingerprint = 0;   ///< coordinator stream position
};

/// Everything the service records about one job.
struct JobResult {
  JobId id = kInvalidJob;
  JobStatus status = JobStatus::kQueued;

  /// Last attempt's outcome; meaningful for kDone and kDeadlineMissed.
  estimators::EstimateOutcome outcome;
  /// Simulated airtime of that outcome under the service timing model.
  double airtime_s = 0.0;

  std::uint32_t attempts = 0;   ///< attempts actually executed
  double queue_wait_s = 0.0;    ///< wall time from submit to first run
  double exec_s = 0.0;          ///< wall time spent executing attempts
  double latency_s = 0.0;       ///< wall time from submit to terminal

  /// FrameEngine counters summed over every attempt of this job.
  rfid::EngineCounters counters;

  /// Tracking jobs only: the final attempt's full trajectory + summary.
  std::optional<tracking::TrackResult> tracking;

  /// Federation jobs only: fleet accounting of the final attempt.
  std::optional<FederationResult> federation;
};

}  // namespace bfce::service
