#pragma once
// EstimationService — the servable front end of the repository.
//
// Everything below sim::run_experiment answers "what does one estimate
// cost?"; the service answers the ROADMAP's production question: how do
// many concurrent estimation requests get admitted, scheduled, executed
// and accounted for. It is a bounded-queue worker pool over the same
// primitives the experiment harness uses:
//
//  * admission — submit() blocks while the queue is full (backpressure);
//    try_submit() returns nullopt instead. The queue bound is the only
//    memory the fleet can force on the service.
//  * scheduling — FIFO over a worker pool (default size from
//    util::default_thread_count(), so BFCE_THREADS caps it like every
//    other parallel path in the repo).
//  * execution — attempt a of a job runs a fresh estimator against a
//    fresh ReaderContext seeded with derive_seed(spec.seed, a): results
//    are bit-identical for any worker count, exactly like
//    sim::run_experiment's (master seed, trial index) contract. BFCE
//    jobs share the service's PersistencePlanner when one is attached;
//    the planner memoizes the bucketed Theorem-4 search, which cannot
//    change any result (see core/planner.hpp).
//  * deadlines & retries — an attempt fails when the outcome misses its
//    design point or exceeds the job's simulated-airtime budget; failed
//    attempts are retried on the next derived stream while the budget
//    lasts. A wall-clock admission deadline expires jobs that waited
//    too long in the queue; cancel() withdraws a job that has not
//    started.
//  * accounting — metrics() snapshots admission/outcome counts, exact
//    latency percentiles, planner-cache hit rate and the aggregated
//    FrameEngine counters (service/metrics.hpp renders text and JSON).
//  * tracking — a JobSpec with `tracking` set runs a continuous
//    tracking::TrackingSession instead of a single estimate; the
//    service keeps one Kalman-tracker row per logical reader_id and
//    surfaces innovation/residual statistics through metrics().

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/planner.hpp"
#include "rfid/channel.hpp"
#include "rfid/frame.hpp"
#include "rfid/frame_engine.hpp"
#include "rfid/timing.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "service/portable.hpp"
#include "service/snapshot.hpp"

namespace bfce::service {

struct ServiceConfig {
  /// Worker threads; 0 ⇒ util::default_thread_count() (BFCE_THREADS).
  unsigned workers = 0;
  /// Bound on jobs admitted but not yet running.
  std::size_t queue_capacity = 1024;

  /// Simulation substrate every job runs on.
  rfid::FrameMode mode = rfid::FrameMode::kSampled;
  rfid::ChannelModel channel{};
  rfid::TimingModel timing{};
  /// FrameEngine policy for every job's reader context — single
  /// estimates and tracking sessions alike. Sharding (the exact-mode
  /// walk or the sampled-mode batched sampler) is safe under
  /// worker-level parallelism: results are a pure function of the job
  /// seed for any shard count.
  rfid::ExecutionPolicy engine_policy{};

  /// Shared Theorem-4 planner for BFCE jobs (non-owning; must outlive
  /// the service). Null ⇒ every estimate runs the plain search.
  core::PersistencePlanner* planner = nullptr;
};

class EstimationService {
 public:
  explicit EstimationService(ServiceConfig config = {});
  ~EstimationService();  // drains the queue, then joins the workers

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

  /// Admits a job, blocking while the queue is at capacity. Returns
  /// kInvalidJob only when the service is shutting down.
  JobId submit(JobSpec spec);

  /// Non-blocking admission: nullopt when the queue is full (counted
  /// as a rejection) or the service is shutting down.
  std::optional<JobId> try_submit(JobSpec spec);

  /// Admits a self-contained job (service/portable.hpp): the spec is
  /// validated and materialized (population built, owned by the job)
  /// outside the lock, then admitted like submit(). Portable jobs are
  /// the crash-safe ones — snapshot() captures them queued or running.
  /// Returns kInvalidJob for an invalid spec (counted as a rejection)
  /// or during shutdown.
  JobId submit_portable(const PortableJobSpec& spec);

  /// Non-blocking flavour of submit_portable (the wire front door's
  /// admission path): nullopt on a full queue, invalid spec or shutdown.
  std::optional<JobId> try_submit_portable(const PortableJobSpec& spec);

  /// Point-in-time crash image (service/snapshot.hpp): every terminal
  /// result verbatim, every queued/running portable job as a pending
  /// re-run, the planner cache when one is attached. Safe to call
  /// concurrently with everything; jobs running while the snapshot is
  /// cut appear as pending (their re-run is bit-identical by the seed
  /// contract). Non-portable in-flight jobs are counted in
  /// non_portable_skipped and dropped.
  ServiceSnapshot snapshot() const;

  /// Rebuilds service state from a snapshot. Only a fresh service (no
  /// job ever admitted) accepts one — returns kBadState otherwise, and
  /// kConfigMismatch when the snapshot's substrate fingerprint does not
  /// match this service's config. Terminal results are re-accounted
  /// through the normal metrics path; pending jobs are re-admitted
  /// under their original ids (their wall-clock deadlines restart at
  /// restore time) and start executing immediately. The planner cache
  /// is seeded before any of them runs.
  SnapshotError restore(const ServiceSnapshot& snap);

  /// Attaches a wire front door's stats sampler; metrics() includes its
  /// counters from then on. Pass nullptr to detach (the WireServer does
  /// on destruction — the callback must not outlive its server).
  void set_wire_stats_source(std::function<WireStats()> source);

  /// Withdraws a job that has not started; returns false once it is
  /// running or terminal (a running estimate is never torn down).
  bool cancel(JobId id);

  /// Blocks until the job is terminal and returns its result. Unknown
  /// ids return a default JobResult with status kFailed.
  JobResult wait(JobId id);

  /// Non-blocking result snapshot; nullopt for unknown ids.
  std::optional<JobResult> poll(JobId id) const;

  /// Blocks until every admitted job is terminal.
  void drain();

  /// Drains, then stops and joins the workers. Idempotent; called by
  /// the destructor.
  void shutdown();

  std::size_t queue_depth() const;

  /// Point-in-time snapshot; safe to call concurrently with everything.
  ServiceMetrics metrics() const;

 private:
  // ---- Locking discipline (checked by tests/race_stress_test.cpp
  // under the tsan preset; asserts below back the claims) -------------
  //
  //  * mutex_ is the service's only lock. It guards every field below
  //    it: the queue, the job table, the aggregate counters and pool_.
  //  * mutex_ is NEVER held across job execution (worker_loop unlocks
  //    around execute_job) or across any blocking wait other than the
  //    three condition variables — so submit/cancel/poll/metrics can
  //    never be starved by a long estimate.
  //  * Lock order: mutex_ → PersistencePlanner::mutex_ is the only
  //    nesting that could arise (metrics() reading planner stats), and
  //    it is avoided entirely: planner calls are made with mutex_
  //    released, so the planner's shared_mutex is a strict leaf and no
  //    cycle exists.
  //  * pool_ teardown: shutdown() swaps pool_ out under mutex_ and
  //    joins the swapped vector unlocked; joined_ lets concurrent
  //    callers wait for the owner instead of double-joining.
  using Clock = std::chrono::steady_clock;

  struct JobState {
    JobSpec spec;
    JobResult result;
    Clock::time_point submitted;
    /// Population materialized from a portable spec; keeps spec.population
    /// alive for the job's lifetime (null for pointer-spec jobs).
    std::shared_ptr<const rfid::TagPopulation> owned_population;
    /// The value form this job was admitted from, kept so snapshot() can
    /// re-emit it while the job is still queued or running.
    std::optional<PortableJobSpec> portable;
  };

  void worker_loop();
  /// Creates, queues and counts a job (lock held, capacity checked).
  JobId admit_locked(JobSpec&& spec);
  /// Executes every attempt of `spec` (no lock held). `retries` returns
  /// the attempts beyond the first.
  JobResult execute_job(const JobSpec& spec, std::uint64_t& retries) const;
  /// Tracking flavour of execute_job: runs a TrackingSession per
  /// attempt instead of a single estimate (no lock held).
  JobResult execute_tracking(const JobSpec& spec,
                             std::uint64_t& retries) const;
  /// Federation flavour of execute_job: one coordinated fleet estimate
  /// per attempt through the FederatedBfceEstimator (no lock held).
  JobResult execute_federation(const JobSpec& spec,
                               std::uint64_t& retries) const;
  /// Folds a terminal result into the aggregate counters (lock held).
  void account_terminal(const JobResult& result);

  ServiceConfig config_;
  unsigned workers_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable queue_space_;  ///< submitters waiting on a slot
  std::condition_variable work_ready_;   ///< workers waiting for jobs
  std::condition_variable job_done_;     ///< wait()/drain() waiters
  std::deque<JobId> queue_;
  std::unordered_map<JobId, JobState> jobs_;
  JobId next_id_ = 1;
  bool stopping_ = false;
  bool joined_ = false;  ///< workers joined; set by the shutdown owner
  std::size_t running_ = 0;

  // Aggregates (guarded by mutex_).
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t deadline_missed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  /// In-flight non-portable jobs dropped by snapshots, carried across
  /// restores (see ServiceSnapshot::non_portable_skipped).
  std::uint64_t non_portable_skipped_ = 0;
  std::vector<double> latency_s_;
  std::vector<double> queue_wait_s_;
  rfid::EngineCounters engine_;
  Clock::time_point started_;

  // Tracking-job aggregates (guarded by mutex_). The pooled RMS fields
  // keep sums of squares so metrics() can report fleet-level RMS over
  // every fused round, not a mean of per-job RMS values.
  std::uint64_t tracking_jobs_ = 0;
  std::uint64_t tracking_rounds_ = 0;
  double tracking_innovation_sq_ = 0.0;
  double tracking_residual_sq_ = 0.0;
  double tracking_raw_rmse_sum_ = 0.0;
  double tracking_tracked_rmse_sum_ = 0.0;
  std::unordered_map<std::uint64_t, ReaderTrackerState> trackers_;

  // Federation-job aggregates (guarded by mutex_).
  std::uint64_t federation_jobs_ = 0;
  std::uint64_t federation_readers_ = 0;
  std::uint64_t federation_rounds_ = 0;
  std::uint64_t federation_merges_ = 0;
  std::uint64_t federation_word_ors_ = 0;
  double federation_airtime_s_ = 0.0;
  double federation_overlap_sum_ = 0.0;

  /// Wire front-door stats sampler (guarded by mutex_ for the pointer;
  /// invoked with mutex_ released — it takes the server's own lock).
  std::function<WireStats()> wire_stats_source_;

  std::vector<std::thread> pool_;
};

}  // namespace bfce::service
