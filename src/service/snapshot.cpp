#include "service/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "util/rng.hpp"
#include "util/serial.hpp"

namespace bfce::service {

namespace {

constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kMaxNoteBytes = 1 << 12;
/// Plausibility caps applied before any reservation during decode: the
/// CRC already rejects accidental corruption, these bound what a
/// deliberately crafted file can make the decoder allocate.
constexpr std::uint64_t kMaxSectionCount = std::uint64_t{1} << 24;

void encode_outcome(util::ByteWriter& w,
                    const estimators::EstimateOutcome& o) {
  w.f64(o.n_hat);
  w.f64(o.ci_low);
  w.f64(o.ci_high);
  w.u64(o.airtime.reader_bits);
  w.u64(o.airtime.tag_bits);
  w.u64(o.airtime.intervals);
  w.u64(o.airtime.tag_tx_bits);
  w.f64(o.time_us);
  w.u32(o.rounds);
  w.u8(o.met_by_design ? 1 : 0);
  w.str(o.note);
}

void decode_outcome(util::ByteReader& r, estimators::EstimateOutcome& o) {
  o.n_hat = r.f64();
  o.ci_low = r.f64();
  o.ci_high = r.f64();
  o.airtime.reader_bits = r.u64();
  o.airtime.tag_bits = r.u64();
  o.airtime.intervals = r.u64();
  o.airtime.tag_tx_bits = r.u64();
  o.time_us = r.f64();
  o.rounds = r.u32();
  o.met_by_design = r.u8() != 0;
  o.note = r.str(kMaxNoteBytes);
}

void encode_counters(util::ByteWriter& w, const rfid::EngineCounters& c) {
  w.u32(static_cast<std::uint32_t>(rfid::kFrameShapeCount));
  for (const rfid::ShapeCounters& s : c.by_shape) {
    w.u64(s.frames);
    w.u64(s.slots);
    w.u64(s.tag_tx);
    w.f64(s.wall_us);
  }
  w.u64(c.batches);
  w.u64(c.blocked_batches);
  w.u64(c.sharded_walks);
  w.u64(c.sampled_batches);
}

void decode_counters(util::ByteReader& r, rfid::EngineCounters& c) {
  // The shape count is structural: a snapshot from a build with a
  // different shape set is a different format (the version policy says
  // such a change must bump kSnapshotVersion, and this check backstops
  // a missed bump).
  if (r.u32() != rfid::kFrameShapeCount) {
    r.fail();
    return;
  }
  for (rfid::ShapeCounters& s : c.by_shape) {
    s.frames = r.u64();
    s.slots = r.u64();
    s.tag_tx = r.u64();
    s.wall_us = r.f64();
  }
  c.batches = r.u64();
  c.blocked_batches = r.u64();
  c.sharded_walks = r.u64();
  c.sampled_batches = r.u64();
}

void encode_track_result(util::ByteWriter& w,
                         const tracking::TrackResult& t) {
  w.u64(t.reader_id);
  w.u64(t.trajectory.size());
  for (const tracking::TrackPoint& p : t.trajectory) {
    w.u64(p.round);
    w.u64(p.true_n);
    w.f64(p.raw_n_hat);
    w.f64(p.tracked_n);
    w.f64(p.predicted_n);
    w.f64(p.innovation);
    w.f64(p.residual);
    w.f64(p.gain);
    w.f64(p.variance);
    w.f64(p.measurement_sd);
    w.f64(p.p_o);
    w.u8(p.met_by_design ? 1 : 0);
    w.f64(p.airtime_s);
  }
  w.u64(t.summary.rounds);
  w.f64(t.summary.raw_rmse);
  w.f64(t.summary.tracked_rmse);
  w.f64(t.summary.raw_rel_rmse);
  w.f64(t.summary.tracked_rel_rmse);
  w.f64(t.summary.innovation_rms);
  w.f64(t.summary.residual_rms);
  w.f64(t.summary.airtime_s);
  w.u64(t.summary.design_misses);
}

void decode_track_result(util::ByteReader& r, tracking::TrackResult& t) {
  t.reader_id = r.u64();
  const std::uint64_t points = r.u64();
  if (points > kMaxSectionCount || !r.fits(points, 97)) {
    r.fail();
    return;
  }
  t.trajectory.reserve(static_cast<std::size_t>(points));
  for (std::uint64_t i = 0; i < points; ++i) {
    tracking::TrackPoint p;
    p.round = static_cast<std::size_t>(r.u64());
    p.true_n = static_cast<std::size_t>(r.u64());
    p.raw_n_hat = r.f64();
    p.tracked_n = r.f64();
    p.predicted_n = r.f64();
    p.innovation = r.f64();
    p.residual = r.f64();
    p.gain = r.f64();
    p.variance = r.f64();
    p.measurement_sd = r.f64();
    p.p_o = r.f64();
    p.met_by_design = r.u8() != 0;
    p.airtime_s = r.f64();
    if (!r.ok()) return;
    t.trajectory.push_back(p);
  }
  t.summary.rounds = static_cast<std::size_t>(r.u64());
  t.summary.raw_rmse = r.f64();
  t.summary.tracked_rmse = r.f64();
  t.summary.raw_rel_rmse = r.f64();
  t.summary.tracked_rel_rmse = r.f64();
  t.summary.innovation_rms = r.f64();
  t.summary.residual_rms = r.f64();
  t.summary.airtime_s = r.f64();
  t.summary.design_misses = static_cast<std::size_t>(r.u64());
}

void encode_federation_result(util::ByteWriter& w,
                              const FederationResult& f) {
  w.u64(f.readers);
  w.u32(f.schedule_rounds);
  w.f64(f.fleet_airtime_s);
  w.f64(f.correction_g);
  w.f64(f.overlap_fraction);
  w.u64(f.merge.merges);
  w.u64(f.merge.word_ors);
  w.u32(f.merge.levels);
  w.u64(f.rng_fingerprint);
}

void decode_federation_result(util::ByteReader& r, FederationResult& f) {
  f.readers = static_cast<std::size_t>(r.u64());
  f.schedule_rounds = r.u32();
  f.fleet_airtime_s = r.f64();
  f.correction_g = r.f64();
  f.overlap_fraction = r.f64();
  f.merge.merges = r.u64();
  f.merge.word_ors = r.u64();
  f.merge.levels = r.u32();
  f.rng_fingerprint = r.u64();
}

}  // namespace

void encode_job_result(util::ByteWriter& w, const JobResult& result) {
  w.u8(static_cast<std::uint8_t>(result.status));
  encode_outcome(w, result.outcome);
  w.f64(result.airtime_s);
  w.u32(result.attempts);
  w.f64(result.queue_wait_s);
  w.f64(result.exec_s);
  w.f64(result.latency_s);
  encode_counters(w, result.counters);
  w.u8(result.tracking.has_value() ? 1 : 0);
  if (result.tracking.has_value()) encode_track_result(w, *result.tracking);
  w.u8(result.federation.has_value() ? 1 : 0);
  if (result.federation.has_value()) {
    encode_federation_result(w, *result.federation);
  }
}

void decode_job_result(util::ByteReader& r, JobResult& result) {
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(JobStatus::kFailed)) {
    r.fail();
    return;
  }
  result.status = static_cast<JobStatus>(status);
  decode_outcome(r, result.outcome);
  result.airtime_s = r.f64();
  result.attempts = r.u32();
  result.queue_wait_s = r.f64();
  result.exec_s = r.f64();
  result.latency_s = r.f64();
  decode_counters(r, result.counters);
  const std::uint8_t has_tracking = r.u8();
  if (has_tracking > 1) {
    r.fail();
    return;
  }
  if (has_tracking == 1) {
    tracking::TrackResult t;
    decode_track_result(r, t);
    result.tracking = std::move(t);
  }
  const std::uint8_t has_federation = r.u8();
  if (has_federation > 1) {
    r.fail();
    return;
  }
  if (has_federation == 1) {
    FederationResult f;
    decode_federation_result(r, f);
    result.federation = f;
  }
}

namespace {

std::vector<std::uint8_t> encode_payload(const ServiceSnapshot& snap) {
  util::ByteWriter w;
  w.u64(snap.substrate_fingerprint);
  w.u64(snap.next_id);
  w.u64(snap.rejected);
  w.u64(snap.non_portable_skipped);

  w.u8(snap.planner.present ? 1 : 0);
  if (snap.planner.present) {
    w.u32(snap.planner.n_low_mantissa_bits);
    w.u64(snap.planner.entries.size());
    for (const core::PlannerEntry& e : snap.planner.entries) {
      w.u64(e.n_low_bits);
      w.u32(e.w);
      w.u32(e.k);
      w.u64(e.eps_bits);
      w.u64(e.delta_bits);
      w.u32(e.choice.p_n);
      w.f64(e.choice.p);
      w.u8(e.choice.satisfies ? 1 : 0);
      w.f64(e.choice.margin);
    }
  }

  w.u64(snap.completed.size());
  for (const auto& [id, result] : snap.completed) {
    w.u64(id);
    encode_job_result(w, result);
  }

  w.u64(snap.pending.size());
  for (const auto& [id, spec] : snap.pending) {
    w.u64(id);
    encode_portable_job(w, spec);
  }
  return w.take();
}

SnapshotError decode_payload(const std::uint8_t* data, std::size_t size,
                             ServiceSnapshot& out) {
  util::ByteReader r(data, size);
  out.substrate_fingerprint = r.u64();
  out.next_id = r.u64();
  out.rejected = r.u64();
  out.non_portable_skipped = r.u64();

  const std::uint8_t planner_present = r.u8();
  if (!r.ok() || planner_present > 1) return SnapshotError::kMalformed;
  out.planner.present = planner_present == 1;
  if (out.planner.present) {
    out.planner.n_low_mantissa_bits = r.u32();
    const std::uint64_t entries = r.u64();
    if (entries > kMaxSectionCount || !r.fits(entries, 49)) {
      return SnapshotError::kMalformed;
    }
    out.planner.entries.reserve(static_cast<std::size_t>(entries));
    for (std::uint64_t i = 0; i < entries; ++i) {
      core::PlannerEntry e;
      e.n_low_bits = r.u64();
      e.w = r.u32();
      e.k = r.u32();
      e.eps_bits = r.u64();
      e.delta_bits = r.u64();
      e.choice.p_n = r.u32();
      e.choice.p = r.f64();
      e.choice.satisfies = r.u8() != 0;
      e.choice.margin = r.f64();
      if (!r.ok()) return SnapshotError::kMalformed;
      out.planner.entries.push_back(e);
    }
  }

  const std::uint64_t completed = r.u64();
  if (completed > kMaxSectionCount || !r.fits(completed, 8)) {
    return SnapshotError::kMalformed;
  }
  out.completed.reserve(static_cast<std::size_t>(completed));
  for (std::uint64_t i = 0; i < completed; ++i) {
    const JobId id = r.u64();
    JobResult result;
    decode_job_result(r, result);
    if (!r.ok()) return SnapshotError::kMalformed;
    if (!is_terminal(result.status)) return SnapshotError::kMalformed;
    result.id = id;
    out.completed.emplace_back(id, std::move(result));
  }

  const std::uint64_t pending = r.u64();
  if (pending > kMaxSectionCount || !r.fits(pending, 8)) {
    return SnapshotError::kMalformed;
  }
  out.pending.reserve(static_cast<std::size_t>(pending));
  for (std::uint64_t i = 0; i < pending; ++i) {
    const JobId id = r.u64();
    PortableJobSpec spec = decode_portable_job(r);
    if (!r.ok()) return SnapshotError::kMalformed;
    if (validate_portable_job(spec) != nullptr) {
      return SnapshotError::kMalformed;
    }
    out.pending.emplace_back(id, std::move(spec));
  }

  if (!r.exhausted()) return SnapshotError::kMalformed;
  return SnapshotError::kNone;
}

}  // namespace

const char* to_cstring(SnapshotError error) noexcept {
  switch (error) {
    case SnapshotError::kNone: return "ok";
    case SnapshotError::kIoError: return "io_error";
    case SnapshotError::kTruncated: return "truncated";
    case SnapshotError::kBadMagic: return "bad_magic";
    case SnapshotError::kBadVersion: return "bad_version";
    case SnapshotError::kChecksumMismatch: return "checksum_mismatch";
    case SnapshotError::kMalformed: return "malformed";
    case SnapshotError::kConfigMismatch: return "config_mismatch";
    case SnapshotError::kBadState: return "bad_state";
  }
  return "unknown";
}

std::uint64_t substrate_fingerprint(rfid::FrameMode mode,
                                    const rfid::ChannelModel& channel,
                                    const rfid::TimingModel& timing) noexcept {
  return util::SeedMixer(0x424653532D737562ULL)  // "BFSS-sub"
      .absorb(static_cast<std::uint64_t>(mode))
      .absorb(channel.false_busy_rate)
      .absorb(channel.false_idle_rate)
      .absorb(timing.reader_bit_us)
      .absorb(timing.tag_bit_us)
      .absorb(timing.interval_us)
      .value();
}

std::vector<std::uint8_t> encode_snapshot(const ServiceSnapshot& snap) {
  const std::vector<std::uint8_t> payload = encode_payload(snap);
  util::ByteWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u64(payload.size());
  w.u64(util::crc64(payload.data(), payload.size()));
  w.raw(payload.data(), payload.size());
  return w.take();
}

SnapshotError decode_snapshot(const std::uint8_t* data, std::size_t size,
                              ServiceSnapshot& out) {
  if (size < kHeaderBytes) return SnapshotError::kTruncated;
  util::ByteReader header(data, kHeaderBytes);
  const std::uint32_t magic = header.u32();
  if (magic != kSnapshotMagic) return SnapshotError::kBadMagic;
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) return SnapshotError::kBadVersion;
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t crc = header.u64();
  if (payload_size > size - kHeaderBytes) return SnapshotError::kTruncated;
  if (payload_size < size - kHeaderBytes) return SnapshotError::kMalformed;
  const std::uint8_t* payload = data + kHeaderBytes;
  if (util::crc64(payload, static_cast<std::size_t>(payload_size)) != crc) {
    return SnapshotError::kChecksumMismatch;
  }
  return decode_payload(payload, static_cast<std::size_t>(payload_size), out);
}

SnapshotError decode_snapshot(const std::vector<std::uint8_t>& bytes,
                              ServiceSnapshot& out) {
  return decode_snapshot(bytes.data(), bytes.size(), out);
}

SnapshotError save_snapshot(const ServiceSnapshot& snap,
                            const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);

  char tmp_path[4096];
  std::snprintf(tmp_path, sizeof(tmp_path), "%s.tmp.%ld", path.c_str(),
                static_cast<long>(::getpid()));

  const int fd = ::open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return SnapshotError::kIoError;

  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp_path);
      return SnapshotError::kIoError;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the atomic-replace guarantee is only as good
  // as the data being durable before the name flips over.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp_path);
    return SnapshotError::kIoError;
  }
  if (::rename(tmp_path, path.c_str()) != 0) {
    ::unlink(tmp_path);
    return SnapshotError::kIoError;
  }

  // Best-effort directory fsync so the rename itself is durable; some
  // filesystems refuse O_RDONLY directory fsync — not a data-loss path.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return SnapshotError::kNone;
}

SnapshotError load_snapshot(const std::string& path, ServiceSnapshot& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return SnapshotError::kIoError;

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return SnapshotError::kIoError;
  }
  if (st.st_size < 0 ||
      static_cast<std::uint64_t>(st.st_size) > kMaxSnapshotBytes) {
    ::close(fd);
    return SnapshotError::kMalformed;
  }

  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return SnapshotError::kIoError;
    }
    if (n == 0) break;  // shrank underneath us; decode reports truncation
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  bytes.resize(got);
  return decode_snapshot(bytes, out);
}

}  // namespace bfce::service
