// Tests for the multi-reader deployment model.
#include "rfid/multireader.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bfce.hpp"
#include "rfid/reader.hpp"

namespace bfce::rfid {
namespace {

TagPopulation pop_of(std::size_t n, std::uint64_t seed = 1) {
  return make_population(n, TagIdDistribution::kT1Uniform, seed);
}

TEST(TagPositionFn, IsDeterministicAndInUnitSquare) {
  const auto pop = pop_of(5000);
  for (const Tag& t : pop.tags()) {
    const TagPosition a = tag_position(t);
    const TagPosition b = tag_position(t);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
    EXPECT_GE(a.x, 0.0);
    EXPECT_LT(a.x, 1.0);
    EXPECT_GE(a.y, 0.0);
    EXPECT_LT(a.y, 1.0);
  }
}

TEST(TagPositionFn, PositionsAreUniformish) {
  const auto pop = pop_of(40000, 2);
  std::size_t in_quadrant = 0;
  for (const Tag& t : pop.tags()) {
    const TagPosition p = tag_position(t);
    if (p.x < 0.5 && p.y < 0.5) ++in_quadrant;
  }
  EXPECT_NEAR(static_cast<double>(in_quadrant) / 40000.0, 0.25, 0.01);
}

TEST(MultiReader, SingleFullCoverageReaderSeesEverything) {
  const auto pop = pop_of(2000, 3);
  // Radius √2 covers the whole unit square from the centre.
  MultiReaderSystem sys(pop, {ReaderPlacement{0.5, 0.5, 1.5}});
  EXPECT_EQ(sys.union_population().size(), 2000u);
  EXPECT_EQ(sys.uncovered_count(), 0u);
  EXPECT_EQ(sys.overlap_count(), 0u);
  EXPECT_EQ(sys.naive_sum(), 2000u);
}

TEST(MultiReader, ZeroRadiusReadersSeeNothing) {
  const auto pop = pop_of(1000, 4);
  MultiReaderSystem sys(pop, {ReaderPlacement{0.5, 0.5, 0.0}});
  EXPECT_EQ(sys.union_population().size(), 0u);
  EXPECT_EQ(sys.uncovered_count(), 1000u);
}

TEST(MultiReader, UnionPlusUncoveredEqualsPopulation) {
  const auto pop = pop_of(10000, 5);
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(4, 0.3));
  EXPECT_EQ(sys.union_population().size() + sys.uncovered_count(), 10000u);
}

TEST(MultiReader, NaiveSumDoubleCountsOverlap) {
  const auto pop = pop_of(20000, 6);
  // A dense grid with generous radius guarantees overlap regions.
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(9, 0.35));
  EXPECT_GT(sys.overlap_count(), 0u);
  EXPECT_GT(sys.naive_sum(), sys.union_population().size());
  // naive_sum − union = Σ(extra coverings) ≥ overlap tag count.
  EXPECT_GE(sys.naive_sum() - sys.union_population().size(),
            sys.overlap_count());
}

TEST(MultiReader, CoverageMatchesDiscArea) {
  // One reader of radius 0.25 centred in the square covers π·r² ≈ 19.6%
  // of uniformly placed tags.
  const auto pop = pop_of(50000, 7);
  MultiReaderSystem sys(pop, {ReaderPlacement{0.5, 0.5, 0.25}});
  const double frac = static_cast<double>(sys.reader_population(0).size()) /
                      50000.0;
  EXPECT_NEAR(frac, 3.14159 * 0.25 * 0.25, 0.01);
}

TEST(MultiReader, GridPlacementsStayInside) {
  for (const std::size_t count : {1UL, 4UL, 9UL, 12UL}) {
    const auto grid = MultiReaderSystem::grid(count, 0.2);
    ASSERT_EQ(grid.size(), count);
    for (const ReaderPlacement& r : grid) {
      EXPECT_GT(r.x, 0.0);
      EXPECT_LT(r.x, 1.0);
      EXPECT_GT(r.y, 0.0);
      EXPECT_LT(r.y, 1.0);
    }
  }
}

TEST(MultiReader, LogicalReaderEstimationMatchesTheUnion) {
  // §III-A's model end-to-end: BFCE against the union population
  // estimates the union, not the naive double-counting sum.
  const auto pop = pop_of(60000, 8);
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(9, 0.35));
  const double union_n = static_cast<double>(sys.union_population().size());

  rfid::ReaderContext ctx(sys.union_population(), 99,
                          rfid::FrameMode::kSampled);
  core::BfceEstimator bfce;
  const auto out = bfce.estimate(ctx, {0.05, 0.05});
  EXPECT_LT(std::fabs(out.n_hat - union_n) / union_n, 0.05);
  // The naive sum is far outside the estimate's error band.
  EXPECT_GT(static_cast<double>(sys.naive_sum()), 1.2 * out.n_hat);
}

TEST(MultiReader, DisjointPartitionSumsToTheUnion) {
  // Grid radius 0.45/side keeps neighbouring discs disjoint, so every
  // covered tag belongs to exactly one reader and the partition is exact.
  const auto pop = pop_of(30000, 9);
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(9, 0.45 / 3.0));
  EXPECT_EQ(sys.overlap_count(), 0u);
  EXPECT_EQ(sys.naive_sum(), sys.union_population().size());
  std::size_t summed = 0;
  for (std::size_t r = 0; r < sys.reader_count(); ++r) {
    summed += sys.reader_population(r).size();
  }
  EXPECT_EQ(summed, sys.union_population().size());
}

TEST(MultiReader, OverlappingPartitionSumsToUnionPlusExtraCoverings) {
  const auto pop = pop_of(30000, 10);
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(9, 0.35));
  std::size_t summed = 0;
  for (std::size_t r = 0; r < sys.reader_count(); ++r) {
    summed += sys.reader_population(r).size();
  }
  EXPECT_EQ(summed, sys.naive_sum());
  EXPECT_GT(summed, sys.union_population().size());
  // Per-tag accounting: Σ_r |P_r| = Σ_tags multiplicity(tag), so the
  // excess over the union is exactly the extra coverings of overlap tags.
  std::size_t excess = 0;
  for (const Tag& t : pop.tags()) {
    const TagPosition pos = tag_position(t);
    std::size_t covers = 0;
    for (const ReaderPlacement& r : sys.readers()) {
      const double dx = pos.x - r.x;
      const double dy = pos.y - r.y;
      if (dx * dx + dy * dy <= r.radius * r.radius) ++covers;
    }
    if (covers > 1) excess += covers - 1;
  }
  EXPECT_EQ(summed - sys.union_population().size(), excess);
}

TEST(MultiReader, BucketedPartitionMatchesBruteForce) {
  // The spatial-bucket grid must reproduce the plain O(R·N) scan even
  // for reader centres clamped from outside the unit floor.
  const auto pop = pop_of(20000, 11);
  const std::vector<ReaderPlacement> readers = {
      {-0.1, 0.5, 0.3}, {1.05, 0.2, 0.15}, {0.5, 0.5, 0.6},
      {0.5, 1.2, 0.4},  {0.01, 0.01, 0.05}};
  MultiReaderSystem sys(pop, readers);
  std::vector<std::size_t> brute(readers.size(), 0);
  std::size_t brute_union = 0;
  for (const Tag& t : pop.tags()) {
    const TagPosition pos = tag_position(t);
    bool covered = false;
    for (std::size_t r = 0; r < readers.size(); ++r) {
      const double dx = pos.x - readers[r].x;
      const double dy = pos.y - readers[r].y;
      if (dx * dx + dy * dy <= readers[r].radius * readers[r].radius) {
        ++brute[r];
        covered = true;
      }
    }
    if (covered) ++brute_union;
  }
  for (std::size_t r = 0; r < readers.size(); ++r) {
    EXPECT_EQ(sys.reader_population(r).size(), brute[r]) << "reader " << r;
  }
  EXPECT_EQ(sys.union_population().size(), brute_union);
}

TEST(MultiReader, InterferenceScheduleColoursConflicts) {
  // Disjoint discs never interfere: everything runs in one round.
  const auto pop = pop_of(1000, 12);
  MultiReaderSystem disjoint(pop, MultiReaderSystem::grid(9, 0.45 / 3.0));
  EXPECT_EQ(disjoint.schedule_rounds(), 1u);

  // Overlapping discs must serialise, and the colouring must be valid:
  // no two conflicting readers share a round.
  MultiReaderSystem dense(pop, MultiReaderSystem::grid(9, 0.35));
  const auto colours = dense.interference_schedule();
  ASSERT_EQ(colours.size(), 9u);
  EXPECT_GE(dense.schedule_rounds(), 2u);
  const auto& readers = dense.readers();
  for (std::size_t i = 0; i < readers.size(); ++i) {
    for (std::size_t j = i + 1; j < readers.size(); ++j) {
      const double dx = readers[i].x - readers[j].x;
      const double dy = readers[i].y - readers[j].y;
      const double reach = readers[i].radius + readers[j].radius;
      if (dx * dx + dy * dy < reach * reach) {
        EXPECT_NE(colours[i], colours[j]) << i << " vs " << j;
      }
    }
  }
}

TEST(MultiReader, SummedPerReaderEstimatesDoubleCount) {
  // The regression the federation layer exists to fix: independently
  // estimating each reader's coverage and summing overshoots the union
  // by the overlap mass, while the logical-reader estimate does not.
  const auto pop = pop_of(40000, 13);
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(9, 0.35));
  const double union_n = static_cast<double>(sys.union_population().size());

  double summed = 0.0;
  core::BfceEstimator bfce;
  for (std::size_t r = 0; r < sys.reader_count(); ++r) {
    rfid::ReaderContext ctx(sys.reader_population(r),
                            util::derive_seed(4711, r),
                            rfid::FrameMode::kSampled);
    summed += bfce.estimate(ctx, {0.05, 0.05}).n_hat;
  }
  rfid::ReaderContext union_ctx(sys.union_population(), 4711,
                                rfid::FrameMode::kSampled);
  const auto union_out = bfce.estimate(union_ctx, {0.05, 0.05});

  EXPECT_GT(summed, 1.15 * union_n);  // estimates inherit the naive_sum bias
  EXPECT_LT(union_out.relative_error(union_n), 0.05);
  EXPECT_NEAR(summed / union_n,
              static_cast<double>(sys.naive_sum()) / union_n, 0.1);
}

}  // namespace
}  // namespace bfce::rfid
