// Tests for the multi-reader deployment model.
#include "rfid/multireader.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bfce.hpp"
#include "rfid/reader.hpp"

namespace bfce::rfid {
namespace {

TagPopulation pop_of(std::size_t n, std::uint64_t seed = 1) {
  return make_population(n, TagIdDistribution::kT1Uniform, seed);
}

TEST(TagPositionFn, IsDeterministicAndInUnitSquare) {
  const auto pop = pop_of(5000);
  for (const Tag& t : pop.tags()) {
    const TagPosition a = tag_position(t);
    const TagPosition b = tag_position(t);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
    EXPECT_GE(a.x, 0.0);
    EXPECT_LT(a.x, 1.0);
    EXPECT_GE(a.y, 0.0);
    EXPECT_LT(a.y, 1.0);
  }
}

TEST(TagPositionFn, PositionsAreUniformish) {
  const auto pop = pop_of(40000, 2);
  std::size_t in_quadrant = 0;
  for (const Tag& t : pop.tags()) {
    const TagPosition p = tag_position(t);
    if (p.x < 0.5 && p.y < 0.5) ++in_quadrant;
  }
  EXPECT_NEAR(static_cast<double>(in_quadrant) / 40000.0, 0.25, 0.01);
}

TEST(MultiReader, SingleFullCoverageReaderSeesEverything) {
  const auto pop = pop_of(2000, 3);
  // Radius √2 covers the whole unit square from the centre.
  MultiReaderSystem sys(pop, {ReaderPlacement{0.5, 0.5, 1.5}});
  EXPECT_EQ(sys.union_population().size(), 2000u);
  EXPECT_EQ(sys.uncovered_count(), 0u);
  EXPECT_EQ(sys.overlap_count(), 0u);
  EXPECT_EQ(sys.naive_sum(), 2000u);
}

TEST(MultiReader, ZeroRadiusReadersSeeNothing) {
  const auto pop = pop_of(1000, 4);
  MultiReaderSystem sys(pop, {ReaderPlacement{0.5, 0.5, 0.0}});
  EXPECT_EQ(sys.union_population().size(), 0u);
  EXPECT_EQ(sys.uncovered_count(), 1000u);
}

TEST(MultiReader, UnionPlusUncoveredEqualsPopulation) {
  const auto pop = pop_of(10000, 5);
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(4, 0.3));
  EXPECT_EQ(sys.union_population().size() + sys.uncovered_count(), 10000u);
}

TEST(MultiReader, NaiveSumDoubleCountsOverlap) {
  const auto pop = pop_of(20000, 6);
  // A dense grid with generous radius guarantees overlap regions.
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(9, 0.35));
  EXPECT_GT(sys.overlap_count(), 0u);
  EXPECT_GT(sys.naive_sum(), sys.union_population().size());
  // naive_sum − union = Σ(extra coverings) ≥ overlap tag count.
  EXPECT_GE(sys.naive_sum() - sys.union_population().size(),
            sys.overlap_count());
}

TEST(MultiReader, CoverageMatchesDiscArea) {
  // One reader of radius 0.25 centred in the square covers π·r² ≈ 19.6%
  // of uniformly placed tags.
  const auto pop = pop_of(50000, 7);
  MultiReaderSystem sys(pop, {ReaderPlacement{0.5, 0.5, 0.25}});
  const double frac = static_cast<double>(sys.reader_population(0).size()) /
                      50000.0;
  EXPECT_NEAR(frac, 3.14159 * 0.25 * 0.25, 0.01);
}

TEST(MultiReader, GridPlacementsStayInside) {
  for (const std::size_t count : {1UL, 4UL, 9UL, 12UL}) {
    const auto grid = MultiReaderSystem::grid(count, 0.2);
    ASSERT_EQ(grid.size(), count);
    for (const ReaderPlacement& r : grid) {
      EXPECT_GT(r.x, 0.0);
      EXPECT_LT(r.x, 1.0);
      EXPECT_GT(r.y, 0.0);
      EXPECT_LT(r.y, 1.0);
    }
  }
}

TEST(MultiReader, LogicalReaderEstimationMatchesTheUnion) {
  // §III-A's model end-to-end: BFCE against the union population
  // estimates the union, not the naive double-counting sum.
  const auto pop = pop_of(60000, 8);
  MultiReaderSystem sys(pop, MultiReaderSystem::grid(9, 0.35));
  const double union_n = static_cast<double>(sys.union_population().size());

  rfid::ReaderContext ctx(sys.union_population(), 99,
                          rfid::FrameMode::kSampled);
  core::BfceEstimator bfce;
  const auto out = bfce.estimate(ctx, {0.05, 0.05});
  EXPECT_LT(std::fabs(out.n_hat - union_n) / union_n, 0.05);
  // The naive sum is far outside the estimate's error band.
  EXPECT_GT(static_cast<double>(sys.naive_sum()), 1.2 * out.n_hat);
}

}  // namespace
}  // namespace bfce::rfid
