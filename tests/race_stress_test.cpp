// Race-stress suite: hammers every concurrent seam of the service layer
// from many threads at once. Run under the `tsan` preset (ThreadSanitizer
// instruments every access, so a race that never corrupts memory — and
// would sail through ASan — still fails loudly). The tests also run
// plain as a ctest `stress`-labelled binary; assertions keep them
// meaningful without instrumentation.
//
// Surfaces covered, mirroring the lock-discipline blocks in
// service/service.hpp and core/planner.hpp:
//   * submit / try_submit vs a full queue (backpressure cv)
//   * cancel racing workers dequeuing the same ids
//   * wall-clock expiry racing execution
//   * metrics() / queue_depth() / poll() snapshots during the storm
//   * concurrent shutdown() callers (double-join on the pool)
//   * PersistencePlanner::choose / stats / clear from many threads
//   * the sharded exact-mode FrameEngine walk: every worker spins up
//     its own parallel_for shard team; scratch must stay private and
//     duplicate-seed jobs bit-identical
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "hash/persistence.hpp"
#include "rfid/frame.hpp"
#include "rfid/population.hpp"
#include "rfid/reader.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"
#include "util/executor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bfce::service {
namespace {

// Small enough that a single BFCE estimate is cheap, large enough that
// workers genuinely overlap.
const rfid::TagPopulation& stress_pop() {
  static const auto pop =
      rfid::make_population(5000, rfid::TagIdDistribution::kT1Uniform, 7);
  return pop;
}

/// Cheap estimator so the stress loops turn over quickly; the returned
/// estimate is a pure function of nothing, which is fine — these tests
/// assert on liveness and race-freedom, not accuracy.
class NoopEstimator final : public estimators::CardinalityEstimator {
 public:
  std::string name() const override { return "noop"; }
  estimators::EstimateOutcome estimate(
      rfid::ReaderContext&, const estimators::Requirement&) override {
    estimators::EstimateOutcome out;
    out.n_hat = 42.0;
    out.met_by_design = true;
    return out;
  }
};

EstimatorFactory noop_factory() {
  return [] { return std::make_unique<NoopEstimator>(); };
}

JobSpec noop_spec(std::uint64_t seed) {
  JobSpec spec;
  spec.population = &stress_pop();
  spec.factory = noop_factory();
  spec.seed = seed;
  return spec;
}

TEST(RaceStress, SubmitCancelExpireMetricsStorm) {
  constexpr unsigned kSubmitters = 4;
  constexpr unsigned kCancellers = 2;
  constexpr unsigned kObservers = 2;
  constexpr std::uint64_t kJobsPerSubmitter = 300;

  core::PersistencePlanner planner;
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 32;  // small: keeps the backpressure cv hot
  cfg.planner = &planner;
  EstimationService svc(cfg);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> bounced{0};

  // Recent ids ring shared with the cancellers; slots are atomics so a
  // torn read is impossible and a stale id is merely a failed cancel.
  constexpr std::size_t kRing = 64;
  std::array<std::atomic<JobId>, kRing> recent{};

  std::vector<std::thread> threads;
  for (unsigned s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      util::Xoshiro256ss rng(1000 + s);
      for (std::uint64_t i = 0; i < kJobsPerSubmitter; ++i) {
        JobSpec spec = noop_spec(s * kJobsPerSubmitter + i);
        const std::uint64_t roll = rng() % 8;
        if (roll == 0) spec.deadline_s = 0.0;  // expires unless run instantly
        if (roll == 1) {
          // Non-blocking path: full queue bounces are expected and counted.
          const auto id = svc.try_submit(spec);
          if (id.has_value()) {
            submitted.fetch_add(1);
            recent[(s * kJobsPerSubmitter + i) % kRing].store(*id);
          } else {
            bounced.fetch_add(1);
          }
        } else {
          const JobId id = svc.submit(spec);
          ASSERT_NE(id, kInvalidJob);
          submitted.fetch_add(1);
          recent[(s * kJobsPerSubmitter + i) % kRing].store(id);
        }
      }
    });
  }
  for (unsigned c = 0; c < kCancellers; ++c) {
    threads.emplace_back([&, c] {
      util::Xoshiro256ss rng(2000 + c);
      while (!done.load()) {
        const JobId id = recent[rng() % kRing].load();
        if (id != kInvalidJob) svc.cancel(id);  // any outcome is legal
        std::this_thread::yield();
      }
    });
  }
  for (unsigned o = 0; o < kObservers; ++o) {
    threads.emplace_back([&, o] {
      util::Xoshiro256ss rng(3000 + o);
      while (!done.load()) {
        const ServiceMetrics m = svc.metrics();
        // Terminal counts must never exceed admissions, even mid-storm.
        EXPECT_LE(m.completed, m.admitted);
        EXPECT_LE(m.queue_depth, m.queue_capacity);
        (void)svc.queue_depth();
        (void)svc.poll(recent[rng() % kRing].load());
        std::this_thread::yield();
      }
    });
  }

  for (unsigned s = 0; s < kSubmitters; ++s) threads[s].join();
  svc.drain();
  done.store(true);
  for (unsigned t = kSubmitters; t < threads.size(); ++t) threads[t].join();

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.admitted, submitted.load());
  EXPECT_EQ(m.completed, m.admitted);  // drained: every job is terminal
  EXPECT_EQ(m.rejected, bounced.load());
  EXPECT_EQ(m.done + m.expired + m.cancelled + m.deadline_missed + m.failed,
            m.completed);
}

TEST(RaceStress, RealEstimatorJobsShareThePlannerCache) {
  core::PersistencePlanner planner;
  ServiceConfig cfg;
  cfg.workers = 8;
  cfg.planner = &planner;
  EstimationService svc(cfg);

  // Identical (ε, δ) across jobs makes every worker collide on the same
  // cache keys — the worst case for the shared_mutex path.
  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 48; ++i) {
    JobSpec spec;
    spec.population = &stress_pop();
    spec.estimator = "BFCE";
    spec.req = {0.1, 0.1};
    spec.seed = 500 + i;
    ids.push_back(svc.submit(spec));
  }
  for (const JobId id : ids) {
    EXPECT_EQ(svc.wait(id).status, JobStatus::kDone);
  }
  const core::PlannerCacheStats stats = planner.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(RaceStress, ConcurrentShutdownCallersAllObserveTheJoin) {
  for (int round = 0; round < 8; ++round) {
    EstimationService svc({.workers = 4});
    for (std::uint64_t i = 0; i < 16; ++i) {
      (void)svc.submit(noop_spec(i));
    }
    std::vector<std::thread> closers;
    for (int t = 0; t < 4; ++t) {
      closers.emplace_back([&] { svc.shutdown(); });
    }
    for (std::thread& t : closers) t.join();
    // Post-shutdown the service must refuse admissions, not crash.
    EXPECT_EQ(svc.submit(noop_spec(99)), kInvalidJob);
  }
}

/// Runs a 4-frame exact Bloom batch through the context's engine — the
/// sharded walk when the service config asks for one — and folds busy
/// maps and transmission counts into a deterministic pseudo-estimate so
/// duplicate-seed jobs can be compared bit for bit.
class ShardedBloomEstimator final : public estimators::CardinalityEstimator {
 public:
  std::string name() const override { return "sharded-bloom-stress"; }
  estimators::EstimateOutcome estimate(
      rfid::ReaderContext& ctx, const estimators::Requirement&) override {
    std::vector<rfid::FrameRequest> batch;
    for (int f = 0; f < 4; ++f) {
      rfid::BloomFrameConfig cfg;
      cfg.w = 1024;
      cfg.set_p_numerator(256);
      cfg.persistence = hash::PersistenceMode::kIdealBernoulli;
      cfg.seeds = {ctx.next_seed(), ctx.next_seed(), ctx.next_seed()};
      batch.push_back(rfid::FrameRequest::bloom(cfg));
    }
    double acc = 0.0;
    for (const rfid::FrameResult& r : ctx.run_batch(batch)) {
      acc += static_cast<double>(r.busy.count_ones()) +
             1e-3 * static_cast<double>(r.tx);
    }
    estimators::EstimateOutcome out;
    out.n_hat = acc;
    out.met_by_design = true;
    return out;
  }
};

// The sharded exact walk inside the service worker pool: every worker's
// engine runs its own parallel_for shard team concurrently with the
// other workers'. TSan checks the shard scratch really is private; the
// assertions check the determinism contract end to end — duplicate-seed
// jobs must agree bit for bit no matter which worker ran them or how
// the shard teams interleaved.
TEST(RaceStress, ShardedWalkUnderServiceWorkers) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.mode = rfid::FrameMode::kExact;
  rfid::ExecutionPolicy policy = rfid::ExecutionPolicy::sharded(4);
  policy.min_tags_per_shard = 1;  // the 5000-tag pool really splits 4 ways
  cfg.engine_policy = policy;
  EstimationService svc(cfg);

  constexpr std::uint64_t kDistinctSeeds = 8;
  constexpr std::uint64_t kReplicas = 4;
  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < kDistinctSeeds * kReplicas; ++i) {
    JobSpec spec;
    spec.population = &stress_pop();
    spec.factory = [] { return std::make_unique<ShardedBloomEstimator>(); };
    spec.seed = 100 + i % kDistinctSeeds;
    ids.push_back(svc.submit(spec));
  }

  std::array<double, kDistinctSeeds> first{};
  std::array<bool, kDistinctSeeds> seen{};
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    const JobResult r = svc.wait(ids[i]);
    ASSERT_EQ(r.status, JobStatus::kDone);
    const std::size_t group = i % kDistinctSeeds;
    if (!seen[group]) {
      seen[group] = true;
      first[group] = r.outcome.n_hat;
    } else {
      EXPECT_EQ(r.outcome.n_hat, first[group]) << "seed group " << group;
    }
  }
  EXPECT_EQ(svc.metrics().engine.sharded_walks, kDistinctSeeds * kReplicas);
}

// The batched sampler inside the service worker pool: sampled-mode ZOE
// sweeps submit thousands of single-slot frames (plus LOF lottery
// batches) per job, and a sharded policy routes every one through
// execute_sampled_batch's parallel scatter stage. TSan checks the
// sampler's shard count planes really are private while four workers'
// shard teams interleave; the assertions check determinism end to end —
// duplicate-seed jobs bit-identical, and the sampler actually engaged.
TEST(RaceStress, SampledZoeSweepUnderShardedServiceWorkers) {
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.mode = rfid::FrameMode::kSampled;
  rfid::ExecutionPolicy policy = rfid::ExecutionPolicy::sharded(4);
  policy.min_tags_per_shard = 1;
  cfg.engine_policy = policy;
  EstimationService svc(cfg);

  constexpr std::uint64_t kDistinctSeeds = 4;
  constexpr std::uint64_t kReplicas = 3;
  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < kDistinctSeeds * kReplicas; ++i) {
    JobSpec spec;
    spec.population = &stress_pop();
    spec.estimator = "ZOE";
    spec.req = {0.2, 0.2};  // loose requirement: a short, cheap sweep
    spec.seed = 900 + i % kDistinctSeeds;
    ids.push_back(svc.submit(spec));
  }

  std::array<double, kDistinctSeeds> first{};
  std::array<bool, kDistinctSeeds> seen{};
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    const JobResult r = svc.wait(ids[i]);
    ASSERT_EQ(r.status, JobStatus::kDone);
    const std::size_t group = i % kDistinctSeeds;
    if (!seen[group]) {
      seen[group] = true;
      first[group] = r.outcome.n_hat;
    } else {
      EXPECT_EQ(r.outcome.n_hat, first[group]) << "seed group " << group;
    }
  }
  EXPECT_GT(svc.metrics().engine.sampled_batches, 0u);
  EXPECT_GT(svc.metrics().engine.sharded_walks, 0u);
}

// The persistent executor's reuse seams: two service generations run
// sharded jobs through the ONE process-wide pool back to back while a
// chaos thread repeatedly calls Executor::shutdown() — exercising the
// documented mid-run join ("workers finish their current index and
// exit; the run() caller drains the rest itself") and the lazy respawn
// on the next dispatch. TSan watches the park/wake cv, the lane CAS
// discipline and the join/respawn handoff; the assertions check that
// results stay bit-identical across generations and pool lifecycles,
// and that every job still completes (liveness through shutdown storms).
TEST(RaceStress, ExecutorReuseUnderServiceStorm) {
  constexpr std::uint64_t kDistinctSeeds = 4;
  constexpr std::uint64_t kReplicas = 3;
  std::array<double, kDistinctSeeds> first{};
  std::array<bool, kDistinctSeeds> seen{};

  std::atomic<bool> done{false};
  std::thread chaos([&] {
    while (!done.load()) {
      util::Executor::instance().shutdown();
      std::this_thread::yield();
    }
  });

  for (int generation = 0; generation < 2; ++generation) {
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.mode = rfid::FrameMode::kExact;
    rfid::ExecutionPolicy policy = rfid::ExecutionPolicy::sharded(4);
    policy.min_tags_per_shard = 1;
    cfg.engine_policy = policy;
    EstimationService svc(cfg);

    std::vector<JobId> ids;
    for (std::uint64_t i = 0; i < kDistinctSeeds * kReplicas; ++i) {
      JobSpec spec;
      spec.population = &stress_pop();
      spec.factory = [] { return std::make_unique<ShardedBloomEstimator>(); };
      spec.seed = 700 + i % kDistinctSeeds;
      ids.push_back(svc.submit(spec));
    }
    for (std::uint64_t i = 0; i < ids.size(); ++i) {
      const JobResult r = svc.wait(ids[i]);
      ASSERT_EQ(r.status, JobStatus::kDone);
      const std::size_t group = i % kDistinctSeeds;
      if (!seen[group]) {
        seen[group] = true;
        first[group] = r.outcome.n_hat;
      } else {
        EXPECT_EQ(r.outcome.n_hat, first[group])
            << "seed group " << group << " generation " << generation;
      }
    }
    svc.shutdown();
  }

  done.store(true);
  chaos.join();

  // The pool survived the storm in a usable state: a fresh dispatch
  // after the last shutdown() must still run every index exactly once.
  std::atomic<std::uint64_t> hits{0};
  util::parallel_for(0, 64, [&](std::size_t) { ++hits; }, 4);
  EXPECT_EQ(hits.load(), 64u);
}

TEST(RaceStress, PlannerChooseStatsClearStorm) {
  constexpr unsigned kChoosers = 8;
  constexpr std::uint64_t kIters = 2000;

  core::PersistencePlanner planner;
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kChoosers; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256ss rng(4000 + t);
      for (std::uint64_t i = 0; i < kIters; ++i) {
        // 16 distinct n_low values: heavy key collision, so hot shared-
        // lock hits race cold exclusive-lock inserts constantly.
        const double n_low = 1000.0 + static_cast<double>(rng() % 16) * 250.0;
        const auto choice = planner.choose(n_low, 1024, 3, 0.05, 0.05);
        ASSERT_GE(choice.p_n, 1u);
        ASSERT_LE(choice.p_n, 1023u);
        // Purity: a second lookup of the same key must be bit-identical
        // no matter which thread computed it or whether clear() ran.
        const auto again = planner.choose(n_low, 1024, 3, 0.05, 0.05);
        ASSERT_EQ(choice.p_n, again.p_n);
        ASSERT_EQ(choice.p, again.p);
        ASSERT_EQ(choice.margin, again.margin);
      }
    });
  }
  std::thread churner([&] {
    util::Xoshiro256ss rng(5000);
    while (!done.load()) {
      const core::PlannerCacheStats s = planner.stats();
      EXPECT_LE(s.entries, planner.options().max_entries);
      if (rng() % 4 == 0) planner.clear();
      std::this_thread::yield();
    }
  });

  for (unsigned t = 0; t < kChoosers; ++t) threads[t].join();
  done.store(true);
  churner.join();
}

TEST(RaceStress, WireFrontDoorStorm) {
  // Hammers the wire server's concurrent seams: many clients mixing
  // well-formed traffic (ping / submit / metrics) with malformed frames
  // and mid-frame disconnects, then stop() racing live connections.
  // Surfaces: the conn queue cv, the stats mutex, the service admission
  // path from io threads, and teardown closing queued fds.
  const std::string path =
      "/tmp/bfce_wire_storm_" + std::to_string(::getpid()) + ".sock";
  EstimationService svc({.workers = 2, .queue_capacity = 64});
  auto server = std::make_unique<WireServer>(
      svc, WireConfig{.socket_path = path, .io_threads = 3,
                      .io_deadline_s = 1.0, .max_pending_connections = 8});
  ASSERT_TRUE(server->running());

  constexpr unsigned kClients = 6;
  constexpr std::uint64_t kItersPerClient = 30;
  std::atomic<std::uint64_t> submitted_ok{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256ss rng(9000 + t);
      for (std::uint64_t i = 0; i < kItersPerClient; ++i) {
        auto client = WireClient::connect(path, 1.0);
        // Failures are expected once stop() lands or the conn queue
        // sheds — the assertion is that nothing crashes or deadlocks.
        if (!client.has_value()) continue;
        switch (rng() % 5) {
          case 0:
            (void)client->ping();
            break;
          case 1: {
            PortableJobSpec spec;
            spec.estimator = "BFCE";
            spec.req = {0.2, 0.2};
            spec.seed = rng();
            spec.population.kind = PortablePopulation::Kind::kSynthetic;
            spec.population.size = 2000;
            spec.population.seed = rng();
            if (client->submit(spec).has_value()) {
              submitted_ok.fetch_add(1);
            }
            break;
          }
          case 2:
            (void)client->metrics_json();
            break;
          case 3:
            // Malformed: unknown type byte, then reuse the connection.
            (void)client->send_frame({0x55});
            (void)client->recv_frame();
            (void)client->ping();
            break;
          default: {
            // Mid-frame disconnect.
            const std::uint8_t prefix[4] = {64, 0, 0, 0};
            (void)client->send_raw(prefix, sizeof(prefix));
            client->close();
            break;
          }
        }
      }
    });
  }

  // Stop the server while the storm is still running; clients keep
  // issuing requests against a dying socket and must fail cleanly.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server->stop();
  for (std::thread& th : threads) th.join();
  server.reset();

  // The service itself is unscathed: direct submission still works.
  const JobResult direct = svc.wait(svc.submit(noop_spec(1)));
  EXPECT_EQ(direct.status, JobStatus::kDone);
  EXPECT_GE(submitted_ok.load(), 0u);
  EXPECT_FALSE(svc.metrics().wire_attached);
}

TEST(RaceStress, SnapshotDuringStorm) {
  // snapshot() is advertised safe to call concurrently with everything:
  // cut snapshots continuously while submitters and workers churn, and
  // check each cut is internally consistent (sorted, unique, decodable).
  constexpr unsigned kSubmitters = 3;
  constexpr std::uint64_t kJobsPerSubmitter = 150;

  core::PersistencePlanner planner;
  EstimationService svc(
      {.workers = 4, .queue_capacity = 128, .planner = &planner});
  std::atomic<bool> done{false};

  std::vector<std::thread> submitters;
  for (unsigned t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kJobsPerSubmitter; ++i) {
        if (i % 2 == 0) {
          PortableJobSpec spec;
          spec.estimator = "BFCE";
          spec.req = {0.2, 0.2};
          spec.seed = t * 1000 + i;
          spec.population.kind = PortablePopulation::Kind::kSynthetic;
          spec.population.size = 3000;
          spec.population.seed = i;
          (void)svc.try_submit_portable(spec);
        } else {
          (void)svc.try_submit(noop_spec(t * 1000 + i));
        }
      }
    });
  }
  std::thread cutter([&] {
    while (!done.load()) {
      const ServiceSnapshot snap = svc.snapshot();
      for (std::size_t i = 1; i < snap.completed.size(); ++i) {
        ASSERT_LT(snap.completed[i - 1].first, snap.completed[i].first);
      }
      for (std::size_t i = 1; i < snap.pending.size(); ++i) {
        ASSERT_LT(snap.pending[i - 1].first, snap.pending[i].first);
      }
      // Every cut must survive its own codec.
      ServiceSnapshot back;
      ASSERT_EQ(decode_snapshot(encode_snapshot(snap), back),
                SnapshotError::kNone);
      ASSERT_EQ(back.completed.size(), snap.completed.size());
      std::this_thread::yield();
    }
  });

  for (std::thread& th : submitters) th.join();
  svc.drain();
  done.store(true);
  cutter.join();

  const ServiceSnapshot final_cut = svc.snapshot();
  EXPECT_TRUE(final_cut.pending.empty());
  EXPECT_EQ(final_cut.completed.size() + final_cut.non_portable_skipped,
            svc.metrics().admitted);
}

}  // namespace
}  // namespace bfce::service
