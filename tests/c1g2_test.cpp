// Tests for the C1G2 link-timing derivation.
#include "rfid/c1g2.hpp"

#include <gtest/gtest.h>

namespace bfce::rfid {
namespace {

TEST(C1g2, PaperLinkReproducesTheQuotedConstants) {
  const TimingModel m = paper_link().to_timing_model();
  EXPECT_NEAR(m.reader_bit_us, 37.76, 0.01);
  EXPECT_NEAR(m.tag_bit_us, 18.88, 0.01);
  EXPECT_DOUBLE_EQ(m.interval_us, 302.0);
}

TEST(C1g2, PaperLinkRatesMatchTheQuotedKbps) {
  const C1g2Link link = paper_link();
  // §V-A: 26.5 kb/s reader→tag, 53 kb/s tag→reader.
  EXPECT_NEAR(1e3 / link.reader_bit_us(), 26.5, 0.1);
  EXPECT_NEAR(1e3 / link.tag_bit_us(), 53.0, 0.1);
}

TEST(C1g2, BlfFollowsDivideRatioOverTrcal) {
  C1g2Link link;
  link.divide_ratio = 8.0;
  link.trcal_us = 100.0;
  EXPECT_NEAR(link.blf_khz(), 80.0, 1e-9);
  link.divide_ratio = 64.0 / 3.0;
  EXPECT_NEAR(link.blf_khz(), 213.333, 0.01);
}

TEST(C1g2, MillerEncodingSlowsTheTagLink) {
  C1g2Link fm0 = paper_link();
  C1g2Link miller4 = paper_link();
  miller4.encoding = TagEncoding::kMiller4;
  EXPECT_NEAR(miller4.tag_bit_us(), 4.0 * fm0.tag_bit_us(), 1e-9);
}

TEST(C1g2, ShorterTariSpeedsTheReaderLink) {
  C1g2Link fast = paper_link();
  fast.tari_us = 6.25;  // the standard's fastest Tari
  EXPECT_NEAR(fast.reader_bit_us(), paper_link().reader_bit_us() / 4.0,
              1e-9);
}

TEST(C1g2, Data1RatioStretchesSymbols) {
  C1g2Link wide = paper_link();
  wide.data1_ratio = 2.0;  // the standard's widest data-1
  EXPECT_GT(wide.reader_bit_us(), paper_link().reader_bit_us());
}

TEST(C1g2, TimingModelFeedsTheAirtimeLedger) {
  // End-to-end: price the BFCE two-phase ledger with a faster link and
  // check the total shrinks accordingly.
  Airtime bfce;
  bfce.reader_bits = 256;
  bfce.intervals = 3;
  bfce.tag_bits = 9216;
  C1g2Link fast = paper_link();
  fast.tari_us = 12.5;
  fast.encoding = TagEncoding::kFm0;
  const double paper_s = bfce.total_seconds(paper_link().to_timing_model());
  const double fast_s = bfce.total_seconds(fast.to_timing_model());
  EXPECT_LT(fast_s, paper_s);
}

}  // namespace
}  // namespace bfce::rfid
