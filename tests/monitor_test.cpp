// Tests for the CUSUM cardinality monitor.
#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "core/bfce.hpp"
#include "util/rng.hpp"

namespace bfce::core {
namespace {

/// Synthetic (ε, δ)-like readings: truth + Gaussian noise at the
/// contract's sd = ε·n/d.
double noisy_reading(double truth, double eps, util::Xoshiro256ss& rng) {
  const double u1 = rng.uniform();
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
                   std::cos(6.283185307179586 * u2);
  const double sd = eps * truth / 1.96;
  return truth + z * sd;
}

TEST(Monitor, FirstReadingPrimesTheBaseline) {
  CardinalityMonitor mon;
  EXPECT_FALSE(mon.primed());
  const MonitorReading r = mon.ingest(10000.0);
  EXPECT_TRUE(mon.primed());
  EXPECT_DOUBLE_EQ(r.level, 10000.0);
  EXPECT_FALSE(r.loss_alarm);
  EXPECT_FALSE(r.gain_alarm);
}

TEST(Monitor, StableLevelRaisesNoFalseAlarms) {
  CardinalityMonitor mon;
  util::Xoshiro256ss rng(1);
  int alarms = 0;
  for (int i = 0; i < 300; ++i) {
    const MonitorReading r = mon.ingest(noisy_reading(50000.0, 0.05, rng));
    if (r.loss_alarm || r.gain_alarm) ++alarms;
  }
  // h = 5, k = 0.5: ARL0 is in the hundreds; 300 in-control readings
  // should essentially never alarm more than once.
  EXPECT_LE(alarms, 1);
}

TEST(Monitor, DetectsASuddenLoss) {
  CardinalityMonitor mon;
  util::Xoshiro256ss rng(2);
  for (int i = 0; i < 20; ++i) mon.ingest(noisy_reading(50000, 0.05, rng));
  // 15% of stock disappears — a ~6-sd step per reading.
  int detect_after = -1;
  for (int i = 0; i < 10; ++i) {
    const MonitorReading r =
        mon.ingest(noisy_reading(42500, 0.05, rng));
    if (r.loss_alarm) {
      detect_after = i + 1;
      break;
    }
  }
  ASSERT_GT(detect_after, 0) << "loss never detected";
  EXPECT_LE(detect_after, 3);
}

TEST(Monitor, DetectsGainSeparatelyFromLoss) {
  CardinalityMonitor mon;
  util::Xoshiro256ss rng(3);
  for (int i = 0; i < 20; ++i) mon.ingest(noisy_reading(50000, 0.05, rng));
  bool gain = false;
  bool loss = false;
  for (int i = 0; i < 10; ++i) {
    const MonitorReading r = mon.ingest(noisy_reading(60000, 0.05, rng));
    gain |= r.gain_alarm;
    loss |= r.loss_alarm;
  }
  EXPECT_TRUE(gain);
  EXPECT_FALSE(loss);
}

TEST(Monitor, CatchesSlowDriftThatThresholdsMiss) {
  // 0.5% loss per reading: every single reading is well inside the 5%
  // band (a naive per-reading threshold never fires), but the CUSUM
  // accumulates the drift.
  CardinalityMonitor mon;
  util::Xoshiro256ss rng(4);
  for (int i = 0; i < 20; ++i) mon.ingest(noisy_reading(50000, 0.05, rng));
  double truth = 50000.0;
  bool detected = false;
  int step = 0;
  for (; step < 60 && !detected; ++step) {
    truth *= 0.995;
    const MonitorReading r = mon.ingest(noisy_reading(truth, 0.05, rng));
    detected = r.loss_alarm;
  }
  EXPECT_TRUE(detected);
  // By detection time the cumulative loss is still moderate (< 25%).
  EXPECT_GT(truth / 50000.0, 0.75);
}

TEST(Monitor, AlarmReanchorsTheLevel) {
  CardinalityMonitor mon;
  util::Xoshiro256ss rng(5);
  for (int i = 0; i < 20; ++i) mon.ingest(noisy_reading(50000, 0.05, rng));
  // Drive an alarm.
  MonitorReading last;
  for (int i = 0; i < 10; ++i) {
    last = mon.ingest(noisy_reading(40000, 0.05, rng));
    if (last.loss_alarm) break;
  }
  ASSERT_TRUE(last.loss_alarm);
  EXPECT_NEAR(mon.level(), 40000.0, 40000.0 * 0.1);
  // Post-alarm, the accumulators restarted: the next reading at the new
  // level must not alarm.
  const MonitorReading next = mon.ingest(noisy_reading(40000, 0.05, rng));
  EXPECT_FALSE(next.loss_alarm);
  EXPECT_FALSE(next.gain_alarm);
}

TEST(Monitor, ResetForgetsEverything) {
  CardinalityMonitor mon;
  mon.ingest(1000.0);
  mon.ingest(1100.0);
  mon.reset();
  EXPECT_FALSE(mon.primed());
  const MonitorReading r = mon.ingest(5.0);
  EXPECT_DOUBLE_EQ(r.level, 5.0);
}

TEST(Monitor, DrivesARealEstimatorEndToEnd) {
  // Wire the monitor to BFCE against shrinking populations; the loss
  // alarm must fire after the drop.
  MonitorParams params;
  CardinalityMonitor mon(params);
  BfceEstimator bfce;
  auto run_day = [&](std::size_t n, std::uint64_t day) {
    const auto pop = rfid::make_population(
        n, rfid::TagIdDistribution::kT1Uniform, 77 + day);
    rfid::ReaderContext ctx(pop, 1000 + day, rfid::FrameMode::kSampled);
    return mon.update(bfce, ctx);
  };
  for (std::uint64_t day = 0; day < 8; ++day) run_day(80000, day);
  bool alarmed = false;
  for (std::uint64_t day = 8; day < 14 && !alarmed; ++day) {
    alarmed = run_day(64000, day).loss_alarm;  // 20% gone
  }
  EXPECT_TRUE(alarmed);
}

}  // namespace
}  // namespace bfce::core
