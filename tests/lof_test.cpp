// Tests for the LOF lottery-frame estimator.
#include "estimators/lof.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

TEST(Lof, CoarseButUnbiasedInTheLog) {
  // LOF is a magnitude estimator: over many runs the mean estimate must
  // land within ~25% of n (10-round averaging), even though single runs
  // scatter widely.
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 1);
  LofEstimator est;
  math::RunningStats stats;
  for (int i = 0; i < 40; ++i) {
    rfid::ReaderContext ctx(pop, 10 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    stats.add(est.estimate(ctx, {0.05, 0.05}).n_hat);
  }
  EXPECT_NEAR(stats.mean(), 50000.0, 50000.0 * 0.25);
}

TEST(Lof, TracksOrdersOfMagnitude) {
  LofEstimator est;
  double prev = 0.0;
  for (std::size_t n : {1000UL, 16000UL, 256000UL}) {
    const auto pop =
        rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, n);
    math::RunningStats stats;
    for (int i = 0; i < 20; ++i) {
      rfid::ReaderContext ctx(pop, n + static_cast<std::uint64_t>(i),
                              rfid::FrameMode::kSampled);
      stats.add(est.estimate(ctx, {0.05, 0.05}).n_hat);
    }
    EXPECT_GT(stats.mean(), prev * 4.0);  // 16× jumps must register clearly
    prev = stats.mean();
  }
}

TEST(Lof, AirtimeAccountsEveryRound) {
  const auto pop =
      rfid::make_population(1000, rfid::TagIdDistribution::kT1Uniform, 2);
  const LofParams params{32, 10, 32};
  LofEstimator est(params);
  rfid::ReaderContext ctx(pop, 3);
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  EXPECT_EQ(out.rounds, 10u);
  EXPECT_EQ(out.airtime.reader_bits, 10u * 32u);
  EXPECT_EQ(out.airtime.tag_bits, 10u * 32u);
  EXPECT_EQ(out.airtime.intervals, 20u);  // one per broadcast + per frame
}

TEST(Lof, RoundsParameterControlsVariance) {
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 4);
  auto spread = [&](std::uint32_t rounds) {
    LofEstimator est(LofParams{32, rounds, 32});
    math::RunningStats s;
    for (int i = 0; i < 60; ++i) {
      rfid::ReaderContext ctx(pop, 1000 + static_cast<std::uint64_t>(i),
                              rfid::FrameMode::kSampled);
      s.add(std::log2(std::max(1.0, est.estimate(ctx, {0.1, 0.1}).n_hat)));
    }
    return s.stddev();
  };
  // 16× more rounds ⇒ ~4× smaller spread of log2(n̂); require ≥ 2×.
  EXPECT_GT(spread(1), 2.0 * spread(16));
}

TEST(Lof, ExactAndSampledAgreeOnAverage) {
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT2ApproxNormal, 5);
  LofEstimator est;
  math::RunningStats exact;
  math::RunningStats sampled;
  for (int i = 0; i < 30; ++i) {
    rfid::ReaderContext ce(pop, 50 + static_cast<std::uint64_t>(i),
                           rfid::FrameMode::kExact);
    rfid::ReaderContext cs(pop, 50 + static_cast<std::uint64_t>(i),
                           rfid::FrameMode::kSampled);
    exact.add(std::log2(est.estimate(ce, {0.1, 0.1}).n_hat));
    sampled.add(std::log2(est.estimate(cs, {0.1, 0.1}).n_hat));
  }
  EXPECT_NEAR(exact.mean(), sampled.mean(), 0.5);  // within half a level
}

TEST(Lof, NameIsStable) { EXPECT_EQ(LofEstimator().name(), "LOF"); }

}  // namespace
}  // namespace bfce::estimators
