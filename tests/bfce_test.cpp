// End-to-end tests of the BFCE estimator (§IV protocol).
#include "core/bfce.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rfid/reader.hpp"

namespace bfce::core {
namespace {

using estimators::EstimateOutcome;
using estimators::Requirement;

rfid::TagPopulation pop_of(std::size_t n, std::uint64_t seed = 1) {
  return rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, seed);
}

TEST(Bfce, AccurateOnMediumPopulationExactMode) {
  const auto pop = pop_of(20000);
  rfid::ReaderContext ctx(pop, 42);
  BfceEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  EXPECT_TRUE(out.met_by_design);
  EXPECT_LT(out.relative_error(20000), 0.05);
  EXPECT_EQ(out.rounds, 1u);
}

TEST(Bfce, TraceExposesTheProtocolSteps) {
  const auto pop = pop_of(100000, 2);
  rfid::ReaderContext ctx(pop, 43);
  BfceEstimator est;
  BfceTrace trace;
  const EstimateOutcome out = est.estimate_traced(ctx, {0.05, 0.05}, trace);
  EXPECT_GE(trace.probe_iterations, 1u);
  EXPECT_LE(trace.probe_iterations, est.params().max_probe_iters);
  EXPECT_GE(trace.p_s_numerator, 1u);
  EXPECT_LE(trace.p_s_numerator, 1023u);
  EXPECT_GT(trace.rho_rough, 0.0);
  EXPECT_LT(trace.rho_rough, 1.0);
  EXPECT_GT(trace.n_rough, 0.0);
  EXPECT_DOUBLE_EQ(trace.n_low, 0.5 * trace.n_rough);
  EXPECT_TRUE(trace.p_choice.satisfies);
  EXPECT_FALSE(trace.rho_clamped);
  EXPECT_GT(out.n_hat, 0.0);
}

TEST(Bfce, LowerBoundActuallyLowerBounds) {
  // c = 0.5 should make n_low ≤ n in the overwhelming majority of runs
  // (§IV-C "in most cases"); check a batch.
  const auto pop = pop_of(50000, 3);
  BfceEstimator est;
  int holds = 0;
  constexpr int kRuns = 20;
  for (int i = 0; i < kRuns; ++i) {
    rfid::ReaderContext ctx(pop, 100 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    BfceTrace trace;
    est.estimate_traced(ctx, {0.05, 0.05}, trace);
    if (trace.n_low <= 50000.0) ++holds;
  }
  EXPECT_EQ(holds, kRuns);
}

TEST(Bfce, ConstantTimeAcrossCardinalities) {
  // The headline claim: execution time is flat in n. The only variable
  // part is the handful of probe windows, a few ms each.
  BfceEstimator est;
  double min_t = 1e9;
  double max_t = 0.0;
  for (std::size_t n : {5000UL, 50000UL, 500000UL, 2000000UL}) {
    const auto pop = pop_of(n, n);
    rfid::ReaderContext ctx(pop, 7, rfid::FrameMode::kSampled);
    const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
    const double t = out.airtime.total_seconds(ctx.timing());
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_GT(min_t, 0.18);  // never below the two-phase closed form
  EXPECT_LT(max_t, 0.30);  // probes add at most a few tens of ms
  EXPECT_LT(max_t / min_t, 1.5);
}

TEST(Bfce, AirtimeLedgerContainsThePaperBaseline) {
  // Whatever the probes add, the ledger must include §IV-E.1's fixed
  // part: ≥ 256 reader bits, ≥ 9216 tag bit-slots, ≥ 3 intervals.
  const auto pop = pop_of(100000, 4);
  rfid::ReaderContext ctx(pop, 8, rfid::FrameMode::kSampled);
  BfceEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  EXPECT_GE(out.airtime.reader_bits, 256u);
  EXPECT_GE(out.airtime.tag_bits, 9216u);
  EXPECT_GE(out.airtime.intervals, 3u);
  EXPECT_DOUBLE_EQ(out.time_us, out.airtime.total_us(ctx.timing()));
}

TEST(Bfce, DeterministicForAFixedSeed) {
  const auto pop = pop_of(30000, 5);
  BfceEstimator est;
  rfid::ReaderContext a(pop, 99);
  rfid::ReaderContext b(pop, 99);
  const EstimateOutcome ra = est.estimate(a, {0.05, 0.05});
  const EstimateOutcome rb = est.estimate(b, {0.05, 0.05});
  EXPECT_DOUBLE_EQ(ra.n_hat, rb.n_hat);
  EXPECT_EQ(ra.airtime.tag_bits, rb.airtime.tag_bits);
}

TEST(Bfce, SeedsChangeTheOutcome) {
  const auto pop = pop_of(30000, 5);
  BfceEstimator est;
  rfid::ReaderContext a(pop, 99);
  rfid::ReaderContext b(pop, 100);
  EXPECT_NE(est.estimate(a, {0.05, 0.05}).n_hat,
            est.estimate(b, {0.05, 0.05}).n_hat);
}

TEST(Bfce, HugePopulationSampledMode) {
  const auto pop = pop_of(5000000, 6);
  rfid::ReaderContext ctx(pop, 10, rfid::FrameMode::kSampled);
  BfceEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  EXPECT_LT(out.relative_error(5e6), 0.05);
  EXPECT_LT(out.airtime.total_seconds(ctx.timing()), 0.30);
}

TEST(Bfce, TinyPopulationDegradesGracefully) {
  // n = 200 is below the paper's >1000 working range: no p satisfies
  // Theorem 3, so the estimator must flag the fallback — and the
  // estimate, while not (ε,δ)-guaranteed, should still be in the right
  // ballpark thanks to the margin-maximising p.
  const auto pop = pop_of(200, 7);
  rfid::ReaderContext ctx(pop, 11);
  BfceEstimator est;
  BfceTrace trace;
  const EstimateOutcome out = est.estimate_traced(ctx, {0.05, 0.05}, trace);
  EXPECT_FALSE(trace.p_choice.satisfies);
  EXPECT_FALSE(out.met_by_design);
  EXPECT_FALSE(out.note.empty());
  EXPECT_LT(out.relative_error(200), 0.5);
}

TEST(Bfce, ProbeWalksUpForSmallPopulations) {
  // n = 2000 at p_s = 8/1024 gives an expected all-idle first window, so
  // the probe must raise p before phase 1.
  const auto pop = pop_of(2000, 8);
  rfid::ReaderContext ctx(pop, 12);
  BfceEstimator est;
  BfceTrace trace;
  est.estimate_traced(ctx, {0.05, 0.05}, trace);
  EXPECT_GT(trace.p_s_numerator, 8u);
}

TEST(Bfce, ProbeWalksDownForHugePopulations) {
  // n = 5M saturates the 32-slot window at 8/1024; the probe must lower
  // p toward the floor.
  const auto pop = pop_of(5000000, 9);
  rfid::ReaderContext ctx(pop, 13, rfid::FrameMode::kSampled);
  BfceEstimator est;
  BfceTrace trace;
  est.estimate_traced(ctx, {0.05, 0.05}, trace);
  EXPECT_LT(trace.p_s_numerator, 8u);
}

TEST(Bfce, CustomParamsPropagate) {
  BfceParams params;
  params.w = 4096;
  params.k = 2;
  params.c = 0.3;
  BfceEstimator est(params);
  EXPECT_EQ(est.params().w, 4096u);
  const auto pop = pop_of(10000, 10);
  rfid::ReaderContext ctx(pop, 14);
  BfceTrace trace;
  const EstimateOutcome out = est.estimate_traced(ctx, {0.05, 0.05}, trace);
  EXPECT_NEAR(trace.n_low, 0.3 * trace.n_rough, 1e-9);
  EXPECT_LT(out.relative_error(10000), 0.10);
}

TEST(Bfce, LightweightHashStillEstimates) {
  BfceParams params;
  params.hash = rfid::HashScheme::kLightweight;
  params.persistence = hash::PersistenceMode::kRnBits;
  BfceEstimator est(params);
  const auto pop = pop_of(50000, 11);
  rfid::ReaderContext ctx(pop, 15);  // exact mode: tag RNs matter
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  EXPECT_LT(out.relative_error(50000), 0.08);
}

TEST(Bfce, SurvivesAModeratelyNoisyChannel) {
  const auto pop = pop_of(50000, 12);
  rfid::ReaderContext ctx(pop, 16, rfid::FrameMode::kExact,
                          rfid::ChannelModel{0.005, 0.005});
  BfceEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  // The paper assumes a perfect channel; 0.5% error rates should bend,
  // not break, the estimate.
  EXPECT_LT(out.relative_error(50000), 0.15);
}

TEST(Bfce, NameIsStable) {
  EXPECT_EQ(BfceEstimator().name(), "BFCE");
}

}  // namespace
}  // namespace bfce::core
