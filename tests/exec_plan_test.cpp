// Tests for the adaptive execution planner (rfid/exec_plan.hpp): the
// stream-preserving / law-divergent batch classification, the purity of
// law-divergent routing decisions, and the cost model's tie and edge
// behaviour. The engine-level consequences (kAuto bit-identity across
// shard counts, kAuto == sequential results for stream-preserving
// batches) live in frame_engine_test.cpp.
#include "rfid/exec_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hash/persistence.hpp"

namespace bfce::rfid {
namespace {

std::vector<const FrameRequest*> ptrs(const std::vector<FrameRequest>& v) {
  std::vector<const FrameRequest*> out;
  for (const FrameRequest& r : v) out.push_back(&r);
  return out;
}

BloomFrameConfig bloom_cfg(hash::PersistenceMode mode, double p = 1.0) {
  BloomFrameConfig cfg;
  cfg.w = 8192;
  cfg.k = 3;
  cfg.p = p;
  cfg.persistence = mode;
  cfg.seeds = {1, 2, 3};
  return cfg;
}

TEST(Packed16Threshold, GridAndSentinel) {
  EXPECT_EQ(exec::packed16_threshold(0.0), 0u);
  EXPECT_EQ(exec::packed16_threshold(1.0), 65536u);
  // The paper's 1/1024 persistence grid is always on the 1/65536 grid.
  EXPECT_EQ(exec::packed16_threshold(64.0 / 1024.0), 4096u);
  EXPECT_EQ(exec::packed16_threshold(1.0 / 65536.0), 1u);
  EXPECT_EQ(exec::packed16_threshold(0.3), exec::kNoPack16);
}

TEST(StreamPreserving, ClassifiesExactShapes) {
  const std::vector<FrameRequest> preserving = {
      FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kRnBits)),
      FrameRequest::aloha(1024, 1.0, 7),
      FrameRequest::single_slot(0.5, 7),
      FrameRequest::lottery(32, 7),
  };
  EXPECT_TRUE(exec::batch_is_stream_preserving(
      ptrs(preserving).data(), preserving.size(), FrameMode::kExact));

  const std::vector<FrameRequest> divergent = {
      FrameRequest::bloom(
          bloom_cfg(hash::PersistenceMode::kIdealBernoulli, 0.0625)),
      FrameRequest::aloha(1024, 0.5, 7),
  };
  for (const FrameRequest& r : divergent) {
    const FrameRequest* one = &r;
    EXPECT_FALSE(
        exec::batch_is_stream_preserving(&one, 1, FrameMode::kExact));
  }

  // One divergent frame poisons the whole batch: the walk decision is
  // batch-wide.
  std::vector<FrameRequest> mixed = preserving;
  mixed.push_back(divergent.front());
  EXPECT_FALSE(exec::batch_is_stream_preserving(
      ptrs(mixed).data(), mixed.size(), FrameMode::kExact));
}

TEST(StreamPreserving, SampledScatterShapesDiverge) {
  // The batched sampler's Bloom/ALOHA scatter is counter-addressed —
  // law-equivalent, not stream-identical — even at p = 1. Single-slot
  // and lottery draw the caller's stream in request order on both
  // walks.
  const FrameRequest bloom =
      FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kIdealBernoulli));
  const FrameRequest aloha = FrameRequest::aloha(1024, 1.0, 7);
  const FrameRequest single = FrameRequest::single_slot(1.0, 7);
  const FrameRequest lottery = FrameRequest::lottery(32, 7);
  for (const FrameRequest* r : {&bloom, &aloha}) {
    EXPECT_FALSE(exec::batch_is_stream_preserving(&r, 1, FrameMode::kSampled));
  }
  for (const FrameRequest* r : {&single, &lottery}) {
    EXPECT_TRUE(exec::batch_is_stream_preserving(&r, 1, FrameMode::kSampled));
  }
}

TEST(PlanDecision, LawDivergentDecisionIgnoresHintAndSimd) {
  // The reproducibility clause: for a law-divergent batch the routing
  // decision must be the same on a 1-core scalar host and a 64-core
  // AVX-512 host — otherwise the simulation's bits depend on the
  // machine. Sweep hint × simd and demand one answer.
  const exec::CostModel& m = exec::CostModel::active();
  const std::vector<FrameRequest> batch(
      16, FrameRequest::bloom(
              bloom_cfg(hash::PersistenceMode::kIdealBernoulli, 0.0625)));
  const auto p = ptrs(batch);
  for (std::size_t n : {std::size_t{100}, std::size_t{10000},
                        std::size_t{1000000}}) {
    const bool reference = exec::plan_prefers_sharded(
        m, p.data(), p.size(), n, FrameMode::kExact, 1, false);
    for (std::uint32_t hint : {1u, 2u, 8u, 64u}) {
      for (bool simd : {false, true}) {
        EXPECT_EQ(exec::plan_prefers_sharded(m, p.data(), p.size(), n,
                                             FrameMode::kExact, hint, simd),
                  reference)
            << "hint=" << hint << " simd=" << simd << " n=" << n;
      }
    }
  }
}

TEST(PlanDecision, EmptyAndTinyBatchesStaySequential) {
  const exec::CostModel& m = exec::CostModel::active();
  EXPECT_FALSE(exec::plan_prefers_sharded(m, nullptr, 0, 100000,
                                          FrameMode::kExact, 8, true));
  const FrameRequest aloha = FrameRequest::aloha(128, 1.0, 7);
  const FrameRequest* one = &aloha;
  EXPECT_FALSE(exec::plan_prefers_sharded(m, &one, 1, 0, FrameMode::kExact,
                                          8, true));
  // A handful of tags can never amortise the walk's fixed cost.
  EXPECT_FALSE(exec::plan_prefers_sharded(m, &one, 1, 16, FrameMode::kExact,
                                          8, true));
}

TEST(PlanDecision, SampledNonScatterBatchesStaySequential) {
  // Sampled single-slot / lottery do identical work on both walks, so
  // the sharded path is pure overhead and the planner must never pick
  // it, at any scale or hint.
  const exec::CostModel& m = exec::CostModel::active();
  const std::vector<FrameRequest> batch = {
      FrameRequest::single_slot(0.01, 1),
      FrameRequest::lottery(32, 2),
      FrameRequest::single_slot(0.5, 3),
  };
  const auto p = ptrs(batch);
  for (std::size_t n : {std::size_t{1000}, std::size_t{100000000}}) {
    for (std::uint32_t hint : {1u, 64u}) {
      EXPECT_FALSE(exec::plan_prefers_sharded(m, p.data(), p.size(), n,
                                              FrameMode::kSampled, hint,
                                              true));
    }
  }
}

TEST(PlanDecision, HintScalesTheParallelSide) {
  // A big stream-preserving batch that sequential wins at one shard
  // must eventually flip sharded as shards grow — the per-item parallel
  // cost is divided across them. Use the committed table's RN-bits
  // column, whose par cost exceeds seq (no vector kernel), so the
  // one-shard decision is sequential by construction.
  const exec::CostModel& m = exec::CostModel::committed_defaults();
  const std::vector<FrameRequest> batch(
      16, FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kRnBits)));
  const auto p = ptrs(batch);
  const std::size_t n = 1000000;
  EXPECT_FALSE(exec::plan_prefers_sharded(m, p.data(), p.size(), n,
                                          FrameMode::kExact, 1, false));
  EXPECT_TRUE(exec::plan_prefers_sharded(m, p.data(), p.size(), n,
                                         FrameMode::kExact, 16, false));
}

TEST(CostModel, CommittedTableShape) {
  // Invariants the planner's conservatism relies on: nonnegative
  // coefficients, SIMD never priced above scalar, and overheads that
  // are actually nonzero (a zero fixed cost would let the planner shard
  // single-tag frames).
  const exec::CostModel m = exec::CostModel::committed_defaults();
  for (const exec::PathCost* c :
       {&m.bloom_packed, &m.bloom_plain, &m.bloom_rn, &m.aloha, &m.single,
        &m.lottery, &m.sampled_draw}) {
    EXPECT_GT(c->seq, 0.0);
    EXPECT_GT(c->par, 0.0);
    EXPECT_GT(c->par_simd, 0.0);
    EXPECT_LE(c->par_simd, c->par);
  }
  EXPECT_GT(m.walk_fixed_ns, 0.0);
  EXPECT_GT(m.shard_fixed_ns, 0.0);
  EXPECT_GT(m.slot_ns, 0.0);
  EXPECT_GT(m.plane_word_ns, 0.0);
}

}  // namespace
}  // namespace bfce::rfid
