// FrameEngine equivalence tests.
//
// The refactor that moved the frame executors behind the engine promises:
//   * execute() is bit-identical to the pre-refactor free executors for
//     every (shape, mode) pair — including identical RNG consumption, so
//     downstream draws stay aligned;
//   * execute_batch() is bit-identical to sequential execution when the
//     tag-side responses draw no RNG (PersistenceMode::kRnBits), and
//     law-equivalent (two-sample KS) for the stochastic persistence modes;
//   * the per-shape counters add up.
//
// The pre-refactor executors are embedded verbatim below as `ref_*` so
// the contract stays checkable even as frame.cpp itself becomes a thin
// wrapper over the engine.

#include "rfid/frame_engine.hpp"

#include <gtest/gtest.h>

#include "rfid/frame_engine_simd.hpp"

#include <cassert>
#include <cmath>
#include <random>
#include <vector>

#include "hash/mix.hpp"
#include "hash/persistence.hpp"
#include "hash/slot_hash.hpp"
#include "math/hypothesis.hpp"
#include "rfid/frame.hpp"
#include "rfid/population.hpp"

namespace bfce::rfid {
namespace {

// ---- verbatim pre-refactor executors (the reference behaviour) --------

util::BitVector ref_counts_to_busy(const std::vector<std::uint32_t>& counts,
                                   const Channel& channel,
                                   util::Xoshiro256ss& rng) {
  util::BitVector busy(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (is_busy(channel.observe(counts[i], rng))) busy.set(i);
  }
  return busy;
}

std::uint64_t ref_draw_binomial(std::uint64_t trials, double p,
                                util::Xoshiro256ss& rng) {
  if (trials == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return trials;
  std::binomial_distribution<std::uint64_t> dist(trials, p);
  return dist(rng);
}

std::uint64_t ref_total(const std::vector<std::uint32_t>& counts) {
  std::uint64_t total = 0;
  for (const std::uint32_t c : counts) total += c;
  return total;
}

util::BitVector ref_run_bloom_frame(const TagPopulation& tags,
                                    const BloomFrameConfig& cfg,
                                    const Channel& channel,
                                    util::Xoshiro256ss& rng,
                                    std::uint64_t* tx_count = nullptr) {
  std::vector<std::uint32_t> counts(cfg.w, 0);
  for (const Tag& tag : tags.tags()) {
    bool shared_respond = true;
    if (cfg.persistence == hash::PersistenceMode::kSharedDraw) {
      shared_respond = rng.bernoulli(cfg.p);
      if (!shared_respond) continue;
    }
    for (std::uint32_t j = 0; j < cfg.k; ++j) {
      std::uint32_t slot;
      if (cfg.hash == HashScheme::kIdeal) {
        slot = hash::IdealSlotHash(cfg.seeds[j]).slot(tag.id, cfg.w);
      } else {
        slot = hash::LightweightSlotHash(
                   static_cast<std::uint32_t>(cfg.seeds[j]))
                   .slot(tag.rn, cfg.w);
      }
      bool respond;
      switch (cfg.persistence) {
        case hash::PersistenceMode::kIdealBernoulli:
          respond = rng.bernoulli(cfg.p);
          break;
        case hash::PersistenceMode::kSharedDraw:
          respond = shared_respond;
          break;
        case hash::PersistenceMode::kRnBits:
          respond = hash::rn_bits_respond(
              tag.rn, slot, static_cast<std::uint32_t>(cfg.seeds[j]),
              cfg.p_n);
          break;
        default:
          respond = false;
      }
      if (respond) ++counts[slot];
    }
  }
  if (tx_count != nullptr) *tx_count += ref_total(counts);
  return ref_counts_to_busy(counts, channel, rng);
}

util::BitVector ref_sampled_bloom_frame(std::size_t n,
                                        const BloomFrameConfig& cfg,
                                        const Channel& channel,
                                        util::Xoshiro256ss& rng,
                                        std::uint64_t* tx_count = nullptr) {
  const std::uint64_t responses =
      ref_draw_binomial(static_cast<std::uint64_t>(n) * cfg.k, cfg.p, rng);
  std::vector<std::uint32_t> counts(cfg.w, 0);
  for (std::uint64_t r = 0; r < responses; ++r) {
    ++counts[rng.below(cfg.w)];
  }
  if (tx_count != nullptr) *tx_count += responses;
  return ref_counts_to_busy(counts, channel, rng);
}

std::vector<SlotState> ref_run_aloha_frame(const TagPopulation& tags,
                                           std::uint32_t f, double p,
                                           std::uint64_t seed,
                                           const Channel& channel,
                                           util::Xoshiro256ss& rng) {
  std::vector<std::uint32_t> counts(f, 0);
  const hash::IdealSlotHash slot_hash(seed);
  for (const Tag& tag : tags.tags()) {
    if (p < 1.0 && !rng.bernoulli(p)) continue;
    ++counts[slot_hash.slot(tag.id, f)];
  }
  std::vector<SlotState> states(f);
  for (std::uint32_t i = 0; i < f; ++i) {
    states[i] = channel.observe(counts[i], rng);
  }
  return states;
}

std::vector<SlotState> ref_sampled_aloha_frame(std::size_t n, std::uint32_t f,
                                               double p,
                                               const Channel& channel,
                                               util::Xoshiro256ss& rng) {
  const std::uint64_t responders = ref_draw_binomial(n, p, rng);
  std::vector<std::uint32_t> counts(f, 0);
  for (std::uint64_t r = 0; r < responders; ++r) {
    ++counts[rng.below(f)];
  }
  std::vector<SlotState> states(f);
  for (std::uint32_t i = 0; i < f; ++i) {
    states[i] = channel.observe(counts[i], rng);
  }
  return states;
}

SlotState ref_run_single_slot(const TagPopulation& tags, double q,
                              std::uint64_t seed, const Channel& channel,
                              util::Xoshiro256ss& rng) {
  const std::uint64_t threshold =
      q >= 1.0 ? ~0ULL
               : static_cast<std::uint64_t>(
                     q * 18446744073709551616.0 /* 2^64 */);
  std::uint32_t responders = 0;
  for (const Tag& tag : tags.tags()) {
    if (hash::mix_with_seed(tag.id, seed) < threshold) ++responders;
  }
  return channel.observe(responders, rng);
}

SlotState ref_sampled_single_slot(std::size_t n, double q,
                                  const Channel& channel,
                                  util::Xoshiro256ss& rng) {
  const std::uint64_t responders = ref_draw_binomial(n, q, rng);
  return channel.observe(static_cast<std::uint32_t>(
                             responders > 0xFFFFFFFFULL ? 0xFFFFFFFFULL
                                                        : responders),
                         rng);
}

util::BitVector ref_run_lottery_frame(const TagPopulation& tags,
                                      std::uint32_t f, std::uint64_t seed,
                                      const Channel& channel,
                                      util::Xoshiro256ss& rng) {
  std::vector<std::uint32_t> counts(f, 0);
  const hash::GeometricSlotHash geo(seed);
  for (const Tag& tag : tags.tags()) {
    ++counts[geo.slot(tag.id, f)];
  }
  return ref_counts_to_busy(counts, channel, rng);
}

util::BitVector ref_sampled_lottery_frame(std::size_t n, std::uint32_t f,
                                          const Channel& channel,
                                          util::Xoshiro256ss& rng) {
  std::vector<std::uint32_t> counts(f, 0);
  std::uint64_t remaining = n;
  double mass_remaining = 1.0;
  for (std::uint32_t j = 0; j + 1 < f && remaining > 0; ++j) {
    const double pj = std::ldexp(1.0, -static_cast<int>(j) - 1);
    const double cond = pj / mass_remaining;
    const std::uint64_t c =
        ref_draw_binomial(remaining, cond > 1.0 ? 1.0 : cond, rng);
    counts[j] = static_cast<std::uint32_t>(c > 0xFFFFFFFFULL ? 0xFFFFFFFFULL
                                                             : c);
    remaining -= c;
    mass_remaining -= pj;
    if (mass_remaining <= 0.0) break;
  }
  counts[f - 1] += static_cast<std::uint32_t>(
      remaining > 0xFFFFFFFFULL ? 0xFFFFFFFFULL : remaining);
  return ref_counts_to_busy(counts, channel, rng);
}

// ---- helpers ----------------------------------------------------------

TagPopulation test_pop(std::size_t n, std::uint64_t seed = 1) {
  return make_population(n, TagIdDistribution::kT1Uniform, seed);
}

BloomFrameConfig bloom_cfg(hash::PersistenceMode mode,
                           std::uint32_t p_n = 256, std::uint32_t w = 512) {
  BloomFrameConfig cfg;
  cfg.w = w;
  cfg.set_p_numerator(p_n);
  cfg.persistence = mode;
  cfg.seeds = {11, 22, 33};
  return cfg;
}

/// Asserts a == b and that both generators are in the same state.
void expect_same_rng(util::Xoshiro256ss& a, util::Xoshiro256ss& b) {
  EXPECT_EQ(a(), b()) << "RNG streams diverged";
}

// ---- execute() vs the pre-refactor executors (bit-identical) ----------

TEST(FrameEngineExact, BloomBitIdenticalAllPersistenceModes) {
  const TagPopulation pop = test_pop(3000);
  const Channel ch;
  for (const auto mode :
       {hash::PersistenceMode::kIdealBernoulli,
        hash::PersistenceMode::kSharedDraw, hash::PersistenceMode::kRnBits}) {
    const auto cfg = bloom_cfg(mode);
    util::Xoshiro256ss ref_rng(42);
    util::Xoshiro256ss eng_rng(42);
    std::uint64_t ref_tx = 0;
    const util::BitVector ref =
        ref_run_bloom_frame(pop, cfg, ch, ref_rng, &ref_tx);
    FrameEngine engine(pop, ch, FrameMode::kExact);
    const FrameResult res =
        engine.execute(FrameRequest::bloom(cfg), eng_rng);
    EXPECT_EQ(ref.words(), res.busy.words());
    EXPECT_EQ(ref_tx, res.tx);
    expect_same_rng(ref_rng, eng_rng);
  }
}

TEST(FrameEngineExact, BloomBitIdenticalLightweightHash) {
  const TagPopulation pop = test_pop(2000);
  const Channel ch;
  auto cfg = bloom_cfg(hash::PersistenceMode::kRnBits);
  cfg.hash = HashScheme::kLightweight;
  util::Xoshiro256ss ref_rng(7);
  util::Xoshiro256ss eng_rng(7);
  const util::BitVector ref = ref_run_bloom_frame(pop, cfg, ch, ref_rng);
  FrameEngine engine(pop, ch, FrameMode::kExact);
  const FrameResult res = engine.execute(FrameRequest::bloom(cfg), eng_rng);
  EXPECT_EQ(ref.words(), res.busy.words());
  expect_same_rng(ref_rng, eng_rng);
}

TEST(FrameEngineExact, AlohaSingleLotteryBitIdentical) {
  const TagPopulation pop = test_pop(3000);
  const Channel ch;
  util::Xoshiro256ss ref_rng(9);
  util::Xoshiro256ss eng_rng(9);
  FrameEngine engine(pop, ch, FrameMode::kExact);

  const auto ref_states = ref_run_aloha_frame(pop, 128, 0.4, 77, ch, ref_rng);
  const FrameResult aloha =
      engine.execute(FrameRequest::aloha(128, 0.4, 77), eng_rng);
  EXPECT_EQ(ref_states, aloha.states);

  const SlotState ref_single =
      ref_run_single_slot(pop, 0.001, 55, ch, ref_rng);
  const FrameResult single =
      engine.execute(FrameRequest::single_slot(0.001, 55), eng_rng);
  EXPECT_EQ(ref_single, single.single);

  const util::BitVector ref_busy =
      ref_run_lottery_frame(pop, 32, 66, ch, ref_rng);
  const FrameResult lottery =
      engine.execute(FrameRequest::lottery(32, 66), eng_rng);
  EXPECT_EQ(ref_busy.words(), lottery.busy.words());

  expect_same_rng(ref_rng, eng_rng);
}

TEST(FrameEngineSampled, AllShapesBitIdentical) {
  const std::size_t n = 50000;
  const Channel ch;
  util::Xoshiro256ss ref_rng(13);
  util::Xoshiro256ss eng_rng(13);
  FrameEngine engine(n, ch);

  const auto cfg = bloom_cfg(hash::PersistenceMode::kIdealBernoulli);
  const util::BitVector ref_bloom =
      ref_sampled_bloom_frame(n, cfg, ch, ref_rng);
  EXPECT_EQ(ref_bloom.words(),
            engine.execute(FrameRequest::bloom(cfg), eng_rng).busy.words());

  const auto ref_states = ref_sampled_aloha_frame(n, 256, 0.01, ch, ref_rng);
  EXPECT_EQ(ref_states,
            engine.execute(FrameRequest::aloha(256, 0.01, 0), eng_rng).states);

  const SlotState ref_single = ref_sampled_single_slot(n, 3e-5, ch, ref_rng);
  EXPECT_EQ(ref_single,
            engine.execute(FrameRequest::single_slot(3e-5, 0), eng_rng).single);

  const util::BitVector ref_lottery =
      ref_sampled_lottery_frame(n, 32, ch, ref_rng);
  EXPECT_EQ(
      ref_lottery.words(),
      engine.execute(FrameRequest::lottery(32, 0), eng_rng).busy.words());

  expect_same_rng(ref_rng, eng_rng);
}

// The free functions stayed behaviourally identical through their
// demotion to engine wrappers.
TEST(FrameEngineWrappers, FreeFunctionsBitIdenticalToReference) {
  const TagPopulation pop = test_pop(2000);
  const Channel ch;
  const auto cfg = bloom_cfg(hash::PersistenceMode::kIdealBernoulli);

  util::Xoshiro256ss ref_rng(21);
  util::Xoshiro256ss wrap_rng(21);
  std::uint64_t ref_tx = 0;
  std::uint64_t wrap_tx = 0;
  const util::BitVector ref =
      ref_run_bloom_frame(pop, cfg, ch, ref_rng, &ref_tx);
  const util::BitVector wrap =
      run_bloom_frame(pop, cfg, ch, wrap_rng, &wrap_tx);
  EXPECT_EQ(ref.words(), wrap.words());
  EXPECT_EQ(ref_tx, wrap_tx);

  EXPECT_EQ(ref_run_aloha_frame(pop, 64, 0.3, 5, ch, ref_rng),
            run_aloha_frame(pop, 64, 0.3, 5, ch, wrap_rng));
  EXPECT_EQ(ref_run_single_slot(pop, 0.01, 6, ch, ref_rng),
            run_single_slot(pop, 0.01, 6, ch, wrap_rng));
  EXPECT_EQ(ref_run_lottery_frame(pop, 32, 7, ch, ref_rng).words(),
            run_lottery_frame(pop, 32, 7, ch, wrap_rng).words());
  EXPECT_EQ(ref_sampled_bloom_frame(5000, cfg, ch, ref_rng).words(),
            sampled_bloom_frame(5000, cfg, ch, wrap_rng).words());
  EXPECT_EQ(ref_sampled_aloha_frame(5000, 64, 0.1, ch, ref_rng),
            sampled_aloha_frame(5000, 64, 0.1, ch, wrap_rng));
  EXPECT_EQ(ref_sampled_single_slot(5000, 3e-4, ch, ref_rng),
            sampled_single_slot(5000, 3e-4, ch, wrap_rng));
  EXPECT_EQ(ref_sampled_lottery_frame(5000, 32, ch, ref_rng).words(),
            sampled_lottery_frame(5000, 32, ch, wrap_rng).words());
  expect_same_rng(ref_rng, wrap_rng);
}

// ---- execute_batch ----------------------------------------------------

std::vector<FrameRequest> bloom_batch(hash::PersistenceMode mode,
                                      std::size_t frames,
                                      std::uint64_t seed_base) {
  std::vector<FrameRequest> batch;
  for (std::size_t i = 0; i < frames; ++i) {
    auto cfg = bloom_cfg(mode);
    cfg.seeds = {seed_base + 3 * i, seed_base + 3 * i + 1,
                 seed_base + 3 * i + 2};
    batch.push_back(FrameRequest::bloom(cfg));
  }
  return batch;
}

// kRnBits tag responses draw no RNG, so the blocked population walk is
// bit-identical to sequential execution — including with an imperfect
// channel, whose draws stay frame-major on both paths.
TEST(FrameEngineBatch, RnBitsBitIdenticalToSequential) {
  const TagPopulation pop = test_pop(3000);
  for (const Channel ch :
       {Channel{}, Channel{ChannelModel{0.05, 0.02}}}) {
    const auto batch =
        bloom_batch(hash::PersistenceMode::kRnBits, 8, 100);
    FrameEngine batched(pop, ch, FrameMode::kExact);
    FrameEngine sequential(pop, ch, FrameMode::kExact);
    util::Xoshiro256ss batch_rng(3);
    util::Xoshiro256ss seq_rng(3);
    const auto batch_res = batched.execute_batch(batch, batch_rng);
    std::vector<FrameResult> seq_res;
    for (const FrameRequest& r : batch) {
      seq_res.push_back(sequential.execute(r, seq_rng));
    }
    ASSERT_EQ(batch_res.size(), seq_res.size());
    for (std::size_t i = 0; i < batch_res.size(); ++i) {
      EXPECT_EQ(batch_res[i].busy.words(), seq_res[i].busy.words());
      EXPECT_EQ(batch_res[i].tx, seq_res[i].tx);
    }
    expect_same_rng(batch_rng, seq_rng);
    EXPECT_EQ(batched.counters().blocked_batches, 1u);
  }
}

// The stochastic persistence modes reorder (and pack) the tag-side
// draws, so the blocked path promises the same law, not the same bits:
// compare per-frame busy-count distributions with a two-sample KS test.
TEST(FrameEngineBatch, StochasticModesMatchSequentialLaw) {
  const TagPopulation pop = test_pop(1500);
  const Channel ch;
  for (const auto mode : {hash::PersistenceMode::kIdealBernoulli,
                          hash::PersistenceMode::kSharedDraw}) {
    std::vector<double> batched_counts;
    std::vector<double> sequential_counts;
    for (std::uint64_t trial = 0; trial < 120; ++trial) {
      const auto batch = bloom_batch(mode, 4, 1000 + 97 * trial);
      FrameEngine batched(pop, ch, FrameMode::kExact);
      util::Xoshiro256ss batch_rng(500 + trial);
      for (const FrameResult& r : batched.execute_batch(batch, batch_rng)) {
        batched_counts.push_back(static_cast<double>(r.busy.count_ones()));
      }
      FrameEngine sequential(pop, ch, FrameMode::kExact);
      util::Xoshiro256ss seq_rng(9000 + trial);
      for (const FrameRequest& r : batch) {
        sequential_counts.push_back(static_cast<double>(
            sequential.execute(r, seq_rng).busy.count_ones()));
      }
    }
    const double d = math::ks_statistic(batched_counts, sequential_counts);
    const double p =
        math::ks_pvalue(d, batched_counts.size(), sequential_counts.size());
    EXPECT_GT(p, 1e-3) << "mode " << static_cast<int>(mode)
                       << ": KS D=" << d;
  }
}

// A batch that mixes shapes cannot take the blocked path; it must be
// bit-identical to sequential execution.
TEST(FrameEngineBatch, MixedShapesFallBackToSequential) {
  const TagPopulation pop = test_pop(2000);
  const Channel ch;
  std::vector<FrameRequest> batch;
  batch.push_back(
      FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kIdealBernoulli)));
  batch.push_back(FrameRequest::aloha(64, 0.5, 3));
  batch.push_back(FrameRequest::single_slot(0.01, 4));
  batch.push_back(FrameRequest::lottery(32, 5));

  FrameEngine batched(pop, ch, FrameMode::kExact);
  FrameEngine sequential(pop, ch, FrameMode::kExact);
  util::Xoshiro256ss batch_rng(17);
  util::Xoshiro256ss seq_rng(17);
  const auto batch_res = batched.execute_batch(batch, batch_rng);
  std::vector<FrameResult> seq_res;
  for (const FrameRequest& r : batch) {
    seq_res.push_back(sequential.execute(r, seq_rng));
  }
  ASSERT_EQ(batch_res.size(), 4u);
  EXPECT_EQ(batch_res[0].busy.words(), seq_res[0].busy.words());
  EXPECT_EQ(batch_res[1].states, seq_res[1].states);
  EXPECT_EQ(batch_res[2].single, seq_res[2].single);
  EXPECT_EQ(batch_res[3].busy.words(), seq_res[3].busy.words());
  expect_same_rng(batch_rng, seq_rng);
  EXPECT_EQ(batched.counters().blocked_batches, 0u);
  EXPECT_EQ(batched.counters().batches, 1u);
}

// ---- sharded execution (ExecutionPolicy) ------------------------------

/// Sharded policy with the size floor disabled so small test populations
/// actually split into the requested number of shards.
ExecutionPolicy sharded_policy(std::uint32_t shards) {
  ExecutionPolicy policy = ExecutionPolicy::sharded(shards);
  policy.min_tags_per_shard = 1;
  return policy;
}

// The headline determinism promise: the sharded walk is a pure function
// of the seed — bit-identical busy maps, transmission counts, and RNG
// stream position for ANY shard count, across every persistence mode
// and with an imperfect channel in the loop.
TEST(FrameEngineSharded, BitIdenticalForAnyShardCount) {
  const TagPopulation pop = test_pop(3000);
  for (const Channel ch : {Channel{}, Channel{ChannelModel{0.05, 0.02}}}) {
    for (const auto mode : {hash::PersistenceMode::kIdealBernoulli,
                            hash::PersistenceMode::kSharedDraw,
                            hash::PersistenceMode::kRnBits}) {
      const auto batch = bloom_batch(mode, 4, 300);
      for (const std::uint32_t shards : {4u, 8u}) {
        FrameEngine one(pop, ch, FrameMode::kExact, sharded_policy(1));
        FrameEngine many(pop, ch, FrameMode::kExact,
                         sharded_policy(shards));
        util::Xoshiro256ss one_rng(11);
        util::Xoshiro256ss many_rng(11);
        const auto ref = one.execute_batch(batch, one_rng);
        const auto res = many.execute_batch(batch, many_rng);
        ASSERT_EQ(res.size(), ref.size());
        for (std::size_t i = 0; i < res.size(); ++i) {
          EXPECT_EQ(ref[i].busy.words(), res[i].busy.words())
              << "mode " << static_cast<int>(mode) << " shards " << shards
              << " frame " << i;
          EXPECT_EQ(ref[i].tx, res[i].tx);
        }
        expect_same_rng(one_rng, many_rng);
      }
    }
  }
}

// kRnBits tag decisions draw no RNG on either walk and the channel
// replay preserves the sequential draw order, so the sharded path is
// bit-identical to the plain sequential engine — RNG stream included.
TEST(FrameEngineSharded, RnBitsMatchesSequentialEngineExactly) {
  const TagPopulation pop = test_pop(3000);
  for (const Channel ch : {Channel{}, Channel{ChannelModel{0.05, 0.02}}}) {
    const auto cfg = bloom_cfg(hash::PersistenceMode::kRnBits);
    FrameEngine seq(pop, ch, FrameMode::kExact);
    FrameEngine shd(pop, ch, FrameMode::kExact, sharded_policy(4));
    util::Xoshiro256ss seq_rng(5);
    util::Xoshiro256ss shd_rng(5);
    const FrameResult a = seq.execute(FrameRequest::bloom(cfg), seq_rng);
    const FrameResult b = shd.execute(FrameRequest::bloom(cfg), shd_rng);
    EXPECT_EQ(a.busy.words(), b.busy.words());
    EXPECT_EQ(a.tx, b.tx);
    expect_same_rng(seq_rng, shd_rng);
    EXPECT_EQ(shd.counters().sharded_walks, 1u);
  }
}

// Flipping allow_simd must not change a single bit: the AVX-512 kernel
// and the scalar kernel emit the same decisions in the same order.
TEST(FrameEngineSharded, SimdAndScalarBitIdentical) {
  const TagPopulation pop = test_pop(5000);
  const Channel ch;
  const auto batch =
      bloom_batch(hash::PersistenceMode::kIdealBernoulli, 4, 700);
  ExecutionPolicy simd = sharded_policy(4);
  ExecutionPolicy scalar = sharded_policy(4);
  scalar.allow_simd = false;
  FrameEngine a(pop, ch, FrameMode::kExact, simd);
  FrameEngine b(pop, ch, FrameMode::kExact, scalar);
  util::Xoshiro256ss a_rng(23);
  util::Xoshiro256ss b_rng(23);
  const auto ra = a.execute_batch(batch, a_rng);
  const auto rb = b.execute_batch(batch, b_rng);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].busy.words(), rb[i].busy.words());
    EXPECT_EQ(ra[i].tx, rb[i].tx);
  }
  expect_same_rng(a_rng, b_rng);
}

// Direct kernel check: vector and scalar decision tiles agree on count
// and content for awkward spans (sub-vector tails, tiny tiles, extreme
// thresholds, every lane-mask width).
TEST(FrameEngineSharded, DecideTileSimdMatchesScalar) {
  if (!detail::simd_supported()) {
    GTEST_SKIP() << "AVX-512 kernel not available on this host";
  }
  std::vector<std::uint16_t> va(detail::kShardLaneCapacity);
  std::vector<std::uint16_t> vb(detail::kShardLaneCapacity);
  const std::uint64_t base = 0x0123456789ABCDEFULL;
  const std::size_t spans[][2] = {
      {0, 1},    {0, 7},     {0, 8},         {0, 4096},
      {5, 4093}, {100, 163}, {70000, 74096},
  };
  for (const auto& span : spans) {
    for (const std::uint32_t thr : {1u, 4096u, 16384u, 65535u}) {
      for (std::uint32_t k = 1; k <= 4; ++k) {
        const std::uint32_t mask = detail::lane_mask_for(k);
        const std::size_t na = detail::bloom_decide_tile(
            base, span[0], span[1], thr, mask, true, va.data());
        const std::size_t nb = detail::bloom_decide_tile(
            base, span[0], span[1], thr, mask, false, vb.data());
        ASSERT_EQ(na, nb) << "span [" << span[0] << ", " << span[1]
                          << ") thr " << thr << " k " << k;
        for (std::size_t i = 0; i < na; ++i) {
          ASSERT_EQ(va[i], vb[i]) << "lane " << i;
        }
      }
    }
  }
}

// Frames the packed kernel cannot take — p off the 1/65536 grid, k > 4,
// and the p = 1 fast path — still honour shard-count invariance.
TEST(FrameEngineSharded, EdgeCaseFramesShardInvariant) {
  const TagPopulation pop = test_pop(3000);
  const Channel ch;

  auto off_grid = bloom_cfg(hash::PersistenceMode::kIdealBernoulli);
  off_grid.p = 0.3;  // not representable as x/65536
  auto wide = bloom_cfg(hash::PersistenceMode::kIdealBernoulli);
  wide.k = 5;
  wide.seeds = {11, 22, 33, 44, 55};
  auto certain = bloom_cfg(hash::PersistenceMode::kIdealBernoulli,
                           1024 /* p = 1 */);

  std::vector<FrameRequest> batch;
  batch.push_back(FrameRequest::bloom(off_grid));
  batch.push_back(FrameRequest::bloom(wide));
  batch.push_back(FrameRequest::bloom(certain));

  for (const std::uint32_t shards : {4u, 8u}) {
    FrameEngine one(pop, ch, FrameMode::kExact, sharded_policy(1));
    FrameEngine many(pop, ch, FrameMode::kExact, sharded_policy(shards));
    util::Xoshiro256ss one_rng(31);
    util::Xoshiro256ss many_rng(31);
    const auto ref = one.execute_batch(batch, one_rng);
    const auto res = many.execute_batch(batch, many_rng);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].busy.words(), res[i].busy.words()) << "frame " << i;
      EXPECT_EQ(ref[i].tx, res[i].tx);
    }
    expect_same_rng(one_rng, many_rng);
    // p = 1: all 3000 tags answer in all k slots, on every walk.
    EXPECT_EQ(res[2].tx, 3000u * certain.k);
  }
}

// A sharded batch under a perfect channel is bit-identical to issuing
// the same frames one at a time on a sharded engine: each stochastic
// frame consumes exactly one draw, in request order, on both paths.
TEST(FrameEngineSharded, BatchMatchesPerFrameShardedPerfectChannel) {
  const TagPopulation pop = test_pop(2500);
  const Channel ch;
  const auto batch =
      bloom_batch(hash::PersistenceMode::kIdealBernoulli, 4, 900);
  FrameEngine batched(pop, ch, FrameMode::kExact, sharded_policy(4));
  FrameEngine single(pop, ch, FrameMode::kExact, sharded_policy(4));
  util::Xoshiro256ss batch_rng(41);
  util::Xoshiro256ss single_rng(41);
  const auto batch_res = batched.execute_batch(batch, batch_rng);
  std::vector<FrameResult> single_res;
  for (const FrameRequest& r : batch) {
    single_res.push_back(single.execute(r, single_rng));
  }
  for (std::size_t i = 0; i < batch_res.size(); ++i) {
    EXPECT_EQ(batch_res[i].busy.words(), single_res[i].busy.words());
    EXPECT_EQ(batch_res[i].tx, single_res[i].tx);
  }
  expect_same_rng(batch_rng, single_rng);
}

// The stochastic modes repack the tag-side draws into counter-addressed
// streams, so sharded-vs-sequential promises the same law, not the same
// bits: two-sample KS on per-frame busy counts.
TEST(FrameEngineSharded, StochasticModesMatchSequentialLaw) {
  const TagPopulation pop = test_pop(1500);
  const Channel ch;
  for (const auto mode : {hash::PersistenceMode::kIdealBernoulli,
                          hash::PersistenceMode::kSharedDraw}) {
    std::vector<double> sharded_counts;
    std::vector<double> sequential_counts;
    for (std::uint64_t trial = 0; trial < 120; ++trial) {
      const auto batch = bloom_batch(mode, 4, 2000 + 97 * trial);
      FrameEngine sharded(pop, ch, FrameMode::kExact, sharded_policy(4));
      util::Xoshiro256ss shd_rng(700 + trial);
      for (const FrameResult& r : sharded.execute_batch(batch, shd_rng)) {
        sharded_counts.push_back(static_cast<double>(r.busy.count_ones()));
      }
      FrameEngine sequential(pop, ch, FrameMode::kExact);
      util::Xoshiro256ss seq_rng(9500 + trial);
      for (const FrameRequest& r : batch) {
        sequential_counts.push_back(static_cast<double>(
            sequential.execute(r, seq_rng).busy.count_ones()));
      }
    }
    const double d = math::ks_statistic(sharded_counts, sequential_counts);
    const double p =
        math::ks_pvalue(d, sharded_counts.size(), sequential_counts.size());
    EXPECT_GT(p, 1e-3) << "mode " << static_cast<int>(mode)
                       << ": KS D=" << d;
  }
}

TEST(FrameEngineSharded, CountsShardedWalks) {
  const TagPopulation pop = test_pop(2000);
  const Channel ch;
  FrameEngine engine(pop, ch, FrameMode::kExact, sharded_policy(4));
  util::Xoshiro256ss rng(1);
  const auto cfg = bloom_cfg(hash::PersistenceMode::kRnBits);
  engine.execute(FrameRequest::bloom(cfg), rng);
  EXPECT_EQ(engine.counters().sharded_walks, 1u);
  engine.execute_batch(bloom_batch(hash::PersistenceMode::kRnBits, 4, 50),
                       rng);
  EXPECT_EQ(engine.counters().sharded_walks, 2u);
  EXPECT_EQ(engine.counters().batches, 1u);
  EXPECT_EQ(engine.counters().blocked_batches, 0u);

  engine.set_policy(ExecutionPolicy::sequential());
  engine.execute(FrameRequest::bloom(cfg), rng);
  EXPECT_EQ(engine.counters().sharded_walks, 2u);

  EngineCounters sum;
  sum += engine.counters();
  sum += engine.counters();
  EXPECT_EQ(sum.sharded_walks, 4u);
}

// ---- sharded execution: non-Bloom shapes ------------------------------

std::size_t busy_states(const std::vector<SlotState>& states) {
  std::size_t n = 0;
  for (const SlotState s : states) {
    if (is_busy(s)) ++n;
  }
  return n;
}

// Shapes whose tag-side decisions draw no RNG — p = 1 ALOHA, single-slot,
// lottery — must come out of the sharded walk bit-identical to the plain
// sequential engine, RNG stream position included, under both channels.
TEST(FrameEngineShardedShapes, NoDrawShapesMatchSequentialExactly) {
  const TagPopulation pop = test_pop(3000);
  for (const Channel ch : {Channel{}, Channel{ChannelModel{0.05, 0.02}}}) {
    FrameEngine seq(pop, ch, FrameMode::kExact);
    FrameEngine shd(pop, ch, FrameMode::kExact, sharded_policy(4));
    util::Xoshiro256ss seq_rng(19);
    util::Xoshiro256ss shd_rng(19);

    const FrameResult a1 =
        seq.execute(FrameRequest::aloha(128, 1.0, 77), seq_rng);
    const FrameResult a2 =
        shd.execute(FrameRequest::aloha(128, 1.0, 77), shd_rng);
    EXPECT_EQ(a1.states, a2.states);
    EXPECT_EQ(a1.tx, a2.tx);

    const FrameResult s1 =
        seq.execute(FrameRequest::single_slot(0.001, 55), seq_rng);
    const FrameResult s2 =
        shd.execute(FrameRequest::single_slot(0.001, 55), shd_rng);
    EXPECT_EQ(s1.single, s2.single);
    EXPECT_EQ(s1.tx, s2.tx);

    const FrameResult l1 =
        seq.execute(FrameRequest::lottery(32, 66), seq_rng);
    const FrameResult l2 =
        shd.execute(FrameRequest::lottery(32, 66), shd_rng);
    EXPECT_EQ(l1.busy.words(), l2.busy.words());
    EXPECT_EQ(l1.tx, l2.tx);

    expect_same_rng(seq_rng, shd_rng);
    EXPECT_EQ(shd.counters().sharded_walks, 3u);
  }
}

// Every non-Bloom shape — including stochastic-persistence ALOHA — is a
// pure function of the seed under the sharded walk: bit-identical
// results and caller-RNG stream position for 1, 4 and 8 shards, with
// both a perfect and an imperfect channel in the loop.
TEST(FrameEngineShardedShapes, ShardCountInvariance) {
  const TagPopulation pop = test_pop(3000);
  std::vector<FrameRequest> batch;
  batch.push_back(FrameRequest::aloha(128, 0.4, 81));
  batch.push_back(FrameRequest::aloha(64, 1.0, 82));
  batch.push_back(FrameRequest::single_slot(0.01, 83));
  batch.push_back(FrameRequest::lottery(32, 84));
  for (const Channel ch : {Channel{}, Channel{ChannelModel{0.05, 0.02}}}) {
    for (const std::uint32_t shards : {4u, 8u}) {
      FrameEngine one(pop, ch, FrameMode::kExact, sharded_policy(1));
      FrameEngine many(pop, ch, FrameMode::kExact, sharded_policy(shards));
      util::Xoshiro256ss one_rng(29);
      util::Xoshiro256ss many_rng(29);
      const auto ref = one.execute_batch(batch, one_rng);
      const auto res = many.execute_batch(batch, many_rng);
      ASSERT_EQ(res.size(), ref.size());
      for (std::size_t i = 0; i < res.size(); ++i) {
        EXPECT_EQ(ref[i].states, res[i].states) << "frame " << i;
        EXPECT_EQ(ref[i].busy.words(), res[i].busy.words()) << "frame " << i;
        EXPECT_EQ(ref[i].single, res[i].single) << "frame " << i;
        EXPECT_EQ(ref[i].tx, res[i].tx) << "frame " << i;
      }
      expect_same_rng(one_rng, many_rng);
    }
  }
}

// Stochastic-persistence ALOHA (p < 1) repacks its per-tag draws into the
// counter-addressed stream, so sharded-vs-sequential promises the same
// law: two-sample KS on per-frame busy-slot counts.
TEST(FrameEngineShardedShapes, AlohaStochasticMatchesSequentialLaw) {
  const TagPopulation pop = test_pop(1500);
  const Channel ch;
  std::vector<double> sharded_counts;
  std::vector<double> sequential_counts;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    FrameEngine sharded(pop, ch, FrameMode::kExact, sharded_policy(4));
    util::Xoshiro256ss shd_rng(1200 + trial);
    sharded_counts.push_back(static_cast<double>(busy_states(
        sharded.execute(FrameRequest::aloha(128, 0.35, 10 + trial), shd_rng)
            .states)));
    FrameEngine sequential(pop, ch, FrameMode::kExact);
    util::Xoshiro256ss seq_rng(8200 + trial);
    sequential_counts.push_back(static_cast<double>(busy_states(
        sequential.execute(FrameRequest::aloha(128, 0.35, 10 + trial), seq_rng)
            .states)));
  }
  const double d = math::ks_statistic(sharded_counts, sequential_counts);
  const double p =
      math::ks_pvalue(d, sharded_counts.size(), sequential_counts.size());
  EXPECT_GT(p, 1e-3) << "KS D=" << d;
}

// ---- the batched sampler (sampled mode, sharded policy) ---------------

std::vector<FrameRequest> sampled_mix_batch(std::uint64_t seed_base) {
  std::vector<FrameRequest> batch;
  auto cfg = bloom_cfg(hash::PersistenceMode::kIdealBernoulli);
  cfg.seeds = {seed_base, seed_base + 1, seed_base + 2};
  batch.push_back(FrameRequest::bloom(cfg));
  batch.push_back(FrameRequest::aloha(256, 0.01, seed_base + 3));
  batch.push_back(FrameRequest::single_slot(3e-5, seed_base + 4));
  batch.push_back(FrameRequest::lottery(32, seed_base + 5));
  return batch;
}

// The batched sampler is a pure function of the seed: bit-identical
// results and caller-RNG position for 1/4/8 shards and with the SIMD
// scatter kernel on or off, under both channels.
TEST(FrameEngineSampledSharded, ShardCountAndSimdInvariance) {
  const std::size_t n = 200000;
  const auto batch = sampled_mix_batch(400);
  for (const Channel ch : {Channel{}, Channel{ChannelModel{0.05, 0.02}}}) {
    FrameEngine one(n, ch);
    one.set_policy(sharded_policy(1));
    util::Xoshiro256ss one_rng(37);
    const auto ref = one.execute_batch(batch, one_rng);
    for (const std::uint32_t shards : {4u, 8u}) {
      for (const bool simd : {true, false}) {
        FrameEngine many(n, ch);
        ExecutionPolicy policy = sharded_policy(shards);
        policy.allow_simd = simd;
        many.set_policy(policy);
        util::Xoshiro256ss many_rng(37);
        const auto res = many.execute_batch(batch, many_rng);
        ASSERT_EQ(res.size(), ref.size());
        for (std::size_t i = 0; i < res.size(); ++i) {
          EXPECT_EQ(ref[i].busy.words(), res[i].busy.words())
              << "shards " << shards << " simd " << simd << " frame " << i;
          EXPECT_EQ(ref[i].states, res[i].states) << "frame " << i;
          EXPECT_EQ(ref[i].single, res[i].single) << "frame " << i;
          EXPECT_EQ(ref[i].tx, res[i].tx) << "frame " << i;
        }
        util::Xoshiro256ss probe(37);
        one.execute_batch(batch, probe);  // advance a twin stream
        expect_same_rng(probe, many_rng);
      }
    }
  }
}

// Single-slot and lottery draw no scatter stream — the sampler makes the
// exact same caller-RNG draws in the same order as the legacy sampled
// executors, so a single-frame request is bit-identical, RNG included.
TEST(FrameEngineSampledSharded, NonScatterShapesBitIdenticalToLegacy) {
  const std::size_t n = 50000;
  for (const Channel ch : {Channel{}, Channel{ChannelModel{0.05, 0.02}}}) {
    util::Xoshiro256ss ref_rng(43);
    util::Xoshiro256ss eng_rng(43);
    FrameEngine engine(n, ch);
    engine.set_policy(sharded_policy(4));

    const SlotState ref_single = ref_sampled_single_slot(n, 3e-5, ch, ref_rng);
    EXPECT_EQ(ref_single,
              engine.execute(FrameRequest::single_slot(3e-5, 0), eng_rng)
                  .single);

    const util::BitVector ref_lottery =
        ref_sampled_lottery_frame(n, 32, ch, ref_rng);
    EXPECT_EQ(ref_lottery.words(),
              engine.execute(FrameRequest::lottery(32, 0), eng_rng)
                  .busy.words());

    expect_same_rng(ref_rng, eng_rng);
    EXPECT_EQ(engine.counters().sampled_batches, 2u);
  }
}

// Bloom and ALOHA responses scatter through the counter-addressed stream
// instead of rng.below(), so the sampler promises the legacy law, not
// the legacy bits: two-sample KS on per-frame busy counts.
TEST(FrameEngineSampledSharded, ScatterShapesMatchLegacyLaw) {
  const std::size_t n = 20000;
  const Channel ch;
  // p = 4/1024: ~234 responses over 512 slots — well short of
  // saturation, so the busy counts actually vary trial to trial.
  const auto cfg = bloom_cfg(hash::PersistenceMode::kIdealBernoulli, 4);
  std::vector<double> sampler_bloom, legacy_bloom;
  std::vector<double> sampler_aloha, legacy_aloha;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    FrameEngine engine(n, ch);
    engine.set_policy(sharded_policy(4));
    util::Xoshiro256ss eng_rng(2200 + trial);
    sampler_bloom.push_back(static_cast<double>(
        engine.execute(FrameRequest::bloom(cfg), eng_rng)
            .busy.count_ones()));
    sampler_aloha.push_back(static_cast<double>(busy_states(
        engine.execute(FrameRequest::aloha(256, 0.01, 0), eng_rng)
            .states)));
    util::Xoshiro256ss ref_rng(7200 + trial);
    legacy_bloom.push_back(static_cast<double>(
        ref_sampled_bloom_frame(n, cfg, ch, ref_rng).count_ones()));
    legacy_aloha.push_back(static_cast<double>(
        busy_states(ref_sampled_aloha_frame(n, 256, 0.01, ch, ref_rng))));
  }
  const double db = math::ks_statistic(sampler_bloom, legacy_bloom);
  EXPECT_GT(math::ks_pvalue(db, sampler_bloom.size(), legacy_bloom.size()),
            1e-3)
      << "bloom KS D=" << db;
  const double da = math::ks_statistic(sampler_aloha, legacy_aloha);
  EXPECT_GT(math::ks_pvalue(da, sampler_aloha.size(), legacy_aloha.size()),
            1e-3)
      << "aloha KS D=" << da;
}

TEST(FrameEngineSampledSharded, CountsSampledBatches) {
  FrameEngine engine(10000, Channel{});
  engine.set_policy(sharded_policy(4));
  util::Xoshiro256ss rng(1);
  engine.execute_batch(sampled_mix_batch(600), rng);
  EXPECT_EQ(engine.counters().sampled_batches, 1u);
  EXPECT_EQ(engine.counters().sharded_walks, 1u);
  EXPECT_EQ(engine.counters().batches, 1u);
  engine.execute(FrameRequest::single_slot(0.001, 7), rng);
  EXPECT_EQ(engine.counters().sampled_batches, 2u);
  EXPECT_EQ(engine.counters().sharded_walks, 2u);

  EngineCounters sum;
  sum += engine.counters();
  sum += engine.counters();
  EXPECT_EQ(sum.sampled_batches, 4u);
}

// ---- counters ---------------------------------------------------------

TEST(FrameEngineCounters, CountFramesSlotsAndTransmissions) {
  const TagPopulation pop = test_pop(500);
  const Channel ch;
  FrameEngine engine(pop, ch, FrameMode::kExact);
  util::Xoshiro256ss rng(1);

  auto cfg = bloom_cfg(hash::PersistenceMode::kRnBits, 1024 /* p = 1 */);
  const FrameResult bloom = engine.execute(FrameRequest::bloom(cfg), rng);
  engine.execute(FrameRequest::aloha(64, 1.0, 2), rng);
  engine.execute(FrameRequest::single_slot(1.0, 3), rng);
  engine.execute(FrameRequest::lottery(32, 4), rng);

  const EngineCounters& c = engine.counters();
  EXPECT_EQ(c.of(FrameShape::kBloom).frames, 1u);
  EXPECT_EQ(c.of(FrameShape::kBloom).slots, cfg.w);
  // p = 1: every tag answers in k slots / its one ALOHA slot / the single
  // slot / its lottery slot.
  EXPECT_EQ(c.of(FrameShape::kBloom).tag_tx, bloom.tx);
  EXPECT_EQ(bloom.tx, 500u * cfg.k);
  EXPECT_EQ(c.of(FrameShape::kAloha).tag_tx, 500u);
  EXPECT_EQ(c.of(FrameShape::kSingleSlot).tag_tx, 500u);
  EXPECT_EQ(c.of(FrameShape::kSingleSlot).slots, 1u);
  EXPECT_EQ(c.of(FrameShape::kLottery).tag_tx, 500u);
  EXPECT_EQ(c.total().frames, 4u);
  EXPECT_EQ(c.total().slots, cfg.w + 64u + 1u + 32u);

  EngineCounters sum;
  sum += c;
  sum += c;
  EXPECT_EQ(sum.total().frames, 8u);
  EXPECT_EQ(sum.of(FrameShape::kBloom).tag_tx, 2u * bloom.tx);

  engine.reset_counters();
  EXPECT_EQ(engine.counters().total().frames, 0u);
}

// ---- the adaptive policy (ExecutionPolicy::automatic) -----------------
//
// kAuto's contract: whatever the cost model decides, results are
// bit-identical for any shard count (stream-preserving batches because
// both walks agree bit-for-bit, law-divergent batches because the
// decision is pinned to the committed floor and the sharded walk itself
// is shard-count invariant). These tests drive the real engine through
// kAuto at pool sizes 1/4/8 and against the sequential policy.

TEST(FrameEngineAuto, ResultsInvariantAcrossShardHints) {
  const TagPopulation pop = test_pop(3000);
  const Channel ch;
  const std::vector<FrameRequest> batch = {
      FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kRnBits)),
      FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kIdealBernoulli)),
      FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kSharedDraw)),
      FrameRequest::aloha(128, 1.0, 5),
      FrameRequest::aloha(128, 0.25, 6),
      FrameRequest::single_slot(0.01, 7),
      FrameRequest::lottery(32, 8),
  };
  for (const FrameMode mode : {FrameMode::kExact, FrameMode::kSampled}) {
    std::vector<std::vector<FrameResult>> runs;
    std::vector<std::uint64_t> next_draw;
    for (const std::uint32_t shards : {1u, 4u, 8u}) {
      FrameEngine engine(pop, ch, mode, ExecutionPolicy::automatic(shards));
      util::Xoshiro256ss rng(99);
      runs.push_back(engine.execute_batch(batch, rng));
      next_draw.push_back(rng());
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      ASSERT_EQ(runs[0].size(), runs[i].size());
      for (std::size_t f = 0; f < runs[0].size(); ++f) {
        EXPECT_EQ(runs[0][f].busy.words(), runs[i][f].busy.words());
        EXPECT_EQ(runs[0][f].states, runs[i][f].states);
        EXPECT_EQ(runs[0][f].single, runs[i][f].single);
        EXPECT_EQ(runs[0][f].tx, runs[i][f].tx);
      }
      // Caller-RNG stream position is part of the contract.
      EXPECT_EQ(next_draw[0], next_draw[i]);
    }
  }
}

TEST(FrameEngineAuto, StreamPreservingFramesMatchSequentialExactly) {
  // Per-frame execute() through kAuto, for every stream-preserving
  // (shape, mode) pair: bit-identical to the sequential policy,
  // including the RNG stream — regardless of which walk the model
  // picked.
  const TagPopulation pop = test_pop(2500);
  const Channel ch;
  const std::vector<FrameRequest> frames = {
      FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kRnBits)),
      FrameRequest::aloha(256, 1.0, 3),
      FrameRequest::single_slot(0.5, 4),
      FrameRequest::lottery(32, 5),
  };
  FrameEngine seq(pop, ch, FrameMode::kExact);
  FrameEngine adaptive(pop, ch, FrameMode::kExact,
                       ExecutionPolicy::automatic(4));
  util::Xoshiro256ss seq_rng(21);
  util::Xoshiro256ss auto_rng(21);
  for (const FrameRequest& r : frames) {
    const FrameResult a = seq.execute(r, seq_rng);
    const FrameResult b = adaptive.execute(r, auto_rng);
    EXPECT_EQ(a.busy.words(), b.busy.words());
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.single, b.single);
    EXPECT_EQ(a.tx, b.tx);
    expect_same_rng(seq_rng, auto_rng);
  }
}

TEST(FrameEngineAuto, LawDivergentFramesMatchSequentialLaw) {
  // Stochastic persistence through kAuto realises the sequential law
  // (the decision may route either walk; both are law-equivalent).
  const TagPopulation pop = test_pop(1500);
  const Channel ch;
  const auto cfg = bloom_cfg(hash::PersistenceMode::kIdealBernoulli, 256);
  std::vector<double> seq_occupancy, auto_occupancy;
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    util::Xoshiro256ss s_rng(1000 + trial);
    util::Xoshiro256ss a_rng(1000 + trial);
    FrameEngine seq(pop, ch, FrameMode::kExact);
    FrameEngine adaptive(pop, ch, FrameMode::kExact,
                         ExecutionPolicy::automatic(4));
    seq_occupancy.push_back(static_cast<double>(
        seq.execute(FrameRequest::bloom(cfg), s_rng).busy.count_ones()));
    auto_occupancy.push_back(static_cast<double>(
        adaptive.execute(FrameRequest::bloom(cfg), a_rng).busy.count_ones()));
  }
  const double d = math::ks_statistic(seq_occupancy, auto_occupancy);
  if (d > 0.0) {  // d == 0 ⇔ kAuto routed sequential: samples identical
    const double p =
        math::ks_pvalue(d, seq_occupancy.size(), auto_occupancy.size());
    EXPECT_GT(p, 1e-3) << "KS D=" << d;
  }
}

TEST(FrameEngineAuto, CountsEveryDecision) {
  const TagPopulation pop = test_pop(2000);
  const Channel ch;
  FrameEngine engine(pop, ch, FrameMode::kExact,
                     ExecutionPolicy::automatic());
  util::Xoshiro256ss rng(3);
  engine.execute(FrameRequest::aloha(64, 1.0, 1), rng);
  engine.execute(FrameRequest::lottery(32, 2), rng);
  const std::vector<FrameRequest> batch(
      4, FrameRequest::bloom(bloom_cfg(hash::PersistenceMode::kRnBits)));
  engine.execute_batch(batch, rng);
  const EngineCounters& c = engine.counters();
  // Two per-frame decisions plus one batch-wide decision.
  EXPECT_EQ(c.auto_sharded + c.auto_sequential, 3u);
  // And the sequential/sharded bookkeeping stays consistent: every
  // sharded decision produced a sharded walk.
  EXPECT_EQ(c.sharded_walks, c.auto_sharded);
}

}  // namespace
}  // namespace bfce::rfid
