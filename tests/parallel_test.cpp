// Tests for the parallel_for primitive and its determinism contract.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

namespace bfce::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(0, kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, HandlesEmptyRange) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; }, 4);
  parallel_for(7, 3, [&](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); }, 3);
  EXPECT_EQ(sum.load(), 145u);  // 10+11+...+19
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> visits(3);
  parallel_for(0, 3, [&](std::size_t i) { visits[i].fetch_add(1); }, 64);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  // The determinism contract: writing f(i) into slot i yields identical
  // vectors regardless of parallelism.
  constexpr std::size_t kN = 5000;
  auto run = [&](unsigned threads) {
    std::vector<double> out(kN);
    parallel_for(0, kN,
                 [&](std::size_t i) {
                   out[i] = static_cast<double>(i * i % 97) / 7.0;
                 },
                 threads);
    return out;
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(1), run(8));
}

TEST(DefaultThreadCount, IsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(DefaultThreadCount, HonoursEnvOverride) {
  ::setenv("BFCE_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  ::unsetenv("BFCE_THREADS");
}

TEST(DefaultThreadCount, RejectsGarbageEnvValues) {
  // "abc" used to strtol to 0 and silently fall through; any non-integer,
  // zero, negative, trailing-junk, or absurd value must fall back to the
  // hardware count (>= 1), never to 0 and never to a truncated parse.
  const unsigned fallback = [] {
    ::unsetenv("BFCE_THREADS");
    return default_thread_count();
  }();
  for (const char* bad :
       {"abc", "0", "-4", "8x", "", " ", "4.5", "99999999999999999999"}) {
    ::setenv("BFCE_THREADS", bad, 1);
    EXPECT_EQ(default_thread_count(), fallback) << "BFCE_THREADS=" << bad;
  }
  ::unsetenv("BFCE_THREADS");
}

TEST(DefaultThreadCount, WarnsOnceOnGarbage) {
  // The diagnostic is once-per-process; this test may run after the
  // rejection test above has already tripped it, so assert the invariant
  // that holds either way: repeated garbage lookups never warn twice.
  ::setenv("BFCE_THREADS", "not-a-number", 1);
  testing::internal::CaptureStderr();
  default_thread_count();
  default_thread_count();
  const std::string err = testing::internal::GetCapturedStderr();
  const auto first = err.find("BFCE_THREADS");
  if (first != std::string::npos) {
    EXPECT_EQ(err.find("BFCE_THREADS", first + 1), std::string::npos)
        << "warning repeated: " << err;
  }
  ::unsetenv("BFCE_THREADS");
}

}  // namespace
}  // namespace bfce::util
