// Tests for the channel model (perfect + error injection).
#include "rfid/channel.hpp"

#include <gtest/gtest.h>

namespace bfce::rfid {
namespace {

TEST(Channel, PerfectMapping) {
  Channel ch;
  util::Xoshiro256ss rng(1);
  EXPECT_EQ(ch.observe(0, rng), SlotState::kIdle);
  EXPECT_EQ(ch.observe(1, rng), SlotState::kSingle);
  EXPECT_EQ(ch.observe(2, rng), SlotState::kCollision);
  EXPECT_EQ(ch.observe(100, rng), SlotState::kCollision);
}

TEST(Channel, IsBusyHelper) {
  EXPECT_FALSE(is_busy(SlotState::kIdle));
  EXPECT_TRUE(is_busy(SlotState::kSingle));
  EXPECT_TRUE(is_busy(SlotState::kCollision));
}

TEST(Channel, ModelPerfectFlag) {
  EXPECT_TRUE(ChannelModel{}.perfect());
  EXPECT_FALSE((ChannelModel{0.01, 0.0}).perfect());
  EXPECT_FALSE((ChannelModel{0.0, 0.01}).perfect());
}

TEST(Channel, FalseBusyRateApproximatelyHonoured) {
  Channel ch(ChannelModel{0.10, 0.0});
  util::Xoshiro256ss rng(2);
  int busy = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (is_busy(ch.observe(0, rng))) ++busy;
  }
  EXPECT_NEAR(static_cast<double>(busy) / kTrials, 0.10, 0.005);
}

TEST(Channel, FalseIdleRateApproximatelyHonoured) {
  Channel ch(ChannelModel{0.0, 0.25});
  util::Xoshiro256ss rng(3);
  int idle = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (!is_busy(ch.observe(3, rng))) ++idle;
  }
  EXPECT_NEAR(static_cast<double>(idle) / kTrials, 0.25, 0.01);
}

TEST(Channel, FalseIdleDoesNotAffectTrulyIdleSlots) {
  Channel ch(ChannelModel{0.0, 0.5});
  util::Xoshiro256ss rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(ch.observe(0, rng), SlotState::kIdle);
  }
}

TEST(Channel, FalseBusyDoesNotAffectTrulyBusySlots) {
  Channel ch(ChannelModel{0.5, 0.0});
  util::Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(is_busy(ch.observe(2, rng)));
  }
}

}  // namespace
}  // namespace bfce::rfid
