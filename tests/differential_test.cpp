// Tests for the differential (churn) estimator built on BFCE's Bloom
// machinery.
#include "core/differential.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rfid/population.hpp"

namespace bfce::core {
namespace {

/// Builds reference/current populations with `stay` common tags,
/// `depart` only in the reference and `arrive` only in the current.
struct Scenario {
  rfid::TagPopulation reference;
  rfid::TagPopulation current;
};

Scenario make_scenario(std::size_t stay, std::size_t depart,
                       std::size_t arrive, std::uint64_t seed = 1) {
  const auto all = rfid::make_population(
      stay + depart + arrive, rfid::TagIdDistribution::kT1Uniform, seed);
  std::vector<rfid::Tag> ref;
  std::vector<rfid::Tag> cur;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i < stay) {
      ref.push_back(all[i]);
      cur.push_back(all[i]);
    } else if (i < stay + depart) {
      ref.push_back(all[i]);
    } else {
      cur.push_back(all[i]);
    }
  }
  return Scenario{rfid::TagPopulation(std::move(ref)),
                  rfid::TagPopulation(std::move(cur))};
}

ChurnEstimate run(const Scenario& s, DifferentialConfig cfg,
                  std::uint64_t seed = 7) {
  const rfid::Channel ch;
  util::Xoshiro256ss rng(seed);
  const auto ref = take_snapshot(s.reference, cfg, ch, rng);
  const auto cur = take_snapshot(s.current, cfg, ch, rng);
  return compare_snapshots(ref, cur, cfg);
}

TEST(Differential, TuneForTargetsTheLoad) {
  DifferentialConfig cfg;
  cfg.tune_for(10000.0);
  EXPECT_NEAR(3.0 * cfg.p * 10000.0 / 8192.0, 1.0, 1e-9);
  cfg.tune_for(100.0);  // small n: p clamps at 1
  EXPECT_DOUBLE_EQ(cfg.p, 1.0);
  cfg.tune_for(1e9);  // vast n: p clamps at the 1/1024 floor
  EXPECT_DOUBLE_EQ(cfg.p, 1.0 / 1024.0);
}

TEST(Differential, IdenticalPopulationsShowNoChurn) {
  const Scenario s = make_scenario(3000, 0, 0);
  DifferentialConfig cfg;
  cfg.tune_for(3000.0);
  const ChurnEstimate e = run(s, cfg);
  EXPECT_DOUBLE_EQ(e.departed, 0.0);
  EXPECT_DOUBLE_EQ(e.arrived, 0.0);
  EXPECT_NEAR(e.stayed, 3000.0, 3000.0 * 0.1);
  EXPECT_FALSE(e.degenerate);
}

TEST(Differential, PureDeparturesAreRecovered) {
  const Scenario s = make_scenario(8000, 2000, 0);
  DifferentialConfig cfg;
  cfg.tune_for(10000.0);
  const ChurnEstimate e = run(s, cfg);
  EXPECT_NEAR(e.departed, 2000.0, 2000.0 * 0.2);
  EXPECT_LT(e.arrived, 200.0);
  EXPECT_NEAR(e.stayed, 8000.0, 8000.0 * 0.1);
}

TEST(Differential, PureArrivalsAreRecovered) {
  const Scenario s = make_scenario(8000, 0, 2000);
  DifferentialConfig cfg;
  cfg.tune_for(10000.0);
  const ChurnEstimate e = run(s, cfg);
  EXPECT_NEAR(e.arrived, 2000.0, 2000.0 * 0.2);
  EXPECT_LT(e.departed, 200.0);
}

TEST(Differential, SimultaneousChurnSeparates) {
  const Scenario s = make_scenario(10000, 3000, 1500);
  DifferentialConfig cfg;
  cfg.tune_for(14000.0);
  const ChurnEstimate e = run(s, cfg);
  EXPECT_NEAR(e.departed, 3000.0, 3000.0 * 0.25);
  EXPECT_NEAR(e.arrived, 1500.0, 1500.0 * 0.35);
  EXPECT_NEAR(e.stayed, 10000.0, 10000.0 * 0.1);
}

TEST(Differential, SamplingExtendsToLargePopulations) {
  // n = 200000 with tuned p ≈ w/(k·n): the deterministic sample keeps
  // the math intact at scale.
  const Scenario s = make_scenario(160000, 40000, 0, 3);
  DifferentialConfig cfg;
  cfg.tune_for(200000.0);
  const ChurnEstimate e = run(s, cfg);
  EXPECT_NEAR(e.departed, 40000.0, 40000.0 * 0.30);
  EXPECT_NEAR(e.stayed, 160000.0, 160000.0 * 0.15);
}

TEST(Differential, SnapshotDeterministicGivenSeeds) {
  const Scenario s = make_scenario(5000, 0, 0);
  DifferentialConfig cfg;
  cfg.tune_for(5000.0);
  const rfid::Channel ch;
  util::Xoshiro256ss rng1(1);
  util::Xoshiro256ss rng2(2);  // channel RNG differs; perfect channel
  const auto a = take_snapshot(s.reference, cfg, ch, rng1);
  const auto b = take_snapshot(s.reference, cfg, ch, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.get(i), b.get(i)) << i;
  }
}

TEST(Differential, SaturatedSnapshotIsFlagged) {
  const Scenario s = make_scenario(100000, 0, 0);
  DifferentialConfig cfg;  // p = 1: λ = 3·100000/8192 ≈ 37 — saturated
  const ChurnEstimate e = run(s, cfg);
  EXPECT_TRUE(e.degenerate);
}

TEST(Differential, NestedBitmapsForPureDepartures) {
  // With no arrivals the current busy set is a subset of the reference's
  // (same seeds, deterministic sample): every busy-now bit is busy-ref.
  const Scenario s = make_scenario(4000, 1000, 0, 9);
  DifferentialConfig cfg;
  cfg.tune_for(5000.0);
  const rfid::Channel ch;
  util::Xoshiro256ss rng(11);
  const auto ref = take_snapshot(s.reference, cfg, ch, rng);
  const auto cur = take_snapshot(s.current, cfg, ch, rng);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (cur.get(i)) {
      EXPECT_TRUE(ref.get(i)) << i;
    }
  }
}

}  // namespace
}  // namespace bfce::core
