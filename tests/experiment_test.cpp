// Tests for the Monte-Carlo experiment harness.
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bfce.hpp"

namespace bfce::sim {
namespace {

EstimatorFactory bfce_factory() {
  return [] { return std::make_unique<core::BfceEstimator>(); };
}

TEST(Experiment, ProducesOneRecordPerTrial) {
  const auto pop = rfid::make_population(
      10000, rfid::TagIdDistribution::kT1Uniform, 1);
  ExperimentConfig cfg;
  cfg.trials = 9;
  cfg.mode = rfid::FrameMode::kSampled;
  const auto records = run_experiment(pop, bfce_factory(), cfg);
  EXPECT_EQ(records.size(), 9u);
  for (const TrialRecord& r : records) {
    EXPECT_GT(r.n_hat, 0.0);
    EXPECT_GT(r.time_s, 0.0);
    EXPECT_GE(r.accuracy, 0.0);
  }
}

TEST(Experiment, DeterministicAcrossThreadCounts) {
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT2ApproxNormal, 2);
  ExperimentConfig cfg;
  cfg.trials = 16;
  cfg.mode = rfid::FrameMode::kSampled;
  cfg.seed = 31337;

  cfg.threads = 1;
  const auto serial = run_experiment(pop, bfce_factory(), cfg);
  cfg.threads = 4;
  const auto parallel = run_experiment(pop, bfce_factory(), cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].n_hat, parallel[i].n_hat) << i;
    EXPECT_DOUBLE_EQ(serial[i].time_s, parallel[i].time_s) << i;
  }
}

TEST(Experiment, TrialsAreIndependentStreams) {
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 3);
  ExperimentConfig cfg;
  cfg.trials = 8;
  cfg.mode = rfid::FrameMode::kSampled;
  const auto records = run_experiment(pop, bfce_factory(), cfg);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_NE(records[i].n_hat, records[0].n_hat) << i;
  }
}

TEST(Experiment, MasterSeedChangesEverything) {
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 4);
  ExperimentConfig cfg;
  cfg.trials = 4;
  cfg.mode = rfid::FrameMode::kSampled;
  cfg.seed = 1;
  const auto a = run_experiment(pop, bfce_factory(), cfg);
  cfg.seed = 2;
  const auto b = run_experiment(pop, bfce_factory(), cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i].n_hat, b[i].n_hat);
  }
}

TEST(SummarizeRecords, ComputesViolationRate) {
  std::vector<TrialRecord> records(4);
  records[0].accuracy = 0.01;
  records[1].accuracy = 0.09;  // violates ε = 0.05
  records[2].accuracy = 0.02;
  records[3].accuracy = 0.20;  // violates
  records[0].time_s = records[1].time_s = 1.0;
  records[2].time_s = records[3].time_s = 3.0;
  const ExperimentSummary s = summarize_records(records, 0.05);
  EXPECT_EQ(s.trials, 4u);
  EXPECT_DOUBLE_EQ(s.violation_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.accuracy.mean, 0.08);
  EXPECT_DOUBLE_EQ(s.time_s.mean, 2.0);
}

TEST(SummarizeRecords, EmptyInput) {
  const ExperimentSummary s = summarize_records({}, 0.05);
  EXPECT_EQ(s.trials, 0u);
  EXPECT_DOUBLE_EQ(s.violation_rate, 0.0);
}

TEST(Experiment, ChannelModelReachesTheProtocol) {
  // A violently noisy channel must visibly degrade accuracy relative to
  // the perfect channel — proving the config plumbs through.
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 5);
  ExperimentConfig clean;
  clean.trials = 10;
  clean.mode = rfid::FrameMode::kSampled;
  ExperimentConfig noisy = clean;
  noisy.channel = rfid::ChannelModel{0.10, 0.10};
  const auto s_clean = summarize_records(
      run_experiment(pop, bfce_factory(), clean), 0.05);
  const auto s_noisy = summarize_records(
      run_experiment(pop, bfce_factory(), noisy), 0.05);
  EXPECT_GT(s_noisy.accuracy.mean, 2.0 * s_clean.accuracy.mean);
}

}  // namespace
}  // namespace bfce::sim
