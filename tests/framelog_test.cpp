// Tests for the frame log and the protocol structure it reveals.
#include "rfid/framelog.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/bfce.hpp"
#include "estimators/src_protocol.hpp"
#include "estimators/zoe.hpp"
#include "rfid/reader.hpp"

namespace bfce::rfid {
namespace {

TEST(FrameLog, StartsEmptyAndCounts) {
  FrameLog log;
  EXPECT_EQ(log.size(), 0u);
  EXPECT_DOUBLE_EQ(log.total_duration_us(), 0.0);
  log.append(FrameRecord{FrameKind::kProbe, 32, 0.008, 5, 1000.0});
  log.append(FrameRecord{FrameKind::kAloha, 512, 0.1, 100, 2000.0});
  log.append(FrameRecord{FrameKind::kProbe, 32, 0.010, 9, 1000.0});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(FrameKind::kProbe), 2u);
  EXPECT_EQ(log.count(FrameKind::kAloha), 1u);
  EXPECT_EQ(log.count(FrameKind::kLottery), 0u);
  EXPECT_DOUBLE_EQ(log.total_duration_us(), 4000.0);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(FrameLog, KindNames) {
  EXPECT_EQ(to_string(FrameKind::kProbe), "probe");
  EXPECT_EQ(to_string(FrameKind::kBloomRough), "bloom-rough");
  EXPECT_EQ(to_string(FrameKind::kBloomAccurate), "bloom-accurate");
  EXPECT_EQ(to_string(FrameKind::kSingleSlot), "single-slot");
  EXPECT_EQ(to_string(FrameKind::kLottery), "lottery");
}

TEST(FrameLog, TimelineRendersShares) {
  FrameLog log;
  log.append(FrameRecord{FrameKind::kProbe, 32, 0.008, 5, 2500.0});
  log.append(FrameRecord{FrameKind::kAloha, 512, 0.1, 100, 7500.0});
  std::ostringstream os;
  log.render_timeline(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("probe"), std::string::npos);
  EXPECT_NE(text.find("aloha"), std::string::npos);
  EXPECT_NE(text.find("25.0%"), std::string::npos);
  EXPECT_NE(text.find("75.0%"), std::string::npos);
}

TEST(FrameLog, EmptyTimelineIsSafe) {
  FrameLog log;
  std::ostringstream os;
  log.render_timeline(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(FrameLog, BfceHasTheTwoPhaseStructure) {
  const auto pop = make_population(50000, TagIdDistribution::kT1Uniform, 1);
  ReaderContext ctx(pop, 2, FrameMode::kSampled);
  FrameLog log;
  ctx.attach_log(&log);
  core::BfceEstimator bfce;
  const auto out = bfce.estimate(ctx, {0.05, 0.05});

  // Protocol structure: ≥1 probe, exactly one rough and one accurate
  // Bloom frame, in that order, and nothing else.
  EXPECT_GE(log.count(FrameKind::kProbe), 1u);
  EXPECT_EQ(log.count(FrameKind::kBloomRough), 1u);
  EXPECT_EQ(log.count(FrameKind::kBloomAccurate), 1u);
  EXPECT_EQ(log.size(), log.count(FrameKind::kProbe) + 2);
  EXPECT_EQ(log.records().back().kind, FrameKind::kBloomAccurate);
  EXPECT_EQ(log.records()[log.size() - 2].kind, FrameKind::kBloomRough);
  // The rough frame observed 1024 slots; the accurate one 8192.
  EXPECT_EQ(log.records()[log.size() - 2].slots_observed, 1024u);
  EXPECT_EQ(log.records().back().slots_observed, 8192u);
  // The logged durations account for the whole run.
  EXPECT_NEAR(log.total_duration_us(), out.time_us, 1.0);
}

TEST(FrameLog, ZoeIsAWallOfSingleSlots) {
  const auto pop = make_population(50000, TagIdDistribution::kT1Uniform, 3);
  ReaderContext ctx(pop, 4, FrameMode::kSampled);
  FrameLog log;
  ctx.attach_log(&log);
  estimators::ZoeEstimator zoe;
  zoe.estimate(ctx, {0.05, 0.05});
  // LOF rough rounds + thousands of single slots.
  EXPECT_EQ(log.count(FrameKind::kLottery), 10u);
  EXPECT_GT(log.count(FrameKind::kSingleSlot), 3000u);
}

TEST(FrameLog, SrcLogsItsMajorityRounds) {
  const auto pop = make_population(50000, TagIdDistribution::kT1Uniform, 5);
  ReaderContext ctx(pop, 6, FrameMode::kSampled);
  FrameLog log;
  ctx.attach_log(&log);
  estimators::SrcEstimator src;
  src.estimate(ctx, {0.05, 0.05});
  EXPECT_EQ(log.count(FrameKind::kAloha), 7u);  // m(0.05) = 7
  EXPECT_EQ(log.count(FrameKind::kLottery), 2u);
}

TEST(FrameLog, NoLogAttachedMeansNoOverheadOrRecords) {
  const auto pop = make_population(10000, TagIdDistribution::kT1Uniform, 7);
  ReaderContext ctx(pop, 8, FrameMode::kSampled);
  EXPECT_EQ(ctx.log(), nullptr);
  core::BfceEstimator bfce;
  const auto out = bfce.estimate(ctx, {0.05, 0.05});
  EXPECT_GT(out.n_hat, 0.0);  // estimation unaffected
}

}  // namespace
}  // namespace bfce::rfid
