// Deep tests for the PET log-log level-search estimator.
#include "estimators/pet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

TEST(PetDeep, QueryBudgetIsLogLog) {
  // Per round: level-0 check + top check + binary search over
  // max_level ⇒ ≤ 2 + ⌈log2(max_level)⌉ single-slot queries.
  PetParams params;
  params.rounds = 8;
  params.max_level = 40;
  PetEstimator est(params);
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 1);
  rfid::ReaderContext ctx(pop, 2);
  const auto out = est.estimate(ctx, {0.1, 0.1});
  const std::uint64_t per_round_cap =
      2 + static_cast<std::uint64_t>(std::ceil(std::log2(40.0)));
  EXPECT_LE(out.airtime.tag_bits, params.rounds * per_round_cap);
}

TEST(PetDeep, LevelTracksLog2N) {
  // Quadrupling n must raise the estimate by ≈ 4× (±2× FM noise band).
  PetEstimator est;
  auto mean_estimate = [&](std::size_t n) {
    const auto pop =
        rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, n);
    math::RunningStats s;
    for (int i = 0; i < 8; ++i) {
      rfid::ReaderContext ctx(pop, n + static_cast<std::uint64_t>(i));
      s.add(est.estimate(ctx, {0.1, 0.1}).n_hat);
    }
    return s.mean();
  };
  const double at_8k = mean_estimate(8000);
  const double at_128k = mean_estimate(128000);
  const double growth = at_128k / at_8k;  // true ratio: 16
  EXPECT_GT(growth, 8.0);
  EXPECT_LT(growth, 32.0);
}

TEST(PetDeep, MoreRoundsNarrowTheLogSpread) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 3);
  auto log_spread = [&](std::uint32_t rounds) {
    PetParams params;
    params.rounds = rounds;
    PetEstimator est(params);
    math::RunningStats s;
    for (int i = 0; i < 25; ++i) {
      rfid::ReaderContext ctx(pop, 500 + static_cast<std::uint64_t>(i));
      s.add(std::log2(est.estimate(ctx, {0.1, 0.1}).n_hat));
    }
    return s.stddev();
  };
  EXPECT_GT(log_spread(2), 1.5 * log_spread(32));
}

TEST(PetDeep, EmptySystemReportsZero) {
  const auto pop =
      rfid::make_population(0, rfid::TagIdDistribution::kT1Uniform, 4);
  PetEstimator est;
  rfid::ReaderContext ctx(pop, 5);
  const auto out = est.estimate(ctx, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(out.n_hat, 0.0);
  EXPECT_EQ(out.rounds, 0u);
}

TEST(PetDeep, MaxLevelCeilingIsReported) {
  // With max_level too small for the population, every search tops out
  // and the estimate saturates near 1.29·2^max_level.
  PetParams params;
  params.max_level = 5;  // ceiling 2^5 = 32 << n
  PetEstimator est(params);
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 6);
  rfid::ReaderContext ctx(pop, 7);
  const auto out = est.estimate(ctx, {0.1, 0.1});
  EXPECT_NEAR(out.n_hat, 1.2897 * 32.0, 1.0);
}

TEST(PetDeep, CheaperPerRoundThanLof) {
  // PET's point vs LOF: the same level information for exponentially
  // fewer slots (log2(40) ≈ 6 queries vs a 32-slot frame).
  PetParams pp;
  pp.rounds = 10;
  PetEstimator pet(pp);
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 8);
  rfid::ReaderContext ctx(pop, 9);
  const auto out = pet.estimate(ctx, {0.1, 0.1});
  EXPECT_LT(out.airtime.tag_bits, 10u * 32u);  // under LOF's slot budget
}

}  // namespace
}  // namespace bfce::estimators
