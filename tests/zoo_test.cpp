// Tests for the extended estimator zoo (UPE, EZB, FNEB, ART, MLE, PET)
// and the name registry.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "estimators/art.hpp"
#include "estimators/ezb.hpp"
#include "estimators/fneb.hpp"
#include "estimators/mle.hpp"
#include "estimators/pet.hpp"
#include "estimators/registry.hpp"
#include "estimators/upe.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

/// Mean relative error of `est` over a few sampled-mode runs.
double mean_error(CardinalityEstimator& est, std::size_t n, int runs = 12,
                  std::uint64_t seed = 1) {
  const auto pop =
      rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, seed);
  math::RunningStats err;
  for (int i = 0; i < runs; ++i) {
    rfid::ReaderContext ctx(pop, seed * 1000 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    err.add(est.estimate(ctx, {0.05, 0.05}).relative_error(
        static_cast<double>(n)));
  }
  return err.mean();
}

TEST(Upe, InvertCollisionRatioRoundTrips) {
  for (double lambda : {0.2, 1.0, 1.594, 3.0, 6.0}) {
    const double c = 1.0 - (1.0 + lambda) * std::exp(-lambda);
    EXPECT_NEAR(UpeEstimator::invert_collision_ratio(c), lambda,
                1e-6 * (1.0 + lambda));
  }
}

TEST(Upe, AccurateAcrossScales) {
  UpeEstimator est;
  EXPECT_LT(mean_error(est, 10000), 0.08);
  EXPECT_LT(mean_error(est, 300000), 0.08);
}

TEST(Upe, PaysForWiderSlots) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 2);
  rfid::ReaderContext ctx(pop, 3, rfid::FrameMode::kSampled);
  UpeEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  // tag_bits counts slot_bits per slot, so it is a multiple of 10 beyond
  // the lottery pilot's 64 one-bit slots.
  EXPECT_EQ((out.airtime.tag_bits - 64) % est.params().slot_bits, 0u);
}

TEST(Ezb, RequiredRoundsShrinkWithFrameSize) {
  EXPECT_LT(EzbEstimator::required_rounds(0.05, 0.05, 1.594, 4096),
            EzbEstimator::required_rounds(0.05, 0.05, 1.594, 256));
}

TEST(Ezb, AccurateAcrossScales) {
  EzbEstimator est;
  EXPECT_LT(mean_error(est, 5000), 0.06);
  EXPECT_LT(mean_error(est, 500000), 0.06);
}

TEST(Fneb, AccurateWhenFrameDwarfsPopulation) {
  FnebEstimator est;
  EXPECT_LT(mean_error(est, 20000), 0.08);
  EXPECT_LT(mean_error(est, 200000), 0.08);
}

TEST(Fneb, EarlyTerminationKeepsSlotsCheap) {
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 4);
  rfid::ReaderContext ctx(pop, 5, rfid::FrameMode::kSampled);
  FnebEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  // 1537 rounds, each terminating after ~f/n ≈ 10 slots: far below the
  // announced 2^20 frame.
  EXPECT_LT(out.airtime.tag_bits, 200000u);
}

TEST(Art, AverageBusyRunUnitCases) {
  using S = rfid::SlotState;
  EXPECT_DOUBLE_EQ(ArtEstimator::average_busy_run({}), 0.0);
  EXPECT_DOUBLE_EQ(
      ArtEstimator::average_busy_run({S::kIdle, S::kIdle}), 0.0);
  // 110 1 0 111 → runs {2,1,3} → mean 2.
  EXPECT_DOUBLE_EQ(
      ArtEstimator::average_busy_run({S::kSingle, S::kCollision, S::kIdle,
                                      S::kSingle, S::kIdle, S::kSingle,
                                      S::kCollision, S::kSingle}),
      2.0);
}

TEST(Art, AccurateViaSequentialStopping) {
  ArtEstimator est;
  EXPECT_LT(mean_error(est, 50000), 0.08);
}

TEST(Art, StopsEarlyForLooseRequirements) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 6);
  rfid::ReaderContext a(pop, 7, rfid::FrameMode::kSampled);
  rfid::ReaderContext b(pop, 7, rfid::FrameMode::kSampled);
  ArtEstimator est;
  const auto strict = est.estimate(a, {0.03, 0.05});
  const auto loose = est.estimate(b, {0.3, 0.3});
  EXPECT_LT(loose.rounds, strict.rounds);
}

TEST(Mle, LikelihoodMaximizerRecoversSyntheticTruth) {
  // Build exact-expectation evidence for n = 80000 and check the
  // maximiser lands on it.
  constexpr std::uint32_t kF = 512;
  const double n_true = 80000.0;
  std::vector<MleEstimator::FrameEvidence> evidence;
  for (double p : {0.002, 0.005, 0.01}) {
    const double q = std::exp(-p * n_true / kF);
    evidence.push_back(
        {p, static_cast<std::uint32_t>(std::lround(q * kF))});
  }
  const double n_hat =
      MleEstimator::maximize_likelihood(evidence, kF, 1e8);
  EXPECT_NEAR(n_hat, n_true, n_true * 0.02);
}

TEST(Mle, AccurateAcrossScales) {
  MleEstimator est;
  EXPECT_LT(mean_error(est, 10000), 0.06);
  EXPECT_LT(mean_error(est, 1000000), 0.06);
}

TEST(Pet, LogLogCostPerRound) {
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 8);
  rfid::ReaderContext ctx(pop, 9);  // exact mode: level queries correlate
  PetEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  // 16 rounds × (≤ 2 + log2(40) ≈ 8 queries) single-bit slots.
  EXPECT_LT(out.airtime.tag_bits, 16u * 10u);
}

TEST(Pet, MagnitudeIsRight) {
  // PET is a log-domain estimator: assert the *magnitude*, not ε-level
  // accuracy.
  PetEstimator est;
  const auto pop = rfid::make_population(
      64000, rfid::TagIdDistribution::kT1Uniform, 10);
  math::RunningStats logerr;
  for (int i = 0; i < 10; ++i) {
    rfid::ReaderContext ctx(pop, 20 + static_cast<std::uint64_t>(i));
    const double n_hat = est.estimate(ctx, {0.05, 0.05}).n_hat;
    logerr.add(std::fabs(std::log2(n_hat / 64000.0)));
  }
  EXPECT_LT(logerr.mean(), 1.0);  // within a factor of 2 on average
}

TEST(Registry, BuildsEveryAdvertisedEstimator) {
  for (const std::string& name : estimator_names()) {
    const auto est = make_estimator(name);
    ASSERT_NE(est, nullptr) << name;
    EXPECT_EQ(est->name(), name);
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(make_estimator("NOPE"), nullptr);
  EXPECT_EQ(make_estimator(""), nullptr);
  EXPECT_EQ(make_estimator("bfce"), nullptr);  // names are case-sensitive
}

TEST(Registry, EveryEstimatorProducesAPositiveEstimate) {
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT2ApproxNormal, 11);
  for (const std::string& name : estimator_names()) {
    const auto est = make_estimator(name);
    rfid::ReaderContext ctx(pop, 12, rfid::FrameMode::kSampled);
    const EstimateOutcome out = est->estimate(ctx, {0.1, 0.1});
    EXPECT_GT(out.n_hat, 0.0) << name;
    EXPECT_GT(out.time_us, 0.0) << name;
  }
}

}  // namespace
}  // namespace bfce::estimators
