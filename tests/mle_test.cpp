// Deep tests for the multi-frame maximum-likelihood estimator.
#include "estimators/mle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

using Evidence = MleEstimator::FrameEvidence;

TEST(MleDeep, JointEvidenceFromDifferentLoadsAgrees) {
  // Exact-expectation frames at three very different persistences must
  // jointly pin the same n.
  constexpr std::uint32_t kF = 512;
  const double n_true = 40000.0;
  std::vector<Evidence> ev;
  for (double p : {0.001, 0.02, 0.08}) {
    const double q = std::exp(-p * n_true / kF);
    ev.push_back({p, static_cast<std::uint32_t>(std::lround(q * kF))});
  }
  EXPECT_NEAR(MleEstimator::maximize_likelihood(ev, kF, 1e8), n_true,
              n_true * 0.03);
}

TEST(MleDeep, SaturatedFramesContributeFinitely) {
  // empties = 0 (fully busy) must not produce NaN/inf; combined with one
  // informative frame the maximiser lands near the informative answer.
  constexpr std::uint32_t kF = 512;
  std::vector<Evidence> ev;
  ev.push_back({1.0, 0});  // hopeless saturated pilot frame
  const double n_true = 30000.0;
  const double p = 0.02;
  ev.push_back({p, static_cast<std::uint32_t>(
                       std::lround(std::exp(-p * n_true / kF) * kF))});
  const double n_hat = MleEstimator::maximize_likelihood(ev, kF, 1e8);
  EXPECT_TRUE(std::isfinite(n_hat));
  // The saturated frame only says "n is large"; consistent with 30k.
  EXPECT_NEAR(n_hat, n_true, n_true * 0.15);
}

TEST(MleDeep, AllIdleEvidencePushesTowardZero) {
  constexpr std::uint32_t kF = 512;
  const std::vector<Evidence> ev = {{0.5, kF}, {1.0, kF}};
  EXPECT_LT(MleEstimator::maximize_likelihood(ev, kF, 1e8), 10.0);
}

TEST(MleDeep, MoreFramesTightenTheEstimate) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 1);
  auto spread = [&](double eps) {
    MleEstimator est;
    math::RunningStats s;
    for (int i = 0; i < 25; ++i) {
      rfid::ReaderContext ctx(pop, 100 + static_cast<std::uint64_t>(i),
                              rfid::FrameMode::kSampled);
      s.add(est.estimate(ctx, {eps, 0.05}).n_hat);
    }
    return s.stddev();
  };
  EXPECT_GT(spread(0.2), 1.3 * spread(0.03));
}

TEST(MleDeep, FisherStopScalesRoundsWithEpsilon) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 2);
  MleEstimator est;
  rfid::ReaderContext a(pop, 3, rfid::FrameMode::kSampled);
  rfid::ReaderContext b(pop, 3, rfid::FrameMode::kSampled);
  const auto tight = est.estimate(a, {0.02, 0.05});
  const auto loose = est.estimate(b, {0.10, 0.05});
  // Rounds scale like 1/ε² up to the per-frame floor.
  EXPECT_GE(tight.rounds, 4 * loose.rounds);
}

TEST(MleDeep, ScheduleAdaptsPersistenceDownward) {
  // The pilot is coarse; after the first frames the MLE concentrates
  // and the load settles near the target. End-to-end accuracy across
  // scales is the observable consequence.
  MleEstimator est;
  for (std::size_t n : {3000UL, 2000000UL}) {
    const auto pop =
        rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, n);
    math::RunningStats err;
    for (int i = 0; i < 8; ++i) {
      rfid::ReaderContext ctx(pop, n + static_cast<std::uint64_t>(i),
                              rfid::FrameMode::kSampled);
      err.add(est.estimate(ctx, {0.05, 0.05})
                  .relative_error(static_cast<double>(n)));
    }
    EXPECT_LT(err.mean(), 0.06) << n;
  }
}

}  // namespace
}  // namespace bfce::estimators
