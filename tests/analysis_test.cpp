// Tests for the Theorem 1-4 analysis machinery and the Fig 4/5 numbers.
#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/erf.hpp"

namespace bfce::core {
namespace {

TEST(SlotLoad, MatchesDefinition) {
  // λ = k·p·n/w; the paper's running example: k=3, p=0.125, n=20000,
  // w=8192 → λ ≈ 0.9155.
  EXPECT_NEAR(slot_load(20000, 8192, 3, 0.125), 0.91552734375, 1e-12);
  EXPECT_DOUBLE_EQ(slot_load(0, 8192, 3, 0.5), 0.0);
}

TEST(IdleProbability, Theorem1Values) {
  EXPECT_DOUBLE_EQ(idle_probability(0.0), 1.0);
  EXPECT_NEAR(idle_probability(1.0), 1.0 / std::exp(1.0), 1e-15);
}

TEST(SigmaX, BernoulliDeviation) {
  // σ(X) = √(e^{−λ}(1−e^{−λ})), maximal 0.5 at e^{−λ} = 1/2 (λ = ln 2).
  EXPECT_DOUBLE_EQ(sigma_x(0.0), 0.0);
  EXPECT_NEAR(sigma_x(std::log(2.0)), 0.5, 1e-15);
  EXPECT_LT(sigma_x(5.0), 0.1);
}

TEST(EstimateFromRho, InvertsTheorem1Exactly) {
  // If ρ̄ = e^{−kpn/w} exactly, the estimator must return n exactly.
  for (double n : {1000.0, 50000.0, 500000.0, 5e6}) {
    const double p = 0.01;
    const double rho = std::exp(-slot_load(n, 8192, 3, p));
    EXPECT_NEAR(estimate_from_rho(rho, 8192, 3, p), n, n * 1e-10);
  }
}

TEST(EstimateFromRho, PaperSanityNumbers) {
  // w=8192, k=3, p=3/1024 (the paper's example p_o), n=500000 ⇒
  // λ = 3·(3/1024)·500000/8192 = 4.5e6/2^23 ≈ 0.5364.
  const double p = 3.0 / 1024.0;
  const double lambda = slot_load(500000, 8192, 3, p);
  EXPECT_NEAR(lambda, 0.536441802978515625, 1e-12);
  EXPECT_NEAR(estimate_from_rho(std::exp(-lambda), 8192, 3, p), 500000, 1.0);
}

TEST(EdgeFunctions, SignsAreCorrect) {
  // f1 < 0 < f2 whenever ε > 0 and the load is non-degenerate.
  for (double n : {5000.0, 50000.0, 500000.0}) {
    for (double p : {0.001, 0.01, 0.1}) {
      EXPECT_LT(f1(n, 8192, 3, p, 0.05), 0.0);
      EXPECT_GT(f2(n, 8192, 3, p, 0.05), 0.0);
    }
  }
}

TEST(EdgeFunctions, Fig5Monotonicity) {
  // For small p, f1 decreases and f2 increases in n (the Fig 5 property
  // that justifies Theorem 4).
  const double p = 3.0 / 1024.0;
  double prev_f1 = f1(1000, 8192, 3, p, 0.05);
  double prev_f2 = f2(1000, 8192, 3, p, 0.05);
  for (double n = 11000; n <= 400000; n += 10000) {
    const double cur_f1 = f1(n, 8192, 3, p, 0.05);
    const double cur_f2 = f2(n, 8192, 3, p, 0.05);
    EXPECT_LT(cur_f1, prev_f1) << "n=" << n;
    EXPECT_GT(cur_f2, prev_f2) << "n=" << n;
    prev_f1 = cur_f1;
    prev_f2 = cur_f2;
  }
}

TEST(EdgeFunctions, DegenerateLoadsReturnZero) {
  EXPECT_DOUBLE_EQ(f1(0.0, 8192, 3, 0.5, 0.05), 0.0);
  EXPECT_DOUBLE_EQ(f2(0.0, 8192, 3, 0.5, 0.05), 0.0);
}

TEST(FindPersistence, ReproducesThePapersExample) {
  // §IV-D: "the optimal p_o is usually small (e.g. p = 3/2^10)". With
  // n_low = 250000 (i.e. n = 500000, c = 0.5) and (ε, δ) = (0.05, 0.05)
  // the minimal satisfying grid point is exactly 3/1024.
  const PersistenceChoice c = find_persistence(250000, 8192, 3, 0.05, 0.05);
  EXPECT_TRUE(c.satisfies);
  EXPECT_EQ(c.p_n, 3u);
  EXPECT_DOUBLE_EQ(c.p, 3.0 / 1024.0);
  EXPECT_GE(c.margin, 0.0);
}

TEST(FindPersistence, SatisfiedChoiceMeetsTheorem3) {
  for (double n_low : {5000.0, 50000.0, 1e6, 5e6}) {
    const PersistenceChoice c = find_persistence(n_low, 8192, 3, 0.05, 0.05);
    ASSERT_TRUE(c.satisfies) << n_low;
    const double d = math::confidence_d(0.05);
    EXPECT_LE(f1(n_low, 8192, 3, c.p, 0.05), -d);
    EXPECT_GE(f2(n_low, 8192, 3, c.p, 0.05), d);
    // Minimality: the previous grid point must fail.
    if (c.p_n > 1) {
      const double p_prev = static_cast<double>(c.p_n - 1) / 1024.0;
      const bool prev_ok = f1(n_low, 8192, 3, p_prev, 0.05) <= -d &&
                           f2(n_low, 8192, 3, p_prev, 0.05) >= d;
      EXPECT_FALSE(prev_ok) << n_low;
    }
  }
}

TEST(FindPersistence, PoNumeratorShrinksAsNGrows) {
  std::uint32_t prev = 1024;
  for (double n_low : {5000.0, 20000.0, 100000.0, 500000.0, 2e6}) {
    const PersistenceChoice c = find_persistence(n_low, 8192, 3, 0.05, 0.05);
    ASSERT_TRUE(c.satisfies);
    EXPECT_LE(c.p_n, prev) << n_low;
    prev = c.p_n;
  }
}

TEST(FindPersistence, LooserRequirementsNeedSmallerP) {
  const PersistenceChoice tight = find_persistence(50000, 8192, 3, 0.05, 0.05);
  const PersistenceChoice loose = find_persistence(50000, 8192, 3, 0.20, 0.05);
  ASSERT_TRUE(tight.satisfies);
  ASSERT_TRUE(loose.satisfies);
  EXPECT_LE(loose.p_n, tight.p_n);
}

TEST(FindPersistence, TinyPopulationFallsBackToMaxMargin) {
  // n_low ≈ 500 cannot satisfy (0.05, 0.05) with w = 8192 (λ_max too
  // small, §IV-D discussion) — the search must degrade gracefully.
  const PersistenceChoice c = find_persistence(500, 8192, 3, 0.05, 0.05);
  EXPECT_FALSE(c.satisfies);
  EXPECT_GE(c.p_n, 1u);
  EXPECT_LE(c.p_n, 1023u);
  EXPECT_LT(c.margin, 0.0);
}

TEST(GammaBounds, ReproducesFig4Envelope) {
  const GammaBounds b = gamma_bounds(3);
  // Paper: 0.000326 ≤ γ ≤ 2365.9 on the i/1024 grid.
  EXPECT_NEAR(b.min, 0.000326, 2e-6);
  EXPECT_NEAR(b.max, 2365.9, 0.1);
  // Extremes sit at the grid corners.
  EXPECT_DOUBLE_EQ(b.p_at_max, 1.0 / 1024.0);
  EXPECT_DOUBLE_EQ(b.rho_at_max, 1.0 / 1024.0);
  EXPECT_DOUBLE_EQ(b.p_at_min, 1023.0 / 1024.0);
  EXPECT_DOUBLE_EQ(b.rho_at_min, 1023.0 / 1024.0);
}

TEST(GammaBounds, MaxCardinalityExceedsNineteenMillion) {
  const GammaBounds b = gamma_bounds(3);
  EXPECT_GT(b.max_cardinality(8192), 1.9e7);  // "exceeds 19 millions"
  EXPECT_LT(b.max_cardinality(8192), 2.0e7);
}

TEST(GammaBounds, ScalesInverselyWithK) {
  const GammaBounds k3 = gamma_bounds(3);
  const GammaBounds k6 = gamma_bounds(6);
  EXPECT_NEAR(k6.max, k3.max / 2.0, 1e-9);
  EXPECT_NEAR(k6.min, k3.min / 2.0, 1e-9);
}

}  // namespace
}  // namespace bfce::core
