// Tests for batch presence verification.
#include "core/authenticate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "identification/qprotocol.hpp"
#include "rfid/reader.hpp"

namespace bfce::core {
namespace {

rfid::TagPopulation slice(const rfid::TagPopulation& pop, std::size_t from,
                          std::size_t to) {
  std::vector<rfid::Tag> tags(pop.tags().begin() + static_cast<long>(from),
                              pop.tags().begin() + static_cast<long>(to));
  return rfid::TagPopulation(std::move(tags));
}

TEST(Auth, TuningKeepsTheLoadNearTarget) {
  AuthConfig cfg;
  // Small batch: sampling clamps at 1, three confirmation rounds.
  EXPECT_DOUBLE_EQ(cfg.sample_p(1000.0), 1.0);
  EXPECT_EQ(cfg.rounds(1000.0), 3u);
  // Large batch: p·k·n/w ≈ target, rounds cover everyone.
  const double p = cfg.sample_p(30000.0);
  EXPECT_NEAR(3.0 * p * 30000.0 / 8192.0, 1.1, 1e-9);
  const auto rounds = cfg.rounds(30000.0);
  // Coverage: (1−p)^rounds ≤ 1%.
  EXPECT_LE(std::pow(1.0 - p, rounds), 0.0101);
}

TEST(Auth, AllPresentAllVerified) {
  const auto pop = rfid::make_population(
      2000, rfid::TagIdDistribution::kT1Uniform, 1);
  util::Xoshiro256ss rng(2);
  const auto out = verify_batch(pop, pop, AuthConfig{}, rfid::Channel{}, rng);
  EXPECT_EQ(out.present_count + out.unverified_count, 2000u);
  EXPECT_EQ(out.absent_count, 0u);
  EXPECT_EQ(out.unexplained_busy_slots, 0u);
  EXPECT_LT(out.false_presence_mean, 0.02);
}

TEST(Auth, PresentTagsAreNeverCalledAbsent) {
  // Zero false negatives on a perfect channel: a present sampled tag
  // energises its own slots.
  const auto pop = rfid::make_population(
      5000, rfid::TagIdDistribution::kT1Uniform, 3);
  const auto field = slice(pop, 0, 3500);  // last 1500 left the building
  util::Xoshiro256ss rng(4);
  const auto out = verify_batch(pop, field, AuthConfig{}, rfid::Channel{}, rng);
  for (std::size_t t = 0; t < 3500; ++t) {
    EXPECT_NE(out.verdicts[t], AuthVerdict::kAbsent) << t;
  }
  EXPECT_EQ(out.present_count + out.absent_count + out.unverified_count,
            5000u);
}

TEST(Auth, MissingTagsAreDetected) {
  const auto pop = rfid::make_population(
      5000, rfid::TagIdDistribution::kT1Uniform, 5);
  const auto field = slice(pop, 0, 4000);
  util::Xoshiro256ss rng(6);
  const auto out = verify_batch(pop, field, AuthConfig{}, rfid::Channel{}, rng);
  // ~98% of the 1000 missing tags detected (escape ≈ 2%, unverified 1%).
  EXPECT_GE(out.absent_count, 930u);
  EXPECT_LE(out.absent_count, 1000u);
  for (std::size_t t = 0; t < 4000; ++t) {
    EXPECT_NE(out.verdicts[t], AuthVerdict::kAbsent) << t;
  }
}

TEST(Auth, DenseBatchesAreHandledBySampling) {
  // 30000 enrolled, 5000 missing: without sampling the bitmap would
  // saturate (λ ≈ 9) and nothing would be detected; the tuned p keeps
  // per-round busy ≈ 0.57 and catches ~98% of the missing tags.
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 7);
  const auto field = slice(pop, 0, 25000);
  util::Xoshiro256ss rng(8);
  const auto out = verify_batch(pop, field, AuthConfig{}, rfid::Channel{}, rng);
  EXPECT_GE(out.absent_count, 4700u);
  EXPECT_LE(out.absent_count, 5000u);
  EXPECT_LE(out.unverified_count, 600u);  // coverage_miss = 1% of 30000
}

TEST(Auth, MoreRoundsImproveDetection) {
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 9);
  const auto field = slice(pop, 0, 25000);
  auto detected = [&](std::uint32_t cap) {
    AuthConfig cfg;
    cfg.max_rounds = cap;
    util::Xoshiro256ss rng(10);
    return verify_batch(pop, field, cfg, rfid::Channel{}, rng).absent_count;
  };
  EXPECT_GT(detected(256), detected(8));
}

TEST(Auth, FalsePresenceMeanShrinksWithRounds) {
  const auto pop = rfid::make_population(
      2000, rfid::TagIdDistribution::kT1Uniform, 11);
  util::Xoshiro256ss rng(12);
  AuthConfig one;
  one.max_rounds = 1;
  AuthConfig many;
  many.max_rounds = 6;
  // With p = 1 at this size, rounds(n) caps at min(3, max) — widen by
  // lowering max_rounds for the "one" case.
  const auto fp1 = verify_batch(pop, pop, one, rfid::Channel{}, rng)
                       .false_presence_mean;
  const auto fp3 = verify_batch(pop, pop, many, rfid::Channel{}, rng)
                       .false_presence_mean;
  EXPECT_LT(fp3, fp1);
}

TEST(Auth, IntrudersLeaveUnexplainedSlots) {
  const auto enrolled = rfid::make_population(
      3000, rfid::TagIdDistribution::kT1Uniform, 13);
  const auto foreign = rfid::make_population(
      500, rfid::TagIdDistribution::kT3Normal, 14);
  std::vector<rfid::Tag> field_tags(enrolled.tags());
  for (const rfid::Tag& t : foreign.tags()) field_tags.push_back(t);
  const rfid::TagPopulation field{std::move(field_tags)};
  util::Xoshiro256ss rng(15);
  const auto clean =
      verify_batch(enrolled, enrolled, AuthConfig{}, rfid::Channel{}, rng);
  const auto dirty =
      verify_batch(enrolled, field, AuthConfig{}, rfid::Channel{}, rng);
  EXPECT_EQ(clean.unexplained_busy_slots, 0u);
  EXPECT_GT(dirty.unexplained_busy_slots, 300u);
}

TEST(Auth, CostIsRoundsTimesFrame) {
  const auto pop = rfid::make_population(
      1000, rfid::TagIdDistribution::kT1Uniform, 16);
  util::Xoshiro256ss rng(17);
  const auto out = verify_batch(pop, pop, AuthConfig{}, rfid::Channel{}, rng);
  EXPECT_EQ(out.rounds_used, 3u);  // p = 1 regime
  EXPECT_EQ(out.airtime.tag_bits, 3u * 8192u);
  EXPECT_EQ(out.airtime.reader_bits, 3u * 128u);
  EXPECT_LT(out.airtime.total_seconds(rfid::TimingModel{}), 0.52);
}

TEST(Auth, FarCheaperThanIdentifyingTheBatch) {
  // Verifying 20000 enrolled tags takes tens of 8192-slot rounds of
  // 1-bit slots; reading their EPCs takes minutes.
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 18);
  util::Xoshiro256ss rng(19);
  const auto auth =
      verify_batch(pop, pop, AuthConfig{}, rfid::Channel{}, rng);
  rfid::ReaderContext ctx(pop, 20);
  identification::QProtocol q;
  const auto inventory = q.identify(ctx);
  const double t_auth = auth.airtime.total_seconds(rfid::TimingModel{});
  const double t_inv = inventory.total_seconds(ctx.timing());
  EXPECT_GT(t_inv / t_auth, 10.0);
}

TEST(Auth, NoisyChannelCausesBoundedFalseAbsent) {
  const auto pop = rfid::make_population(
      2000, rfid::TagIdDistribution::kT1Uniform, 21);
  util::Xoshiro256ss rng(22);
  const rfid::Channel noisy(rfid::ChannelModel{0.0, 0.005});
  const auto out = verify_batch(pop, pop, AuthConfig{}, noisy, rng);
  // ≈ 1 − (1−0.005)^9 ≈ 4.4% of present tags wrongly flagged.
  EXPECT_LT(out.absent_count, 220u);
}

}  // namespace
}  // namespace bfce::core
