// Cross-module integration tests: miniature versions of the paper's
// headline comparisons (Fig 9 / Fig 10) plus exact-vs-sampled and
// noisy-channel end-to-end checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/bfce.hpp"
#include "estimators/registry.hpp"
#include "estimators/src_protocol.hpp"
#include "estimators/zoe.hpp"
#include "sim/experiment.hpp"

namespace bfce {
namespace {

using sim::ExperimentConfig;
using sim::ExperimentSummary;
using sim::run_experiment;
using sim::summarize_records;

ExperimentSummary run(const rfid::TagPopulation& pop,
                      const sim::EstimatorFactory& factory,
                      std::size_t trials, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.trials = trials;
  cfg.req = {0.05, 0.05};
  cfg.mode = rfid::FrameMode::kSampled;
  cfg.seed = seed;
  return summarize_records(run_experiment(pop, factory, cfg), 0.05);
}

TEST(Integration, HeadlineComparisonShapeHolds) {
  // Miniature Fig 9 + Fig 10 on T2: all three meet ε on average, and the
  // time ordering BFCE < SRC < ZOE holds with roughly the paper's gaps.
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT2ApproxNormal, 2015);
  const auto bfce = run(
      pop, [] { return std::make_unique<core::BfceEstimator>(); }, 15, 1);
  const auto zoe = run(
      pop, [] { return std::make_unique<estimators::ZoeEstimator>(); }, 15,
      2);
  const auto src = run(
      pop, [] { return std::make_unique<estimators::SrcEstimator>(); }, 15,
      3);

  EXPECT_LT(bfce.accuracy.mean, 0.05);
  EXPECT_LT(zoe.accuracy.mean, 0.05);
  EXPECT_LT(src.accuracy.mean, 0.05);

  EXPECT_LT(bfce.time_s.max, 0.30);                    // constant time
  EXPECT_GT(zoe.time_s.mean / bfce.time_s.mean, 10.0); // "30× in average"
  EXPECT_GT(src.time_s.mean / bfce.time_s.mean, 1.2);  // "2× in average"
  EXPECT_LT(src.time_s.mean, zoe.time_s.mean);
}

TEST(Integration, BfceTimeFlatWhereBaselinesMove) {
  // Fig 10's defining feature: sweeping n moves ZOE/SRC (via their rough
  // phases' luck) but leaves BFCE flat.
  std::vector<double> bfce_times;
  for (std::size_t n : {20000UL, 200000UL, 2000000UL}) {
    const auto pop = rfid::make_population(
        n, rfid::TagIdDistribution::kT2ApproxNormal, n);
    const auto s = run(
        pop, [] { return std::make_unique<core::BfceEstimator>(); }, 8, n);
    bfce_times.push_back(s.time_s.mean);
  }
  const double spread =
      *std::max_element(bfce_times.begin(), bfce_times.end()) /
      *std::min_element(bfce_times.begin(), bfce_times.end());
  EXPECT_LT(spread, 1.3);
}

TEST(Integration, ExactAndSampledAgreeEndToEnd) {
  const auto pop = rfid::make_population(
      60000, rfid::TagIdDistribution::kT3Normal, 7);
  ExperimentConfig cfg;
  cfg.trials = 20;
  cfg.req = {0.05, 0.05};
  cfg.seed = 5;
  const auto factory = [] {
    return std::make_unique<core::BfceEstimator>();
  };
  cfg.mode = rfid::FrameMode::kExact;
  const auto exact = summarize_records(run_experiment(pop, factory, cfg),
                                       0.05);
  cfg.mode = rfid::FrameMode::kSampled;
  const auto sampled = summarize_records(run_experiment(pop, factory, cfg),
                                         0.05);
  // Identical law ⇒ similar error scale (not identical draws).
  EXPECT_LT(exact.accuracy.mean, 0.04);
  EXPECT_LT(sampled.accuracy.mean, 0.04);
  EXPECT_NEAR(exact.time_s.mean, sampled.time_s.mean, 0.02);
}

TEST(Integration, DistributionsDoNotMatter) {
  // Fig 7a's message: T1/T2/T3 produce indistinguishable BFCE accuracy.
  std::vector<double> means;
  for (const auto dist : rfid::kAllDistributions) {
    const auto pop = rfid::make_population(150000, dist, 99);
    means.push_back(
        run(pop, [] { return std::make_unique<core::BfceEstimator>(); }, 25,
            42)
            .accuracy.mean);
  }
  for (const double m : means) {
    EXPECT_LT(m, 0.035);
  }
}

TEST(Integration, NoisyChannelBiasIsDirectional) {
  // False-busy noise inflates busy counts ⇒ overestimates; false-idle
  // noise deflates them ⇒ underestimates. End-to-end sanity of the error
  // injection path.
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 13);
  auto mean_nhat = [&](rfid::ChannelModel ch) {
    ExperimentConfig cfg;
    cfg.trials = 10;
    cfg.mode = rfid::FrameMode::kSampled;
    cfg.channel = ch;
    cfg.seed = 17;
    const auto records = run_experiment(
        pop, [] { return std::make_unique<core::BfceEstimator>(); }, cfg);
    double sum = 0.0;
    for (const auto& r : records) sum += r.n_hat;
    return sum / static_cast<double>(records.size());
  };
  const double clean = mean_nhat({});
  EXPECT_GT(mean_nhat({0.05, 0.0}), clean);
  EXPECT_LT(mean_nhat({0.0, 0.05}), clean);
}

TEST(Integration, CommunicationLedgersAreConsistent) {
  // time_us reported by the estimator equals the ledger priced under the
  // context's (custom) timing model — across protocols.
  rfid::TimingModel slow;
  slow.reader_bit_us = 100.0;
  slow.tag_bit_us = 50.0;
  slow.interval_us = 1000.0;
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 19);
  for (const char* name : {"BFCE", "ZOE", "SRC"}) {
    const auto est = estimators::make_estimator(name);
    rfid::ReaderContext ctx(pop, 21, rfid::FrameMode::kSampled, {}, slow);
    const auto out = est->estimate(ctx, {0.1, 0.1});
    EXPECT_DOUBLE_EQ(out.time_us, out.airtime.total_us(slow)) << name;
  }
}

}  // namespace
}  // namespace bfce
