// Tests for the multi-round averaged BFCE (Fig 8's "more accurate after
// multiple runs").
#include <gtest/gtest.h>

#include "core/bfce.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::core {
namespace {

TEST(BfceAvg, AirtimeIsRoundsTimesSingle) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 1);
  rfid::ReaderContext a(pop, 2, rfid::FrameMode::kSampled);
  rfid::ReaderContext b(pop, 2, rfid::FrameMode::kSampled);
  const auto one = BfceEstimator().estimate(a, {0.05, 0.05});
  AveragedBfceEstimator avg(5);
  const auto five = avg.estimate(b, {0.05, 0.05});
  EXPECT_EQ(five.rounds, 5u);
  EXPECT_NEAR(five.time_us, 5.0 * one.time_us, 0.1 * one.time_us);
}

TEST(BfceAvg, ErrorShrinksWithRounds) {
  const auto pop = rfid::make_population(
      200000, rfid::TagIdDistribution::kT2ApproxNormal, 3);
  auto spread = [&](std::uint32_t rounds) {
    AveragedBfceEstimator est(rounds);
    math::RunningStats s;
    for (int i = 0; i < 25; ++i) {
      rfid::ReaderContext ctx(pop, 100 + static_cast<std::uint64_t>(i),
                              rfid::FrameMode::kSampled);
      s.add(est.estimate(ctx, {0.05, 0.05}).n_hat);
    }
    return s.stddev();
  };
  // 16 rounds ⇒ ~4× tighter than 1 round; require ≥ 2.5×.
  EXPECT_GT(spread(1), 2.5 * spread(16));
}

TEST(BfceAvg, HundredRoundsAreExtremelyAccurate) {
  // The paper's Fig 8 remark: "we can achieve an extremely accurate
  // estimation in no more than 100 rounds."
  const auto pop = rfid::make_population(
      500000, rfid::TagIdDistribution::kT3Normal, 4);
  AveragedBfceEstimator est(100);
  rfid::ReaderContext ctx(pop, 5, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.05, 0.05});
  EXPECT_LT(out.relative_error(500000.0), 0.005);
}

TEST(BfceAvg, EmpiricalIntervalCoversTheTruth) {
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT1Uniform, 6);
  AveragedBfceEstimator est(12);
  int covered = 0;
  constexpr int kRuns = 30;
  for (int i = 0; i < kRuns; ++i) {
    rfid::ReaderContext ctx(pop, 400 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    const auto out = est.estimate(ctx, {0.05, 0.05});
    ASSERT_LT(out.ci_low, out.ci_high);
    if (out.ci_low <= 100000.0 && 100000.0 <= out.ci_high) ++covered;
  }
  // Empirical t-style interval at 12 rounds: ≥ 80% coverage expected
  // (the CLT interval is slightly anti-conservative at small R).
  EXPECT_GE(covered, 24);
}

TEST(BfceAvg, NameAndRoundsExposed) {
  AveragedBfceEstimator est(7);
  EXPECT_EQ(est.name(), "BFCE-avg");
  EXPECT_EQ(est.rounds(), 7u);
}

}  // namespace
}  // namespace bfce::core
