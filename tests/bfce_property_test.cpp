// Property-style sweeps over the (n, distribution, ε, δ) lattice: the
// (ε, δ) guarantee must hold empirically everywhere the paper claims it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "core/bfce.hpp"
#include "sim/experiment.hpp"

namespace bfce::core {
namespace {

sim::EstimatorFactory bfce_factory() {
  return [] { return std::make_unique<BfceEstimator>(); };
}

// ---- (ε, δ) guarantee across cardinalities and distributions ----------

using GuaranteeParam = std::tuple<std::size_t, rfid::TagIdDistribution>;

class BfceGuaranteeTest : public ::testing::TestWithParam<GuaranteeParam> {};

TEST_P(BfceGuaranteeTest, ViolationRateWithinDelta) {
  const auto [n, dist] = GetParam();
  const auto pop = rfid::make_population(n, dist, 1234);
  sim::ExperimentConfig cfg;
  cfg.trials = 120;
  cfg.req = {0.05, 0.05};
  cfg.mode = rfid::FrameMode::kSampled;
  cfg.seed = 77;
  const auto records = sim::run_experiment(pop, bfce_factory(), cfg);
  const auto summary = sim::summarize_records(records, cfg.req.epsilon);
  // Empirical δ over 120 trials: allow 3σ binomial slack above δ=0.05.
  const double slack = 3.0 * std::sqrt(0.05 * 0.95 / 120.0);
  EXPECT_LE(summary.violation_rate, 0.05 + slack);
  // And the typical error should be well inside ε (Fig 7 shows ≪ 0.05).
  EXPECT_LT(summary.accuracy.mean, 0.035);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, BfceGuaranteeTest,
    ::testing::Combine(::testing::Values(5000, 50000, 500000),
                       ::testing::Values(rfid::TagIdDistribution::kT1Uniform,
                                         rfid::TagIdDistribution::kT2ApproxNormal,
                                         rfid::TagIdDistribution::kT3Normal)),
    [](const auto& param_info) {
      // Built incrementally: operator+ chains trip GCC 12's -Wrestrict
      // false positive under -Werror.
      std::string name = "n";
      name += std::to_string(std::get<0>(param_info.param));
      name += '_';
      name += rfid::to_string(std::get<1>(param_info.param));
      return name;
    });

// ---- Guarantee across the (ε, δ) grid of Fig 7b/7c --------------------

class BfceRequirementTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BfceRequirementTest, MeetsEveryRequirementPoint) {
  const auto [eps, delta] = GetParam();
  const auto pop = rfid::make_population(
      200000, rfid::TagIdDistribution::kT2ApproxNormal, 555);
  sim::ExperimentConfig cfg;
  cfg.trials = 100;
  cfg.req = {eps, delta};
  cfg.mode = rfid::FrameMode::kSampled;
  cfg.seed = 88;
  const auto records = sim::run_experiment(pop, bfce_factory(), cfg);
  const auto summary = sim::summarize_records(records, eps);
  const double slack = 3.0 * std::sqrt(delta * (1.0 - delta) / 100.0);
  EXPECT_LE(summary.violation_rate, delta + slack)
      << "eps=" << eps << " delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(
    EpsDeltaGrid, BfceRequirementTest,
    ::testing::Values(std::pair{0.05, 0.05}, std::pair{0.10, 0.05},
                      std::pair{0.20, 0.05}, std::pair{0.30, 0.05},
                      std::pair{0.05, 0.10}, std::pair{0.05, 0.20},
                      std::pair{0.05, 0.30}),
    [](const auto& param_info) {
      return "eps" + std::to_string(static_cast<int>(
                         param_info.param.first * 100)) +
             "_delta" + std::to_string(static_cast<int>(
                            param_info.param.second * 100));
    });

// ---- Realisation ablation: every hash/persistence combination keeps
//      the guarantee (Theorem 1 holds marginally for all of them) -------

struct RealisationParam {
  rfid::HashScheme hash;
  hash::PersistenceMode persistence;
  const char* label;
};

class BfceRealisationTest
    : public ::testing::TestWithParam<RealisationParam> {};

TEST_P(BfceRealisationTest, AccuracyHoldsUnderTagSideRealisations) {
  const auto param = GetParam();
  BfceParams bp;
  bp.hash = param.hash;
  bp.persistence = param.persistence;
  const auto pop = rfid::make_population(
      40000, rfid::TagIdDistribution::kT1Uniform, 999);
  sim::ExperimentConfig cfg;
  cfg.trials = 30;
  cfg.req = {0.05, 0.05};
  cfg.mode = rfid::FrameMode::kExact;  // tag-side schemes need real tags
  cfg.seed = 99;
  const auto records = sim::run_experiment(
      pop, [&] { return std::make_unique<BfceEstimator>(bp); }, cfg);
  const auto summary = sim::summarize_records(records, 0.05);
  const double slack = 3.0 * std::sqrt(0.05 * 0.95 / 30.0);
  EXPECT_LE(summary.violation_rate, 0.05 + slack) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    TagSide, BfceRealisationTest,
    ::testing::Values(
        RealisationParam{rfid::HashScheme::kIdeal,
                         hash::PersistenceMode::kIdealBernoulli,
                         "ideal_bernoulli"},
        RealisationParam{rfid::HashScheme::kLightweight,
                         hash::PersistenceMode::kIdealBernoulli,
                         "lightweight_bernoulli"},
        RealisationParam{rfid::HashScheme::kLightweight,
                         hash::PersistenceMode::kRnBits,
                         "lightweight_rnbits"}),
    [](const auto& param_info) {
      return std::string(param_info.param.label);
    });

// ---- Shared-draw persistence: correlation inflates variance -----------

TEST(BfceProperty, SharedDrawKeepsAccuracyButWeakensTheGuarantee) {
  // One persistence draw shared by a tag's k slots violates Theorem 3's
  // per-slot independence: the ρ̄ variance inflates by up to k, so the
  // strict (ε, δ) contract no longer holds. The estimate stays unbiased
  // (Theorem 1's marginal law is intact) — the right expectations are a
  // small mean error and a δ inflated by at most ~k.
  BfceParams bp;
  bp.persistence = hash::PersistenceMode::kSharedDraw;
  const auto pop = rfid::make_population(
      40000, rfid::TagIdDistribution::kT1Uniform, 321);
  sim::ExperimentConfig cfg;
  cfg.trials = 40;
  cfg.req = {0.05, 0.05};
  cfg.mode = rfid::FrameMode::kExact;
  cfg.seed = 654;
  const auto records = sim::run_experiment(
      pop, [&] { return std::make_unique<BfceEstimator>(bp); }, cfg);
  const auto summary = sim::summarize_records(records, 0.05);
  EXPECT_LT(summary.accuracy.mean, 0.05);        // still unbiased
  EXPECT_LE(summary.violation_rate, 0.35);       // but δ inflated ≲ k·δ
}

// ---- Time is constant over everything ---------------------------------

TEST(BfceProperty, TimeIsFlatAcrossTheWholeLattice) {
  BfceEstimator est;
  double lo = 1e9;
  double hi = 0.0;
  for (std::size_t n : {2000UL, 20000UL, 200000UL, 2000000UL}) {
    for (double eps : {0.05, 0.3}) {
      for (double delta : {0.05, 0.3}) {
        const auto pop = rfid::make_population(
            n, rfid::TagIdDistribution::kT3Normal, n);
        rfid::ReaderContext ctx(pop, n ^ 0xF00, rfid::FrameMode::kSampled);
        const auto out = est.estimate(ctx, {eps, delta});
        const double t = out.airtime.total_seconds(ctx.timing());
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
    }
  }
  EXPECT_LT(hi, 0.30);
  EXPECT_LT(hi / lo, 1.6);
}

}  // namespace
}  // namespace bfce::core
