// Deep tests for the UPE collision-based estimator.
#include "estimators/upe.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "estimators/ezb.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

TEST(UpeDeep, CollisionInversionIsMonotoneWithCorrectEdges) {
  double prev = 0.0;
  for (double c = 0.01; c < 0.99; c += 0.01) {
    const double lambda = UpeEstimator::invert_collision_ratio(c);
    EXPECT_GT(lambda, prev) << c;
    prev = lambda;
  }
  // Tiny collision ratio ⇒ tiny load; near-total collisions ⇒ huge load.
  EXPECT_LT(UpeEstimator::invert_collision_ratio(0.001), 0.1);
  EXPECT_GT(UpeEstimator::invert_collision_ratio(0.999), 8.0);
}

TEST(UpeDeep, CollisionLawHoldsEmpirically) {
  // E[collision slots] = f·(1 − (1+λ)e^{−λ}) — the formula UPE inverts.
  const auto pop = rfid::make_population(
      4000, rfid::TagIdDistribution::kT1Uniform, 1);
  util::Xoshiro256ss rng(2);
  const rfid::Channel ch;
  constexpr std::uint32_t kF = 2048;
  constexpr double kP = 0.75;
  double collisions = 0.0;
  constexpr int kFrames = 40;
  for (int i = 0; i < kFrames; ++i) {
    const auto states = rfid::run_aloha_frame(pop, kF, kP, rng(), ch, rng);
    for (const rfid::SlotState s : states) {
      if (s == rfid::SlotState::kCollision) ++collisions;
    }
  }
  const double lambda = kP * 4000.0 / kF;
  const double expected = kF * (1.0 - (1.0 + lambda) * std::exp(-lambda));
  EXPECT_NEAR(collisions / kFrames, expected, expected * 0.05);
}

TEST(UpeDeep, FrameSizeRespondsToTheRequirement) {
  // The measurement frame carries the whole (ε, δ) burden: tightening
  // either knob must enlarge it, visible through tag_bits.
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 3);
  UpeEstimator est;
  auto tag_bits = [&](double eps, double delta) {
    rfid::ReaderContext ctx(pop, 4, rfid::FrameMode::kSampled);
    return est.estimate(ctx, {eps, delta}).airtime.tag_bits;
  };
  EXPECT_GT(tag_bits(0.05, 0.05), tag_bits(0.10, 0.05));
  EXPECT_GT(tag_bits(0.05, 0.05), tag_bits(0.05, 0.20));
}

TEST(UpeDeep, ImpossibleRequirementIsFlagged) {
  // ε so tight that the needed frame exceeds the cap: UPE must say so.
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 5);
  rfid::ReaderContext ctx(pop, 6, rfid::FrameMode::kSampled);
  UpeEstimator est;
  const auto out = est.estimate(ctx, {0.002, 0.05});
  EXPECT_FALSE(out.met_by_design);
  EXPECT_FALSE(out.note.empty());
}

TEST(UpeDeep, WiderSlotsMakeUpeSlowerThanEzbPerSlot) {
  // UPE needs slot-type detection (10-bit slots); EZB reads 1-bit
  // slots. At the same requirement UPE pays more per slot.
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 7);
  rfid::ReaderContext a(pop, 8, rfid::FrameMode::kSampled);
  rfid::ReaderContext b(pop, 8, rfid::FrameMode::kSampled);
  UpeEstimator upe;
  EzbEstimator ezb;
  const double t_upe =
      upe.estimate(a, {0.05, 0.05}).airtime.total_seconds(a.timing());
  const double t_ezb =
      ezb.estimate(b, {0.05, 0.05}).airtime.total_seconds(b.timing());
  EXPECT_GT(t_upe, t_ezb);
}

TEST(UpeDeep, LoadClampWhenPopulationIsSmall) {
  // n below the frame's design load: p clamps at 1 and the estimate
  // still lands (low-load regime of the collision curve).
  const auto pop = rfid::make_population(
      800, rfid::TagIdDistribution::kT1Uniform, 9);
  rfid::ReaderContext ctx(pop, 10, rfid::FrameMode::kSampled);
  UpeEstimator est;
  const auto out = est.estimate(ctx, {0.1, 0.1});
  EXPECT_LT(out.relative_error(800.0), 0.35);
}

}  // namespace
}  // namespace bfce::estimators
