// Tests for the deterministic RNG substrate.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "math/hypothesis.hpp"

namespace bfce::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DiffersAcrossSeeds) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value of splitmix64(seed=0) from the published algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256ss, IsDeterministic) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ss, UniformIsInUnitInterval) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256ss, BelowRespectsBound) {
  Xoshiro256ss rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 8192ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256ss, BelowZeroBoundReturnsZero) {
  Xoshiro256ss rng(11);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256ss, BelowIsUniformChiSquare) {
  Xoshiro256ss rng(13);
  constexpr std::size_t kBins = 64;
  constexpr std::size_t kDraws = 64000;
  std::vector<std::size_t> counts(kBins, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[rng.below(kBins)];
  const double stat = math::chi_square_uniform(counts);
  EXPECT_GT(math::chi_square_pvalue(stat, kBins - 1), 0.001);
}

TEST(Xoshiro256ss, BetweenIsInclusive) {
  Xoshiro256ss rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.between(10, 13));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 13u);
}

TEST(Xoshiro256ss, BernoulliEdgeProbabilities) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256ss, BernoulliRateMatches) {
  Xoshiro256ss rng(17);
  const double p = 0.3;
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.01);
}

TEST(DeriveSeed, IsDeterministicAndIndexSensitive) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(DeriveSeed, AdjacentStreamsAreDecorrelated) {
  // Generators seeded from adjacent indices should not produce equal
  // leading outputs.
  Xoshiro256ss a(derive_seed(99, 0));
  Xoshiro256ss b(derive_seed(99, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace bfce::util
