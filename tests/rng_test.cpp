// Tests for the deterministic RNG substrate.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string_view>
#include <vector>

#include "math/hypothesis.hpp"

namespace bfce::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DiffersAcrossSeeds) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value of splitmix64(seed=0) from the published algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256ss, IsDeterministic) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ss, UniformIsInUnitInterval) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256ss, BelowRespectsBound) {
  Xoshiro256ss rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 8192ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256ss, BelowZeroBoundReturnsZero) {
  Xoshiro256ss rng(11);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256ss, BelowIsUniformChiSquare) {
  Xoshiro256ss rng(13);
  constexpr std::size_t kBins = 64;
  constexpr std::size_t kDraws = 64000;
  std::vector<std::size_t> counts(kBins, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[rng.below(kBins)];
  const double stat = math::chi_square_uniform(counts);
  EXPECT_GT(math::chi_square_pvalue(stat, kBins - 1), 0.001);
}

TEST(Xoshiro256ss, BetweenIsInclusive) {
  Xoshiro256ss rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.between(10, 13));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 13u);
}

TEST(Xoshiro256ss, BernoulliEdgeProbabilities) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256ss, BernoulliRateMatches) {
  Xoshiro256ss rng(17);
  const double p = 0.3;
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.01);
}

TEST(DeriveSeed, IsDeterministicAndIndexSensitive) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(SeedMixer, IsDeterministicAndOrderSensitive) {
  const auto mix = [](std::uint64_t a, std::uint64_t b) {
    return SeedMixer(1).absorb(a).absorb(b).value();
  };
  EXPECT_EQ(mix(3, 4), mix(3, 4));
  EXPECT_NE(mix(3, 4), mix(4, 3));  // a sponge, not an XOR bag
  EXPECT_NE(SeedMixer(1).value(), SeedMixer(2).value());
}

TEST(SeedMixer, SweepGridHasNoCollisions) {
  // The exact (n, eps, delta, protocol) grid of the Fig 9/10 comparison
  // sweeps — every point must get a distinct stream.
  const std::vector<std::uint64_t> ns = {50000, 100000, 200000, 500000,
                                         1000000};
  const std::vector<double> epss = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const std::vector<double> deltas = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const std::vector<std::string_view> protos = {"BFCE", "ZOE", "SRC"};
  std::set<std::uint64_t> seeds;
  std::size_t points = 0;
  for (const std::uint64_t n : ns) {
    for (const double eps : epss) {
      for (const double delta : deltas) {
        for (const std::string_view proto : protos) {
          seeds.insert(SeedMixer(12345)
                           .absorb(n)
                           .absorb(eps)
                           .absorb(delta)
                           .absorb(proto)
                           .value());
          ++points;
        }
      }
    }
  }
  EXPECT_EQ(seeds.size(), points);
}

TEST(SeedMixer, DoublesAbsorbedByBitPatternNotTruncation) {
  // The old `uint(eps * 1e4)` mixing collapsed nearby doubles; the mixer
  // must separate values that differ in the last mantissa bit.
  const double eps = 0.05;
  const double eps_next = std::nextafter(eps, 1.0);
  EXPECT_NE(SeedMixer(7).absorb(eps).value(),
            SeedMixer(7).absorb(eps_next).value());
}

TEST(SeedMixer, StringsHashByContent) {
  EXPECT_NE(SeedMixer(7).absorb(std::string_view("ZOE")).value(),
            SeedMixer(7).absorb(std::string_view("SRC")).value());
  EXPECT_EQ(SeedMixer(7).absorb(std::string_view("BFCE")).value(),
            SeedMixer(7).absorb(std::string_view("BFCE")).value());
  // "" still advances the sponge: absorbing nothing != absorbing "".
  EXPECT_NE(SeedMixer(7).absorb(std::string_view("")).value(),
            SeedMixer(7).value());
}

// draw_binomial backs the sampled-mode batched sampler, where a frame
// over n = 10^6 tags with k = 4 hashes draws Binomial(4e6, p); the
// planner can also push trials toward 2^40 for fleet-scale sweeps. The
// extremes must stay exact (degenerate p), sane (within the CLT
// envelope) and fast (no per-trial loop for large np).
TEST(DrawBinomial, DegenerateProbabilitiesAreExact) {
  Xoshiro256ss rng(3);
  const std::uint64_t huge = 1ULL << 40;
  EXPECT_EQ(draw_binomial(huge, 0.0, rng), 0u);
  EXPECT_EQ(draw_binomial(huge, -0.5, rng), 0u);
  EXPECT_EQ(draw_binomial(huge, 1.0, rng), huge);
  EXPECT_EQ(draw_binomial(huge, 1.5, rng), huge);
  EXPECT_EQ(draw_binomial(0, 0.5, rng), 0u);
}

TEST(DrawBinomial, HugeTrialCountStaysInTheCltEnvelope) {
  Xoshiro256ss rng(5);
  const std::uint64_t trials = 1ULL << 40;
  // p = 1/2: mean 2^39, sd 2^19 — allow 6 sigma.
  const double mean = 0.5 * static_cast<double>(trials);
  const double sd = std::sqrt(0.25 * static_cast<double>(trials));
  for (int i = 0; i < 8; ++i) {
    const double x = static_cast<double>(draw_binomial(trials, 0.5, rng));
    EXPECT_NEAR(x, mean, 6.0 * sd);
  }
}

TEST(DrawBinomial, ExtremeTailProbabilitiesBehave) {
  Xoshiro256ss rng(7);
  const std::uint64_t trials = 1ULL << 40;
  // p = 2^-40: mean 1 — tiny counts, never anywhere near trials.
  for (int i = 0; i < 16; ++i) {
    EXPECT_LT(draw_binomial(trials, std::ldexp(1.0, -40), rng), 64u);
  }
  // p = 1 − 2^-40: mean trials − 1 — hugs the ceiling from below.
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t x =
        draw_binomial(trials, 1.0 - std::ldexp(1.0, -40), rng);
    EXPECT_LE(x, trials);
    EXPECT_GT(x, trials - 64u);
  }
}

TEST(DrawBinomial, PersistenceGridProbabilitiesAreDeterministic) {
  // Bloom persistence lives on the 1/65536 grid (BloomFrameConfig's
  // p_numerator); every grid point must reproduce bit-identically from
  // the same stream — draw_binomial may serialise internally but the
  // result is a pure function of (trials, p, rng state).
  for (const std::uint32_t p_n : {1u, 3u, 256u, 32768u, 65535u}) {
    const double p = static_cast<double>(p_n) / 65536.0;
    Xoshiro256ss a(11);
    Xoshiro256ss b(11);
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t trials = 1ULL << (10 + 10 * i);  // 2^10 … 2^40
      EXPECT_EQ(draw_binomial(trials, p, a), draw_binomial(trials, p, b))
          << "p_n " << p_n << " trials 2^" << (10 + 10 * i);
    }
  }
}

TEST(DeriveSeed, AdjacentStreamsAreDecorrelated) {
  // Generators seeded from adjacent indices should not produce equal
  // leading outputs.
  Xoshiro256ss a(derive_seed(99, 0));
  Xoshiro256ss b(derive_seed(99, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace bfce::util
