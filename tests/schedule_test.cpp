// Tests for the multi-reader interference schedule and the Wilson /
// normality additions to the math layer.
#include <gtest/gtest.h>

#include <cmath>

#include "math/hypothesis.hpp"
#include "rfid/frame.hpp"
#include "rfid/multireader.hpp"
#include "util/rng.hpp"

namespace bfce {
namespace {

rfid::TagPopulation tiny_pop() {
  return rfid::make_population(100, rfid::TagIdDistribution::kT1Uniform, 1);
}

TEST(Schedule, DisjointReadersShareOneRound) {
  const auto pop = tiny_pop();
  // Two far-apart small discs: no interference.
  rfid::MultiReaderSystem sys(
      pop, {rfid::ReaderPlacement{0.1, 0.1, 0.05},
            rfid::ReaderPlacement{0.9, 0.9, 0.05}});
  const auto colours = sys.interference_schedule();
  EXPECT_EQ(colours[0], colours[1]);
  EXPECT_EQ(sys.schedule_rounds(), 1u);
}

TEST(Schedule, OverlappingReadersSplitRounds) {
  const auto pop = tiny_pop();
  rfid::MultiReaderSystem sys(
      pop, {rfid::ReaderPlacement{0.4, 0.5, 0.2},
            rfid::ReaderPlacement{0.6, 0.5, 0.2}});
  EXPECT_EQ(sys.schedule_rounds(), 2u);
}

TEST(Schedule, DenseGridNeedsFewRoundsButMoreThanOne) {
  const auto pop = tiny_pop();
  rfid::MultiReaderSystem sys(pop, rfid::MultiReaderSystem::grid(9, 0.35));
  const std::uint32_t rounds = sys.schedule_rounds();
  EXPECT_GT(rounds, 1u);
  EXPECT_LE(rounds, 9u);
  // Schedule validity: no two conflicting readers share a colour.
  const auto colours = sys.interference_schedule();
  const auto& readers = sys.readers();
  for (std::size_t i = 0; i < readers.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double dx = readers[i].x - readers[j].x;
      const double dy = readers[i].y - readers[j].y;
      const double reach = readers[i].radius + readers[j].radius;
      if (dx * dx + dy * dy < reach * reach) {
        EXPECT_NE(colours[i], colours[j]) << i << "," << j;
      }
    }
  }
}

TEST(Schedule, NoReadersNoRounds) {
  const auto pop = tiny_pop();
  rfid::MultiReaderSystem sys(pop, {});
  EXPECT_EQ(sys.schedule_rounds(), 0u);
}

TEST(WilsonInterval, BracketsTheEmpiricalRate) {
  const auto ci = math::wilson_interval(5, 100);
  EXPECT_LT(ci.lo, 0.05);
  EXPECT_GT(ci.hi, 0.05);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 0.15);
}

TEST(WilsonInterval, ZeroSuccessesStillInformative) {
  // "0 of 25" is compatible with rates up to ~13%, not with 30%.
  const auto ci = math::wilson_interval(0, 25);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.05);
  EXPECT_LT(ci.hi, 0.20);
}

TEST(WilsonInterval, AllSuccessesAndDegenerateInputs) {
  const auto all = math::wilson_interval(25, 25);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const auto none = math::wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(WilsonInterval, ShrinksWithTrials) {
  const auto small = math::wilson_interval(5, 50);
  const auto large = math::wilson_interval(50, 500);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(KsNormality, AcceptsGaussianData) {
  util::Xoshiro256ss rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double u1 = rng.uniform();
    const double u2 = rng.uniform();
    xs.push_back(std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
                 std::cos(6.283185307179586 * u2));
  }
  EXPECT_GT(math::ks_normality_pvalue(xs), 0.01);
}

TEST(KsNormality, RejectsUniformAndConstantData) {
  util::Xoshiro256ss rng(2);
  std::vector<double> uniform;
  for (int i = 0; i < 1000; ++i) uniform.push_back(rng.uniform());
  EXPECT_LT(math::ks_normality_pvalue(uniform), 0.01);
  EXPECT_DOUBLE_EQ(
      math::ks_normality_pvalue(std::vector<double>(100, 3.0)), 0.0);
}

TEST(KsNormality, BloomIdleRatioIsAsymptoticallyNormal) {
  // The CLT claim underlying Theorem 3: ρ̄ over w = 8192 slots is
  // normal enough that a KS test cannot tell the difference.
  util::Xoshiro256ss rng(3);
  const rfid::Channel ch;
  std::vector<double> rhos;
  for (int f = 0; f < 300; ++f) {
    rfid::BloomFrameConfig cfg;
    cfg.set_p_numerator(16);
    cfg.seeds = {rng(), rng(), rng()};
    const auto busy = rfid::sampled_bloom_frame(100000, cfg, ch, rng);
    rhos.push_back(1.0 -
                   static_cast<double>(busy.count_ones()) / 8192.0);
  }
  EXPECT_GT(math::ks_normality_pvalue(rhos), 0.01);
}

}  // namespace
}  // namespace bfce
