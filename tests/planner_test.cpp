// Tests for the standalone Theorem-4 persistence planner and its memo
// cache: the extraction must be bit-identical to the legacy in-estimator
// search, and caching must never change a choice.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/bfce.hpp"
#include "rfid/population.hpp"
#include "rfid/reader.hpp"
#include "util/parallel.hpp"

namespace bfce::core {
namespace {

struct PlanPoint {
  double n_low;
  std::uint32_t w;
  std::uint32_t k;
  double eps;
  double delta;
};

std::vector<PlanPoint> plan_grid() {
  std::vector<PlanPoint> grid;
  for (const double n_low : {1.0, 42.0, 500.0, 25000.0, 250000.0, 5.0e6}) {
    for (const double eps : {0.01, 0.05, 0.2}) {
      for (const double delta : {0.01, 0.05}) {
        grid.push_back({n_low, 8192, 3, eps, delta});
      }
    }
  }
  grid.push_back({250000.0, 4096, 3, 0.05, 0.05});
  grid.push_back({250000.0, 8192, 1, 0.05, 0.05});
  return grid;
}

void expect_same_choice(const PersistenceChoice& a,
                        const PersistenceChoice& b) {
  EXPECT_EQ(a.p_n, b.p_n);
  EXPECT_DOUBLE_EQ(a.p, b.p);
  EXPECT_EQ(a.satisfies, b.satisfies);
  EXPECT_DOUBLE_EQ(a.margin, b.margin);
}

TEST(PersistencePlanner, SearchIsBitIdenticalToFindPersistence) {
  for (const PlanPoint& pt : plan_grid()) {
    const PersistenceChoice legacy =
        find_persistence(pt.n_low, pt.w, pt.k, pt.eps, pt.delta);
    const PersistenceChoice extracted =
        PersistencePlanner::search(pt.n_low, pt.w, pt.k, pt.eps, pt.delta);
    expect_same_choice(legacy, extracted);
  }
}

TEST(PersistencePlanner, SearchReproducesPaperExample) {
  // §IV-D: p_o = 3/1024 for n_low = 250k at the default requirement.
  const PersistenceChoice c =
      PersistencePlanner::search(250000, 8192, 3, 0.05, 0.05);
  EXPECT_TRUE(c.satisfies);
  EXPECT_EQ(c.p_n, 3u);
}

TEST(PersistencePlanner, CachedChoiceBitIdenticalToSearch) {
  PersistencePlanner planner;
  const auto grid = plan_grid();
  // First pass misses, second pass hits; both must equal the raw search.
  for (int pass = 0; pass < 2; ++pass) {
    for (const PlanPoint& pt : grid) {
      const PersistenceChoice got =
          planner.choose(pt.n_low, pt.w, pt.k, pt.eps, pt.delta);
      expect_same_choice(
          got, PersistencePlanner::search(pt.n_low, pt.w, pt.k, pt.eps,
                                          pt.delta));
    }
  }
  const PlannerCacheStats stats = planner.stats();
  EXPECT_EQ(stats.misses, grid.size());
  EXPECT_EQ(stats.hits, grid.size());
  EXPECT_EQ(stats.entries, grid.size());
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(PersistencePlanner, CacheOffMatchesCacheOn) {
  PersistencePlanner cached;
  PersistencePlanner uncached({.cache = false});
  for (const PlanPoint& pt : plan_grid()) {
    expect_same_choice(
        cached.choose(pt.n_low, pt.w, pt.k, pt.eps, pt.delta),
        uncached.choose(pt.n_low, pt.w, pt.k, pt.eps, pt.delta));
  }
  EXPECT_EQ(uncached.stats().hits, 0u);
  EXPECT_EQ(uncached.stats().entries, 0u);
}

TEST(PersistencePlanner, BucketingSnapsBeforeTheSearch) {
  PersistencePlanner planner({.cache = true, .n_low_mantissa_bits = 16});
  const double a = 250000.0;
  const double b = 250000.0 * (1.0 + 1e-9);  // same 16-bit-mantissa bucket
  EXPECT_EQ(planner.bucket(a), planner.bucket(b));
  EXPECT_EQ(planner.bucket(planner.bucket(a)), planner.bucket(a));

  const PersistenceChoice got = planner.choose(a, 8192, 3, 0.05, 0.05);
  expect_same_choice(got, PersistencePlanner::search(planner.bucket(a), 8192,
                                                     3, 0.05, 0.05));
  // The neighbour lands on the same key: a hit, same choice.
  expect_same_choice(got, planner.choose(b, 8192, 3, 0.05, 0.05));
  EXPECT_EQ(planner.stats().hits, 1u);
  EXPECT_EQ(planner.stats().entries, 1u);
}

TEST(PersistencePlanner, BucketBoundaryNeighboursSatisfyTheoremFourBothSides) {
  // Coarse 8-bit-mantissa bucketing snaps n̂_low values ~0.4% apart onto
  // the same key. Find two *adjacent* n_low values that straddle a
  // bucket edge near the paper's 250k working point, and require a
  // valid (satisfying) Theorem-4 choice on both sides — cached and
  // uncached — plus validity at the raw (unbucketed) n_low. A planner
  // that rounded across the edge into an unsatisfiable cell would turn
  // a fine design point into a silent fallback.
  PersistencePlanner cached({.cache = true, .n_low_mantissa_bits = 8});
  PersistencePlanner uncached({.cache = false, .n_low_mantissa_bits = 8});

  // With an 8-bit mantissa near 250000 ≈ 2^18 the bucket width is
  // 2^(18−8) = 1024, so the next edge is at most 1024 away.
  double below_edge = 250000.0;
  double above_edge = below_edge + 1.0;
  while (cached.bucket(above_edge) == cached.bucket(below_edge)) {
    below_edge = above_edge;
    above_edge += 1.0;
    ASSERT_LT(above_edge, 252000.0) << "no bucket edge found";
  }
  ASSERT_NE(cached.bucket(below_edge), cached.bucket(above_edge));

  for (const double n_low : {below_edge, above_edge}) {
    SCOPED_TRACE(n_low);
    const PersistenceChoice from_cache =
        cached.choose(n_low, 8192, 3, 0.05, 0.05);
    const PersistenceChoice no_cache =
        uncached.choose(n_low, 8192, 3, 0.05, 0.05);
    expect_same_choice(from_cache, no_cache);
    // Both sides of the edge must still satisfy Theorem 4...
    EXPECT_TRUE(from_cache.satisfies);
    EXPECT_GE(from_cache.p_n, 1u);
    EXPECT_LE(from_cache.p_n, 1023u);
    EXPECT_GE(from_cache.margin, 0.0);
    // ...and the bucketed choice must also be valid at the *raw* n_low,
    // not only at the snapped key it was computed for.
    const PersistenceChoice raw =
        PersistencePlanner::search(n_low, 8192, 3, 0.05, 0.05);
    EXPECT_TRUE(raw.satisfies);
    // A second cached lookup is a hit with the identical choice.
    expect_same_choice(from_cache, cached.choose(n_low, 8192, 3, 0.05, 0.05));
  }
  EXPECT_EQ(cached.stats().entries, 2u);  // one entry per side of the edge
  EXPECT_EQ(cached.stats().hits, 2u);
  EXPECT_EQ(uncached.stats().entries, 0u);
}

TEST(PersistencePlanner, DefaultBucketIsIdentity) {
  PersistencePlanner planner;
  for (const double v : {1.0, 3.1415926, 250000.0, 5.0e6}) {
    EXPECT_EQ(planner.bucket(v), v);
  }
}

TEST(PersistencePlanner, MaxEntriesBoundsTheTableNotTheAnswers) {
  PersistencePlanner planner(
      {.cache = true, .n_low_mantissa_bits = 52, .max_entries = 4});
  for (int i = 0; i < 12; ++i) {
    const double n_low = 1000.0 * (i + 1);
    expect_same_choice(
        planner.choose(n_low, 8192, 3, 0.05, 0.05),
        PersistencePlanner::search(n_low, 8192, 3, 0.05, 0.05));
  }
  EXPECT_LE(planner.stats().entries, 4u);
}

TEST(PersistencePlanner, ClearResetsEverything) {
  PersistencePlanner planner;
  planner.choose(1000.0, 8192, 3, 0.05, 0.05);
  planner.choose(1000.0, 8192, 3, 0.05, 0.05);
  planner.clear();
  const PlannerCacheStats stats = planner.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PersistencePlanner, ConcurrentChooseStaysConsistent) {
  PersistencePlanner planner;
  const auto grid = plan_grid();
  // Many threads hammer the same small key set; every answer must equal
  // the raw search (ASan/TSan-style smoke for the shared cache).
  util::parallel_for(
      0, 512,
      [&](std::size_t i) {
        const PlanPoint& pt = grid[i % grid.size()];
        const PersistenceChoice got =
            planner.choose(pt.n_low, pt.w, pt.k, pt.eps, pt.delta);
        const PersistenceChoice want = PersistencePlanner::search(
            pt.n_low, pt.w, pt.k, pt.eps, pt.delta);
        ASSERT_EQ(got.p_n, want.p_n);
        ASSERT_EQ(got.satisfies, want.satisfies);
      },
      8);
  const PlannerCacheStats stats = planner.stats();
  EXPECT_EQ(stats.hits + stats.misses, 512u);
  EXPECT_EQ(stats.entries, grid.size());
}

TEST(PersistencePlanner, BfceWithPlannerIsBitIdenticalToWithout) {
  const auto pop =
      rfid::make_population(120000, rfid::TagIdDistribution::kT1Uniform, 7);
  const estimators::Requirement req{0.05, 0.05};

  PersistencePlanner planner;
  BfceParams with_planner;
  with_planner.planner = &planner;

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    rfid::ReaderContext plain_ctx(pop, seed, rfid::FrameMode::kSampled);
    rfid::ReaderContext planned_ctx(pop, seed, rfid::FrameMode::kSampled);
    BfceEstimator plain;
    BfceEstimator planned(with_planner);
    const estimators::EstimateOutcome a = plain.estimate(plain_ctx, req);
    const estimators::EstimateOutcome b = planned.estimate(planned_ctx, req);
    EXPECT_DOUBLE_EQ(a.n_hat, b.n_hat);
    EXPECT_DOUBLE_EQ(a.ci_low, b.ci_low);
    EXPECT_DOUBLE_EQ(a.ci_high, b.ci_high);
    EXPECT_DOUBLE_EQ(a.time_us, b.time_us);
  }
  EXPECT_GT(planner.stats().hits + planner.stats().misses, 0u);
}

}  // namespace
}  // namespace bfce::core
