// Tests for erfinv and the Theorem-3 confidence constant.
#include "math/erf.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bfce::math {
namespace {

TEST(ErfInv, RoundTripsThroughErf) {
  for (double x = -0.999; x <= 0.999; x += 0.001) {
    const double y = erfinv(x);
    EXPECT_NEAR(std::erf(y), x, 1e-12) << "x=" << x;
  }
}

TEST(ErfInv, RoundTripsDeepIntoTheTail) {
  for (double x : {0.999999, 0.99999999, -0.999999}) {
    EXPECT_NEAR(std::erf(erfinv(x)), x, 1e-10);
  }
}

TEST(ErfInv, KnownValues) {
  EXPECT_DOUBLE_EQ(erfinv(0.0), 0.0);
  // erfinv(0.5) = 0.47693627620446987...
  EXPECT_NEAR(erfinv(0.5), 0.47693627620446987, 1e-12);
  // erfinv(0.95) = 1.3859038243496777...
  EXPECT_NEAR(erfinv(0.95), 1.3859038243496777, 1e-11);
  EXPECT_NEAR(erfinv(-0.95), -1.3859038243496777, 1e-11);
}

TEST(ErfInv, IsOddFunction) {
  for (double x : {0.1, 0.37, 0.8, 0.99}) {
    EXPECT_DOUBLE_EQ(erfinv(-x), -erfinv(x));
  }
}

TEST(ErfInv, EdgeAndDomainBehaviour) {
  EXPECT_TRUE(std::isinf(erfinv(1.0)));
  EXPECT_GT(erfinv(1.0), 0.0);
  EXPECT_TRUE(std::isinf(erfinv(-1.0)));
  EXPECT_LT(erfinv(-1.0), 0.0);
  EXPECT_TRUE(std::isnan(erfinv(1.5)));
  EXPECT_TRUE(std::isnan(erfinv(-2.0)));
  EXPECT_TRUE(std::isnan(erfinv(std::nan(""))));
}

TEST(ConfidenceD, MatchesStandardNormalQuantiles) {
  // d(δ) is the two-sided z-score: δ=0.05 → 1.95996, δ=0.01 → 2.57583,
  // δ=0.3 → 1.03643.
  EXPECT_NEAR(confidence_d(0.05), 1.9599639845400545, 1e-10);
  EXPECT_NEAR(confidence_d(0.01), 2.5758293035489004, 1e-10);
  EXPECT_NEAR(confidence_d(0.30), 1.0364333894937898, 1e-10);
}

TEST(ConfidenceD, SatisfiesItsDefiningProperty) {
  // Pr{|Y| ≤ d} = 1 − δ for standard normal Y:
  // Φ(d) − Φ(−d) must equal 1 − δ.
  for (double delta : {0.05, 0.1, 0.2, 0.3}) {
    const double d = confidence_d(delta);
    EXPECT_NEAR(normal_cdf(d) - normal_cdf(-d), 1.0 - delta, 1e-12);
  }
}

TEST(ConfidenceD, MonotoneDecreasingInDelta) {
  double prev = confidence_d(0.01);
  for (double delta = 0.05; delta < 0.95; delta += 0.05) {
    const double d = confidence_d(delta);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-12);
}

}  // namespace
}  // namespace bfce::math
