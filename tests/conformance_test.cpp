// Statistical conformance tier: does BFCE actually deliver its (ε, δ)
// contract — Pr{|n̂ − n| ≤ ε·n} ≥ 1 − δ — over many seeded trials?
//
// Each cell of the sweep (population n × requirement) runs 200
// exact-mode trials on independent protocol streams and counts the
// trials whose relative error exceeded ε. The pass criterion is not
// "miss rate ≤ δ" (a fair protocol at exactly δ would fail that half
// the time) but the exact binomial version: the 99% Clopper–Pearson
// lower confidence bound on the true miss rate must not exceed δ. A
// cell fails only when the observed misses are statistically
// inconsistent with the advertised δ.
//
// Tiny populations cannot satisfy Theorem 3's edge conditions
// (met_by_design == false); those trials fall back to the best-effort
// estimate and are excluded from the miss count — the contract only
// covers rounds the protocol could design. Cells where fewer than 50
// trials reach the design point assert fallback sanity instead.
//
// ctest label: `conformance` — tier-1 plain `ctest` runs it, the
// release/asan/tsan preset filters skip it, and `tools/ci.sh
// --conformance` runs it alone (docs/TOOLING.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "core/bfce.hpp"
#include "estimators/estimator.hpp"
#include "federation/federated_bfce.hpp"
#include "federation/fleet.hpp"
#include "federation/geometry.hpp"
#include "math/hypothesis.hpp"
#include "rfid/population.hpp"
#include "rfid/reader.hpp"
#include "util/rng.hpp"

namespace bfce {
namespace {

constexpr std::size_t kTrials = 200;
constexpr std::uint64_t kMasterSeed = 0xC0F0A11CE5ULL;

struct CellOutcome {
  std::size_t designed = 0;   ///< trials that met the design point
  std::size_t misses = 0;     ///< designed trials with rel. error > ε
  std::size_t fallbacks = 0;  ///< trials flagged met_by_design == false
};

CellOutcome run_cell(std::size_t n, const estimators::Requirement& req) {
  const auto pop =
      rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, 77);
  core::BfceEstimator estimator;
  CellOutcome cell;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    rfid::ReaderContext ctx(pop, util::derive_seed(kMasterSeed, trial),
                            rfid::FrameMode::kExact);
    const estimators::EstimateOutcome out = estimator.estimate(ctx, req);
    EXPECT_TRUE(std::isfinite(out.n_hat)) << "n=" << n << " trial=" << trial;
    EXPECT_GE(out.n_hat, 0.0);
    if (!out.met_by_design) {
      ++cell.fallbacks;
      continue;
    }
    ++cell.designed;
    if (out.relative_error(static_cast<double>(n)) > req.epsilon) {
      ++cell.misses;
    }
  }
  return cell;
}

void expect_conformance(std::size_t n, const estimators::Requirement& req) {
  SCOPED_TRACE("n=" + std::to_string(n) +
               " eps=" + std::to_string(req.epsilon) +
               " delta=" + std::to_string(req.delta));
  const CellOutcome cell = run_cell(n, req);
  ASSERT_EQ(cell.designed + cell.fallbacks, kTrials);
  if (cell.designed >= 50) {
    // Exact binomial consistency check against the advertised δ.
    const math::ProportionInterval ci =
        math::clopper_pearson_interval(cell.misses, cell.designed, 0.99);
    EXPECT_LE(ci.lo, req.delta)
        << cell.misses << " misses in " << cell.designed
        << " designed trials is inconsistent with delta=" << req.delta;
  } else {
    // The design point is out of reach at this n (Theorem 4 found no
    // satisfying p_o): the protocol must say so, not mislabel rounds.
    EXPECT_GE(cell.fallbacks, kTrials - 50);
  }
}

// n = 100 sits far below the smallest population where Theorem 3's
// edge conditions admit any p_o on the Theorem-4 grid — these cells
// exercise the honest-fallback path rather than the contract itself.

TEST(Conformance, N100TightRequirement) {
  expect_conformance(100, {0.05, 0.05});
}

TEST(Conformance, N100LooseEpsilonTightDelta) {
  expect_conformance(100, {0.1, 0.01});
}

TEST(Conformance, N1000TightRequirement) {
  expect_conformance(1000, {0.05, 0.05});
}

TEST(Conformance, N1000LooseEpsilonTightDelta) {
  expect_conformance(1000, {0.1, 0.01});
}

TEST(Conformance, N10000TightRequirement) {
  expect_conformance(10000, {0.05, 0.05});
}

TEST(Conformance, N10000LooseEpsilonTightDelta) {
  expect_conformance(10000, {0.1, 0.01});
}

TEST(Conformance, N100000TightRequirement) {
  expect_conformance(100000, {0.05, 0.05});
}

TEST(Conformance, N100000LooseEpsilonTightDelta) {
  expect_conformance(100000, {0.1, 0.01});
}

// ---- Fleet-level conformance ---------------------------------------------
// The federated union estimator must honour the same (ε, δ) contract as
// the plain protocol, judged against the *union* cardinality, across
// increasingly overlapped two-reader coverage. The exact-mode sessions
// draw their persistence independently per reader, so the saturating
// g(p) correction is the one being audited here.

CellOutcome run_fleet_cell(double overlap_frac,
                           const estimators::Requirement& req) {
  const auto pop =
      rfid::make_population(40000, rfid::TagIdDistribution::kT1Uniform, 77);
  const federation::Fleet fleet(
      pop, federation::overlapping_pair(0.24, overlap_frac));
  const double union_n = static_cast<double>(fleet.union_size());
  CellOutcome cell;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    federation::FederationConfig cfg;
    cfg.correlation = federation::SessionCorrelation::kIndependent;
    cfg.mode = rfid::FrameMode::kExact;
    cfg.fanout = 2;
    cfg.seed = util::derive_seed(kMasterSeed, trial);
    const federation::FederatedOutcome fed =
        federation::FederatedBfceEstimator(cfg).estimate(fleet, req);
    EXPECT_TRUE(std::isfinite(fed.outcome.n_hat)) << "trial=" << trial;
    EXPECT_GE(fed.outcome.n_hat, 0.0);
    if (!fed.outcome.met_by_design) {
      ++cell.fallbacks;
      continue;
    }
    ++cell.designed;
    if (fed.outcome.relative_error(union_n) > req.epsilon) {
      ++cell.misses;
    }
  }
  return cell;
}

void expect_fleet_conformance(double overlap_frac,
                              const estimators::Requirement& req) {
  SCOPED_TRACE("overlap=" + std::to_string(overlap_frac) +
               " eps=" + std::to_string(req.epsilon) +
               " delta=" + std::to_string(req.delta));
  const CellOutcome cell = run_fleet_cell(overlap_frac, req);
  ASSERT_EQ(cell.designed + cell.fallbacks, kTrials);
  ASSERT_GE(cell.designed, 50u);  // 40k-tag unions always reach design
  const math::ProportionInterval ci =
      math::clopper_pearson_interval(cell.misses, cell.designed, 0.99);
  EXPECT_LE(ci.lo, req.delta)
      << cell.misses << " misses in " << cell.designed
      << " designed fleet trials is inconsistent with delta=" << req.delta;
}

TEST(FleetConformance, DisjointCoverage) {
  expect_fleet_conformance(0.0, {0.05, 0.05});
}

TEST(FleetConformance, QuarterOverlap) {
  expect_fleet_conformance(0.25, {0.05, 0.05});
}

TEST(FleetConformance, HalfOverlap) {
  expect_fleet_conformance(0.5, {0.05, 0.05});
}

}  // namespace
}  // namespace bfce
