// Tests for the frame executors: Theorem 1 marginals, exact/sampled
// equivalence, and the shapes used by the baseline protocols.
#include "rfid/frame.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/hypothesis.hpp"
#include "rfid/population.hpp"

namespace bfce::rfid {
namespace {

TagPopulation small_pop(std::size_t n, std::uint64_t seed = 1) {
  return make_population(n, TagIdDistribution::kT1Uniform, seed);
}

BloomFrameConfig base_config(std::uint32_t p_n, util::Xoshiro256ss& rng) {
  BloomFrameConfig cfg;
  cfg.set_p_numerator(p_n);
  for (std::uint32_t j = 0; j < cfg.k; ++j) cfg.seeds[j] = rng();
  return cfg;
}

double idle_ratio(const util::BitVector& busy) {
  return 1.0 - static_cast<double>(busy.count_ones()) /
                   static_cast<double>(busy.size());
}

TEST(BloomFrame, FullPersistenceEveryTagLandsSomewhere) {
  const TagPopulation pop = small_pop(100);
  util::Xoshiro256ss rng(1);
  Channel ch;
  auto cfg = base_config(1024, rng);  // p = 1
  cfg.k = 1;
  const util::BitVector busy = run_bloom_frame(pop, cfg, ch, rng);
  // With p=1 and k=1 each tag occupies exactly one slot; 100 tags in
  // 8192 slots leave at most 100 busy slots, and at least 94-ish
  // (birthday collisions) — assert loose bounds plus non-emptiness.
  const std::size_t busy_count = busy.count_ones();
  EXPECT_LE(busy_count, 100u);
  EXPECT_GE(busy_count, 90u);
}

TEST(BloomFrame, ZeroPersistenceKeepsChannelSilent) {
  const TagPopulation pop = small_pop(1000);
  util::Xoshiro256ss rng(2);
  Channel ch;
  auto cfg = base_config(0, rng);  // p = 0
  const util::BitVector busy = run_bloom_frame(pop, cfg, ch, rng);
  EXPECT_EQ(busy.count_ones(), 0u);
}

// ---- Theorem 1: Pr{slot idle} = e^{−λ} for every realisation mode ----

struct Theorem1Case {
  HashScheme hash;
  hash::PersistenceMode persistence;
  const char* label;
};

class Theorem1Test : public ::testing::TestWithParam<Theorem1Case> {};

TEST_P(Theorem1Test, IdleRatioMatchesExpLambda) {
  const auto param = GetParam();
  const TagPopulation pop = small_pop(20000, 3);
  util::Xoshiro256ss rng(4);
  Channel ch;
  double total_rho = 0.0;
  constexpr int kFrames = 12;
  for (int f = 0; f < kFrames; ++f) {
    auto cfg = base_config(128, rng);  // p = 0.125
    cfg.hash = param.hash;
    cfg.persistence = param.persistence;
    total_rho += idle_ratio(run_bloom_frame(pop, cfg, ch, rng));
  }
  const double rho = total_rho / kFrames;
  const double lambda = 3.0 * 0.125 * 20000.0 / 8192.0;  // = 0.9155
  EXPECT_NEAR(rho, std::exp(-lambda), 0.01) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllRealisations, Theorem1Test,
    ::testing::Values(
        Theorem1Case{HashScheme::kIdeal,
                     hash::PersistenceMode::kIdealBernoulli,
                     "ideal/bernoulli"},
        Theorem1Case{HashScheme::kIdeal, hash::PersistenceMode::kSharedDraw,
                     "ideal/shared"},
        Theorem1Case{HashScheme::kIdeal, hash::PersistenceMode::kRnBits,
                     "ideal/rnbits"},
        Theorem1Case{HashScheme::kLightweight,
                     hash::PersistenceMode::kIdealBernoulli,
                     "lightweight/bernoulli"},
        Theorem1Case{HashScheme::kLightweight,
                     hash::PersistenceMode::kRnBits, "lightweight/rnbits"}),
    [](const auto& param_info) {
      std::string s = param_info.param.label;
      for (char& c : s) {
        if (c == '/') c = '_';
      }
      return s;
    });

TEST(BloomFrame, SampledMatchesExactDistribution) {
  // KS test over per-frame idle ratios from the two executors.
  const TagPopulation pop = small_pop(30000, 5);
  util::Xoshiro256ss rng(6);
  Channel ch;
  std::vector<double> exact_rhos;
  std::vector<double> sampled_rhos;
  constexpr int kFrames = 60;
  for (int f = 0; f < kFrames; ++f) {
    auto cfg = base_config(64, rng);
    exact_rhos.push_back(idle_ratio(run_bloom_frame(pop, cfg, ch, rng)));
    sampled_rhos.push_back(
        idle_ratio(sampled_bloom_frame(pop.size(), cfg, ch, rng)));
  }
  const double d = math::ks_statistic(exact_rhos, sampled_rhos);
  EXPECT_GT(math::ks_pvalue(d, kFrames, kFrames), 0.005);
}

TEST(AlohaFrame, SlotTypesAreConsistent) {
  const TagPopulation pop = small_pop(500, 7);
  util::Xoshiro256ss rng(8);
  Channel ch;
  const auto states = run_aloha_frame(pop, 256, 1.0, 42, ch, rng);
  ASSERT_EQ(states.size(), 256u);
  std::size_t singles = 0;
  std::size_t collisions = 0;
  for (const SlotState s : states) {
    if (s == SlotState::kSingle) ++singles;
    if (s == SlotState::kCollision) ++collisions;
  }
  // 500 tags in 256 slots (λ≈2): all three types must appear.
  EXPECT_GT(singles, 0u);
  EXPECT_GT(collisions, 0u);
  EXPECT_GT(256u - singles - collisions, 0u);
  // Singles + at-least-two-per-collision cannot exceed the tag count.
  EXPECT_LE(singles + 2 * collisions, 500u);
}

TEST(AlohaFrame, EmptyRatioMatchesLaw) {
  const TagPopulation pop = small_pop(2000, 9);
  util::Xoshiro256ss rng(10);
  Channel ch;
  double idle_total = 0.0;
  constexpr int kFrames = 30;
  constexpr std::uint32_t kF = 1024;
  for (int f = 0; f < kFrames; ++f) {
    const auto states =
        run_aloha_frame(pop, kF, 0.5, rng(), ch, rng);
    std::size_t idle = 0;
    for (const SlotState s : states) {
      if (!is_busy(s)) ++idle;
    }
    idle_total += static_cast<double>(idle) / kF;
  }
  const double lambda = 0.5 * 2000.0 / kF;
  EXPECT_NEAR(idle_total / kFrames, std::exp(-lambda), 0.01);
}

TEST(AlohaFrame, SampledMatchesExactMoments) {
  const TagPopulation pop = small_pop(5000, 11);
  util::Xoshiro256ss rng(12);
  Channel ch;
  std::vector<double> exact_idle;
  std::vector<double> sampled_idle;
  constexpr int kFrames = 50;
  for (int f = 0; f < kFrames; ++f) {
    const auto a = run_aloha_frame(pop, 512, 0.15, rng(), ch, rng);
    const auto b = sampled_aloha_frame(pop.size(), 512, 0.15, ch, rng);
    auto count_idle = [](const std::vector<SlotState>& ss) {
      double idle = 0;
      for (const SlotState s : ss) {
        if (!is_busy(s)) ++idle;
      }
      return idle;
    };
    exact_idle.push_back(count_idle(a));
    sampled_idle.push_back(count_idle(b));
  }
  const double d = math::ks_statistic(exact_idle, sampled_idle);
  EXPECT_GT(math::ks_pvalue(d, kFrames, kFrames), 0.005);
}

TEST(SingleSlot, BusyProbabilityMatchesLaw) {
  const TagPopulation pop = small_pop(1000, 13);
  util::Xoshiro256ss rng(14);
  Channel ch;
  const double q = 1.594 / 1000.0;
  int busy_exact = 0;
  int busy_sampled = 0;
  constexpr int kFrames = 4000;
  for (int f = 0; f < kFrames; ++f) {
    if (is_busy(run_single_slot(pop, q, rng(), ch, rng))) ++busy_exact;
    if (is_busy(sampled_single_slot(pop.size(), q, ch, rng)))
      ++busy_sampled;
  }
  const double expected = 1.0 - std::exp(-1.594);
  EXPECT_NEAR(static_cast<double>(busy_exact) / kFrames, expected, 0.025);
  EXPECT_NEAR(static_cast<double>(busy_sampled) / kFrames, expected, 0.025);
}

TEST(SingleSlot, DegenerateProbabilities) {
  const TagPopulation pop = small_pop(100, 15);
  util::Xoshiro256ss rng(16);
  Channel ch;
  EXPECT_FALSE(is_busy(run_single_slot(pop, 0.0, 1, ch, rng)));
  EXPECT_TRUE(is_busy(run_single_slot(pop, 1.0, 1, ch, rng)));
  EXPECT_FALSE(is_busy(sampled_single_slot(100, 0.0, ch, rng)));
  EXPECT_TRUE(is_busy(sampled_single_slot(100, 1.0, ch, rng)));
}

TEST(LotteryFrame, FirstZeroGrowsWithLogN) {
  util::Xoshiro256ss rng(17);
  Channel ch;
  auto mean_first_zero = [&](std::size_t n) {
    const TagPopulation pop = small_pop(n, n);
    double sum = 0.0;
    constexpr int kRounds = 30;
    for (int r = 0; r < kRounds; ++r) {
      sum += static_cast<double>(
          run_lottery_frame(pop, 32, rng(), ch, rng).first_zero());
    }
    return sum / kRounds;
  };
  const double at_1k = mean_first_zero(1000);
  const double at_64k = mean_first_zero(64000);
  // log2(64) = 6 more levels; allow generous slack for FM noise.
  EXPECT_NEAR(at_64k - at_1k, 6.0, 1.5);
}

TEST(LotteryFrame, SampledMatchesExactDistribution) {
  util::Xoshiro256ss rng(18);
  Channel ch;
  const TagPopulation pop = small_pop(10000, 19);
  std::vector<double> exact_fz;
  std::vector<double> sampled_fz;
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    exact_fz.push_back(static_cast<double>(
        run_lottery_frame(pop, 32, rng(), ch, rng).first_zero()));
    sampled_fz.push_back(static_cast<double>(
        sampled_lottery_frame(pop.size(), 32, ch, rng).first_zero()));
  }
  const double d = math::ks_statistic(exact_fz, sampled_fz);
  EXPECT_GT(math::ks_pvalue(d, kRounds, kRounds), 0.005);
}

TEST(Frames, ChannelErrorsPerturbObservations) {
  const TagPopulation pop = small_pop(100, 20);
  util::Xoshiro256ss rng(21);
  const Channel noisy(ChannelModel{0.2, 0.0});
  auto cfg = base_config(0, rng);  // nobody transmits...
  const util::BitVector busy = run_bloom_frame(pop, cfg, noisy, rng);
  // ...yet ~20% of slots read busy through the noisy channel.
  EXPECT_NEAR(static_cast<double>(busy.count_ones()) / 8192.0, 0.2, 0.02);
}

}  // namespace
}  // namespace bfce::rfid
