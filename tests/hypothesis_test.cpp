// Tests for the goodness-of-fit helpers and SRC's round-count rule.
#include "math/hypothesis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bfce::math {
namespace {

TEST(ChiSquare, ZeroForPerfectlyUniformCounts) {
  EXPECT_DOUBLE_EQ(chi_square_uniform({10, 10, 10, 10}), 0.0);
}

TEST(ChiSquare, KnownStatistic) {
  // observed {12, 8}, expected 10 each: (4+4)/10 = 0.8.
  EXPECT_NEAR(chi_square_uniform({12, 8}), 0.8, 1e-12);
}

TEST(ChiSquare, PValueHighForUniformData) {
  util::Xoshiro256ss rng(1);
  std::vector<std::size_t> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(50)];
  const double p = chi_square_pvalue(chi_square_uniform(counts), 49);
  EXPECT_GT(p, 0.001);
}

TEST(ChiSquare, PValueLowForSkewedData) {
  std::vector<std::size_t> counts(50, 100);
  counts[0] = 600;  // gross excess in one bin
  const double p = chi_square_pvalue(chi_square_uniform(counts), 49);
  EXPECT_LT(p, 1e-6);
}

TEST(ChiSquare, PValueZeroDof) {
  EXPECT_DOUBLE_EQ(chi_square_pvalue(5.0, 0), 1.0);
}

TEST(KolmogorovSmirnov, IdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(xs, xs), 0.0);
}

TEST(KolmogorovSmirnov, DisjointSamplesHaveStatisticOne) {
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 2.0}, {10.0, 11.0}), 1.0);
}

TEST(KolmogorovSmirnov, SameDistributionHighPValue) {
  util::Xoshiro256ss rng(2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  const double d = ks_statistic(a, b);
  EXPECT_GT(ks_pvalue(d, a.size(), b.size()), 0.001);
}

TEST(KolmogorovSmirnov, ShiftedDistributionLowPValue) {
  util::Xoshiro256ss rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform() + 0.2);
  }
  const double d = ks_statistic(a, b);
  EXPECT_LT(ks_pvalue(d, a.size(), b.size()), 1e-6);
}

TEST(BinomialUpperTail, KnownValues) {
  // Pr{X ≥ 0} = 1 always.
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0, 0.3), 1.0);
  // k > m is impossible.
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 6, 0.5), 0.0);
  // Fair coin, Pr{X ≥ 3 of 5} = 0.5 by symmetry.
  EXPECT_NEAR(binomial_upper_tail(5, 3, 0.5), 0.5, 1e-12);
  // The paper's majority expression at m=5, p=0.8:
  // C(5,3)·0.8³·0.2² + C(5,4)·0.8⁴·0.2 + 0.8⁵ = 0.94208.
  EXPECT_NEAR(binomial_upper_tail(5, 3, 0.8), 0.94208, 1e-10);
  // And at m=3: 0.8³ + 3·0.8²·0.2 = 0.896.
  EXPECT_NEAR(binomial_upper_tail(3, 2, 0.8), 0.896, 1e-10);
}

TEST(SrcRoundCount, MatchesThePapersRule) {
  // Majority of m rounds at per-round success 0.8 must reach 1 − δ.
  EXPECT_EQ(src_round_count(0.30), 1u);   // 0.8 ≥ 0.7
  EXPECT_EQ(src_round_count(0.20), 1u);   // 0.8 ≥ 0.8
  EXPECT_EQ(src_round_count(0.10), 5u);   // 0.896 < 0.9, 0.94208 ≥ 0.9
  EXPECT_EQ(src_round_count(0.05), 7u);   // 0.94208 < 0.95, 0.96666 ≥ 0.95
}

TEST(SrcRoundCount, AlwaysOdd) {
  for (double delta : {0.01, 0.03, 0.07, 0.15, 0.25}) {
    EXPECT_EQ(src_round_count(delta) % 2, 1u) << "delta=" << delta;
  }
}

TEST(SrcRoundCount, MonotoneInDelta) {
  std::size_t prev = src_round_count(0.005);
  for (double delta : {0.01, 0.05, 0.1, 0.2, 0.3}) {
    const std::size_t m = src_round_count(delta);
    EXPECT_LE(m, prev);
    prev = m;
  }
}

TEST(ClopperPearson, KnownEndpoints) {
  // The "rule of three" case, exactly: 0 of 20 at 95% has lower bound 0
  // and upper bound 1 − (α/2)^(1/20) = 1 − 0.025^0.05 ≈ 0.16843.
  const ProportionInterval none = clopper_pearson_interval(0, 20, 0.95);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_NEAR(none.hi, 1.0 - std::pow(0.025, 1.0 / 20.0), 1e-9);

  // Mirror image at 20 of 20.
  const ProportionInterval all = clopper_pearson_interval(20, 20, 0.95);
  EXPECT_NEAR(all.lo, std::pow(0.025, 1.0 / 20.0), 1e-9);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);

  // 5 of 20 at 95%: the textbook exact interval (0.0866, 0.4910).
  const ProportionInterval mid = clopper_pearson_interval(5, 20, 0.95);
  EXPECT_NEAR(mid.lo, 0.0866, 5e-4);
  EXPECT_NEAR(mid.hi, 0.4910, 5e-4);
}

TEST(ClopperPearson, EndpointsInvertTheBinomialTails) {
  // By construction Pr{X ≥ k | lo} = α/2 and Pr{X ≥ k+1 | hi} = 1 − α/2.
  for (const std::size_t k : {1u, 3u, 10u, 19u}) {
    const ProportionInterval ci = clopper_pearson_interval(k, 20, 0.95);
    EXPECT_NEAR(binomial_upper_tail(20, k, ci.lo), 0.025, 1e-9) << k;
    EXPECT_NEAR(binomial_upper_tail(20, k + 1, ci.hi), 0.975, 1e-9) << k;
  }
}

TEST(ClopperPearson, CoversThePointEstimateAndNestsByConfidence) {
  for (const std::size_t k : {0u, 2u, 7u, 50u, 200u}) {
    const std::size_t m = 200;
    const double p_hat = static_cast<double>(k) / static_cast<double>(m);
    const ProportionInterval narrow = clopper_pearson_interval(k, m, 0.90);
    const ProportionInterval wide = clopper_pearson_interval(k, m, 0.99);
    EXPECT_LE(narrow.lo, p_hat);
    EXPECT_GE(narrow.hi, p_hat);
    // Higher confidence ⇒ wider interval, nested around the same p̂.
    EXPECT_LE(wide.lo, narrow.lo);
    EXPECT_GE(wide.hi, narrow.hi);
    EXPECT_GE(narrow.lo, 0.0);
    EXPECT_LE(narrow.hi, 1.0);
  }
}

TEST(ClopperPearson, DegenerateInputs) {
  // No data: the vacuous interval.
  const ProportionInterval empty = clopper_pearson_interval(0, 0, 0.95);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
  // One trial keeps the closed ends exact.
  EXPECT_DOUBLE_EQ(clopper_pearson_interval(0, 1, 0.95).lo, 0.0);
  EXPECT_DOUBLE_EQ(clopper_pearson_interval(1, 1, 0.95).hi, 1.0);
}

TEST(ClopperPearson, IsConservativeRelativeToWilson) {
  // The exact interval can only be wider than (or equal to) Wilson's
  // normal approximation far from the boundary; this is the property
  // the conformance tier relies on for guaranteed coverage.
  const ProportionInterval cp = clopper_pearson_interval(10, 200, 0.95);
  const ProportionInterval w = wilson_interval(10, 200, 0.95);
  EXPECT_LT(cp.lo, w.lo + 5e-3);
  EXPECT_GT(cp.hi, w.hi - 5e-3);
}

}  // namespace
}  // namespace bfce::math
