// Composite scenario test: the library's pieces working together over a
// 30-period warehouse story — churn timeline, BFCE estimates, CUSUM
// monitor, differential snapshots, SPRT threshold query.
#include <gtest/gtest.h>

#include "core/bfce.hpp"
#include "core/differential.hpp"
#include "core/monitor.hpp"
#include "core/threshold.hpp"
#include "rfid/reader.hpp"
#include "sim/churn.hpp"

namespace bfce {
namespace {

TEST(Scenario, ThirtyPeriodWarehouseStory) {
  // Phase A (periods 1-10): balanced churn around 40000 tags.
  // Phase B (periods 11-30): departures exceed arrivals (net ~1.5%/period
  // loss).
  sim::PopulationTimeline warehouse(40000, 2026);
  core::BfceEstimator bfce;
  core::CardinalityMonitor monitor;

  const sim::ChurnModel balanced{0.02, 800.0};  // stationary at 40000
  const sim::ChurnModel draining{0.03, 600.0};  // stationary at 20000

  core::DifferentialConfig snap_cfg;
  snap_cfg.tune_for(40000.0);
  const rfid::Channel channel;
  util::Xoshiro256ss snap_rng(7);

  int alarms_phase_a = 0;
  int first_alarm_period = -1;
  for (int period = 1; period <= 30; ++period) {
    // Take the pre-churn differential reference on the phase boundary.
    const bool boundary = period == 11;
    util::BitVector ref;
    std::size_t pre_churn_size = warehouse.size();
    if (boundary) {
      ref = core::take_snapshot(warehouse.current(), snap_cfg, channel,
                                snap_rng);
    }

    const sim::ChurnStep step =
        warehouse.step(period <= 10 ? balanced : draining);

    if (boundary) {
      // Differential across the first draining period: the estimator
      // sees the churn the timeline actually applied.
      const auto now = core::take_snapshot(warehouse.current(), snap_cfg,
                                           channel, snap_rng);
      const auto churn = core::compare_snapshots(ref, now, snap_cfg);
      EXPECT_NEAR(churn.departed, static_cast<double>(step.departed),
                  static_cast<double>(step.departed) * 0.4);
      EXPECT_NEAR(churn.arrived, static_cast<double>(step.arrived),
                  static_cast<double>(step.arrived) * 0.6 + 100.0);
    }
    (void)pre_churn_size;

    // Daily BFCE round feeding the monitor.
    rfid::ReaderContext ctx(warehouse.current(),
                            9000 + static_cast<std::uint64_t>(period),
                            rfid::FrameMode::kSampled);
    const auto reading = monitor.update(bfce, ctx);
    if (period <= 10 && (reading.loss_alarm || reading.gain_alarm)) {
      ++alarms_phase_a;
    }
    if (period > 10 && reading.loss_alarm && first_alarm_period < 0) {
      first_alarm_period = period;
    }
  }

  // Balanced phase: the monitor stays quiet.
  EXPECT_EQ(alarms_phase_a, 0);
  // Draining phase: the drift is caught within the window.
  EXPECT_GT(first_alarm_period, 10);
  EXPECT_LE(first_alarm_period, 30);

  // End state: the SPRT confirms the population fell below 90% of the
  // original level (30 periods of draining ⇒ well under 36000).
  rfid::ReaderContext ctx(warehouse.current(), 999,
                          rfid::FrameMode::kSampled);
  core::ThresholdQuery q;
  q.threshold = 36000.0;
  const auto ans = core::threshold_query(ctx, q);
  EXPECT_TRUE(ans.decisive);
  EXPECT_FALSE(ans.above);
}

}  // namespace
}  // namespace bfce
