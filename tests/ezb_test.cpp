// Deep tests for the EZB repeated-frame estimator.
#include "estimators/ezb.hpp"

#include <gtest/gtest.h>

#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

TEST(EzbDeep, RequiredRoundsMonotoneInBothKnobs) {
  const auto base = EzbEstimator::required_rounds(0.05, 0.05, 1.594, 512);
  EXPECT_GT(base, EzbEstimator::required_rounds(0.10, 0.05, 1.594, 512));
  EXPECT_GT(base, EzbEstimator::required_rounds(0.05, 0.20, 1.594, 512));
  EXPECT_GE(EzbEstimator::required_rounds(0.05, 0.05, 0.2, 512), base);
}

TEST(EzbDeep, RoundsScaleInverselyWithFrameSize) {
  // Doubling f halves the rounds (total slot count is what matters).
  const auto r512 = EzbEstimator::required_rounds(0.05, 0.05, 1.594, 512);
  const auto r1024 = EzbEstimator::required_rounds(0.05, 0.05, 1.594, 1024);
  EXPECT_NEAR(static_cast<double>(r512),
              2.0 * static_cast<double>(r1024), 1.5);
}

TEST(EzbDeep, ChargesExactlyTheComputedRounds) {
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 1);
  EzbParams params;
  EzbEstimator est(params);
  rfid::ReaderContext ctx(pop, 2, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.05, 0.05});
  // tag_bits = pilot (2 × 32 lottery slots) + rounds × frame_size.
  EXPECT_EQ((out.airtime.tag_bits - 64) % params.frame_size, 0u);
  EXPECT_EQ((out.airtime.tag_bits - 64) / params.frame_size, out.rounds);
}

TEST(EzbDeep, RoundCapIsFlagged) {
  EzbParams params;
  params.max_rounds = 2;  // nowhere near enough for (0.02, 0.02)
  EzbEstimator est(params);
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 3);
  rfid::ReaderContext ctx(pop, 4, rfid::FrameMode::kSampled);
  const auto out = est.estimate(ctx, {0.02, 0.02});
  EXPECT_FALSE(out.met_by_design);
  EXPECT_EQ(out.rounds, 2u);
}

TEST(EzbDeep, PoolingRoundsShrinksTheSpread) {
  // EZB's whole design: accuracy is bought with repetition. Compare the
  // spread of estimates at (0.2, 0.2) (few rounds) vs (0.05, 0.05).
  const auto pop = rfid::make_population(
      30000, rfid::TagIdDistribution::kT1Uniform, 5);
  EzbEstimator est;
  auto spread = [&](double eps) {
    math::RunningStats s;
    for (int i = 0; i < 30; ++i) {
      rfid::ReaderContext ctx(pop, 100 + static_cast<std::uint64_t>(i),
                              rfid::FrameMode::kSampled);
      s.add(est.estimate(ctx, {eps, eps}).n_hat);
    }
    return s.stddev();
  };
  EXPECT_GT(spread(0.25), 1.5 * spread(0.05));
}

TEST(EzbDeep, AccuracyAtBothScaleExtremes) {
  EzbEstimator est;
  for (std::size_t n : {1500UL, 800000UL}) {
    const auto pop =
        rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, n);
    math::RunningStats err;
    for (int i = 0; i < 10; ++i) {
      rfid::ReaderContext ctx(pop, n + static_cast<std::uint64_t>(i),
                              rfid::FrameMode::kSampled);
      err.add(est.estimate(ctx, {0.05, 0.05})
                  .relative_error(static_cast<double>(n)));
    }
    EXPECT_LT(err.mean(), 0.08) << n;
  }
}

}  // namespace
}  // namespace bfce::estimators
