// Tests for the C1G2 timing model and the paper's §IV-E.1 overhead bound.
#include "rfid/timing.hpp"

#include <gtest/gtest.h>

namespace bfce::rfid {
namespace {

TEST(TimingModel, DefaultsAreTheC1G2Constants) {
  const TimingModel m;
  EXPECT_DOUBLE_EQ(m.reader_bit_us, 37.76);
  EXPECT_DOUBLE_EQ(m.tag_bit_us, 18.88);
  EXPECT_DOUBLE_EQ(m.interval_us, 302.0);
}

TEST(Airtime, StartsEmpty) {
  const Airtime a;
  EXPECT_EQ(a.reader_bits, 0u);
  EXPECT_EQ(a.tag_bits, 0u);
  EXPECT_EQ(a.intervals, 0u);
  EXPECT_DOUBLE_EQ(a.total_us(TimingModel{}), 0.0);
}

TEST(Airtime, AddersChargeCorrectly) {
  Airtime a;
  a.add_reader_broadcast(32);
  EXPECT_EQ(a.reader_bits, 32u);
  EXPECT_EQ(a.intervals, 1u);
  a.add_tag_slots(1024);
  EXPECT_EQ(a.tag_bits, 1024u);
  EXPECT_EQ(a.intervals, 2u);
}

TEST(Airtime, AccumulateOperator) {
  Airtime a;
  a.add_reader_broadcast(10);
  Airtime b;
  b.add_tag_slots(5);
  a += b;
  EXPECT_EQ(a.reader_bits, 10u);
  EXPECT_EQ(a.tag_bits, 5u);
  EXPECT_EQ(a.intervals, 2u);
}

TEST(Airtime, TotalMatchesHandComputation) {
  Airtime a;
  a.reader_bits = 100;
  a.tag_bits = 200;
  a.intervals = 3;
  const TimingModel m;
  EXPECT_DOUBLE_EQ(a.total_us(m), 100 * 37.76 + 200 * 18.88 + 3 * 302.0);
  EXPECT_DOUBLE_EQ(a.total_seconds(m), a.total_us(m) / 1e6);
}

TEST(Airtime, PaperClosedFormIsUnderNineteenHundredths) {
  // §IV-E.1: t = (6·l_R + 2·l_p)·t_{r→t} + 3·t_int + 9216·t_{t→r}
  // with l_R = l_p = 32 bits must come in below 0.19 s.
  Airtime t;
  t.reader_bits = 6 * 32 + 2 * 32;
  t.intervals = 3;
  t.tag_bits = 9216;  // 1024 + 8192 bit-slots
  const double seconds = t.total_seconds(TimingModel{});
  EXPECT_LT(seconds, 0.19);
  // Exact closed form: 256·37.76 + 3·302 + 9216·18.88 = 184570.64 µs.
  EXPECT_NEAR(seconds, 0.18457064, 1e-8);
}

TEST(Airtime, ReaderBitsDominateZoeStyleBroadcasts) {
  // The paper's core observation: a 32-bit seed broadcast costs 64× a
  // 1-bit tag reply, so m seed broadcasts swamp m single slots.
  const TimingModel m;
  Airtime seed;
  seed.reader_bits = 32;
  Airtime slot;
  slot.tag_bits = 1;
  EXPECT_GT(seed.total_us(m), 60.0 * slot.total_us(m));
}

TEST(TimingModel, CustomModelPropagates) {
  TimingModel fast;
  fast.reader_bit_us = 1.0;
  fast.tag_bit_us = 0.5;
  fast.interval_us = 10.0;
  Airtime a;
  a.reader_bits = 8;
  a.tag_bits = 4;
  a.intervals = 2;
  EXPECT_DOUBLE_EQ(a.total_us(fast), 8.0 + 2.0 + 20.0);
}

}  // namespace
}  // namespace bfce::rfid
