// Tests for the continuous tracking subsystem: the scalar Kalman
// tracker's arithmetic, the Theorem-3-derived measurement variance, the
// canonical churn scenarios and TrackingSession's determinism and
// accuracy against the timeline ground truth.
#include "tracking/session.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "tracking/tracker.hpp"

namespace bfce::tracking {
namespace {

TEST(PopulationTracker, InitializeSeedsStateAndVariance) {
  PopulationTracker t;
  EXPECT_FALSE(t.initialized());
  t.initialize(1000.0, 100.0);
  EXPECT_TRUE(t.initialized());
  EXPECT_DOUBLE_EQ(t.state(), 1000.0);
  EXPECT_DOUBLE_EQ(t.variance(), 100.0);
  EXPECT_EQ(t.rounds(), 0u);
}

TEST(PopulationTracker, PredictFollowsTheChurnProcess) {
  PopulationTracker t;
  t.initialize(1000.0, 100.0);
  const ProcessModel model{0.1, 50.0};
  t.predict(model);
  // Mean: (1−q)·x + a. Variance: (1−q)²·P + Q(x⁻) with
  // Q = x⁻·q·(1−q) + a evaluated at the new mean 950.
  EXPECT_DOUBLE_EQ(t.state(), 0.9 * 1000.0 + 50.0);
  EXPECT_DOUBLE_EQ(t.variance(),
                   0.81 * 100.0 + (950.0 * 0.1 * 0.9 + 50.0));
}

TEST(PopulationTracker, UpdateBlendsByTheKalmanGain) {
  PopulationTracker t;
  t.initialize(1000.0, 400.0);
  const FuseStep step = t.update(1100.0, 100.0);
  // K = P/(P+R) = 400/500 = 0.8.
  EXPECT_DOUBLE_EQ(step.gain, 0.8);
  EXPECT_DOUBLE_EQ(step.predicted, 1000.0);
  EXPECT_DOUBLE_EQ(step.innovation, 100.0);
  EXPECT_DOUBLE_EQ(step.fused, 1080.0);
  EXPECT_DOUBLE_EQ(step.residual, 20.0);
  // Posterior variance shrinks: (1−K)·P = 80.
  EXPECT_DOUBLE_EQ(step.variance, 80.0);
  EXPECT_EQ(t.rounds(), 1u);
}

TEST(PopulationTracker, NoisyObservationsBarelyMoveTheState) {
  PopulationTracker t;
  t.initialize(1000.0, 1.0);
  const FuseStep step = t.update(5000.0, 1e9);  // hopeless observation
  EXPECT_LT(step.gain, 1e-6);
  EXPECT_NEAR(step.fused, 1000.0, 0.01);
}

TEST(PopulationTracker, StateStaysNonNegative) {
  PopulationTracker t;
  t.initialize(10.0, 1e6);
  const FuseStep step = t.update(-1e5, 1.0);
  EXPECT_GE(step.fused, 0.0);
  EXPECT_GE(t.state(), 0.0);
}

TEST(PopulationTracker, RepeatedUpdatesConvergeOnAConstantSignal) {
  PopulationTracker t;
  t.initialize(0.0, 1e6);
  for (int i = 0; i < 50; ++i) {
    t.predict(ProcessModel{0.0, 0.0});  // static population
    t.update(777.0, 100.0);
  }
  EXPECT_NEAR(t.state(), 777.0, 1.0);
  // With no process noise the posterior variance keeps shrinking.
  EXPECT_LT(t.variance(), 100.0);
}

TEST(MeasurementVariance, MatchesTheorem3RelativeSd) {
  // §IV-D working point: n = 250k, w = 8192, k = 3, p_o = 3/1024.
  const double n = 250000.0;
  const double p = 3.0 / 1024.0;
  const double rel = core::predicted_relative_sd(n, 8192, 3, p);
  EXPECT_DOUBLE_EQ(measurement_variance(n, 8192, 3, p),
                   (rel * n) * (rel * n));
}

TEST(MeasurementVariance, DegenerateInputsAreClampedNotPropagated) {
  // n ≤ 0 clamps to 1; p outside the Theorem-4 grid clamps into it.
  EXPECT_EQ(measurement_variance(0.0, 8192, 3, 0.5),
            measurement_variance(1.0, 8192, 3, 0.5));
  EXPECT_EQ(measurement_variance(1000.0, 8192, 3, 0.0),
            measurement_variance(1000.0, 8192, 3, 1.0 / 1024.0));
  // Everything finite and positive.
  for (const double n : {0.0, 1.0, 100.0, 1e7}) {
    const double r = measurement_variance(n, 8192, 3, 3.0 / 1024.0);
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

TEST(Scenarios, SteadyScenarioBalancesArrivalsAgainstDepartures) {
  const ChurnSchedule s = steady_scenario(40, 0.05, 8000.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].rounds, 40u);
  EXPECT_DOUBLE_EQ(s[0].model.departure_prob, 0.05);
  EXPECT_DOUBLE_EQ(s[0].model.arrival_mean, 0.05 * 8000.0);
}

TEST(Scenarios, StepScenarioPhasesCoverEveryRound) {
  const ChurnSchedule s = step_scenario(60, 0.02, 10000.0, 1.5);
  std::size_t total = 0;
  for (const ChurnPhase& phase : s) total += phase.rounds;
  EXPECT_EQ(total, 60u);
  ASSERT_GE(s.size(), 2u);
  // The burst phase out-arrives the steady phases.
  EXPECT_GT(s[1].model.arrival_mean, s[0].model.arrival_mean);
}

SessionConfig small_session(std::uint64_t seed) {
  SessionConfig cfg;
  cfg.initial_population = 5000;
  cfg.req = {0.1, 0.1};
  cfg.seed = seed;
  return cfg;
}

TEST(TrackingSession, TrajectoryIsBitIdenticalForTheSameSeed) {
  const ChurnSchedule schedule = steady_scenario(8, 0.05, 5000.0);
  TrackingSession a(small_session(42));
  TrackingSession b(small_session(42));
  a.run(schedule);
  b.run(schedule);
  ASSERT_EQ(a.trajectory().size(), b.trajectory().size());
  for (std::size_t i = 0; i < a.trajectory().size(); ++i) {
    const TrackPoint& pa = a.trajectory()[i];
    const TrackPoint& pb = b.trajectory()[i];
    EXPECT_EQ(pa.true_n, pb.true_n) << i;
    EXPECT_EQ(pa.raw_n_hat, pb.raw_n_hat) << i;
    EXPECT_EQ(pa.tracked_n, pb.tracked_n) << i;
    EXPECT_EQ(pa.variance, pb.variance) << i;
    EXPECT_EQ(pa.p_o, pb.p_o) << i;
  }
}

TEST(TrackingSession, DifferentSeedsDiverge) {
  const ChurnSchedule schedule = steady_scenario(4, 0.05, 5000.0);
  TrackingSession a(small_session(1));
  TrackingSession b(small_session(2));
  a.run(schedule);
  b.run(schedule);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.trajectory().size(); ++i) {
    if (a.trajectory()[i].raw_n_hat != b.trajectory()[i].raw_n_hat) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(TrackingSession, StepAdvancesGroundTruthAndCounters) {
  TrackingSession session(small_session(7));
  const sim::ChurnModel model{0.05, 250.0};
  const TrackPoint p0 = session.step(model);
  EXPECT_EQ(p0.round, 0u);
  EXPECT_EQ(p0.true_n, session.true_population());
  EXPECT_GT(p0.raw_n_hat, 0.0);
  EXPECT_GT(p0.p_o, 0.0);
  // Round 0 seeds the tracker at the observation.
  EXPECT_DOUBLE_EQ(p0.tracked_n, p0.raw_n_hat);
  EXPECT_TRUE(session.tracker().initialized());

  const TrackPoint p1 = session.step(model);
  EXPECT_EQ(p1.round, 1u);
  EXPECT_NE(p1.gain, 0.0);
  EXPECT_EQ(session.trajectory().size(), 2u);
  EXPECT_GT(session.counters().total().frames, 0u);
}

TEST(TrackingSession, FusionBeatsRawRoundsOnSteadyChurn) {
  SessionConfig cfg = small_session(20150701);
  cfg.initial_population = 10000;
  TrackingSession session(cfg);
  session.run(steady_scenario(40, 0.02, 10000.0));
  const TrackSummary s = session.summary();
  ASSERT_EQ(s.rounds, 40u);
  EXPECT_GT(s.raw_rmse, 0.0);
  EXPECT_LT(s.tracked_rmse, s.raw_rmse);
  EXPECT_GT(s.improvement(), 1.0);
  EXPECT_GT(s.airtime_s, 0.0);
}

TEST(TrackingSession, SummaryMatchesFreeFunctionOverTheTrajectory) {
  TrackingSession session(small_session(3));
  session.run(steady_scenario(6, 0.05, 5000.0));
  const TrackSummary from_session = session.summary();
  const TrackSummary recomputed = summarize_trajectory(session.trajectory());
  EXPECT_EQ(from_session.rounds, recomputed.rounds);
  EXPECT_DOUBLE_EQ(from_session.raw_rmse, recomputed.raw_rmse);
  EXPECT_DOUBLE_EQ(from_session.tracked_rmse, recomputed.tracked_rmse);
  EXPECT_DOUBLE_EQ(from_session.innovation_rms, recomputed.innovation_rms);
  EXPECT_DOUBLE_EQ(from_session.airtime_s, recomputed.airtime_s);
}

TEST(TrackingSession, EmptyScheduleYieldsAnEmptySummary) {
  TrackingSession session(small_session(5));
  session.run({});
  const TrackSummary s = session.summary();
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_DOUBLE_EQ(s.raw_rmse, 0.0);
  EXPECT_FALSE(session.tracker().initialized());
}

}  // namespace
}  // namespace bfce::tracking
