// Tests for the federation layer: coverage geometry, the aggregation
// tree, the overlap-corrected union estimator and its service job kind.
#include "federation/federated_bfce.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/bfce.hpp"
#include "core/planner.hpp"
#include "federation/aggregation.hpp"
#include "federation/fleet.hpp"
#include "federation/geometry.hpp"
#include "hash/persistence.hpp"
#include "rfid/multireader.hpp"
#include "rfid/reader.hpp"
#include "service/metrics.hpp"
#include "service/service.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace bfce::federation {
namespace {

rfid::TagPopulation pop_of(std::size_t n, std::uint64_t seed) {
  return rfid::make_population(n, rfid::TagIdDistribution::kT1Uniform, seed);
}

// ---- Coverage geometry ---------------------------------------------------

TEST(CoverageProfileFn, SingleDiscMatchesClosedForm) {
  const CoverageProfile p =
      coverage_profile({rfid::ReaderPlacement{0.5, 0.5, 0.25}});
  const double disc = 3.14159265358979 * 0.25 * 0.25;
  EXPECT_NEAR(p.covered_area, disc, 2e-3);
  EXPECT_NEAR(p.coverage_mass, disc, 2e-3);
  EXPECT_EQ(p.multiple_area, 0.0);
  EXPECT_EQ(p.pair_mass, 0.0);
  EXPECT_FALSE(p.has_overlap());
  EXPECT_DOUBLE_EQ(p.mean_multiplicity(), 1.0);
  EXPECT_DOUBLE_EQ(p.overlap_fraction(), 0.0);
  double total = 0.0;
  for (const double a : p.area_by_multiplicity) total += a;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CoverageProfileFn, OverlappingPairRealisesRequestedFraction) {
  for (const double frac : {0.25, 0.5}) {
    const CoverageProfile p = coverage_profile(overlapping_pair(0.24, frac));
    EXPECT_TRUE(p.has_overlap());
    // overlap_fraction() = (A₁ − A_cov)/A_cov = lens / union, which is
    // exactly what overlapping_pair bisects the centre distance for.
    EXPECT_NEAR(p.overlap_fraction(), frac, 0.02);
  }
}

TEST(CoverageProfileFn, TangentPairIsExactlyDisjoint) {
  // frac ≤ 0 places the discs tangent; no midpoint of the 1024-lattice
  // hits the single tangency point, so the profile is disjoint exactly.
  const CoverageProfile p = coverage_profile(overlapping_pair(0.24, 0.0));
  EXPECT_FALSE(p.has_overlap());
  EXPECT_DOUBLE_EQ(p.overlap_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(p.mean_multiplicity(), 1.0);
}

TEST(CoverageProfileFn, GridRadiusForOverlapRealisesTarget) {
  const double r0 = grid_radius_for_overlap(16, 0.0, 512);
  EXPECT_FALSE(
      coverage_profile(rfid::MultiReaderSystem::grid(16, r0), 512).has_overlap());
  const double r = grid_radius_for_overlap(16, 0.25, 512);
  const CoverageProfile p =
      coverage_profile(rfid::MultiReaderSystem::grid(16, r), 512);
  EXPECT_NEAR(p.overlap_fraction(), 0.25, 0.04);
}

// ---- Effective-persistence laws ------------------------------------------

TEST(EffectivePersistenceFn, TrivialLawsReturnPExactly) {
  const CoverageProfile disjoint = coverage_profile(overlapping_pair(0.2, 0.0));
  const CoverageProfile overlapped =
      coverage_profile(overlapping_pair(0.2, 0.5));
  for (const double p : {0.0009765625, 0.1, 0.5302734375, 0.9990234375}) {
    // Disjoint coverage: both modes return the broadcast p bit-exactly.
    EXPECT_EQ(effective_persistence(disjoint, SessionCorrelation::kIndependent,
                                    rfid::FrameMode::kExact, p),
              p);
    EXPECT_EQ(effective_persistence(disjoint, SessionCorrelation::kIndependent,
                                    rfid::FrameMode::kSampled, p),
              p);
    // Coherent sessions: no correction even under heavy overlap.
    EXPECT_EQ(effective_persistence(overlapped, SessionCorrelation::kCoherent,
                                    rfid::FrameMode::kExact, p),
              p);
  }
}

TEST(EffectivePersistenceFn, PairwiseLawIsExactForTwoReaders) {
  // With multiplicity capped at 2, 1 − (1−p)² = 2p − p² is the pairwise
  // inclusion–exclusion itself, so the truncation loses nothing.
  const CoverageProfile p = coverage_profile(overlapping_pair(0.2, 0.4));
  ASSERT_TRUE(p.has_overlap());
  ASSERT_LT(p.area_by_multiplicity.size(), 4u);  // multiplicities ≤ 2
  for (const double q : {0.01, 0.1, 0.3}) {
    const double sat = effective_persistence(
        p, SessionCorrelation::kIndependent, rfid::FrameMode::kExact, q);
    const double lin = effective_persistence(
        p, SessionCorrelation::kIndependent, rfid::FrameMode::kSampled, q);
    EXPECT_GT(sat, q);   // overlap raises the effective persistence...
    EXPECT_LT(sat, lin); // ...but saturates below the additive law
    EXPECT_NEAR(p.pairwise_persistence(q), sat, 1e-12);
  }
}

TEST(EffectivePersistenceFn, BonferroniOrderingUnderTripleOverlap) {
  // A dense 3×3 grid has triple-and-higher overlap, so the three laws
  // separate strictly: pairwise ≤ saturating ≤ linear (Bonferroni).
  const CoverageProfile p =
      coverage_profile(rfid::MultiReaderSystem::grid(9, 0.35));
  ASSERT_GT(p.area_by_multiplicity.size(), 3u);
  for (const double q : {0.05, 0.2, 0.5}) {
    const double pair = p.pairwise_persistence(q);
    const double sat = p.saturating_persistence(q);
    const double lin = p.linear_persistence(q);
    EXPECT_LT(pair, sat);
    EXPECT_LT(sat, lin);
    EXPECT_GT(sat, q);
  }
}

TEST(FederatedSearchFn, MatchesPlainSearchWithoutOverlap) {
  const CoverageProfile disjoint = coverage_profile(overlapping_pair(0.2, 0.0));
  for (const double n_low : {500.0, 25000.0, 400000.0}) {
    const auto plain =
        core::PersistencePlanner::search(n_low, 8192, 3, 0.05, 0.05);
    const auto fed = federated_persistence_search(
        disjoint, SessionCorrelation::kIndependent, rfid::FrameMode::kSampled,
        n_low, 8192, 3, 0.05, 0.05);
    EXPECT_EQ(fed.p_n, plain.p_n);
    EXPECT_EQ(fed.satisfies, plain.satisfies);
    EXPECT_DOUBLE_EQ(fed.margin, plain.margin);
  }
}

TEST(FederatedSearchFn, OverlapLowersChosenPersistence) {
  // g(p) > p under overlap, so the smallest grid point whose effective
  // load satisfies Theorem 3 comes earlier than the plain choice.
  const CoverageProfile overlapped =
      coverage_profile(rfid::MultiReaderSystem::grid(9, 0.35));
  const double n_low = 25000.0;
  const auto plain =
      core::PersistencePlanner::search(n_low, 8192, 3, 0.05, 0.05);
  const auto fed = federated_persistence_search(
      overlapped, SessionCorrelation::kIndependent, rfid::FrameMode::kSampled,
      n_low, 8192, 3, 0.05, 0.05);
  ASSERT_TRUE(plain.satisfies);
  EXPECT_TRUE(fed.satisfies);
  EXPECT_LT(fed.p_n, plain.p_n);
}

// ---- Aggregation tree ----------------------------------------------------

util::BitVector random_bits(std::size_t size, util::Xoshiro256ss& rng) {
  util::BitVector v(size);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.set_word(w, rng());
  return v;
}

TEST(MergeTreeFn, EveryFanoutMatchesFlatOr) {
  util::Xoshiro256ss rng(7);
  std::vector<util::BitVector> leaves;
  for (int i = 0; i < 13; ++i) leaves.push_back(random_bits(300, rng));
  util::BitVector expect(300);
  for (const util::BitVector& leaf : leaves) {
    for (std::size_t w = 0; w < expect.word_count(); ++w) {
      expect.or_word(w, leaf.word(w));
    }
  }
  for (const std::uint32_t fanout : {1u, 2u, 3u, 8u, 64u}) {
    MergeStats stats;
    const util::BitVector merged = merge_tree(leaves, fanout, &stats);
    ASSERT_EQ(merged.size(), 300u);
    for (std::size_t w = 0; w < expect.word_count(); ++w) {
      EXPECT_EQ(merged.word(w), expect.word(w)) << "fanout " << fanout;
    }
    // N leaves always need exactly N−1 child-into-parent merges; the
    // fanout only shapes the tree (its height), never the work.
    EXPECT_EQ(stats.merges, 12u);
    EXPECT_EQ(stats.word_ors, 12u * expect.word_count());
    EXPECT_GE(stats.levels, 1u);
  }
  MergeStats binary, wide;
  merge_tree(leaves, 2, &binary);
  merge_tree(leaves, 64, &wide);
  EXPECT_EQ(binary.levels, 4u);  // ceil(log₂ 13)
  EXPECT_EQ(wide.levels, 1u);
}

TEST(MergeTreeFn, SingleLeafAndEmptyEdges) {
  MergeStats stats;
  std::vector<util::BitVector> one;
  one.emplace_back(65);
  one[0].set(64);
  const util::BitVector merged = merge_tree(std::move(one), 4, &stats);
  ASSERT_EQ(merged.size(), 65u);
  EXPECT_TRUE(merged.get(64));
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.word_ors, 0u);
  EXPECT_EQ(merge_tree({}, 4).size(), 0u);
}

// ---- The federated estimator ---------------------------------------------

TEST(FederatedBfce, SingleReaderFleetMatchesPlainBfce) {
  // The degenerate-case guarantee: a 1-reader fleet with fanout 1 is
  // bit-identical to plain BFCE — estimate, trace, airtime ledger and
  // RNG stream position.
  const auto pop = pop_of(40000, 11);
  const Fleet fleet(pop, {rfid::ReaderPlacement{0.5, 0.5, 1.5}});
  ASSERT_EQ(fleet.union_size(), 40000u);
  for (const rfid::FrameMode mode :
       {rfid::FrameMode::kSampled, rfid::FrameMode::kExact}) {
    const std::uint64_t seed = 0xFEDE7A7E5;
    core::BfceEstimator plain;
    core::BfceTrace ptrace;
    rfid::ReaderContext ctx(fleet.system().union_population(), seed, mode);
    const auto expect = plain.estimate_traced(ctx, {0.05, 0.05}, ptrace);
    const std::uint64_t expect_fp = ctx.next_seed();

    FederationConfig cfg;
    cfg.mode = mode;
    cfg.fanout = 1;
    cfg.seed = seed;
    const FederatedOutcome fed =
        FederatedBfceEstimator(cfg).estimate(fleet, {0.05, 0.05});

    EXPECT_EQ(fed.outcome.n_hat, expect.n_hat);
    EXPECT_EQ(fed.outcome.ci_low, expect.ci_low);
    EXPECT_EQ(fed.outcome.ci_high, expect.ci_high);
    EXPECT_EQ(fed.outcome.time_us, expect.time_us);
    EXPECT_EQ(fed.outcome.met_by_design, expect.met_by_design);
    EXPECT_EQ(fed.outcome.note, expect.note);
    EXPECT_EQ(fed.outcome.rounds, expect.rounds);
    EXPECT_EQ(fed.outcome.airtime.reader_bits, expect.airtime.reader_bits);
    EXPECT_EQ(fed.outcome.airtime.tag_bits, expect.airtime.tag_bits);
    EXPECT_EQ(fed.outcome.airtime.intervals, expect.airtime.intervals);
    EXPECT_EQ(fed.outcome.airtime.tag_tx_bits, expect.airtime.tag_tx_bits);
    EXPECT_EQ(fed.rng_fingerprint, expect_fp);

    EXPECT_EQ(fed.trace.probe_iterations, ptrace.probe_iterations);
    EXPECT_EQ(fed.trace.p_s_numerator, ptrace.p_s_numerator);
    EXPECT_EQ(fed.trace.rho_rough, ptrace.rho_rough);
    EXPECT_EQ(fed.trace.rough_slots_observed, ptrace.rough_slots_observed);
    EXPECT_EQ(fed.trace.n_rough, ptrace.n_rough);
    EXPECT_EQ(fed.trace.n_low, ptrace.n_low);
    EXPECT_EQ(fed.trace.p_choice.p_n, ptrace.p_choice.p_n);
    EXPECT_EQ(fed.trace.p_choice.satisfies, ptrace.p_choice.satisfies);
    EXPECT_EQ(fed.trace.rho_accurate, ptrace.rho_accurate);
    EXPECT_EQ(fed.trace.rho_clamped, ptrace.rho_clamped);

    EXPECT_EQ(fed.readers, 1u);
    EXPECT_EQ(fed.schedule_rounds, 1u);
    EXPECT_DOUBLE_EQ(fed.fleet_airtime_s,
                     expect.airtime.total_seconds(rfid::TimingModel{}));
    EXPECT_DOUBLE_EQ(fed.correction_g, fed.trace.p_choice.p);
    EXPECT_EQ(fed.merge.merges, 0u);  // single-leaf trees are free
    EXPECT_DOUBLE_EQ(fed.overlap_fraction, 0.0);
  }
}

TEST(FederatedBfce, CoherentFleetMatchesLogicalUnionReader) {
  // Exact-mode kRnBits sessions are pure functions of (RN, seed, slot):
  // a tag answers identically at every reader that covers it, so the
  // OR-merged fleet bitmap IS the §III-A logical reader's bitmap and the
  // whole federated run is bitwise equal to plain BFCE on the union.
  const auto pop = pop_of(20000, 41);
  const Fleet fleet(pop, rfid::MultiReaderSystem::grid(4, 0.4));
  ASSERT_GT(fleet.system().overlap_count(), 0u);
  const std::uint64_t seed = 0xC0DEC0DE;

  core::BfceParams params;
  params.persistence = hash::PersistenceMode::kRnBits;
  core::BfceEstimator plain(params);
  core::BfceTrace ptrace;
  rfid::ReaderContext ctx(fleet.system().union_population(), seed,
                          rfid::FrameMode::kExact);
  const auto expect = plain.estimate_traced(ctx, {0.05, 0.05}, ptrace);
  const std::uint64_t expect_fp = ctx.next_seed();

  FederationConfig cfg;
  cfg.params = params;
  cfg.correlation = SessionCorrelation::kCoherent;
  cfg.mode = rfid::FrameMode::kExact;
  cfg.fanout = 2;
  cfg.seed = seed;
  const FederatedOutcome fed =
      FederatedBfceEstimator(cfg).estimate(fleet, {0.05, 0.05});

  EXPECT_EQ(fed.outcome.n_hat, expect.n_hat);
  EXPECT_EQ(fed.outcome.ci_low, expect.ci_low);
  EXPECT_EQ(fed.outcome.ci_high, expect.ci_high);
  EXPECT_EQ(fed.trace.p_s_numerator, ptrace.p_s_numerator);
  EXPECT_EQ(fed.trace.rho_rough, ptrace.rho_rough);
  EXPECT_EQ(fed.trace.p_choice.p_n, ptrace.p_choice.p_n);
  EXPECT_EQ(fed.trace.rho_accurate, ptrace.rho_accurate);
  EXPECT_EQ(fed.rng_fingerprint, expect_fp);
  // One round's broadcast/slot ledger matches the logical reader; only
  // tag_tx_bits grows (overlapped tags transmit at every covering
  // reader), which total_us excludes by design.
  EXPECT_EQ(fed.outcome.airtime.reader_bits, expect.airtime.reader_bits);
  EXPECT_EQ(fed.outcome.airtime.tag_bits, expect.airtime.tag_bits);
  EXPECT_EQ(fed.outcome.time_us, expect.time_us);
  EXPECT_GT(fed.outcome.airtime.tag_tx_bits, expect.airtime.tag_tx_bits);
  EXPECT_GT(fed.schedule_rounds, 1u);  // overlapping discs interfere
}

TEST(FederatedBfce, UnionEstimateBeatsNaiveSummation) {
  const auto pop = pop_of(40000, 51);
  const Fleet fleet(pop, rfid::MultiReaderSystem::grid(9, 0.35));
  const double union_n = static_cast<double>(fleet.union_size());
  ASSERT_GT(fleet.system().overlap_count(), 0u);

  FederationConfig cfg;
  cfg.seed = 4242;
  const FederatedOutcome fed =
      FederatedBfceEstimator(cfg).estimate(fleet, {0.05, 0.05});
  EXPECT_GT(fed.overlap_fraction, 0.2);
  EXPECT_LT(fed.correction_g, 1.0);
  EXPECT_GT(fed.correction_g, fed.trace.p_choice.p);  // correction engaged

  double naive = 0.0;
  for (std::size_t r = 0; r < fleet.reader_count(); ++r) {
    rfid::ReaderContext ctx(fleet.system().reader_population(r),
                            util::derive_seed(4242, r),
                            rfid::FrameMode::kSampled);
    core::BfceEstimator bfce;
    naive += bfce.estimate(ctx, {0.05, 0.05}).n_hat;
  }

  const double fed_err = fed.outcome.relative_error(union_n);
  const double naive_err = std::fabs(naive - union_n) / union_n;
  EXPECT_LT(fed_err, 0.15);
  EXPECT_GT(naive_err, 0.3);  // double counting dominates
  EXPECT_LT(fed_err, naive_err);
}

TEST(FederatedBfce, ZeroCoverageFleetDegradesGracefully) {
  const auto pop = pop_of(1000, 61);
  const Fleet fleet(pop, {rfid::ReaderPlacement{0.5, 0.5, 0.0}});
  ASSERT_EQ(fleet.union_size(), 0u);
  FederationConfig cfg;
  cfg.seed = 9;
  const FederatedOutcome fed =
      FederatedBfceEstimator(cfg).estimate(fleet, {0.05, 0.05});
  EXPECT_FALSE(fed.outcome.met_by_design);
  EXPECT_EQ(fed.outcome.note, "rough phase saw an all-idle bitmap");
  EXPECT_TRUE(std::isfinite(fed.outcome.n_hat));
}

TEST(FederatedBfce, EmptyFleetIsFlagged) {
  const auto pop = pop_of(100, 71);
  const Fleet fleet(pop, {});
  const FederatedOutcome fed =
      FederatedBfceEstimator().estimate(fleet, {0.05, 0.05});
  EXPECT_FALSE(fed.outcome.met_by_design);
  EXPECT_EQ(fed.outcome.note, "federation over an empty fleet");
  EXPECT_EQ(fed.readers, 0u);
}

TEST(SessionCorrelationFn, ToCstring) {
  EXPECT_STREQ(to_cstring(SessionCorrelation::kIndependent), "independent");
  EXPECT_STREQ(to_cstring(SessionCorrelation::kCoherent), "coherent");
}

// ---- The service job kind ------------------------------------------------

TEST(FederationService, DegenerateJobMatchesPlainJobAndPlannerCache) {
  const auto pop = pop_of(30000, 21);
  const Fleet fleet(pop, {rfid::ReaderPlacement{0.5, 0.5, 1.5}});
  core::PersistencePlanner planner;
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.planner = &planner;
  service::EstimationService svc(scfg);

  service::JobSpec fed_spec;
  fed_spec.estimator = "BFCE-federated";
  fed_spec.seed = 1234;
  fed_spec.federation = service::FederationJobSpec{
      &fleet, SessionCorrelation::kIndependent, 1};
  const auto fed_res = svc.wait(svc.submit(fed_spec));
  ASSERT_EQ(fed_res.status, service::JobStatus::kDone);
  ASSERT_TRUE(fed_res.federation.has_value());
  const auto after_fed = planner.stats();
  EXPECT_EQ(after_fed.misses, 1u);
  EXPECT_EQ(after_fed.entries, 1u);

  service::JobSpec plain_spec;
  plain_spec.population = &fleet.system().union_population();
  plain_spec.seed = 1234;
  const auto plain_res = svc.wait(svc.submit(plain_spec));
  ASSERT_EQ(plain_res.status, service::JobStatus::kDone);
  // The degenerate federation job consults the planner with the same
  // bucketed key a plain job computes: the follow-up hits, adds nothing.
  const auto after_plain = planner.stats();
  EXPECT_EQ(after_plain.hits, after_fed.hits + 1);
  EXPECT_EQ(after_plain.entries, after_fed.entries);

  EXPECT_EQ(fed_res.outcome.n_hat, plain_res.outcome.n_hat);
  EXPECT_EQ(fed_res.outcome.ci_low, plain_res.outcome.ci_low);
  EXPECT_EQ(fed_res.outcome.ci_high, plain_res.outcome.ci_high);
  EXPECT_EQ(fed_res.airtime_s, plain_res.airtime_s);
  EXPECT_EQ(fed_res.attempts, plain_res.attempts);
  EXPECT_EQ(fed_res.federation->readers, 1u);
  EXPECT_EQ(fed_res.federation->schedule_rounds, 1u);
  EXPECT_DOUBLE_EQ(fed_res.federation->fleet_airtime_s, fed_res.airtime_s);

  // Stream-position witness: attempt 0 of the job consumed exactly what
  // a plain estimate on the derived stream consumes.
  rfid::ReaderContext ctx(fleet.system().union_population(),
                          util::derive_seed(1234, 0), scfg.mode);
  core::BfceParams params;
  params.planner = &planner;
  core::BfceEstimator plain(params);
  plain.estimate(ctx, plain_spec.req);
  EXPECT_EQ(fed_res.federation->rng_fingerprint, ctx.next_seed());

  const auto m = svc.metrics();
  EXPECT_EQ(m.federation.jobs, 1u);
  EXPECT_EQ(m.federation.readers, 1u);
  EXPECT_EQ(m.federation.schedule_rounds, 1u);
  EXPECT_NE(service::render_service_metrics(m).find("federation:"),
            std::string::npos);
  EXPECT_NE(service::service_metrics_json(m).find("\"federation\""),
            std::string::npos);
}

TEST(FederationService, BitIdenticalAcrossWorkersAndFanouts) {
  const auto pop = pop_of(30000, 31);
  const Fleet fleet(pop, rfid::MultiReaderSystem::grid(9, 0.35));
  ASSERT_GT(fleet.system().overlap_count(), 0u);

  struct Snapshot {
    double n_hat, ci_low, ci_high, g, airtime_s;
    std::uint64_t fp, tag_tx;
  };
  std::vector<std::vector<Snapshot>> runs;
  for (const unsigned workers : {1u, 4u, 8u}) {
    for (const std::uint32_t fanout : {2u, 8u}) {
      service::ServiceConfig scfg;
      scfg.workers = workers;
      service::EstimationService svc(scfg);
      std::vector<service::JobId> ids;
      for (int j = 0; j < 5; ++j) {
        service::JobSpec spec;
        spec.seed = 9000 + static_cast<std::uint64_t>(j);
        spec.federation = service::FederationJobSpec{
            &fleet, SessionCorrelation::kIndependent, fanout};
        ids.push_back(svc.submit(spec));
      }
      std::vector<Snapshot> snaps;
      for (const service::JobId id : ids) {
        const auto res = svc.wait(id);
        ASSERT_EQ(res.status, service::JobStatus::kDone);
        ASSERT_TRUE(res.federation.has_value());
        snaps.push_back({res.outcome.n_hat, res.outcome.ci_low,
                         res.outcome.ci_high, res.federation->correction_g,
                         res.airtime_s, res.federation->rng_fingerprint,
                         res.outcome.airtime.tag_tx_bits});
      }
      runs.push_back(std::move(snaps));
    }
  }
  for (std::size_t c = 1; c < runs.size(); ++c) {
    for (std::size_t j = 0; j < runs[0].size(); ++j) {
      EXPECT_EQ(runs[c][j].n_hat, runs[0][j].n_hat) << "config " << c;
      EXPECT_EQ(runs[c][j].ci_low, runs[0][j].ci_low);
      EXPECT_EQ(runs[c][j].ci_high, runs[0][j].ci_high);
      EXPECT_EQ(runs[c][j].g, runs[0][j].g);
      EXPECT_EQ(runs[c][j].airtime_s, runs[0][j].airtime_s);
      EXPECT_EQ(runs[c][j].fp, runs[0][j].fp);
      EXPECT_EQ(runs[c][j].tag_tx, runs[0][j].tag_tx);
    }
  }
}

TEST(FederationService, FleetAirtimeBudgetDrivesDeadline) {
  const auto pop = pop_of(20000, 81);
  const Fleet fleet(pop, overlapping_pair(0.24, 0.5));
  service::ServiceConfig scfg;
  scfg.workers = 1;
  service::EstimationService svc(scfg);
  service::JobSpec spec;
  spec.seed = 5;
  spec.max_attempts = 2;
  spec.airtime_budget_s = 1e-9;  // no fleet can interrogate this fast
  spec.federation = service::FederationJobSpec{
      &fleet, SessionCorrelation::kIndependent, 2};
  const auto res = svc.wait(svc.submit(spec));
  EXPECT_EQ(res.status, service::JobStatus::kDeadlineMissed);
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_EQ(svc.metrics().retries, 1u);
}

TEST(FederationService, NullFleetFails) {
  service::EstimationService svc({.workers = 1});
  service::JobSpec spec;
  spec.federation = service::FederationJobSpec{};
  const auto res = svc.wait(svc.submit(spec));
  EXPECT_EQ(res.status, service::JobStatus::kFailed);
  EXPECT_EQ(res.outcome.note, "federation job has no fleet");
}

}  // namespace
}  // namespace bfce::federation
