// Tests for the dynamic-population timeline.
#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/differential.hpp"
#include "math/stats.hpp"

namespace bfce::sim {
namespace {

TEST(Churn, StartsWithTheRequestedPopulation) {
  PopulationTimeline tl(5000, 1);
  EXPECT_EQ(tl.size(), 5000u);
  std::unordered_set<std::uint64_t> ids;
  for (const rfid::Tag& t : tl.current().tags()) {
    EXPECT_GE(t.id, 1u);
    EXPECT_LE(t.id, 1000000000000000ULL);
    ids.insert(t.id);
  }
  EXPECT_EQ(ids.size(), 5000u);
}

TEST(Churn, DeterministicInSeed) {
  PopulationTimeline a(1000, 7);
  PopulationTimeline b(1000, 7);
  const ChurnModel model{0.1, 50.0};
  for (int i = 0; i < 5; ++i) {
    const ChurnStep sa = a.step(model);
    const ChurnStep sb = b.step(model);
    EXPECT_EQ(sa.departed, sb.departed);
    EXPECT_EQ(sa.arrived, sb.arrived);
  }
}

TEST(Churn, NoChurnModelLeavesPopulationUntouched) {
  PopulationTimeline tl(2000, 2);
  const auto before = tl.current().tags();
  const ChurnStep s = tl.step(ChurnModel{0.0, 0.0});
  EXPECT_EQ(s.departed, 0u);
  EXPECT_EQ(s.arrived, 0u);
  ASSERT_EQ(tl.size(), 2000u);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(tl.current()[i].id, before[i].id);
  }
}

TEST(Churn, DepartureRateMatches) {
  PopulationTimeline tl(50000, 3);
  const ChurnStep s = tl.step(ChurnModel{0.2, 0.0});
  EXPECT_NEAR(static_cast<double>(s.departed), 10000.0, 400.0);  // ±~7σ
  EXPECT_EQ(s.population, 50000u - s.departed);
}

TEST(Churn, ArrivalsArePoisson) {
  PopulationTimeline tl(100, 4);
  math::RunningStats arrivals;
  for (int i = 0; i < 300; ++i) {
    arrivals.add(static_cast<double>(tl.step(ChurnModel{0.0, 20.0}).arrived));
  }
  EXPECT_NEAR(arrivals.mean(), 20.0, 1.0);
  // Poisson: variance ≈ mean.
  EXPECT_NEAR(arrivals.variance(), 20.0, 5.0);
}

TEST(Churn, SurvivorsKeepTheirIdentity) {
  PopulationTimeline tl(5000, 5);
  std::unordered_set<std::uint64_t> before;
  for (const rfid::Tag& t : tl.current().tags()) before.insert(t.id);
  const ChurnStep s = tl.step(ChurnModel{0.3, 100.0});
  std::size_t survivors = 0;
  for (const rfid::Tag& t : tl.current().tags()) {
    if (before.count(t.id)) ++survivors;
  }
  EXPECT_EQ(survivors, 5000u - s.departed);
}

TEST(Churn, SteadyStateHoversAroundArrivalOverDeparture) {
  // With departure prob q and arrival mean a, the stationary size is
  // a/q; start far away and converge.
  PopulationTimeline tl(100, 6);
  const ChurnModel model{0.05, 250.0};  // stationary ≈ 5000
  for (int i = 0; i < 200; ++i) tl.step(model);
  EXPECT_NEAR(static_cast<double>(tl.size()), 5000.0, 1000.0);
}

TEST(Churn, DrivesTheDifferentialEstimatorEndToEnd) {
  // Snapshot, churn one period, snapshot again: the differential
  // estimate must track the timeline's own ground truth.
  PopulationTimeline tl(20000, 8);
  core::DifferentialConfig cfg;
  cfg.tune_for(20000.0);
  const rfid::Channel ch;
  util::Xoshiro256ss rng(9);
  const auto ref = core::take_snapshot(tl.current(), cfg, ch, rng);
  const ChurnStep s = tl.step(ChurnModel{0.10, 800.0});
  const auto now = core::take_snapshot(tl.current(), cfg, ch, rng);
  const auto churn = core::compare_snapshots(ref, now, cfg);
  EXPECT_NEAR(churn.departed, static_cast<double>(s.departed),
              static_cast<double>(s.departed) * 0.35);
  EXPECT_NEAR(churn.arrived, static_cast<double>(s.arrived),
              static_cast<double>(s.arrived) * 0.5 + 100.0);
}

}  // namespace
}  // namespace bfce::sim
