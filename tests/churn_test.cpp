// Tests for the dynamic-population timeline.
#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/bfce.hpp"
#include "core/differential.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::sim {
namespace {

TEST(Churn, StartsWithTheRequestedPopulation) {
  PopulationTimeline tl(5000, 1);
  EXPECT_EQ(tl.size(), 5000u);
  std::unordered_set<std::uint64_t> ids;
  for (const rfid::Tag& t : tl.current().tags()) {
    EXPECT_GE(t.id, 1u);
    EXPECT_LE(t.id, 1000000000000000ULL);
    ids.insert(t.id);
  }
  EXPECT_EQ(ids.size(), 5000u);
}

TEST(Churn, DeterministicInSeed) {
  PopulationTimeline a(1000, 7);
  PopulationTimeline b(1000, 7);
  const ChurnModel model{0.1, 50.0};
  for (int i = 0; i < 5; ++i) {
    const ChurnStep sa = a.step(model);
    const ChurnStep sb = b.step(model);
    EXPECT_EQ(sa.departed, sb.departed);
    EXPECT_EQ(sa.arrived, sb.arrived);
  }
}

TEST(Churn, NoChurnModelLeavesPopulationUntouched) {
  PopulationTimeline tl(2000, 2);
  const auto before = tl.current().tags();
  const ChurnStep s = tl.step(ChurnModel{0.0, 0.0});
  EXPECT_EQ(s.departed, 0u);
  EXPECT_EQ(s.arrived, 0u);
  ASSERT_EQ(tl.size(), 2000u);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(tl.current()[i].id, before[i].id);
  }
}

TEST(Churn, DepartureRateMatches) {
  PopulationTimeline tl(50000, 3);
  const ChurnStep s = tl.step(ChurnModel{0.2, 0.0});
  EXPECT_NEAR(static_cast<double>(s.departed), 10000.0, 400.0);  // ±~7σ
  EXPECT_EQ(s.population, 50000u - s.departed);
}

TEST(Churn, ArrivalsArePoisson) {
  PopulationTimeline tl(100, 4);
  math::RunningStats arrivals;
  for (int i = 0; i < 300; ++i) {
    arrivals.add(static_cast<double>(tl.step(ChurnModel{0.0, 20.0}).arrived));
  }
  EXPECT_NEAR(arrivals.mean(), 20.0, 1.0);
  // Poisson: variance ≈ mean.
  EXPECT_NEAR(arrivals.variance(), 20.0, 5.0);
}

TEST(Churn, LargeArrivalBatchesAreNotTruncated) {
  // Knuth's product method compares against exp(-λ), which underflows
  // for λ ≳ 708; before chunking, batches this size were silently
  // capped near 700 arrivals.
  PopulationTimeline tl(0, 11);
  const ChurnStep s = tl.step(ChurnModel{0.0, 5000.0});
  EXPECT_NEAR(static_cast<double>(s.arrived), 5000.0, 500.0);  // ±~7σ
  EXPECT_EQ(s.population, s.arrived);
}

TEST(Churn, SurvivorsKeepTheirIdentity) {
  PopulationTimeline tl(5000, 5);
  std::unordered_set<std::uint64_t> before;
  for (const rfid::Tag& t : tl.current().tags()) before.insert(t.id);
  const ChurnStep s = tl.step(ChurnModel{0.3, 100.0});
  std::size_t survivors = 0;
  for (const rfid::Tag& t : tl.current().tags()) {
    if (before.count(t.id)) ++survivors;
  }
  EXPECT_EQ(survivors, 5000u - s.departed);
}

TEST(Churn, SteadyStateHoversAroundArrivalOverDeparture) {
  // With departure prob q and arrival mean a, the stationary size is
  // a/q; start far away and converge.
  PopulationTimeline tl(100, 6);
  const ChurnModel model{0.05, 250.0};  // stationary ≈ 5000
  for (int i = 0; i < 200; ++i) tl.step(model);
  EXPECT_NEAR(static_cast<double>(tl.size()), 5000.0, 1000.0);
}

/// Runs one BFCE estimate against `tl`'s current population and checks
/// the all-idle ρ̄ = 1 path stays finite (no division by zero, no NaN in
/// Theorem 2's inversion) — the contract the tiny-population fallback
/// promises.
void expect_finite_estimate(const sim::PopulationTimeline& tl) {
  rfid::ReaderContext ctx(tl.current(), 21, rfid::FrameMode::kExact);
  core::BfceEstimator estimator;
  const estimators::EstimateOutcome out =
      estimator.estimate(ctx, {0.05, 0.05});
  EXPECT_TRUE(std::isfinite(out.n_hat));
  EXPECT_GE(out.n_hat, 0.0);
  EXPECT_TRUE(std::isfinite(out.time_us));
  // A population this small cannot satisfy Theorem 3 — the outcome must
  // be honestly flagged, not silently mislabelled as designed.
  EXPECT_FALSE(out.met_by_design);
}

TEST(Churn, EmptyPopulationSurvivesChurnAndEstimation) {
  PopulationTimeline tl(0, 9);
  EXPECT_EQ(tl.size(), 0u);
  // Departures from nothing are nothing.
  const ChurnStep s = tl.step(ChurnModel{0.5, 0.0});
  EXPECT_EQ(s.departed, 0u);
  EXPECT_EQ(s.arrived, 0u);
  EXPECT_EQ(s.population, 0u);
  expect_finite_estimate(tl);
  // An empty timeline can still grow.
  ChurnStep grown{};
  for (int i = 0; i < 20 && tl.size() == 0; ++i) {
    grown = tl.step(ChurnModel{0.0, 5.0});
  }
  EXPECT_GT(tl.size(), 0u);
  EXPECT_EQ(grown.population, tl.size());
}

TEST(Churn, SingletonPopulationSurvivesChurnAndEstimation) {
  PopulationTimeline tl(1, 10);
  EXPECT_EQ(tl.size(), 1u);
  expect_finite_estimate(tl);
  // Churn with q = 1 must be able to empty it without wrapping.
  const ChurnStep s = tl.step(ChurnModel{1.0, 0.0});
  EXPECT_EQ(s.departed, 1u);
  EXPECT_EQ(s.population, 0u);
  expect_finite_estimate(tl);
}

TEST(Churn, DrivesTheDifferentialEstimatorEndToEnd) {
  // Snapshot, churn one period, snapshot again: the differential
  // estimate must track the timeline's own ground truth.
  PopulationTimeline tl(20000, 8);
  core::DifferentialConfig cfg;
  cfg.tune_for(20000.0);
  const rfid::Channel ch;
  util::Xoshiro256ss rng(9);
  const auto ref = core::take_snapshot(tl.current(), cfg, ch, rng);
  const ChurnStep s = tl.step(ChurnModel{0.10, 800.0});
  const auto now = core::take_snapshot(tl.current(), cfg, ch, rng);
  const auto churn = core::compare_snapshots(ref, now, cfg);
  EXPECT_NEAR(churn.departed, static_cast<double>(s.departed),
              static_cast<double>(s.departed) * 0.35);
  EXPECT_NEAR(churn.arrived, static_cast<double>(s.arrived),
              static_cast<double>(s.arrived) * 0.5 + 100.0);
}

}  // namespace
}  // namespace bfce::sim
