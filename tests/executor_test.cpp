// The persistent work-stealing executor behind util::parallel_for.
//
// These are the contract tests the ISSUE calls out by name: nesting from a
// pool worker, exception propagation out of fn, shutdown while a run is in
// flight, and oversubscription beyond the hardware thread count. The suite
// also re-runs whole under the tsan preset (STRESS registration), where the
// lane CAS protocol and the completion handshake get hammered for real.

#include "util/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace {

using bfce::util::Executor;
using bfce::util::parallel_for;

std::function<void(std::size_t)> mark_once(
    std::vector<std::atomic<int>>& hits) {
  return [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  };
}

void expect_all_once(const std::vector<std::atomic<int>>& hits) {
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
}

TEST(Executor, VisitsEveryIndexOnceAcrossPoolSizes) {
  for (const unsigned threads : {2u, 3u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(10007);
    parallel_for(0, hits.size(), mark_once(hits), threads);
    expect_all_once(hits);
  }
}

TEST(Executor, PoolPersistsAcrossCalls) {
  parallel_for(0, 64, [](std::size_t) {}, 4);
  const auto before = Executor::instance().stats();
  const unsigned live = Executor::instance().live_workers();
  EXPECT_GE(live, 3u);  // the first call grew the pool to threads - 1
  for (int round = 0; round < 50; ++round) {
    parallel_for(0, 64, [](std::size_t) {}, 4);
  }
  const auto after = Executor::instance().stats();
  // Reuse, not respawn: dispatches advanced, worker creation did not.
  EXPECT_EQ(after.spawned, before.spawned);
  EXPECT_GE(after.dispatches, before.dispatches + 50);
}

TEST(Executor, InlineWhenSingleThreaded) {
  const auto before = Executor::instance().stats();
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, hits.size(), mark_once(hits), 1);
  expect_all_once(hits);
  const auto after = Executor::instance().stats();
  EXPECT_GE(after.inline_runs, before.inline_runs + 1);
  EXPECT_EQ(after.dispatches, before.dispatches);
}

TEST(Executor, NestedParallelForFromPoolWorker) {
  // Every outer index fans out again from inside a dispatched fn. A pool
  // worker reaching the inner call must inline-or-donate, never park on
  // itself: this deadlocks in under a second if nesting is broken.
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 512;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  std::atomic<int> nested_on_worker{0};
  parallel_for(
      0, kOuter,
      [&](std::size_t o) {
        if (Executor::on_worker_thread()) {
          nested_on_worker.fetch_add(1, std::memory_order_relaxed);
        }
        parallel_for(
            0, kInner,
            [&, o](std::size_t i) {
              hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
            },
            4);
      },
      4);
  expect_all_once(hits);
  // With 3 pool helpers on the outer job, at least one inner call should
  // have originated on a pool worker (the scenario under test). Timing can
  // in principle let the caller run all 8 outer indices itself, so only
  // assert when the pool demonstrably participated.
  SUCCEED() << "nested calls from workers: " << nested_on_worker.load();
}

TEST(Executor, DeeplyNestedCallsComplete) {
  std::atomic<int> leaves{0};
  parallel_for(
      0, 4,
      [&](std::size_t) {
        parallel_for(
            0, 4,
            [&](std::size_t) {
              parallel_for(
                  0, 4,
                  [&](std::size_t) {
                    leaves.fetch_add(1, std::memory_order_relaxed);
                  },
                  2);
            },
            2);
      },
      2);
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(Executor, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(
          0, 1000,
          [](std::size_t i) {
            if (i == 345) throw std::runtime_error("boom at 345");
          },
          4),
      std::runtime_error);
}

TEST(Executor, ExceptionCancelsUntakenIndices) {
  std::atomic<std::size_t> executed{0};
  constexpr std::size_t kTotal = 1u << 20;
  try {
    parallel_for(
        0, kTotal,
        [&](std::size_t i) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (i == 0) throw std::runtime_error("cancel the rest");
        },
        4);
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  // Cancellation is best-effort, but with the throw on the very first
  // caller-owned index the bulk of a 1M-index range must never run.
  EXPECT_LT(executed.load(), kTotal);
}

TEST(Executor, ExceptionPropagatesThroughNesting) {
  EXPECT_THROW(
      parallel_for(
          0, 4,
          [](std::size_t) {
            parallel_for(
                0, 64,
                [](std::size_t i) {
                  if (i == 63) throw std::logic_error("from the inner job");
                },
                2);
          },
          2),
      std::logic_error);
  // The pool survives a propagated exception and keeps scheduling.
  std::vector<std::atomic<int>> hits(257);
  parallel_for(0, hits.size(), mark_once(hits), 4);
  expect_all_once(hits);
}

TEST(Executor, ShutdownWhileBusyCompletesTheRun) {
  std::vector<std::atomic<int>> hits(600);
  std::thread runner([&] {
    parallel_for(
        0, hits.size(),
        [&](std::size_t i) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        4);
  });
  // Let the run get going, then yank the pool out from under it: workers
  // finish their current index and exit, the caller drains the rest.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Executor::instance().shutdown();
  runner.join();
  expect_all_once(hits);
  EXPECT_EQ(Executor::instance().live_workers(), 0u);
  // The pool respawns lazily on the next dispatch.
  std::vector<std::atomic<int>> again(1000);
  parallel_for(0, again.size(), mark_once(again), 4);
  expect_all_once(again);
  EXPECT_GE(Executor::instance().live_workers(), 3u);
}

TEST(Executor, OversubscriptionBeyondHardwareThreads) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned threads = (hw == 0 ? 1 : hw) * 4 + 8;
  std::vector<std::atomic<int>> hits(50021);
  parallel_for(0, hits.size(), mark_once(hits), threads);
  expect_all_once(hits);
  EXPECT_GE(Executor::instance().live_workers(), threads - 1);
}

TEST(Executor, UnevenWorkIsStolen) {
  // Front-loaded cost: index 0 is ~1000x the rest, so lane 0's owner is
  // busy while its range sits stealable. All indices must still complete
  // promptly; the steals counter shows the mechanism engaged (not asserted
  // hard — a 1-core box may legitimately finish lanes in order).
  std::vector<std::atomic<int>> hits(4096);
  parallel_for(
      0, hits.size(),
      [&](std::size_t i) {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
        hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      4);
  expect_all_once(hits);
}

TEST(Executor, CallerThreadIsNotAWorker) {
  EXPECT_FALSE(Executor::on_worker_thread());
  std::atomic<int> worker_calls{0};
  parallel_for(
      0, 256,
      [&](std::size_t) {
        if (Executor::on_worker_thread()) {
          worker_calls.fetch_add(1, std::memory_order_relaxed);
        }
      },
      4);
  EXPECT_FALSE(Executor::on_worker_thread());
}

TEST(Executor, ResultsIdenticalAcrossPoolSizes) {
  // Bit-identity at the executor level: fn(i) is a pure function of i, so
  // any pool size must produce the same output array.
  auto run = [](unsigned threads) {
    std::vector<std::uint64_t> out(8192);
    parallel_for(
        0, out.size(),
        [&](std::size_t i) { out[i] = i * 0x9E3779B97F4A7C15ULL; }, threads);
    return out;
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(4));
  EXPECT_EQ(one, run(8));
}

}  // namespace
