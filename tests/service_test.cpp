// Tests for the estimation service: determinism across worker counts,
// planner-cache transparency, deadline/retry/cancellation semantics and
// bounded-queue backpressure.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rfid/population.hpp"

namespace bfce::service {
namespace {

/// Manually opened gate; estimators block on it to pin a worker.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard lock(m);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return open; });
  }
};

/// Test double: returns a fixed estimate, optionally blocking on a gate
/// and optionally failing its design point for the first `fail_first`
/// constructions (the service builds one instance per attempt).
class StubEstimator final : public estimators::CardinalityEstimator {
 public:
  StubEstimator(std::shared_ptr<Gate> gate, bool met) : gate_(std::move(gate)), met_(met) {}

  std::string name() const override { return "stub"; }
  estimators::EstimateOutcome estimate(
      rfid::ReaderContext&, const estimators::Requirement&) override {
    if (gate_) gate_->wait();
    estimators::EstimateOutcome out;
    out.n_hat = 123.0;
    out.met_by_design = met_;
    if (!met_) out.note = "stub designed to fail";
    return out;
  }

 private:
  std::shared_ptr<Gate> gate_;
  bool met_;
};

EstimatorFactory failing_first_attempts(std::uint32_t fail_first) {
  auto built = std::make_shared<std::atomic<std::uint32_t>>(0);
  return [built, fail_first] {
    const std::uint32_t idx = built->fetch_add(1);
    return std::make_unique<StubEstimator>(nullptr, idx >= fail_first);
  };
}

const rfid::TagPopulation& small_pop() {
  static const auto pop =
      rfid::make_population(30000, rfid::TagIdDistribution::kT1Uniform, 11);
  return pop;
}

const rfid::TagPopulation& large_pop() {
  static const auto pop = rfid::make_population(
      400000, rfid::TagIdDistribution::kT2ApproxNormal, 12);
  return pop;
}

/// The mixed workload shared by the determinism/equivalence tests.
std::vector<JobSpec> mixed_jobs() {
  std::vector<JobSpec> specs;
  const estimators::Requirement reqs[] = {{0.05, 0.05}, {0.1, 0.1},
                                          {0.02, 0.05}};
  for (std::uint64_t i = 0; i < 24; ++i) {
    JobSpec spec;
    spec.population = (i % 2 == 0) ? &small_pop() : &large_pop();
    spec.estimator = (i % 5 == 4) ? "ZOE" : "BFCE";
    spec.req = reqs[i % 3];
    spec.seed = 1000 + i;
    spec.max_attempts = 2;
    specs.push_back(spec);
  }
  return specs;
}

std::vector<JobResult> run_all(EstimationService& svc,
                               const std::vector<JobSpec>& specs) {
  std::vector<JobId> ids;
  ids.reserve(specs.size());
  for (const JobSpec& spec : specs) ids.push_back(svc.submit(spec));
  std::vector<JobResult> results;
  results.reserve(ids.size());
  for (const JobId id : ids) results.push_back(svc.wait(id));
  return results;
}

void expect_same_results(const std::vector<JobResult>& a,
                         const std::vector<JobResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << i;
    EXPECT_DOUBLE_EQ(a[i].outcome.n_hat, b[i].outcome.n_hat) << i;
    EXPECT_DOUBLE_EQ(a[i].outcome.ci_low, b[i].outcome.ci_low) << i;
    EXPECT_DOUBLE_EQ(a[i].outcome.ci_high, b[i].outcome.ci_high) << i;
    EXPECT_DOUBLE_EQ(a[i].airtime_s, b[i].airtime_s) << i;
    EXPECT_EQ(a[i].outcome.met_by_design, b[i].outcome.met_by_design) << i;
  }
}

TEST(EstimationService, ResultsBitIdenticalAcrossWorkerCounts) {
  const auto specs = mixed_jobs();

  ServiceConfig one;
  one.workers = 1;
  EstimationService serial(one);
  const auto serial_results = run_all(serial, specs);

  ServiceConfig many;
  many.workers = 8;
  EstimationService parallel(many);
  const auto parallel_results = run_all(parallel, specs);

  expect_same_results(serial_results, parallel_results);
}

// The determinism regression the tooling PR locks in: the full worker-
// count × planner-cache matrix must reproduce one reference run bit for
// bit. This is the invariant the tsan preset and tools/lint_determinism.py
// exist to protect — if it ever breaks, suspect a nondeterminism source
// (wall clock, unseeded RNG, shared mutable state) smuggled into an
// estimator path.
TEST(EstimationService, DeterministicAcrossWorkerCountAndCacheMatrix) {
  const auto specs = mixed_jobs();

  ServiceConfig ref_cfg;
  ref_cfg.workers = 1;
  EstimationService reference(ref_cfg);
  const auto ref_results = run_all(reference, specs);

  for (const unsigned workers : {1u, 4u, 8u}) {
    for (const bool cached : {false, true}) {
      core::PersistencePlanner planner(
          core::PersistencePlanner::Options{.cache = cached});
      ServiceConfig cfg;
      cfg.workers = workers;
      cfg.planner = &planner;
      EstimationService svc(cfg);
      const auto results = run_all(svc, specs);
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " cache=" + (cached ? std::string("on") : "off"));
      expect_same_results(ref_results, results);
    }
  }
}

TEST(EstimationService, PlannerCacheOnVsOffIsEquivalent) {
  const auto specs = mixed_jobs();

  core::PersistencePlanner cache;
  ServiceConfig with;
  with.workers = 4;
  with.planner = &cache;
  EstimationService cached(with);
  const auto cached_results = run_all(cached, specs);

  ServiceConfig without;
  without.workers = 4;
  EstimationService uncached(without);
  const auto uncached_results = run_all(uncached, specs);

  expect_same_results(cached_results, uncached_results);

  // The fleet repeats (n̂_low, ε, δ) keys, so the cache must be warm.
  const core::PlannerCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  const ServiceMetrics m = cached.metrics();
  EXPECT_TRUE(m.planner_attached);
  EXPECT_EQ(m.planner.hits, stats.hits);
}

TEST(EstimationService, RetryRunsFreshAttemptsUntilSuccess) {
  ServiceConfig cfg;
  cfg.workers = 1;
  EstimationService svc(cfg);

  JobSpec spec;
  spec.population = &small_pop();
  spec.factory = failing_first_attempts(1);  // attempt 0 fails, 1 succeeds
  spec.max_attempts = 3;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_TRUE(r.outcome.met_by_design);

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.retries, 1u);
  EXPECT_EQ(m.done, 1u);
}

TEST(EstimationService, ExhaustedRetriesStillDeliverTheEstimate) {
  ServiceConfig cfg;
  cfg.workers = 1;
  EstimationService svc(cfg);

  JobSpec spec;
  spec.population = &small_pop();
  spec.factory = failing_first_attempts(99);  // never succeeds
  spec.max_attempts = 3;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kDone);  // estimate delivered, flagged
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_FALSE(r.outcome.met_by_design);
  EXPECT_EQ(svc.metrics().retries, 2u);
}

TEST(EstimationService, AirtimeBudgetMissesDeadlineDeterministically) {
  ServiceConfig cfg;
  cfg.workers = 2;
  EstimationService svc(cfg);

  JobSpec spec;
  spec.population = &small_pop();
  spec.estimator = "BFCE";
  spec.seed = 99;
  spec.airtime_budget_s = 1e-9;  // BFCE needs ~0.19 s — always over
  spec.max_attempts = 2;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kDeadlineMissed);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_GT(r.airtime_s, spec.airtime_budget_s);

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.deadline_missed, 1u);
  EXPECT_EQ(m.retries, 1u);
}

TEST(EstimationService, WallDeadlineExpiresQueuedJobs) {
  ServiceConfig cfg;
  cfg.workers = 1;
  EstimationService svc(cfg);

  auto gate = std::make_shared<Gate>();
  JobSpec blocker;
  blocker.population = &small_pop();
  blocker.factory = [gate] {
    return std::make_unique<StubEstimator>(gate, true);
  };
  const JobId blocking = svc.submit(blocker);

  JobSpec doomed;
  doomed.population = &small_pop();
  doomed.deadline_s = 1e-6;  // expires long before the worker frees up
  const JobId late = svc.submit(doomed);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate->release();

  EXPECT_EQ(svc.wait(blocking).status, JobStatus::kDone);
  const JobResult r = svc.wait(late);
  EXPECT_EQ(r.status, JobStatus::kExpired);
  EXPECT_EQ(r.attempts, 0u);
  EXPECT_EQ(svc.metrics().expired, 1u);
}

TEST(EstimationService, BoundedQueueRejectsAndBlocks) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  EstimationService svc(cfg);

  auto gate = std::make_shared<Gate>();
  JobSpec gated;
  gated.population = &small_pop();
  gated.factory = [gate] {
    return std::make_unique<StubEstimator>(gate, true);
  };

  const JobId running = svc.submit(gated);  // occupies the worker
  // Give the worker a moment to dequeue it, then fill the queue.
  while (svc.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const JobId queued = svc.submit(gated);
  ASSERT_EQ(svc.queue_depth(), 1u);

  // Full queue: non-blocking admission bounces and is counted.
  EXPECT_FALSE(svc.try_submit(gated).has_value());
  EXPECT_EQ(svc.metrics().rejected, 1u);

  // Blocking admission parks until the worker frees a slot.
  std::atomic<bool> admitted{false};
  std::thread submitter([&] {
    svc.submit(gated);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());

  gate->release();
  submitter.join();
  EXPECT_TRUE(admitted.load());
  svc.drain();
  EXPECT_EQ(svc.wait(running).status, JobStatus::kDone);
  EXPECT_EQ(svc.wait(queued).status, JobStatus::kDone);
  EXPECT_EQ(svc.metrics().done, 3u);
}

TEST(EstimationService, CancelWithdrawsQueuedButNotRunningJobs) {
  ServiceConfig cfg;
  cfg.workers = 1;
  EstimationService svc(cfg);

  auto gate = std::make_shared<Gate>();
  JobSpec gated;
  gated.population = &small_pop();
  gated.factory = [gate] {
    return std::make_unique<StubEstimator>(gate, true);
  };
  const JobId running = svc.submit(gated);
  while (svc.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  JobSpec plain;
  plain.population = &small_pop();
  const JobId queued = svc.submit(plain);

  EXPECT_TRUE(svc.cancel(queued));
  EXPECT_FALSE(svc.cancel(queued));   // already terminal
  EXPECT_FALSE(svc.cancel(running));  // running jobs are not torn down
  EXPECT_FALSE(svc.cancel(999999));   // unknown id

  gate->release();
  EXPECT_EQ(svc.wait(queued).status, JobStatus::kCancelled);
  EXPECT_EQ(svc.wait(running).status, JobStatus::kDone);
  EXPECT_EQ(svc.metrics().cancelled, 1u);
}

TEST(EstimationService, UnknownEstimatorFailsTheJob) {
  EstimationService svc({.workers = 1});
  JobSpec spec;
  spec.population = &small_pop();
  spec.estimator = "NOPE";
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_FALSE(r.outcome.note.empty());
  EXPECT_EQ(svc.metrics().failed, 1u);
}

TEST(EstimationService, MetricsSnapshotAndJsonAreConsistent) {
  core::PersistencePlanner cache;
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.planner = &cache;
  EstimationService svc(cfg);

  std::vector<JobId> ids;
  for (std::uint64_t i = 0; i < 12; ++i) {
    JobSpec spec;
    spec.population = &small_pop();
    spec.seed = i;
    ids.push_back(svc.submit(spec));
  }
  svc.drain();

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.admitted, 12u);
  EXPECT_EQ(m.completed, 12u);
  EXPECT_EQ(m.done, 12u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.latency.count, 12u);
  EXPECT_GT(m.latency.max_s, 0.0);
  EXPECT_GE(m.latency.p99_s, m.latency.p50_s);
  EXPECT_GT(m.throughput_jobs_per_s(), 0.0);
  EXPECT_GT(m.engine.total().frames, 0u);

  const std::string table = render_service_metrics(m);
  EXPECT_NE(table.find("admitted=12"), std::string::npos);
  EXPECT_NE(table.find("planner cache:"), std::string::npos);

  const std::string json = service_metrics_json(m);
  for (const char* key :
       {"\"admitted\"", "\"completed\"", "\"latency_s\"", "\"p99_s\"",
        "\"planner_cache\"", "\"hit_rate\"", "\"engine\"",
        "\"throughput_jobs_per_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  for (const JobId id : ids) {
    const auto polled = svc.poll(id);
    ASSERT_TRUE(polled.has_value());
    EXPECT_EQ(polled->status, JobStatus::kDone);
  }
  EXPECT_FALSE(svc.poll(123456).has_value());
}

/// Small tracking workload: three logical readers, two jobs each, with
/// distinct scenarios and seeds.
std::vector<JobSpec> tracking_jobs() {
  std::vector<JobSpec> specs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    JobSpec spec;
    spec.estimator = "BFCE";  // label only for tracking jobs
    spec.req = {0.1, 0.1};
    spec.seed = 5000 + i;
    TrackingJobSpec track;
    track.reader_id = i % 3;
    track.initial_population = 4000 + 1000 * (i % 2);
    track.schedule = (i % 2 == 0)
                         ? tracking::steady_scenario(5, 0.05, 4000.0)
                         : tracking::ramp_scenario(5, 0.05, 5000.0, 1.5);
    spec.tracking = track;
    specs.push_back(spec);
  }
  return specs;
}

/// Bit-exact trajectory comparison (plain EXPECT_EQ on doubles: the
/// contract is bit-identical, not merely close).
void expect_same_trajectories(const std::vector<JobResult>& a,
                              const std::vector<JobResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].tracking.has_value()) << i;
    ASSERT_TRUE(b[i].tracking.has_value()) << i;
    const tracking::TrackResult& ta = *a[i].tracking;
    const tracking::TrackResult& tb = *b[i].tracking;
    EXPECT_EQ(ta.reader_id, tb.reader_id) << i;
    ASSERT_EQ(ta.trajectory.size(), tb.trajectory.size()) << i;
    for (std::size_t r = 0; r < ta.trajectory.size(); ++r) {
      const tracking::TrackPoint& pa = ta.trajectory[r];
      const tracking::TrackPoint& pb = tb.trajectory[r];
      EXPECT_EQ(pa.true_n, pb.true_n) << i << "/" << r;
      EXPECT_EQ(pa.raw_n_hat, pb.raw_n_hat) << i << "/" << r;
      EXPECT_EQ(pa.tracked_n, pb.tracked_n) << i << "/" << r;
      EXPECT_EQ(pa.predicted_n, pb.predicted_n) << i << "/" << r;
      EXPECT_EQ(pa.innovation, pb.innovation) << i << "/" << r;
      EXPECT_EQ(pa.variance, pb.variance) << i << "/" << r;
      EXPECT_EQ(pa.p_o, pb.p_o) << i << "/" << r;
      EXPECT_EQ(pa.airtime_s, pb.airtime_s) << i << "/" << r;
    }
    EXPECT_EQ(ta.summary.raw_rmse, tb.summary.raw_rmse) << i;
    EXPECT_EQ(ta.summary.tracked_rmse, tb.summary.tracked_rmse) << i;
    EXPECT_EQ(a[i].outcome.n_hat, b[i].outcome.n_hat) << i;
    EXPECT_EQ(a[i].outcome.ci_low, b[i].outcome.ci_low) << i;
    EXPECT_EQ(a[i].outcome.ci_high, b[i].outcome.ci_high) << i;
  }
}

TEST(EstimationService, TrackingTrajectoriesBitIdenticalAcrossWorkerCounts) {
  const auto specs = tracking_jobs();

  ServiceConfig ref_cfg;
  ref_cfg.workers = 1;
  EstimationService reference(ref_cfg);
  const auto ref_results = run_all(reference, specs);

  for (const unsigned workers : {1u, 4u, 8u}) {
    core::PersistencePlanner planner;
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.planner = &planner;
    EstimationService svc(cfg);
    const auto results = run_all(svc, specs);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_trajectories(ref_results, results);
  }
}

TEST(EstimationService, TrackingJobsSurfacePerReaderMetrics) {
  ServiceConfig cfg;
  cfg.workers = 2;
  EstimationService svc(cfg);
  const auto specs = tracking_jobs();
  const auto results = run_all(svc, specs);

  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kDone);
    ASSERT_TRUE(r.tracking.has_value());
    EXPECT_EQ(r.tracking->summary.rounds, 5u);
    EXPECT_GT(r.outcome.n_hat, 0.0);
    EXPECT_LT(r.outcome.ci_low, r.outcome.n_hat);
    EXPECT_GT(r.outcome.ci_high, r.outcome.n_hat);
    EXPECT_GT(r.airtime_s, 0.0);
    EXPECT_GT(r.counters.total().frames, 0u);
  }

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.tracking.jobs, specs.size());
  EXPECT_EQ(m.tracking.rounds, 5u * specs.size());
  EXPECT_GT(m.tracking.innovation_rms, 0.0);
  EXPECT_GT(m.tracking.residual_rms, 0.0);
  EXPECT_GT(m.tracking.raw_rmse_mean, 0.0);
  ASSERT_EQ(m.readers.size(), 3u);  // reader ids 0, 1, 2, sorted
  for (std::size_t i = 0; i < m.readers.size(); ++i) {
    EXPECT_EQ(m.readers[i].reader_id, i);
    EXPECT_EQ(m.readers[i].jobs, 2u);
    EXPECT_EQ(m.readers[i].rounds, 10u);
    EXPECT_GT(m.readers[i].state, 0.0);
    EXPECT_GT(m.readers[i].variance, 0.0);
  }

  const std::string table = render_service_metrics(m);
  EXPECT_NE(table.find("tracking:"), std::string::npos);
  EXPECT_NE(table.find("reader 0:"), std::string::npos);
  const std::string json = service_metrics_json(m);
  for (const char* key : {"\"tracking\"", "\"readers\"", "\"reader_id\"",
                          "\"innovation_rms\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// Regression: ServiceConfig::engine_policy must reach the tracking
// path. execute_tracking forwards it into SessionConfig, the session
// into every round's ReaderContext — so a sharded service config makes
// tracking jobs produce sharded walks; and because the sharded pipeline
// is shard-count invariant, the trajectories are a pure function of the
// job seed — bit-identical across shard counts.
TEST(EstimationService, TrackingJobsHonourShardedEnginePolicy) {
  const auto specs = tracking_jobs();

  EstimationService sequential(ServiceConfig{.workers = 2});
  run_all(sequential, specs);
  EXPECT_EQ(sequential.metrics().engine.sharded_walks, 0u);

  std::vector<std::vector<JobResult>> per_shard_count;
  for (const std::uint32_t shards : {4u, 8u}) {
    ServiceConfig cfg;
    cfg.workers = 2;
    rfid::ExecutionPolicy policy = rfid::ExecutionPolicy::sharded(shards);
    policy.min_tags_per_shard = 1;
    cfg.engine_policy = policy;
    EstimationService sharded(cfg);
    per_shard_count.push_back(run_all(sharded, specs));
    EXPECT_GT(sharded.metrics().engine.sharded_walks, 0u)
        << "shards=" << shards;
    for (const JobResult& r : per_shard_count.back()) {
      EXPECT_EQ(r.status, JobStatus::kDone);
    }
  }
  expect_same_trajectories(per_shard_count[0], per_shard_count[1]);
}

TEST(EstimationService, NonTrackingMetricsStayEmpty) {
  EstimationService svc({.workers = 1});
  JobSpec spec;
  spec.population = &small_pop();
  EXPECT_EQ(svc.wait(svc.submit(spec)).status, JobStatus::kDone);
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.tracking.jobs, 0u);
  EXPECT_TRUE(m.readers.empty());
  EXPECT_EQ(render_service_metrics(m).find("tracking:"), std::string::npos);
}

TEST(EstimationService, SubmitAfterShutdownIsRefused) {
  EstimationService svc({.workers = 1});
  JobSpec spec;
  spec.population = &small_pop();
  EXPECT_EQ(svc.wait(svc.submit(spec)).status, JobStatus::kDone);
  svc.shutdown();
  EXPECT_EQ(svc.submit(spec), kInvalidJob);
  EXPECT_FALSE(svc.try_submit(spec).has_value());
}

}  // namespace
}  // namespace bfce::service
