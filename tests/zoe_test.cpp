// Tests for the ZOE comparator.
#include "estimators/zoe.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/erf.hpp"
#include "rfid/reader.hpp"
#include "sim/experiment.hpp"

namespace bfce::estimators {
namespace {

TEST(Zoe, RequiredFramesMatchesTheQuotedFormula) {
  // m = ⌈d·σ_max/(e^{−λ}(1−e^{−ελ}))⌉² with λ=1.594, σ_max=0.5.
  const double d = math::confidence_d(0.05);
  const double denom = std::exp(-1.594) * (1.0 - std::exp(-0.05 * 1.594));
  const double expected = std::ceil(d * 0.5 / denom);
  EXPECT_EQ(ZoeEstimator::required_frames(0.05, 0.05, 1.594, 0.5),
            static_cast<std::uint64_t>(expected * expected));
  // Ballpark for the default requirement: ~4000 single-slot frames.
  EXPECT_NEAR(
      static_cast<double>(ZoeEstimator::required_frames(0.05, 0.05, 1.594, 0.5)),
      3970.0, 60.0);
}

TEST(Zoe, RequiredFramesShrinkWithLooserRequirements) {
  const auto strict = ZoeEstimator::required_frames(0.05, 0.05, 1.594, 0.5);
  EXPECT_LT(ZoeEstimator::required_frames(0.10, 0.05, 1.594, 0.5), strict);
  EXPECT_LT(ZoeEstimator::required_frames(0.05, 0.30, 1.594, 0.5), strict);
}

TEST(Zoe, EstimatesAccuratelyInSampledMode) {
  const auto pop = rfid::make_population(
      100000, rfid::TagIdDistribution::kT2ApproxNormal, 1);
  sim::ExperimentConfig cfg;
  cfg.trials = 25;
  cfg.req = {0.05, 0.05};
  cfg.mode = rfid::FrameMode::kSampled;
  cfg.seed = 11;
  const auto records = sim::run_experiment(
      pop, [] { return std::make_unique<ZoeEstimator>(); }, cfg);
  const auto summary = sim::summarize_records(records, 0.05);
  EXPECT_LT(summary.accuracy.mean, 0.05);
}

TEST(Zoe, SeedBroadcastsDominateItsExecutionTime) {
  // The paper's diagnosis: m×32 reader bits dwarf m×1 tag bits.
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT2ApproxNormal, 2);
  rfid::ReaderContext ctx(pop, 3, rfid::FrameMode::kSampled);
  ZoeEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  const rfid::TimingModel tm;
  const double reader_time =
      static_cast<double>(out.airtime.reader_bits) * tm.reader_bit_us;
  const double tag_time =
      static_cast<double>(out.airtime.tag_bits) * tm.tag_bit_us;
  EXPECT_GT(reader_time, 30.0 * tag_time);
}

TEST(Zoe, TakesSecondsAtTheDefaultRequirement) {
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT2ApproxNormal, 4);
  rfid::ReaderContext ctx(pop, 5, rfid::FrameMode::kSampled);
  ZoeEstimator est;
  const EstimateOutcome out = est.estimate(ctx, {0.05, 0.05});
  const double t = out.airtime.total_seconds(ctx.timing());
  EXPECT_GT(t, 4.0);   // "usually large, several seconds in all cases"
  EXPECT_LT(t, 25.0);  // "even goes up to 18s in the worst case"
}

TEST(Zoe, RestartsWhenTheLoadIsUnusable) {
  // Force the usable band to be unsatisfiable: every attempt fails, the
  // protocol restarts max_restarts times and flags the outcome.
  ZoeParams params;
  params.usable_rho_min = 0.45;
  params.usable_rho_max = 0.451;  // essentially impossible to hit
  params.max_restarts = 2;
  ZoeEstimator est(params);
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 6);
  rfid::ReaderContext ctx(pop, 7, rfid::FrameMode::kSampled);
  const EstimateOutcome out = est.estimate(ctx, {0.1, 0.1});
  EXPECT_FALSE(out.met_by_design);
  EXPECT_FALSE(out.note.empty());
  // At least three attempts worth of planned frames were paid for
  // (adaptive extension may add more per attempt).
  const auto m = ZoeEstimator::required_frames(0.1, 0.1, 1.594, 0.5);
  EXPECT_GE(out.rounds, 3 * m);
  EXPECT_LE(out.rounds, 3 * 8 * m);
}

TEST(Zoe, OffLoadRoughEstimateInflatesSlotCount) {
  // Force the measurement load off λ* by shrinking the rough phase to a
  // single noisy lottery frame: whenever LOF underestimates n the
  // achieved λ̂ exceeds λ* and the CLT bound demands more frames (§V-C's
  // "sharp growth of the required time slots"). Over a batch of runs the
  // worst case must clearly exceed the planned m.
  ZoeParams noisy;
  noisy.rough = LofParams{32, 1, 32};
  ZoeEstimator est(noisy);
  const auto pop = rfid::make_population(
      50000, rfid::TagIdDistribution::kT1Uniform, 10);
  const auto m = ZoeEstimator::required_frames(0.05, 0.05, 1.594, 0.5);
  std::uint32_t worst = 0;
  for (int i = 0; i < 12; ++i) {
    rfid::ReaderContext ctx(pop, 400 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    worst = std::max(worst, est.estimate(ctx, {0.05, 0.05}).rounds);
  }
  EXPECT_GT(worst, static_cast<std::uint32_t>(m) * 3 / 2);
}

TEST(Zoe, RestartInflatesExecutionTime) {
  ZoeParams tight;
  tight.usable_rho_min = 0.45;
  tight.usable_rho_max = 0.451;
  tight.max_restarts = 2;
  const auto pop = rfid::make_population(
      20000, rfid::TagIdDistribution::kT1Uniform, 8);
  // Averaged over a few seeds: any single run's time is noisy (the
  // adaptive phase can legitimately extend a non-restarted run), but a
  // run forced through max_restarts = 2 extra measurement phases must
  // cost a multiple of the normal one on aggregate.
  double t_normal = 0.0;
  double t_restarted = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rfid::ReaderContext a(pop, seed, rfid::FrameMode::kSampled);
    rfid::ReaderContext b(pop, seed, rfid::FrameMode::kSampled);
    t_normal += ZoeEstimator().estimate(a, {0.1, 0.1}).time_us;
    t_restarted += ZoeEstimator(tight).estimate(b, {0.1, 0.1}).time_us;
  }
  EXPECT_GT(t_restarted, 2.5 * t_normal);
}

TEST(Zoe, NameIsStable) { EXPECT_EQ(ZoeEstimator().name(), "ZOE"); }

}  // namespace
}  // namespace bfce::estimators
