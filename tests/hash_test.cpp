// Tests for the hash families and the tag-side persistence scheme.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "hash/mix.hpp"
#include "hash/persistence.hpp"
#include "hash/slot_hash.hpp"
#include "math/hypothesis.hpp"
#include "util/rng.hpp"

namespace bfce::hash {
namespace {

TEST(Mix, Fmix64HasNoTrivialFixpointAtZero) {
  EXPECT_EQ(fmix64(0), 0u);  // murmur finaliser maps 0 to 0 by design...
  EXPECT_NE(fmix64(1), 1u);  // ...but nothing else nearby.
  EXPECT_NE(fmix64(2), 2u);
}

TEST(Mix, MixWithSeedDecorelatesSeeds) {
  // The same key under different seeds must disagree.
  int equal = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (mix_with_seed(key, 1) == mix_with_seed(key, 2)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(IdealSlotHash, InRangeAndDeterministic) {
  const IdealSlotHash h(12345);
  for (std::uint64_t id = 1; id < 2000; ++id) {
    const std::uint32_t s = h.slot(id, 8192);
    EXPECT_LT(s, 8192u);
    EXPECT_EQ(s, h.slot(id, 8192));
  }
}

TEST(IdealSlotHash, NonPowerOfTwoRange) {
  const IdealSlotHash h(5);
  for (std::uint64_t id = 1; id < 2000; ++id) {
    EXPECT_LT(h.slot(id, 1000), 1000u);
  }
}

TEST(IdealSlotHash, UniformityChiSquare) {
  const IdealSlotHash h(99);
  constexpr std::uint32_t kBins = 128;
  std::vector<std::size_t> counts(kBins, 0);
  for (std::uint64_t id = 1; id <= 128000; ++id) ++counts[h.slot(id, kBins)];
  const double p = math::chi_square_pvalue(
      math::chi_square_uniform(counts), kBins - 1);
  EXPECT_GT(p, 0.001);
}

TEST(LightweightSlotHash, MatchesThePapersBitgetDefinition) {
  // H(id) = bitget(RN ⊕ RS, 13:1) — the lowest 13 bits of the XOR.
  const std::uint32_t rn = 0xDEADBEEF;
  const std::uint32_t rs = 0x12345678;
  const LightweightSlotHash h(rs);
  EXPECT_EQ(h.slot(rn, 8192), (rn ^ rs) & 0x1FFFu);
}

TEST(LightweightSlotHash, UniformOverRandomRn) {
  const LightweightSlotHash h(0xCAFEBABE);
  util::Xoshiro256ss rng(4);
  constexpr std::uint32_t kW = 256;
  std::vector<std::size_t> counts(kW, 0);
  for (int i = 0; i < 256000; ++i) {
    ++counts[h.slot(static_cast<std::uint32_t>(rng()), kW)];
  }
  const double p =
      math::chi_square_pvalue(math::chi_square_uniform(counts), kW - 1);
  EXPECT_GT(p, 0.001);
}

TEST(LightweightSlotHash, PairwiseXorIsConstantAcrossTags) {
  // The correlation artefact called out in DESIGN.md: for any two seeds,
  // H1(t) ⊕ H2(t) is the same for every tag t.
  const LightweightSlotHash h1(0x1111);
  const LightweightSlotHash h2(0xBEEF);
  util::Xoshiro256ss rng(5);
  const std::uint32_t rn0 = static_cast<std::uint32_t>(rng());
  const std::uint32_t expected = h1.slot(rn0, 8192) ^ h2.slot(rn0, 8192);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t rn = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(h1.slot(rn, 8192) ^ h2.slot(rn, 8192), expected);
  }
}

TEST(GeometricSlotHash, FollowsGeometricLaw) {
  const GeometricSlotHash g(7);
  constexpr std::uint32_t kFrame = 32;
  std::vector<std::size_t> counts(kFrame, 0);
  constexpr std::size_t kTags = 400000;
  for (std::uint64_t id = 1; id <= kTags; ++id) ++counts[g.slot(id, kFrame)];
  // Slot j should hold ≈ 2^-(j+1) of the tags; check the first slots
  // where counts are large enough for a tight relative bound.
  for (std::uint32_t j = 0; j < 6; ++j) {
    const double expected = std::ldexp(static_cast<double>(kTags),
                                       -static_cast<int>(j) - 1);
    EXPECT_NEAR(static_cast<double>(counts[j]), expected, 0.05 * expected)
        << "slot " << j;
  }
}

TEST(GeometricSlotHash, ClampsToLastSlot) {
  const GeometricSlotHash g(7);
  for (std::uint64_t id = 1; id < 10000; ++id) {
    EXPECT_LT(g.slot(id, 4), 4u);
  }
}

TEST(RnBitsPersistence, RateMatchesNumerator) {
  util::Xoshiro256ss rng(6);
  for (std::uint32_t p_n : {1u, 8u, 103u, 512u, 1023u}) {
    std::size_t hits = 0;
    constexpr std::size_t kTrials = 200000;
    for (std::size_t i = 0; i < kTrials; ++i) {
      if (rn_bits_respond(static_cast<std::uint32_t>(rng()),
                          static_cast<std::uint32_t>(i % 8192), 42, p_n)) {
        ++hits;
      }
    }
    const double rate = static_cast<double>(hits) / kTrials;
    const double expected = static_cast<double>(p_n) / 1024.0;
    EXPECT_NEAR(rate, expected, 0.005 + 0.1 * expected)
        << "p_n=" << p_n;
  }
}

TEST(RnBitsPersistence, VariesAcrossSlotsForOneTag) {
  // A fixed tag must not make the same decision in every slot (that
  // would freeze the responding subpopulation — see DESIGN.md).
  const std::uint32_t rn = 0xABCD1234;
  int responses = 0;
  for (std::uint32_t slot = 0; slot < 1024; ++slot) {
    if (rn_bits_respond(rn, slot, 42, 512)) ++responses;
  }
  EXPECT_GT(responses, 300);
  EXPECT_LT(responses, 724);
}

TEST(RnBitsPersistence, EdgeNumerators) {
  util::Xoshiro256ss rng(8);
  // p_n = 0 never responds.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rn_bits_respond(static_cast<std::uint32_t>(rng()),
                                 static_cast<std::uint32_t>(i), 7, 0));
  }
  // p_n = 1024 always responds.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(rn_bits_respond(static_cast<std::uint32_t>(rng()),
                                static_cast<std::uint32_t>(i), 7, 1024));
  }
}

}  // namespace
}  // namespace bfce::hash
