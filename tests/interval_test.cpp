// Tests for the CLT variance prediction and BFCE's confidence intervals.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/bfce.hpp"
#include "math/stats.hpp"
#include "rfid/reader.hpp"

namespace bfce::core {
namespace {

TEST(PredictedRelativeSd, ClosedFormAgainstHandComputation) {
  // n=500000, w=8192, k=3, p=3/1024 ⇒ λ≈0.5364:
  // sd/n = σ(X)/(√w·λ·e^{−λ}).
  const double lambda = slot_load(500000, 8192, 3, 3.0 / 1024.0);
  const double expected =
      sigma_x(lambda) / (std::sqrt(8192.0) * lambda * std::exp(-lambda));
  EXPECT_NEAR(predicted_relative_sd(500000, 8192, 3, 3.0 / 1024.0),
              expected, 1e-15);
  EXPECT_DOUBLE_EQ(predicted_relative_sd(0.0, 8192, 3, 0.5), 0.0);
}

TEST(PredictedRelativeSd, MatchesMonteCarloMeasurement) {
  // The delta-method prediction must match the measured sd of n̂ over
  // repeated frames to within Monte-Carlo noise.
  const auto pop = rfid::make_population(
      200000, rfid::TagIdDistribution::kT1Uniform, 1);
  const double p = 8.0 / 1024.0;
  util::Xoshiro256ss rng(2);
  const rfid::Channel ch;
  math::RunningStats estimates;
  constexpr int kFrames = 400;
  for (int f = 0; f < kFrames; ++f) {
    rfid::BloomFrameConfig cfg;
    cfg.set_p_numerator(8);
    cfg.seeds = {rng(), rng(), rng()};
    const auto busy = rfid::sampled_bloom_frame(pop.size(), cfg, ch, rng);
    const double rho = 1.0 - static_cast<double>(busy.count_ones()) / 8192.0;
    estimates.add(estimate_from_rho(rho, 8192, 3, p));
  }
  const double measured_rel_sd = estimates.stddev() / 200000.0;
  const double predicted = predicted_relative_sd(200000, 8192, 3, p);
  // sd-of-sd over 400 samples is ~3.5%; allow 15%.
  EXPECT_NEAR(measured_rel_sd, predicted, predicted * 0.15);
}

TEST(PredictedRelativeSd, MinimisedNearTheClassicOptimum) {
  // The relative sd as a function of load has its minimum near
  // λ ≈ 1.594 (the classic variance-optimal occupancy load) — the same
  // constant ZOE/SRC tune for.
  auto rel_sd_at_lambda = [](double lambda) {
    const double n = 100000.0;
    const double p = lambda * 8192.0 / (3.0 * n);
    return predicted_relative_sd(n, 8192, 3, p);
  };
  const double at_opt = rel_sd_at_lambda(1.594);
  EXPECT_LT(at_opt, rel_sd_at_lambda(0.4));
  EXPECT_LT(at_opt, rel_sd_at_lambda(4.0));
  EXPECT_LT(at_opt, rel_sd_at_lambda(1.0) * 1.05);  // shallow basin
}

TEST(IntervalFromRho, BracketsThePointEstimate) {
  for (double rho : {0.1, 0.3, 0.5, 0.8}) {
    const double p = 0.01;
    const ConfidenceInterval ci = interval_from_rho(rho, 8192, 3, p, 0.05);
    const double point = estimate_from_rho(rho, 8192, 3, p);
    EXPECT_LT(ci.lo, point) << rho;
    EXPECT_GT(ci.hi, point) << rho;
  }
}

TEST(IntervalFromRho, WidensWithConfidence) {
  const ConfidenceInterval at95 = interval_from_rho(0.4, 8192, 3, 0.01, 0.05);
  const ConfidenceInterval at70 = interval_from_rho(0.4, 8192, 3, 0.01, 0.30);
  EXPECT_LT(at95.lo, at70.lo);
  EXPECT_GT(at95.hi, at70.hi);
}

TEST(IntervalFromRho, SurvivesEdgeRatios) {
  // ρ̄ one slot away from degenerate: the interval must stay finite and
  // ordered (the clamping keeps the inversion in-domain).
  const double w = 8192.0;
  for (double rho : {1.5 / w, 1.0 - 1.5 / w}) {
    const ConfidenceInterval ci =
        interval_from_rho(rho, 8192, 3, 0.5, 0.05);
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_GT(ci.hi, ci.lo);
    EXPECT_TRUE(std::isfinite(ci.hi));
  }
}

TEST(BfceInterval, CoverageMatchesTheConfidenceLevel) {
  // Over many runs, the (1−δ) interval must contain the true n at least
  // (1−δ) of the time (3σ slack).
  const auto pop = rfid::make_population(
      150000, rfid::TagIdDistribution::kT2ApproxNormal, 3);
  BfceEstimator est;
  constexpr int kRuns = 120;
  int covered = 0;
  for (int i = 0; i < kRuns; ++i) {
    rfid::ReaderContext ctx(pop, 1000 + static_cast<std::uint64_t>(i),
                            rfid::FrameMode::kSampled);
    const auto out = est.estimate(ctx, {0.05, 0.05});
    ASSERT_LT(out.ci_low, out.ci_high);
    if (out.ci_low <= 150000.0 && 150000.0 <= out.ci_high) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kRuns;
  EXPECT_GE(coverage, 0.95 - 3.0 * std::sqrt(0.05 * 0.95 / kRuns));
}

TEST(BfceInterval, WidthTracksTheVariancePrediction) {
  const auto pop = rfid::make_population(
      150000, rfid::TagIdDistribution::kT1Uniform, 4);
  BfceEstimator est;
  BfceTrace trace;
  rfid::ReaderContext ctx(pop, 5, rfid::FrameMode::kSampled);
  const auto out = est.estimate_traced(ctx, {0.05, 0.05}, trace);
  const double predicted_half =
      1.96 * out.n_hat *
      predicted_relative_sd(out.n_hat, 8192, 3, trace.p_choice.p);
  const double actual_half = 0.5 * (out.ci_high - out.ci_low);
  EXPECT_NEAR(actual_half, predicted_half, predicted_half * 0.15);
}

}  // namespace
}  // namespace bfce::core
