// Tests for the packed bit vector.
#include "util/bitvector.hpp"

#include <gtest/gtest.h>

namespace bfce::util {
namespace {

TEST(BitVector, StartsCleared) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_FALSE(v.empty());
  EXPECT_EQ(v.count_ones(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, DefaultConstructedIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.first_zero(), 0u);
  EXPECT_EQ(v.first_one(), 0u);
}

TEST(BitVector, SetAndGetAcrossWordBoundaries) {
  BitVector v(200);
  for (std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 199u}) {
    v.set(i);
    EXPECT_TRUE(v.get(i));
  }
  EXPECT_EQ(v.count_ones(), 8u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count_ones(), 7u);
}

TEST(BitVector, CountOnesPrefix) {
  BitVector v(256);
  for (std::size_t i = 0; i < 256; i += 2) v.set(i);  // even bits
  EXPECT_EQ(v.count_ones_prefix(0), 0u);
  EXPECT_EQ(v.count_ones_prefix(1), 1u);
  EXPECT_EQ(v.count_ones_prefix(2), 1u);
  EXPECT_EQ(v.count_ones_prefix(64), 32u);
  EXPECT_EQ(v.count_ones_prefix(65), 33u);
  EXPECT_EQ(v.count_ones_prefix(127), 64u);
  EXPECT_EQ(v.count_ones_prefix(256), 128u);
  // Prefix beyond size clamps.
  EXPECT_EQ(v.count_ones_prefix(9999), 128u);
}

TEST(BitVector, OnesRatio) {
  BitVector v(1024);
  for (std::size_t i = 0; i < 256; ++i) v.set(i);
  EXPECT_DOUBLE_EQ(v.ones_ratio(1024), 0.25);
  EXPECT_DOUBLE_EQ(v.ones_ratio(256), 1.0);
  EXPECT_DOUBLE_EQ(v.ones_ratio(0), 0.0);
}

TEST(BitVector, FirstZero) {
  BitVector v(100);
  EXPECT_EQ(v.first_zero(), 0u);
  for (std::size_t i = 0; i < 70; ++i) v.set(i);
  EXPECT_EQ(v.first_zero(), 70u);
  for (std::size_t i = 70; i < 100; ++i) v.set(i);
  EXPECT_EQ(v.first_zero(), 100u);  // all ones ⇒ size()
}

TEST(BitVector, FirstOne) {
  BitVector v(100);
  EXPECT_EQ(v.first_one(), 100u);  // all zeros ⇒ size()
  v.set(77);
  EXPECT_EQ(v.first_one(), 77u);
  v.set(3);
  EXPECT_EQ(v.first_one(), 3u);
}

TEST(BitVector, FirstZeroIgnoresPaddingBits) {
  // 65 bits, all set: the second word's unused bits must not be reported
  // as a zero inside the vector.
  BitVector v(65);
  for (std::size_t i = 0; i < 65; ++i) v.set(i);
  EXPECT_EQ(v.first_zero(), 65u);
}

TEST(BitVector, ClearResetsBitsKeepsSize) {
  BitVector v(99);
  for (std::size_t i = 0; i < 99; i += 3) v.set(i);
  v.clear();
  EXPECT_EQ(v.size(), 99u);
  EXPECT_EQ(v.count_ones(), 0u);
}

TEST(BitVector, WordsExposeStorage) {
  BitVector v(64);
  v.set(0);
  v.set(63);
  ASSERT_EQ(v.words().size(), 1u);
  EXPECT_EQ(v.words()[0], (1ULL << 63) | 1ULL);
}

// ---- word-level writers and tail-word edges ---------------------------

TEST(BitVector, SetWordAndOrWord) {
  BitVector v(192);
  ASSERT_EQ(v.word_count(), 3u);
  v.set_word(1, 0xF0F0F0F0F0F0F0F0ULL);
  EXPECT_EQ(v.word(1), 0xF0F0F0F0F0F0F0F0ULL);
  EXPECT_FALSE(v.get(64));
  EXPECT_TRUE(v.get(68));
  EXPECT_EQ(v.count_ones(), 32u);

  v.or_word(1, 0x0F0F0F0F0F0F0F0FULL);
  EXPECT_EQ(v.word(1), ~0ULL);
  EXPECT_EQ(v.count_ones(), 64u);

  // set_word replaces; or_word accumulates.
  v.set_word(1, 1ULL);
  EXPECT_EQ(v.word(1), 1ULL);
  v.or_word(1, 2ULL);
  EXPECT_EQ(v.word(1), 3ULL);
}

TEST(BitVector, WordWritersMaskTailPadding) {
  // 70 bits: the final word holds 6 live bits; writers must never leak
  // ones into the padding (count_ones and first_zero would misreport).
  BitVector v(70);
  ASSERT_EQ(v.word_count(), 2u);
  v.set_word(1, ~0ULL);
  EXPECT_EQ(v.word(1), 0x3FULL);
  EXPECT_EQ(v.count_ones(), 6u);
  EXPECT_EQ(v.first_zero(), 0u);

  v.clear();
  v.or_word(1, ~0ULL);
  EXPECT_EQ(v.word(1), 0x3FULL);
  EXPECT_EQ(v.count_ones(), 6u);

  // A full first word stays unmasked.
  v.set_word(0, ~0ULL);
  EXPECT_EQ(v.word(0), ~0ULL);
  EXPECT_EQ(v.count_ones(), 70u);
  EXPECT_EQ(v.first_zero(), 70u);
}

TEST(BitVector, ExactMultipleOf64HasNoTailMask) {
  BitVector v(128);
  v.set_word(1, ~0ULL);
  EXPECT_EQ(v.word(1), ~0ULL);
  EXPECT_EQ(v.count_ones(), 64u);
}

TEST(BitVector, CountOnesPrefixAtOddBoundaries) {
  // 197 bits (3 words, 5 live bits in the tail), every third bit set.
  BitVector v(197);
  for (std::size_t i = 0; i < 197; i += 3) v.set(i);
  const auto expected = [](std::size_t prefix) {
    return (prefix + 2) / 3;
  };
  for (const std::size_t prefix :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{126}, std::size_t{127},
        std::size_t{128}, std::size_t{129}, std::size_t{191},
        std::size_t{192}, std::size_t{195}, std::size_t{196},
        std::size_t{197}}) {
    EXPECT_EQ(v.count_ones_prefix(prefix), expected(prefix))
        << "prefix " << prefix;
  }
  // Clamped past the tail word.
  EXPECT_EQ(v.count_ones_prefix(198), expected(197));
  EXPECT_EQ(v.count_ones_prefix(250), expected(197));
}

TEST(BitVector, FirstZeroFirstOneInPartialFinalWord) {
  // 67 bits: the scan must stop at the live tail, not the word edge.
  BitVector v(67);
  for (std::size_t i = 0; i < 66; ++i) v.set(i);
  EXPECT_EQ(v.first_zero(), 66u);
  v.set(66);
  EXPECT_EQ(v.first_zero(), 67u);  // all live bits set ⇒ size()

  BitVector w(67);
  EXPECT_EQ(w.first_one(), 67u);
  w.set(66);  // only the last live bit
  EXPECT_EQ(w.first_one(), 66u);
  w.set(64);
  EXPECT_EQ(w.first_one(), 64u);
}

}  // namespace
}  // namespace bfce::util
