// Protocol contract suite: invariants every estimator in the registry
// must satisfy, swept over (protocol × frame mode) with TEST_P.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "estimators/registry.hpp"
#include "rfid/reader.hpp"

namespace bfce::estimators {
namespace {

using ContractParam = std::tuple<std::string, rfid::FrameMode>;

class EstimatorContractTest
    : public ::testing::TestWithParam<ContractParam> {
 protected:
  static const rfid::TagPopulation& population() {
    static const rfid::TagPopulation pop = rfid::make_population(
        20000, rfid::TagIdDistribution::kT2ApproxNormal, 2015);
    return pop;
  }
};

TEST_P(EstimatorContractTest, ProducesAFinitePositiveEstimate) {
  const auto [name, mode] = GetParam();
  const auto est = make_estimator(name);
  rfid::ReaderContext ctx(population(), 1, mode);
  const EstimateOutcome out = est->estimate(ctx, {0.1, 0.1});
  EXPECT_TRUE(std::isfinite(out.n_hat));
  EXPECT_GT(out.n_hat, 0.0);
  EXPECT_LT(out.n_hat, 1e9);
}

TEST_P(EstimatorContractTest, ChargesTheAir) {
  const auto [name, mode] = GetParam();
  const auto est = make_estimator(name);
  rfid::ReaderContext ctx(population(), 2, mode);
  const EstimateOutcome out = est->estimate(ctx, {0.1, 0.1});
  // Every protocol must broadcast something and listen to something.
  EXPECT_GT(out.airtime.reader_bits, 0u);
  EXPECT_GT(out.airtime.tag_bits, 0u);
  EXPECT_GT(out.airtime.intervals, 0u);
  EXPECT_GT(out.rounds, 0u);
  EXPECT_DOUBLE_EQ(out.time_us, out.airtime.total_us(ctx.timing()));
}

TEST_P(EstimatorContractTest, DeterministicGivenContextSeed) {
  const auto [name, mode] = GetParam();
  const auto est = make_estimator(name);
  rfid::ReaderContext a(population(), 3, mode);
  rfid::ReaderContext b(population(), 3, mode);
  const EstimateOutcome ra = est->estimate(a, {0.1, 0.1});
  const EstimateOutcome rb = est->estimate(b, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(ra.n_hat, rb.n_hat);
  EXPECT_EQ(ra.airtime.reader_bits, rb.airtime.reader_bits);
  EXPECT_EQ(ra.airtime.tag_bits, rb.airtime.tag_bits);
  EXPECT_EQ(ra.airtime.tag_tx_bits, rb.airtime.tag_tx_bits);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

TEST_P(EstimatorContractTest, SeedChangesTheDraws) {
  const auto [name, mode] = GetParam();
  const auto est = make_estimator(name);
  // Coarse discrete statistics (LOF's mean first-zero index) can collide
  // across a seed pair; three seeds must not all agree.
  double n_hats[3];
  std::uint64_t txs[3];
  for (std::uint64_t s = 0; s < 3; ++s) {
    rfid::ReaderContext ctx(population(), 40 + s, mode);
    const EstimateOutcome out = est->estimate(ctx, {0.1, 0.1});
    n_hats[s] = out.n_hat;
    txs[s] = out.airtime.tag_tx_bits;
  }
  const bool all_same = n_hats[0] == n_hats[1] && n_hats[1] == n_hats[2] &&
                        txs[0] == txs[1] && txs[1] == txs[2];
  EXPECT_FALSE(all_same) << name;
}

TEST_P(EstimatorContractTest, FreshInstancesAreIndependent) {
  // A second estimate with a fresh instance and fresh context must
  // reproduce the first: no hidden mutable state inside estimators.
  const auto [name, mode] = GetParam();
  rfid::ReaderContext a(population(), 6, mode);
  const EstimateOutcome ra = make_estimator(name)->estimate(a, {0.1, 0.1});
  rfid::ReaderContext b(population(), 6, mode);
  const EstimateOutcome rb = make_estimator(name)->estimate(b, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(ra.n_hat, rb.n_hat);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EstimatorContractTest,
    ::testing::Combine(::testing::ValuesIn(estimator_names()),
                       ::testing::Values(rfid::FrameMode::kExact,
                                         rfid::FrameMode::kSampled)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param) +
                         (std::get<1>(param_info.param) ==
                                  rfid::FrameMode::kExact
                              ? "_exact"
                              : "_sampled");
      for (char& c : name) {
        if (c == '-') c = '_';  // gtest names must be identifiers
      }
      return name;
    });

}  // namespace
}  // namespace bfce::estimators
